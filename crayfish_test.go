package crayfish_test

import (
	"path/filepath"
	"testing"
	"time"

	"crayfish"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := crayfish.Config{
		Workload: crayfish.Workload{
			InputShape: []int{28, 28},
			BatchSize:  1,
			InputRate:  300,
			Duration:   200 * time.Millisecond,
		},
		Engine:     "flink",
		Serving:    crayfish.ServingConfig{Mode: crayfish.Embedded, Tool: "onnx"},
		Model:      crayfish.ModelSpec{Name: "ffnn"},
		Partitions: 4,
	}
	res, err := crayfish.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Consumed == 0 || res.Metrics.Latency.Mean <= 0 {
		t.Fatalf("metrics %+v", res.Metrics)
	}
}

func TestPublicAPIStandalone(t *testing.T) {
	cfg := crayfish.Config{
		Workload: crayfish.Workload{
			InputShape: []int{28, 28},
			InputRate:  300,
			Duration:   150 * time.Millisecond,
		},
		Engine:  "flink",
		Serving: crayfish.ServingConfig{Mode: crayfish.Embedded, Tool: "onnx"},
	}
	res, err := crayfish.RunStandalone(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Consumed == 0 {
		t.Fatal("standalone consumed nothing")
	}
}

func TestEnginesAndToolsListed(t *testing.T) {
	engines := crayfish.Engines()
	want := map[string]bool{"flink": true, "kafka-streams": true, "ray": true, "spark-ss": true}
	for _, e := range engines {
		delete(want, e)
	}
	if len(want) != 0 {
		t.Fatalf("missing engines %v (got %v)", want, engines)
	}
	if len(crayfish.EmbeddedTools()) != 3 || len(crayfish.ExternalTools()) != 3 {
		t.Fatal("tool lists wrong")
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	if len(crayfish.Experiments()) < 12 {
		t.Fatalf("only %d experiments", len(crayfish.Experiments()))
	}
	if _, err := crayfish.ExperimentByID("table4"); err != nil {
		t.Fatal(err)
	}
	if _, err := crayfish.ExperimentByID("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBrokerHelpers(t *testing.T) {
	b := crayfish.NewBroker()
	srv, err := crayfish.ServeBroker(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := crayfish.DialBroker(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	n, err := c.Partitions("t")
	if err != nil || n != 2 {
		t.Fatalf("partitions %d %v", n, err)
	}
}

func TestLANProfileExposed(t *testing.T) {
	if !crayfish.LAN.Enabled() {
		t.Fatal("LAN profile disabled")
	}
}

func TestSaveAndLoadStoredModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ffnn.onnx")
	if err := crayfish.SaveModel(crayfish.ModelSpec{Name: "ffnn", Seed: 3}, "onnx", path); err != nil {
		t.Fatal(err)
	}
	spec, err := crayfish.LoadStoredModel(path)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded model serves through a daemon end to end.
	daemon, err := crayfish.StartServingDaemon(crayfish.ServingDaemonConfig{
		Tool: "torchserve", Model: spec, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	daemon.Close()

	if _, err := crayfish.LoadStoredModel(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := crayfish.SaveModel(crayfish.ModelSpec{Name: "bogus"}, "onnx", path); err == nil {
		t.Fatal("unknown model accepted")
	}
	if err := crayfish.SaveModel(crayfish.ModelSpec{Name: "ffnn"}, "pickle", path); err == nil {
		t.Fatal("unknown format accepted")
	}
}
