module crayfish

go 1.22
