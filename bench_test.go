package crayfish_test

import (
	"os"
	"strconv"
	"testing"
	"time"

	"crayfish"
)

// benchScale resolves the experiment scale for benchmark runs. The full
// profile (scale 1.0) reproduces the paper's durations scaled to seconds;
// CI-sized machines default to 0.1. Override with CRAYFISH_BENCH_SCALE.
func benchScale() float64 {
	if s := os.Getenv("CRAYFISH_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.1
}

// benchOptions is the shared experiment profile for the bench harness.
func benchOptions() crayfish.ExperimentOptions {
	return crayfish.ExperimentOptions{
		Scale:        benchScale(),
		Runs:         1,
		Parallelisms: []int{1, 2, 4, 8, 16},
	}
}

// runExperiment executes one paper experiment per benchmark iteration and
// logs the regenerated table/figure.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	def, err := crayfish.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		report, err := def.Run(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", report.String())
		}
	}
}

// BenchmarkTable2ModelSizes regenerates Table 2 (model characteristics and
// stored sizes per format).
func BenchmarkTable2ModelSizes(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable4ServingThroughput regenerates Table 4 (serving-tool
// throughput on Flink; FFNN and ResNet, bsz=1, mp=1).
func BenchmarkTable4ServingThroughput(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFigure5LatencyBatchSize regenerates Figure 5 (end-to-end
// latency vs batch size, closed loop).
func BenchmarkFigure5LatencyBatchSize(b *testing.B) { runExperiment(b, "figure5") }

// BenchmarkFigure6ScaleUpFFNN regenerates Figure 6 (vertical scalability,
// Flink + FFNN).
func BenchmarkFigure6ScaleUpFFNN(b *testing.B) { runExperiment(b, "figure6") }

// BenchmarkFigure7ScaleUpResNet regenerates Figure 7 (vertical
// scalability, Flink + ResNet).
func BenchmarkFigure7ScaleUpResNet(b *testing.B) { runExperiment(b, "figure7") }

// BenchmarkFigure8BurstRecovery regenerates Figure 8 (recovery from
// periodic bursts above the sustainable throughput).
func BenchmarkFigure8BurstRecovery(b *testing.B) { runExperiment(b, "figure8") }

// BenchmarkFigure9GPUAcceleration regenerates Figure 9 (CPU vs GPU
// inference latency, ResNet, bsz=8).
func BenchmarkFigure9GPUAcceleration(b *testing.B) { runExperiment(b, "figure9") }

// BenchmarkTable5SPSThroughput regenerates Table 5 (throughput across the
// four stream processors).
func BenchmarkTable5SPSThroughput(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkFigure10SPSLatency regenerates Figure 10 (latency across the
// four stream processors for growing batch sizes).
func BenchmarkFigure10SPSLatency(b *testing.B) { runExperiment(b, "figure10") }

// BenchmarkFigure11SPSScaleUp regenerates Figure 11 (vertical scalability
// across the four stream processors).
func BenchmarkFigure11SPSScaleUp(b *testing.B) { runExperiment(b, "figure11") }

// BenchmarkFigure12OperatorParallelism regenerates Figure 12/§6.1
// (flink[N-N-N] vs flink[32-N-32]).
func BenchmarkFigure12OperatorParallelism(b *testing.B) { runExperiment(b, "figure12") }

// BenchmarkFigure13KafkaOverhead regenerates Figure 13/§6.2 (Crayfish with
// the broker vs a standalone pipeline).
func BenchmarkFigure13KafkaOverhead(b *testing.B) { runExperiment(b, "figure13") }

// BenchmarkAblationProducerBatching validates the §3.5 producer-level
// batching design decision.
func BenchmarkAblationProducerBatching(b *testing.B) { runExperiment(b, "ablation-batching") }

// BenchmarkAblationSerialization compares the JSON pipeline codec against
// the compact binary codec.
func BenchmarkAblationSerialization(b *testing.B) { runExperiment(b, "ablation-serialization") }

// BenchmarkAblationTransport compares the in-process broker with the TCP
// broker daemon.
func BenchmarkAblationTransport(b *testing.B) { runExperiment(b, "ablation-transport") }

// BenchmarkAblationFusedExecution isolates the fused-vs-unfused execution
// plan difference behind Table 4's embedded ordering.
func BenchmarkAblationFusedExecution(b *testing.B) { runExperiment(b, "ablation-fusion") }

// BenchmarkAblationFastKernels isolates the accelerator kernel paths
// behind Figure 9's GPU gains.
func BenchmarkAblationFastKernels(b *testing.B) { runExperiment(b, "ablation-kernels") }

// BenchmarkAblationNetworkRealism quantifies the modelled LAN profile's
// contribution relative to loopback links.
func BenchmarkAblationNetworkRealism(b *testing.B) { runExperiment(b, "ablation-network") }

// BenchmarkAblationAsyncIO measures the §7 what-if: Flink's blocking
// external calls versus its async I/O operator.
func BenchmarkAblationAsyncIO(b *testing.B) { runExperiment(b, "ablation-asyncio") }

// BenchmarkAblationDynamicBatching sweeps the scoring operator's
// micro-batch dimension: fixed targets vs the SLO-driven AIMD controller.
func BenchmarkAblationDynamicBatching(b *testing.B) { runExperiment(b, "ablation-dynbatch") }

// BenchmarkScenarioSuite runs the four MLPerf-style scenarios across
// engine × serving tool plus the offered-load sweep (docs/SCENARIOS.md).
func BenchmarkScenarioSuite(b *testing.B) { runExperiment(b, "scenarios") }

// BenchmarkBrokerFailover measures leader-failover recovery on the
// replicated 3-node cluster (docs/CLUSTER.md): node-1 crashes mid-run,
// the controller elects new leaders from the ISR, and the run must
// lose zero acked records. Time-to-recover after the crash window is
// reported as recovery_ms and lands in BENCH_inference.json as
// failover_recovery_ms, so replication-path speedups move a measured
// recovery number.
func BenchmarkBrokerFailover(b *testing.B) {
	scale := benchScale()
	d := time.Duration(2 * float64(time.Second) * scale)
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	const maxEvents = 120
	cfg := crayfish.Config{
		Workload: crayfish.Workload{
			InputShape: []int{28, 28},
			BatchSize:  1,
			MaxEvents:  maxEvents,
			InputRate:  2 * maxEvents / d.Seconds(),
			Duration:   d + 6*time.Second,
			Seed:       1,
		},
		Engine:     "flink",
		Serving:    crayfish.ServingConfig{Mode: crayfish.Embedded, Tool: "onnx"},
		Model:      crayfish.ModelSpec{Name: "ffnn", Seed: 1},
		Partitions: 2,
	}
	plan := crayfish.FaultPlan{
		Seed: 42,
		Events: []crayfish.FaultEvent{
			{Kind: crayfish.FaultBrokerCrash, At: d / 8, Duration: d / 4, Target: "node-1"},
		},
	}
	var ttrMs float64
	for i := 0; i < b.N; i++ {
		res, err := crayfish.RunClusterRecovery(cfg, plan, crayfish.ClusterSpec{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Result.EngineErr != nil {
			b.Fatal(res.Result.EngineErr)
		}
		if res.Lost != 0 {
			b.Fatalf("acked records lost across the failover: %d", res.Lost)
		}
		ttrMs = float64(res.TimeToRecover) / float64(time.Millisecond)
		if i == 0 {
			b.Logf("failovers=%d epoch=%d ttr=%v", res.Failovers, res.LeaderEpoch, res.TimeToRecover)
		}
	}
	b.ReportMetric(ttrMs, "recovery_ms")
}

// BenchmarkServerCapacitySweep measures the server scenario's capacity:
// the highest offered Poisson rate whose p99 stays under the bound on
// flink/onnx. The knee is reported as capacity_rps and lands in
// BENCH_inference.json as server_capacity_rps, so later speedups move a
// measured capacity number.
func BenchmarkServerCapacitySweep(b *testing.B) {
	scale := benchScale()
	d := time.Duration(2 * float64(time.Second) * scale)
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	cfg := crayfish.Config{
		Workload: crayfish.Workload{
			InputShape: []int{28, 28},
			BatchSize:  1,
			Duration:   d,
			Seed:       1,
		},
		Engine:     "flink",
		Serving:    crayfish.ServingConfig{Mode: crayfish.Embedded, Tool: "onnx"},
		Model:      crayfish.ModelSpec{Name: "ffnn", Seed: 1},
		Partitions: 4,
	}
	sc := crayfish.Scenario{Kind: crayfish.ScenarioServer, Seed: 7, LatencyBound: 250 * time.Millisecond}
	rates := []float64{250, 500, 1000, 2000, 4000, 8000, 16000}
	var capacity float64
	for i := 0; i < b.N; i++ {
		c, points, err := crayfish.FindServerCapacity(cfg, sc, rates)
		if err != nil {
			b.Fatal(err)
		}
		capacity = c
		if i == 0 {
			for _, pt := range points {
				b.Logf("offered %.0f ev/s: %s", pt.Rate, pt.Result.Verdict)
			}
		}
	}
	b.ReportMetric(capacity, "capacity_rps")
}
