package crayfish_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crayfish"
	"crayfish/internal/analysis/metricdoc"
)

// TestRunTelemetryContract runs a tiny instrumented experiment and checks
// that every metric documented in docs/OBSERVABILITY.md shows up in the
// final snapshot — with activity, unless the run cannot exercise it. The
// expected names come from the same contract parser the metricnames
// analyzer uses (internal/analysis/metricdoc), so the documented table is
// authoritative in exactly one place: registration drift fails
// crayfishlint, runtime drift fails here.
func TestRunTelemetryContract(t *testing.T) {
	reg := crayfish.NewTelemetry()
	cfg := crayfish.Config{
		Workload: crayfish.Workload{
			InputShape: []int{28, 28},
			BatchSize:  1,
			InputRate:  300,
			Duration:   200 * time.Millisecond,
		},
		Engine:     "flink",
		Serving:    crayfish.ServingConfig{Mode: crayfish.Embedded, Tool: "onnx"},
		Model:      crayfish.ModelSpec{Name: "ffnn"},
		Partitions: 4,
		Batching:   &crayfish.BatchingPolicy{MaxBatch: 4},
		Telemetry:  reg,
	}
	res, err := crayfish.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Telemetry
	if snap == nil {
		t.Fatal("run with Config.Telemetry returned no snapshot")
	}

	contract, err := metricdoc.ParseFile(filepath.Join("docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatal(err)
	}

	// The fault/resilience families only exist under injection, so a
	// second, tiny recovery run (resilient external client, message
	// faults, a daemon crash/restart) instantiates them; its snapshot
	// answers for those rows.
	recReg := crayfish.NewTelemetry()
	recCfg := cfg
	recCfg.Telemetry = recReg
	recCfg.Serving = crayfish.ServingConfig{Mode: crayfish.External, Tool: "tf-serving"}
	recCfg.Workload.MaxEvents = 60
	recCfg.Workload.Duration = time.Second
	recRes, err := crayfish.RunRecovery(recCfg, crayfish.FaultPlan{
		Seed: 3,
		Rules: []crayfish.FaultRule{
			{Topic: "crayfish-in", Kind: crayfish.FaultDrop, FromSeq: 5, ToSeq: 10},
		},
		Events: []crayfish.FaultEvent{
			{Kind: crayfish.FaultCrash, At: 30 * time.Millisecond, Target: "tf-serving"},
			{Kind: crayfish.FaultRestart, At: 90 * time.Millisecond, Target: "tf-serving"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	recSnap := recRes.Result.Telemetry

	// The broker.cluster.* family only exists on replicated runs, so a
	// fourth tiny run drives a 3-node cluster through a leader crash:
	// node-1 leads one partition per topic under round-robin placement,
	// so its death forces real elections and moves the failover counter.
	clReg := crayfish.NewTelemetry()
	clCfg := cfg
	clCfg.Telemetry = clReg
	clCfg.Partitions = 2
	clCfg.Workload.MaxEvents = 60
	clCfg.Workload.Duration = time.Second
	clRes, err := crayfish.RunClusterRecovery(clCfg, crayfish.FaultPlan{
		Seed: 9,
		Events: []crayfish.FaultEvent{
			{Kind: crayfish.FaultBrokerCrash, At: 30 * time.Millisecond, Duration: 60 * time.Millisecond, Target: "node-1"},
		},
	}, crayfish.ClusterSpec{})
	if err != nil {
		t.Fatal(err)
	}
	clSnap := clRes.Result.Telemetry
	if clRes.Lost != 0 {
		t.Errorf("cluster run lost %d acked records across the failover", clRes.Lost)
	}

	// scenario.verdict only exists on scenario-judged runs, so a third
	// tiny run through RunScenario instantiates it (the loadgen gauges
	// are registered by every producer run, so the clean run covers
	// them).
	scReg := crayfish.NewTelemetry()
	scCfg := cfg
	scCfg.Telemetry = scReg
	scCfg.Workload.InputRate = 0
	scRes, err := crayfish.RunScenario(scCfg, crayfish.Scenario{
		Kind:         crayfish.ScenarioServer,
		TargetRate:   300,
		Seed:         5,
		LatencyBound: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	scSnap := scRes.Telemetry
	if scRes.Verdict == nil {
		t.Fatal("scenario run returned no verdict")
	}

	// Documented metrics this run cannot move: a clean embedded run has
	// no failures, no duplicate deliveries, and no serving daemon; a
	// clean recovery has no abandoned records, and whether the *client*
	// retried (vs the job-level policy) depends on crash timing.
	// The batching run moves sps.batch.size and sps.batch.target, but
	// which flush trigger fires (size vs linger) depends on arrival
	// timing, so either counter alone may stay zero.
	zeroOK := map[string]bool{
		"sps.score.errors":              true,
		"sps.score.dropped":             true,
		"sps.score.retries":             true,
		"sps.batch.linger_flush":        true,
		"sps.batch.size_flush":          true,
		"serving.score.errors":          true,
		"consumer.duplicates":           true,
		"resilience.retries.tf-serving": true,
		"resilience.shed.tf-serving":    true,
	}
	const daemonOnly = "serving.server."

	// faultPathNames instantiates the fault/resilience families with
	// the names the recovery run above produces; nil means the metric
	// belongs to the clean run.
	faultPathNames := func(m metricdoc.Metric) []string {
		switch {
		case m.Name == "sps.score.retries" || m.Name == "sps.score.dropped":
			return []string{m.Name}
		case m.Wildcard() && strings.HasPrefix(m.Prefix(), "resilience."):
			return []string{m.Prefix() + "tf-serving"}
		case m.Wildcard() && m.Prefix() == "faults.injected.":
			return []string{m.Prefix() + "drop", m.Prefix() + "crash", m.Prefix() + "restart"}
		}
		return nil
	}

	var activeCounters []string
	for _, m := range contract.Metrics {
		names := []string{m.Name}
		from := snap
		if fp := faultPathNames(m); fp != nil {
			names, from = fp, recSnap
		} else if m.Name == "scenario.verdict" {
			from = scSnap
		} else if strings.HasPrefix(m.Name, "broker.cluster.") {
			// The replication family answers from the cluster run; the
			// leadership wildcard instantiates per topic-partition.
			from = clSnap
			if m.Wildcard() {
				names = nil
				for _, topic := range []string{"crayfish-in", "crayfish-out"} {
					for p := 0; p < clCfg.Partitions; p++ {
						names = append(names, fmt.Sprintf("%s%s-%d", m.Prefix(), topic, p))
					}
				}
			}
		} else if m.Wildcard() {
			// The remaining wildcard family is the per-topic backlog;
			// the driver's fixed topics instantiate it.
			names = []string{m.Prefix() + "crayfish-in", m.Prefix() + "crayfish-out"}
		}
		for _, name := range names {
			if strings.HasPrefix(name, daemonOnly) {
				continue
			}
			switch m.Kind {
			case metricdoc.Counter:
				v, ok := from.Counters[name]
				if !ok {
					t.Errorf("documented counter %s not in snapshot", name)
				} else if !zeroOK[name] {
					if v <= 0 {
						t.Errorf("counter %s = %d, want > 0", name, v)
					}
					if from == snap {
						activeCounters = append(activeCounters, name)
					}
				}
			case metricdoc.Histogram:
				h, ok := from.Histograms[name]
				if !ok {
					t.Errorf("documented histogram %s not in snapshot", name)
				} else if !zeroOK[name] && h.Count <= 0 {
					t.Errorf("histogram %s empty (%+v)", name, h)
				}
			case metricdoc.Gauge:
				if _, ok := from.Gauges[name]; !ok {
					t.Errorf("documented gauge %s not in snapshot", name)
				}
			}
		}
	}

	// The recovery run's books must still balance while it feeds the
	// fault-path rows: planned drops only, everything else accounted.
	if recRes.Lost != 0 || recRes.Dropped != 5 {
		t.Errorf("recovery run books: lost=%d dropped=%d, want 0 and 5", recRes.Lost, recRes.Dropped)
	}

	// Consistency across stages: with the micro-batcher on, every
	// record lands in exactly one coalesced batch (histogram sum) and
	// the scorer runs once per flush, never more often than per record.
	if got, want := snap.Histograms["sps.batch.size"].Sum, snap.Counters["sps.score.calls"]; got != want {
		t.Errorf("sps.batch.size sum %d != sps.score.calls %d", got, want)
	}
	if got, want := snap.Counters["serving.score.calls"], snap.Histograms["sps.batch.size"].Count; got != want {
		t.Errorf("serving.score.calls %d != %d batch flushes", got, want)
	}
	if got, want := snap.Counters["consumer.samples"], int64(res.Metrics.Consumed); got != want {
		t.Errorf("consumer.samples %d != Metrics.Consumed %d", got, want)
	}
	// The scorer latency is a component of the SPS transform latency.
	if snap.Histograms["serving.score.latency_ns"].Sum > snap.Histograms["sps.score.latency_ns"].Sum {
		t.Errorf("serving latency sum exceeds enclosing sps transform sum")
	}

	text := snap.Format()
	for _, name := range activeCounters {
		if !strings.Contains(text, name) {
			t.Errorf("text snapshot missing %s", name)
		}
	}
}

// TestRunWithoutTelemetry keeps the disabled path honest: no registry, no
// snapshot, and the run still works.
func TestRunWithoutTelemetry(t *testing.T) {
	cfg := crayfish.Config{
		Workload: crayfish.Workload{
			InputShape: []int{28, 28},
			InputRate:  300,
			Duration:   100 * time.Millisecond,
		},
		Engine:     "kafka-streams",
		Serving:    crayfish.ServingConfig{Mode: crayfish.Embedded, Tool: "onnx"},
		Model:      crayfish.ModelSpec{Name: "ffnn"},
		Partitions: 2,
	}
	res, err := crayfish.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Fatal("telemetry snapshot present without a registry")
	}
}

// TestStandaloneTelemetry checks the broker-less baseline reports scorer
// metrics too (its pipeline has no broker, SPS, or consumer stages).
func TestStandaloneTelemetry(t *testing.T) {
	reg := crayfish.NewTelemetry()
	cfg := crayfish.Config{
		Workload: crayfish.Workload{
			InputShape: []int{28, 28},
			InputRate:  300,
			Duration:   100 * time.Millisecond,
		},
		Engine:    "flink",
		Serving:   crayfish.ServingConfig{Mode: crayfish.Embedded, Tool: "onnx"},
		Telemetry: reg,
	}
	res, err := crayfish.RunStandalone(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil || res.Telemetry.Counters["serving.score.calls"] <= 0 {
		t.Fatalf("standalone telemetry missing scorer activity: %+v", res.Telemetry)
	}
}
