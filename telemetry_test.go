package crayfish_test

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crayfish"
	"crayfish/internal/analysis/metricdoc"
)

// TestRunTelemetryContract runs a tiny instrumented experiment and checks
// that every metric documented in docs/OBSERVABILITY.md shows up in the
// final snapshot — with activity, unless the run cannot exercise it. The
// expected names come from the same contract parser the metricnames
// analyzer uses (internal/analysis/metricdoc), so the documented table is
// authoritative in exactly one place: registration drift fails
// crayfishlint, runtime drift fails here.
func TestRunTelemetryContract(t *testing.T) {
	reg := crayfish.NewTelemetry()
	cfg := crayfish.Config{
		Workload: crayfish.Workload{
			InputShape: []int{28, 28},
			BatchSize:  1,
			InputRate:  300,
			Duration:   200 * time.Millisecond,
		},
		Engine:     "flink",
		Serving:    crayfish.ServingConfig{Mode: crayfish.Embedded, Tool: "onnx"},
		Model:      crayfish.ModelSpec{Name: "ffnn"},
		Partitions: 4,
		Telemetry:  reg,
	}
	res, err := crayfish.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Telemetry
	if snap == nil {
		t.Fatal("run with Config.Telemetry returned no snapshot")
	}

	contract, err := metricdoc.ParseFile(filepath.Join("docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatal(err)
	}

	// Documented metrics this run cannot move: a clean embedded run has
	// no failures, no duplicate deliveries, and no serving daemon.
	zeroOK := map[string]bool{
		"sps.score.errors":     true,
		"serving.score.errors": true,
		"consumer.duplicates":  true,
	}
	const daemonOnly = "serving.server."

	var activeCounters []string
	for _, m := range contract.Metrics {
		names := []string{m.Name}
		if m.Wildcard() {
			// The only wildcard family is the per-topic backlog; the
			// driver's fixed topics instantiate it.
			names = []string{m.Prefix() + "crayfish-in", m.Prefix() + "crayfish-out"}
		}
		for _, name := range names {
			if strings.HasPrefix(name, daemonOnly) {
				continue
			}
			switch m.Kind {
			case metricdoc.Counter:
				v, ok := snap.Counters[name]
				if !ok {
					t.Errorf("documented counter %s not in snapshot", name)
				} else if !zeroOK[name] {
					if v <= 0 {
						t.Errorf("counter %s = %d, want > 0", name, v)
					}
					activeCounters = append(activeCounters, name)
				}
			case metricdoc.Histogram:
				h, ok := snap.Histograms[name]
				if !ok {
					t.Errorf("documented histogram %s not in snapshot", name)
				} else if !zeroOK[name] && h.Count <= 0 {
					t.Errorf("histogram %s empty (%+v)", name, h)
				}
			case metricdoc.Gauge:
				if _, ok := snap.Gauges[name]; !ok {
					t.Errorf("documented gauge %s not in snapshot", name)
				}
			}
		}
	}

	// Consistency across stages: what the scorer saw is what the SPS
	// transform invoked, and every consumed sample went through scoring.
	if snap.Counters["sps.score.calls"] != snap.Counters["serving.score.calls"] {
		t.Errorf("sps.score.calls %d != serving.score.calls %d",
			snap.Counters["sps.score.calls"], snap.Counters["serving.score.calls"])
	}
	if got, want := snap.Counters["consumer.samples"], int64(res.Metrics.Consumed); got != want {
		t.Errorf("consumer.samples %d != Metrics.Consumed %d", got, want)
	}
	// The scorer latency is a component of the SPS transform latency.
	if snap.Histograms["serving.score.latency_ns"].Sum > snap.Histograms["sps.score.latency_ns"].Sum {
		t.Errorf("serving latency sum exceeds enclosing sps transform sum")
	}

	text := snap.Format()
	for _, name := range activeCounters {
		if !strings.Contains(text, name) {
			t.Errorf("text snapshot missing %s", name)
		}
	}
}

// TestRunWithoutTelemetry keeps the disabled path honest: no registry, no
// snapshot, and the run still works.
func TestRunWithoutTelemetry(t *testing.T) {
	cfg := crayfish.Config{
		Workload: crayfish.Workload{
			InputShape: []int{28, 28},
			InputRate:  300,
			Duration:   100 * time.Millisecond,
		},
		Engine:     "kafka-streams",
		Serving:    crayfish.ServingConfig{Mode: crayfish.Embedded, Tool: "onnx"},
		Model:      crayfish.ModelSpec{Name: "ffnn"},
		Partitions: 2,
	}
	res, err := crayfish.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Fatal("telemetry snapshot present without a registry")
	}
}

// TestStandaloneTelemetry checks the broker-less baseline reports scorer
// metrics too (its pipeline has no broker, SPS, or consumer stages).
func TestStandaloneTelemetry(t *testing.T) {
	reg := crayfish.NewTelemetry()
	cfg := crayfish.Config{
		Workload: crayfish.Workload{
			InputShape: []int{28, 28},
			InputRate:  300,
			Duration:   100 * time.Millisecond,
		},
		Engine:    "flink",
		Serving:   crayfish.ServingConfig{Mode: crayfish.Embedded, Tool: "onnx"},
		Telemetry: reg,
	}
	res, err := crayfish.RunStandalone(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil || res.Telemetry.Counters["serving.score.calls"] <= 0 {
		t.Fatalf("standalone telemetry missing scorer activity: %+v", res.Telemetry)
	}
}
