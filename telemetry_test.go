package crayfish_test

import (
	"strings"
	"testing"
	"time"

	"crayfish"
)

// TestRunTelemetryContract runs a tiny instrumented experiment and checks
// that every per-stage metric family documented in docs/OBSERVABILITY.md
// shows up in the final snapshot with activity. This guards the metrics
// contract: renaming or dropping an instrumented stage fails here before
// it silently breaks dashboards built on the documented names.
func TestRunTelemetryContract(t *testing.T) {
	reg := crayfish.NewTelemetry()
	cfg := crayfish.Config{
		Workload: crayfish.Workload{
			InputShape: []int{28, 28},
			BatchSize:  1,
			InputRate:  300,
			Duration:   200 * time.Millisecond,
		},
		Engine:     "flink",
		Serving:    crayfish.ServingConfig{Mode: crayfish.Embedded, Tool: "onnx"},
		Model:      crayfish.ModelSpec{Name: "ffnn"},
		Partitions: 4,
		Telemetry:  reg,
	}
	res, err := crayfish.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Telemetry
	if snap == nil {
		t.Fatal("run with Config.Telemetry returned no snapshot")
	}

	counters := []string{
		"producer.events", "producer.bytes", "producer.batches",
		"broker.append.records", "broker.append.bytes",
		"broker.fetch.records", "broker.fetch.bytes",
		"sps.source.records", "sps.sink.records", "sps.score.calls",
		"serving.score.calls", "serving.score.points",
		"consumer.samples",
	}
	for _, name := range counters {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	histograms := []string{
		"sps.score.latency_ns",
		"serving.score.latency_ns", "serving.score.batch_size",
		"consumer.e2e_latency_ns",
	}
	for _, name := range histograms {
		h, ok := snap.Histograms[name]
		if !ok || h.Count <= 0 {
			t.Errorf("histogram %s missing or empty (%+v)", name, h)
		}
	}
	gauges := []string{"producer.lag_ns", "broker.backlog.crayfish-in", "broker.backlog.crayfish-out"}
	for _, name := range gauges {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s missing", name)
		}
	}

	// Consistency across stages: what the scorer saw is what the SPS
	// transform invoked, and every consumed sample went through scoring.
	if snap.Counters["sps.score.calls"] != snap.Counters["serving.score.calls"] {
		t.Errorf("sps.score.calls %d != serving.score.calls %d",
			snap.Counters["sps.score.calls"], snap.Counters["serving.score.calls"])
	}
	if got, want := snap.Counters["consumer.samples"], int64(res.Metrics.Consumed); got != want {
		t.Errorf("consumer.samples %d != Metrics.Consumed %d", got, want)
	}
	// The scorer latency is a component of the SPS transform latency.
	if snap.Histograms["serving.score.latency_ns"].Sum > snap.Histograms["sps.score.latency_ns"].Sum {
		t.Errorf("serving latency sum exceeds enclosing sps transform sum")
	}

	text := snap.Format()
	for _, name := range counters {
		if !strings.Contains(text, name) {
			t.Errorf("text snapshot missing %s", name)
		}
	}
}

// TestRunWithoutTelemetry keeps the disabled path honest: no registry, no
// snapshot, and the run still works.
func TestRunWithoutTelemetry(t *testing.T) {
	cfg := crayfish.Config{
		Workload: crayfish.Workload{
			InputShape: []int{28, 28},
			InputRate:  300,
			Duration:   100 * time.Millisecond,
		},
		Engine:     "kafka-streams",
		Serving:    crayfish.ServingConfig{Mode: crayfish.Embedded, Tool: "onnx"},
		Model:      crayfish.ModelSpec{Name: "ffnn"},
		Partitions: 2,
	}
	res, err := crayfish.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Fatal("telemetry snapshot present without a registry")
	}
}

// TestStandaloneTelemetry checks the broker-less baseline reports scorer
// metrics too (its pipeline has no broker, SPS, or consumer stages).
func TestStandaloneTelemetry(t *testing.T) {
	reg := crayfish.NewTelemetry()
	cfg := crayfish.Config{
		Workload: crayfish.Workload{
			InputShape: []int{28, 28},
			InputRate:  300,
			Duration:   100 * time.Millisecond,
		},
		Engine:    "flink",
		Serving:   crayfish.ServingConfig{Mode: crayfish.Embedded, Tool: "onnx"},
		Telemetry: reg,
	}
	res, err := crayfish.RunStandalone(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil || res.Telemetry.Counters["serving.score.calls"] <= 0 {
		t.Fatalf("standalone telemetry missing scorer activity: %+v", res.Telemetry)
	}
}
