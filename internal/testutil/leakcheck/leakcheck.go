// Package leakcheck fails a test binary that exits with goroutines still
// running. Stream-processor jobs, serving daemons, and broker clients all
// own background goroutines; the gorolifecycle analyzer proves each one
// has a join in the source, and this package proves the joins actually
// fire: after the last test finishes, the only goroutines left must be
// the runtime's own.
//
// Wire it into a package with a one-line TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// Detection diffs runtime.Stack(all=true) against a list of known-stable
// stacks instead of counting goroutines, so the failure message names the
// leaked stacks. A grace period with retries absorbs goroutines that are
// already unwinding when the check starts.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// stable marks goroutine stacks that are expected to outlive tests: the
// test harness itself, runtime housekeeping, and signal plumbing.
var stable = []string{
	"testing.Main(",
	"testing.(*M).Run",
	"testing.runTests",
	"testing.(*T).Run", // parent parked in t.Run waiting on a subtest
	"runtime.goexit0",
	"runtime.gc",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.ensureSigM",
	"os/signal.signal_recv",
	"os/signal.loop",
}

// Main runs the package's tests, then fails the binary if goroutines
// leak. It does not return.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := Check(2 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// Check waits up to grace for the goroutine set to settle down to only
// stable goroutines. It returns an error listing the leaked stacks if
// any survive the grace period.
func Check(grace time.Duration) error {
	deadline := time.Now().Add(grace)
	wait := time.Millisecond
	for {
		leaked := leakedStacks()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%d goroutine(s) leaked:\n\n%s",
				len(leaked), strings.Join(leaked, "\n\n"))
		}
		// Back off: goroutines that are merely slow to unwind resolve
		// in the first retries; real leaks wait out the full grace.
		time.Sleep(wait)
		if wait < 100*time.Millisecond {
			wait *= 2
		}
	}
}

// leakedStacks snapshots all goroutine stacks and drops the stable ones.
func leakedStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var leaked []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" || isStable(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

func isStable(stack string) bool {
	if strings.HasPrefix(stack, "goroutine ") && strings.Contains(stack, "[running]") {
		return true // the goroutine running this check
	}
	for _, marker := range stable {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
