package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestMain(m *testing.M) { Main(m) }

func TestCheckCatchesParkedGoroutine(t *testing.T) {
	release := make(chan struct{})
	parked := make(chan struct{})
	go func() {
		close(parked)
		<-release
	}()
	<-parked
	err := Check(50 * time.Millisecond)
	if err == nil {
		t.Fatal("parked goroutine not reported")
	}
	if !strings.Contains(err.Error(), "leakcheck_test") {
		t.Errorf("leak report does not name the leaking function:\n%v", err)
	}
	close(release)
	if err := Check(2 * time.Second); err != nil {
		t.Errorf("goroutine exited but was still reported: %v", err)
	}
}

func TestCheckCleanBaseline(t *testing.T) {
	if err := Check(time.Second); err != nil {
		t.Errorf("clean baseline reported a leak: %v", err)
	}
}
