package modelfmt

import (
	"archive/zip"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"crayfish/internal/model"
	"crayfish/internal/tensor"
)

// torchCodec stores models the way TorchScript archives do: a ZIP file
// with a JSON structure description and one raw binary entry per tensor.
// Stored (not deflated) entries keep weights bit-exact and decoding cheap,
// and the per-entry ZIP headers add a small per-tensor overhead over ONNX.
type torchCodec struct{}

func (torchCodec) Format() Format { return Torch }

// torchManifest is the model.json payload inside the archive.
type torchManifest struct {
	Producer   string       `json:"producer"`
	Name       string       `json:"name"`
	InputShape []int        `json:"input_shape"`
	OutputSize int          `json:"output_size"`
	Layers     []torchLayer `json:"layers"`
}

type torchLayer struct {
	Kind     string           `json:"kind"`
	Name     string           `json:"name"`
	Stride   int              `json:"stride,omitempty"`
	Pad      int              `json:"pad,omitempty"`
	PoolSize int              `json:"pool_size,omitempty"`
	Heads    int              `json:"heads,omitempty"`
	Eps      float32          `json:"eps,omitempty"`
	Tensors  map[string]int   `json:"tensors,omitempty"` // field name -> data entry id
	Shapes   map[string][]int `json:"shapes,omitempty"`
}

func (torchCodec) Encode(m *model.Model) ([]byte, error) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	manifest := torchManifest{
		Producer:   "crayfish-torch/1.0",
		Name:       m.Name,
		InputShape: m.InputShape,
		OutputSize: m.OutputSize,
	}
	entry := 0
	for _, l := range m.Layers {
		tl := torchLayer{
			Kind: string(l.Kind), Name: l.Name,
			Stride: l.Stride, Pad: l.Pad, PoolSize: l.PoolSize, Heads: l.Heads, Eps: l.Eps,
		}
		ts := layerTensors(l)
		for j, t := range ts {
			if t == nil {
				continue
			}
			if tl.Tensors == nil {
				tl.Tensors = map[string]int{}
				tl.Shapes = map[string][]int{}
			}
			tl.Tensors[tensorFieldNames[j]] = entry
			tl.Shapes[tensorFieldNames[j]] = t.Shape()
			w, err := zw.CreateHeader(&zip.FileHeader{
				Name:   "data/" + strconv.Itoa(entry),
				Method: zip.Store,
			})
			if err != nil {
				return nil, fmt.Errorf("modelfmt: torch entry %d: %w", entry, err)
			}
			if _, err := w.Write(tensorBytes(t)); err != nil {
				return nil, fmt.Errorf("modelfmt: torch entry %d: %w", entry, err)
			}
			entry++
		}
		manifest.Layers = append(manifest.Layers, tl)
	}
	mj, err := json.Marshal(manifest)
	if err != nil {
		return nil, err
	}
	w, err := zw.CreateHeader(&zip.FileHeader{Name: "model.json", Method: zip.Store})
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(mj); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (torchCodec) Decode(data []byte) (*model.Model, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("modelfmt: torch archive: %w", err)
	}
	files := make(map[string][]byte, len(zr.File))
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			return nil, fmt.Errorf("modelfmt: torch entry %q: %w", f.Name, err)
		}
		b, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("modelfmt: torch entry %q: %w", f.Name, err)
		}
		files[f.Name] = b
	}
	mj, ok := files["model.json"]
	if !ok {
		return nil, fmt.Errorf("modelfmt: torch archive missing model.json")
	}
	var manifest torchManifest
	if err := json.Unmarshal(mj, &manifest); err != nil {
		return nil, fmt.Errorf("modelfmt: torch manifest: %w", err)
	}
	m := &model.Model{
		Name:       manifest.Name,
		InputShape: manifest.InputShape,
		OutputSize: manifest.OutputSize,
	}
	for i, tl := range manifest.Layers {
		l := &model.Layer{
			Kind: model.LayerKind(tl.Kind), Name: tl.Name,
			Stride: tl.Stride, Pad: tl.Pad, PoolSize: tl.PoolSize, Heads: tl.Heads, Eps: tl.Eps,
		}
		ts := layerTensors(l)
		for j, field := range tensorFieldNames {
			id, ok := tl.Tensors[field]
			if !ok {
				continue
			}
			shape, ok := tl.Shapes[field]
			if !ok {
				return nil, fmt.Errorf("modelfmt: torch layer %d field %s: missing shape", i, field)
			}
			raw, ok := files["data/"+strconv.Itoa(id)]
			if !ok {
				return nil, fmt.Errorf("modelfmt: torch layer %d field %s: missing data entry %d", i, field, id)
			}
			t, err := decodeRawTensor(raw, shape)
			if err != nil {
				return nil, fmt.Errorf("modelfmt: torch layer %d field %s: %w", i, field, err)
			}
			ts[j] = t
		}
		if err := setLayerTensors(l, ts); err != nil {
			return nil, err
		}
		m.Layers = append(m.Layers, l)
	}
	return m, nil
}

// decodeRawTensor rebuilds a tensor from raw little-endian float32 bytes.
func decodeRawTensor(raw []byte, shape []int) (*tensor.Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 || d > maxDecodeDim {
			return nil, fmt.Errorf("implausible dimension %d", d)
		}
		n *= d
	}
	if len(raw) != 4*n {
		return nil, fmt.Errorf("payload %d bytes, shape %v wants %d", len(raw), shape, 4*n)
	}
	r := newBinReader(raw)
	data := make([]float32, n)
	for i := range data {
		v, err := r.f32()
		if err != nil {
			return nil, err
		}
		data[i] = v
	}
	return tensor.FromSlice(data, shape...)
}
