package modelfmt

import (
	"fmt"

	"crayfish/internal/model"
)

// h5Magic identifies the H5-analogue container.
const h5Magic = "\x89CRF-HDF5\r\n\x1a\n"

// h5HeaderPad is the fixed per-dataset object-header size: HDF5 stores
// dataset headers in fixed-size blocks with alignment padding, which gives
// the Keras H5 file its moderate overhead over raw weights (Table 2:
// 133 KB vs ONNX's 113 KB for the FFNN).
const h5HeaderPad = 256

// h5Codec emulates the hierarchical HDF5 layout Keras uses: a superblock,
// a group tree (one group per layer), and named datasets with fixed-size
// padded object headers.
type h5Codec struct{}

func (h5Codec) Format() Format { return H5 }

func (h5Codec) Encode(m *model.Model) ([]byte, error) {
	w := &binWriter{}
	w.raw([]byte(h5Magic))
	w.u32(0) // superblock version
	w.str("keras_version=2.11.0-crayfish")
	w.str("backend=crayfish-tensor")
	w.writeModelHeader(m)
	for _, l := range m.Layers {
		// Group header for the layer.
		w.str("/model_weights/" + l.Name)
		w.writeLayerCommon(l)
		ts := layerTensors(l)
		present := uint32(0)
		for j, t := range ts {
			if t != nil {
				present |= 1 << uint(j)
			}
		}
		w.u32(present)
		for j, t := range ts {
			if t == nil {
				continue
			}
			// Dataset object header: name, dtype, padded to a
			// fixed block like HDF5 object headers.
			hdrStart := len(w.bytes())
			w.str("/model_weights/" + l.Name + "/" + tensorFieldNames[j] + ":0")
			w.str("dtype=float32")
			w.str("layout=contiguous")
			hdrLen := len(w.bytes()) - hdrStart
			if hdrLen < h5HeaderPad {
				w.raw(make([]byte, h5HeaderPad-hdrLen))
			}
			w.tensorField(t)
		}
	}
	return w.bytes(), nil
}

func (h5Codec) Decode(data []byte) (*model.Model, error) {
	if !hasMagic(data, h5Magic) {
		return nil, fmt.Errorf("modelfmt: not an H5 container")
	}
	r := newBinReader(data[len(h5Magic):])
	if _, err := r.u32(); err != nil {
		return nil, fmt.Errorf("modelfmt: h5 superblock: %w", err)
	}
	for i := 0; i < 2; i++ { // keras_version, backend attributes
		if _, err := r.str(); err != nil {
			return nil, fmt.Errorf("modelfmt: h5 attributes: %w", err)
		}
	}
	m, nLayers, err := r.readModelHeader()
	if err != nil {
		return nil, fmt.Errorf("modelfmt: h5 model header: %w", err)
	}
	for i := 0; i < nLayers; i++ {
		if _, err := r.str(); err != nil { // group path
			return nil, fmt.Errorf("modelfmt: h5 layer %d group: %w", i, err)
		}
		l, err := r.readLayerCommon()
		if err != nil {
			return nil, fmt.Errorf("modelfmt: h5 layer %d: %w", i, err)
		}
		present, err := r.u32()
		if err != nil {
			return nil, fmt.Errorf("modelfmt: h5 layer %d bitmap: %w", i, err)
		}
		ts := layerTensors(l)
		for j := range ts {
			ts[j] = nil
			if present&(1<<uint(j)) == 0 {
				continue
			}
			hdrStart := int(r.r.Size()) - r.r.Len()
			for k := 0; k < 3; k++ { // name, dtype, layout
				if _, err := r.str(); err != nil {
					return nil, fmt.Errorf("modelfmt: h5 layer %d dataset header: %w", i, err)
				}
			}
			hdrLen := int(r.r.Size()) - r.r.Len() - hdrStart
			if hdrLen < h5HeaderPad {
				if _, err := r.r.Seek(int64(h5HeaderPad-hdrLen), 1); err != nil {
					return nil, fmt.Errorf("modelfmt: h5 layer %d padding: %w", i, err)
				}
			}
			ts[j], err = r.tensorField()
			if err != nil {
				return nil, fmt.Errorf("modelfmt: h5 layer %d tensor %d: %w", i, j, err)
			}
		}
		if err := setLayerTensors(l, ts); err != nil {
			return nil, err
		}
		m.Layers = append(m.Layers, l)
	}
	return m, nil
}
