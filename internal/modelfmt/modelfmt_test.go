package modelfmt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crayfish/internal/model"
)

// roundTripModel encodes and decodes m in every format, asserting weight
// bit-exactness and structural equality.
func roundTripModel(t *testing.T, m *model.Model) {
	t.Helper()
	in, err := m.BatchInput(randInput(m), 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Forward(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Formats() {
		data, err := Encode(f, m)
		if err != nil {
			t.Fatalf("%s: encode: %v", f, err)
		}
		got, err := Decode(f, data)
		if err != nil {
			t.Fatalf("%s: decode: %v", f, err)
		}
		if got.Name != m.Name || got.OutputSize != m.OutputSize || len(got.Layers) != len(m.Layers) {
			t.Fatalf("%s: metadata mismatch: %q/%d/%d layers", f, got.Name, got.OutputSize, len(got.Layers))
		}
		for i, l := range m.Layers {
			g := got.Layers[i]
			if g.Kind != l.Kind || g.Name != l.Name || g.Stride != l.Stride || g.Pad != l.Pad || g.PoolSize != l.PoolSize || g.Heads != l.Heads || g.Eps != l.Eps {
				t.Fatalf("%s: layer %d attrs differ", f, i)
			}
			want := layerTensors(l)
			have := layerTensors(g)
			for j := range want {
				switch {
				case want[j] == nil && have[j] == nil:
				case want[j] == nil || have[j] == nil:
					t.Fatalf("%s: layer %d tensor %d nil mismatch", f, i, j)
				case !want[j].AllClose(have[j], 0):
					t.Fatalf("%s: layer %d tensor %d not bit-exact", f, i, j)
				}
			}
		}
		out, err := got.Forward(in.Clone())
		if err != nil {
			t.Fatalf("%s: decoded forward: %v", f, err)
		}
		if !out.AllClose(want, 0) {
			t.Fatalf("%s: decoded model scores differently", f)
		}
	}
}

func randInput(m *model.Model) []float32 {
	r := rand.New(rand.NewSource(17))
	data := make([]float32, m.InputLen())
	for i := range data {
		data[i] = r.Float32()
	}
	return data
}

func TestRoundTripFFNN(t *testing.T) {
	roundTripModel(t, model.NewFFNN(1))
}

func TestRoundTripResNet(t *testing.T) {
	cfg := model.BenchResNetConfig(1)
	cfg.InputSize = 32
	cfg.Blocks = [4]int{1, 1, 1, 1}
	roundTripModel(t, model.NewResNet(cfg))
}

func TestRoundTripTransformer(t *testing.T) {
	// The transformer exercises the attention/layernorm/gelu kinds and
	// the Heads attribute in every format.
	roundTripModel(t, model.NewTransformer(model.TransformerConfig{
		Seed: 1, SeqLen: 4, ModelDim: 8, Heads: 2, FFNDim: 16, Blocks: 1, Classes: 3,
	}))
}

func TestTable2SizeShape(t *testing.T) {
	// Table 2: for the small FFNN, ONNX is the smallest, H5 adds a
	// moderate overhead, and SavedModel is ≈4× ONNX. For large models
	// all formats converge to the raw weight size.
	ffnn := model.NewFFNN(1)
	sizes := map[Format]int{}
	for _, f := range Formats() {
		data, err := Encode(f, ffnn)
		if err != nil {
			t.Fatal(err)
		}
		sizes[f] = len(data)
	}
	raw := 4 * ffnn.ParamCount()
	if sizes[ONNX] < raw || sizes[ONNX] > raw+raw/10 {
		t.Fatalf("ONNX size %d not within 10%% above raw %d", sizes[ONNX], raw)
	}
	if sizes[Torch] <= sizes[ONNX] {
		t.Fatalf("Torch (%d) should exceed ONNX (%d)", sizes[Torch], sizes[ONNX])
	}
	if sizes[H5] <= sizes[Torch] {
		t.Fatalf("H5 (%d) should exceed Torch (%d)", sizes[H5], sizes[Torch])
	}
	ratio := float64(sizes[SavedModel]) / float64(sizes[ONNX])
	if ratio < 3 || ratio > 6 {
		t.Fatalf("SavedModel/ONNX ratio = %.2f, want ≈4.5 (Table 2: 508KB/113KB)", ratio)
	}

	// A larger model: format overheads must become negligible.
	big := model.NewFFNNSized(1, 784, []int{1024, 1024}, 100)
	bigRaw := 4 * big.ParamCount()
	for _, f := range Formats() {
		data, err := Encode(f, big)
		if err != nil {
			t.Fatal(err)
		}
		over := float64(len(data)-bigRaw) / float64(bigRaw)
		if over < 0 || over > 0.15 {
			t.Fatalf("%s: big-model overhead %.2f%%, want < 15%%", f, 100*over)
		}
	}
}

func TestSniff(t *testing.T) {
	m := model.NewFFNNSized(1, 8, []int{4}, 2)
	for _, f := range Formats() {
		data, err := Encode(f, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Sniff(data)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if got != f {
			t.Fatalf("Sniff = %s, want %s", got, f)
		}
	}
	if _, err := Sniff([]byte("garbage")); err == nil {
		t.Fatal("Sniff accepted garbage")
	}
	if _, err := Sniff(nil); err == nil {
		t.Fatal("Sniff accepted empty input")
	}
}

func TestLookupUnknownFormat(t *testing.T) {
	if _, err := Lookup("bogus"); err == nil {
		t.Fatal("Lookup accepted unknown format")
	}
	if _, err := Encode("bogus", model.NewFFNN(1)); err == nil {
		t.Fatal("Encode accepted unknown format")
	}
	if _, err := Decode("bogus", nil); err == nil {
		t.Fatal("Decode accepted unknown format")
	}
}

func TestEncodeRejectsInvalidModel(t *testing.T) {
	bad := &model.Model{Name: "bad", InputShape: []int{4}}
	for _, f := range Formats() {
		if _, err := Encode(f, bad); err == nil {
			t.Fatalf("%s: Encode accepted invalid model", f)
		}
	}
}

func TestDecodeRejectsWrongMagic(t *testing.T) {
	m := model.NewFFNNSized(1, 8, []int{4}, 2)
	onnxData, err := Encode(ONNX, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Format{SavedModel, H5} {
		if _, err := Decode(f, onnxData); err == nil {
			t.Fatalf("%s: decoded ONNX bytes", f)
		}
	}
	if _, err := Decode(Torch, onnxData); err == nil {
		t.Fatal("torch: decoded ONNX bytes")
	}
}

func TestDecodeTruncatedProperty(t *testing.T) {
	// Truncating an encoded model at any prefix length must yield an
	// error, never a panic or a silently-wrong model.
	m := model.NewFFNNSized(1, 16, []int{8}, 4)
	for _, f := range Formats() {
		data, err := Encode(f, m)
		if err != nil {
			t.Fatal(err)
		}
		check := func(cut uint16) bool {
			n := int(cut) % len(data)
			_, err := Decode(f, data[:n])
			return err != nil
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: truncated decode: %v", f, err)
		}
	}
}

func TestDecodeCorruptHeaderFields(t *testing.T) {
	m := model.NewFFNNSized(1, 16, []int{8}, 4)
	data, err := Encode(ONNX, m)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the layer count (bytes after magic+version+name+shape
	// fields): flipping high bits should produce implausible counts.
	corrupt := append([]byte(nil), data...)
	for i := len(onnxMagic); i < len(onnxMagic)+64 && i < len(corrupt); i++ {
		corrupt[i] ^= 0xFF
	}
	if _, err := Decode(ONNX, corrupt); err == nil {
		t.Fatal("Decode accepted corrupted header")
	}
}

func TestFunctionLibraryIsModelIndependent(t *testing.T) {
	a := functionLibrary()
	b := functionLibrary()
	if len(a) != len(b) || string(a) != string(b) {
		t.Fatal("function library not deterministic")
	}
	if len(a) < 200_000 || len(a) > 800_000 {
		t.Fatalf("function library %d bytes, want a few hundred KB", len(a))
	}
}

func BenchmarkEncodeFFNN(b *testing.B) {
	m := model.NewFFNN(1)
	for _, f := range Formats() {
		b.Run(string(f), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Encode(f, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeFFNN(b *testing.B) {
	m := model.NewFFNN(1)
	for _, f := range Formats() {
		data, err := Encode(f, m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(f), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Decode(f, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
