package modelfmt

import (
	"fmt"

	"crayfish/internal/model"
)

// onnxMagic identifies the ONNX-analogue container.
const onnxMagic = "CRFONNX1"

// onnxCodec is the compact tag-length binary format analogous to ONNX
// protobuf files: a flat node list with inline initialiser tensors and no
// redundant metadata, which makes it the smallest format for small models.
type onnxCodec struct{}

func (onnxCodec) Format() Format { return ONNX }

func (onnxCodec) Encode(m *model.Model) ([]byte, error) {
	w := &binWriter{}
	w.raw([]byte(onnxMagic))
	w.u32(1) // ir_version
	w.writeModelHeader(m)
	for _, l := range m.Layers {
		w.writeLayerCommon(l)
		for _, t := range layerTensors(l) {
			w.tensorField(t)
		}
	}
	return w.bytes(), nil
}

func (onnxCodec) Decode(data []byte) (*model.Model, error) {
	if !hasMagic(data, onnxMagic) {
		return nil, fmt.Errorf("modelfmt: not an ONNX container")
	}
	r := newBinReader(data[len(onnxMagic):])
	ver, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("modelfmt: onnx header: %w", err)
	}
	if ver != 1 {
		return nil, fmt.Errorf("modelfmt: unsupported onnx ir_version %d", ver)
	}
	m, nLayers, err := r.readModelHeader()
	if err != nil {
		return nil, fmt.Errorf("modelfmt: onnx model header: %w", err)
	}
	for i := 0; i < nLayers; i++ {
		l, err := r.readLayerCommon()
		if err != nil {
			return nil, fmt.Errorf("modelfmt: onnx layer %d: %w", i, err)
		}
		ts := layerTensors(l)
		for j := range ts {
			ts[j], err = r.tensorField()
			if err != nil {
				return nil, fmt.Errorf("modelfmt: onnx layer %d tensor %d: %w", i, j, err)
			}
		}
		if err := setLayerTensors(l, ts); err != nil {
			return nil, err
		}
		m.Layers = append(m.Layers, l)
	}
	return m, nil
}
