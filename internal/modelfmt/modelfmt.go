// Package modelfmt implements the four model storage formats evaluated in
// the paper (Table 2): ONNX, TensorFlow SavedModel, TorchScript, and
// Keras H5. Each format is a distinct binary layout with its own size
// characteristics:
//
//   - ONNX: compact tag-length binary; smallest for small models.
//   - Torch: ZIP archive with a JSON structure file and raw tensor entries.
//   - H5: hierarchical binary with per-dataset headers and a group B-tree.
//   - SavedModel: raw variables plus a verbose JSON graph definition and a
//     function-library boilerplate section, so small models pay a large
//     fixed metadata cost (508 KB vs 113 KB for the 113 KB FFNN in the
//     paper) while large models converge to the weight size.
//
// All formats round-trip weights bit-exactly; the embedded serving
// runtimes each load their preferred format, mirroring §3.4.2.
package modelfmt

import (
	"fmt"
	"sort"

	"crayfish/internal/model"
)

// Format identifies a model storage format.
type Format string

// The formats from Table 2.
const (
	ONNX       Format = "onnx"
	SavedModel Format = "savedmodel"
	Torch      Format = "torch"
	H5         Format = "h5"
)

// Formats returns all supported formats in a stable order.
func Formats() []Format {
	return []Format{ONNX, SavedModel, Torch, H5}
}

// Codec encodes and decodes one storage format.
type Codec interface {
	// Format returns the format this codec handles.
	Format() Format
	// Encode serialises a model.
	Encode(m *model.Model) ([]byte, error)
	// Decode reconstructs a model; weights round-trip bit-exactly.
	Decode(data []byte) (*model.Model, error)
}

var codecs = map[Format]Codec{
	ONNX:       onnxCodec{},
	SavedModel: savedModelCodec{},
	Torch:      torchCodec{},
	H5:         h5Codec{},
}

// Lookup returns the codec for a format.
func Lookup(f Format) (Codec, error) {
	c, ok := codecs[f]
	if !ok {
		known := make([]string, 0, len(codecs))
		for k := range codecs {
			known = append(known, string(k))
		}
		sort.Strings(known)
		return nil, fmt.Errorf("modelfmt: unknown format %q (known: %v)", f, known)
	}
	return c, nil
}

// Encode serialises m in the given format.
func Encode(f Format, m *model.Model) ([]byte, error) {
	c, err := Lookup(f)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("modelfmt: refusing to encode invalid model: %w", err)
	}
	return c.Encode(m)
}

// Decode reconstructs a model stored in the given format.
func Decode(f Format, data []byte) (*model.Model, error) {
	c, err := Lookup(f)
	if err != nil {
		return nil, err
	}
	m, err := c.Decode(data)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("modelfmt: decoded model invalid: %w", err)
	}
	return m, nil
}

// Sniff guesses the format of stored bytes from its magic header.
func Sniff(data []byte) (Format, error) {
	switch {
	case hasMagic(data, onnxMagic):
		return ONNX, nil
	case hasMagic(data, h5Magic):
		return H5, nil
	case hasMagic(data, savedModelMagic):
		return SavedModel, nil
	case len(data) >= 2 && data[0] == 'P' && data[1] == 'K': // ZIP
		return Torch, nil
	default:
		return "", fmt.Errorf("modelfmt: unrecognised model bytes")
	}
}

func hasMagic(data []byte, magic string) bool {
	return len(data) >= len(magic) && string(data[:len(magic)]) == magic
}
