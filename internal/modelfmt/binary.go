package modelfmt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"crayfish/internal/model"
	"crayfish/internal/tensor"
)

// maxDecodeDim bounds per-dimension sizes while decoding so corrupt input
// cannot trigger huge allocations.
const maxDecodeDim = 1 << 24

// binWriter serialises primitives in little-endian order.
type binWriter struct {
	buf bytes.Buffer
}

func (w *binWriter) u32(v uint32)  { _ = binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *binWriter) i32(v int32)   { _ = binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *binWriter) f32(v float32) { _ = binary.Write(&w.buf, binary.LittleEndian, v) }

func (w *binWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf.WriteString(s)
}

func (w *binWriter) raw(b []byte) { w.buf.Write(b) }

// tensorBytes renders a tensor's payload as raw little-endian float32.
func tensorBytes(t *tensor.Tensor) []byte {
	out := make([]byte, 4*t.Len())
	for i, v := range t.Data() {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// tensorField writes rank, dims, then raw data. A nil tensor is rank -1.
func (w *binWriter) tensorField(t *tensor.Tensor) {
	if t == nil {
		w.i32(-1)
		return
	}
	w.i32(int32(t.Rank()))
	for _, d := range t.Shape() {
		w.u32(uint32(d))
	}
	w.raw(tensorBytes(t))
}

func (w *binWriter) bytes() []byte { return w.buf.Bytes() }

// binReader deserialises primitives written by binWriter.
type binReader struct {
	r *bytes.Reader
}

func newBinReader(data []byte) *binReader {
	return &binReader{r: bytes.NewReader(data)}
}

func (r *binReader) u32() (uint32, error) {
	var v uint32
	err := binary.Read(r.r, binary.LittleEndian, &v)
	return v, err
}

func (r *binReader) i32() (int32, error) {
	var v int32
	err := binary.Read(r.r, binary.LittleEndian, &v)
	return v, err
}

func (r *binReader) f32() (float32, error) {
	var v float32
	err := binary.Read(r.r, binary.LittleEndian, &v)
	return v, err
}

func (r *binReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if int64(n) > int64(r.r.Len()) {
		return "", fmt.Errorf("modelfmt: string length %d exceeds remaining input", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *binReader) tensorField() (*tensor.Tensor, error) {
	rank, err := r.i32()
	if err != nil {
		return nil, err
	}
	if rank == -1 {
		return nil, nil
	}
	if rank < 0 || rank > 8 {
		return nil, fmt.Errorf("modelfmt: implausible tensor rank %d", rank)
	}
	shape := make([]int, rank)
	n := 1
	for i := range shape {
		d, err := r.u32()
		if err != nil {
			return nil, err
		}
		if d > maxDecodeDim {
			return nil, fmt.Errorf("modelfmt: implausible tensor dimension %d", d)
		}
		shape[i] = int(d)
		n *= int(d)
	}
	if int64(4*n) > int64(r.r.Len()) {
		return nil, fmt.Errorf("modelfmt: tensor payload %d bytes exceeds remaining input", 4*n)
	}
	data := make([]float32, n)
	raw := make([]byte, 4*n)
	if _, err := io.ReadFull(r.r, raw); err != nil {
		return nil, err
	}
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return tensor.FromSlice(data, shape...)
}

// layerTensors lists a layer's tensor fields in a stable order along with
// accessors, so formats can serialise them uniformly.
func layerTensors(l *model.Layer) []*tensor.Tensor {
	return []*tensor.Tensor{l.W, l.B, l.Gamma, l.Beta, l.Mean, l.Variance}
}

func setLayerTensors(l *model.Layer, ts []*tensor.Tensor) error {
	if len(ts) != 6 {
		return fmt.Errorf("modelfmt: layer wants 6 tensor slots, got %d", len(ts))
	}
	l.W, l.B, l.Gamma, l.Beta, l.Mean, l.Variance = ts[0], ts[1], ts[2], ts[3], ts[4], ts[5]
	return nil
}

// tensorFieldNames matches layerTensors order; used by the named formats.
var tensorFieldNames = []string{"W", "B", "gamma", "beta", "mean", "variance"}

// writeLayerCommon serialises a layer's scalar attributes.
func (w *binWriter) writeLayerCommon(l *model.Layer) {
	w.str(string(l.Kind))
	w.str(l.Name)
	w.i32(int32(l.Stride))
	w.i32(int32(l.Pad))
	w.i32(int32(l.PoolSize))
	w.i32(int32(l.Heads))
	w.f32(l.Eps)
}

func (r *binReader) readLayerCommon() (*model.Layer, error) {
	kind, err := r.str()
	if err != nil {
		return nil, err
	}
	name, err := r.str()
	if err != nil {
		return nil, err
	}
	stride, err := r.i32()
	if err != nil {
		return nil, err
	}
	pad, err := r.i32()
	if err != nil {
		return nil, err
	}
	pool, err := r.i32()
	if err != nil {
		return nil, err
	}
	heads, err := r.i32()
	if err != nil {
		return nil, err
	}
	eps, err := r.f32()
	if err != nil {
		return nil, err
	}
	return &model.Layer{
		Kind: model.LayerKind(kind), Name: name,
		Stride: int(stride), Pad: int(pad), PoolSize: int(pool), Heads: int(heads), Eps: eps,
	}, nil
}

// writeModelHeader serialises model metadata.
func (w *binWriter) writeModelHeader(m *model.Model) {
	w.str(m.Name)
	w.i32(int32(len(m.InputShape)))
	for _, d := range m.InputShape {
		w.u32(uint32(d))
	}
	w.i32(int32(m.OutputSize))
	w.i32(int32(len(m.Layers)))
}

func (r *binReader) readModelHeader() (*model.Model, int, error) {
	name, err := r.str()
	if err != nil {
		return nil, 0, err
	}
	rank, err := r.i32()
	if err != nil {
		return nil, 0, err
	}
	if rank < 0 || rank > 8 {
		return nil, 0, fmt.Errorf("modelfmt: implausible input rank %d", rank)
	}
	shape := make([]int, rank)
	for i := range shape {
		d, err := r.u32()
		if err != nil {
			return nil, 0, err
		}
		if d > maxDecodeDim {
			return nil, 0, fmt.Errorf("modelfmt: implausible input dimension %d", d)
		}
		shape[i] = int(d)
	}
	out, err := r.i32()
	if err != nil {
		return nil, 0, err
	}
	nLayers, err := r.i32()
	if err != nil {
		return nil, 0, err
	}
	if nLayers < 0 || nLayers > 1<<16 {
		return nil, 0, fmt.Errorf("modelfmt: implausible layer count %d", nLayers)
	}
	return &model.Model{Name: name, InputShape: shape, OutputSize: int(out)}, int(nLayers), nil
}
