package modelfmt

import (
	"encoding/json"
	"fmt"
	"strings"

	"crayfish/internal/model"
)

// savedModelMagic identifies the SavedModel-analogue container.
const savedModelMagic = "CRFSAVEDMODEL1"

// savedModelCodec emulates TensorFlow's SavedModel bundle: a variables
// section with the raw weights plus a MetaGraph — a verbose JSON graph
// definition with per-node attribute dictionaries, signature definitions,
// and a serialised function-library/op-registry section whose size is
// independent of the model. Small models therefore pay a large fixed
// metadata cost (Table 2: 508 KB SavedModel vs 113 KB ONNX for the FFNN),
// while for large models the bundle converges to the weight size
// (101 MB vs 97 MB for ResNet50).
type savedModelCodec struct{}

func (savedModelCodec) Format() Format { return SavedModel }

// smNode is one node in the verbose graph definition.
type smNode struct {
	Name   string            `json:"name"`
	Op     string            `json:"op"`
	Inputs []string          `json:"inputs"`
	Device string            `json:"device"`
	Attrs  map[string]string `json:"attr"`
}

// smMetaGraph is the saved_model.pb analogue.
type smMetaGraph struct {
	Producer      string            `json:"producer"`
	Tags          []string          `json:"tags"`
	SignatureDefs map[string]string `json:"signature_defs"`
	GraphDef      []smNode          `json:"graph_def"`
	ObjectGraph   []smNode          `json:"object_graph"` // checkpoint view, duplicated as in TF
}

func buildMetaGraph(m *model.Model) smMetaGraph {
	nodes := make([]smNode, 0, len(m.Layers)+2)
	prev := "serving_default_input:0"
	nodes = append(nodes, smNode{
		Name: "input", Op: "Placeholder", Device: "/device:CPU:0",
		Attrs: map[string]string{"dtype": "DT_FLOAT", "shape": fmt.Sprint(m.InputShape)},
	})
	for _, l := range m.Layers {
		attrs := map[string]string{
			"dtype":            "DT_FLOAT",
			"data_format":      "NCHW",
			"T":                "DT_FLOAT",
			"transpose_a":      "false",
			"transpose_b":      "false",
			"_output_shapes":   "unknown",
			"_xla_compile":     "false",
			"container":        "",
			"shared_name":      l.Name,
			"validate_shape":   "true",
			"use_cudnn_on_gpu": "true",
		}
		attrs["strides"] = fmt.Sprintf("[1,1,%d,%d]", l.Stride, l.Stride)
		attrs["padding"] = fmt.Sprintf("EXPLICIT:%d", l.Pad)
		attrs["ksize"] = fmt.Sprintf("[1,1,%d,%d]", l.PoolSize, l.PoolSize)
		attrs["epsilon"] = fmt.Sprint(l.Eps)
		nodes = append(nodes, smNode{
			Name: "StatefulPartitionedCall/model/" + l.Name, Op: strings.ToUpper(string(l.Kind)),
			Inputs: []string{prev}, Device: "/device:CPU:0", Attrs: attrs,
		})
		prev = "StatefulPartitionedCall/model/" + l.Name + ":0"
	}
	return smMetaGraph{
		Producer: "crayfish-savedmodel/1.0",
		Tags:     []string{"serve"},
		SignatureDefs: map[string]string{
			"serving_default":       "inputs: input:0 -> outputs: " + prev,
			"__saved_model_init_op": "NoOp",
		},
		GraphDef:    nodes,
		ObjectGraph: nodes, // TF duplicates the structural view in the object graph
	}
}

// functionLibrary returns the fixed-size op-registry/function-library
// section. Its contents are deterministic boilerplate describing the op
// schema of every kernel, mirroring the model-independent metadata TF
// bundles into every SavedModel.
func functionLibrary() []byte {
	var b strings.Builder
	ops := []string{
		"MatMul", "BiasAdd", "Relu", "Softmax", "Conv2D", "FusedBatchNormV3",
		"MaxPool", "AvgPool", "Mean", "AddV2", "Identity", "Placeholder",
		"Const", "NoOp", "StatefulPartitionedCall", "ReadVariableOp",
		"VarHandleOp", "AssignVariableOp", "Reshape", "Pad", "Cast",
		"Shape", "StridedSlice", "Pack", "ConcatV2", "Fill", "Range",
		"Transpose", "Squeeze", "ExpandDims", "Sum", "Max", "Min",
		"Mul", "Sub", "RealDiv", "Sqrt", "Rsqrt", "SquaredDifference",
		"StopGradient", "PreventGradient",
	}
	for gen := 0; gen < 6; gen++ {
		for _, op := range ops {
			fmt.Fprintf(&b, "op{name:%q generation:%d summary:%q description:%q", op, gen,
				"Computes the "+op+" of its operands element-wise or via the registered kernel.",
				"This op participates in the serving function library; its gradient registration, shape function, and kernel priority list are retained verbatim in the SavedModel bundle so that the graph can be re-imported for further training or transformation.")
			for a := 0; a < 8; a++ {
				fmt.Fprintf(&b, " attr{name:\"attr_%d\" type:\"type\" allowed:[DT_FLOAT,DT_HALF,DT_BFLOAT16,DT_DOUBLE] default:DT_FLOAT has_minimum:false}", a)
			}
			b.WriteString(" kernel{device:\"CPU\" constraint:\"T in [DT_FLOAT]\" priority:1} kernel{device:\"GPU\" constraint:\"T in [DT_FLOAT,DT_HALF]\" priority:2}}\n")
		}
	}
	return []byte(b.String())
}

func (savedModelCodec) Encode(m *model.Model) ([]byte, error) {
	meta, err := json.Marshal(buildMetaGraph(m))
	if err != nil {
		return nil, err
	}
	lib := functionLibrary()
	w := &binWriter{}
	w.raw([]byte(savedModelMagic))
	w.u32(1)
	w.u32(uint32(len(meta)))
	w.raw(meta)
	w.u32(uint32(len(lib)))
	w.raw(lib)
	// variables/variables.data analogue: binary weights.
	w.writeModelHeader(m)
	for _, l := range m.Layers {
		w.writeLayerCommon(l)
		for _, t := range layerTensors(l) {
			w.tensorField(t)
		}
	}
	return w.bytes(), nil
}

func (savedModelCodec) Decode(data []byte) (*model.Model, error) {
	if !hasMagic(data, savedModelMagic) {
		return nil, fmt.Errorf("modelfmt: not a SavedModel bundle")
	}
	r := newBinReader(data[len(savedModelMagic):])
	ver, err := r.u32()
	if err != nil || ver != 1 {
		return nil, fmt.Errorf("modelfmt: savedmodel header version: %v", err)
	}
	metaLen, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("modelfmt: savedmodel metagraph length: %w", err)
	}
	if int64(metaLen) > int64(r.r.Len()) {
		return nil, fmt.Errorf("modelfmt: savedmodel metagraph length %d exceeds input", metaLen)
	}
	meta := make([]byte, metaLen)
	if _, err := r.r.Read(meta); err != nil {
		return nil, fmt.Errorf("modelfmt: savedmodel metagraph: %w", err)
	}
	var mg smMetaGraph
	if err := json.Unmarshal(meta, &mg); err != nil {
		return nil, fmt.Errorf("modelfmt: savedmodel metagraph JSON: %w", err)
	}
	if len(mg.Tags) == 0 || mg.Tags[0] != "serve" {
		return nil, fmt.Errorf("modelfmt: savedmodel missing serve tag")
	}
	libLen, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("modelfmt: savedmodel library length: %w", err)
	}
	if int64(libLen) > int64(r.r.Len()) {
		return nil, fmt.Errorf("modelfmt: savedmodel library length %d exceeds input", libLen)
	}
	if _, err := r.r.Seek(int64(libLen), 1); err != nil {
		return nil, err
	}
	m, nLayers, err := r.readModelHeader()
	if err != nil {
		return nil, fmt.Errorf("modelfmt: savedmodel variables header: %w", err)
	}
	for i := 0; i < nLayers; i++ {
		l, err := r.readLayerCommon()
		if err != nil {
			return nil, fmt.Errorf("modelfmt: savedmodel layer %d: %w", i, err)
		}
		ts := layerTensors(l)
		for j := range ts {
			ts[j], err = r.tensorField()
			if err != nil {
				return nil, fmt.Errorf("modelfmt: savedmodel layer %d tensor %d: %w", i, j, err)
			}
		}
		if err := setLayerTensors(l, ts); err != nil {
			return nil, err
		}
		m.Layers = append(m.Layers, l)
	}
	return m, nil
}
