// Package telemetry is the live observability layer for the Crayfish
// pipeline (§3.2's analyzer component, extended from post-hoc analysis to
// continuous sampling): atomic counters, gauges, and mergeable streaming
// latency histograms collected in a named registry while an experiment
// runs, so mid-run pathologies — broker queue growth, scorer stalls,
// micro-batch backpressure — are visible before the run ends.
//
// Concurrency contract: every metric handle (Counter, Gauge, Histogram)
// is safe for concurrent use from any number of goroutines; the hot paths
// (Add, Set, Record) are lock-free, built on sync/atomic only. Registry
// lookups take a mutex and are meant for setup time — resolve handles
// once, then record through them. Snapshot may be called concurrently
// with recording; it observes each metric atomically (per-field, not
// cross-metric).
//
// Disabled-path contract: a nil *Registry returns nil metric handles, and
// every handle method no-ops on a nil receiver. Instrumented code
// therefore never branches on "telemetry enabled" — it records
// unconditionally, and the nil-receiver fast path compiles to a
// single predictable branch (see BenchmarkRecordDisabled).
//
// Naming convention: metric names are dot-separated `stage.metric`
// paths; duration-valued metrics carry an `_ns` suffix and are recorded
// in nanoseconds. The full contract — every name, type, unit, and stage
// of origin — is documented in docs/OBSERVABILITY.md.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil Counter silently discards updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (queue depth, lag). The zero value is
// ready to use; a nil Gauge silently discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the level by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of live metrics. The zero value is not
// usable; create one with New. A nil *Registry is the disabled
// instrumentation mode: all lookups return nil handles.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a nil handle.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Names returns all registered metric names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.histograms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot captures every metric's current state. A nil registry
// returns nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		histograms[n] = h
	}
	r.mu.Unlock()

	s := &Snapshot{
		At:         time.Now(),
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(histograms)),
	}
	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range histograms {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}
