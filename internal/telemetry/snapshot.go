package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Snapshot is one point-in-time capture of a registry: every counter and
// gauge value plus a summary of every histogram. Snapshots are plain
// data — safe to retain, compare, and serialise after the run.
type Snapshot struct {
	At         time.Time                    `json:"at"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// formatValue renders a metric value, showing `_ns`-suffixed metrics as
// human-readable durations.
func formatValue(name string, v int64) string {
	if strings.HasSuffix(name, "_ns") {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%d", v)
}

// WriteText renders the snapshot as sorted fixed-form text, one metric
// per line. When prev is a snapshot of the same registry taken earlier,
// counters additionally show the rate over the elapsed interval.
func (s *Snapshot) WriteText(w io.Writer, prev *Snapshot) error {
	if s == nil {
		return nil
	}
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		v := s.Counters[name]
		rate := ""
		if prev != nil {
			if dt := s.At.Sub(prev.At).Seconds(); dt > 0 {
				rate = fmt.Sprintf("  (%.0f/s)", float64(v-prev.Counters[name])/dt)
			}
		}
		pr("counter %-34s %12d%s\n", name, v, rate)
	}
	for _, name := range sortedKeys(s.Gauges) {
		pr("gauge   %-34s %12s\n", name, formatValue(name, s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pr("hist    %-34s %12d  p50 %s  p95 %s  p99 %s  max %s\n",
			name, h.Count,
			formatValue(name, h.P50), formatValue(name, h.P95),
			formatValue(name, h.P99), formatValue(name, h.Max))
	}
	return err
}

// Format renders the snapshot as text without rate annotations.
func (s *Snapshot) Format() string {
	var b strings.Builder
	_ = s.WriteText(&b, nil)
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump starts a goroutine that writes a text snapshot of r to w every
// interval, annotated with per-interval counter rates. The returned stop
// function halts the dumper, emits one final snapshot, and waits for the
// goroutine to exit; it is safe to call once.
func Dump(w io.Writer, r *Registry, interval time.Duration) (stop func()) {
	if r == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		prev := r.Snapshot()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			snap := r.Snapshot()
			fmt.Fprintf(w, "--- telemetry @ %s ---\n", snap.At.Format("15:04:05.000"))
			_ = snap.WriteText(w, prev)
			prev = snap
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
