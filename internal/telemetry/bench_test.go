package telemetry

import (
	"testing"
	"time"
)

// BenchmarkRecordDisabled measures the cost instrumented code pays when
// telemetry is off: recording through the nil handles a nil *Registry
// hands out. The acceptance bar is < 5 ns/op — a single nil-receiver
// branch per call site.
func BenchmarkRecordDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("producer.events")
	h := r.Histogram("consumer.e2e_latency_ns")
	g := r.Gauge("broker.backlog.crayfish-in")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Record(int64(i))
		g.Set(int64(i))
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := New().Counter("producer.events")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := New().Histogram("consumer.e2e_latency_ns")
	v := int64(3 * time.Millisecond)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Record(v)
		}
	})
}

func BenchmarkSnapshot(b *testing.B) {
	r := New()
	for _, n := range []string{"a", "b", "c", "d"} {
		r.Counter("count." + n).Add(1)
		r.Histogram("lat." + n + "_ns").Record(1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Snapshot()
	}
}
