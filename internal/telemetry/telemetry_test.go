package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("x.count")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("x.count") != c {
		t.Fatal("same name should return the same counter")
	}
	g := r.Gauge("x.level")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metric handles")
	}
	// All of these must be safe no-ops.
	c.Add(1)
	c.Inc()
	g.Set(5)
	g.Add(1)
	h.Record(100)
	h.RecordSince(time.Now())
	h.Merge(NewHistogram())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must be zero")
	}
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil registry snapshot = %+v, want nil", s)
	}
	if names := r.Names(); names != nil {
		t.Fatalf("nil registry names = %v, want nil", names)
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose [lo, lo+width) range
	// contains it, and indices must be monotonic in the value.
	vals := []int64{0, 1, 15, 16, 17, 31, 32, 100, 1000, 12345,
		1 << 20, 1<<20 + 1, 1 << 40, math.MaxInt64}
	prevIdx := -1
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx < prevIdx {
			t.Fatalf("bucketIndex not monotonic at %d", v)
		}
		prevIdx = idx
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, idx, numBuckets)
		}
		lo, width := bucketBounds(idx)
		if v < lo || v >= lo+width && width > 0 {
			// width can overflow for the top octave; only check the
			// lower bound there.
			if v < lo {
				t.Fatalf("value %d outside bucket %d = [%d, %d+%d)", v, idx, lo, lo, width)
			}
		}
	}
	// The exact region must be unit-width.
	for v := int64(0); v < subCount; v++ {
		if idx := bucketIndex(v); idx != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want identity below %d", v, idx, subCount)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	if want := int64(1000 * 1001 / 2); h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
	s := h.Snapshot()
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("min/max = %d/%d, want 1/1000", s.Min, s.Max)
	}
	if s.Mean != 500 {
		t.Fatalf("mean = %d, want 500", s.Mean)
	}
	// Quantiles are bucket-accurate: within 6.25% of the true value.
	checks := []struct {
		q    float64
		want int64
	}{{0.50, 500}, {0.95, 950}, {0.99, 990}, {1, 1000}, {0, 1}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if errRel := math.Abs(float64(got-c.want)) / float64(c.want); errRel > 0.0625 {
			t.Errorf("q%.2f = %d, want %d ± 6.25%%", c.q, got, c.want)
		}
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 0 || s.Max != 0 || s.Sum != 0 {
		t.Fatalf("negative record snapshot = %+v, want one zero observation", s)
	}
}

// TestHistogramConcurrentMergeExact drives many goroutines recording
// into both a shared histogram and per-goroutine shards, then merges the
// shards. Exactness means: no lost updates under concurrency, and the
// merged histogram is bucket-for-bucket identical to the shared one.
// Run under -race (scripts/check.sh) this also proves the hot path is
// data-race free.
func TestHistogramConcurrentMergeExact(t *testing.T) {
	const goroutines = 8
	const perG = 5000
	shared := NewHistogram()
	shards := make([]*Histogram, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		shards[g] = NewHistogram()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Deterministic but varied values spanning octaves.
				v := int64((g+1)*(i+1)) % 100000
				shared.Record(v)
				shards[g].Record(v)
			}
		}(g)
	}
	wg.Wait()

	merged := NewHistogram()
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Count() != int64(goroutines*perG) || shared.Count() != merged.Count() {
		t.Fatalf("counts: shared=%d merged=%d want=%d", shared.Count(), merged.Count(), goroutines*perG)
	}
	if merged.Sum() != shared.Sum() {
		t.Fatalf("sums diverge: shared=%d merged=%d", shared.Sum(), merged.Sum())
	}
	for i := 0; i < numBuckets; i++ {
		if a, b := shared.buckets[i].Load(), merged.buckets[i].Load(); a != b {
			t.Fatalf("bucket %d diverges: shared=%d merged=%d", i, a, b)
		}
	}
	ss, ms := shared.Snapshot(), merged.Snapshot()
	if ss != ms {
		t.Fatalf("snapshots diverge:\nshared %+v\nmerged %+v", ss, ms)
	}
}

func TestSnapshotText(t *testing.T) {
	r := New()
	r.Counter("b.count").Add(42)
	r.Counter("a.count").Add(7)
	r.Gauge("q.depth").Set(3)
	r.Histogram("lat_ns").Record(int64(1500 * time.Microsecond))
	text := r.Snapshot().Format()
	for _, want := range []string{"a.count", "b.count", "q.depth", "lat_ns", "1.5ms"} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot text missing %q:\n%s", want, text)
		}
	}
	if strings.Index(text, "a.count") > strings.Index(text, "b.count") {
		t.Error("counters not sorted by name")
	}
}

func TestSnapshotRates(t *testing.T) {
	r := New()
	c := r.Counter("ev")
	prev := r.Snapshot()
	prev.At = prev.At.Add(-time.Second) // pretend one second elapsed
	c.Add(100)
	var b strings.Builder
	if err := r.Snapshot().WriteText(&b, prev); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "/s)") {
		t.Fatalf("expected a rate annotation, got:\n%s", b.String())
	}
}

func TestHTTPHandler(t *testing.T) {
	r := New()
	r.Counter("requests").Add(5)
	r.Histogram("lat_ns").Record(1000)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["requests"] != 5 {
		t.Fatalf("requests = %d, want 5", snap.Counters["requests"])
	}
	if snap.Histograms["lat_ns"].Count != 1 {
		t.Fatalf("histogram count = %d, want 1", snap.Histograms["lat_ns"].Count)
	}
}

func TestDump(t *testing.T) {
	r := New()
	r.Counter("ev").Add(1)
	var mu sync.Mutex
	var b strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	stop := Dump(w, r, 5*time.Millisecond)
	time.Sleep(25 * time.Millisecond)
	stop()
	mu.Lock()
	out := b.String()
	mu.Unlock()
	if !strings.Contains(out, "telemetry @") || !strings.Contains(out, "ev") {
		t.Fatalf("dumper output missing snapshot:\n%s", out)
	}
	// Disabled configurations must be inert.
	Dump(w, nil, time.Millisecond)()
	Dump(w, r, 0)()
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
