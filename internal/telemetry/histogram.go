package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: values in [0, 2^subBits) land in exact
// unit-width buckets; above that, each power-of-two octave is split into
// 2^subBits sub-buckets (HDR-histogram style), bounding the relative
// quantile error at 2^-subBits (6.25%) while keeping the whole structure
// a fixed flat array of atomic counters.
const (
	subBits  = 4
	subCount = 1 << subBits
	// numBuckets covers every non-negative int64: subCount exact
	// buckets plus one block per exponent 4..62 (the top set bit of
	// math.MaxInt64 is bit 62).
	numBuckets = subCount + (63-subBits)*subCount
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // position of the top set bit, >= subBits
	sub := (u >> (uint(exp) - subBits)) & (subCount - 1)
	return (exp-subBits)*subCount + subCount + int(sub)
}

// bucketBounds returns the inclusive lower bound and the width of a
// bucket, the inverse of bucketIndex.
func bucketBounds(idx int) (lo, width int64) {
	if idx < subCount {
		return int64(idx), 1
	}
	block := idx/subCount - 1
	sub := idx % subCount
	exp := uint(block + subBits)
	width = int64(1) << (exp - subBits)
	lo = int64(1)<<exp + int64(sub)*width
	return lo, width
}

// Histogram is a lock-free streaming histogram with log-spaced buckets.
// Record is wait-free (plain atomic adds on the bucket array, count, and
// sum; bounded CAS loops for min/max); Merge and Snapshot read the same
// atomics, so recording never blocks observation. Negative values clamp
// to zero. Create instances with NewHistogram (or through a Registry);
// a nil Histogram silently discards recordings.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 until the first Record
	max     atomic.Int64 // -1 until the first Record
	buckets [numBuckets]atomic.Int64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(-1)
	return h
}

// Record adds one observation. Negative values count as zero.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordSince records the elapsed nanoseconds since start.
func (h *Histogram) RecordSince(start time.Time) {
	if h == nil {
		return
	}
	h.Record(int64(time.Since(start)))
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact sum of recorded observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Merge folds other's observations into h. Counts transfer exactly
// (bucket-by-bucket atomic adds); h's quantiles afterwards equal those of
// a histogram that had recorded both streams. Merging while other is
// still being recorded into transfers whatever had landed at read time.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for i := range other.buckets {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for {
		v, cur := other.min.Load(), h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		v, cur := other.max.Load(), h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts,
// accurate to the bucket width (≤ 6.25% relative error). It returns 0
// for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			lo, width := bucketBounds(i)
			mid := lo + width/2
			// Clamp to the observed extremes so tiny histograms
			// report exact values.
			if min := h.min.Load(); mid < min {
				mid = min
			}
			if max := h.max.Load(); mid > max {
				mid = max
			}
			return mid
		}
	}
	return h.max.Load()
}

// HistogramSnapshot is one histogram's state at a point in time. All
// values share the histogram's unit (nanoseconds for `_ns` metrics).
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	Mean  int64 `json:"mean"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// Snapshot summarises the histogram. Count and Sum are exact; quantiles
// carry the bucket-width error. A nil histogram returns the zero
// snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
		s.Mean = s.Sum / s.Count
	}
	return s
}
