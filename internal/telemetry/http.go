package telemetry

import (
	"encoding/json"
	"net/http"
)

// Handler serves JSON snapshots of the registry, for mounting at
// /metrics on daemon processes (brokerd, modelserver). Each GET captures
// a fresh snapshot; pair it with net/http/pprof on the same mux for a
// full live-debugging endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if snap == nil {
			http.Error(w, "telemetry disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}
