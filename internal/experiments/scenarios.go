package experiments

import (
	"fmt"
	"time"

	"crayfish/internal/core"
	"crayfish/internal/loadgen"
)

// ScenarioSuite runs the four MLPerf-style load scenarios
// (docs/SCENARIOS.md) across engine × serving tool and books each run's
// structured verdict: single-stream (issue-on-completion, p90), multi-
// stream (fixed outstanding window, p99), server (offered Poisson rate
// under a p99 bound), offline (unpaced, throughput booked). A final
// offered-load sweep steps the server scenario's Poisson rate on the
// fastest pair and reports the knee — the highest offered rate that
// still meets the bound, the capacity number BENCH_inference.json tracks
// as server_capacity_rps.
func ScenarioSuite(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Scenario S1",
		Title:  "MLPerf-style scenarios (FFNN, mp=1) across engine × serving tool, plus the server capacity sweep",
		Header: []string{"scenario", "engine", "serving", "constraint", "measured", "bound", "verdict"},
	}
	d := o.scaled(2 * time.Second)
	// The bound is deliberately loose for the in-process harness: the
	// suite demonstrates the verdict machinery; tight-bound studies
	// belong to the capacity sweep below.
	const bound = 250 * time.Millisecond
	pairs := []struct {
		engine  string
		serving core.ServingConfig
	}{
		{"flink", embeddedTool("onnx")},
		{"flink", externalTool("tf-serving")},
		{"kafka-streams", embeddedTool("onnx")},
		{"kafka-streams", externalTool("tf-serving")},
	}
	scenarios := []loadgen.Scenario{
		{Kind: loadgen.SingleStream, LatencyBound: bound},
		{Kind: loadgen.MultiStream, Streams: 4, LatencyBound: bound},
		{Kind: loadgen.Server, TargetRate: 200, Seed: 7, LatencyBound: bound},
		{Kind: loadgen.Offline},
	}
	runner := &core.Runner{}
	for _, sc := range scenarios {
		for _, p := range pairs {
			w := o.ffnnWorkload()
			w.Duration = d
			cfg := o.baseConfig(p.engine, p.serving, w, "ffnn", 1)
			res, err := runner.RunScenario(cfg, sc)
			if err != nil {
				return nil, fmt.Errorf("scenario %s %s/%s: %w", sc.Kind, p.engine, p.serving.Tool, err)
			}
			v := res.Verdict
			status := "PASS"
			if !v.Pass {
				status = "FAIL"
			}
			boundCell := fmt.Sprintf("%g %s", v.Bound, v.Unit)
			if v.Bound == 0 {
				boundCell = "—"
			}
			r.AddRow(string(sc.Kind), p.engine, string(p.serving.Mode)+" "+p.serving.Tool,
				v.Constraint, fmt.Sprintf("%.2f %s", v.Metric, v.Unit), boundCell, status)
			o.logf("scenario %s %s/%s: %s", sc.Kind, p.engine, p.serving.Tool, v)
		}
	}

	// Percentile-latency-vs-offered-load sweep: step the server
	// scenario's Poisson rate on flink/onnx and find the knee.
	sweepRates := []float64{250, 500, 1000, 2000}
	w := o.ffnnWorkload()
	w.Duration = d
	sweepCfg := o.baseConfig("flink", embeddedTool("onnx"), w, "ffnn", 1)
	sweepSc := loadgen.Scenario{Kind: loadgen.Server, Seed: 7, LatencyBound: bound}
	capacity, points, err := runner.FindServerCapacity(sweepCfg, sweepSc, sweepRates)
	if err != nil {
		return nil, fmt.Errorf("capacity sweep: %w", err)
	}
	for _, pt := range points {
		v := pt.Result.Verdict
		status := "PASS"
		if !v.Pass {
			status = "FAIL"
		}
		r.AddRow("server sweep", "flink", "embedded onnx",
			fmt.Sprintf("offered %s ev/s", fmtRate(pt.Rate)),
			fmt.Sprintf("%.2f %s", v.Metric, v.Unit),
			fmt.Sprintf("%g %s", v.Bound, v.Unit), status)
		o.logf("capacity sweep at %s ev/s: %s", fmtRate(pt.Rate), v)
	}
	r.AddNote("server capacity (knee of the p99-vs-offered-load curve on flink/onnx): %s events/s", fmtRate(capacity))
	r.AddNote("arrival schedules are seed-deterministic: replaying a scenario's seed reproduces the schedule byte for byte (docs/SCENARIOS.md)")
	return r, nil
}
