package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"crayfish/internal/batching"
	"crayfish/internal/broker"
	"crayfish/internal/core"
	"crayfish/internal/model"
	"crayfish/internal/netsim"
	"crayfish/internal/serving/embedded"
	"crayfish/internal/sps/flink"
	"crayfish/internal/telemetry"
)

// AblationProducerBatching quantifies the §3.5 "producer-level batching"
// design decision: shipping bsz data points as one CrayfishDataBatch event
// versus one event per data point.
func AblationProducerBatching(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Ablation A1",
		Title:  "Producer-level batching: one event per batch vs one event per point (Flink + ONNX)",
		Header: []string{"arrangement", "points/s"},
	}
	d := o.scaled(2 * time.Second)

	// Batched: 32 points per event.
	w := o.ffnnWorkload()
	w.BatchSize = 32
	cfg := o.baseConfig("flink", embeddedTool("onnx"), w, "ffnn", 1)
	cfg.Workload.InputRate = 2_000
	cfg.Workload.Duration = d
	runner := &core.Runner{DrainTimeout: time.Millisecond}
	res, err := runner.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("ablation batching (batched): %w", err)
	}
	r.AddRow("1 event = 32 points", fmtRate(res.Metrics.Throughput*32))

	// Unbatched: one point per event.
	w = o.ffnnWorkload()
	w.BatchSize = 1
	cfg = o.baseConfig("flink", embeddedTool("onnx"), w, "ffnn", 1)
	cfg.Workload.InputRate = openLoopRate("ffnn")
	cfg.Workload.Duration = d
	res, err = runner.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("ablation batching (per-point): %w", err)
	}
	r.AddRow("1 event = 1 point", fmtRate(res.Metrics.Throughput))
	r.AddNote("batching data points into one event amortises per-event framework overhead, justifying the CrayfishDataBatch unit")
	return r, nil
}

// AblationSerialization compares the paper's JSON pipeline codec against
// the compact binary codec.
func AblationSerialization(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Ablation A2",
		Title:  "Pipeline serialisation: JSON (paper default) vs binary codec (Flink + ONNX, FFNN)",
		Header: []string{"codec", "throughput (events/s)"},
	}
	for _, codec := range []core.BatchCodec{core.JSONCodec{}, core.BinaryCodec{}} {
		cfg := o.baseConfig("flink", embeddedTool("onnx"), o.ffnnWorkload(), "ffnn", 1)
		cfg.Workload.InputRate = openLoopRate("ffnn")
		cfg.Workload.Duration = o.scaled(2 * time.Second)
		runner := &core.Runner{Codec: codec, DrainTimeout: time.Millisecond}
		res, err := runner.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation serialisation (%s): %w", codec.Name(), err)
		}
		o.logf("ablation serialisation %s: %.1f events/s", codec.Name(), res.Metrics.Throughput)
		r.AddRow(codec.Name(), fmtRate(res.Metrics.Throughput))
	}
	r.AddNote("JSON costs real throughput; the paper accepts it for simplicity and flexibility (§3.1)")
	return r, nil
}

// AblationTransport compares the in-process broker with the TCP broker
// daemon, isolating real wire serialisation from the modelled LAN.
func AblationTransport(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Ablation A3",
		Title:  "Broker transport: in-process vs TCP daemon (Flink + ONNX, FFNN, no modelled LAN)",
		Header: []string{"transport", "throughput (events/s)", "mean latency"},
	}
	run := func(transport broker.Transport, label string) error {
		cfg := o.baseConfig("flink", embeddedTool("onnx"), o.ffnnWorkload(), "ffnn", 1)
		cfg.Network.Latency = 0
		cfg.Network.BandwidthBytesPerSec = 0
		cfg.Workload.InputRate = 2_000
		cfg.Workload.Duration = o.scaled(2 * time.Second)
		runner := &core.Runner{Transport: transport, DrainTimeout: 100 * time.Millisecond}
		res, err := runner.Run(cfg)
		if err != nil {
			return fmt.Errorf("ablation transport (%s): %w", label, err)
		}
		o.logf("ablation transport %s: %.1f events/s, %v", label, res.Metrics.Throughput, res.Metrics.Latency.Mean)
		r.AddRow(label, fmtRate(res.Metrics.Throughput), fmtMs(res.Metrics.Latency.Mean))
		return nil
	}
	if err := run(nil, "in-process"); err != nil {
		return nil, err
	}
	b := broker.New(broker.DefaultConfig())
	srv, err := broker.Serve(b, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer func() { _ = srv.Close() }()
	rc, err := broker.Dial(srv.Addr())
	if err != nil {
		return nil, err
	}
	defer func() { _ = rc.Close() }()
	if err := run(rc, "tcp"); err != nil {
		return nil, err
	}
	r.AddNote("the TCP daemon pays real frame serialisation and socket hops; experiments use the in-process broker plus the modelled LAN profile")
	return r, nil
}

// AblationFusedExecution isolates the ONNX runtime's graph-level fusion:
// the same model scored through the fused engine vs the unfused op-by-op
// executor, without any pipeline around it.
func AblationFusedExecution(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Ablation A4",
		Title:  "Execution plan: fused (ONNX engine) vs unfused (SavedModel path), FFNN, direct scoring",
		Header: []string{"plan", "ns/inference"},
	}
	m := model.NewFFNN(1)
	rng := rand.New(rand.NewSource(1))
	inputs := make([]float32, m.InputLen())
	for i := range inputs {
		inputs[i] = rng.Float32()
	}
	iters := int(2000 * o.Scale)
	if iters < 50 {
		iters = 50
	}
	for _, fused := range []bool{true, false} {
		engine := embedded.NewEngine(m, fused)
		// Warm up.
		for i := 0; i < 20; i++ {
			if _, err := engine.Run(inputs, 1, model.ExecHints{}); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := engine.Run(inputs, 1, model.ExecHints{}); err != nil {
				return nil, err
			}
		}
		per := time.Since(start) / time.Duration(iters)
		name := "unfused op-by-op"
		if fused {
			name = "fused dense plan"
		}
		o.logf("ablation fusion %s: %v/inference", name, per)
		r.AddRow(name, fmt.Sprint(per.Nanoseconds()))
	}
	r.AddNote("fusion + buffer reuse is why the ONNX analogue leads Table 4, and why TF-Serving beats TorchServe externally")
	return r, nil
}

// AblationAsyncIO measures the §7 what-if the paper declines to run: the
// same external-serving pipeline with Flink's blocking calls (the paper's
// §4.3 setting) versus its asynchronous I/O operator.
func AblationAsyncIO(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Ablation A6",
		Title:  "Flink external calls: blocking (paper setting) vs async I/O operator (FFNN + TF-Serving, mp=1)",
		Header: []string{"scoring calls", "throughput (events/s)"},
	}
	for _, async := range []bool{false, true} {
		engine := flink.New()
		engine.AsyncIO = async
		cfg := o.baseConfig("flink", externalTool("tf-serving"), o.ffnnWorkload(), "ffnn", 1)
		tput, err := o.saturateWithEngine(cfg, engine, o.scaled(2*time.Second))
		if err != nil {
			return nil, fmt.Errorf("ablation async (async=%v): %w", async, err)
		}
		name := "blocking"
		if async {
			name = "async I/O (capacity 16)"
		}
		o.logf("ablation async %s: %.1f events/s", name, tput)
		r.AddRow(name, fmtRate(tput))
	}
	r.AddNote("async I/O overlaps the per-call network wait, recovering most of the embedded-vs-external gap — the close-integration direction §7 advocates")
	return r, nil
}

// AblationFastKernels isolates the GPU device's kernel-level gains:
// direct convolution vs Winograd vs Winograd + folded batch norms on the
// benchmark ResNet.
func AblationFastKernels(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Ablation A5",
		Title:  "Accelerator kernels: direct conv vs Winograd vs Winograd+BN-folding (benchmark ResNet, bsz=1)",
		Header: []string{"kernel path", "ms/inference"},
	}
	m := model.NewResNet(model.BenchResNetConfig(1))
	folded := model.FoldBatchNorm(m)
	rng := rand.New(rand.NewSource(1))
	inputs := make([]float32, m.InputLen())
	for i := range inputs {
		inputs[i] = rng.Float32()
	}
	iters := int(12 * o.Scale)
	if iters < 2 {
		iters = 2
	}
	measure := func(mm *model.Model, hints model.ExecHints) (time.Duration, error) {
		// Warm (builds Winograd caches).
		if _, err := embedded.ForwardUnfused(mm, inputs, 1, hints); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := embedded.ForwardUnfused(mm, inputs, 1, hints); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(iters), nil
	}
	cases := []struct {
		name  string
		m     *model.Model
		hints model.ExecHints
	}{
		{"direct conv (cpu)", m, model.ExecHints{}},
		{"winograd (gpu kernels)", m, model.ExecHints{FastConv: true}},
		{"winograd + bn folding (tf-serving gpu)", folded, model.ExecHints{FastConv: true}},
	}
	for _, c := range cases {
		per, err := measure(c.m, c.hints)
		if err != nil {
			return nil, fmt.Errorf("ablation kernels (%s): %w", c.name, err)
		}
		o.logf("ablation kernels %s: %v", c.name, per)
		r.AddRow(c.name, fmtMs(per))
	}
	// The float32-vs-int8 arm: calibrate the folded model and run the
	// quantized plan over the same inputs (docs/QUANTIZATION.md).
	cal, err := folded.Calibrate(inputs, 1)
	if err != nil {
		return nil, fmt.Errorf("ablation kernels (int8 calibration): %w", err)
	}
	qplan, err := folded.QuantizePlan(model.ExecHints{}, cal)
	if err != nil {
		return nil, fmt.Errorf("ablation kernels (int8 plan): %w", err)
	}
	defer qplan.Close()
	qout := make([]float32, qplan.OutputLen())
	qbuf := make([]float32, len(inputs))
	qMeasure := func() (time.Duration, error) {
		copy(qbuf, inputs)
		if err := qplan.Forward(qbuf, 1, qout); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			copy(qbuf, inputs)
			if err := qplan.Forward(qbuf, 1, qout); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(iters), nil
	}
	qper, err := qMeasure()
	if err != nil {
		return nil, fmt.Errorf("ablation kernels (int8 plan): %w", err)
	}
	o.logf("ablation kernels int8 quantized plan: %v", qper)
	r.AddRow("int8 quantized plan (tensorrt-style)", fmtMs(qper))
	r.AddNote("these real kernel-level gains are the source of Figure 9's GPU improvements (plus the modelled PCIe transfer)")
	r.AddNote("the int8 arm runs the packed-GEMM quantized plan on the BN-folded model; its accuracy cost is pinned by the drift contract (docs/QUANTIZATION.md)")
	return r, nil
}

// AblationNetworkRealism quantifies the modelled LAN's contribution: the
// same pipelines with the inter-machine links at loopback speed versus
// the paper-fitted LAN profile, so readers can see exactly what the
// modelled network adds to every other number in EXPERIMENTS.md.
func AblationNetworkRealism(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Ablation A7",
		Title:  "Network realism: loopback vs modelled LAN (Flink, FFNN, mp=1)",
		Header: []string{"serving", "network", "throughput (events/s)", "mean latency"},
	}
	for _, serving := range []core.ServingConfig{embeddedTool("onnx"), externalTool("tf-serving")} {
		for _, lan := range []bool{false, true} {
			cfg := o.baseConfig("flink", serving, o.ffnnWorkload(), "ffnn", 1)
			name := "loopback"
			if !lan {
				cfg.Network = netsim.Loopback
			} else {
				name = "LAN (paper-fitted)"
			}
			cfg.Workload.InputRate = 100
			cfg.Workload.Duration = o.scaled(2 * time.Second)
			runner := &core.Runner{}
			latRes, err := runner.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("ablation network (%s/%s): %w", serving.Tool, name, err)
			}
			tput, err := o.saturate(cfg, o.scaled(2*time.Second))
			if err != nil {
				return nil, fmt.Errorf("ablation network (%s/%s): %w", serving.Tool, name, err)
			}
			o.logf("ablation network %s/%s: %.1f events/s, %v", serving.Tool, name, tput, latRes.Metrics.Latency.Mean)
			r.AddRow(serving.Tool, name, fmtRate(tput), fmtMs(latRes.Metrics.Latency.Mean))
		}
	}
	r.AddNote("the LAN profile is fitted to the paper's measured pings (netsim.LAN); it is what makes scaling curves and external-call costs behave like the 9-VM deployment")
	return r, nil
}

// AblationDynamicBatching sweeps the scoring operator's micro-batch
// dimension (§4's bsz lever applied inside the operator): fixed batch
// targets against the SLO-driven AIMD controller, on the external
// serving path where every scorer invocation pays a wire round trip —
// the cost coalescing amortises.
func AblationDynamicBatching(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Ablation A8",
		Title:  "Dynamic micro-batching: fixed targets vs SLO-driven AIMD (Flink + TF-Serving, FFNN)",
		Header: []string{"batching", "throughput (events/s)", "mean latency", "batches", "final target"},
	}
	d := o.scaled(2 * time.Second)
	run := func(label string, policy *batching.Policy) error {
		reg := telemetry.New()
		cfg := o.baseConfig("flink", externalTool("tf-serving"), o.ffnnWorkload(), "ffnn", 4)
		cfg.Batching = policy
		cfg.Telemetry = reg
		cfg.Workload.InputRate = 2_000
		cfg.Workload.Duration = d
		runner := &core.Runner{DrainTimeout: time.Millisecond}
		res, err := runner.Run(cfg)
		if err != nil {
			return fmt.Errorf("ablation dynbatch (%s): %w", label, err)
		}
		batches, target := "—", "—"
		if policy != nil && res.Telemetry != nil {
			batches = fmt.Sprintf("%d", res.Telemetry.Histograms["sps.batch.size"].Count)
			target = fmt.Sprintf("%d", res.Telemetry.Gauges["sps.batch.target"])
		}
		o.logf("ablation dynbatch %s: %.1f events/s, %v mean", label, res.Metrics.Throughput, res.Metrics.Latency.Mean)
		r.AddRow(label, fmtRate(res.Metrics.Throughput), fmtMs(res.Metrics.Latency.Mean), batches, target)
		return nil
	}
	if err := run("off", nil); err != nil {
		return nil, err
	}
	for _, bsz := range []int{1, 4, 16, 64} {
		p := &batching.Policy{MaxBatch: bsz, MinBatch: bsz}
		if err := run(fmt.Sprintf("fixed bsz=%d", bsz), p); err != nil {
			return nil, err
		}
	}
	adaptive := &batching.Policy{MaxBatch: 64, SLO: 50 * time.Millisecond, Window: 32}
	if err := run("adaptive (AIMD, SLO 50ms)", adaptive); err != nil {
		return nil, err
	}
	r.AddNote("larger fixed targets trade queueing latency for fewer wire round trips; the AIMD controller finds the largest target whose p95 operator latency holds the SLO")
	return r, nil
}

// AblationAttention isolates the fused transformer kernels: the same
// transformer scored through plans compiled with the unfused reference
// kernels (materialised S×S scores, multi-pass layer norm, erf GELU),
// the fused flash-style kernels (tiled attention with online softmax,
// one-pass residual + layer norm), and the fused kernels with the GPU
// profile's head-parallel fan-out.
func AblationAttention(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Ablation A9",
		Title:  "Fused transformer kernels: unfused reference vs flash-style fused vs fused + head-parallel (transformer, bsz=1)",
		Header: []string{"kernel path", "ns/inference"},
	}
	m := model.NewTransformer(model.DefaultTransformerConfig(1))
	rng := rand.New(rand.NewSource(1))
	inputs := make([]float32, m.InputLen())
	for i := range inputs {
		inputs[i] = rng.Float32()
	}
	iters := int(400 * o.Scale)
	if iters < 20 {
		iters = 20
	}
	cases := []struct {
		name  string
		hints model.ExecHints
	}{
		{"unfused reference (cpu)", model.ExecHints{}},
		{"fused flash-attention (gpu kernels)", model.ExecHints{FastConv: true}},
		{"fused + head-parallel (gpu, 4 workers)", model.ExecHints{FastConv: true, Workers: 4}},
	}
	buf := make([]float32, len(inputs))
	for _, c := range cases {
		plan, err := m.Compile(c.hints)
		if err != nil {
			return nil, fmt.Errorf("ablation attention (%s): %w", c.name, err)
		}
		out := make([]float32, plan.OutputLen())
		// Warm up (builds the execution state).
		copy(buf, inputs)
		if err := plan.Forward(buf, 1, out); err != nil {
			plan.Close()
			return nil, fmt.Errorf("ablation attention (%s): %w", c.name, err)
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			copy(buf, inputs)
			if err := plan.Forward(buf, 1, out); err != nil {
				plan.Close()
				return nil, fmt.Errorf("ablation attention (%s): %w", c.name, err)
			}
		}
		per := time.Since(start) / time.Duration(iters)
		plan.Close()
		o.logf("ablation attention %s: %v/inference", c.name, per)
		r.AddRow(c.name, fmt.Sprint(per.Nanoseconds()))
	}
	r.AddNote("the fused kernel never materialises the S×S score matrix (one online-softmax stream per query row) and folds residual adds into layer norms; scripts/bench.sh pins the kernel-level contrast as attention_fused_speedup (contract >= 1.5x)")
	return r, nil
}
