package experiments

import (
	"fmt"
	"time"

	"crayfish/internal/core"
)

// servingTools5 is the Figure 5/6 tool set.
var servingTools5 = []core.ServingConfig{
	embeddedTool("dl4j"),
	embeddedTool("onnx"),
	embeddedTool("savedmodel"),
	externalTool("torchserve"),
	externalTool("tf-serving"),
}

// Figure5LatencyBatchSize reproduces Figure 5: end-to-end latency for
// increasing batch sizes in the closed-loop scenario (Flink, FFNN, ir=1,
// mp=1; batch sizes 32/128/512).
func Figure5LatencyBatchSize(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Figure 5",
		Title:  "End-to-end latency vs batch size (Flink, FFNN, closed loop, mp=1)",
		Header: []string{"server", "bsz=32", "bsz=128", "bsz=512"},
	}
	for _, serving := range servingTools5 {
		row := []string{serving.Tool}
		for _, bsz := range []int{32, 128, 512} {
			w := o.ffnnWorkload()
			w.BatchSize = bsz
			cfg := o.baseConfig("flink", serving, w, "ffnn", 1)
			// Closed loop: slow enough that latency is dominated
			// by inference (larger batches get a proportionally
			// lower rate, as one event carries more data).
			lat, err := o.closedLoop(cfg, 640/float64(bsz), o.scaled(3*time.Second))
			if err != nil {
				return nil, fmt.Errorf("figure5 %s/bsz=%d: %w", serving.Tool, bsz, err)
			}
			o.logf("figure5 %s bsz=%d: mean %v", serving.Tool, bsz, lat.Mean)
			row = append(row, fmtMs(lat.Mean))
		}
		r.AddRow(row...)
	}
	r.AddNote("paper shape: latency grows with bsz; TF-Serving comparable to (sometimes below) embedded options; DL4J slowest embedded")
	return r, nil
}

// scaleUp runs the vertical-scalability sweep for a tool set and model.
func (o Options) scaleUp(id, title, engine, modelName string, w core.Workload, tools []core.ServingConfig, d time.Duration) (*Report, error) {
	header := []string{"server"}
	for _, mp := range o.Parallelisms {
		header = append(header, fmt.Sprintf("mp=%d", mp))
	}
	r := &Report{ID: id, Title: title, Header: header}
	for _, serving := range tools {
		row := []string{serving.Tool}
		for _, mp := range o.Parallelisms {
			cfg := o.baseConfig(engine, serving, w, modelName, mp)
			tput, err := o.saturate(cfg, d)
			if err != nil {
				return nil, fmt.Errorf("%s %s/mp=%d: %w", id, serving.Tool, mp, err)
			}
			o.logf("%s %s mp=%d: %.1f events/s", id, serving.Tool, mp, tput)
			row = append(row, fmtRate(tput))
		}
		r.AddRow(row...)
	}
	return r, nil
}

// Figure6ScaleUpFFNN reproduces Figure 6: vertical scalability of the
// serving tools on Flink with the FFNN model (ir=30k, bsz=1).
func Figure6ScaleUpFFNN(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r, err := o.scaleUp("Figure 6",
		"Vertical scalability, Flink + FFNN (saturation, bsz=1)",
		"flink", "ffnn", o.ffnnWorkload(), servingTools5, o.scaled(3*time.Second))
	if err != nil {
		return nil, err
	}
	r.AddNote("paper shape: ONNX/SavedModel scale to mp=16, DL4J plateaus by 8 (shared native workspaces), externals keep scaling, TF-Serving overtakes DL4J")
	return r, nil
}

// Figure7ScaleUpResNet reproduces Figure 7: vertical scalability with the
// ResNet model (ir=256, bsz=1).
func Figure7ScaleUpResNet(opts Options) (*Report, error) {
	o := opts.withDefaults()
	tools := []core.ServingConfig{embeddedTool("onnx"), externalTool("torchserve"), externalTool("tf-serving")}
	r, err := o.scaleUp("Figure 7",
		"Vertical scalability, Flink + ResNet (saturation, bsz=1)",
		"flink", "resnet", o.resnetWorkload(), tools, o.scaled(4*time.Second))
	if err != nil {
		return nil, err
	}
	r.AddNote("paper shape: compute dominates; TF-Serving shows little gain from scaling, TorchServe overtakes it at high mp, ONNX keeps scaling")
	return r, nil
}

// Figure8BurstRecovery reproduces Figure 8: periodic bursts above the
// sustainable throughput and the time each serving tool needs to recover.
func Figure8BurstRecovery(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Figure 8",
		Title:  "Burst recovery (Flink, FFNN, bsz=1, mp=1; bursts at 125% of ST, 70% between)",
		Header: []string{"server", "sustainable (ev/s)", "recovery (avg)", "recovery (best)"},
	}
	// Scaled burst schedule: the paper uses bd=30s, tbb=120s.
	bd := o.scaled(1500 * time.Millisecond)
	tbb := 5 * bd
	total := 3 * tbb // three bursts, as plotted in the paper

	for _, serving := range []core.ServingConfig{embeddedTool("onnx"), externalTool("tf-serving")} {
		// First find the sustainable throughput for this tool. The
		// probe runs longer than usual: the burst schedule is built
		// on it, so its noise directly weakens the burst.
		cfg := o.baseConfig("flink", serving, o.ffnnWorkload(), "ffnn", 1)
		st, err := o.saturate(cfg, o.scaled(4*time.Second))
		if err != nil {
			return nil, fmt.Errorf("figure8 %s: ST probe: %w", serving.Tool, err)
		}
		w := o.ffnnWorkload()
		w.Bursty = true
		w.BurstDuration = bd
		w.TimeBetweenBursts = tbb
		w.BurstRate = st * 1.25
		w.BaseRate = st * 0.70
		w.Duration = total
		cfg = o.baseConfig("flink", serving, w, "ffnn", 1)
		cfg.KeepSamples = true
		runner := &core.Runner{DrainTimeout: bd}
		var recs []time.Duration
		for run := 0; run < o.Runs; run++ {
			cfg.Workload.Seed = int64(run + 1)
			res, err := runner.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("figure8 %s: %w", serving.Tool, err)
			}
			// Recovery of the middle bursts (warm, away from the
			// run's edges), giving several samples per run for the
			// paper's avg/best/variance framing.
			for burst := 1; burst <= 2; burst++ {
				burstStart := time.Duration(burst) * tbb
				burstEnd := burstStart + bd
				rec, err := core.RecoveryTime(res.Samples, res.RunStart, burstStart, burstEnd, bd/10, 2)
				if err != nil {
					o.logf("figure8 %s run %d burst %d: %v", serving.Tool, run, burst, err)
					continue
				}
				recs = append(recs, rec)
				o.logf("figure8 %s run %d burst %d: recovery %v", serving.Tool, run, burst, rec)
			}
		}
		avg, best := aggregateRecovery(recs)
		r.AddRow(serving.Tool, fmtRate(st), fmtDurOrDash(avg), fmtDurOrDash(best))
	}
	r.AddNote("paper shape: TF-Serving's best-case recovery beats ONNX's but varies more between bursts; ONNX is steadier")
	r.AddNote("bursts run at 125%% of the probed ST (the paper uses 110%%): this substrate's ST probe has ±15%% noise, so a 10%% overshoot would not reliably exceed capacity")
	return r, nil
}

func aggregateRecovery(recs []time.Duration) (avg, best time.Duration) {
	if len(recs) == 0 {
		return -1, -1
	}
	best = recs[0]
	var sum time.Duration
	for _, r := range recs {
		sum += r
		if r < best {
			best = r
		}
	}
	return sum / time.Duration(len(recs)), best
}

func fmtDurOrDash(d time.Duration) string {
	if d < 0 {
		return "did not stabilise"
	}
	return fmtMs(d)
}

// Figure9GPUAcceleration reproduces Figure 9: CPU vs GPU inference latency
// for ONNX and TF-Serving on the ResNet model (closed loop, bsz=8, mp=1).
func Figure9GPUAcceleration(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Figure 9",
		Title:  "GPU acceleration (Flink, ResNet, closed loop, bsz=8, mp=1)",
		Header: []string{"configuration", "mean latency", "vs cpu"},
	}
	type combo struct {
		serving core.ServingConfig
		device  string
	}
	combos := []combo{
		{embeddedTool("onnx"), "cpu"},
		{embeddedTool("onnx"), "gpu"},
		{externalTool("tf-serving"), "cpu"},
		{externalTool("tf-serving"), "gpu"},
	}
	base := map[string]time.Duration{}
	for _, c := range combos {
		w := o.resnetWorkload()
		w.BatchSize = 8
		serving := c.serving
		serving.Device = c.device
		cfg := o.baseConfig("flink", serving, w, "resnet", 1)
		// The paper emits one event every 5 seconds. The run is floored
		// at a few seconds so the inter-event gap stays well above the
		// ~50 ms batch-8 inference time — queueing would otherwise
		// drown the kernel-level differences.
		d := o.scaled(8 * time.Second)
		if d < 3*time.Second {
			d = 3 * time.Second
		}
		lat, err := o.closedLoop(cfg, 3, d)
		if err != nil {
			return nil, fmt.Errorf("figure9 %s-%s: %w", c.serving.Tool, c.device, err)
		}
		name := fmt.Sprintf("%s-%s", c.serving.Tool, c.device)
		o.logf("figure9 %s: mean %v", name, lat.Mean)
		delta := ""
		if c.device == "cpu" {
			base[c.serving.Tool] = lat.Mean
		} else if b, ok := base[c.serving.Tool]; ok && b > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(float64(lat.Mean)-float64(b))/float64(b))
		}
		r.AddRow(name, fmtMs(lat.Mean), delta)
	}
	r.AddNote("paper shape: both improve on GPU (onnx −16.4%%, tf-serving −24.1%%); tf-serving-gpu ≤ onnx-gpu and beats onnx-cpu")
	r.AddNote("the GPU device gains come from real fast kernels (Winograd + BN folding) plus a modelled PCIe transfer; see DESIGN.md §1")
	return r, nil
}

// Figure10SPSLatency reproduces Figure 10: end-to-end latency across the
// four stream processors for increasing batch sizes.
func Figure10SPSLatency(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Figure 10",
		Title:  "End-to-end latency across SPSs (FFNN, closed loop, mp=1)",
		Header: []string{"engine", "server", "bsz=32", "bsz=128", "bsz=512"},
	}
	for _, engine := range []string{"flink", "kafka-streams", "spark-ss", "ray"} {
		for _, serving := range []core.ServingConfig{embeddedTool("onnx"), externalTool("tf-serving")} {
			row := []string{engine, serving.Tool}
			for _, bsz := range []int{32, 128, 512} {
				w := o.ffnnWorkload()
				w.BatchSize = bsz
				cfg := o.baseConfig(engine, serving, w, "ffnn", 1)
				lat, err := o.closedLoop(cfg, 640/float64(bsz), o.scaled(3*time.Second))
				if err != nil {
					return nil, fmt.Errorf("figure10 %s/%s/bsz=%d: %w", engine, serving.Tool, bsz, err)
				}
				o.logf("figure10 %s/%s bsz=%d: mean %v", engine, serving.Tool, bsz, lat.Mean)
				row = append(row, fmtMs(lat.Mean))
			}
			r.AddRow(row...)
		}
	}
	r.AddNote("paper shape: Flink lowest at small bsz but Kafka Streams wins at 512 (no buffer splitting); Spark SS highest everywhere (micro-batch floor); Ray competitive")
	return r, nil
}

// Figure11SPSScaleUp reproduces Figure 11: vertical scalability across the
// four stream processors with embedded and external serving.
func Figure11SPSScaleUp(opts Options) (*Report, error) {
	o := opts.withDefaults()
	header := []string{"engine", "server"}
	for _, mp := range o.Parallelisms {
		header = append(header, fmt.Sprintf("mp=%d", mp))
	}
	r := &Report{
		ID:     "Figure 11",
		Title:  "Vertical scalability across SPSs (FFNN, saturation, bsz=1)",
		Header: header,
	}
	for _, engine := range []string{"flink", "kafka-streams", "spark-ss", "ray"} {
		for _, serving := range []core.ServingConfig{embeddedTool("onnx"), externalTool("tf-serving")} {
			row := []string{engine, serving.Tool}
			for _, mp := range o.Parallelisms {
				cfg := o.baseConfig(engine, serving, o.ffnnWorkload(), "ffnn", mp)
				tput, err := o.saturate(cfg, o.scaled(3*time.Second))
				if err != nil {
					return nil, fmt.Errorf("figure11 %s/%s/mp=%d: %w", engine, serving.Tool, mp, err)
				}
				o.logf("figure11 %s/%s mp=%d: %.1f events/s", engine, serving.Tool, mp, tput)
				row = append(row, fmtRate(tput))
			}
			r.AddRow(row...)
		}
	}
	r.AddNote("paper shape: Kafka Streams peaks highest (embedded); Spark SS high but flat in mp; Flink scales below KS; Ray lowest with Ray-Serve worst (single HTTP proxy)")
	return r, nil
}

// Figure12OperatorParallelism reproduces Figure 12/§6.1: chained
// flink[N-N-N] vs operator-level flink[32-N-32].
func Figure12OperatorParallelism(opts Options) (*Report, error) {
	o := opts.withDefaults()
	header := []string{"pipeline", "server"}
	for _, mp := range o.Parallelisms {
		header = append(header, fmt.Sprintf("N=%d", mp))
	}
	r := &Report{
		ID:     "Figure 12",
		Title:  fmt.Sprintf("Operator-level parallelism: flink[N-N-N] vs flink[%d-N-%d] (FFNN)", o.Fanout, o.Fanout),
		Header: header,
	}
	for _, serving := range []core.ServingConfig{embeddedTool("onnx"), externalTool("tf-serving")} {
		for _, operatorLevel := range []bool{false, true} {
			name := "flink[N-N-N]"
			if operatorLevel {
				name = fmt.Sprintf("flink[%d-N-%d]", o.Fanout, o.Fanout)
			}
			row := []string{name, serving.Tool}
			for _, mp := range o.Parallelisms {
				cfg := o.baseConfig("flink", serving, o.ffnnWorkload(), "ffnn", mp)
				if operatorLevel {
					cfg.SourceParallelism = o.Fanout
					cfg.SinkParallelism = o.Fanout
				}
				tput, err := o.saturate(cfg, o.scaled(3*time.Second))
				if err != nil {
					return nil, fmt.Errorf("figure12 %s/%s/N=%d: %w", name, serving.Tool, mp, err)
				}
				o.logf("figure12 %s/%s N=%d: %.1f events/s", name, serving.Tool, mp, tput)
				row = append(row, fmtRate(tput))
			}
			r.AddRow(row...)
		}
	}
	r.AddNote("paper shape: operator-level parallelism reaches ≈3.8× the chained pipeline's rate at low N — sources and sinks, not scoring, bottleneck the chained DAG")
	return r, nil
}

// Figure13KafkaOverhead reproduces Figure 13/§6.2: the Crayfish pipeline
// with the broker in the loop vs an equivalent self-contained pipeline.
func Figure13KafkaOverhead(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Figure 13",
		Title:  "Broker overhead: Crayfish (kafka) vs standalone Flink (no-kafka), ONNX + FFNN",
		Header: []string{"pipeline", "throughput (events/s)", "mean latency", "p99"},
	}
	// Throughput: saturation with operator-level parallelism, as §6.2.
	satCfg := o.baseConfig("flink", embeddedTool("onnx"), o.ffnnWorkload(), "ffnn", 1)
	satCfg.SourceParallelism = o.Fanout
	satCfg.SinkParallelism = o.Fanout
	viaTput, err := o.saturate(satCfg, o.scaled(3*time.Second))
	if err != nil {
		return nil, fmt.Errorf("figure13 kafka throughput: %w", err)
	}

	// Latency: closed loop via broker vs standalone.
	latCfg := o.baseConfig("flink", embeddedTool("onnx"), o.ffnnWorkload(), "ffnn", 1)
	viaLat, err := o.closedLoop(latCfg, 20, o.scaled(3*time.Second))
	if err != nil {
		return nil, fmt.Errorf("figure13 kafka latency: %w", err)
	}
	r.AddRow("kafka", fmtRate(viaTput), fmtMs(viaLat.Mean), fmtMs(viaLat.P99))

	standCfg := latCfg
	standCfg.Workload.InputRate = 0
	standCfg.Workload.Duration = o.scaled(3 * time.Second)
	standTput, err := core.RunStandalone(standCfg)
	if err != nil {
		return nil, fmt.Errorf("figure13 no-kafka throughput: %w", err)
	}
	standLatCfg := latCfg
	standLatCfg.Workload.InputRate = 20
	standLatCfg.Workload.Duration = o.scaled(3 * time.Second)
	standLat, err := core.RunStandalone(standLatCfg)
	if err != nil {
		return nil, fmt.Errorf("figure13 no-kafka latency: %w", err)
	}
	r.AddRow("no-kafka", fmtRate(standTput.Metrics.Throughput), fmtMs(standLat.Metrics.Latency.Mean), fmtMs(standLat.Metrics.Latency.P99))
	r.AddNote("paper shape: throughput overhead of the broker is small (≈2.4%%), latency overhead is large (standalone up to 59%% lower)")
	return r, nil
}
