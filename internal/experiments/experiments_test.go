package experiments

import (
	"strconv"
	"strings"
	"testing"

	"crayfish/internal/netsim"
)

// tinyOptions runs experiments at the smallest meaningful scale with a
// light network profile so the whole suite stays fast under `go test`.
func tinyOptions() Options {
	lan := netsim.Profile{Latency: netsim.LAN.Latency / 4, BandwidthBytesPerSec: netsim.LAN.BandwidthBytesPerSec}
	return Options{
		Scale:        0.04,
		Runs:         1,
		Parallelisms: []int{1, 2},
		Fanout:       4,
		Partitions:   4,
		Network:      &lan,
	}
}

func TestTable2(t *testing.T) {
	r, err := Table2ModelSizes()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	if !strings.Contains(r.String(), "ffnn") {
		t.Fatal("report missing ffnn row")
	}
}

func TestTable4Tiny(t *testing.T) {
	r, err := Table4ServingThroughput(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("rows %d", len(r.Rows))
	}
}

func TestTable5Tiny(t *testing.T) {
	r, err := Table5SPSThroughput(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
}

func TestFigure5Tiny(t *testing.T) {
	opts := tinyOptions()
	r, err := Figure5LatencyBatchSize(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows %d", len(r.Rows))
	}
}

func TestFigure6Tiny(t *testing.T) {
	r, err := Figure6ScaleUpFFNN(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 || len(r.Header) != 3 {
		t.Fatalf("shape %dx%d", len(r.Rows), len(r.Header))
	}
}

func TestFigure7Tiny(t *testing.T) {
	r, err := Figure7ScaleUpResNet(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d", len(r.Rows))
	}
}

func TestFigure8Tiny(t *testing.T) {
	r, err := Figure8BurstRecovery(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows %d", len(r.Rows))
	}
}

func TestFigure9Tiny(t *testing.T) {
	r, err := Figure9GPUAcceleration(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
}

func TestFigure10Tiny(t *testing.T) {
	r, err := Figure10SPSLatency(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows %d", len(r.Rows))
	}
}

func TestFigure11Tiny(t *testing.T) {
	r, err := Figure11SPSScaleUp(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows %d", len(r.Rows))
	}
}

func TestFigure12Tiny(t *testing.T) {
	r, err := Figure12OperatorParallelism(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
}

func TestFigure13Tiny(t *testing.T) {
	r, err := Figure13KafkaOverhead(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows %d", len(r.Rows))
	}
}

func TestAblationsTiny(t *testing.T) {
	for _, d := range All() {
		if !strings.HasPrefix(d.ID, "ablation-") {
			continue
		}
		r, err := d.Run(tinyOptions())
		if err != nil {
			t.Fatalf("%s: %v", d.ID, err)
		}
		if len(r.Rows) < 2 {
			t.Fatalf("%s: rows %d", d.ID, len(r.Rows))
		}
	}
}

func TestAblationKernelsInt8Arm(t *testing.T) {
	r, err := AblationFastKernels(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if strings.Contains(row[0], "int8") {
			return
		}
	}
	t.Fatalf("no int8 arm in ablation-kernels rows: %v", r.Rows)
}

func TestRecoveryTiny(t *testing.T) {
	r, err := RecoveryFaultInjection(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[2] != "120" {
			t.Fatalf("produced %q, want 120: %v", row[2], row)
		}
		if row[3] != "6" || row[4] != "4" {
			t.Fatalf("message-fault books off: %v", row)
		}
		if row[5] != "0" {
			t.Fatalf("records lost beyond planned drops: %v", row)
		}
	}
}

func TestFailoverTiny(t *testing.T) {
	r, err := BrokerFailover(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[2] != "120" {
			t.Fatalf("produced %q, want 120: %v", row[2], row)
		}
		if row[3] != "0" {
			t.Fatalf("acked records lost across the leader crash: %v", row)
		}
		if f, err := strconv.Atoi(row[4]); err != nil || f < 1 {
			t.Fatalf("failovers %q, want >= 1: %v", row[4], row)
		}
		if row[8] != "byte-identical" {
			t.Fatalf("fault-log replay diverged: %v", row)
		}
	}
}

func TestScenariosTiny(t *testing.T) {
	r, err := ScenarioSuite(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 4 scenarios × 4 engine/serving pairs + 4 sweep steps.
	if len(r.Rows) != 20 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	kinds := map[string]int{}
	for _, row := range r.Rows {
		kinds[row[0]]++
		if row[6] != "PASS" && row[6] != "FAIL" {
			t.Fatalf("verdict cell %q: %v", row[6], row)
		}
	}
	for _, k := range []string{"single-stream", "multi-stream", "server", "offline"} {
		if kinds[k] != 4 {
			t.Fatalf("scenario %s has %d rows, want 4", k, kinds[k])
		}
	}
	if kinds["server sweep"] != 4 {
		t.Fatalf("sweep rows %d, want 4", kinds["server sweep"])
	}
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "server capacity") {
			found = true
		}
	}
	if !found {
		t.Fatal("report missing the capacity note")
	}
}

func TestRegistry(t *testing.T) {
	defs := All()
	if len(defs) != 24 {
		t.Fatalf("registry has %d experiments", len(defs))
	}
	seen := map[string]bool{}
	for _, d := range defs {
		if seen[d.ID] {
			t.Fatalf("duplicate id %q", d.ID)
		}
		seen[d.ID] = true
		if _, err := ByID(d.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ByID("figure99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestReportString(t *testing.T) {
	r := &Report{ID: "X", Title: "T", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddNote("hello %d", 5)
	s := r.String()
	for _, want := range []string{"X — T", "a", "bb", "hello 5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestOptionDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.Runs != 2 || o.Fanout != 32 || o.Partitions != 32 {
		t.Fatalf("defaults %+v", o)
	}
	if o.Network == nil || !o.Network.Enabled() {
		t.Fatal("LAN default missing")
	}
	if len(o.Parallelisms) == 0 {
		t.Fatal("parallelism sweep missing")
	}
}

func TestReportMarkdown(t *testing.T) {
	r := &Report{ID: "Table X", Title: "demo", Header: []string{"a", "b"}}
	r.AddRow("1", "2")
	r.AddNote("caveat")
	md := r.Markdown()
	for _, want := range []string{"### Table X", "| a | b |", "| --- | --- |", "| 1 | 2 |", "> caveat"} {
		if !strings.Contains(md, want) {
			t.Fatalf("Markdown missing %q:\n%s", want, md)
		}
	}
}
