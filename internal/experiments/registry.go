package experiments

import (
	"fmt"
	"sort"
)

// Definition pairs an experiment ID with its runner.
type Definition struct {
	ID   string
	Name string
	Run  func(Options) (*Report, error)
}

// All returns every experiment in paper order.
func All() []Definition {
	return []Definition{
		{"table2", "Model characteristics and stored sizes", func(Options) (*Report, error) { return Table2ModelSizes() }},
		{"table4", "Serving-tool throughput on Flink", Table4ServingThroughput},
		{"figure5", "Latency vs batch size on Flink", Figure5LatencyBatchSize},
		{"figure6", "Scale-up, Flink + FFNN", Figure6ScaleUpFFNN},
		{"figure7", "Scale-up, Flink + ResNet", Figure7ScaleUpResNet},
		{"figure8", "Burst recovery", Figure8BurstRecovery},
		{"figure9", "GPU acceleration", Figure9GPUAcceleration},
		{"table5", "Stream-processor throughput", Table5SPSThroughput},
		{"figure10", "Latency across SPSs", Figure10SPSLatency},
		{"figure11", "Scale-up across SPSs", Figure11SPSScaleUp},
		{"figure12", "Operator-level parallelism", Figure12OperatorParallelism},
		{"figure13", "Kafka overhead", Figure13KafkaOverhead},
		{"ablation-batching", "Producer-level batching", AblationProducerBatching},
		{"ablation-serialization", "JSON vs binary pipeline codec", AblationSerialization},
		{"ablation-transport", "In-process vs TCP broker", AblationTransport},
		{"ablation-fusion", "Fused vs unfused execution", AblationFusedExecution},
		{"ablation-asyncio", "Blocking vs async I/O external calls", AblationAsyncIO},
		{"ablation-kernels", "Accelerator kernel paths", AblationFastKernels},
		{"ablation-attention", "Fused vs unfused transformer kernels", AblationAttention},
		{"ablation-network", "Loopback vs modelled LAN", AblationNetworkRealism},
		{"ablation-dynbatch", "Dynamic micro-batching in the scoring operator", AblationDynamicBatching},
		{"recovery", "Fault injection and recovery", RecoveryFaultInjection},
		{"broker-failover", "Replicated-broker leader failover", BrokerFailover},
		{"scenarios", "MLPerf-style scenario suite and server capacity sweep", ScenarioSuite},
	}
}

// ByID returns one experiment definition.
func ByID(id string) (Definition, error) {
	for _, d := range All() {
		if d.ID == id {
			return d, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, d := range All() {
		ids = append(ids, d.ID)
	}
	sort.Strings(ids)
	return Definition{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, ids)
}
