// Package experiments defines one runnable definition per table and figure
// in the paper's evaluation (§5–§6), plus the ablations DESIGN.md calls
// out. Each experiment builds Crayfish configurations, drives the runner,
// and renders the same rows/series the paper reports.
//
// Durations and rates scale with Options.Scale so the whole suite runs in
// milliseconds under `go test` and in seconds under cmd/crayfish-bench.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"crayfish/internal/core"
	"crayfish/internal/netsim"
	"crayfish/internal/sps"

	// The experiments instantiate every engine by name.
	_ "crayfish/internal/sps/flink"
	_ "crayfish/internal/sps/kstreams"
	_ "crayfish/internal/sps/ray"
	_ "crayfish/internal/sps/sparkss"
)

// Options scales and instruments an experiment run.
type Options struct {
	// Scale multiplies every duration; 1.0 is the full bench profile,
	// tests run at ≈0.05.
	Scale float64
	// Runs is how many times each configuration repeats (the paper
	// runs each experiment twice and reports averages).
	Runs int
	// Parallelisms is the mp sweep for scale-up experiments.
	Parallelisms []int
	// Fanout is the source/sink parallelism for the operator-level
	// experiment (the paper matches the 32 topic partitions).
	Fanout int
	// Partitions is the per-topic partition count.
	Partitions int
	// Network models the inter-machine links; defaults to netsim.LAN,
	// the paper's measured GCP profile.
	Network *netsim.Profile
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Runs <= 0 {
		o.Runs = 2
	}
	if len(o.Parallelisms) == 0 {
		o.Parallelisms = []int{1, 2, 4, 8, 16}
	}
	if o.Fanout <= 0 {
		o.Fanout = 32
	}
	if o.Partitions <= 0 {
		o.Partitions = 32
	}
	if o.Network == nil {
		lan := netsim.LAN
		o.Network = &lan
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	return o
}

// scaled converts a full-profile duration through the scale factor,
// clamping to a floor that keeps tiny test runs meaningful.
func (o Options) scaled(d time.Duration) time.Duration {
	s := time.Duration(float64(d) * o.Scale)
	if s < 50*time.Millisecond {
		s = 50 * time.Millisecond
	}
	return s
}

func (o Options) logf(format string, args ...any) {
	fmt.Fprintf(o.Log, format+"\n", args...)
}

// Report is one regenerated table or figure.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a free-form note (deviations, environment caveats).
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the report as a GitHub-flavoured markdown section.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s \u2014 %s\n\n", r.ID, r.Title)
	b.WriteString("| " + strings.Join(r.Header, " | ") + " |\n")
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range r.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(r.Notes) > 0 {
		b.WriteString("\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "> %s\n", n)
		}
	}
	return b.String()
}

// fmtRate renders events/s.
func fmtRate(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.1fk", v/1000)
	case v >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// fmtMs renders a duration in milliseconds.
func fmtMs(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

// ffnnWorkload is the FFNN (28×28) workload skeleton.
func (o Options) ffnnWorkload() core.Workload {
	return core.Workload{InputShape: []int{28, 28}, BatchSize: 1, Seed: 1}
}

// resnetWorkload is the benchmark-ResNet (3×64×64) workload skeleton.
func (o Options) resnetWorkload() core.Workload {
	return core.Workload{InputShape: []int{3, 64, 64}, BatchSize: 1, Seed: 1}
}

// transformerWorkload is the transformer (32 tokens × 64 embedding)
// workload skeleton.
func (o Options) transformerWorkload() core.Workload {
	return core.Workload{InputShape: []int{32, 64}, BatchSize: 1, Seed: 1}
}

// baseConfig assembles a config with the suite's environment defaults.
func (o Options) baseConfig(engine string, serving core.ServingConfig, w core.Workload, modelName string, mp int) core.Config {
	return core.Config{
		Workload:           w,
		Engine:             engine,
		Serving:            serving,
		Model:              core.ModelSpec{Name: modelName, Seed: 1},
		ParallelismDefault: mp,
		Partitions:         o.Partitions,
		Network:            *o.Network,
		WarmupFraction:     0.25,
	}
}

// embedded and external shorthands.
func embeddedTool(tool string) core.ServingConfig {
	return core.ServingConfig{Mode: core.Embedded, Tool: tool}
}

func externalTool(tool string) core.ServingConfig {
	return core.ServingConfig{Mode: core.External, Tool: tool}
}

// openLoopRate returns the paper's open-loop probe rate for a model
// (§4.1/§5: ir = 30k events/s for FFNN, 256 for ResNet; the
// transformer sits between them at 512).
func openLoopRate(modelName string) float64 {
	if modelName == "resnet" || modelName == "resnet50" {
		return 256
	}
	if modelName == "transformer" {
		return 512
	}
	return 30_000
}

// saturate measures open-loop throughput. A short probe at the paper's
// nominal rate estimates the SUT's capacity; the measured run then drives
// it at 1.3× that estimate — still above sustainable, but with bounded
// backlog, so broker-log growth and GC churn do not add run-to-run noise.
// Results are averaged over o.Runs.
func (o Options) saturate(cfg core.Config, d time.Duration) (float64, error) {
	return o.saturateWith(&core.Runner{DrainTimeout: time.Millisecond}, cfg, d)
}

// saturateWithEngine is saturate with an explicit engine instance (for
// engine-variant ablations).
func (o Options) saturateWithEngine(cfg core.Config, engine sps.Processor, d time.Duration) (float64, error) {
	return o.saturateWith(&core.Runner{DrainTimeout: time.Millisecond, Engine: engine}, cfg, d)
}

func (o Options) saturateWith(runner *core.Runner, cfg core.Config, d time.Duration) (float64, error) {

	probe := cfg
	probe.Workload.InputRate = openLoopRate(cfg.Model.Name)
	probe.Workload.Duration = d / 2
	if probe.Workload.Duration < 400*time.Millisecond {
		probe.Workload.Duration = 400 * time.Millisecond
	}
	probeRes, err := runner.Run(probe)
	if err != nil {
		return 0, err
	}
	// 1.5× headroom over the probe: large topologies warm up slowly and
	// bias short probes low, and the offered rate must stay above the
	// true capacity for the main run to measure capacity rather than
	// echo the rate.
	rate := probeRes.Metrics.Throughput * 1.5
	if nominal := openLoopRate(cfg.Model.Name); rate > nominal {
		rate = nominal
	}

	cfg.Workload.InputRate = rate
	cfg.Workload.Duration = d
	results, err := runner.RunAveraged(cfg, o.Runs)
	if err != nil {
		return 0, err
	}
	return core.MeanThroughput(results), nil
}

// closedLoop measures end-to-end latency at a low input rate, raising the
// rate just enough to collect a handful of samples in very short runs.
func (o Options) closedLoop(cfg core.Config, rate float64, d time.Duration) (core.LatencyStats, error) {
	if minRate := 4 / d.Seconds(); rate < minRate {
		rate = minRate
	}
	cfg.Workload.InputRate = rate
	cfg.Workload.Duration = d
	runner := &core.Runner{}
	results, err := runner.RunAveraged(cfg, o.Runs)
	if err != nil {
		return core.LatencyStats{}, err
	}
	// Average the per-run stats (the paper reports run averages).
	var agg core.LatencyStats
	for _, r := range results {
		agg.Mean += r.Metrics.Latency.Mean / time.Duration(len(results))
		agg.StdDev += r.Metrics.Latency.StdDev / time.Duration(len(results))
		agg.P50 += r.Metrics.Latency.P50 / time.Duration(len(results))
		agg.P95 += r.Metrics.Latency.P95 / time.Duration(len(results))
		agg.P99 += r.Metrics.Latency.P99 / time.Duration(len(results))
	}
	return agg, nil
}
