package experiments

import (
	"fmt"
	"strconv"
	"time"

	"crayfish/internal/core"
	"crayfish/internal/faults"
)

// RecoveryFaultInjection runs the chaos scenario: a deterministic fault
// plan fires while the FFNN workload streams — drops, duplicates, and
// delays at the broker boundary plus a mid-run serving outage (a
// scorer-error window for embedded serving, a daemon crash/restart for
// external) — and the report books the damage: how many records the
// plan destroyed, how many the pipeline lost beyond that (none, on a
// clean recovery), how long it needed to catch up after the last fault
// window closed, and the p95 latency of the records scored while the
// outage was open.
func RecoveryFaultInjection(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Recovery",
		Title:  "Fault injection and recovery (FFNN, mp=1; broker message faults + mid-run serving outage)",
		Header: []string{"engine", "serving", "produced", "dropped", "duplicated", "lost", "recovery (avg)", "degraded p95"},
	}
	// The workload is pinned by event count so the plan's per-sequence
	// verdicts hit the same records at every scale; the rate spreads
	// production over the first half of the run, leaving the second
	// half to drain the outage backlog.
	const maxEvents = 120
	d := o.scaled(2 * time.Second)
	pairs := []struct {
		engine  string
		serving core.ServingConfig
	}{
		{"flink", embeddedTool("onnx")},
		{"spark-ss", embeddedTool("onnx")},
		{"kafka-streams", externalTool("tf-serving")},
	}
	for _, p := range pairs {
		w := o.ffnnWorkload()
		w.MaxEvents = maxEvents
		// MaxEvents ends production on fast machines; the duration is a
		// generous backstop so a slow run (race detector, loaded CI) still
		// produces every event the plan's sequence windows target.
		w.Duration = d + 2*time.Second
		w.InputRate = 2 * maxEvents / d.Seconds()
		cfg := o.baseConfig(p.engine, p.serving, w, "ffnn", 1)
		plan := recoveryPlan(p.serving, d)

		var ttrs, degs []time.Duration
		lost := 0
		var last *core.RecoveryResult
		for run := 0; run < o.Runs; run++ {
			cfg.Workload.Seed = int64(run + 1)
			res, err := (&core.Runner{}).RunRecovery(cfg, plan)
			if err != nil {
				return nil, fmt.Errorf("recovery %s/%s: %w", p.engine, p.serving.Tool, err)
			}
			if res.Result.EngineErr != nil {
				return nil, fmt.Errorf("recovery %s/%s: engine: %w", p.engine, p.serving.Tool, res.Result.EngineErr)
			}
			if res.Lost > lost {
				lost = res.Lost
			}
			if res.Recovered {
				ttrs = append(ttrs, res.TimeToRecover)
			}
			if res.DegradedSamples > 0 {
				degs = append(degs, res.DegradedP95)
			}
			last = res
			o.logf("recovery %s/%s run %d: lost=%d dup=%d ttr=%v degraded=%d",
				p.engine, p.serving.Tool, run, res.Lost, res.Duplicated, res.TimeToRecover, res.DegradedSamples)
		}
		ttr, _ := aggregateRecovery(ttrs)
		deg, _ := aggregateRecovery(degs)
		degCell := "no samples in window"
		if deg >= 0 {
			degCell = fmtMs(deg)
		}
		r.AddRow(p.engine, string(p.serving.Mode)+" "+p.serving.Tool,
			strconv.Itoa(last.Produced), strconv.Itoa(last.Dropped), strconv.Itoa(last.Duplicated),
			strconv.Itoa(lost), fmtDurOrDash(ttr), degCell)
	}
	r.AddNote("the plan is seed-driven: replaying it over the same workload reproduces the fault log byte for byte")
	r.AddNote("lost counts records missing beyond the planned drops; 0 means the retries and breakers rode the outage out")
	return r, nil
}

// recoveryPlan builds the scenario's fault plan: message faults over
// fixed sequence windows, plus an outage sized to the run — external
// serving gets a daemon crash with a later restart, embedded serving
// gets a scorer-error window of the same length.
func recoveryPlan(serving core.ServingConfig, d time.Duration) faults.Plan {
	plan := faults.Plan{
		Seed: 42,
		Rules: []faults.Rule{
			{Topic: core.InputTopic, Kind: faults.Drop, FromSeq: 10, ToSeq: 16},
			{Topic: core.InputTopic, Kind: faults.Duplicate, FromSeq: 40, ToSeq: 44},
			{Topic: core.InputTopic, Kind: faults.Delay, FromSeq: 60, ToSeq: 64, Delay: time.Millisecond},
		},
	}
	outageAt := d / 8
	outageLen := d / 4
	if serving.Mode == core.External {
		plan.Events = append(plan.Events,
			faults.Event{Kind: faults.Crash, At: outageAt, Target: serving.Tool},
			faults.Event{Kind: faults.Restart, At: outageAt + outageLen, Target: serving.Tool},
		)
	} else {
		plan.Events = append(plan.Events,
			faults.Event{Kind: faults.ScorerError, At: outageAt, Duration: outageLen, Target: serving.Tool},
		)
	}
	return plan
}
