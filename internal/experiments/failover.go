package experiments

import (
	"fmt"
	"strconv"
	"time"

	"crayfish/internal/core"
	"crayfish/internal/faults"
	"crayfish/internal/loadgen"
)

// BrokerFailover runs the replicated-cluster chaos scenario: the FFNN
// workload streams through a 3-node broker cluster at replication
// factor 3 under the MLPerf server scenario's Poisson offered load,
// while the fault plan kills the partition leader node mid-production
// and torn-frame chaos severs client responses mid-frame. The report
// books the guarantees under test — acked-record loss (must be 0: the
// high-watermark ack gate), the failover count and the epoch the
// elections reached, time-to-recover after the crash window closes,
// the degraded-window p95, and whether repeated runs replayed the
// fault log byte for byte.
func BrokerFailover(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Failover",
		Title:  "Replicated-broker leader failover (FFNN, mp=1; 3 nodes, R=3, leader kill + torn frames under the server scenario)",
		Header: []string{"engine", "serving", "produced", "acked lost", "failovers", "max epoch", "recovery (avg)", "degraded p95", "replay"},
	}
	// Production is pinned by event count and spread over the first half
	// of the run by the server scenario's Poisson arrivals, leaving the
	// second half to drain the failover backlog.
	const maxEvents = 120
	d := o.scaled(2 * time.Second)
	rate := 2 * maxEvents / d.Seconds()
	plan := faults.Plan{
		Seed: 42,
		Events: []faults.Event{
			// node-1 leads data partitions under round-robin placement
			// (node 0 is the controller/coordinator seat), so this kill
			// forces real elections; timed events only, so the fault log
			// is a pure function of the plan and must replay identically.
			{Kind: faults.BrokerCrash, At: d / 8, Duration: d / 4, Target: "node-1"},
		},
	}
	// Tears land throughout the production phase, then stop so the drain
	// measures recovery rather than prolonging the outage. The floor
	// keeps the period above the cost of riding one tear out (redial +
	// retry); below it the producer crawls instead of streaming.
	torn := d / 10
	if torn < 25*time.Millisecond {
		torn = 25 * time.Millisecond
	}
	spec := core.ClusterSpec{
		TornFrameEvery: torn,
		TornFrameFor:   d,
	}
	pairs := []struct {
		engine  string
		serving core.ServingConfig
	}{
		{"flink", embeddedTool("onnx")},
		{"spark-ss", embeddedTool("onnx")},
	}
	// The replay contract needs at least two runs per pair.
	runs := o.Runs
	if runs < 2 {
		runs = 2
	}
	for _, p := range pairs {
		w := o.ffnnWorkload()
		w.MaxEvents = maxEvents
		// MaxEvents ends production on fast machines; the duration is a
		// generous backstop for slow runs. The margin is wider than the
		// single-broker recovery experiment's because every event here
		// crosses real TCP through a chaos proxy and waits out a
		// replicated ack — under the race detector that path runs an
		// order of magnitude slower than the in-process transport.
		w.Duration = d + 6*time.Second
		pol := loadgen.Scenario{Kind: loadgen.Server, TargetRate: rate, Seed: 7}.Policy()
		w.Load = &pol
		cfg := o.baseConfig(p.engine, p.serving, w, "ffnn", 1)
		// Every partition is replicated three ways with two follower
		// fetch loops; a small partition count keeps the fetcher fleet
		// proportionate while still exercising multi-partition leadership
		// (node-1 leads one partition per topic, so its death forces two
		// elections).
		cfg.Partitions = 2

		var ttrs, degs []time.Duration
		lost, firstLog := 0, ""
		replay := "byte-identical"
		var last *core.ClusterRecoveryResult
		for run := 0; run < runs; run++ {
			cfg.Workload.Seed = int64(run + 1)
			res, err := (&core.Runner{}).RunClusterRecovery(cfg, plan, spec)
			if err != nil {
				return nil, fmt.Errorf("failover %s/%s: %w", p.engine, p.serving.Tool, err)
			}
			if res.Result.EngineErr != nil {
				return nil, fmt.Errorf("failover %s/%s: engine: %w", p.engine, p.serving.Tool, res.Result.EngineErr)
			}
			if res.Lost > lost {
				lost = res.Lost
			}
			if res.Recovered {
				ttrs = append(ttrs, res.TimeToRecover)
			}
			if res.DegradedSamples > 0 {
				degs = append(degs, res.DegradedP95)
			}
			if firstLog == "" {
				firstLog = res.FaultLog
			} else if res.FaultLog != firstLog {
				replay = "DIVERGED"
			}
			last = res
			o.logf("failover %s/%s run %d: lost=%d failovers=%d epoch=%d ttr=%v",
				p.engine, p.serving.Tool, run, res.Lost, res.Failovers, res.LeaderEpoch, res.TimeToRecover)
		}
		ttr, _ := aggregateRecovery(ttrs)
		deg, _ := aggregateRecovery(degs)
		degCell := "no samples in window"
		if deg >= 0 {
			degCell = fmtMs(deg)
		}
		r.AddRow(p.engine, string(p.serving.Mode)+" "+p.serving.Tool,
			strconv.Itoa(last.Produced), strconv.Itoa(lost),
			strconv.Itoa(last.Failovers), strconv.Itoa(last.LeaderEpoch),
			fmtDurOrDash(ttr), degCell, replay)
	}
	r.AddNote("acked lost counts records the broker acked and then failed to serve; the high-watermark gate keeps it at 0 across a single leader crash")
	r.AddNote("the crash/restart schedule is timed-only, so every run's fault log is a pure function of the plan — 'byte-identical' is asserted, not assumed")
	return r, nil
}
