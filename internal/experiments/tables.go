package experiments

import (
	"fmt"
	"time"

	"crayfish/internal/core"
	"crayfish/internal/model"
	"crayfish/internal/modelfmt"
)

// Table2ModelSizes reproduces Table 2: the two models' characteristics and
// their serialized size in each storage format.
func Table2ModelSizes() (*Report, error) {
	r := &Report{
		ID:     "Table 2",
		Title:  "Pre-trained model characteristics and stored sizes",
		Header: []string{"model", "input", "output", "params", "onnx", "savedmodel", "torch", "h5"},
	}
	models := []*model.Model{model.NewFFNN(1), model.NewResNet(model.BenchResNetConfig(1))}
	for _, m := range models {
		row := []string{
			m.Name,
			fmt.Sprint(m.InputShape),
			fmt.Sprintf("%dx1", m.OutputSize),
			fmtCount(m.ParamCount()),
		}
		for _, f := range []modelfmt.Format{modelfmt.ONNX, modelfmt.SavedModel, modelfmt.Torch, modelfmt.H5} {
			data, err := modelfmt.Encode(f, m)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtBytes(len(data)))
		}
		r.AddRow(row...)
	}
	r.AddNote("paper: FFNN onnx 113KB / savedmodel 508KB / torch 115KB / h5 133KB; ResNet50 formats converge to weight size")
	r.AddNote("the benchmark ResNet is the reduced-width substitution from DESIGN.md §1; run with model resnet50 for the 23M-parameter network")
	return r, nil
}

func fmtCount(n int) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.0fK", float64(n)/1e3)
	default:
		return fmt.Sprint(n)
	}
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Table4ServingThroughput reproduces Table 4: sustainable throughput per
// serving tool with Apache Flink as the host SPS (bsz=1, mp=1).
func Table4ServingThroughput(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Table 4",
		Title:  "Serving-tool throughput on Apache Flink (FFNN + ResNet + Transformer, bsz=1, mp=1)",
		Header: []string{"model", "server", "mode", "throughput (events/s)"},
	}
	type entry struct {
		model string
		tool  string
		mode  string
	}
	entries := []entry{
		{"ffnn", "dl4j", "embedded"},
		{"ffnn", "onnx", "embedded"},
		{"ffnn", "savedmodel", "embedded"},
		{"ffnn", "torchserve", "external"},
		{"ffnn", "tf-serving", "external"},
		{"resnet", "onnx", "embedded"},
		{"resnet", "torchserve", "external"},
		{"resnet", "tf-serving", "external"},
		{"transformer", "onnx", "embedded"},
		{"transformer", "tf-serving", "external"},
	}
	for _, e := range entries {
		w := o.ffnnWorkload()
		d := o.scaled(3 * time.Second)
		switch e.model {
		case "resnet":
			w = o.resnetWorkload()
			d = o.scaled(4 * time.Second)
		case "transformer":
			w = o.transformerWorkload()
		}
		serving := embeddedTool(e.tool)
		if e.mode == "external" {
			serving = externalTool(e.tool)
		}
		cfg := o.baseConfig("flink", serving, w, e.model, 1)
		tput, err := o.saturate(cfg, d)
		if err != nil {
			return nil, fmt.Errorf("table4 %s/%s: %w", e.model, e.tool, err)
		}
		o.logf("table4 %s/%s: %.1f events/s", e.model, e.tool, tput)
		r.AddRow(e.model, e.tool, e.mode, fmtRate(tput))
	}
	r.AddNote("paper shape: embedded > external for FFNN; ONNX > SavedModel > DL4J; TF-Serving ≈ 3× TorchServe; ResNet collapses every tool to a few events/s with ONNX ≈ TF-Serving; the transformer (fused attention kernels) sits between the two")
	return r, nil
}

// Table5SPSThroughput reproduces Table 5: FFNN throughput across the four
// stream processors with ONNX (embedded) and TF-Serving (external).
func Table5SPSThroughput(opts Options) (*Report, error) {
	o := opts.withDefaults()
	r := &Report{
		ID:     "Table 5",
		Title:  "Stream-processor throughput comparison (FFNN, bsz=1, mp=1)",
		Header: []string{"engine", "onnx (e)", "tf-serving (x)"},
	}
	for _, engine := range []string{"flink", "kafka-streams", "spark-ss", "ray"} {
		row := []string{engine}
		for _, serving := range []core.ServingConfig{embeddedTool("onnx"), externalTool("tf-serving")} {
			cfg := o.baseConfig(engine, serving, o.ffnnWorkload(), "ffnn", 1)
			tput, err := o.saturate(cfg, o.scaled(3*time.Second))
			if err != nil {
				return nil, fmt.Errorf("table5 %s/%s: %w", engine, serving.Tool, err)
			}
			o.logf("table5 %s/%s: %.1f events/s", engine, serving.Tool, tput)
			row = append(row, fmtRate(tput))
		}
		r.AddRow(row...)
	}
	r.AddNote("paper shape: Spark SS highest (micro-batching), Kafka Streams > Flink, Ray lowest; Spark SS nearly erases the embedded-vs-external gap")
	return r, nil
}
