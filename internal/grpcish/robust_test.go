package grpcish

import (
	"encoding/binary"
	"math/rand"
	"net"
	"testing"
)

// TestServerSurvivesGarbage throws random byte streams and malformed
// frames at the RPC server: connections drop, the process survives, and
// well-formed clients keep working.
func TestServerSurvivesGarbage(t *testing.T) {
	s := NewServer()
	s.Handle("echo", func(req []byte) ([]byte, error) { return req, nil })
	if err := s.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	r := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, r.Intn(256)+1)
		r.Read(junk)
		conn.Write(junk)
		conn.Close()
	}

	// Oversized frame length.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	conn.Write(hdr[:])
	conn.Close()

	// Method length exceeding the frame.
	conn, err = net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	frame := []byte{0, 0, 0, 4, 0xFF, 0xFF, 0, 0}
	conn.Write(frame)
	conn.Close()

	// A real client still works.
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call("echo", []byte("still alive"))
	if err != nil || string(resp) != "still alive" {
		t.Fatalf("post-garbage call: %q, %v", resp, err)
	}
}
