package grpcish

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"crayfish/internal/resilience"
)

// rudeServer accepts connections, reads one request frame, and slams the
// connection shut mid-call — the connection-reset fault a crashing
// daemon produces.
type rudeServer struct {
	ln net.Listener
	wg sync.WaitGroup

	mu      sync.Mutex
	rudeFor int // reset the first N requests mid-call; then behave
	calls   int
}

// newRudeServer resets the first rudeFor requests mid-call (request
// read, connection closed before the response) and echoes afterwards.
func newRudeServer(t *testing.T, rudeFor int) *rudeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &rudeServer{ln: ln, rudeFor: rudeFor}
	s.wg.Add(1)
	go s.loop()
	return s
}

func (s *rudeServer) loop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func(conn net.Conn) {
			defer s.wg.Done()
			defer conn.Close()
			for {
				_, payload, err := readRequest(conn)
				if err != nil {
					return
				}
				s.mu.Lock()
				s.calls++
				rude := s.calls <= s.rudeFor
				s.mu.Unlock()
				if rude {
					return // reset mid-call: request read, no response
				}
				_ = writeResponse(conn, statusOK, payload)
			}
		}(conn)
	}
}

func (s *rudeServer) close() {
	s.ln.Close()
	s.wg.Wait()
}

func TestMidCallResetIsTypedRetryable(t *testing.T) {
	s := newRudeServer(t, 1<<30)
	defer s.close()
	c, err := Dial(s.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call("echo", []byte("hi"))
	if err == nil {
		t.Fatal("call over a reset connection succeeded")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("reset not typed ErrUnavailable: %v", err)
	}
	if !resilience.IsRetryable(err) {
		t.Fatalf("reset not retryable: %v", err)
	}
}

func TestWithRetryRidesOutReset(t *testing.T) {
	// The first request is reset mid-call; the retry's second attempt
	// lands on a fresh connection and succeeds.
	s := newRudeServer(t, 1)
	defer s.close()
	c, err := Dial(s.ln.Addr().String(),
		WithRetry(&resilience.Retry{Attempts: 5, BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call("echo", []byte("try again"))
	if err != nil || string(resp) != "try again" {
		t.Fatalf("retried call: %q, %v", resp, err)
	}
}

func TestRemoteErrorIsNotRetried(t *testing.T) {
	srv := NewServer()
	calls := 0
	var mu sync.Mutex
	srv.Handle("fail", func(req []byte) ([]byte, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return nil, errors.New("application refused")
	})
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(),
		WithRetry(&resilience.Retry{Attempts: 5, BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call("fail", nil)
	if err == nil {
		t.Fatal("expected remote error")
	}
	if resilience.IsRetryable(err) || errors.Is(err, ErrUnavailable) {
		t.Fatalf("application error mistyped as transport fault: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("application error retried %d times", calls)
	}
}

func TestBreakerShedsAfterSustainedFailure(t *testing.T) {
	s := newRudeServer(t, 1<<30)
	b := &resilience.Breaker{FailureThreshold: 3, Cooldown: time.Hour}
	c, err := Dial(s.ln.Addr().String(), WithBreaker(b))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Call("echo", nil); err == nil {
			t.Fatal("call against rude server succeeded")
		}
	}
	if b.State() != resilience.Open {
		t.Fatalf("breaker = %v after sustained failure, want open", b.State())
	}
	// Shut the server entirely: the shed call must fail fast on
	// resilience.ErrOpen without touching the network.
	s.close()
	_, err = c.Call("echo", nil)
	if !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("shed call error = %v, want ErrOpen", err)
	}
}

func TestDefaultCallDeadline(t *testing.T) {
	// A server that accepts and never responds: the default deadline
	// must eventually fail the call. Shrink it via WithTimeout to keep
	// the test quick, but prove Dial installs a deadline by default by
	// checking the zero-option client's configured timeout.
	c0 := &Client{addr: "x", timeout: DefaultCallTimeout}
	if c0.timeout <= 0 {
		t.Fatal("no default deadline")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				_, _ = io.Copy(io.Discard, conn) // read forever, answer never
			}(conn)
		}
	}()
	defer wg.Wait()
	defer ln.Close()
	c, err := Dial(ln.Addr().String(), WithTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Call("hang", nil)
	if err == nil {
		t.Fatal("hung call returned")
	}
	if !errors.Is(err, ErrUnavailable) || !resilience.IsRetryable(err) {
		t.Fatalf("deadline error not typed/retryable: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v", elapsed)
	}
}

func TestOversizedRequestNotRetried(t *testing.T) {
	srv := NewServer()
	srv.Handle("echo", func(req []byte) ([]byte, error) { return req, nil })
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	attempts := 0
	c, err := Dial(srv.Addr(), WithRetry(&resilience.Retry{
		Attempts: 4, BaseDelay: time.Millisecond,
		Sleep:     func(time.Duration) {},
		OnAttempt: func(int, error) { attempts++ },
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, maxFrame+1)
	binary.BigEndian.PutUint32(big, 0) // touch it so the alloc is real
	_, err = c.Call("echo", big)
	if err == nil {
		t.Fatal("oversized request accepted")
	}
	if errors.Is(err, ErrUnavailable) || resilience.IsRetryable(err) {
		t.Fatalf("caller bug typed as transport fault: %v", err)
	}
	if attempts != 0 {
		t.Fatalf("caller bug retried %d times", attempts)
	}
}
