// Package grpcish is the minimal gRPC-analogue RPC substrate the external
// serving frameworks use (§3.4.3 uses gRPC for TensorFlow Serving and
// TorchServe). It provides unary calls over TCP with length-prefixed binary
// frames, per-method dispatch, deadlines, and client-side connection
// pooling. Payloads are opaque bytes; services define their own codecs.
//
// Fault semantics: every transport failure (dial, reset, torn frame,
// deadline) surfaces as a typed ErrUnavailable marked retryable
// (resilience.IsRetryable); application errors returned by remote
// handlers are plain errors. Calls carry DefaultCallTimeout unless
// WithTimeout overrides it, and WithRetry / WithBreaker wire the
// client-side resilience policy into every Call.
package grpcish

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"crayfish/internal/resilience"
)

// maxFrame bounds one RPC frame.
const maxFrame = 96 << 20

// DefaultCallTimeout bounds one Call when WithTimeout is not given: no
// hung daemon may wedge a run (a hang is indistinguishable from a
// crash without a deadline).
const DefaultCallTimeout = 30 * time.Second

// ErrClosed is returned for operations on a closed client or server.
var ErrClosed = errors.New("grpcish: closed")

// ErrUnavailable types every transport-level call failure — connection
// reset, torn frame, dial failure, deadline — as distinct from an
// application error returned by the remote handler. ErrUnavailable
// errors are marked retryable (resilience.IsRetryable).
var ErrUnavailable = errors.New("grpcish: unavailable")

// Status codes carried in response frames.
const (
	statusOK  = 0
	statusErr = 1
)

// Handler serves one unary method invocation.
type Handler func(req []byte) ([]byte, error)

// Server dispatches RPC frames to registered method handlers.
type Server struct {
	ln net.Listener

	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates a server with no registered methods.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler), conns: make(map[net.Conn]bool)}
}

// Handle registers a method handler. It must be called before Serve.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Serve binds addr and accepts connections until Close.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound address; empty before Serve.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		method, payload, err := readRequest(br)
		if err != nil {
			return
		}
		s.mu.Lock()
		h := s.handlers[method]
		s.mu.Unlock()
		var resp []byte
		status := byte(statusOK)
		if h == nil {
			status = statusErr
			resp = []byte(fmt.Sprintf("grpcish: unimplemented method %q", method))
		} else if resp, err = h(payload); err != nil {
			status = statusErr
			resp = []byte(err.Error())
		}
		if err := writeResponse(bw, status, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// request frame: u32 frame length | u16 method length | method | payload.
func writeRequest(w io.Writer, method string, payload []byte) error {
	total := 2 + len(method) + len(payload)
	if total > maxFrame {
		return fmt.Errorf("grpcish: request of %d bytes exceeds frame limit", total)
	}
	hdr := make([]byte, 6+len(method))
	binary.BigEndian.PutUint32(hdr, uint32(total))
	binary.BigEndian.PutUint16(hdr[4:], uint16(len(method)))
	copy(hdr[6:], method)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readRequest(r io.Reader) (string, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", nil, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total > maxFrame || total < 2 {
		return "", nil, fmt.Errorf("grpcish: bad frame length %d", total)
	}
	frame := make([]byte, total)
	if _, err := io.ReadFull(r, frame); err != nil {
		return "", nil, err
	}
	mlen := int(binary.BigEndian.Uint16(frame))
	if 2+mlen > len(frame) {
		return "", nil, fmt.Errorf("grpcish: bad method length %d", mlen)
	}
	return string(frame[2 : 2+mlen]), frame[2+mlen:], nil
}

// response frame: u32 length | u8 status | payload.
func writeResponse(w io.Writer, status byte, payload []byte) error {
	total := 1 + len(payload)
	if total > maxFrame {
		return fmt.Errorf("grpcish: response of %d bytes exceeds frame limit", total)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(total))
	hdr[4] = status
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readResponse(r io.Reader) (byte, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total > maxFrame || total < 1 {
		return 0, nil, fmt.Errorf("grpcish: bad frame length %d", total)
	}
	frame := make([]byte, total)
	if _, err := io.ReadFull(r, frame); err != nil {
		return 0, nil, err
	}
	return frame[0], frame[1:], nil
}

// Client issues unary calls to a server, pooling connections so concurrent
// callers proceed in parallel.
type Client struct {
	addr    string
	timeout time.Duration
	retry   *resilience.Retry
	breaker *resilience.Breaker

	mu     sync.Mutex
	idle   []*clientConn
	closed bool
}

type clientConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// DialOption configures a Client.
type DialOption func(*Client)

// WithTimeout sets the per-call deadline (default DefaultCallTimeout);
// d ≤ 0 disables deadlines entirely.
func WithTimeout(d time.Duration) DialOption {
	return func(c *Client) { c.timeout = d }
}

// WithRetry retries transport failures (ErrUnavailable) with the given
// policy; application errors are never retried.
func WithRetry(r *resilience.Retry) DialOption {
	return func(c *Client) { c.retry = r }
}

// WithBreaker guards every Call with the circuit breaker: failed calls
// count toward opening it, and shed calls fail fast with a retryable
// resilience.ErrOpen.
func WithBreaker(b *resilience.Breaker) DialOption {
	return func(c *Client) { c.breaker = b }
}

// Dial connects to addr, validating connectivity eagerly.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	c := &Client{addr: addr, timeout: DefaultCallTimeout}
	for _, o := range opts {
		o(c)
	}
	conn, err := c.checkout()
	if err != nil {
		return nil, err
	}
	c.checkin(conn)
	return c, nil
}

// Close releases pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cc := range c.idle {
		cc.c.Close()
	}
	c.idle = nil
	return nil
}

func (c *Client) checkout() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, resilience.MarkRetryable(fmt.Errorf("grpcish: dial %s: %w: %w", c.addr, ErrUnavailable, err))
	}
	return &clientConn{c: conn, br: bufio.NewReaderSize(conn, 64<<10), bw: bufio.NewWriterSize(conn, 64<<10)}, nil
}

// flushIdle drops every pooled connection: after one transport failure
// the rest of the pool points at the same dead peer (e.g. a restarted
// daemon), so the next call must redial rather than inherit a corpse.
func (c *Client) flushIdle() {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, cc := range idle {
		cc.c.Close()
	}
}

func (c *Client) checkin(cc *clientConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= 128 {
		cc.c.Close()
		return
	}
	c.idle = append(c.idle, cc)
}

// Call performs one unary RPC under the client's resilience policy:
// transport failures are typed ErrUnavailable (retryable) and retried
// when WithRetry is set; WithBreaker sheds calls while the circuit is
// open. An application error returned by the remote handler comes back
// as a plain (non-retryable) error whose message is the handler's — it
// proves the peer is up, so it neither retries nor trips the breaker.
func (c *Client) Call(method string, req []byte) ([]byte, error) {
	var resp []byte
	var appErr error
	err := resilience.Run(c.retry, c.breaker, func() error {
		payload, aerr, terr := c.callOnce(method, req)
		if terr != nil {
			return terr
		}
		resp, appErr = payload, aerr
		return nil
	})
	if err != nil {
		return nil, err
	}
	if appErr != nil {
		return nil, appErr
	}
	return resp, nil
}

// unavailable types err as a retryable transport failure.
func unavailable(stage string, err error) error {
	return resilience.MarkRetryable(fmt.Errorf("grpcish: %s: %w: %w", stage, ErrUnavailable, err))
}

// callOnce performs one wire round trip, separating application errors
// (the peer answered, second return) from transport faults (the peer is
// unreachable, third return).
func (c *Client) callOnce(method string, req []byte) ([]byte, error, error) {
	if total := 2 + len(method) + len(req); total > maxFrame {
		// Caller bug, not a transport fault: fail before touching a
		// connection so it is neither retried nor counted as unavailable.
		return nil, fmt.Errorf("grpcish: request of %d bytes exceeds frame limit", total), nil
	}
	cc, err := c.checkout()
	if err != nil {
		return nil, nil, err
	}
	if c.timeout > 0 {
		cc.c.SetDeadline(time.Now().Add(c.timeout))
	}
	if err := writeRequest(cc.bw, method, req); err != nil {
		cc.c.Close()
		c.flushIdle()
		return nil, nil, unavailable("write", err)
	}
	if err := cc.bw.Flush(); err != nil {
		cc.c.Close()
		c.flushIdle()
		return nil, nil, unavailable("write", err)
	}
	status, payload, err := readResponse(cc.br)
	if err != nil {
		cc.c.Close()
		c.flushIdle()
		return nil, nil, unavailable("read", err)
	}
	if c.timeout > 0 {
		cc.c.SetDeadline(time.Time{})
	}
	c.checkin(cc)
	if status != statusOK {
		return nil, fmt.Errorf("grpcish: remote error: %s", payload), nil
	}
	return payload, nil, nil
}
