package grpcish

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func startEcho(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer()
	s.Handle("echo", func(req []byte) ([]byte, error) { return req, nil })
	s.Handle("fail", func(req []byte) ([]byte, error) { return nil, errors.New("boom") })
	s.Handle("slow", func(req []byte) ([]byte, error) {
		time.Sleep(50 * time.Millisecond)
		return req, nil
	})
	if err := s.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestUnaryCall(t *testing.T) {
	_, c := startEcho(t)
	resp, err := c.Call("echo", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("hello")) {
		t.Fatalf("resp = %q", resp)
	}
	// Empty payloads are legal.
	resp, err = c.Call("echo", nil)
	if err != nil || len(resp) != 0 {
		t.Fatalf("empty call: %q, %v", resp, err)
	}
}

func TestRemoteErrorPropagates(t *testing.T) {
	_, c := startEcho(t)
	_, err := c.Call("fail", []byte("x"))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	// The connection survives an application error.
	if _, err := c.Call("echo", []byte("y")); err != nil {
		t.Fatalf("call after error: %v", err)
	}
}

func TestUnimplementedMethod(t *testing.T) {
	_, c := startEcho(t)
	_, err := c.Call("nope", nil)
	if err == nil || !strings.Contains(err.Error(), "unimplemented") {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, c := startEcho(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("worker-%d", w))
			for i := 0; i < 30; i++ {
				resp, err := c.Call("echo", payload)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp, payload) {
					errs <- fmt.Errorf("cross-talk: %q != %q", resp, payload)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCallTimeout(t *testing.T) {
	s := NewServer()
	s.Handle("slow", func(req []byte) ([]byte, error) {
		time.Sleep(200 * time.Millisecond)
		return req, nil
	})
	if err := s.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), WithTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("slow", []byte("x")); err == nil {
		t.Fatal("deadline not enforced")
	}
}

func TestClosedClient(t *testing.T) {
	_, c := startEcho(t)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("echo", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close: %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("Dial to dead port succeeded")
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s, c := startEcho(t)
	done := make(chan error, 1)
	go func() {
		_, err := c.Call("slow", []byte("x"))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Log("in-flight call completed before close; acceptable")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("client blocked after server close")
	}
}

func TestLargePayload(t *testing.T) {
	_, c := startEcho(t)
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i)
	}
	resp, err := c.Call("echo", big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, big) {
		t.Fatal("large payload corrupted")
	}
}
