package serving

import (
	"errors"
	"testing"
	"testing/quick"
)

// stubScorer doubles every input value and widens each point to outWidth
// outputs, so split positions are easy to predict.
type stubScorer struct {
	inputLen, outWidth int
	err                error
	short              bool
}

func (s *stubScorer) Name() string    { return "stub" }
func (s *stubScorer) InputLen() int   { return s.inputLen }
func (s *stubScorer) OutputSize() int { return s.outWidth }

func (s *stubScorer) Score(inputs []float32, n int) ([]float32, error) {
	if s.err != nil {
		return nil, s.err
	}
	if err := ValidateBatch(inputs, n, s.inputLen); err != nil {
		return nil, err
	}
	out := make([]float32, n*s.outWidth)
	for p := 0; p < n; p++ {
		for o := 0; o < s.outWidth; o++ {
			out[p*s.outWidth+o] = 2 * inputs[p*s.inputLen]
		}
	}
	if s.short {
		out = out[:len(out)-1]
	}
	return out, nil
}

func TestScoreBatchMatchesPerBatchScoring(t *testing.T) {
	s := &stubScorer{inputLen: 3, outWidth: 2}
	batches := [][]float32{
		{1, 1, 1, 2, 2, 2},          // two points
		{3, 3, 3},                   // one point
		{4, 4, 4, 5, 5, 5, 6, 6, 6}, // three points
	}
	counts := []int{2, 1, 3}
	got, err := ScoreBatch(s, batches, counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batches) {
		t.Fatalf("got %d outputs for %d batches", len(got), len(batches))
	}
	for i := range batches {
		want, err := s.Score(append([]float32(nil), batches[i]...), counts[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(got[i]) != len(want) {
			t.Fatalf("batch %d: %d values, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("batch %d value %d: %v != %v (must be bit-identical)", i, j, got[i][j], want[j])
			}
		}
	}
}

func TestScoreBatchValidation(t *testing.T) {
	s := &stubScorer{inputLen: 3, outWidth: 2}
	if _, err := ScoreBatch(s, [][]float32{{1, 2, 3}}, []int{1, 2}); err == nil {
		t.Fatal("mismatched counts accepted")
	}
	if _, err := ScoreBatch(s, [][]float32{{1, 2}}, []int{1}); err == nil {
		t.Fatal("short batch accepted")
	}
	if out, err := ScoreBatch(s, nil, nil); err != nil || out != nil {
		t.Fatalf("empty call: %v, %v", out, err)
	}
	wantErr := errors.New("scorer down")
	if _, err := ScoreBatch(&stubScorer{inputLen: 3, outWidth: 2, err: wantErr}, [][]float32{{1, 2, 3}}, []int{1}); !errors.Is(err, wantErr) {
		t.Fatalf("scorer error not propagated: %v", err)
	}
	if _, err := ScoreBatch(&stubScorer{inputLen: 3, outWidth: 2, short: true}, [][]float32{{1, 2, 3}}, []int{1}); err == nil {
		t.Fatal("short prediction vector accepted")
	}
}

func TestEncodeDecodeBatchRoundTrip(t *testing.T) {
	f := func(vals []float32, nRaw uint8) bool {
		n := int(nRaw)%8 + 1
		data := EncodeBatch(vals, n)
		got, gotN, err := DecodeBatch(data)
		if err != nil || gotN != n || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN round-trips bit-exactly through the codec but
			// breaks ==; compare representations via data bytes.
			if got[i] != vals[i] && vals[i] == vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBatchMalformed(t *testing.T) {
	if _, _, err := DecodeBatch(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, _, err := DecodeBatch([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, _, err := DecodeBatch([]byte{0, 0, 0, 0, 1, 2, 3}); err == nil {
		t.Fatal("ragged payload accepted")
	}
}

func TestValidateBatch(t *testing.T) {
	if err := ValidateBatch(make([]float32, 8), 2, 4); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBatch(make([]float32, 7), 2, 4); err == nil {
		t.Fatal("short batch accepted")
	}
	if err := ValidateBatch(nil, 0, 4); err == nil {
		t.Fatal("zero batch accepted")
	}
}
