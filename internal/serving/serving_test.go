package serving

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeBatchRoundTrip(t *testing.T) {
	f := func(vals []float32, nRaw uint8) bool {
		n := int(nRaw)%8 + 1
		data := EncodeBatch(vals, n)
		got, gotN, err := DecodeBatch(data)
		if err != nil || gotN != n || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN round-trips bit-exactly through the codec but
			// breaks ==; compare representations via data bytes.
			if got[i] != vals[i] && vals[i] == vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBatchMalformed(t *testing.T) {
	if _, _, err := DecodeBatch(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, _, err := DecodeBatch([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, _, err := DecodeBatch([]byte{0, 0, 0, 0, 1, 2, 3}); err == nil {
		t.Fatal("ragged payload accepted")
	}
}

func TestValidateBatch(t *testing.T) {
	if err := ValidateBatch(make([]float32, 8), 2, 4); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBatch(make([]float32, 7), 2, 4); err == nil {
		t.Fatal("short batch accepted")
	}
	if err := ValidateBatch(nil, 0, 4); err == nil {
		t.Fatal("zero batch accepted")
	}
}
