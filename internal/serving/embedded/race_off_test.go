//go:build !race

package embedded

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
