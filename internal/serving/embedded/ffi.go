package embedded

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// ffiRounds is the number of boundary crossings one DL4J apply pays. A
// JVM interoperability stack crosses JNI once per native operation with
// array validation, workspace copies, and NDArray bookkeeping on each
// side; a single Go-speed crossing is far cheaper than that machinery.
// The multiplier is calibrated so the FFNN deficit lands in the band the
// paper measures for DL4J (Table 4: ~43% below SavedModel) — a disclosed
// modelled cost implemented as real CPU work (DESIGN.md §5).
const ffiRounds = 96

// ffiScratch holds one call's marshalling buffers: the off-"heap"
// native-side byte buffer and the host-side float workspace the values
// round-trip through. Pooling them keeps the DL4J scorer's steady state
// at the same ≤1 alloc/op profile as the planned ONNX path while the
// encode/decode CPU work — the modelled JNI cost — stays untouched.
type ffiScratch struct {
	buf  []byte
	vals []float32
}

var ffiPool = sync.Pool{New: func() any { return new(ffiScratch) }}

// grow sizes the scratch for a payload of n float32 values and returns
// the byte buffer and float workspace.
func (s *ffiScratch) grow(n int) ([]byte, []float32) {
	if cap(s.buf) < 8+4*n {
		s.buf = make([]byte, 8+4*n)
	}
	if cap(s.vals) < n {
		s.vals = make([]float32, n)
	}
	return s.buf[:8+4*n], s.vals[:n]
}

// ffiCrossInto moves vals across the simulated foreign-function boundary
// using buf as the native-side buffer, decoding back into vals in place:
// the values are encoded with a length-checked header and deserialised
// on the other side — the same double copy + re-encode a JVM
// interoperability library pays on every JNI call. This is real work,
// not a sleep; its cost scales with the payload exactly like the real
// bridge's does. The round trip is bit-preserving, so vals ends holding
// exactly the values it started with.
func ffiCrossInto(vals []float32, buf []byte) error {
	// Host -> native: serialise.
	binary.BigEndian.PutUint64(buf, uint64(len(vals)))
	for i, v := range vals {
		binary.BigEndian.PutUint32(buf[8+4*i:], math.Float32bits(v))
	}
	// Native -> host: validate and deserialise.
	n := binary.BigEndian.Uint64(buf)
	if n != uint64(len(vals)) {
		return fmt.Errorf("ffi header corrupt: %d != %d", n, len(vals))
	}
	for i := range vals {
		vals[i] = math.Float32frombits(binary.BigEndian.Uint32(buf[8+4*i:]))
	}
	return nil
}

// ffiCrossRoundsInto applies the boundary crossing ffiRounds times in
// place, representing the per-operation JNI traffic of one inference
// call.
func ffiCrossRoundsInto(vals []float32, buf []byte) error {
	for i := 0; i < ffiRounds; i++ {
		if err := ffiCrossInto(vals, buf); err != nil {
			return err
		}
	}
	return nil
}

// ffiCross is the allocating single-crossing variant: it returns a fresh
// slice carrying the values across the boundary, leaving the input
// untouched.
func ffiCross(vals []float32) ([]float32, error) {
	out := append([]float32(nil), vals...)
	buf := make([]byte, 8+4*len(vals))
	if err := ffiCrossInto(out, buf); err != nil {
		return nil, err
	}
	return out, nil
}
