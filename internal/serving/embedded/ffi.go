package embedded

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ffiRounds is the number of boundary crossings one DL4J apply pays. A
// JVM interoperability stack crosses JNI once per native operation with
// array validation, workspace copies, and NDArray bookkeeping on each
// side; a single Go-speed crossing is far cheaper than that machinery.
// The multiplier is calibrated so the FFNN deficit lands in the band the
// paper measures for DL4J (Table 4: ~43% below SavedModel) — a disclosed
// modelled cost implemented as real CPU work (DESIGN.md §5).
const ffiRounds = 96

// ffiCrossRounds applies the boundary crossing ffiRounds times,
// representing the per-operation JNI traffic of one inference call.
func ffiCrossRounds(vals []float32) ([]float32, error) {
	out := vals
	var err error
	for i := 0; i < ffiRounds; i++ {
		out, err = ffiCross(out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ffiCross moves a float32 slice across the DL4J runtime's simulated
// foreign-function boundary: the values are encoded into an off-"heap"
// byte buffer with a length-checked header and decoded back on the other
// side — the same double copy + re-encode a JVM interoperability library
// pays on every JNI call. This is real work, not a sleep; its cost scales
// with the payload exactly like the real bridge's does.
func ffiCross(vals []float32) ([]float32, error) {
	// Host -> native: serialise.
	buf := make([]byte, 8+4*len(vals))
	binary.BigEndian.PutUint64(buf, uint64(len(vals)))
	for i, v := range vals {
		binary.BigEndian.PutUint32(buf[8+4*i:], math.Float32bits(v))
	}
	// Native -> host: validate and deserialise.
	n := binary.BigEndian.Uint64(buf)
	if n != uint64(len(vals)) {
		return nil, fmt.Errorf("ffi header corrupt: %d != %d", n, len(vals))
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.BigEndian.Uint32(buf[8+4*i:]))
	}
	return out, nil
}
