package embedded

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"crayfish/internal/gpu"
	"crayfish/internal/model"
	"crayfish/internal/modelfmt"
)

// loadRuntime builds a runtime of the given kind with the FFNN loaded
// through its native storage format.
func loadRuntime(t *testing.T, kind Kind, m *model.Model) *Runtime {
	t.Helper()
	r, err := New(kind, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := modelfmt.Encode(r.Format(), m)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Load(data); err != nil {
		t.Fatal(err)
	}
	return r
}

func randBatch(m *model.Model, n int, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float32, n*m.InputLen())
	for i := range out {
		out[i] = r.Float32()
	}
	return out
}

func TestAllRuntimesMatchReferenceForward(t *testing.T) {
	m := model.NewFFNN(1)
	inputs := randBatch(m, 4, 7)
	in, err := m.BatchInput(append([]float32(nil), inputs...), 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range Kinds() {
		r := loadRuntime(t, kind, m)
		got, err := r.Score(inputs, 4)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(got) != 4*10 {
			t.Fatalf("%s: output length %d", kind, len(got))
		}
		for i, v := range got {
			d := float64(v) - float64(ref.Data()[i])
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("%s: output %d differs: %v vs %v", kind, i, v, ref.Data()[i])
			}
		}
	}
}

func TestRuntimesMatchOnConvModel(t *testing.T) {
	cfg := model.BenchResNetConfig(2)
	cfg.InputSize = 32
	cfg.Blocks = [4]int{1, 1, 1, 1}
	m := model.NewResNet(cfg)
	inputs := randBatch(m, 1, 3)
	var ref []float32
	for _, kind := range Kinds() {
		r := loadRuntime(t, kind, m)
		got, err := r.Score(inputs, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			d := float64(got[i]) - float64(ref[i])
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("%s: output %d differs across runtimes", kind, i)
			}
		}
	}
}

func TestFusedPlanCompilation(t *testing.T) {
	dense := compileFused(model.NewFFNN(1))
	if !dense.Fused() {
		t.Fatal("FFNN did not fuse")
	}
	// 4 dense layers, each absorbing its activation.
	if len(dense.steps) != 4 {
		t.Fatalf("fused steps = %d, want 4", len(dense.steps))
	}
	if !dense.steps[0].fuseReLU || dense.steps[0].softmax {
		t.Fatal("first step should fuse ReLU")
	}
	if !dense.steps[3].softmax {
		t.Fatal("last step should absorb softmax")
	}
	if !strings.Contains(dense.describe(), "fused") {
		t.Fatalf("describe = %q", dense.describe())
	}

	cfg := model.BenchResNetConfig(1)
	cfg.InputSize = 32
	cfg.Blocks = [4]int{1, 1, 1, 1}
	conv := compileFused(model.NewResNet(cfg))
	if conv.Fused() {
		t.Fatal("conv model fused onto the dense path")
	}
	if !strings.Contains(conv.describe(), "generic") {
		t.Fatalf("describe = %q", conv.describe())
	}
}

func TestScratchReuseAcrossBatchSizes(t *testing.T) {
	m := model.NewFFNN(1)
	r := loadRuntime(t, ONNX, m)
	for _, n := range []int{1, 8, 1, 32, 8} {
		out, err := r.Score(randBatch(m, n, int64(n)), n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(out) != n*10 {
			t.Fatalf("n=%d: output %d", n, len(out))
		}
	}
}

func TestConcurrentScoreIsSafe(t *testing.T) {
	m := model.NewFFNN(1)
	for _, kind := range Kinds() {
		r := loadRuntime(t, kind, m)
		inputs := randBatch(m, 2, 11)
		want, err := r.Score(inputs, 2)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					got, err := r.Score(inputs, 2)
					if err != nil {
						errs <- err
						return
					}
					for j := range got {
						if got[j] != want[j] {
							errs <- err
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%s: concurrent score: %v", kind, err)
		}
	}
}

func TestScoreValidation(t *testing.T) {
	m := model.NewFFNN(1)
	r := loadRuntime(t, ONNX, m)
	if _, err := r.Score(make([]float32, 10), 1); err == nil {
		t.Fatal("short batch accepted")
	}
	if _, err := r.Score(nil, 0); err == nil {
		t.Fatal("zero batch accepted")
	}
	fresh, err := New(SavedModel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Score(make([]float32, 784), 1); err == nil {
		t.Fatal("score before load accepted")
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New("tensorrt", nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestLoadRejectsWrongFormat(t *testing.T) {
	m := model.NewFFNN(1)
	onnxBytes, err := modelfmt.Encode(modelfmt.ONNX, m)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(DL4J, nil) // wants H5
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Load(onnxBytes); err == nil {
		t.Fatal("DL4J loaded ONNX bytes")
	}
}

func TestRuntimeMetadata(t *testing.T) {
	m := model.NewFFNN(1)
	r := loadRuntime(t, ONNX, m)
	if r.Name() != "onnx" || r.InputLen() != 784 || r.OutputSize() != 10 {
		t.Fatalf("metadata: %s/%d/%d", r.Name(), r.InputLen(), r.OutputSize())
	}
	if r.Model() == nil {
		t.Fatal("Model() nil after load")
	}
	empty, err := New(ONNX, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.InputLen() != 0 || empty.OutputSize() != 0 {
		t.Fatal("unloaded runtime reports sizes")
	}
}

func TestGPUDeviceProducesSameOutputs(t *testing.T) {
	m := model.NewFFNN(1)
	cpuRT := loadRuntime(t, ONNX, m)
	gpuRT, err := New(ONNX, gpu.NewGPU(gpu.Config{Workers: 4, BandwidthBytesPerSec: 1e12, LaunchLatency: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := gpuRT.LoadModel(m); err != nil {
		t.Fatal(err)
	}
	inputs := randBatch(m, 8, 5)
	a, err := cpuRT.Score(inputs, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gpuRT.Score(inputs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		if d > 1e-4 || d < -1e-4 {
			t.Fatalf("gpu output %d differs", i)
		}
	}
}

func TestFFICrossPreservesValues(t *testing.T) {
	vals := []float32{0, -1.5, 3.25, 1e-20, 1e20}
	out, err := ffiCross(vals)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("ffi value %d: %v != %v", i, out[i], vals[i])
		}
	}
}

func TestPlannedRuntimesAllocProfile(t *testing.T) {
	// Every embedded runtime's steady state allocates only the returned
	// output slice: ONNX since the plan/arena work, SavedModel since its
	// unfused executor moved onto an arena-backed plan, DL4J since its
	// FFI marshalling moved to pooled scratch (docs/PERFORMANCE.md).
	m := model.NewFFNN(1)
	for _, kind := range Kinds() {
		r := loadRuntime(t, kind, m)
		inputs := randBatch(m, 1, 13)
		work := make([]float32, len(inputs))
		allocs := testing.AllocsPerRun(50, func() {
			copy(work, inputs)
			if _, err := r.Score(work, 1); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 1 {
			t.Errorf("%s: %.1f allocs/op in steady state, want <= 1", kind, allocs)
		}
	}
}

func TestRelativeSpeedONNXFastest(t *testing.T) {
	// Table 4 shape within embedded tools: ONNX >= SavedModel > DL4J in
	// throughput, i.e. ONNX cheapest per call, DL4J most expensive.
	if testing.Short() || raceEnabled {
		t.Skip("timing-sensitive")
	}
	m := model.NewFFNN(1)
	inputs := randBatch(m, 1, 1)
	runtimes := map[Kind]*Runtime{}
	for _, kind := range Kinds() {
		r := loadRuntime(t, kind, m)
		for i := 0; i < 50; i++ {
			if _, err := r.Score(inputs, 1); err != nil {
				t.Fatal(err)
			}
		}
		runtimes[kind] = r
	}
	// Interleave short rounds and compare kinds within each round, then
	// judge on the median per-round ratio: machine-load noise that spans
	// a whole round hits every kind equally, and a single bad window
	// cannot flip the verdict. The start position rotates so no kind
	// always measures right after DL4J's cache-thrashing FFI pass.
	const rounds, iters = 9, 300
	perRound := map[Kind][]float64{}
	for round := 0; round < rounds; round++ {
		kinds := Kinds()
		for i := range kinds {
			kind := kinds[(round+i)%len(kinds)]
			r := runtimes[kind]
			start := nowNanos()
			for it := 0; it < iters; it++ {
				if _, err := r.Score(inputs, 1); err != nil {
					t.Fatal(err)
				}
			}
			perRound[kind] = append(perRound[kind], float64(nowNanos()-start)/iters)
		}
	}
	medianRatio := func(num, den Kind) float64 {
		ratios := make([]float64, rounds)
		for i := range ratios {
			ratios[i] = perRound[num][i] / perRound[den][i]
		}
		sort.Float64s(ratios)
		return ratios[rounds/2]
	}
	// ONNX's fused plan recycles buffers op-to-op where SavedModel's
	// unfused plan holds every activation to the end of the pass. On
	// the small FFNN the two are near-parity by design (both are
	// arena-backed plans over the same kernels), so this assertion only
	// guards the ordering against a real regression — e.g. the fused
	// path re-growing per-op work — not a few percent of scheduler
	// noise; hence the loose 25% tolerance.
	if ratio := medianRatio(ONNX, SavedModel); ratio > 1.25 {
		t.Errorf("ONNX slower than SavedModel (median ratio %.2f)", ratio)
	}
	// DL4J's FFI rounds are a large, stable deficit.
	if ratio := medianRatio(DL4J, SavedModel); ratio < 2 {
		t.Errorf("DL4J not paying its FFI cost vs SavedModel (median ratio %.2f)", ratio)
	}
}

// benchScore drives one runtime kind over the reduced benchmark ResNet
// at batch 2. scripts/bench.sh compares the planned ONNX variant's B/op
// against the unplanned SavedModel baseline below and writes the ratio
// to BENCH_inference.json.
func benchScore(b *testing.B, kind Kind) {
	cfg := model.BenchResNetConfig(3)
	cfg.InputSize = 32
	cfg.Blocks = [4]int{1, 1, 1, 1}
	m := model.NewResNet(cfg)
	r, err := New(kind, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := r.LoadModel(m); err != nil {
		b.Fatal(err)
	}
	inputs := make([]float32, 2*m.InputLen())
	// One warm-up call so cold-start work (plan state construction) stays
	// out of the steady-state numbers even at tiny -benchtime.
	if _, err := r.Score(inputs, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Score(inputs, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreResNetPlanned is the compiled-plan scorer: steady state
// allocates only the returned output slice.
func BenchmarkScoreResNetPlanned(b *testing.B) { benchScore(b, ONNX) }

// BenchmarkScoreResNetUnplanned is the per-op allocating baseline over
// the same model, batch, and kernels. It anchors on the raw unfused
// executor directly (not the SavedModel runtime, which now runs an
// arena-backed plan and is alloc-parity with ONNX) so the
// scorer_bytes_ratio claim in BENCH_inference.json keeps comparing
// planned execution against genuine per-op allocation.
func BenchmarkScoreResNetUnplanned(b *testing.B) {
	cfg := model.BenchResNetConfig(3)
	cfg.InputSize = 32
	cfg.Blocks = [4]int{1, 1, 1, 1}
	m := model.NewResNet(cfg)
	inputs := make([]float32, 2*m.InputLen())
	if _, err := ForwardUnfused(m, inputs, 2, model.ExecHints{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ForwardUnfused(m, inputs, 2, model.ExecHints{}); err != nil {
			b.Fatal(err)
		}
	}
}

// loadInt8Runtime builds a runtime on an int8-wrapped CPU device.
func loadInt8Runtime(t testing.TB, kind Kind, m *model.Model) *Runtime {
	t.Helper()
	r, err := New(kind, gpu.WithInt8(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadModel(m); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestInt8RuntimeAgreesWithFloat is the serving-level face of the
// accuracy-drift contract: an int8 runtime's argmax predictions agree
// with the float runtime's on nearly every point of a seeded batch.
func TestInt8RuntimeAgreesWithFloat(t *testing.T) {
	m := model.NewFFNN(1)
	const n = 64
	inputs := randBatch(m, n, 17)
	ref := loadRuntime(t, ONNX, m)
	want, err := ref.Score(append([]float32(nil), inputs...), n)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{ONNX, DL4J} {
		r := loadInt8Runtime(t, kind, m)
		if !r.plan.Quantized() {
			t.Fatalf("%s: int8 device produced a float plan", kind)
		}
		got, err := r.Score(append([]float32(nil), inputs...), n)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		cols := m.OutputSize
		agree := 0
		for i := 0; i < n; i++ {
			wi, gi := argmax(want[i*cols:(i+1)*cols]), argmax(got[i*cols:(i+1)*cols])
			if wi == gi {
				agree++
			}
		}
		if frac := float64(agree) / n; frac < 0.95 {
			t.Errorf("%s: int8 top-1 agreement %.4f, want >= 0.95", kind, frac)
		}
		_ = r.Close()
	}
}

func argmax(row []float32) int {
	best, bi := row[0], 0
	for j, v := range row[1:] {
		if v > best {
			best, bi = v, j+1
		}
	}
	return bi
}

// TestInt8SavedModelRejected: the unfused runtime has no plan to hang
// the quantized kernels on, so loading on an int8 device must fail.
func TestInt8SavedModelRejected(t *testing.T) {
	r, err := New(SavedModel, gpu.WithInt8(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadModel(model.NewFFNN(1)); err == nil {
		t.Fatal("savedmodel accepted an int8 device profile")
	}
}

// TestInt8RuntimeAllocProfile extends the alloc-parity gate to the
// quantized path: quantize + packed GEMM + dequantize plus all arena
// traffic still allocates only the returned output slice.
func TestInt8RuntimeAllocProfile(t *testing.T) {
	m := model.NewFFNN(1)
	r := loadInt8Runtime(t, ONNX, m)
	inputs := randBatch(m, 1, 13)
	work := make([]float32, len(inputs))
	allocs := testing.AllocsPerRun(50, func() {
		copy(work, inputs)
		if _, err := r.Score(work, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("int8 onnx: %.1f allocs/op in steady state, want <= 1", allocs)
	}
}

func BenchmarkScoreFFNN(b *testing.B) {
	m := model.NewFFNN(1)
	inputs := make([]float32, 784)
	for _, kind := range Kinds() {
		r, err := New(kind, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.LoadModel(m); err != nil {
			b.Fatal(err)
		}
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.Score(inputs, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
