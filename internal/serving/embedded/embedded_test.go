package embedded

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"crayfish/internal/gpu"
	"crayfish/internal/model"
	"crayfish/internal/modelfmt"
)

// loadRuntime builds a runtime of the given kind with the FFNN loaded
// through its native storage format.
func loadRuntime(t *testing.T, kind Kind, m *model.Model) *Runtime {
	t.Helper()
	r, err := New(kind, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := modelfmt.Encode(r.Format(), m)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Load(data); err != nil {
		t.Fatal(err)
	}
	return r
}

func randBatch(m *model.Model, n int, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float32, n*m.InputLen())
	for i := range out {
		out[i] = r.Float32()
	}
	return out
}

func TestAllRuntimesMatchReferenceForward(t *testing.T) {
	m := model.NewFFNN(1)
	inputs := randBatch(m, 4, 7)
	in, err := m.BatchInput(append([]float32(nil), inputs...), 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range Kinds() {
		r := loadRuntime(t, kind, m)
		got, err := r.Score(inputs, 4)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(got) != 4*10 {
			t.Fatalf("%s: output length %d", kind, len(got))
		}
		for i, v := range got {
			d := float64(v) - float64(ref.Data()[i])
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("%s: output %d differs: %v vs %v", kind, i, v, ref.Data()[i])
			}
		}
	}
}

func TestRuntimesMatchOnConvModel(t *testing.T) {
	cfg := model.BenchResNetConfig(2)
	cfg.InputSize = 32
	cfg.Blocks = [4]int{1, 1, 1, 1}
	m := model.NewResNet(cfg)
	inputs := randBatch(m, 1, 3)
	var ref []float32
	for _, kind := range Kinds() {
		r := loadRuntime(t, kind, m)
		got, err := r.Score(inputs, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			d := float64(got[i]) - float64(ref[i])
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("%s: output %d differs across runtimes", kind, i)
			}
		}
	}
}

func TestFusedPlanCompilation(t *testing.T) {
	dense := compileFused(model.NewFFNN(1))
	if !dense.Fused() {
		t.Fatal("FFNN did not fuse")
	}
	// 4 dense layers, each absorbing its activation.
	if len(dense.steps) != 4 {
		t.Fatalf("fused steps = %d, want 4", len(dense.steps))
	}
	if !dense.steps[0].fuseReLU || dense.steps[0].softmax {
		t.Fatal("first step should fuse ReLU")
	}
	if !dense.steps[3].softmax {
		t.Fatal("last step should absorb softmax")
	}
	if !strings.Contains(dense.describe(), "fused") {
		t.Fatalf("describe = %q", dense.describe())
	}

	cfg := model.BenchResNetConfig(1)
	cfg.InputSize = 32
	cfg.Blocks = [4]int{1, 1, 1, 1}
	conv := compileFused(model.NewResNet(cfg))
	if conv.Fused() {
		t.Fatal("conv model fused onto the dense path")
	}
	if !strings.Contains(conv.describe(), "generic") {
		t.Fatalf("describe = %q", conv.describe())
	}
}

func TestScratchReuseAcrossBatchSizes(t *testing.T) {
	m := model.NewFFNN(1)
	r := loadRuntime(t, ONNX, m)
	for _, n := range []int{1, 8, 1, 32, 8} {
		out, err := r.Score(randBatch(m, n, int64(n)), n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(out) != n*10 {
			t.Fatalf("n=%d: output %d", n, len(out))
		}
	}
}

func TestConcurrentScoreIsSafe(t *testing.T) {
	m := model.NewFFNN(1)
	for _, kind := range Kinds() {
		r := loadRuntime(t, kind, m)
		inputs := randBatch(m, 2, 11)
		want, err := r.Score(inputs, 2)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					got, err := r.Score(inputs, 2)
					if err != nil {
						errs <- err
						return
					}
					for j := range got {
						if got[j] != want[j] {
							errs <- err
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%s: concurrent score: %v", kind, err)
		}
	}
}

func TestScoreValidation(t *testing.T) {
	m := model.NewFFNN(1)
	r := loadRuntime(t, ONNX, m)
	if _, err := r.Score(make([]float32, 10), 1); err == nil {
		t.Fatal("short batch accepted")
	}
	if _, err := r.Score(nil, 0); err == nil {
		t.Fatal("zero batch accepted")
	}
	fresh, err := New(SavedModel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Score(make([]float32, 784), 1); err == nil {
		t.Fatal("score before load accepted")
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New("tensorrt", nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestLoadRejectsWrongFormat(t *testing.T) {
	m := model.NewFFNN(1)
	onnxBytes, err := modelfmt.Encode(modelfmt.ONNX, m)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(DL4J, nil) // wants H5
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Load(onnxBytes); err == nil {
		t.Fatal("DL4J loaded ONNX bytes")
	}
}

func TestRuntimeMetadata(t *testing.T) {
	m := model.NewFFNN(1)
	r := loadRuntime(t, ONNX, m)
	if r.Name() != "onnx" || r.InputLen() != 784 || r.OutputSize() != 10 {
		t.Fatalf("metadata: %s/%d/%d", r.Name(), r.InputLen(), r.OutputSize())
	}
	if r.Model() == nil {
		t.Fatal("Model() nil after load")
	}
	empty, err := New(ONNX, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.InputLen() != 0 || empty.OutputSize() != 0 {
		t.Fatal("unloaded runtime reports sizes")
	}
}

func TestGPUDeviceProducesSameOutputs(t *testing.T) {
	m := model.NewFFNN(1)
	cpuRT := loadRuntime(t, ONNX, m)
	gpuRT, err := New(ONNX, gpu.NewGPU(gpu.Config{Workers: 4, BandwidthBytesPerSec: 1e12, LaunchLatency: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := gpuRT.LoadModel(m); err != nil {
		t.Fatal(err)
	}
	inputs := randBatch(m, 8, 5)
	a, err := cpuRT.Score(inputs, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gpuRT.Score(inputs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		if d > 1e-4 || d < -1e-4 {
			t.Fatalf("gpu output %d differs", i)
		}
	}
}

func TestFFICrossPreservesValues(t *testing.T) {
	vals := []float32{0, -1.5, 3.25, 1e-20, 1e20}
	out, err := ffiCross(vals)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("ffi value %d: %v != %v", i, out[i], vals[i])
		}
	}
}

func TestPlannedRuntimesAllocProfile(t *testing.T) {
	// The planned runtimes' steady state allocates only the returned
	// output slice: ONNX since the plan/arena work, DL4J since its FFI
	// marshalling moved to pooled scratch (docs/PERFORMANCE.md).
	m := model.NewFFNN(1)
	for _, kind := range []Kind{ONNX, DL4J} {
		r := loadRuntime(t, kind, m)
		inputs := randBatch(m, 1, 13)
		work := make([]float32, len(inputs))
		allocs := testing.AllocsPerRun(50, func() {
			copy(work, inputs)
			if _, err := r.Score(work, 1); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 1 {
			t.Errorf("%s: %.1f allocs/op in steady state, want <= 1", kind, allocs)
		}
	}
}

func TestRelativeSpeedONNXFastest(t *testing.T) {
	// Table 4 shape within embedded tools: ONNX >= SavedModel > DL4J in
	// throughput, i.e. ONNX cheapest per call, DL4J most expensive.
	if testing.Short() || raceEnabled {
		t.Skip("timing-sensitive")
	}
	m := model.NewFFNN(1)
	inputs := randBatch(m, 1, 1)
	cost := map[Kind]int64{}
	for _, kind := range Kinds() {
		r := loadRuntime(t, kind, m)
		// Warm up, then measure.
		for i := 0; i < 50; i++ {
			if _, err := r.Score(inputs, 1); err != nil {
				t.Fatal(err)
			}
		}
		iters := 2000
		start := nowNanos()
		for i := 0; i < iters; i++ {
			if _, err := r.Score(inputs, 1); err != nil {
				t.Fatal(err)
			}
		}
		cost[kind] = (nowNanos() - start) / int64(iters)
	}
	// ONNX's fused plan saves allocations and activation passes; with
	// the GEMM dominating, the margin is small, so allow 10% noise.
	if float64(cost[ONNX]) > 1.1*float64(cost[SavedModel]) {
		t.Errorf("ONNX (%dns) slower than SavedModel (%dns)", cost[ONNX], cost[SavedModel])
	}
	// DL4J's FFI rounds are a large, stable deficit.
	if float64(cost[DL4J]) < 2*float64(cost[SavedModel]) {
		t.Errorf("DL4J (%dns) not paying its FFI cost vs SavedModel (%dns)", cost[DL4J], cost[SavedModel])
	}
}

// benchScore drives one runtime kind over the reduced benchmark ResNet
// at batch 2. scripts/bench.sh compares the planned ONNX variant's B/op
// against the unplanned SavedModel baseline below and writes the ratio
// to BENCH_inference.json.
func benchScore(b *testing.B, kind Kind) {
	cfg := model.BenchResNetConfig(3)
	cfg.InputSize = 32
	cfg.Blocks = [4]int{1, 1, 1, 1}
	m := model.NewResNet(cfg)
	r, err := New(kind, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := r.LoadModel(m); err != nil {
		b.Fatal(err)
	}
	inputs := make([]float32, 2*m.InputLen())
	// One warm-up call so cold-start work (plan state construction) stays
	// out of the steady-state numbers even at tiny -benchtime.
	if _, err := r.Score(inputs, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Score(inputs, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreResNetPlanned is the compiled-plan scorer: steady state
// allocates only the returned output slice.
func BenchmarkScoreResNetPlanned(b *testing.B) { benchScore(b, ONNX) }

// BenchmarkScoreResNetUnplanned is the per-op allocating baseline over
// the same model, batch, and kernels.
func BenchmarkScoreResNetUnplanned(b *testing.B) { benchScore(b, SavedModel) }

func BenchmarkScoreFFNN(b *testing.B) {
	m := model.NewFFNN(1)
	inputs := make([]float32, 784)
	for _, kind := range Kinds() {
		r, err := New(kind, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.LoadModel(m); err != nil {
			b.Fatal(err)
		}
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.Score(inputs, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
