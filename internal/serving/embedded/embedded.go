// Package embedded implements the three interoperability libraries from
// §3.4.2 as in-process serving runtimes:
//
//   - ONNX: loads the ONNX-analogue format and executes a compiled
//     per-device execution plan (model.Plan) whose steady state is
//     allocation-free — the fastest embedded path, as in Table 4.
//   - SavedModel: loads the SavedModel-analogue bundle and executes the
//     graph op-by-op through an unfused plan: no buffer recycling between
//     operators inside a pass (every op output stays live, as graph
//     executors without a fusion pass behave), but buffers come from the
//     plan's arena, so the steady state is allocation-parity with ONNX.
//   - DL4J: loads the Keras-H5-analogue format and pays a real foreign-
//     function-interface cost on every call: inputs and outputs round-trip
//     through a byte-level marshalling boundary, like a JNI bridge.
//
// Every runtime produces outputs identical to model.Forward; they differ
// only in how they execute, which is exactly the paper's premise.
//
// A device wrapped by gpu.WithInt8 (or named "gpu+int8") opts the ONNX
// and DL4J runtimes into the quantized int8 path: LoadModel folds batch
// norms, calibrates activation ranges on a deterministic synthetic
// batch, and compiles an int8 plan (docs/QUANTIZATION.md). The
// savedmodel runtime rejects int8 — its unfused executor has no plan
// fusion to hang the quantized kernels on, matching how TF SavedModel
// deployments route quantization through a converter instead.
package embedded

import (
	"fmt"

	"crayfish/internal/gpu"
	"crayfish/internal/model"
	"crayfish/internal/modelfmt"
	"crayfish/internal/serving"
)

// Kind selects an embedded runtime implementation.
type Kind string

// The embedded serving tools from the paper.
const (
	ONNX       Kind = "onnx"
	SavedModel Kind = "savedmodel"
	DL4J       Kind = "dl4j"
)

// Kinds lists all embedded runtimes in a stable order.
func Kinds() []Kind { return []Kind{ONNX, SavedModel, DL4J} }

// Runtime is an embedded serving tool: Load brings a stored model into
// operator memory, Score runs inference in-process.
type Runtime struct {
	kind   Kind
	format modelfmt.Format
	dev    gpu.Device

	m    *model.Model
	plan *model.Plan // compiled for this runtime's device (unfused for SavedModel)
}

// New creates a runtime of the given kind executing on dev (nil = CPU).
func New(kind Kind, dev gpu.Device) (*Runtime, error) {
	if dev == nil {
		dev = gpu.CPU()
	}
	var f modelfmt.Format
	switch kind {
	case ONNX:
		f = modelfmt.ONNX
	case SavedModel:
		f = modelfmt.SavedModel
	case DL4J:
		f = modelfmt.H5
	default:
		return nil, fmt.Errorf("embedded: unknown runtime kind %q", kind)
	}
	return &Runtime{kind: kind, format: f, dev: dev}, nil
}

// Name implements serving.Scorer.
func (r *Runtime) Name() string { return string(r.kind) }

// Format returns the storage format this runtime loads.
func (r *Runtime) Format() modelfmt.Format { return r.format }

// Load decodes stored model bytes in the runtime's native format and
// prepares execution (the ONNX runtime compiles its fused plan here).
// It implements the load half of the CrayfishModel interface (§3.2).
func (r *Runtime) Load(data []byte) error {
	m, err := modelfmt.Decode(r.format, data)
	if err != nil {
		return fmt.Errorf("embedded %s: %w", r.kind, err)
	}
	return r.LoadModel(m)
}

// LoadModel installs an in-memory model directly, bypassing storage,
// and compiles the execution plan against the device's profile,
// pre-sizing every intermediate buffer. ONNX and DL4J compile the fused
// plan (DL4J's ND4J backend compiles to the same C++ kernels; its
// deficit is the FFI boundary around them, not the execution inside);
// SavedModel compiles the unfused plan. On an int8 device profile the
// fused runtimes instead fold batch norms, calibrate, and compile the
// quantized plan (docs/QUANTIZATION.md).
func (r *Runtime) LoadModel(m *model.Model) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("embedded %s: %w", r.kind, err)
	}
	var plan *model.Plan
	switch {
	case gpu.ProfileOf(r.dev).Int8:
		if r.kind == SavedModel {
			return fmt.Errorf("embedded savedmodel: int8 execution needs a fused plan; the savedmodel runtime executes its graph unfused (use onnx or dl4j)")
		}
		folded := model.FoldBatchNorm(m)
		cal, err := folded.Calibrate(calibrationBatch(m.InputLen(), calibrationPoints), calibrationPoints)
		if err != nil {
			return fmt.Errorf("embedded %s: calibrating for int8: %w", r.kind, err)
		}
		p, err := folded.QuantizePlan(r.hints(), cal)
		if err != nil {
			return fmt.Errorf("embedded %s: compiling int8 plan: %w", r.kind, err)
		}
		plan = p
	case r.kind == SavedModel:
		p, err := m.CompileUnfused(r.hints())
		if err != nil {
			return fmt.Errorf("embedded %s: compiling plan: %w", r.kind, err)
		}
		plan = p
	default:
		p, err := m.Compile(r.hints())
		if err != nil {
			return fmt.Errorf("embedded %s: compiling plan: %w", r.kind, err)
		}
		plan = p
	}
	r.m = m
	if r.plan != nil {
		r.plan.Close()
	}
	r.plan = plan
	return nil
}

// calibrationPoints sizes the synthetic calibration batch built at
// int8 load time. 32 points keep load cheap while covering the
// activation ranges the seeded workload generators produce.
const calibrationPoints = 32

// calibrationBatch generates the deterministic synthetic calibration
// set: an xorshift stream of points in [0, 1), the range of the
// workload generator's features. Serving tools that quantize at load
// time ship a representative dataset with the model; here the workload
// distribution is known, so the runtime synthesises it.
func calibrationBatch(pointLen, n int) []float32 {
	out := make([]float32, n*pointLen)
	s := uint32(0x9E3779B9)
	for i := range out {
		s ^= s << 13
		s ^= s >> 17
		s ^= s << 5
		out[i] = float32(s>>8) / (1 << 24)
	}
	return out
}

// Close releases the runtime's compiled plan (its resident worker
// pool). It implements serving.Closer; no Score calls may be in flight.
func (r *Runtime) Close() error {
	if r.plan != nil {
		r.plan.Close()
		r.plan = nil
	}
	return nil
}

// ArenaStats reports the compiled plan's buffer-arena hit/miss counts;
// zero before a model loads. The instrument wrapper samples it into the
// tensor.arena.* metrics.
func (r *Runtime) ArenaStats() (hits, misses uint64) {
	if r.plan == nil {
		return 0, 0
	}
	return r.plan.ArenaStats()
}

// Model returns the loaded model, or nil before Load.
func (r *Runtime) Model() *model.Model { return r.m }

// InputLen implements serving.Scorer.
func (r *Runtime) InputLen() int {
	if r.m == nil {
		return 0
	}
	return r.m.InputLen()
}

// OutputSize implements serving.Scorer.
func (r *Runtime) OutputSize() int {
	if r.m == nil {
		return 0
	}
	return r.m.OutputSize
}

// Score implements serving.Scorer (the apply half of CrayfishModel).
//
//lint:lent inputs
func (r *Runtime) Score(inputs []float32, n int) ([]float32, error) {
	if r.m == nil {
		return nil, fmt.Errorf("embedded %s: no model loaded", r.kind)
	}
	if err := serving.ValidateBatch(inputs, n, r.m.InputLen()); err != nil {
		return nil, err
	}
	switch r.kind {
	case ONNX, SavedModel:
		return r.scorePlanned(inputs, n)
	case DL4J:
		return r.scoreDL4J(inputs, n)
	}
	return nil, fmt.Errorf("embedded: unknown runtime kind %q", r.kind)
}

// hints translates the runtime's device profile into execution hints.
func (r *Runtime) hints() model.ExecHints {
	p := gpu.ProfileOf(r.dev)
	return model.ExecHints{Workers: p.Workers, FastConv: p.FastKernels}
}

// scorePlanned runs the compiled plan (fused for ONNX, unfused for
// SavedModel) with device-aware kernels and explicit host↔device
// transfers. Per the Scorer contract the input batch is the plan's to
// scratch; only the output slice is allocated.
func (r *Runtime) scorePlanned(inputs []float32, n int) ([]float32, error) {
	r.dev.Transfer(r.inputBytes(len(inputs)))
	out := make([]float32, n*r.plan.OutputLen())
	if err := r.plan.Forward(inputs, n, out); err != nil {
		return nil, fmt.Errorf("embedded %s: %w", r.kind, err)
	}
	r.dev.Transfer(4 * len(out))
	return out, nil
}

// inputBytes is the host→device size of an elems-element input batch:
// float32-sized normally, int8-sized when the plan quantizes at the
// device boundary (the quantized engine streams int8 activations, the
// way TensorRT int8 deployments cut the PCIe bill 4x). Outputs come
// back dequantized, so the return transfer stays float32-sized.
func (r *Runtime) inputBytes(elems int) int {
	if r.plan.Quantized() {
		return elems
	}
	return 4 * elems
}

// scoreDL4J crosses the FFI boundary in both directions around a
// compiled-plan forward pass. The marshalling runs through pooled
// scratch (the caller's batch is copied once into the float workspace,
// never mutated), so the steady state allocates only the output slice —
// the same ≤1 alloc/op profile as the ONNX path — while the 96-round
// encode/decode keeps paying the full modelled JNI cost.
func (r *Runtime) scoreDL4J(inputs []float32, n int) ([]float32, error) {
	s := ffiPool.Get().(*ffiScratch)
	defer ffiPool.Put(s)
	width := len(inputs)
	if w := n * r.plan.OutputLen(); w > width {
		width = w // wide-output models: one buffer serves both directions
	}
	buf, scratch := s.grow(width)
	native := scratch[:len(inputs)]
	copy(native, inputs)
	if err := ffiCrossRoundsInto(native, buf[:8+4*len(native)]); err != nil {
		return nil, fmt.Errorf("embedded dl4j: input marshalling: %w", err)
	}
	r.dev.Transfer(r.inputBytes(len(native)))
	out := make([]float32, n*r.plan.OutputLen())
	if err := r.plan.Forward(native, n, out); err != nil {
		return nil, fmt.Errorf("embedded dl4j: %w", err)
	}
	r.dev.Transfer(4 * len(out))
	// Results cross back once; the output buffer is ours, so the
	// decode lands in place.
	if err := ffiCrossInto(out, buf[:8+4*len(out)]); err != nil {
		return nil, fmt.Errorf("embedded dl4j: output marshalling: %w", err)
	}
	return out, nil
}

// forwardUnfused is the shared unfused execution path: build the batch
// tensor over the caller's buffer, run the reference forward pass with
// the device's hints, and copy out the probabilities. The Scorer
// contract gives Score the input batch for the duration of the call, so
// no defensive copy is made even for models whose first operator writes
// in place (model.MutatesInput).
func forwardUnfused(m *model.Model, inputs []float32, n int, hints model.ExecHints) ([]float32, error) {
	in, err := m.BatchInput(inputs, n)
	if err != nil {
		return nil, err
	}
	t, err := m.ForwardWith(in, hints)
	if err != nil {
		return nil, err
	}
	return append([]float32(nil), t.Data()...), nil
}
