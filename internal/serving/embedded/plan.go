package embedded

import (
	"fmt"
	"sync"

	"crayfish/internal/model"
	"crayfish/internal/tensor"
)

// Engine executes a model graph. With fusion enabled and a pure
// dense/ReLU/softmax graph (the FFNN family) it fuses MatMul + bias + ReLU
// into one pass per layer and reuses scratch activations from a pool,
// eliminating per-op allocation — the graph-level optimisation that makes
// ONNX Runtime (and TensorFlow Serving's optimised kernels) fast in the
// paper. Other graphs fall back to the generic executor.
//
// An Engine is safe for concurrent use.
type Engine struct {
	m     *model.Model
	steps []denseStep // non-nil only when the graph fused
	pool  sync.Pool   // *scratch
}

// fusedPlan is the ONNX runtime's name for its compiled Engine.
type fusedPlan = Engine

// denseStep is one fused dense layer: y = relu?(x·W + b).
type denseStep struct {
	w        *tensor.Tensor
	b        *tensor.Tensor
	fuseReLU bool
	softmax  bool
	out      int
}

// scratch is a reusable set of per-layer activation buffers for one batch
// size.
type scratch struct {
	n    int
	bufs []*tensor.Tensor
}

// NewEngine compiles an execution engine for m. With fuse=false the engine
// always uses the generic unfused executor (the SavedModel runtime's
// behaviour).
func NewEngine(m *model.Model, fuse bool) *Engine {
	if !fuse {
		return &Engine{m: m}
	}
	return compileFused(m)
}

// compileFused analyses the model graph and builds the fused plan.
func compileFused(m *model.Model) *Engine {
	p := &Engine{m: m}
	var steps []denseStep
	i := 0
	for i < len(m.Layers) {
		l := m.Layers[i]
		switch l.Kind {
		case model.KindDense:
			step := denseStep{w: l.W, b: l.B, out: l.W.Dim(1)}
			// Peek: fuse a following ReLU or Softmax into the step.
			if i+1 < len(m.Layers) {
				switch m.Layers[i+1].Kind {
				case model.KindReLU:
					step.fuseReLU = true
					i++
				case model.KindSoftmax:
					step.softmax = true
					i++
				}
			}
			steps = append(steps, step)
			i++
		case model.KindFlatten:
			i++ // row-major batches are already flat
		default:
			// Not a pure dense chain; no fusion.
			return p
		}
	}
	p.steps = steps
	return p
}

// Fused reports whether the engine compiled to the fused dense path.
func (p *Engine) Fused() bool { return len(p.steps) > 0 }

// Model returns the model the engine executes.
func (p *Engine) Model() *model.Model { return p.m }

// Run scores a batch with the given execution hints.
func (p *Engine) Run(inputs []float32, n int, hints model.ExecHints) ([]float32, error) {
	return p.apply(inputs, n, hints)
}

func (p *Engine) apply(inputs []float32, n int, hints model.ExecHints) ([]float32, error) {
	if !p.Fused() {
		return forwardUnfused(p.m, inputs, n, hints)
	}
	workers := hints.Workers
	sc := p.takeScratch(n)
	defer p.pool.Put(sc)
	x, err := tensor.FromSlice(inputs, n, len(inputs)/n)
	if err != nil {
		return nil, err
	}
	for si := range p.steps {
		step := &p.steps[si]
		y := sc.bufs[si]
		if workers > 1 {
			yp, err := tensor.MatMulParallel(x, step.w, workers)
			if err != nil {
				return nil, err
			}
			copy(y.Data(), yp.Data())
		} else {
			tensor.MatMulInto(y, x, step.w)
		}
		bias := step.b.Data()
		yd := y.Data()
		if step.fuseReLU {
			for r := 0; r < n; r++ {
				row := yd[r*step.out : (r+1)*step.out]
				for j := range row {
					v := row[j] + bias[j]
					if v < 0 {
						v = 0
					}
					row[j] = v
				}
			}
		} else {
			for r := 0; r < n; r++ {
				row := yd[r*step.out : (r+1)*step.out]
				for j := range row {
					row[j] += bias[j]
				}
			}
		}
		if step.softmax {
			if _, err := tensor.Softmax(y); err != nil {
				return nil, err
			}
		}
		x = y
	}
	return append([]float32(nil), x.Data()...), nil
}

// takeScratch fetches (or builds) activation buffers for batch size n.
func (p *Engine) takeScratch(n int) *scratch {
	if v := p.pool.Get(); v != nil {
		sc := v.(*scratch)
		if sc.n == n {
			return sc
		}
	}
	sc := &scratch{n: n, bufs: make([]*tensor.Tensor, len(p.steps))}
	for i, step := range p.steps {
		sc.bufs[i] = tensor.New(n, step.out)
	}
	return sc
}

// describe summarises the engine for diagnostics.
func (p *Engine) describe() string {
	if p.Fused() {
		return fmt.Sprintf("fused dense plan (%d steps)", len(p.steps))
	}
	return "generic graph executor"
}

// ForwardUnfused is the exported unfused execution path used by runtimes
// that deliberately skip graph optimisation (TorchServe's handler path).
func ForwardUnfused(m *model.Model, inputs []float32, n int, hints model.ExecHints) ([]float32, error) {
	return forwardUnfused(m, inputs, n, hints)
}
