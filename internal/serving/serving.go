// Package serving defines the model-serving SPI from §3.2 of the paper:
// a serving tool provides load (bring a stored model into memory) and
// apply (score a batch). Embedded runtimes and external-serving clients
// both satisfy the Scorer interface, so stream processors are agnostic to
// where inference actually runs.
//
// Concurrency contract: Score must be safe for concurrent use — stream
// processors call it from mp parallel operator instances — while Load
// happens once, before any Score, so implementations need not guard
// model state against reload races. The Instrument wrapper preserves
// this contract and adds lock-free serving.score.* telemetry (see
// docs/OBSERVABILITY.md).
package serving

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Scorer scores batches of data points. Implementations must be safe for
// concurrent use: stream processors call Score from mp parallel operator
// instances.
type Scorer interface {
	// Name identifies the serving tool ("onnx", "tf-serving", ...).
	Name() string
	// Score runs inference over a batch of n data points, flattened
	// row-major into inputs, and returns n×outputSize probabilities.
	//
	// Buffer ownership: the inputs slice is lent to the scorer for the
	// duration of the call and may be used as scratch space — callers
	// must not assume its contents survive Score, and must not mutate
	// it concurrently with the call. This is what lets the embedded
	// runtimes run allocation-free instead of copying every batch. The
	// returned slice is owned by the caller.
	Score(inputs []float32, n int) ([]float32, error)
	// InputLen returns the per-point input length the model expects.
	InputLen() int
	// OutputSize returns the per-point output width.
	OutputSize() int
}

// Closer is implemented by scorers holding resources (network clients,
// compiled execution plans with resident worker pools).
type Closer interface {
	Close() error
}

// ArenaStatser is implemented by scorers whose execution reuses pooled
// tensor buffers (a compiled model.Plan). The cumulative hit/miss
// counts feed the tensor.arena.* metrics via Instrument.
type ArenaStatser interface {
	ArenaStats() (hits, misses uint64)
}

// ValidateBatch checks a (inputs, n) pair against a model's input length.
func ValidateBatch(inputs []float32, n, inputLen int) error {
	if n <= 0 {
		return fmt.Errorf("serving: non-positive batch size %d", n)
	}
	if len(inputs) != n*inputLen {
		return fmt.Errorf("serving: batch of %d points wants %d values, got %d", n, n*inputLen, len(inputs))
	}
	return nil
}

// ScoreBatch scores several independent record batches in one Scorer
// invocation — the multi-record path behind the dynamic micro-batcher
// (internal/batching). The batches are concatenated row-major into a
// single Score call, so an embedded runtime executes one plan and an
// external client pays one wire round-trip for the whole coalesced set;
// the returned predictions are split back positionally (out[i] belongs
// to batches[i]).
//
// Because every model here is row-independent (§3.2: apply maps each
// data point through the same network), scoring the concatenation is
// bit-identical to scoring each batch alone — the invariant the
// spstest batching conformance suite enforces per engine×serving pair.
//
// Buffer ownership: batches[i] is copied into a fresh concatenation
// buffer, so unlike Score the caller's slices are never used as
// scratch. The returned slices alias one predictions allocation and are
// owned by the caller.
//
//lint:lent batches
func ScoreBatch(s Scorer, batches [][]float32, counts []int) ([][]float32, error) {
	if len(batches) != len(counts) {
		return nil, fmt.Errorf("serving: %d batches with %d counts", len(batches), len(counts))
	}
	if len(batches) == 0 {
		return nil, nil
	}
	inputLen := s.InputLen()
	total := 0
	for i, b := range batches {
		if err := ValidateBatch(b, counts[i], inputLen); err != nil {
			return nil, err
		}
		total += counts[i]
	}
	concat := make([]float32, 0, total*inputLen)
	for _, b := range batches {
		concat = append(concat, b...)
	}
	preds, err := s.Score(concat, total)
	if err != nil {
		return nil, err
	}
	outSize := s.OutputSize()
	if len(preds) != total*outSize {
		return nil, fmt.Errorf("serving: batched score returned %d values for %d points of width %d", len(preds), total, outSize)
	}
	outs := make([][]float32, len(batches))
	off := 0
	for i, n := range counts {
		end := off + n*outSize
		outs[i] = preds[off:end:end]
		off = end
	}
	return outs, nil
}

// EncodeBatch renders a float32 batch as the compact binary wire payload
// used by the gRPC-style external servers: u32 count then raw
// little-endian values.
func EncodeBatch(inputs []float32, n int) []byte {
	out := make([]byte, 4+4*len(inputs))
	binary.LittleEndian.PutUint32(out, uint32(n))
	for i, v := range inputs {
		binary.LittleEndian.PutUint32(out[4+4*i:], math.Float32bits(v))
	}
	return out
}

// DecodeBatchHeader reads only the batch count from an EncodeBatch
// payload, without copying the values — cheap enough for telemetry.
func DecodeBatchHeader(data []byte) (n int, err error) {
	if len(data) < 4 {
		return 0, fmt.Errorf("serving: malformed batch payload of %d bytes", len(data))
	}
	n = int(binary.LittleEndian.Uint32(data))
	if n < 0 {
		return 0, fmt.Errorf("serving: negative batch count")
	}
	return n, nil
}

// DecodeBatch parses an EncodeBatch payload.
func DecodeBatch(data []byte) (inputs []float32, n int, err error) {
	if len(data) < 4 || (len(data)-4)%4 != 0 {
		return nil, 0, fmt.Errorf("serving: malformed batch payload of %d bytes", len(data))
	}
	n = int(binary.LittleEndian.Uint32(data))
	if n < 0 {
		return nil, 0, fmt.Errorf("serving: negative batch count")
	}
	vals := (len(data) - 4) / 4
	inputs = make([]float32, vals)
	for i := range inputs {
		inputs[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4+4*i:]))
	}
	return inputs, n, nil
}
