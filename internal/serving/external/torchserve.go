package external

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"crayfish/internal/grpcish"
	"crayfish/internal/model"
	"crayfish/internal/serving"
	"crayfish/internal/serving/embedded"
)

// RPC method names mirroring TorchServe's gRPC inference/management APIs.
const (
	torchPredictMethod  = "org.pytorch.serve.grpc.inference/Predictions"
	torchMetadataMethod = "org.pytorch.serve.grpc.management/DescribeModel"
)

// torchServer is the TorchServe analogue. Scaling follows the paper:
// "adjusting the number of worker processes used for inference". Each
// worker owns a model instance and a request mailbox; a dispatcher feeds
// workers round-robin. Every request runs through a Python-handler
// analogue: the tensor payload is re-encoded into a dynamic representation
// (JSON) on the way in and out of the handler, which is the real cost the
// paper attributes to TorchServe's handler architecture.
type torchServer struct {
	cfg Config
	m   *model.Model
	rpc *grpcish.Server

	mu      sync.Mutex
	jobs    chan *torchJob
	stops   []chan struct{}
	workers int
	closed  bool
	wg      sync.WaitGroup
}

type torchJob struct {
	payload []byte
	done    chan torchResult
}

type torchResult struct {
	resp []byte
	err  error
}

func startTorchServe(cfg Config, m *model.Model) (Server, error) {
	s := &torchServer{cfg: cfg, m: m, jobs: make(chan *torchJob, 1024)}
	if err := s.SetWorkers(cfg.Workers); err != nil {
		return nil, err
	}
	s.rpc = grpcish.NewServer()
	s.rpc.Handle(torchPredictMethod, s.predict)
	s.rpc.Handle(torchMetadataMethod, s.metadata)
	s.rpc.Handle(torchScaleMethod, s.handleScale)
	if err := s.rpc.Serve(cfg.Addr); err != nil {
		s.stopWorkersLocked()
		return nil, fmt.Errorf("torchserve: %w", err)
	}
	return s, nil
}

func (s *torchServer) Kind() Kind   { return TorchServe }
func (s *torchServer) Addr() string { return s.rpc.Addr() }

// SetWorkers rescales the worker-process pool.
func (s *torchServer) SetWorkers(n int) error {
	if n <= 0 {
		return fmt.Errorf("torchserve: worker count must be positive, got %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("torchserve: server closed")
	}
	for len(s.stops) < n {
		stop := make(chan struct{})
		s.stops = append(s.stops, stop)
		s.wg.Add(1)
		go s.worker(stop)
	}
	for len(s.stops) > n {
		close(s.stops[len(s.stops)-1])
		s.stops = s.stops[:len(s.stops)-1]
	}
	s.workers = n
	return nil
}

func (s *torchServer) stopWorkersLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for _, stop := range s.stops {
		close(stop)
	}
	s.stops = nil
}

func (s *torchServer) Close() error {
	err := s.rpc.Close()
	s.stopWorkersLocked()
	s.wg.Wait()
	return err
}

// worker is one TorchServe worker process: it owns the handler and model.
func (s *torchServer) worker(stop chan struct{}) {
	defer s.wg.Done()
	for {
		select {
		case <-stop:
			return
		case job := <-s.jobs:
			resp, err := s.handle(job.payload)
			job.done <- torchResult{resp: resp, err: err}
		}
	}
}

// handlerRequest is the dynamic representation the Python-handler analogue
// marshals tensors through.
type handlerRequest struct {
	Instances [][]float64 `json:"instances"`
}

type handlerResponse struct {
	Predictions [][]float64 `json:"predictions"`
}

// handle implements the worker-side handler path: binary -> dynamic ->
// unfused forward -> dynamic -> binary.
func (s *torchServer) handle(payload []byte) ([]byte, error) {
	inputs, n, err := serving.DecodeBatch(payload)
	if err != nil {
		return nil, fmt.Errorf("torchserve: %w", err)
	}
	if err := serving.ValidateBatch(inputs, n, s.m.InputLen()); err != nil {
		return nil, fmt.Errorf("torchserve: %w", err)
	}
	// preprocess(): the handler receives request data as dynamic nested
	// lists, exactly as a TorchServe Python handler does.
	il := s.m.InputLen()
	hreq := handlerRequest{Instances: make([][]float64, n)}
	for i := 0; i < n; i++ {
		row := make([]float64, il)
		for j := 0; j < il; j++ {
			row[j] = float64(inputs[i*il+j])
		}
		hreq.Instances[i] = row
	}
	dyn, err := json.Marshal(hreq)
	if err != nil {
		return nil, fmt.Errorf("torchserve handler: %w", err)
	}
	var parsed handlerRequest
	if err := json.Unmarshal(dyn, &parsed); err != nil {
		return nil, fmt.Errorf("torchserve handler: %w", err)
	}
	flat := make([]float32, 0, n*il)
	for _, row := range parsed.Instances {
		for _, v := range row {
			flat = append(flat, float32(v))
		}
	}

	// inference(): native PyTorch model, eager (unfused) execution.
	s.cfg.Device.Transfer(4 * len(flat))
	out, err := embedded.ForwardUnfused(s.m, flat, n, model.ExecHints{Workers: s.cfg.Device.Workers(), FastConv: s.cfg.Device.FastKernels()})
	if err != nil {
		return nil, fmt.Errorf("torchserve: %w", err)
	}
	s.cfg.Device.Transfer(4 * len(out))

	// postprocess(): back through the dynamic representation.
	os := s.m.OutputSize
	hresp := handlerResponse{Predictions: make([][]float64, n)}
	for i := 0; i < n; i++ {
		row := make([]float64, os)
		for j := 0; j < os; j++ {
			row[j] = float64(out[i*os+j])
		}
		hresp.Predictions[i] = row
	}
	dyn, err = json.Marshal(hresp)
	if err != nil {
		return nil, fmt.Errorf("torchserve handler: %w", err)
	}
	var parsedOut handlerResponse
	if err := json.Unmarshal(dyn, &parsedOut); err != nil {
		return nil, fmt.Errorf("torchserve handler: %w", err)
	}
	final := make([]float32, 0, n*os)
	for _, row := range parsedOut.Predictions {
		for _, v := range row {
			final = append(final, float32(v))
		}
	}
	return serving.EncodeBatch(final, n), nil
}

// predict enqueues a request for a worker process and waits. The served
// latency telemetry spans the whole stay — queueing for a free worker
// plus the handler — which is what a caller of the daemon observes.
func (s *torchServer) predict(req []byte) ([]byte, error) {
	start := time.Now()
	s.cfg.Network.Apply(len(req))
	job := &torchJob{payload: req, done: make(chan torchResult, 1)}
	s.jobs <- job
	res := <-job.done
	if res.err == nil {
		s.cfg.Network.Apply(len(res.resp))
	}
	// The batch size is recoverable from the request header cheaply.
	n, _ := serving.DecodeBatchHeader(req)
	recordServed(s.cfg.Metrics, n, start, res.err)
	return res.resp, res.err
}

func (s *torchServer) metadata([]byte) ([]byte, error) {
	s.mu.Lock()
	workers := s.workers
	s.mu.Unlock()
	return json.Marshal(metadata{
		ModelName:  s.m.Name,
		InputLen:   s.m.InputLen(),
		OutputSize: s.m.OutputSize,
		Framework:  string(TorchServe),
		Workers:    workers,
	})
}

// torchClient is the gRPC client for torchServer.
type torchClient struct {
	c    *grpcish.Client
	meta metadata
}

func dialTorchServe(addr string, o ClientOptions) (ScorerClient, error) {
	c, err := grpcish.Dial(addr,
		grpcish.WithTimeout(o.timeout()),
		grpcish.WithRetry(o.Retry),
		grpcish.WithBreaker(o.Breaker))
	if err != nil {
		return nil, err
	}
	raw, err := c.Call(torchMetadataMethod, nil)
	if err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("torchserve: metadata: %w", err)
	}
	var meta metadata
	if err := json.Unmarshal(raw, &meta); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("torchserve: metadata: %w", err)
	}
	return &torchClient{c: c, meta: meta}, nil
}

func (c *torchClient) Name() string    { return string(TorchServe) }
func (c *torchClient) InputLen() int   { return c.meta.InputLen }
func (c *torchClient) OutputSize() int { return c.meta.OutputSize }
func (c *torchClient) Close() error    { return c.c.Close() }

// Score implements serving.Scorer over the network.
//
//lint:lent inputs
func (c *torchClient) Score(inputs []float32, n int) ([]float32, error) {
	if err := serving.ValidateBatch(inputs, n, c.meta.InputLen); err != nil {
		return nil, err
	}
	resp, err := c.c.Call(torchPredictMethod, serving.EncodeBatch(inputs, n))
	if err != nil {
		return nil, err
	}
	out, m, err := serving.DecodeBatch(resp)
	if err != nil {
		return nil, err
	}
	if m != n {
		return nil, fmt.Errorf("torchserve: response batch %d != request %d", m, n)
	}
	return out, nil
}
