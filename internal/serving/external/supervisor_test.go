package external

import (
	"testing"
	"time"

	"crayfish/internal/model"
	"crayfish/internal/resilience"
	"crayfish/internal/telemetry"
)

// TestSupervisorCrashRestartWithResilientClient is the end-to-end daemon
// fault drill: crash the daemon under a dialed client, watch calls fail
// typed-retryable and the breaker open, restart on the same address, and
// watch the breaker's probe close the circuit again.
func TestSupervisorCrashRestartWithResilientClient(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			m := model.NewFFNN(1)
			sup, err := NewSupervisor(Config{Kind: kind, Model: m, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer sup.Close()
			reg := telemetry.New()
			breaker := &resilience.Breaker{FailureThreshold: 2, Cooldown: time.Millisecond}
			c, err := DialClientOpts(kind, sup.Addr(), ClientOptions{
				Timeout: 2 * time.Second,
				Breaker: breaker,
				Metrics: reg,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			inputs := ffnnBatch(m, 2, 1)
			if _, err := c.Score(inputs, 2); err != nil {
				t.Fatalf("healthy score: %v", err)
			}
			if err := sup.Crash(); err != nil {
				t.Fatalf("crash: %v", err)
			}
			if sup.Running() {
				t.Fatal("supervisor still running after crash")
			}
			// Sustained failure: typed retryable errors, breaker opens.
			sawTyped := false
			for i := 0; i < 4 && breaker.State() != resilience.Open; i++ {
				if _, err := c.Score(inputs, 2); err == nil {
					t.Fatal("score against crashed daemon succeeded")
				} else if resilience.IsRetryable(err) {
					sawTyped = true
				}
			}
			if !sawTyped {
				t.Fatal("no typed retryable error during the outage")
			}
			if breaker.State() != resilience.Open {
				t.Fatalf("breaker = %v under sustained daemon failure, want open", breaker.State())
			}
			if err := sup.Restart(); err != nil {
				t.Fatalf("restart: %v", err)
			}
			if sup.Addr() != sup.Server().Addr() {
				t.Fatalf("restart moved the address: %s -> %s", sup.Addr(), sup.Server().Addr())
			}
			// After the cooldown a probe call closes the circuit. A few
			// attempts may be shed or race the restarting socket.
			deadline := time.Now().Add(10 * time.Second)
			for breaker.State() != resilience.Closed {
				if time.Now().After(deadline) {
					t.Fatalf("breaker never closed after restart (state %v)", breaker.State())
				}
				if _, err := c.Score(inputs, 2); err == nil {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			if _, err := c.Score(inputs, 2); err != nil {
				t.Fatalf("score after restart: %v", err)
			}
			if breaker.State() != resilience.Closed {
				t.Fatalf("breaker = %v after recovery, want closed", breaker.State())
			}
			crashes, restarts := sup.Lifecycle()
			if crashes != 1 || restarts != 1 {
				t.Fatalf("lifecycle = %d crashes / %d restarts", crashes, restarts)
			}
			// The shed counter family must have registered under this
			// client's name.
			found := false
			for _, name := range reg.Names() {
				if name == "resilience.shed."+string(kind) {
					found = true
				}
			}
			if !found {
				t.Fatalf("resilience metrics not bound: %v", reg.Names())
			}
		})
	}
}

// TestSupervisorCloseIsTerminal verifies Restart after Close fails and
// double-Crash / double-Restart are no-ops.
func TestSupervisorCloseIsTerminal(t *testing.T) {
	m := model.NewFFNN(1)
	sup, err := NewSupervisor(Config{Kind: TFServing, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Restart(); err != nil {
		t.Fatalf("restart while running should be a no-op: %v", err)
	}
	if err := sup.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := sup.Crash(); err != nil {
		t.Fatalf("second crash should be a no-op: %v", err)
	}
	if err := sup.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sup.Restart(); err == nil {
		t.Fatal("restart after close succeeded")
	}
}
