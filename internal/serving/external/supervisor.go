package external

import (
	"fmt"
	"strings"
	"sync"
)

// Supervisor manages a serving daemon's crash/restart lifecycle for the
// fault layer (internal/faults): Crash kills the running daemon while
// keeping its bound address, and Restart brings a fresh daemon up on
// that same address — so clients that retried through the outage
// reconnect transparently, exactly as a supervised production daemon
// would come back behind a stable endpoint.
type Supervisor struct {
	mu       sync.Mutex
	cfg      Config
	srv      Server
	addr     string
	crashes  int
	restarts int
	closed   bool
}

// NewSupervisor starts the daemon described by cfg and records the
// address it bound, pinning every later Restart to it.
func NewSupervisor(cfg Config) (*Supervisor, error) {
	srv, err := Start(cfg)
	if err != nil {
		return nil, err
	}
	s := &Supervisor{cfg: cfg, srv: srv, addr: srv.Addr()}
	// Restarts must rebind the recorded address, not pick a fresh
	// ephemeral port.
	s.cfg.Addr = s.addr
	return s, nil
}

// Addr is the daemon's stable address, valid across crash/restart.
func (s *Supervisor) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Server returns the currently running daemon, or nil while crashed.
func (s *Supervisor) Server() Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.srv
}

// Running reports whether the daemon is currently up.
func (s *Supervisor) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.srv != nil
}

// Crash kills the running daemon, keeping its address for Restart.
// Crashing while already down is a no-op.
func (s *Supervisor) Crash() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.srv == nil {
		return nil
	}
	srv := s.srv
	s.srv = nil
	s.crashes++
	return srv.Close()
}

// Restart brings a fresh daemon up on the recorded address. Restarting
// while already up is a no-op.
func (s *Supervisor) Restart() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("external: supervisor closed")
	}
	if s.srv != nil {
		return nil
	}
	srv, err := Start(s.cfg)
	if err != nil {
		// The crashed daemon's port can linger in the kernel briefly;
		// surface that distinctly so callers can retry.
		if strings.Contains(err.Error(), "address already in use") {
			return fmt.Errorf("external: restart on %s raced the old socket: %w", s.addr, err)
		}
		return err
	}
	s.srv = srv
	s.restarts++
	return nil
}

// Lifecycle returns how many crashes and restarts the supervisor has
// executed.
func (s *Supervisor) Lifecycle() (crashes, restarts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashes, s.restarts
}

// Close stops the daemon (if up) and retires the supervisor.
func (s *Supervisor) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.srv == nil {
		return nil
	}
	srv := s.srv
	s.srv = nil
	return srv.Close()
}
