package external

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"

	"crayfish/internal/model"
	"crayfish/internal/modelfmt"
	"crayfish/internal/serving"
	"crayfish/internal/serving/embedded"
)

// The model-lifecycle surface the paper highlights as external serving's
// advantage (§2.1, §7): versioned deployment and pool scaling without
// touching the stream processor.

// Management RPC method names.
const (
	tfReloadMethod         = "tensorflow.serving.ModelService/HandleReloadConfigRequest"
	tfPredictVersionMethod = "tensorflow.serving.PredictionService/PredictVersion"
	torchScaleMethod       = "org.pytorch.serve.grpc.management/ScaleWorker"
)

// Versioner is the client-side model-versioning surface (TF-Serving).
type Versioner interface {
	// LoadVersion deploys stored model bytes (SavedModel format) as the
	// given version; the highest version becomes the default.
	LoadVersion(version int, modelBytes []byte) error
	// ScoreVersion scores against an explicit model version.
	ScoreVersion(version int, inputs []float32, n int) ([]float32, error)
	// Versions lists the deployed versions.
	Versions() ([]int, error)
}

// WorkerScaler is the client-side pool-scaling surface (TorchServe's
// management API).
type WorkerScaler interface {
	// ScaleWorkers resizes the server's inference pool remotely.
	ScaleWorkers(n int) error
}

// ---- TF-Serving server side ----

// tfVersion is one deployed model version.
type tfVersion struct {
	m      *model.Model
	engine *embedded.Engine
}

// initVersions installs version 1 from the boot model.
func (s *tfServer) initVersions(m *model.Model, engine *embedded.Engine) {
	s.versions = map[int]*tfVersion{1: {m: m, engine: engine}}
	s.latest = 1
}

// loadVersion deploys a model as a version.
func (s *tfServer) loadVersion(version int, m *model.Model) error {
	if version <= 0 {
		return fmt.Errorf("tf-serving: version must be positive, got %d", version)
	}
	if m.InputLen() != s.m.InputLen() || m.OutputSize != s.m.OutputSize {
		return fmt.Errorf("tf-serving: version %d shape %d→%d differs from served %d→%d",
			version, m.InputLen(), m.OutputSize, s.m.InputLen(), s.m.OutputSize)
	}
	served := m
	if s.cfg.Device.FastKernels() {
		served = model.FoldBatchNorm(m)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.versions[version] = &tfVersion{m: m, engine: embedded.NewEngine(served, true)}
	if version > s.latest {
		s.latest = version
	}
	return nil
}

// version resolves a deployed version; 0 means latest.
func (s *tfServer) version(v int) (*tfVersion, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v == 0 {
		v = s.latest
	}
	tv, ok := s.versions[v]
	if !ok {
		return nil, fmt.Errorf("tf-serving: version %d not deployed", v)
	}
	return tv, nil
}

// handleReload is the ReloadConfig RPC: u32 version + SavedModel bytes.
// An empty request deploys nothing and answers with the version list.
func (s *tfServer) handleReload(req []byte) ([]byte, error) {
	if len(req) > 0 {
		if len(req) < 5 {
			return nil, fmt.Errorf("tf-serving: malformed reload request")
		}
		version := int(binary.LittleEndian.Uint32(req))
		m, err := modelfmt.Decode(modelfmt.SavedModel, req[4:])
		if err != nil {
			return nil, fmt.Errorf("tf-serving: reload: %w", err)
		}
		if err := s.loadVersion(version, m); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	versions := make([]int, 0, len(s.versions))
	for v := range s.versions {
		versions = append(versions, v)
	}
	s.mu.Unlock()
	sort.Ints(versions)
	return json.Marshal(versions)
}

// handlePredictVersion scores against an explicit version: u32 version +
// batch payload.
func (s *tfServer) handlePredictVersion(req []byte) ([]byte, error) {
	if len(req) < 4 {
		return nil, fmt.Errorf("tf-serving: malformed versioned predict")
	}
	version := int(binary.LittleEndian.Uint32(req))
	tv, err := s.version(version)
	if err != nil {
		return nil, err
	}
	return s.predictWith(tv, req[4:])
}

// ---- TF-Serving client side ----

// LoadVersion implements Versioner.
func (c *tfClient) LoadVersion(version int, modelBytes []byte) error {
	req := make([]byte, 4+len(modelBytes))
	binary.LittleEndian.PutUint32(req, uint32(version))
	copy(req[4:], modelBytes)
	_, err := c.c.Call(tfReloadMethod, req)
	return err
}

// ScoreVersion implements Versioner.
func (c *tfClient) ScoreVersion(version int, inputs []float32, n int) ([]float32, error) {
	if err := serving.ValidateBatch(inputs, n, c.meta.InputLen); err != nil {
		return nil, err
	}
	batch := serving.EncodeBatch(inputs, n)
	req := make([]byte, 4+len(batch))
	binary.LittleEndian.PutUint32(req, uint32(version))
	copy(req[4:], batch)
	resp, err := c.c.Call(tfPredictVersionMethod, req)
	if err != nil {
		return nil, err
	}
	out, m, err := serving.DecodeBatch(resp)
	if err != nil {
		return nil, err
	}
	if m != n {
		return nil, fmt.Errorf("tf-serving: response batch %d != request %d", m, n)
	}
	return out, nil
}

// Versions implements Versioner by deploying nothing: it calls the reload
// endpoint with a zero-length config, which the server answers with the
// current version list.
func (c *tfClient) Versions() ([]int, error) {
	resp, err := c.c.Call(tfReloadMethod, nil)
	if err != nil {
		return nil, err
	}
	var versions []int
	if err := json.Unmarshal(resp, &versions); err != nil {
		return nil, fmt.Errorf("tf-serving: versions: %w", err)
	}
	return versions, nil
}

// ---- TorchServe management ----

// handleScale is TorchServe's ScaleWorker management RPC: u32 worker
// count.
func (s *torchServer) handleScale(req []byte) ([]byte, error) {
	if len(req) != 4 {
		return nil, fmt.Errorf("torchserve: malformed scale request")
	}
	n := int(binary.LittleEndian.Uint32(req))
	if err := s.SetWorkers(n); err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf(`{"status":"workers scaled to %d"}`, n)), nil
}

// ScaleWorkers implements WorkerScaler.
func (c *torchClient) ScaleWorkers(n int) error {
	req := make([]byte, 4)
	binary.LittleEndian.PutUint32(req, uint32(n))
	_, err := c.c.Call(torchScaleMethod, req)
	return err
}
