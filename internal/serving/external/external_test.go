package external

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"crayfish/internal/model"
	"crayfish/internal/modelfmt"
)

// startFramework launches a daemon of the given kind serving the model
// loaded through its native storage format, plus a connected client.
func startFramework(t *testing.T, kind Kind, m *model.Model, workers int) (Server, ScorerClient) {
	t.Helper()
	f, err := Format(kind)
	if err != nil {
		t.Fatal(err)
	}
	data, err := modelfmt.Encode(f, m)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Start(Config{Kind: kind, ModelBytes: data, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := DialClient(kind, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func ffnnBatch(m *model.Model, n int, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float32, n*m.InputLen())
	for i := range out {
		out[i] = r.Float32()
	}
	return out
}

func TestAllFrameworksScoreCorrectly(t *testing.T) {
	m := model.NewFFNN(1)
	inputs := ffnnBatch(m, 3, 5)
	in, err := m.BatchInput(append([]float32(nil), inputs...), 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range Kinds() {
		srv, c := startFramework(t, kind, m, 2)
		if srv.Kind() != kind {
			t.Fatalf("Kind = %s", srv.Kind())
		}
		if c.InputLen() != 784 || c.OutputSize() != 10 {
			t.Fatalf("%s: metadata %d/%d", kind, c.InputLen(), c.OutputSize())
		}
		got, err := c.Score(inputs, 3)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(got) != 30 {
			t.Fatalf("%s: output %d", kind, len(got))
		}
		for i := range got {
			d := float64(got[i]) - float64(ref.Data()[i])
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("%s: output %d differs: %v vs %v", kind, i, got[i], ref.Data()[i])
			}
		}
	}
}

func TestConcurrentClientsAllFrameworks(t *testing.T) {
	m := model.NewFFNN(1)
	for _, kind := range Kinds() {
		_, c := startFramework(t, kind, m, 4)
		inputs := ffnnBatch(m, 1, 9)
		want, err := c.Score(inputs, 1)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 15; i++ {
					got, err := c.Score(inputs, 1)
					if err != nil {
						errs <- err
						return
					}
					for j := range got {
						if got[j] != want[j] {
							errs <- err
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestScoreValidationPropagates(t *testing.T) {
	m := model.NewFFNN(1)
	for _, kind := range Kinds() {
		_, c := startFramework(t, kind, m, 1)
		if _, err := c.Score(make([]float32, 3), 1); err == nil {
			t.Fatalf("%s: short batch accepted", kind)
		}
		if _, err := c.Score(nil, 0); err == nil {
			t.Fatalf("%s: empty batch accepted", kind)
		}
	}
}

func TestSetWorkersRescales(t *testing.T) {
	m := model.NewFFNN(1)
	for _, kind := range Kinds() {
		srv, c := startFramework(t, kind, m, 1)
		if err := srv.SetWorkers(4); err != nil {
			t.Fatalf("%s: grow: %v", kind, err)
		}
		if err := srv.SetWorkers(2); err != nil {
			t.Fatalf("%s: shrink: %v", kind, err)
		}
		if err := srv.SetWorkers(0); err == nil {
			t.Fatalf("%s: zero workers accepted", kind)
		}
		// Still serving after the rescale.
		if _, err := c.Score(ffnnBatch(m, 1, 2), 1); err != nil {
			t.Fatalf("%s: score after rescale: %v", kind, err)
		}
	}
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{Kind: "seldon"}); err == nil {
		t.Fatal("unknown framework accepted")
	}
	if _, err := Start(Config{Kind: TFServing, ModelBytes: []byte("junk")}); err == nil {
		t.Fatal("junk model bytes accepted")
	}
	if _, err := Format("seldon"); err == nil {
		t.Fatal("unknown framework format accepted")
	}
	if _, err := DialClient("seldon", "127.0.0.1:1"); err == nil {
		t.Fatal("unknown client kind accepted")
	}
	bad := &model.Model{Name: "bad", InputShape: []int{4}}
	if _, err := Start(Config{Kind: TFServing, Model: bad}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestStartRejectsWrongFormatBytes(t *testing.T) {
	m := model.NewFFNN(1)
	onnxBytes, err := modelfmt.Encode(modelfmt.ONNX, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Start(Config{Kind: TFServing, ModelBytes: onnxBytes}); err == nil {
		t.Fatal("tf-serving accepted ONNX bytes")
	}
}

func TestDialClientFailsOnDeadServer(t *testing.T) {
	for _, kind := range Kinds() {
		if _, err := DialClient(kind, "127.0.0.1:1"); err == nil {
			t.Fatalf("%s: dial to dead port succeeded", kind)
		}
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	m := model.NewFFNN(1)
	for _, kind := range Kinds() {
		srv, _ := startFramework(t, kind, m, 1)
		if err := srv.Close(); err != nil {
			t.Fatalf("%s: first close: %v", kind, err)
		}
		srv.Close() // second close must not panic
	}
}

func TestRelativeSpeedTFServingBeatsTorchServe(t *testing.T) {
	// Table 4 shape within external tools: TF-Serving sustains ≈3× the
	// rate of TorchServe for FFNN. Assert TF-Serving's per-call cost is
	// strictly lower.
	if testing.Short() || raceEnabled {
		t.Skip("timing-sensitive")
	}
	m := model.NewFFNN(1)
	inputs := ffnnBatch(m, 1, 1)
	cost := map[Kind]time.Duration{}
	for _, kind := range []Kind{TFServing, TorchServe} {
		_, c := startFramework(t, kind, m, 1)
		for i := 0; i < 30; i++ {
			if _, err := c.Score(inputs, 1); err != nil {
				t.Fatal(err)
			}
		}
		const iters = 300
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := c.Score(inputs, 1); err != nil {
				t.Fatal(err)
			}
		}
		cost[kind] = time.Since(start) / iters
	}
	if cost[TFServing] >= cost[TorchServe] {
		t.Errorf("tf-serving (%v) not faster than torchserve (%v)", cost[TFServing], cost[TorchServe])
	}
}

func TestFrameworkFormats(t *testing.T) {
	cases := map[Kind]modelfmt.Format{
		TFServing:  modelfmt.SavedModel,
		TorchServe: modelfmt.Torch,
		RayServe:   modelfmt.Torch,
	}
	for kind, want := range cases {
		got, err := Format(kind)
		if err != nil || got != want {
			t.Fatalf("%s: format %s, %v", kind, got, err)
		}
	}
}

func TestClientNames(t *testing.T) {
	m := model.NewFFNN(1)
	for _, kind := range Kinds() {
		_, c := startFramework(t, kind, m, 1)
		if !strings.Contains(string(kind), c.Name()) && c.Name() != string(kind) {
			t.Fatalf("client name %q for kind %q", c.Name(), kind)
		}
	}
}
