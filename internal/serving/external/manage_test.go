package external

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"crayfish/internal/model"
	"crayfish/internal/modelfmt"
)

func TestTFServingModelVersioning(t *testing.T) {
	v1 := model.NewFFNN(1)
	_, c := startFramework(t, TFServing, v1, 1)
	versioner, ok := c.(Versioner)
	if !ok {
		t.Fatal("tf-serving client does not expose versioning")
	}
	versions, err := versioner.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 1 || versions[0] != 1 {
		t.Fatalf("boot versions %v", versions)
	}

	inputs := ffnnBatch(v1, 1, 3)
	v1Out, err := c.Score(inputs, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Deploy version 2: same shape, different weights.
	v2 := model.NewFFNN(99)
	v2Bytes, err := modelfmt.Encode(modelfmt.SavedModel, v2)
	if err != nil {
		t.Fatal(err)
	}
	if err := versioner.LoadVersion(2, v2Bytes); err != nil {
		t.Fatal(err)
	}
	versions, err = versioner.Versions()
	if err != nil || len(versions) != 2 {
		t.Fatalf("versions after deploy: %v, %v", versions, err)
	}

	// The default predict now serves v2; v1 stays addressable.
	v2Out, err := c.Score(inputs, 1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range v1Out {
		if v1Out[i] != v2Out[i] {
			same = false
		}
	}
	if same {
		t.Fatal("default predict did not switch to version 2")
	}
	pinned, err := versioner.ScoreVersion(1, inputs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pinned {
		if pinned[i] != v1Out[i] {
			t.Fatal("pinned version 1 scores differently than before the deploy")
		}
	}
	if _, err := versioner.ScoreVersion(7, inputs, 1); err == nil {
		t.Fatal("undeployed version accepted")
	}
}

func TestTFServingVersioningValidation(t *testing.T) {
	m := model.NewFFNN(1)
	_, c := startFramework(t, TFServing, m, 1)
	versioner := c.(Versioner)
	// Wrong-shape model rejected.
	other := model.NewFFNNSized(1, 16, []int{4}, 2)
	bytes, err := modelfmt.Encode(modelfmt.SavedModel, other)
	if err != nil {
		t.Fatal(err)
	}
	if err := versioner.LoadVersion(2, bytes); err == nil {
		t.Fatal("shape-mismatched version accepted")
	}
	// Garbage bytes rejected.
	if err := versioner.LoadVersion(2, []byte("junk-model")); err == nil {
		t.Fatal("junk version accepted")
	}
	// Version 0 rejected server-side.
	good, err := modelfmt.Encode(modelfmt.SavedModel, model.NewFFNN(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := versioner.LoadVersion(0, good); err == nil {
		t.Fatal("version 0 accepted")
	}
}

func TestTorchServeRemoteScaling(t *testing.T) {
	m := model.NewFFNN(1)
	srv, c := startFramework(t, TorchServe, m, 1)
	scaler, ok := c.(WorkerScaler)
	if !ok {
		t.Fatal("torchserve client does not expose worker scaling")
	}
	if err := scaler.ScaleWorkers(4); err != nil {
		t.Fatal(err)
	}
	// Metadata reflects the new pool size.
	raw, err := dialTorchServe(srv.Addr(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if got := raw.(*torchClient).meta.Workers; got != 4 {
		t.Fatalf("metadata workers = %d after remote scale", got)
	}
	// Serving continues.
	if _, err := c.Score(ffnnBatch(m, 1, 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := scaler.ScaleWorkers(0); err == nil {
		t.Fatal("zero workers accepted over the wire")
	}
}

func TestVersionListIsJSON(t *testing.T) {
	// The reload endpoint's version list must be plain JSON so other
	// tooling can consume it.
	m := model.NewFFNN(1)
	srv, _ := startFramework(t, TFServing, m, 1)
	resp, err := srv.(*tfServer).handleReload(nil)
	if err != nil {
		t.Fatal(err)
	}
	var versions []int
	if err := json.Unmarshal(resp, &versions); err != nil {
		t.Fatal(err)
	}
	if len(versions) != 1 {
		t.Fatalf("versions %v", versions)
	}
}

func TestRayServeRemoteScaling(t *testing.T) {
	m := model.NewFFNN(1)
	srv, c := startFramework(t, RayServe, m, 1)
	scaler, ok := c.(WorkerScaler)
	if !ok {
		t.Fatal("ray-serve client does not expose worker scaling")
	}
	if err := scaler.ScaleWorkers(3); err != nil {
		t.Fatal(err)
	}
	if got := srv.(*rayServer).Replicas(); got != 3 {
		t.Fatalf("replicas = %d after remote scale", got)
	}
	if err := scaler.ScaleWorkers(0); err == nil {
		t.Fatal("zero replicas accepted over the wire")
	}
	if _, err := c.Score(ffnnBatch(m, 1, 1), 1); err != nil {
		t.Fatal(err)
	}
}

func TestRayServeAutoscaler(t *testing.T) {
	// Under queued load the autoscaler grows the pool toward the cap;
	// when the queue drains it shrinks back to the floor.
	m := model.NewFFNN(1)
	stored, err := modelfmt.Encode(modelfmt.Torch, m)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Start(Config{Kind: RayServe, ModelBytes: stored, Workers: 1, AutoscaleMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialClient(RayServe, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	inputs := ffnnBatch(m, 4, 2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Score(inputs, 4)
				}
			}
		}()
	}
	peak := 0
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if n := srv.(*rayServer).Replicas(); n > peak {
			peak = n
		}
		if peak >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if peak < 2 {
		t.Fatalf("autoscaler never grew past %d replicas", peak)
	}
	// Idle: the pool shrinks back toward the floor.
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if srv.(*rayServer).Replicas() == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("autoscaler did not shrink back (replicas=%d)", srv.(*rayServer).Replicas())
}
