package external

import (
	"testing"

	"crayfish/internal/model"
	"crayfish/internal/modelfmt"
	"crayfish/internal/netsim"
	"crayfish/internal/serving"
)

// BenchmarkScoreBatchedVsUnbatched pins the PR-level micro-batching
// claim on the external serving path: coalescing 16 single-record
// scorings into one ScoreBatch call pays the modelled LAN round trip
// once instead of 16 times. Both sub-benchmarks score the same 16
// records per iteration, so records/sec scales as the inverse ns/op
// ratio; scripts/bench.sh derives batched_vs_unbatched_ratio from the
// pair and docs/PERFORMANCE.md requires it to stay ≥ 2.
func BenchmarkScoreBatchedVsUnbatched(b *testing.B) {
	m := model.NewFFNN(1)
	data, err := modelfmt.Encode(modelfmt.SavedModel, m)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := Start(Config{Kind: TFServing, ModelBytes: data, Workers: 2, Network: netsim.LAN})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := DialClient(TFServing, srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	const coalesce = 16
	rows := ffnnBatch(m, coalesce, 11)
	width := m.InputLen()

	b.Run("unbatched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < coalesce; j++ {
				if _, err := c.Score(rows[j*width:(j+1)*width], 1); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		batches := make([][]float32, coalesce)
		counts := make([]int, coalesce)
		for j := range batches {
			batches[j] = rows[j*width : (j+1)*width]
			counts[j] = 1
		}
		for i := 0; i < b.N; i++ {
			if _, err := serving.ScoreBatch(c, batches, counts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
