package external

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"crayfish/internal/grpcish"
	"crayfish/internal/model"
	"crayfish/internal/serving"
	"crayfish/internal/serving/embedded"
)

// RPC method names mirroring TensorFlow Serving's gRPC surface.
const (
	tfPredictMethod  = "tensorflow.serving.PredictionService/Predict"
	tfMetadataMethod = "tensorflow.serving.PredictionService/GetModelMetadata"
)

// tfServer is the TensorFlow-Serving analogue: a compact binary Predict
// RPC fed into a bounded inference thread pool running the fused engine.
// Scaling follows the paper: "setting the maximum number of threads that
// can be used to process events concurrently".
type tfServer struct {
	cfg    Config
	m      *model.Model
	engine *embedded.Engine
	rpc    *grpcish.Server

	mu       sync.Mutex
	permits  chan struct{}
	versions map[int]*tfVersion
	latest   int
}

func startTFServing(cfg Config, m *model.Model) (Server, error) {
	served := m
	if cfg.Device.FastKernels() {
		// The accelerated deployment applies load-time graph
		// optimisation: batch norms fold into their convolutions,
		// as TF-Serving's GPU graph rewrites do.
		served = model.FoldBatchNorm(m)
	}
	s := &tfServer{cfg: cfg, m: m, engine: embedded.NewEngine(served, true)}
	s.initVersions(m, s.engine)
	s.permits = make(chan struct{}, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		s.permits <- struct{}{}
	}
	s.rpc = grpcish.NewServer()
	s.rpc.Handle(tfPredictMethod, s.predict)
	s.rpc.Handle(tfMetadataMethod, s.metadata)
	s.rpc.Handle(tfReloadMethod, s.handleReload)
	s.rpc.Handle(tfPredictVersionMethod, s.handlePredictVersion)
	if err := s.rpc.Serve(cfg.Addr); err != nil {
		return nil, fmt.Errorf("tf-serving: %w", err)
	}
	return s, nil
}

func (s *tfServer) Kind() Kind   { return TFServing }
func (s *tfServer) Addr() string { return s.rpc.Addr() }

func (s *tfServer) SetWorkers(n int) error {
	if n <= 0 {
		return fmt.Errorf("tf-serving: worker count must be positive, got %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	permits := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		permits <- struct{}{} //lint:allow lockdiscipline fresh buffered channel with capacity n; these n sends can never block
	}
	s.permits = permits
	s.cfg.Workers = n
	return nil
}

func (s *tfServer) Close() error { return s.rpc.Close() }

func (s *tfServer) pool() chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.permits
}

// predict decodes the compact binary batch, scores it under a thread
// permit against the latest deployed version, and returns raw float32
// probabilities.
func (s *tfServer) predict(req []byte) ([]byte, error) {
	tv, err := s.version(0)
	if err != nil {
		return nil, err
	}
	return s.predictWith(tv, req)
}

// predictWith scores a batch payload against one deployed version.
func (s *tfServer) predictWith(tv *tfVersion, req []byte) (resp []byte, err error) {
	start := time.Now()
	n := 0
	defer func() { recordServed(s.cfg.Metrics, n, start, err) }()
	s.cfg.Network.Apply(len(req))
	inputs, n, err := serving.DecodeBatch(req)
	if err != nil {
		return nil, fmt.Errorf("tf-serving: %w", err)
	}
	if err := serving.ValidateBatch(inputs, n, tv.m.InputLen()); err != nil {
		return nil, fmt.Errorf("tf-serving: %w", err)
	}
	pool := s.pool()
	<-pool
	s.cfg.Device.Transfer(4 * len(inputs))
	out, err := tv.engine.Run(inputs, n, model.ExecHints{Workers: s.cfg.Device.Workers(), FastConv: s.cfg.Device.FastKernels()})
	if err == nil {
		s.cfg.Device.Transfer(4 * len(out))
	}
	pool <- struct{}{}
	if err != nil {
		return nil, fmt.Errorf("tf-serving: %w", err)
	}
	resp = serving.EncodeBatch(out, n)
	s.cfg.Network.Apply(len(resp))
	return resp, nil
}

func (s *tfServer) metadata([]byte) ([]byte, error) {
	s.mu.Lock()
	workers := s.cfg.Workers
	s.mu.Unlock()
	return json.Marshal(metadata{
		ModelName:  s.m.Name,
		InputLen:   s.m.InputLen(),
		OutputSize: s.m.OutputSize,
		Framework:  string(TFServing),
		Workers:    workers,
	})
}

// tfClient is the gRPC client for tfServer.
type tfClient struct {
	c    *grpcish.Client
	meta metadata
}

func dialTFServing(addr string, o ClientOptions) (ScorerClient, error) {
	c, err := grpcish.Dial(addr,
		grpcish.WithTimeout(o.timeout()),
		grpcish.WithRetry(o.Retry),
		grpcish.WithBreaker(o.Breaker))
	if err != nil {
		return nil, err
	}
	raw, err := c.Call(tfMetadataMethod, nil)
	if err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("tf-serving: metadata: %w", err)
	}
	var meta metadata
	if err := json.Unmarshal(raw, &meta); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("tf-serving: metadata: %w", err)
	}
	return &tfClient{c: c, meta: meta}, nil
}

func (c *tfClient) Name() string    { return string(TFServing) }
func (c *tfClient) InputLen() int   { return c.meta.InputLen }
func (c *tfClient) OutputSize() int { return c.meta.OutputSize }
func (c *tfClient) Close() error    { return c.c.Close() }

// Score implements serving.Scorer over the network. Calls are blocking, as
// all external calls in the paper's experiments are (§4.3).
//
//lint:lent inputs
func (c *tfClient) Score(inputs []float32, n int) ([]float32, error) {
	if err := serving.ValidateBatch(inputs, n, c.meta.InputLen); err != nil {
		return nil, err
	}
	resp, err := c.c.Call(tfPredictMethod, serving.EncodeBatch(inputs, n))
	if err != nil {
		return nil, err
	}
	out, m, err := serving.DecodeBatch(resp)
	if err != nil {
		return nil, err
	}
	if m != n {
		return nil, fmt.Errorf("tf-serving: response batch %d != request %d", m, n)
	}
	return out, nil
}
