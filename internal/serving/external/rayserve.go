package external

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"crayfish/internal/model"
	"crayfish/internal/resilience"
	"crayfish/internal/serving"
	"crayfish/internal/serving/embedded"
)

// rayServer is the Ray Serve analogue: an HTTP ingress with a single
// proxy per node in front of a pool of replica workers (§3.4.4,
// Figure 4). The proxy is deliberately a single goroutine that performs
// request decoding, replica dispatch, and response encoding serially —
// the design choice the paper identifies as Ray Serve's vertical-
// scalability bottleneck. Replicas run the model directly: Ray is
// Python-based, so no interoperability marshalling applies.
type rayServer struct {
	cfg  Config
	m    *model.Model
	http *http.Server
	ln   net.Listener

	proxyCh chan *rayJob

	mu       sync.Mutex
	replicas []chan struct{} // per-replica stop channels
	workCh   chan *rayJob
	closed   bool
	wg       sync.WaitGroup
}

type rayJob struct {
	inputs []float32
	n      int
	done   chan rayResult
}

type rayResult struct {
	out []float32
	err error
}

// rayRequest and rayResponse are the HTTP JSON bodies.
type rayRequest struct {
	Inputs []float32 `json:"inputs"`
	N      int       `json:"n"`
}

type rayResponse struct {
	Predictions []float32 `json:"predictions"`
	Error       string    `json:"error,omitempty"`
}

func startRayServe(cfg Config, m *model.Model) (Server, error) {
	s := &rayServer{
		cfg:     cfg,
		m:       m,
		proxyCh: make(chan *rayJob, 1024),
		workCh:  make(chan *rayJob, 1024),
	}
	if err := s.SetWorkers(cfg.Workers); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("ray-serve: %w", err)
	}
	s.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/-/routes", s.handleMetadata)
	mux.HandleFunc("/-/scale", s.handleScale)
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		s.http.Serve(ln)
	}()
	go s.proxyLoop()
	if cfg.AutoscaleMax > cfg.Workers {
		s.wg.Add(1)
		go s.autoscaler()
	}
	return s, nil
}

// handleScale is the management endpoint: POST /-/scale?replicas=N
// resizes the replica pool remotely.
func (s *rayServer) handleScale(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	n, err := strconv.Atoi(r.URL.Query().Get("replicas"))
	if err != nil {
		writeRayError(w, http.StatusBadRequest, "ray-serve: bad replicas parameter")
		return
	}
	if err := s.SetWorkers(n); err != nil {
		writeRayError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"replicas scaled to %d"}`, n)
}

// autoscaler is Ray Serve's queue-driven replica autoscaling: while
// requests back up behind the proxy, replicas grow toward AutoscaleMax;
// when the queue drains, they shrink back to the configured floor.
func (s *rayServer) autoscaler() {
	defer s.wg.Done()
	floor := s.cfg.Workers
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for range ticker.C {
		s.mu.Lock()
		closed := s.closed
		current := len(s.replicas)
		s.mu.Unlock()
		if closed {
			return
		}
		queued := len(s.workCh) + len(s.proxyCh)
		switch {
		case queued > 2*current && current < s.cfg.AutoscaleMax:
			if err := s.SetWorkers(current + 1); err != nil {
				return // lost the race with Close
			}
		case queued == 0 && current > floor:
			if err := s.SetWorkers(current - 1); err != nil {
				return
			}
		}
	}
}

// Replicas reports the current replica count (autoscaling observability).
func (s *rayServer) Replicas() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.replicas)
}

func (s *rayServer) Kind() Kind   { return RayServe }
func (s *rayServer) Addr() string { return s.ln.Addr().String() }

// SetWorkers rescales the replica pool.
func (s *rayServer) SetWorkers(n int) error {
	if n <= 0 {
		return fmt.Errorf("ray-serve: replica count must be positive, got %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("ray-serve: server closed")
	}
	for len(s.replicas) < n {
		stop := make(chan struct{})
		s.replicas = append(s.replicas, stop)
		s.wg.Add(1)
		go s.replica(stop)
	}
	for len(s.replicas) > n {
		close(s.replicas[len(s.replicas)-1])
		s.replicas = s.replicas[:len(s.replicas)-1]
	}
	return nil
}

func (s *rayServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, stop := range s.replicas {
		close(stop)
	}
	s.replicas = nil
	s.mu.Unlock()
	close(s.proxyCh)
	err := s.http.Close()
	s.wg.Wait()
	return err
}

// handlePredict reads the body and hands the raw work to the single
// proxy; the HTTP goroutine blocks until the proxy responds.
func (s *rayServer) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	served := func(n int, err error) { recordServed(s.cfg.Metrics, n, start, err) }
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.cfg.Network.Apply(len(body))
	// The proxy performs deserialisation, routing, and serialisation
	// for every request, single-threaded.
	job := &rayJob{done: make(chan rayResult, 1)}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		http.Error(w, "ray-serve: shutting down", http.StatusServiceUnavailable)
		return
	}
	var req rayRequest
	if err := json.Unmarshal(body, &req); err != nil {
		served(0, err)
		writeRayError(w, http.StatusBadRequest, fmt.Sprintf("ray-serve: bad request: %v", err))
		return
	}
	job.inputs, job.n = req.Inputs, req.N
	select {
	case s.proxyCh <- job:
	default:
		served(req.N, fmt.Errorf("ray-serve: proxy queue full"))
		writeRayError(w, http.StatusServiceUnavailable, "ray-serve: proxy queue full")
		return
	}
	res := <-job.done
	if res.err != nil {
		served(req.N, res.err)
		writeRayError(w, http.StatusInternalServerError, res.err.Error())
		return
	}
	resp, err := json.Marshal(rayResponse{Predictions: res.out})
	if err != nil {
		served(req.N, err)
		writeRayError(w, http.StatusInternalServerError, err.Error())
		return
	}
	served(req.N, nil)
	s.cfg.Network.Apply(len(resp))
	w.Header().Set("Content-Type", "application/json")
	w.Write(resp)
}

func writeRayError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(rayResponse{Error: msg})
}

// proxyLoop is the single HTTP proxy: one goroutine validating and routing
// every request to the replica pool.
func (s *rayServer) proxyLoop() {
	defer s.wg.Done()
	for job := range s.proxyCh {
		if err := serving.ValidateBatch(job.inputs, job.n, s.m.InputLen()); err != nil {
			job.done <- rayResult{err: fmt.Errorf("ray-serve: %w", err)}
			continue
		}
		s.workCh <- job
	}
}

// replica is one deployment replica scoring requests.
func (s *rayServer) replica(stop chan struct{}) {
	defer s.wg.Done()
	for {
		select {
		case <-stop:
			return
		case job := <-s.workCh:
			s.cfg.Device.Transfer(4 * len(job.inputs))
			out, err := embedded.ForwardUnfused(s.m, job.inputs, job.n, model.ExecHints{Workers: s.cfg.Device.Workers(), FastConv: s.cfg.Device.FastKernels()})
			if err == nil {
				s.cfg.Device.Transfer(4 * len(out))
			}
			job.done <- rayResult{out: out, err: err}
		}
	}
}

func (s *rayServer) handleMetadata(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	workers := len(s.replicas)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(metadata{
		ModelName:  s.m.Name,
		InputLen:   s.m.InputLen(),
		OutputSize: s.m.OutputSize,
		Framework:  string(RayServe),
		Workers:    workers,
	})
}

// rayClient talks HTTP + JSON to a rayServer, as the paper's Ray adapter
// does (gRPC support in Ray Serve was experimental, §3.4.4).
type rayClient struct {
	base    string
	hc      *http.Client
	meta    metadata
	retry   *resilience.Retry
	breaker *resilience.Breaker
}

func dialRayServe(addr string, o ClientOptions) (ScorerClient, error) {
	hc := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: 128},
		// Every request carries the configured deadline: a hung daemon
		// fails the call instead of wedging the run.
		Timeout: o.timeout(),
	}
	c := &rayClient{base: "http://" + addr, hc: hc, retry: o.Retry, breaker: o.Breaker}
	resp, err := hc.Get(c.base + "/-/routes")
	if err != nil {
		return nil, fmt.Errorf("ray-serve: metadata: %w", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&c.meta); err != nil {
		return nil, fmt.Errorf("ray-serve: metadata: %w", err)
	}
	return c, nil
}

// ScaleWorkers implements WorkerScaler over the management endpoint.
func (c *rayClient) ScaleWorkers(n int) error {
	resp, err := c.hc.Post(fmt.Sprintf("%s/-/scale?replicas=%d", c.base, n), "application/json", nil)
	if err != nil {
		return fmt.Errorf("ray-serve: scale: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var rr rayResponse
		json.NewDecoder(resp.Body).Decode(&rr)
		return fmt.Errorf("ray-serve: scale: HTTP %d: %s", resp.StatusCode, rr.Error)
	}
	return nil
}

func (c *rayClient) Name() string    { return string(RayServe) }
func (c *rayClient) InputLen() int   { return c.meta.InputLen }
func (c *rayClient) OutputSize() int { return c.meta.OutputSize }
func (c *rayClient) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// Score implements serving.Scorer over HTTP under the client's
// resilience policy: connection-level failures (daemon down, reset,
// deadline, torn body) are typed ErrUnavailable and retried; an HTTP
// error status proves the daemon is up, so it neither retries nor trips
// the breaker.
//
//lint:lent inputs
func (c *rayClient) Score(inputs []float32, n int) ([]float32, error) {
	if err := serving.ValidateBatch(inputs, n, c.meta.InputLen); err != nil {
		return nil, err
	}
	body, err := json.Marshal(rayRequest{Inputs: inputs, N: n})
	if err != nil {
		return nil, err
	}
	var out []float32
	var appErr error
	err = resilience.Run(c.retry, c.breaker, func() error {
		resp, err := c.hc.Post(c.base+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			return resilience.MarkRetryable(fmt.Errorf("ray-serve: %w: %w", ErrUnavailable, err))
		}
		defer resp.Body.Close()
		var rr rayResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			return resilience.MarkRetryable(fmt.Errorf("ray-serve: %w: %w", ErrUnavailable, err))
		}
		if resp.StatusCode != http.StatusOK {
			appErr = fmt.Errorf("ray-serve: HTTP %d: %s", resp.StatusCode, rr.Error)
			return nil
		}
		if len(rr.Predictions) != n*c.meta.OutputSize {
			appErr = fmt.Errorf("ray-serve: response length %d, want %d", len(rr.Predictions), n*c.meta.OutputSize)
			return nil
		}
		appErr = nil
		out = rr.Predictions
		return nil
	})
	if err != nil {
		return nil, err
	}
	if appErr != nil {
		return nil, appErr
	}
	return out, nil
}
