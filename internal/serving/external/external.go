// Package external implements the three specialized serving frameworks
// from §3.4.3 and §3.4.4 as real network daemons plus matching clients:
//
//   - TF-Serving: gRPC-style binary RPC, a bounded inference thread pool
//     (scaled via max-threads like the paper), and optimised (fused)
//     kernel execution — the fast external option.
//   - TorchServe: the same RPC substrate, but scaling via worker
//     processes, each pushing every request through a Python-handler
//     analogue that re-encodes tensors dynamically (JSON) on both sides
//     of an unfused forward pass.
//   - Ray Serve: HTTP + JSON with a single proxy per node dispatching to
//     replica workers — the proxy both decodes and encodes payloads, so
//     it serialises exactly the way the paper's single-HTTP-proxy design
//     does.
//
// All servers expose a metadata endpoint so clients can discover the
// model's input and output sizes at dial time.
package external

import (
	"errors"
	"fmt"
	"time"

	"crayfish/internal/gpu"
	"crayfish/internal/model"
	"crayfish/internal/modelfmt"
	"crayfish/internal/netsim"
	"crayfish/internal/resilience"
	"crayfish/internal/serving"
	"crayfish/internal/telemetry"
)

// Kind selects an external serving framework.
type Kind string

// The external serving tools from the paper.
const (
	TFServing  Kind = "tf-serving"
	TorchServe Kind = "torchserve"
	RayServe   Kind = "ray-serve"
)

// Kinds lists all external serving frameworks in a stable order.
func Kinds() []Kind { return []Kind{TFServing, TorchServe, RayServe} }

// Format returns the storage format a framework serves natively.
func Format(k Kind) (modelfmt.Format, error) {
	switch k {
	case TFServing:
		return modelfmt.SavedModel, nil
	case TorchServe:
		return modelfmt.Torch, nil
	case RayServe:
		// Ray is Python-based and needs no interoperability format;
		// it deploys Torch checkpoints in the paper's setup.
		return modelfmt.Torch, nil
	default:
		return "", fmt.Errorf("external: unknown framework %q", k)
	}
}

// Config configures a serving daemon.
type Config struct {
	// Kind selects the framework.
	Kind Kind
	// ModelBytes holds the model in the framework's native format.
	// Alternatively set Model to skip storage.
	ModelBytes []byte
	Model      *model.Model
	// Workers is the paper's mp knob: max inference threads
	// (TF-Serving), worker processes (TorchServe), or replicas
	// (Ray Serve). 0 means 1.
	Workers int
	// Device is the inference device; nil means CPU.
	Device gpu.Device
	// Addr is the listen address; empty means 127.0.0.1:0.
	Addr string
	// Network injects a modelled LAN hop per request and response,
	// imitating the paper's separate serving VM (§4.2). The zero
	// profile keeps calls at loopback speed.
	Network netsim.Profile
	// AutoscaleMax enables Ray Serve's replica autoscaler: the proxy
	// grows the replica pool toward this cap while requests queue and
	// shrinks it back to Workers when the queue drains. Zero disables
	// autoscaling (the paper's experiments scale replicas manually).
	AutoscaleMax int
	// Metrics publishes server-side request telemetry
	// (serving.server.*; see docs/OBSERVABILITY.md) into the given
	// registry — the feed behind modelserver's /metrics endpoint. Nil
	// disables instrumentation.
	Metrics *telemetry.Registry
}

// recordServed publishes one served request into the daemon's registry:
// request/error counts, the decoded batch size (points per request), and
// whole-request latency including queueing. No-op on a nil registry.
func recordServed(reg *telemetry.Registry, n int, start time.Time, err error) {
	if reg == nil {
		return
	}
	reg.Counter("serving.server.requests").Inc()
	reg.Histogram("serving.server.latency_ns").RecordSince(start)
	if err != nil {
		reg.Counter("serving.server.errors").Inc()
		return
	}
	reg.Histogram("serving.server.batch_size").Record(int64(n))
}

// Server is a running serving daemon.
type Server interface {
	// Kind identifies the framework.
	Kind() Kind
	// Addr is the bound listen address.
	Addr() string
	// SetWorkers rescales the inference pool without redeploying —
	// the decoupled-scalability property §7.1 highlights.
	SetWorkers(n int) error
	// Close stops the daemon.
	Close() error
}

// Start launches a serving daemon.
func Start(cfg Config) (Server, error) {
	m := cfg.Model
	if m == nil {
		f, err := Format(cfg.Kind)
		if err != nil {
			return nil, err
		}
		m, err = modelfmt.Decode(f, cfg.ModelBytes)
		if err != nil {
			return nil, fmt.Errorf("external %s: %w", cfg.Kind, err)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("external %s: %w", cfg.Kind, err)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Device == nil {
		cfg.Device = gpu.CPU()
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	switch cfg.Kind {
	case TFServing:
		return startTFServing(cfg, m)
	case TorchServe:
		return startTorchServe(cfg, m)
	case RayServe:
		return startRayServe(cfg, m)
	default:
		return nil, fmt.Errorf("external: unknown framework %q", cfg.Kind)
	}
}

// ErrUnavailable types transport-level failures of the HTTP-based
// clients (Ray Serve), matching grpcish.ErrUnavailable for the RPC-based
// ones; both are marked retryable (resilience.IsRetryable).
var ErrUnavailable = errors.New("external: serving daemon unavailable")

// DefaultClientTimeout bounds one serving request when ClientOptions
// does not override it: a hung daemon must fail the call, not wedge the
// run.
const DefaultClientTimeout = 30 * time.Second

// ClientOptions tunes the resilience policy of an external-serving
// client. The zero value gives every request the default deadline with
// no retries and no breaker.
type ClientOptions struct {
	// Timeout bounds every request (default DefaultClientTimeout);
	// negative disables deadlines entirely.
	Timeout time.Duration
	// Retry retries transport failures (connection loss, daemon crash,
	// deadline); application errors are never retried.
	Retry *resilience.Retry
	// Breaker sheds calls fast while the daemon stays down and probes
	// for recovery after its cooldown.
	Breaker *resilience.Breaker
	// Metrics publishes the client's resilience telemetry — retry
	// counts, shed calls, breaker state (resilience.*.<client>; see
	// docs/OBSERVABILITY.md) — by chaining observers onto Retry and
	// Breaker.
	Metrics *telemetry.Registry
}

// timeout resolves the configured deadline (0 = disabled).
func (o ClientOptions) timeout() time.Duration {
	if o.Timeout < 0 {
		return 0
	}
	if o.Timeout == 0 {
		return DefaultClientTimeout
	}
	return o.Timeout
}

// bindMetrics chains telemetry observers onto the Retry and Breaker,
// preserving any caller-installed hooks.
func (o *ClientOptions) bindMetrics(kind Kind) {
	if o.Metrics == nil {
		return
	}
	if o.Retry != nil {
		retries := o.Metrics.Counter("resilience.retries." + string(kind))
		prev := o.Retry.OnAttempt
		o.Retry.OnAttempt = func(attempt int, err error) {
			retries.Inc()
			if prev != nil {
				prev(attempt, err)
			}
		}
	}
	if o.Breaker != nil {
		shed := o.Metrics.Counter("resilience.shed." + string(kind))
		state := o.Metrics.Gauge("resilience.breaker.state." + string(kind))
		prevShed := o.Breaker.OnShed
		o.Breaker.OnShed = func() {
			shed.Inc()
			if prevShed != nil {
				prevShed()
			}
		}
		prevChange := o.Breaker.OnChange
		o.Breaker.OnChange = func(from, to resilience.State) {
			state.Set(int64(to))
			if prevChange != nil {
				prevChange(from, to)
			}
		}
	}
}

// DialClient connects a Scorer client to a running daemon of the given
// kind with the default resilience policy (deadline only).
func DialClient(kind Kind, addr string) (ScorerClient, error) {
	return DialClientOpts(kind, addr, ClientOptions{})
}

// DialClientOpts connects a Scorer client with an explicit resilience
// policy, discovering the model's shape from the metadata endpoint.
func DialClientOpts(kind Kind, addr string, o ClientOptions) (ScorerClient, error) {
	o.bindMetrics(kind)
	switch kind {
	case TFServing:
		return dialTFServing(addr, o)
	case TorchServe:
		return dialTorchServe(addr, o)
	case RayServe:
		return dialRayServe(addr, o)
	default:
		return nil, fmt.Errorf("external: unknown framework %q", kind)
	}
}

// ScorerClient is a network-backed Scorer that must be closed.
type ScorerClient interface {
	serving.Scorer
	serving.Closer
}

// metadata is the shape-discovery payload every framework serves.
type metadata struct {
	ModelName  string `json:"model_name"`
	InputLen   int    `json:"input_len"`
	OutputSize int    `json:"output_size"`
	Framework  string `json:"framework"`
	Workers    int    `json:"workers"`
}
