//go:build !race

package external

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
