//go:build race

package external

// raceEnabled reports whether the race detector is active; timing-shape
// assertions are skipped under -race because instrumentation overhead
// distorts relative costs.
const raceEnabled = true
