package serving

import (
	"time"

	"crayfish/internal/telemetry"
)

// instrumentedScorer wraps a Scorer with live telemetry. It forwards
// every Scorer method and records per-call batch size and latency, so
// the scoring stage is observable regardless of which runtime or
// external client sits underneath.
type instrumentedScorer struct {
	Scorer
	calls   *telemetry.Counter
	errors  *telemetry.Counter
	points  *telemetry.Counter
	batches *telemetry.Histogram
	latency *telemetry.Histogram
}

// Instrument wraps s with serving.score.* metrics (see
// docs/OBSERVABILITY.md). A nil registry returns s unchanged, keeping
// the disabled path allocation- and indirection-free. The wrapper is
// safe for concurrent use whenever s is, as the Scorer contract already
// requires.
func Instrument(s Scorer, reg *telemetry.Registry) Scorer {
	if reg == nil || s == nil {
		return s
	}
	return &instrumentedScorer{
		Scorer:  s,
		calls:   reg.Counter("serving.score.calls"),
		errors:  reg.Counter("serving.score.errors"),
		points:  reg.Counter("serving.score.points"),
		batches: reg.Histogram("serving.score.batch_size"),
		latency: reg.Histogram("serving.score.latency_ns"),
	}
}

// Score implements Scorer, recording telemetry around the wrapped call.
func (i *instrumentedScorer) Score(inputs []float32, n int) ([]float32, error) {
	start := time.Now()
	out, err := i.Scorer.Score(inputs, n)
	i.latency.RecordSince(start)
	i.calls.Inc()
	i.batches.Record(int64(n))
	if err != nil {
		i.errors.Inc()
	} else {
		i.points.Add(int64(n))
	}
	return out, err
}

// Unwrap returns the underlying Scorer, letting callers that need the
// concrete runtime (e.g. to Close it) reach through the wrapper.
func (i *instrumentedScorer) Unwrap() Scorer { return i.Scorer }
