package serving

import (
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"crayfish/internal/telemetry"
)

// allocSampleEvery is the sampling period for the serving.score.allocs
// gauge: the heap-allocation delta is measured on the first call and
// then every allocSampleEvery-th call, so the steady-state Score path
// never touches runtime/metrics.
const allocSampleEvery = 64

// heapAllocsMetric is the cumulative count of heap objects allocated by
// the process, from the runtime/metrics catalogue.
const heapAllocsMetric = "/gc/heap/allocs:objects"

// instrumentedScorer wraps a Scorer with live telemetry. It forwards
// every Scorer method and records per-call batch size and latency, so
// the scoring stage is observable regardless of which runtime or
// external client sits underneath.
type instrumentedScorer struct {
	Scorer
	calls   *telemetry.Counter
	errors  *telemetry.Counter
	points  *telemetry.Counter
	batches *telemetry.Histogram
	latency *telemetry.Histogram

	// Arena telemetry: the wrapped scorer's cumulative buffer-pool
	// stats are republished as monotone counters after every call.
	arena       ArenaStatser // nil when the scorer has no pooled arena
	arenaHits   *telemetry.Counter
	arenaMisses *telemetry.Counter
	lastHits    atomic.Uint64
	lastMisses  atomic.Uint64

	// Allocation gauge: a sampled process-wide heap-objects delta
	// around a single Score call. Sampled calls serialise on sampleMu;
	// all other calls only pay one atomic increment.
	allocs   *telemetry.Gauge
	scoreSeq atomic.Uint64
	sampleMu sync.Mutex
	sample   []metrics.Sample
}

// Instrument wraps s with serving.score.* metrics (see
// docs/OBSERVABILITY.md). A nil registry returns s unchanged, keeping
// the disabled path allocation- and indirection-free. The wrapper is
// safe for concurrent use whenever s is, as the Scorer contract already
// requires. Scorers that expose ArenaStats additionally feed the
// tensor.arena.* counters.
func Instrument(s Scorer, reg *telemetry.Registry) Scorer {
	if reg == nil || s == nil {
		return s
	}
	i := &instrumentedScorer{
		Scorer:      s,
		calls:       reg.Counter("serving.score.calls"),
		errors:      reg.Counter("serving.score.errors"),
		points:      reg.Counter("serving.score.points"),
		batches:     reg.Histogram("serving.score.batch_size"),
		latency:     reg.Histogram("serving.score.latency_ns"),
		arenaHits:   reg.Counter("tensor.arena.hits"),
		arenaMisses: reg.Counter("tensor.arena.misses"),
		allocs:      reg.Gauge("serving.score.allocs"),
		sample:      []metrics.Sample{{Name: heapAllocsMetric}},
	}
	if as, ok := s.(ArenaStatser); ok {
		i.arena = as
	}
	return i
}

// Score implements Scorer, recording telemetry around the wrapped call.
//
//lint:lent inputs
func (i *instrumentedScorer) Score(inputs []float32, n int) ([]float32, error) {
	sampled := i.scoreSeq.Add(1)%allocSampleEvery == 1
	var before uint64
	if sampled {
		i.sampleMu.Lock()
		metrics.Read(i.sample)
		before = i.sample[0].Value.Uint64()
	}
	start := time.Now()
	out, err := i.Scorer.Score(inputs, n)
	i.latency.RecordSince(start)
	if sampled {
		metrics.Read(i.sample)
		after := i.sample[0].Value.Uint64()
		i.sampleMu.Unlock()
		// Process-wide delta: an approximation, but with a planned
		// runtime underneath it sits near zero and regressions jump out.
		i.allocs.Set(int64(after - before))
	}
	i.calls.Inc()
	i.batches.Record(int64(n))
	if err != nil {
		i.errors.Inc()
	} else {
		i.points.Add(int64(n))
	}
	if i.arena != nil {
		hits, misses := i.arena.ArenaStats()
		publishDelta(i.arenaHits, &i.lastHits, hits)
		publishDelta(i.arenaMisses, &i.lastMisses, misses)
	}
	return out, err
}

// publishDelta advances the published counter to the cumulative value
// cur. Concurrent callers race on last; the CAS guarantees each
// increment of the source is added exactly once.
func publishDelta(c *telemetry.Counter, last *atomic.Uint64, cur uint64) {
	for {
		old := last.Load()
		if cur <= old {
			return
		}
		if last.CompareAndSwap(old, cur) {
			c.Add(int64(cur - old))
			return
		}
	}
}

// Unwrap returns the underlying Scorer, letting callers that need the
// concrete runtime (e.g. to Close it) reach through the wrapper.
func (i *instrumentedScorer) Unwrap() Scorer { return i.Scorer }
