package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// hotTensorFuncs are the internal/tensor functions that sit on the
// steady-state inference path beyond the Into-suffix convention: the
// blocked matmul core, the im2col packers (float and quantized), the
// parallel fan-outs, the packed int8 GEMM core, and the fused
// transformer row kernels (attention lanes, the shared softmax row
// loop).
var hotTensorFuncs = map[string]bool{
	"matMulRange":    true,
	"im2col":         true,
	"parallelMatMul": true,
	"poolMatMul":     true,
	"qMatMulPacked":  true,
	"im2colQ":        true,
	"store4q":        true,
	"attentionRows":  true,
	"poolAttention":  true,
	"softmaxRows":    true,
}

// hotModelFiles are the internal/model files whose entire contents are
// hot: the reference forward pass, the compiled execution plan, and the
// plan's transformer-operator dispatch.
var hotModelFiles = map[string]bool{
	"forward.go":  true,
	"plan.go":     true,
	"attnexec.go": true,
}

// NewHotPathAlloc flags heap allocations on the inference hot path:
// calls to tensor.New and make([]T, ...) for the inference datatypes
// (float32 activations, int8 quantized values, int32 accumulators,
// uint64 packed words) inside internal/tensor's Into-variant kernels
// (plus the helpers above) and anywhere in internal/model's forward.go
// and plan.go. The zero-allocation contract
// (docs/PERFORMANCE.md) is held by AllocsPerRun tests at the package
// level; this analyzer attributes a regression to its line before the
// tests can only say "some step allocated". Deliberate cold-path
// allocations — plan compilation, per-state scratch construction —
// carry a //lint:allow hotpathalloc annotation stating why.
func NewHotPathAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotpathalloc",
		Doc:  "inference hot paths (tensor Into-kernels, model forward/plan) must not allocate; annotate deliberate cold-path allocations",
	}
	a.Run = func(pass *Pass) {
		switch pass.Pkg.ModRel {
		case "internal/tensor":
			pass.eachFile(func(f *ast.File) {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil || !hotTensorFunc(fd.Name.Name) {
						continue
					}
					reportHotAllocs(pass, fd.Body, "tensor kernel "+fd.Name.Name)
				}
			})
		case "internal/model":
			pass.eachFile(func(f *ast.File) {
				name := filepath.Base(pass.Module.Fset.Position(f.Pos()).Filename)
				if !hotModelFiles[name] {
					return
				}
				reportHotAllocs(pass, f, name)
			})
		}
	}
	return a
}

// hotTensorFunc reports whether a tensor function name is on the hot
// path: the Into-variant naming convention or the helper allow-list.
func hotTensorFunc(name string) bool {
	return strings.HasSuffix(name, "Into") || hotTensorFuncs[name]
}

// reportHotAllocs walks one hot region and reports the banned
// allocation forms.
func reportHotAllocs(pass *Pass, root ast.Node, where string) {
	info := pass.Pkg.TypesInfo
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if elt, ok := hotSliceMake(info, call); fun.Name == "make" && ok {
				pass.Report(call.Pos(), "make([]%s, ...) in %s: hot paths take caller scratch or arena buffers (docs/PERFORMANCE.md), or annotate //lint:allow hotpathalloc <reason>", elt, where)
			}
			if fun.Name == "New" && pass.Pkg.ModRel == "internal/tensor" && isLocalFunc(info, fun) {
				pass.Report(call.Pos(), "tensor New in %s: hot kernels write into caller-provided tensors, or annotate //lint:allow hotpathalloc <reason>", where)
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name != "New" {
				return true
			}
			if ident, ok := fun.X.(*ast.Ident); ok && isTensorPkgRef(info, ident) {
				pass.Report(call.Pos(), "tensor.New in %s: hot paths draw from the execution plan's arena, or annotate //lint:allow hotpathalloc <reason>", where)
			}
		}
		return true
	})
}

// hotSliceElems are the element types whose slice makes the analyzer
// bans on hot paths: the float32 activation buffers plus the quantized
// path's int8 values, int32 accumulators, and uint64 packed pair-words.
var hotSliceElems = map[string]bool{
	"float32": true,
	"int8":    true,
	"int32":   true,
	"uint64":  true,
}

// hotSliceMake matches the literal form make([]T, ...) for a hot
// element type T, requiring make to be the builtin when type
// information is available. It returns the element type name.
func hotSliceMake(info *types.Info, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	if info != nil {
		if obj, ok := info.Uses[call.Fun.(*ast.Ident)]; ok {
			if _, builtin := obj.(*types.Builtin); !builtin {
				return "", false
			}
		}
	}
	at, ok := call.Args[0].(*ast.ArrayType)
	if !ok || at.Len != nil {
		return "", false
	}
	elt, ok := at.Elt.(*ast.Ident)
	if !ok || !hotSliceElems[elt.Name] {
		return "", false
	}
	return elt.Name, true
}

// isLocalFunc reports whether ident resolves to a package-level function
// of the package under analysis (the tensor constructor, not a local
// shadow), defaulting to true without type information.
func isLocalFunc(info *types.Info, ident *ast.Ident) bool {
	if info == nil {
		return true
	}
	obj, ok := info.Uses[ident]
	if !ok {
		return true
	}
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Parent() == fn.Pkg().Scope()
}

// isTensorPkgRef reports whether ident is an import reference to the
// module's tensor package (alias-safe), falling back to the spelled
// package name.
func isTensorPkgRef(info *types.Info, ident *ast.Ident) bool {
	if info != nil {
		if obj, ok := info.Uses[ident]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				p := pn.Imported().Path()
				return p == "internal/tensor" || strings.HasSuffix(p, "/internal/tensor")
			}
			return false
		}
	}
	return ident.Name == "tensor"
}
