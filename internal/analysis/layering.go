package analysis

import (
	"strconv"
	"strings"
)

// baseRel lists the module-relative packages that form the bottom of the
// import DAG: pure leaf libraries (tensor math, the network model, the
// telemetry registry, the GPU transfer model, the resilience primitives,
// windowing) that every higher layer may depend on and that therefore may
// import nothing but the standard library. A base package that grows a
// module dependency silently inverts the layering and eventually cycles.
// grpcish left the base when it gained retry support: it now sits one
// layer up, importing internal/resilience.
var baseRel = map[string]bool{
	"internal/tensor":     true,
	"internal/netsim":     true,
	"internal/telemetry":  true,
	"internal/gpu":        true,
	"internal/resilience": true,
	"internal/window":     true,
	"internal/loadgen":    true,
}

// NewLayering enforces the import DAG the architecture docs promise:
//
//   - base packages (tensor, netsim, telemetry, gpu, resilience, window,
//     loadgen) import only the standard library;
//   - internal/core (the experiment driver) must not import any SPS
//     engine package (internal/sps/<engine>) — engines are selected at
//     the API layer via the sps registry, so the driver stays
//     engine-agnostic (§3.2's adapter SPI);
//   - nothing imports cmd/... — binaries sit strictly on top;
//   - every import is either standard library or module-internal: the
//     module is dependency-free by design, and a third-party dependency
//     must be an explicit decision, not an accident.
func NewLayering() *Analyzer {
	a := &Analyzer{
		Name: "layering",
		Doc:  "enforce the package import DAG (base leaves, engine-agnostic core, no cmd imports, stdlib-only deps)",
	}
	a.Run = func(pass *Pass) {
		mod, pkg := pass.Module, pass.Pkg
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				inModule := path == mod.Path || strings.HasPrefix(path, mod.Path+"/")
				if !inModule && mod.Lookup(path) != nil {
					inModule = true // fixture modules with bare paths
				}
				if !inModule && !stdlibImportPath(path) {
					pass.Report(imp.Pos(), "import %q is neither standard library nor module-internal; the module is dependency-free by design", path)
					continue
				}
				if !inModule {
					continue
				}
				rel := strings.TrimPrefix(strings.TrimPrefix(path, mod.Path), "/")
				if rel == "cmd" || strings.HasPrefix(rel, "cmd/") {
					pass.Report(imp.Pos(), "import of command package %q: nothing may import cmd/... (binaries are the top of the DAG)", path)
				}
				if baseRel[pkg.ModRel] {
					pass.Report(imp.Pos(), "base package %s may import only the standard library, not %q", pkg.ModRel, path)
				}
				if pkg.ModRel == "internal/core" && strings.HasPrefix(rel, "internal/sps/") {
					pass.Report(imp.Pos(), "internal/core must stay engine-agnostic: import engines via the sps registry, not %q", path)
				}
			}
		}
	}
	return a
}

// stdlibImportPath reports whether an import path names a standard
// library package: its first element has no dot (the convention module
// paths are required to break).
func stdlibImportPath(path string) bool {
	first := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		first = path[:i]
	}
	return !strings.Contains(first, ".")
}
