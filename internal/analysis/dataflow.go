package analysis

// dataflow.go is the fixpoint half of the CFG layer (cfg.go): a small
// forward "may" dataflow engine. An analyzer supplies the lattice as
// plain functions — no interface to implement — and gets back the entry
// state of every block at the fixpoint, against which it replays its
// transfer function once more with reporting switched on. Keeping the
// solve and the report as two phases means a block revisited by the
// worklist never reports twice.

// Dataflow describes one forward analysis over a CFG. The state type S
// must behave as a join-semilattice under Join, with Bottom as the
// neutral element; Transfer must be monotone (the usual gen/kill shapes
// are) or the worklist may not terminate.
type Dataflow[S any] struct {
	// Entry is the state on function entry.
	Entry S
	// Bottom returns the least state (the initial in-state of every
	// non-entry block).
	Bottom func() S
	// Clone returns an independent copy of s (Transfer may mutate its
	// argument).
	Clone func(S) S
	// Join merges src into dst, reporting whether dst changed.
	Join func(dst, src S) bool
	// Transfer applies one block's nodes to s and returns the out-state
	// (mutating s is fine).
	Transfer func(b *Block, s S) S
}

// Forward iterates the analysis to fixpoint and returns the in-state of
// every block, indexed by Block.Index.
func Forward[S any](g *CFG, d Dataflow[S]) []S {
	in := make([]S, len(g.Blocks))
	for i := range in {
		in[i] = d.Bottom()
	}
	if len(g.Blocks) > 0 {
		d.Join(in[0], d.Entry)
	}

	// Worklist seeded in block order (creation order approximates
	// reverse postorder closely enough for these small functions).
	queued := make([]bool, len(g.Blocks))
	list := make([]int, 0, len(g.Blocks))
	for i := range g.Blocks {
		list = append(list, i)
		queued[i] = true
	}
	for len(list) > 0 {
		i := list[0]
		list = list[1:]
		queued[i] = false
		b := g.Blocks[i]
		out := d.Transfer(b, d.Clone(in[i]))
		for _, s := range b.Succs {
			if d.Join(in[s.Index], out) && !queued[s.Index] {
				queued[s.Index] = true
				list = append(list, s.Index)
			}
		}
	}
	return in
}
