package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// lockAcq is one held lock: how the source spells it plus where it was
// taken (for messages).
type lockAcq struct {
	text string
	pos  token.Pos
}

// lockState is the may-held set at a program point, keyed by lock
// identity (see lockKey).
type lockState = map[string]lockAcq

// lockEdge records "from was held while to was acquired" with the
// acquisition site and enclosing function (first occurrence wins).
type lockEdge struct {
	from, to string
	pos      token.Pos
	fn       string
}

// NewLockDiscipline tracks sync.Mutex/RWMutex critical sections with a
// held-set dataflow over the CFG layer and reports, per function:
//
//   - re-acquiring a mutex already held on a path reaching the Lock
//     (self-deadlock);
//   - blocking while holding a lock: channel sends/receives, ranging
//     over a channel, a select with no default, sync.WaitGroup.Wait,
//     time.Sleep, and network calls (internal/grpcish, broker Client
//     methods) — each can stall every other goroutine contending for
//     the lock.
//
// Across the whole module it builds a mutex acquisition-order graph
// (edges "A held while B acquired") and reports order cycles in Finish:
// two goroutines taking {A,B} in opposite orders is the classic
// deadlock. Lock identity is approximate by construction —
// pkg.Type.field for struct-owned mutexes (all instances of a type
// share a key, matching how ordering conventions are written),
// pkg.var for package-level ones, declaration site for locals.
// Deferred Unlocks keep the lock held to function exit, which is the
// semantic truth, so critical sections that defer their Unlock get the
// blocking-op checks for their whole tail.
func NewLockDiscipline() *Analyzer {
	a := &Analyzer{
		Name: "lockdiscipline",
		Doc:  "no relock of a held mutex, no blocking ops under a lock, and a module-wide cycle-free mutex acquisition order",
	}
	edges := make(map[[2]string]lockEdge)
	a.Run = func(pass *Pass) {
		info := pass.Pkg.TypesInfo
		if info == nil {
			return
		}
		pass.eachFile(func(f *ast.File) {
			funcBodies(f, func(decl ast.Node, body *ast.BlockStmt) {
				fn := "a function literal"
				if fd, ok := decl.(*ast.FuncDecl); ok {
					fn = fd.Name.Name
				}
				runLockFunc(pass, fn, body, edges)
			})
		})
	}
	a.Finish = func(pass *Pass) {
		reportLockCycles(pass, edges)
	}
	return a
}

type lockFunc struct {
	pass     *Pass
	info     *types.Info
	fn       string
	edges    map[[2]string]lockEdge
	reported map[token.Pos]bool
}

func runLockFunc(pass *Pass, fn string, body *ast.BlockStmt, edges map[[2]string]lockEdge) {
	// Pre-scan: skip lock-free functions (most of the module).
	usesLocks := false
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if m, _ := syncLockMethod(pass.Pkg.TypesInfo, call); m != "" {
				usesLocks = true
			}
		}
		return !usesLocks
	})
	if !usesLocks {
		return
	}

	lf := &lockFunc{
		pass:     pass,
		info:     pass.Pkg.TypesInfo,
		fn:       fn,
		edges:    edges,
		reported: make(map[token.Pos]bool),
	}
	g := NewCFG(body)
	d := Dataflow[lockState]{
		Entry:  lockState{},
		Bottom: func() lockState { return lockState{} },
		Clone: func(s lockState) lockState {
			c := make(lockState, len(s))
			for k, v := range s {
				c[k] = v
			}
			return c
		},
		Join: func(dst, src lockState) bool {
			changed := false
			for k, v := range src {
				if _, ok := dst[k]; !ok {
					dst[k] = v
					changed = true
				}
			}
			return changed
		},
		Transfer: func(b *Block, s lockState) lockState {
			for _, n := range b.Nodes {
				lf.node(n, s, false)
			}
			return s
		},
	}
	in := Forward(g, d)
	for i, b := range g.Blocks {
		s := d.Clone(in[i])
		for _, n := range b.Nodes {
			lf.node(n, s, true)
		}
	}
}

// node applies one flat CFG node to the held set.
func (lf *lockFunc) node(n ast.Node, s lockState, report bool) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		// A deferred Unlock releases at exit, not here: leave the set
		// unchanged, which is exactly the held-to-end semantics. Other
		// deferred calls do not run at this point either.
	case *ast.GoStmt:
		// The goroutine does not inherit the caller's critical section;
		// its body is analyzed as its own function.
	case SelectHead:
		if !n.HasDefault && len(s) > 0 && report {
			lf.reportOnce(n.Stmt.Pos(), "select with no default while holding %s: blocking under a lock stalls every contender", heldList(s))
		}
	case CommOp:
		// The select head already accounted for blocking; the chosen
		// comm op itself is ready by definition. Locks taken inside a
		// comm clause body appear as ordinary nodes.
	case RangeHead:
		if len(s) > 0 && report && isChanType(lf.info, n.Stmt.X) {
			lf.reportOnce(n.Stmt.Pos(), "ranging over a channel while holding %s: each iteration may block under the lock", heldList(s))
		}
		lf.scan(n.Stmt.X, s, report)
	case *ast.BranchStmt:
	case ast.Node:
		lf.scan(n, s, report)
	}
}

// scan walks one flat statement or expression in source order, applying
// lock transfers and blocking-op checks.
func (lf *lockFunc) scan(root ast.Node, s lockState, report bool) {
	inspectShallow(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if method, recv := syncLockMethod(lf.info, n); method != "" {
				lf.lockOp(method, recv, n, s, report)
				return false
			}
			if report && len(s) > 0 {
				if what := blockingCallee(lf.info, n); what != "" {
					lf.reportOnce(n.Pos(), "%s while holding %s: the lock is held across a potentially unbounded wait", what, heldList(s))
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(s) > 0 && report {
				lf.reportOnce(n.Pos(), "channel receive while holding %s: move the receive outside the critical section", heldList(s))
			}
		case *ast.SendStmt:
			if len(s) > 0 && report {
				lf.reportOnce(n.Arrow, "channel send while holding %s: move the send outside the critical section", heldList(s))
			}
		}
		return true
	})
}

// lockOp applies one Lock/RLock/Unlock/RUnlock call.
func (lf *lockFunc) lockOp(method string, recv ast.Expr, call *ast.CallExpr, s lockState, report bool) {
	key, text := lockKey(lf.pass, lf.info, recv)
	switch method {
	case "Lock", "RLock":
		if prev, held := s[key]; held && report {
			if method == "Lock" && prev.text == text {
				lf.reportOnce(call.Pos(), "mutex %s may already be held on a path reaching this Lock: relocking a held sync mutex deadlocks", text)
			}
		}
		if report {
			for from := range s {
				if from == key {
					continue
				}
				e := [2]string{from, key}
				if _, ok := lf.edges[e]; !ok {
					lf.edges[e] = lockEdge{from: from, to: key, pos: call.Pos(), fn: lf.fn}
				}
			}
		}
		s[key] = lockAcq{text: text, pos: call.Pos()}
	case "Unlock", "RUnlock":
		delete(s, key)
	}
}

func (lf *lockFunc) reportOnce(pos token.Pos, format string, args ...any) {
	if lf.reported[pos] {
		return
	}
	lf.reported[pos] = true
	lf.pass.Report(pos, format, args...)
}

// heldList renders the held set for messages, deterministically.
func heldList(s lockState) string {
	texts := make([]string, 0, len(s))
	for _, acq := range s {
		texts = append(texts, acq.text)
	}
	sort.Strings(texts)
	return strings.Join(texts, ", ")
}

// syncLockMethod matches calls to sync.Mutex/RWMutex Lock/RLock/Unlock/
// RUnlock (directly or through an embedded field) and returns the method
// name and the receiver expression.
func syncLockMethod(info *types.Info, call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", nil
	}
	fn, ok := useObj(info, sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil
	}
	return sel.Sel.Name, sel.X
}

// lockKey derives a stable identity for the mutex behind recv:
//
//	pkgpath.Type.field  for struct-owned mutexes (s.mu, s.Lock() through
//	                    an embedded mutex — all instances share the key)
//	pkgpath.var         for package-level mutexes
//	file:line.name      for locally declared mutexes
//
// The second return is the spelled form for messages.
func lockKey(pass *Pass, info *types.Info, recv ast.Expr) (string, string) {
	recv = ast.Unparen(recv)
	text := exprText(recv)
	if text == "" {
		text = "(mutex)"
	}
	switch x := recv.(type) {
	case *ast.SelectorExpr:
		// pkgname.Var: a package-level mutex in another package.
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if pn, ok := useObj(info, id).(*types.PkgName); ok {
				return pn.Imported().Path() + "." + x.Sel.Name, text
			}
		}
		// s.mu (or deeper): key on the owner's named type.
		if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
			if named := namedOf(tv.Type); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name, text
			}
		}
	case *ast.Ident:
		obj := useObj(info, x)
		if obj == nil {
			return "expr." + text, text
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), text
		}
		// s.Lock() through an embedded mutex: key on the struct type.
		if named := namedOf(obj.Type()); named != nil && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() != "sync" {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + ".(embedded)", text
		}
		// A genuinely local mutex: its declaration site is its identity.
		pos := pass.Module.Fset.Position(obj.Pos())
		return fmt.Sprintf("%s:%d.%s", filepath.Base(pos.Filename), pos.Line, obj.Name()), text
	}
	return "expr." + text, text
}

// isChanType reports whether e has channel type.
func isChanType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// blockingCallee classifies calls that can block indefinitely: waiting
// on a WaitGroup, sleeping, and network calls through the module's RPC
// layer (internal/grpcish) or broker client. sync.Cond.Wait is excluded:
// it releases its locker while waiting.
func blockingCallee(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path()
	switch {
	case path == "sync" && fn.Name() == "Wait" && recvTypeName(fn) == "WaitGroup":
		return "sync.WaitGroup.Wait"
	case path == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case pkgPathHasSuffix(path, "internal/grpcish"):
		return "a grpcish network call (" + fn.Name() + ")"
	case pkgPathHasSuffix(path, "internal/broker") && recvTypeName(fn) == "Client":
		return "a broker client call (" + fn.Name() + ")"
	}
	return ""
}

// recvTypeName returns the name of a method's receiver type, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if named := namedOf(sig.Recv().Type()); named != nil {
		return named.Obj().Name()
	}
	return ""
}

// reportLockCycles finds strongly connected components in the
// acquisition-order graph and reports each cycle once, anchored at one
// of its acquisition sites.
func reportLockCycles(pass *Pass, edges map[[2]string]lockEdge) {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for pair := range edges {
		adj[pair[0]] = append(adj[pair[0]], pair[1])
		nodes[pair[0]], nodes[pair[1]] = true, true
	}
	order := make([]string, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)
	for n := range adj {
		sort.Strings(adj[n])
	}

	// Tarjan's SCC, iterative enough for linter-sized graphs.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	var sccs [][]string
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	for _, scc := range sccs {
		sort.Strings(scc)
		in := make(map[string]bool, len(scc))
		for _, k := range scc {
			in[k] = true
		}
		// Collect the edges internal to the cycle, sorted for
		// deterministic anchoring and description.
		var internal []lockEdge
		for pair, e := range edges {
			if in[pair[0]] && in[pair[1]] {
				internal = append(internal, e)
			}
		}
		sort.Slice(internal, func(i, j int) bool {
			if internal[i].from != internal[j].from {
				return internal[i].from < internal[j].from
			}
			return internal[i].to < internal[j].to
		})
		var parts []string
		for _, e := range internal {
			parts = append(parts, fmt.Sprintf("%s acquires %s while holding %s", e.fn, shortLockKey(e.to), shortLockKey(e.from)))
		}
		pass.Report(internal[0].pos,
			"mutex acquisition-order cycle between %s (%s): opposite nesting orders can deadlock; pick one global order",
			shortKeyList(scc), strings.Join(parts, "; "))
	}
}

// shortLockKey trims the module-path prefix off a lock key for messages.
func shortLockKey(key string) string {
	if i := strings.Index(key, "internal/"); i > 0 {
		return key[i:]
	}
	return key
}

func shortKeyList(keys []string) string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = shortLockKey(k)
	}
	return strings.Join(out, " and ")
}
