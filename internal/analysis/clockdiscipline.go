package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// clockRestricted lists the module-relative packages that sit on the
// measurement's timestamp path. The paper's latency pipeline (§3.3) is
// producer CreateTime → broker LogAppendTime → consumer, with the broker
// clock injectable (broker.Config.Clock) and all modelled waiting owned
// by netsim.Profile / gpu's transfer model. Inside these packages a raw
// wall-clock read or ad-hoc sleep either bypasses the injected clock
// (making timestamp tests nondeterministic) or adds unmodelled delay to
// the measurement path — exactly the perturbation §4.3 verifies the
// harness does not introduce. The fault injector joins the list because
// its event schedule and delay jitter must replay deterministically: a
// stray wall-clock read there breaks the byte-identical fault log.
// The micro-batcher joins because its linger deadline and AIMD latency
// window are part of the measured operator latency: both must run off
// the injectable batching.Clock so trigger tests are deterministic.
// The load generator joins because its arrival schedules are promised to
// be byte-identical per seed and its pacer is the instrument that stamps
// the offered load: both must run off the injectable loadgen.Clock.
var clockRestricted = []string{
	"internal/broker",
	"internal/netsim",
	"internal/gpu",
	"internal/faults",
	"internal/batching",
	"internal/loadgen",
}

// clockBanned is the set of time-package functions that must not be
// referenced raw in restricted packages.
var clockBanned = map[string]bool{
	"Now":   true,
	"Sleep": true,
	"After": true,
	"Tick":  true,
}

// NewClockDiscipline flags raw time.Now / time.Sleep (and After/Tick)
// references in timestamp-path packages. Legitimate uses — the broker's
// documented default clock, netsim's own modelled sleep — carry a
// //lint:allow clockdiscipline annotation stating why.
func NewClockDiscipline() *Analyzer {
	a := &Analyzer{
		Name: "clockdiscipline",
		Doc:  "timestamp-path packages (broker, netsim, gpu, faults, batching, loadgen) must route time through the injected clock / network model",
	}
	a.Run = func(pass *Pass) {
		if !clockRestrictedPkg(pass.Pkg.ModRel) {
			return
		}
		info := pass.Pkg.TypesInfo
		pass.eachFile(func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !clockBanned[sel.Sel.Name] {
					return true
				}
				ident, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				if !isPackageRef(info, ident, "time") {
					return true
				}
				pass.Report(sel.Pos(), "raw time.%s in timestamp-path package %s: route through the injected clock (broker.Config.Clock) or the netsim/gpu delay model, or annotate //lint:allow clockdiscipline <reason>", sel.Sel.Name, pass.Pkg.ModRel)
				return true
			})
		})
	}
	return a
}

func clockRestrictedPkg(modRel string) bool {
	for _, r := range clockRestricted {
		if modRel == r || strings.HasPrefix(modRel, r+"/") {
			return true
		}
	}
	return false
}

// isPackageRef reports whether ident resolves to the import of the named
// standard-library package (alias-safe), falling back to the spelled
// name when type information is unavailable.
func isPackageRef(info *types.Info, ident *ast.Ident, pkgPath string) bool {
	if info != nil {
		if obj, ok := info.Uses[ident]; ok {
			pn, ok := obj.(*types.PkgName)
			return ok && pn.Imported().Path() == pkgPath
		}
	}
	return ident.Name == pkgPath
}
