// Package analysis is Crayfish's project-specific static-analysis
// framework, built only on the standard library's go/ast, go/parser, and
// go/types (source importer) — no golang.org/x/tools dependency, keeping
// the module dependency-free (an invariant the layering analyzer itself
// enforces).
//
// The paper's methodology (§4.3) depends on the harness never perturbing
// the measurement: the broker must stay off the critical path, timestamps
// must flow through the broker/netsim clock, and telemetry names must
// match their documented contract. Those invariants are enforceable
// mechanically, and this package is the mechanism: a Module loader, a
// small Analyzer interface, and the project's analyzer suite
// (DefaultAnalyzers). The cmd/crayfishlint driver wires them together;
// docs/STATIC_ANALYSIS.md documents each analyzer and its rationale.
//
// Suppression: a diagnostic can be silenced with a
//
//	//lint:allow <analyzer> <reason>
//
// comment on the flagged line or on a comment line directly above it.
// The reason is mandatory; a bare directive is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one project invariant checker. Analyzers are stateful and
// single-use: the driver creates a fresh suite per run (see
// DefaultAnalyzers), calls Run once per package, then Finish once after
// every package has been visited (for whole-module checks such as
// doc↔code metric-name drift).
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and in
	// //lint:allow directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// Finish, if set, is called after all packages ran; it reports
	// whole-module findings through the pass (whose Pkg is nil).
	Finish func(*Pass)
}

// Pass carries one analyzer's view of one package plus the reporting
// sink. Report applies //lint:allow suppression before recording.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	// Pkg is the package under analysis; nil during Finish.
	Pkg *Package

	diags      *[]Diagnostic
	suppressed *int
}

// Report records a diagnostic at pos unless an allow directive covers it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	pkg := p.Pkg
	if pkg == nil && p.Module != nil {
		// Finish-phase findings still anchor to a source line; resolve
		// the owning package so //lint:allow works for them too.
		pkg = p.Module.packageForFile(position.Filename)
	}
	if pkg != nil && pkg.allows(p.Analyzer.Name, position) {
		*p.suppressed++
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// reportAt records a diagnostic at an explicit position (used for
// findings anchored in non-Go files, e.g. the metrics contract doc,
// where //lint:allow suppression does not apply).
func (p *Pass) reportAt(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Result is one full run of an analyzer suite over a module.
type Result struct {
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by //lint:allow directives.
	Suppressed int
}

// Run executes the suite over every package of the module and returns
// the aggregated, position-sorted diagnostics. Malformed directives are
// reported under the "lintdirective" pseudo-analyzer.
func Run(mod *Module, suite []*Analyzer) Result {
	var res Result
	for _, pkg := range mod.Packages {
		reportBadDirectives(mod, pkg, &res.Diagnostics)
		for _, a := range suite {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Module: mod, Pkg: pkg,
				diags: &res.Diagnostics, suppressed: &res.Suppressed}
			a.Run(pass)
		}
	}
	for _, a := range suite {
		if a.Finish == nil {
			continue
		}
		pass := &Pass{Analyzer: a, Module: mod,
			diags: &res.Diagnostics, suppressed: &res.Suppressed}
		a.Finish(pass)
	}
	// With every pass done, any well-formed directive that suppressed
	// nothing is stale. Only a full-suite view can tell: directives for
	// analyzers outside this suite are skipped.
	suiteNames := make(map[string]bool, len(suite))
	for _, a := range suite {
		suiteNames[a.Name] = true
	}
	for _, pkg := range mod.Packages {
		reportStaleDirectives(pkg, suiteNames, &res.Diagnostics)
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return res
}

// DefaultAnalyzers returns a fresh instance of the full Crayfish suite.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewLayering(),
		NewMetricNames(),
		NewClockDiscipline(),
		NewGoroLifecycle(),
		NewErrcheckLite(),
		NewHotPathAlloc(),
		NewArenaDiscipline(),
		NewBorrowRetain(),
		NewLockDiscipline(),
	}
}

// eachFile walks every file of the pass's package.
func (p *Pass) eachFile(fn func(*ast.File)) {
	for _, f := range p.Pkg.Files {
		fn(f)
	}
}
