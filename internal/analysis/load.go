package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module. Test files
// (*_test.go) are excluded: the invariants the suite guards are
// production-path properties, and tests legitimately spin clocks, leak
// short-lived goroutines into t.Cleanup, and discard errors.
type Package struct {
	// Path is the full import path ("crayfish/internal/broker").
	Path string
	// ModRel is the module-relative directory ("" for the root package,
	// "internal/broker", ...). Layering rules are written against it so
	// the same analyzers run unchanged on fixture modules.
	ModRel string
	// Dir is the absolute directory.
	Dir string

	Files     []*ast.File
	Filenames []string

	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors collects type-checking problems. The loader is lenient
	// (fixtures deliberately contain broken imports); the driver decides
	// whether they are fatal.
	TypeErrors []error

	// allow maps "<file>:<line>" to the directives covering that line;
	// directives holds each parsed directive once (allow double-indexes).
	allow      map[string][]*directive
	directives []*directive
}

// Module is a loaded Go module: every non-test, non-testdata package
// under its root, parsed and type-checked against a source-importer view
// of the standard library.
type Module struct {
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Path is the module path declared in go.mod.
	Path string
	Fset *token.FileSet
	// Packages is sorted by import path.
	Packages []*Package

	byPath map[string]*Package
	byFile map[string]*Package
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// packageForFile returns the loaded package owning filename, or nil.
func (m *Module) packageForFile(filename string) *Package {
	if m.byFile == nil {
		m.byFile = make(map[string]*Package)
		for _, pkg := range m.Packages {
			for _, fn := range pkg.Filenames {
				m.byFile[fn] = pkg
			}
		}
	}
	return m.byFile[filename]
}

var moduleDirective = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadModule loads, parses, and type-checks the module rooted at dir.
// Directories named testdata or vendor, hidden directories, and
// *_test.go files are skipped. Type errors are recorded per package, not
// fatal — parse errors are.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modBytes, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: module root: %w", err)
	}
	match := moduleDirective.FindSubmatch(modBytes)
	if match == nil {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", abs)
	}
	mod := &Module{
		Dir:    abs,
		Path:   string(match[1]),
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}

	if err := filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		return mod.parseDir(path)
	}); err != nil {
		return nil, err
	}

	sort.Slice(mod.Packages, func(i, j int) bool {
		return mod.Packages[i].Path < mod.Packages[j].Path
	})

	tc := &typechecker{
		mod:  mod,
		std:  importer.ForCompiler(mod.Fset, "source", nil),
		done: make(map[string]*types.Package),
		busy: make(map[string]bool),
	}
	tc.checkAll()
	return mod, nil
}

// checkAll type-checks every module package, in parallel waves along the
// internal dependency order: a package is checked once all its
// module-internal imports are, so a wave's members are independent and
// GOMAXPROCS workers can take them concurrently (go/types itself is safe
// for checking distinct packages; the shared importer state is locked).
// Packages left over when no progress is possible sit on an import
// cycle; they go through the serial recursive path, which names the
// cycle in its error.
func (tc *typechecker) checkAll() {
	// Module-internal dependency edges, from the parsed import specs.
	waiting := make(map[string]int)           // unchecked internal deps
	dependents := make(map[string][]*Package) // dep path -> importers
	for _, pkg := range tc.mod.Packages {
		for dep := range internalImports(tc.mod, pkg) {
			waiting[pkg.Path]++
			dependents[dep] = append(dependents[dep], pkg)
		}
	}

	var ready []*Package
	for _, pkg := range tc.mod.Packages {
		if waiting[pkg.Path] == 0 {
			ready = append(ready, pkg)
		}
	}

	workers := runtime.GOMAXPROCS(0)
	checked := 0
	for len(ready) > 0 {
		wave := ready
		ready = nil
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for _, pkg := range wave {
			wg.Add(1)
			sem <- struct{}{}
			go func(pkg *Package) {
				defer wg.Done()
				defer func() { <-sem }()
				if _, err := tc.checkModule(pkg.Path); err != nil {
					tc.mu.Lock()
					pkg.TypeErrors = append(pkg.TypeErrors, err)
					tc.mu.Unlock()
				}
			}(pkg)
		}
		wg.Wait()
		checked += len(wave)
		for _, pkg := range wave {
			for _, dep := range dependents[pkg.Path] {
				waiting[dep.Path]--
				if waiting[dep.Path] == 0 {
					ready = append(ready, dep)
				}
			}
		}
	}

	// Anything still waiting is on (or behind) an import cycle: fall
	// back to the serial recursive path for the cycle diagnostics.
	if checked < len(tc.mod.Packages) {
		for _, pkg := range tc.mod.Packages {
			if _, err := tc.checkModule(pkg.Path); err != nil {
				pkg.TypeErrors = append(pkg.TypeErrors, err)
			}
		}
	}
}

// internalImports resolves a package's import specs to module-internal
// package paths (the dependency edges the wave scheduler orders by).
func internalImports(mod *Module, pkg *Package) map[string]bool {
	deps := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if mod.Lookup(path) != nil && path != pkg.Path {
				deps[path] = true
			}
		}
	}
	return deps
}

// parseDir parses the non-test Go files of one directory into a Package
// (no-op for directories without Go files).
func (m *Module) parseDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)

	rel, err := filepath.Rel(m.Dir, dir)
	if err != nil {
		return err
	}
	if rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	path := m.Path
	if rel != "" {
		path = m.Path + "/" + rel
	}
	pkg := &Package{Path: path, ModRel: rel, Dir: dir}
	for _, n := range names {
		fname := filepath.Join(dir, n)
		f, err := parser.ParseFile(m.Fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, fname)
	}
	pkg.collectDirectives(m.Fset)
	m.Packages = append(m.Packages, pkg)
	m.byPath[path] = pkg
	return nil
}

// typechecker resolves module-internal imports from the parsed tree
// (recursively, memoized) and everything else through the standard
// library source importer. This sidesteps go/build's module resolution
// entirely: the only packages a Crayfish build may reach are the module's
// own and the standard library's, which is itself one of the enforced
// invariants.
//
// The checker is safe for the wave scheduler's concurrency: done/busy
// are mutex-guarded, each Package's fields are written only by the one
// goroutine checking it, and the source importer — which has no internal
// locking — is serialized behind its own mutex (it memoizes, so after a
// std package's first import the critical section is a map hit).
type typechecker struct {
	mod *Module
	std types.Importer

	mu    sync.Mutex // guards done, busy
	stdMu sync.Mutex // serializes tc.std
	done  map[string]*types.Package
	busy  map[string]bool
}

func (tc *typechecker) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == tc.mod.Path || strings.HasPrefix(path, tc.mod.Path+"/") {
		return tc.checkModule(path)
	}
	if pkg := tc.mod.Lookup(path); pkg != nil {
		// Fixture modules may self-import under bare paths.
		return tc.checkModule(path)
	}
	if !stdlibImportPath(path) {
		// Refuse third-party paths here instead of letting the source
		// importer fall into go/build module resolution (which may shell
		// out or touch the network). The layering analyzer reports the
		// import itself; this keeps the type error local and fast.
		return nil, fmt.Errorf("analysis: %q is neither standard library nor module-internal", path)
	}
	tc.stdMu.Lock()
	defer tc.stdMu.Unlock()
	return tc.std.Import(path)
}

func (tc *typechecker) checkModule(path string) (*types.Package, error) {
	tc.mu.Lock()
	if tp, ok := tc.done[path]; ok {
		tc.mu.Unlock()
		return tp, nil
	}
	if tc.busy[path] {
		tc.mu.Unlock()
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	pkg := tc.mod.Lookup(path)
	if pkg == nil {
		tc.mu.Unlock()
		return nil, fmt.Errorf("analysis: module package %q not found", path)
	}
	tc.busy[path] = true
	tc.mu.Unlock()
	defer func() {
		tc.mu.Lock()
		delete(tc.busy, path)
		tc.mu.Unlock()
	}()

	pkg.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: tc,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tp, _ := conf.Check(path, tc.mod.Fset, pkg.Files, pkg.TypesInfo)
	pkg.Types = tp
	tc.mu.Lock()
	tc.done[path] = tp
	tc.mu.Unlock()
	return tp, nil
}
