package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crayfish/internal/analysis"
)

// lintSnippet builds a one-package throwaway module whose single file
// lives in internal/loadgen — a clock-restricted package, so every
// time.Now reference is a deterministic clockdiscipline finding to hang
// directive-association tests on — and runs the default suite over it.
func lintSnippet(t *testing.T, src string) analysis.Result {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module snippet.test\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(dir, "internal", "loadgen")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "snippet.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := analysis.LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	return analysis.Run(mod, analysis.DefaultAnalyzers())
}

// diagsOf filters a result to one analyzer's messages.
func diagsOf(res analysis.Result, analyzer string) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range res.Diagnostics {
		if d.Analyzer == analyzer {
			out = append(out, d)
		}
	}
	return out
}

func TestDirectiveTrailingSameLine(t *testing.T) {
	res := lintSnippet(t, `package loadgen

import "time"

var Stamp = time.Now //lint:allow clockdiscipline snippet: trailing form
`)
	if n := len(diagsOf(res, "clockdiscipline")); n != 0 {
		t.Errorf("trailing directive did not suppress: %d findings", n)
	}
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
	if n := len(diagsOf(res, "lintdirective")); n != 0 {
		t.Errorf("clean trailing directive reported: %v", diagsOf(res, "lintdirective"))
	}
}

func TestDirectiveLineAbove(t *testing.T) {
	res := lintSnippet(t, `package loadgen

import "time"

//lint:allow clockdiscipline snippet: line-above form
var Stamp = time.Now
`)
	if n := len(diagsOf(res, "clockdiscipline")); n != 0 {
		t.Errorf("line-above directive did not suppress: %d findings", n)
	}
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
}

// A blank line between the directive and the finding breaks the
// association: the finding stands, and the directive is stale.
func TestDirectiveBlankLineBreaksAssociation(t *testing.T) {
	res := lintSnippet(t, `package loadgen

import "time"

//lint:allow clockdiscipline snippet: too far away

var Stamp = time.Now
`)
	if n := len(diagsOf(res, "clockdiscipline")); n != 1 {
		t.Errorf("finding across a blank line was suppressed: %d findings, want 1", n)
	}
	stale := diagsOf(res, "lintdirective")
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "suppresses nothing") {
		t.Errorf("directive across a blank line should be stale, got %v", stale)
	}
}

// A directive above a declaration covers the declaration line only —
// not the first finding inside the body.
func TestDirectiveDoesNotCrossDeclBoundary(t *testing.T) {
	res := lintSnippet(t, `package loadgen

import "time"

//lint:allow clockdiscipline snippet: misplaced above the decl
func Stamp() time.Time {
	return time.Now()
}
`)
	if n := len(diagsOf(res, "clockdiscipline")); n != 1 {
		t.Errorf("finding inside the body was suppressed by a decl-line directive: %d findings, want 1", n)
	}
	stale := diagsOf(res, "lintdirective")
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "suppresses nothing") {
		t.Errorf("decl-line directive should be stale, got %v", stale)
	}
}

func TestDirectiveBlockForm(t *testing.T) {
	res := lintSnippet(t, `package loadgen

import "time"

var Stamp = time.Now /*lint:allow clockdiscipline snippet: block form*/
`)
	if n := len(diagsOf(res, "clockdiscipline")); n != 0 {
		t.Errorf("block directive did not suppress: %d findings", n)
	}
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
}

// Two directives can share a line in block form; each is parsed and
// judged independently — here one suppresses and the other is stale.
func TestDirectiveMultiplePerLine(t *testing.T) {
	res := lintSnippet(t, `package loadgen

import "time"

var Stamp = time.Now /*lint:allow clockdiscipline snippet: real*/ /*lint:allow gorolifecycle snippet: stale*/
`)
	if n := len(diagsOf(res, "clockdiscipline")); n != 0 {
		t.Errorf("first of two same-line directives did not suppress: %d findings", n)
	}
	stale := diagsOf(res, "lintdirective")
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "no gorolifecycle finding") {
		t.Errorf("second same-line directive should be stale, got %v", stale)
	}
}

// A block directive spanning lines cannot say which line it covers: it
// is malformed, not silently dropped.
func TestDirectiveMultilineBlockIsBad(t *testing.T) {
	res := lintSnippet(t, `package loadgen

import "time"

/*lint:allow clockdiscipline snippet:
spread over two lines*/
var Stamp = time.Now
`)
	if n := len(diagsOf(res, "clockdiscipline")); n != 1 {
		t.Errorf("multiline block directive suppressed a finding: want it inert")
	}
	bad := diagsOf(res, "lintdirective")
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "one line") {
		t.Errorf("multiline block directive should be malformed, got %v", bad)
	}
}

// Prefix words that merely start with lint:allow are not directives.
func TestDirectiveBoundary(t *testing.T) {
	res := lintSnippet(t, `package loadgen

//lint:allowance is not a directive
func Idle() int { return 0 }
`)
	if n := len(diagsOf(res, "lintdirective")); n != 0 {
		t.Errorf("//lint:allowance parsed as a directive: %v", diagsOf(res, "lintdirective"))
	}
}

// A directive naming an analyzer outside the active suite is never
// reported stale: a partial run proves nothing about it.
func TestDirectiveStaleSkipsInactiveAnalyzers(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module snippet.test\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package snippet

func Idle() int {
	//lint:allow gorolifecycle kept for a suite that is not running
	return 0
}
`
	if err := os.WriteFile(filepath.Join(dir, "snippet.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := analysis.LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Run(mod, []*analysis.Analyzer{analysis.NewClockDiscipline()})
	if n := len(diagsOf(res, "lintdirective")); n != 0 {
		t.Errorf("stale check ran against an inactive analyzer: %v", diagsOf(res, "lintdirective"))
	}
}
