package analysis_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"crayfish/internal/analysis"
)

// The fixture module under testdata/src seeds at least one violation per
// analyzer; `// want <analyzer>[,<analyzer>...]` markers on the seeded
// lines are the expected-findings oracle.

var (
	fixtureOnce sync.Once
	fixtureMod  *analysis.Module
	fixtureRes  analysis.Result
	fixtureErr  error
)

func fixture(t *testing.T) (*analysis.Module, analysis.Result) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureMod, fixtureErr = analysis.LoadModule(filepath.Join("testdata", "src"))
		if fixtureErr == nil {
			fixtureRes = analysis.Run(fixtureMod, analysis.DefaultAnalyzers())
		}
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixture module: %v", fixtureErr)
	}
	return fixtureMod, fixtureRes
}

var wantMarker = regexp.MustCompile(`// want ([a-z]+(?:,[a-z]+)*)\s*$`)

// wantSet scans the fixture sources for want markers, returning
// "relpath:line:analyzer" keys.
func wantSet(t *testing.T, modDir string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	err := filepath.WalkDir(modDir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, _ := filepath.Rel(modDir, path)
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantMarker.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, name := range strings.Split(m[1], ",") {
				want[fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), line, name)] = true
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestSuiteMatchesFixtureMarkers runs the whole default suite over the
// fixture module and requires its Go-file diagnostics to match the want
// markers exactly — every seeded violation is caught, and nothing
// unseeded is flagged.
func TestSuiteMatchesFixtureMarkers(t *testing.T) {
	mod, res := fixture(t)
	want := wantSet(t, mod.Dir)

	got := make(map[string]bool)
	for _, d := range res.Diagnostics {
		if !strings.HasSuffix(d.Pos.Filename, ".go") || d.Analyzer == "lintdirective" {
			continue
		}
		rel, err := filepath.Rel(mod.Dir, d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		got[fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), d.Pos.Line, d.Analyzer)] = true
	}

	for key := range want {
		if !got[key] {
			t.Errorf("seeded violation not caught: %s", key)
		}
	}
	for key := range got {
		if !want[key] {
			t.Errorf("unexpected diagnostic: %s", key)
		}
	}
}

// TestEveryAnalyzerCatchesItsSeed is the per-analyzer acceptance check:
// every analyzer in the default suite reports at least one fixture
// finding.
func TestEveryAnalyzerCatchesItsSeed(t *testing.T) {
	_, res := fixture(t)
	found := make(map[string]int)
	for _, d := range res.Diagnostics {
		found[d.Analyzer]++
	}
	for _, a := range analysis.DefaultAnalyzers() {
		if found[a.Name] == 0 {
			t.Errorf("analyzer %s caught nothing in the fixture module", a.Name)
		}
	}
}

// TestMetricNamesReverseDrift checks the doc→code direction: a
// documented metric that is registered nowhere is reported, anchored at
// the contract document.
func TestMetricNamesReverseDrift(t *testing.T) {
	_, res := fixture(t)
	var docDiags []analysis.Diagnostic
	for _, d := range res.Diagnostics {
		if d.Analyzer == "metricnames" && strings.HasSuffix(d.Pos.Filename, ".md") {
			docDiags = append(docDiags, d)
		}
	}
	if len(docDiags) != 1 {
		t.Fatalf("got %d doc-anchored metricnames diagnostics, want 1: %v", len(docDiags), docDiags)
	}
	if !strings.Contains(docDiags[0].Message, `"app.ghost"`) {
		t.Errorf("reverse-drift diagnostic does not name app.ghost: %s", docDiags[0].Message)
	}
}

// TestDirectiveSuppressionAndGrammar: well-formed lint:allow comments
// suppress (the fixtures carry six, one in block-comment form), a
// directive without a reason is itself reported, and a well-formed
// directive that suppresses nothing is reported as stale.
func TestDirectiveSuppressionAndGrammar(t *testing.T) {
	_, res := fixture(t)
	if res.Suppressed != 6 {
		t.Errorf("suppressed = %d, want 6 (clockdiscipline line+block, gorolifecycle, errchecklite, hotpathalloc, lockdiscipline fixtures)", res.Suppressed)
	}
	var bad []analysis.Diagnostic
	for _, d := range res.Diagnostics {
		if d.Analyzer == "lintdirective" {
			bad = append(bad, d)
		}
	}
	if len(bad) != 2 {
		t.Fatalf("got %d lintdirective diagnostics %v, want 2 (reason-less + stale, both in clock.go)", len(bad), bad)
	}
	for _, d := range bad {
		if !strings.Contains(d.Pos.Filename, "clock.go") {
			t.Errorf("lintdirective diagnostic outside clock.go: %v", d)
		}
	}
	if !strings.Contains(bad[0].Message, "missing reason") {
		t.Errorf("first lintdirective diagnostic should be the reason-less one, got: %s", bad[0].Message)
	}
	if !strings.Contains(bad[1].Message, "suppresses nothing") {
		t.Errorf("second lintdirective diagnostic should be the stale one, got: %s", bad[1].Message)
	}
}

// TestLoaderShape sanity-checks the module loader: module path, package
// discovery, and module-relative paths.
func TestLoaderShape(t *testing.T) {
	mod, _ := fixture(t)
	if mod.Path != "fixture.test" {
		t.Fatalf("module path = %q, want fixture.test", mod.Path)
	}
	for _, want := range []string{
		"fixture.test/telemetry",
		"fixture.test/metrics",
		"fixture.test/internal/core",
		"fixture.test/cmd/tool",
	} {
		if mod.Lookup(want) == nil {
			t.Errorf("package %s not loaded", want)
		}
	}
	core := mod.Lookup("fixture.test/internal/core")
	if core.ModRel != "internal/core" {
		t.Errorf("core.ModRel = %q, want internal/core", core.ModRel)
	}
	if len(core.TypeErrors) == 0 {
		t.Error("core imports github.com/nope/dep; expected recorded type errors")
	}
	if tel := mod.Lookup("fixture.test/telemetry"); len(tel.TypeErrors) != 0 {
		t.Errorf("telemetry should type-check cleanly, got %v", tel.TypeErrors)
	}
}

// TestDiagnosticsSorted: output order is deterministic (file, then line,
// then analyzer).
func TestDiagnosticsSorted(t *testing.T) {
	_, res := fixture(t)
	if !sort.SliceIsSorted(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	}) {
		t.Error("diagnostics are not sorted")
	}
}
