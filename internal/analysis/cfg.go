package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// This file is the control-flow layer under the dataflow analyzers
// (arenadiscipline, borrowretain, lockdiscipline): an intraprocedural CFG
// over a go/ast function body, built from the standard library only. The
// per-statement analyzers from PR 2 judge each node in isolation; the
// ownership and lock-discipline contracts need "on this path" facts —
// recycled on one branch, still live on the other — which only a CFG plus
// fixpoint iteration (dataflow.go) can express.
//
// Granularity contract: Block.Nodes holds only *flat* nodes — simple
// statements (assignments, calls, sends, returns, defers, declarations)
// and the governing expressions of control statements (an if condition, a
// switch tag). Composite statements never appear as nodes, so a transfer
// function may inspect each node fully without double-visiting nested
// bodies. Three wrapper nodes mark spots where flatness needs context:
//
//   - RangeHead: the evaluation of `range X` in a loop head (the body is
//     in successor blocks). Lets analyzers see range-over-channel as a
//     blocking receive without re-walking the body.
//   - SelectHead: a select statement's decision point, carrying whether a
//     default clause exists (a select without default blocks).
//   - CommOp: a comm clause's send/receive inside a chosen select case.
//     The op itself already "won" the select, so it is not a fresh
//     blocking point — but it is still an assignment/use/escape.
//
// Defer semantics: a *ast.DeferStmt node appears in the block where it is
// lexically executed (where the deferred call's arguments are evaluated),
// not at function exit. Analyzers decide what deferral means for their
// lattice (lockdiscipline ignores deferred Unlocks — the lock stays held
// to the end; arenadiscipline treats a deferred Reset/Recycle as covering
// every return).
type CFG struct {
	// Blocks in creation order; Blocks[0] is the entry block.
	Blocks []*Block
	// Exit is the single synthetic exit block (no Nodes). Every return
	// statement's block and every path falling off the end feed it.
	Exit *Block
}

// Block is one basic block: straight-line flat nodes, then a transfer of
// control to one of Succs (an empty Succs list other than Exit means the
// block ends in a return or is the exit itself).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// RangeHead marks a range loop's operand evaluation in the loop-head
// block. Stmt.X is the ranged expression; Stmt.Key/Stmt.Value are
// assigned once per iteration.
type RangeHead struct{ Stmt *ast.RangeStmt }

func (r RangeHead) Pos() token.Pos { return r.Stmt.Pos() }
func (r RangeHead) End() token.Pos { return r.Stmt.X.End() }

// SelectHead marks a select statement's blocking decision point.
type SelectHead struct {
	Stmt       *ast.SelectStmt
	HasDefault bool
}

func (s SelectHead) Pos() token.Pos { return s.Stmt.Pos() }
func (s SelectHead) End() token.Pos { return s.Stmt.Select + 6 }

// CommOp wraps the comm statement of a chosen select case (a send, a
// receive expression, or a receive assignment).
type CommOp struct{ Stmt ast.Stmt }

func (c CommOp) Pos() token.Pos { return c.Stmt.Pos() }
func (c CommOp) End() token.Pos { return c.Stmt.End() }

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}}
	b.g.Exit = &Block{Index: -1}
	entry := b.newBlock()
	b.cur = entry
	b.stmt(body)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
	}
	// Resolve dangling gotos to labels that never appeared (invalid Go,
	// but the loader is lenient): point them at Exit.
	for _, l := range b.labels {
		if l.block == nil {
			for _, src := range l.pendingGotos {
				b.edge(src, b.g.Exit)
			}
		}
	}
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	return b.g
}

type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames (break only)
}

type labelInfo struct {
	block        *Block
	pendingGotos []*Block
}

type cfgBuilder struct {
	g   *CFG
	cur *Block // nil while control is unreachable (after return/branch)

	frames []*loopFrame
	labels map[string]*labelInfo
	// pendingLabel carries a label to attach to the next loop/switch.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// ensure returns the current block, materializing a fresh unreachable one
// when control already left (code after return stays analyzable).
func (b *cfgBuilder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.ensure()
	blk.Nodes = append(blk.Nodes, n)
}

// startBlock finishes cur with an edge into a fresh block and makes that
// block current.
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

func (b *cfgBuilder) label(name string) *labelInfo {
	if b.labels == nil {
		b.labels = make(map[string]*labelInfo)
	}
	l := b.labels[name]
	if l == nil {
		l = &labelInfo{}
		b.labels[name] = l
	}
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.ensure()
		thenBlk := b.newBlock()
		b.edge(head, thenBlk)
		b.cur = thenBlk
		b.stmt(s.Body)
		thenExit := b.cur

		var elseExit *Block
		hasElse := s.Else != nil
		if hasElse {
			elseBlk := b.newBlock()
			b.edge(head, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			elseExit = b.cur
		}

		join := b.newBlock()
		if thenExit != nil {
			b.edge(thenExit, join)
		}
		if hasElse {
			if elseExit != nil {
				b.edge(elseExit, join)
			}
		} else {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			b.add(s.Cond)
		}
		done := b.newBlock()
		if s.Cond != nil {
			b.edge(head, done)
		}
		frame := &loopFrame{label: b.takeLabel(), breakTo: done}
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		frame.continueTo = post
		b.frames = append(b.frames, frame)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			if b.cur != nil {
				b.edge(b.cur, head)
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = done

	case *ast.RangeStmt:
		head := b.startBlock()
		b.add(RangeHead{Stmt: s})
		done := b.newBlock()
		b.edge(head, done)
		frame := &loopFrame{label: b.takeLabel(), breakTo: done, continueTo: head}
		b.frames = append(b.frames, frame)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body, nil)

	case *ast.SelectStmt:
		head := b.ensure()
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		b.add(SelectHead{Stmt: s, HasDefault: hasDefault})
		done := b.newBlock()
		frame := &loopFrame{label: b.takeLabel(), breakTo: done}
		b.frames = append(b.frames, frame)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.add(CommOp{Stmt: cc.Comm})
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			if b.cur != nil {
				b.edge(b.cur, done)
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = done

	case *ast.LabeledStmt:
		l := b.label(s.Label.Name)
		blk := b.startBlock()
		l.block = blk
		for _, src := range l.pendingGotos {
			b.edge(src, blk)
		}
		l.pendingGotos = nil
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
		}
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.GOTO:
			if s.Label != nil {
				l := b.label(s.Label.Name)
				src := b.ensure()
				if l.block != nil {
					b.edge(src, l.block)
				} else {
					l.pendingGotos = append(l.pendingGotos, src)
				}
			}
			b.cur = nil
		case token.BREAK:
			if f := b.findFrame(s.Label, false); f != nil {
				b.edge(b.ensure(), f.breakTo)
			}
			b.cur = nil
		case token.CONTINUE:
			if f := b.findFrame(s.Label, true); f != nil {
				b.edge(b.ensure(), f.continueTo)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by switchClauses (edge to the next case body).
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.ensure(), b.g.Exit)
		b.cur = nil

	case nil:
		// Nothing.

	default:
		// Flat statements: assignments, calls, sends, defers, go, decls,
		// inc/dec, empty.
		b.add(s)
	}
}

// switchClauses builds the case blocks of a (type) switch whose head is
// the current block.
func (b *cfgBuilder) switchClauses(body *ast.BlockStmt, _ *Block) {
	head := b.ensure()
	done := b.newBlock()
	frame := &loopFrame{label: b.takeLabel(), breakTo: done}
	b.frames = append(b.frames, frame)

	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		blk := b.newBlock()
		caseBlocks = append(caseBlocks, blk)
		b.edge(head, blk)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, done)
	}
	for i, cc := range clauses {
		blk := caseBlocks[i]
		b.cur = blk
		for _, e := range cc.List {
			b.add(e)
		}
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(caseBlocks) {
			b.edge(b.ensure(), caseBlocks[i+1])
			b.cur = nil
		}
		if b.cur != nil {
			b.edge(b.cur, done)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// takeLabel consumes the label pending for the next breakable statement.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findFrame resolves a break/continue target frame. Continue skips
// switch/select frames (which have no continue target).
func (b *cfgBuilder) findFrame(label *ast.Ident, isContinue bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if isContinue && f.continueTo == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// dump renders the CFG compactly for tests: one line per block,
// "i: [node kinds] -> succ indexes".
func (g *CFG) dump() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "%d:", blk.Index)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, " %s", nodeKind(n))
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " %d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func nodeKind(n ast.Node) string {
	switch n := n.(type) {
	case RangeHead:
		return "range"
	case SelectHead:
		if n.HasDefault {
			return "select(default)"
		}
		return "select"
	case CommOp:
		return "comm"
	case *ast.AssignStmt:
		return "assign"
	case *ast.ExprStmt:
		return "expr"
	case *ast.ReturnStmt:
		return "return"
	case *ast.SendStmt:
		return "send"
	case *ast.DeferStmt:
		return "defer"
	case *ast.GoStmt:
		return "go"
	case *ast.BranchStmt:
		return strings.ToLower(n.Tok.String())
	case *ast.DeclStmt:
		return "decl"
	case *ast.IncDecStmt:
		return "incdec"
	case ast.Expr:
		return "cond"
	default:
		return fmt.Sprintf("%T", n)
	}
}
