// Package telemetry mirrors the shape of crayfish/internal/telemetry:
// the metricnames analyzer identifies registrations by the method set of
// a type named Registry in a package named telemetry, so the fixture
// module supplies its own.
package telemetry

// Counter is a stub metric handle.
type Counter struct{}

// Gauge is a stub metric handle.
type Gauge struct{}

// Histogram is a stub metric handle.
type Histogram struct{}

// Registry is the stub registry.
type Registry struct{}

// Counter returns a counter handle.
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Gauge returns a gauge handle.
func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

// Histogram returns a histogram handle.
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }
