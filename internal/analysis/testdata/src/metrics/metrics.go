// Package metrics seeds metricnames violations: undocumented names,
// kind mismatches, undocumented dynamic prefixes, and non-constant
// names, next to compliant registrations.
package metrics

import "fixture.test/telemetry"

const latencyName = "app.latency_ns"

// Register exercises every registration shape the analyzer classifies.
func Register(reg *telemetry.Registry, topic string) {
	reg.Counter("app.requests")           // documented: ok
	reg.Histogram(latencyName)            // documented via named constant: ok
	reg.Gauge("queue.depth." + topic)     // documented wildcard family: ok
	reg.Counter("app.rogue")              // want metricnames
	reg.Gauge("app.requests")             // want metricnames
	reg.Counter("rogue.prefix." + topic)  // want metricnames
	reg.Counter(topic)                    // want metricnames
	reg.Histogram("queue.depth." + topic) // want metricnames
}
