// Package goro seeds gorolifecycle violations: fire-and-forget
// goroutines next to each joined shape the analyzer recognises.
package goro

import "sync"

func work() {}

// FireAndForget spawns with no join anywhere in scope.
func FireAndForget() {
	go work()   // want gorolifecycle
	go func() { // want gorolifecycle
		work()
	}()
}

// Annotated is a sanctioned daemon.
func Annotated() {
	//lint:allow gorolifecycle fixture: process-lifetime daemon, reaped at exit
	go work()
}

// JoinedByWaitGroup uses the wg.Add(1); go f() idiom.
func JoinedByWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// JoinedByMethodCall is the same idiom with a named method: the Add in
// the enclosing scope is the visible join.
func JoinedByMethodCall(wg *sync.WaitGroup) {
	wg.Add(1)
	go work()
}

// JoinedByClose signals termination by closing a channel the owner can
// receive on.
func JoinedByClose() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// JoinedBySend delivers a result, which the owner must receive.
func JoinedBySend() <-chan int {
	out := make(chan int, 1)
	go func() {
		work()
		out <- 1
	}()
	return out
}

// supervisor mimics the external-serving restart supervisor: Restart
// relaunches the daemon goroutine after a crash, and must keep the
// WaitGroup join visible each time.
type supervisor struct {
	wg   sync.WaitGroup
	done chan struct{}
}

// Restart is the joined restart shape: every relaunch re-arms the
// WaitGroup before spawning, so Close can still wait the daemon out.
func (s *supervisor) Restart() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
}

// RestartLeaky relaunches without re-arming any join — the classic
// restart bug: the first incarnation was waited on, the second leaks.
func (s *supervisor) RestartLeaky() {
	go work() // want gorolifecycle
}

// RestartSignalled is the channel-signalled restart shape: the fresh
// done channel closed by the goroutine body is the visible join.
func (s *supervisor) RestartSignalled() {
	s.done = make(chan struct{})
	done := s.done
	go func() {
		defer close(done)
		work()
	}()
}

// fetcherFleet mimics the cluster node's replication catch-up loops:
// one fetcher goroutine per followed partition, each with its own stop
// channel, all joined through the fleet WaitGroup.
type fetcherFleet struct {
	wg    sync.WaitGroup
	stops map[int]chan struct{}
}

// Reconcile is the joined replication-fetch shape: retargeting the
// followed set re-arms the WaitGroup before every spawn, so Close can
// wait the whole fleet out after closing the stop channels.
func (f *fetcherFleet) Reconcile(parts []int) {
	for _, p := range parts {
		stop := make(chan struct{})
		f.stops[p] = stop
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			fetchLoop(stop)
		}()
	}
}

// ReconcileLeaky swaps in a replacement fetcher with no join — the
// leadership-change bug: the old loop was waited on, the replacement
// outlives Close.
func (f *fetcherFleet) ReconcileLeaky(p int) {
	stop := make(chan struct{})
	f.stops[p] = stop
	go fetchLoop(stop) // want gorolifecycle
}

// Close stops every fetcher, then joins the fleet.
func (f *fetcherFleet) Close() {
	for _, stop := range f.stops {
		close(stop)
	}
	f.wg.Wait()
}

func fetchLoop(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
			work()
		}
	}
}
