// Package goro seeds gorolifecycle violations: fire-and-forget
// goroutines next to each joined shape the analyzer recognises.
package goro

import "sync"

func work() {}

// FireAndForget spawns with no join anywhere in scope.
func FireAndForget() {
	go work()   // want gorolifecycle
	go func() { // want gorolifecycle
		work()
	}()
}

// Annotated is a sanctioned daemon.
func Annotated() {
	//lint:allow gorolifecycle fixture: process-lifetime daemon, reaped at exit
	go work()
}

// JoinedByWaitGroup uses the wg.Add(1); go f() idiom.
func JoinedByWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// JoinedByMethodCall is the same idiom with a named method: the Add in
// the enclosing scope is the visible join.
func JoinedByMethodCall(wg *sync.WaitGroup) {
	wg.Add(1)
	go work()
}

// JoinedByClose signals termination by closing a channel the owner can
// receive on.
func JoinedByClose() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// JoinedBySend delivers a result, which the owner must receive.
func JoinedBySend() <-chan int {
	out := make(chan int, 1)
	go func() {
		work()
		out <- 1
	}()
	return out
}

// supervisor mimics the external-serving restart supervisor: Restart
// relaunches the daemon goroutine after a crash, and must keep the
// WaitGroup join visible each time.
type supervisor struct {
	wg   sync.WaitGroup
	done chan struct{}
}

// Restart is the joined restart shape: every relaunch re-arms the
// WaitGroup before spawning, so Close can still wait the daemon out.
func (s *supervisor) Restart() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
}

// RestartLeaky relaunches without re-arming any join — the classic
// restart bug: the first incarnation was waited on, the second leaks.
func (s *supervisor) RestartLeaky() {
	go work() // want gorolifecycle
}

// RestartSignalled is the channel-signalled restart shape: the fresh
// done channel closed by the goroutine body is the visible join.
func (s *supervisor) RestartSignalled() {
	s.done = make(chan struct{})
	done := s.done
	go func() {
		defer close(done)
		work()
	}()
}
