// Package goro seeds gorolifecycle violations: fire-and-forget
// goroutines next to each joined shape the analyzer recognises.
package goro

import "sync"

func work() {}

// FireAndForget spawns with no join anywhere in scope.
func FireAndForget() {
	go work()   // want gorolifecycle
	go func() { // want gorolifecycle
		work()
	}()
}

// Annotated is a sanctioned daemon.
func Annotated() {
	//lint:allow gorolifecycle fixture: process-lifetime daemon, reaped at exit
	go work()
}

// JoinedByWaitGroup uses the wg.Add(1); go f() idiom.
func JoinedByWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// JoinedByMethodCall is the same idiom with a named method: the Add in
// the enclosing scope is the visible join.
func JoinedByMethodCall(wg *sync.WaitGroup) {
	wg.Add(1)
	go work()
}

// JoinedByClose signals termination by closing a channel the owner can
// receive on.
func JoinedByClose() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// JoinedBySend delivers a result, which the owner must receive.
func JoinedBySend() <-chan int {
	out := make(chan int, 1)
	go func() {
		work()
		out <- 1
	}()
	return out
}
