// Package importscmd seeds the nothing-imports-cmd layering violation.
package importscmd

import (
	tool "fixture.test/cmd/tool" // want layering
)

// Name leaks a binary's internals into a library.
const Name = tool.Exported
