// Package grpcish is the fixture stand-in for the module's in-process
// RPC layer: lockdiscipline treats any call into it as a network call.
package grpcish

// Invoke performs a unary call over the in-process wire.
func Invoke(method string) error {
	_ = method
	return nil
}
