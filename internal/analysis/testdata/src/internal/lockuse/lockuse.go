// Package lockuse seeds lockdiscipline violations: a two-mutex
// acquisition-order cycle, a self-relock, and blocking operations
// (send, receive-only select, sleep, WaitGroup.Wait, RPC) inside
// critical sections — plus the clean shapes (copy-then-send,
// select-with-default, consistent nesting) that must stay silent.
package lockuse

import (
	"sync"
	"time"

	"fixture.test/internal/grpcish"
)

type table struct {
	mu   sync.Mutex
	rows map[string]int
}

type journal struct {
	mu      sync.Mutex
	entries []string
}

// Promote nests journal.mu inside table.mu — fine on its own, but
// Audit below nests them the other way around, closing the cycle.
func Promote(t *table, j *journal, k string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j.mu.Lock()
	j.entries = append(j.entries, k)
	j.mu.Unlock()
	t.rows[k]++
}

// Audit nests table.mu inside journal.mu: the opposite order to
// Promote. The cycle diagnostic anchors here (the journal→table edge
// sorts first).
func Audit(t *table, j *journal) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	t.mu.Lock() // want lockdiscipline
	n := len(t.rows)
	t.mu.Unlock()
	return n
}

// Relock takes the same mutex twice on one path.
func Relock(t *table) {
	t.mu.Lock()
	t.mu.Lock() // want lockdiscipline
	t.rows["twice"]++
	t.mu.Unlock()
	t.mu.Unlock()
}

// SendUnderLock sends on a channel inside the critical section.
func SendUnderLock(t *table, ch chan int) {
	t.mu.Lock()
	ch <- len(t.rows) // want lockdiscipline
	t.mu.Unlock()
}

// PollUnderLock blocks on a select with no default while holding the
// lock.
func PollUnderLock(t *table, ch chan int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	select { // want lockdiscipline
	case v := <-ch:
		return v
	}
}

// SleepUnderLock holds the lock across a sleep.
func SleepUnderLock(j *journal) {
	j.mu.Lock()
	defer j.mu.Unlock()
	time.Sleep(time.Millisecond) // want lockdiscipline
}

// WaitUnderLock holds the lock across a WaitGroup join.
func WaitUnderLock(t *table, wg *sync.WaitGroup) {
	t.mu.Lock()
	defer t.mu.Unlock()
	wg.Wait() // want lockdiscipline
}

// CallUnderLock holds the lock across an RPC.
func CallUnderLock(t *table) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return grpcish.Invoke("scorer/Predict") // want lockdiscipline
}

// PacedRetire documents a justified hold across a bounded pause.
func PacedRetire(j *journal) {
	j.mu.Lock()
	defer j.mu.Unlock()
	time.Sleep(time.Microsecond) //lint:allow lockdiscipline fixture: bounded pacing pause, justified hold
	j.entries = j.entries[:0]
}

// Snapshot is the blessed shape: copy under the lock, send after
// releasing it.
func Snapshot(t *table, ch chan int) {
	t.mu.Lock()
	n := len(t.rows)
	t.mu.Unlock()
	ch <- n
}

// TryDrain never blocks under the lock: the select has a default.
func TryDrain(t *table, ch chan int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case v := <-ch:
		t.rows["last"] = v
	default:
	}
}
