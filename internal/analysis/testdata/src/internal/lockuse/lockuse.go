// Package lockuse seeds lockdiscipline violations: two-mutex
// acquisition-order cycles, a self-relock, and blocking operations
// (send, receive-only select, sleep, WaitGroup.Wait, RPC) inside
// critical sections — plus the clean shapes (copy-then-send,
// select-with-default, consistent nesting, and the cluster layer's
// election nesting and high-watermark wait) that must stay silent.
package lockuse

import (
	"sync"
	"time"

	"fixture.test/internal/grpcish"
)

type table struct {
	mu   sync.Mutex
	rows map[string]int
}

type journal struct {
	mu      sync.Mutex
	entries []string
}

// Promote nests journal.mu inside table.mu — fine on its own, but
// Audit below nests them the other way around, closing the cycle.
func Promote(t *table, j *journal, k string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j.mu.Lock()
	j.entries = append(j.entries, k)
	j.mu.Unlock()
	t.rows[k]++
}

// Audit nests table.mu inside journal.mu: the opposite order to
// Promote. The cycle diagnostic anchors here (the journal→table edge
// sorts first).
func Audit(t *table, j *journal) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	t.mu.Lock() // want lockdiscipline
	n := len(t.rows)
	t.mu.Unlock()
	return n
}

// Relock takes the same mutex twice on one path.
func Relock(t *table) {
	t.mu.Lock()
	t.mu.Lock() // want lockdiscipline
	t.rows["twice"]++
	t.mu.Unlock()
	t.mu.Unlock()
}

// SendUnderLock sends on a channel inside the critical section.
func SendUnderLock(t *table, ch chan int) {
	t.mu.Lock()
	ch <- len(t.rows) // want lockdiscipline
	t.mu.Unlock()
}

// PollUnderLock blocks on a select with no default while holding the
// lock.
func PollUnderLock(t *table, ch chan int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	select { // want lockdiscipline
	case v := <-ch:
		return v
	}
}

// SleepUnderLock holds the lock across a sleep.
func SleepUnderLock(j *journal) {
	j.mu.Lock()
	defer j.mu.Unlock()
	time.Sleep(time.Millisecond) // want lockdiscipline
}

// WaitUnderLock holds the lock across a WaitGroup join.
func WaitUnderLock(t *table, wg *sync.WaitGroup) {
	t.mu.Lock()
	defer t.mu.Unlock()
	wg.Wait() // want lockdiscipline
}

// CallUnderLock holds the lock across an RPC.
func CallUnderLock(t *table) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return grpcish.Invoke("scorer/Predict") // want lockdiscipline
}

// PacedRetire documents a justified hold across a bounded pause.
func PacedRetire(j *journal) {
	j.mu.Lock()
	defer j.mu.Unlock()
	time.Sleep(time.Microsecond) //lint:allow lockdiscipline fixture: bounded pacing pause, justified hold
	j.entries = j.entries[:0]
}

// Snapshot is the blessed shape: copy under the lock, send after
// releasing it.
func Snapshot(t *table, ch chan int) {
	t.mu.Lock()
	n := len(t.rows)
	t.mu.Unlock()
	ch <- n
}

// TryDrain never blocks under the lock: the select has a default.
func TryDrain(t *table, ch chan int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case v := <-ch:
		t.rows["last"] = v
	default:
	}
}

// seat and replica mimic the cluster control plane: the controller
// seat's mutex nests outside each replica's, never the other way.
type seat struct {
	mu      sync.Mutex
	leaders map[int]int
}

type replica struct {
	mu  sync.Mutex
	end int
}

// Elect is the clean election nesting — seat.mu outside replica.mu,
// the one order every control-plane path uses: longest log in the
// in-sync set wins, ties to the lowest id.
func Elect(s *seat, replicas []*replica, p int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	best, bestEnd := -1, -1
	for i, r := range replicas {
		r.mu.Lock()
		end := r.end
		r.mu.Unlock()
		if end > bestEnd {
			best, bestEnd = i, end
		}
	}
	s.leaders[p] = best
}

// Announce nests seat.mu inside replica.mu — a replica upcalling into
// the control plane while holding its own state, the opposite order to
// Elect. The cycle diagnostic anchors here (the replica→seat edge
// sorts first).
func Announce(s *seat, r *replica, p int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.mu.Lock() // want lockdiscipline
	s.leaders[p] = r.end
	s.mu.Unlock()
}

// hwState mimics a partition's replication state: the high-watermark
// plus the signal channel its advance closes and re-arms.
type hwState struct {
	mu   sync.Mutex
	hw   int
	hwCh chan struct{}
}

// AwaitHW is the blessed ack-wait shape: capture the signal channel
// under the lock, release, then block — the advance path can take the
// lock to close and re-arm the channel.
func AwaitHW(st *hwState, offset int) {
	for {
		st.mu.Lock()
		if st.hw > offset {
			st.mu.Unlock()
			return
		}
		ch := st.hwCh
		st.mu.Unlock()
		<-ch
	}
}

// AwaitHWUnderLock blocks on the signal while still holding the state
// lock — deadlock: the advance path needs the same lock to close the
// channel.
func AwaitHWUnderLock(st *hwState, offset int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for st.hw <= offset {
		<-st.hwCh // want lockdiscipline
	}
}
