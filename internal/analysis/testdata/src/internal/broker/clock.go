// Package broker seeds clockdiscipline violations: raw wall-clock reads
// and sleeps inside a timestamp-path package, plus the annotated escape
// hatch and a malformed directive.
package broker

import "time"

// Stamp reads the wall clock instead of an injected one.
func Stamp() time.Time {
	return time.Now() // want clockdiscipline
}

// Wait sleeps twice: once raw, once with a justified annotation.
func Wait(d time.Duration) {
	time.Sleep(d) // want clockdiscipline
	//lint:allow clockdiscipline fixture: the modelled delay itself
	time.Sleep(d)
}

// DefaultClock takes the function value, not a call — still a raw
// clock dependency.
var DefaultClock = time.Now // want clockdiscipline

// Poll uses the banned convenience wrappers.
func Poll(d time.Duration) {
	<-time.After(d) // want clockdiscipline
	//lint:allow clockdiscipline
	<-time.Tick(d) // want clockdiscipline
}

// Fetch suppresses with the block-comment directive form.
func Fetch() time.Time {
	return time.Now() /*lint:allow clockdiscipline fixture: block form*/
}

// Idle carries a well-formed directive that suppresses nothing: stale.
func Idle() int {
	//lint:allow clockdiscipline nothing below reads the clock
	return len("idle")
}
