// Package tensor seeds a layering violation: a base (leaf) package
// importing a module-internal package.
package tensor

import (
	"fixture.test/internal/sps/fakeengine" // want layering
)

// UsesEngine drags a higher layer into a base package.
func UsesEngine() string { return fakeengine.Name() }
