package tensor

// This file seeds hotpathalloc violations: allocations inside an
// Into-variant kernel and inside a hot helper, plus one deliberately
// annotated cold-path allocation that must be suppressed.

// Tensor is a minimal stand-in for the real tensor type.
type Tensor struct{ data []float32 }

// New allocates a tensor; allocating here is fine — New is the cold
// constructor, not a hot kernel.
func New(n int) *Tensor { return &Tensor{data: make([]float32, n)} }

// ScaleInto is an Into-variant kernel: allocations inside are hot-path
// violations.
func ScaleInto(dst, src *Tensor, k float32) {
	tmp := make([]float32, len(src.data)) // want hotpathalloc
	t := New(len(src.data))               // want hotpathalloc
	//lint:allow hotpathalloc seeded suppression: a documented cold-path scratch
	warm := make([]float32, 8)
	_, _ = tmp, t
	_ = warm
	for i, v := range src.data {
		dst.data[i] = v * k
	}
}

// im2col is on the hot-helper allow-list even without the Into suffix.
func im2col(src []float32) []float32 {
	col := make([]float32, len(src)) // want hotpathalloc
	copy(col, src)
	return col
}

// QScaleInto seeds the quantized-path datatypes: int8 value and int32
// accumulator makes inside an Into-variant kernel are violations too.
func QScaleInto(dst []int8, acc []int32) {
	q := make([]int8, len(dst))  // want hotpathalloc
	a := make([]int32, len(acc)) // want hotpathalloc
	_, _ = q, a
}

// qMatMulPacked is on the hot-helper allow-list; packed-word scratch
// must come from the arena.
func qMatMulPacked(lhs []uint64) []uint64 {
	w := make([]uint64, len(lhs)) // want hotpathalloc
	copy(w, lhs)
	return w
}

// PackRHS is a cold packer: growing the packed buffer here is fine.
func PackRHS(n int) []uint64 { return make([]uint64, n) }

// attentionRows is on the hot-helper allow-list: the fused-attention
// lane kernel's accumulator and score strips come from caller scratch.
func attentionRows(src []float32) []float32 {
	lane := make([]float32, len(src)) // want hotpathalloc
	copy(lane, src)
	return lane
}

// poolAttention is on the hot-helper allow-list (the attention fan-out).
func poolAttention(src []float32) {
	scr := make([]float32, len(src)) // want hotpathalloc
	_ = scr
}

// softmaxRows is on the hot-helper allow-list (the shared softmax row
// loop).
func softmaxRows(dst []float32) []float32 {
	rows := make([]float32, len(dst)) // want hotpathalloc
	copy(rows, dst)
	return rows
}
