package tensor

// Arena is a minimal stand-in for the real buffer arena: the
// arenadiscipline analyzer recognizes the Get/Wrap/Recycle/Reset method
// set on a type named Arena in a package ending internal/tensor.
type Arena struct {
	free []*Tensor
}

// Get hands out a buffer (unspecified contents) that stays valid until
// Recycle or Reset.
func (a *Arena) Get(n int) *Tensor {
	if len(a.free) > 0 {
		t := a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
		return t
	}
	return New(n)
}

// Wrap views caller-owned data through an arena header.
func (a *Arena) Wrap(data []float32) *Tensor { return &Tensor{data: data} }

// Recycle returns one buffer to the free list early.
func (a *Arena) Recycle(t *Tensor) { a.free = append(a.free, t) }

// Reset reclaims every outstanding buffer.
func (a *Arena) Reset() { a.free = a.free[:0] }

// Data exposes the backing slice.
func (t *Tensor) Data() []float32 { return t.data }

// Fill writes v everywhere.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}
