// Package lending seeds borrowretain violations: aliases of //lint:lent
// parameters escaping through struct-field and package-variable stores,
// channel sends, and goroutine handoffs — plus the blessed
// read/scratch/copy patterns that must stay silent.
package lending

import "sync"

var stash []float32

type accum struct{ buf []float32 }

// Sum only reads the lent record: clean.
//
//lint:lent in
func Sum(in []float32) float32 {
	var s float32
	for _, v := range in {
		s += v
	}
	return s
}

// Retain stores the lent record into a longer-lived struct.
//
//lint:lent rec
func Retain(a *accum, rec []float32) {
	a.buf = rec // want borrowretain
}

// Publish leaks a subslice into a package variable (a subslice shares
// the backing array) and sends the record to another goroutine.
//
//lint:lent rec
func Publish(rec []float32, ch chan []float32) {
	stash = rec[:1] // want borrowretain
	ch <- rec       // want borrowretain
}

// Handoff gives the record to goroutines, by argument and by capture.
//
//lint:lent rec
func Handoff(rec []float32, done chan float32) {
	var wg sync.WaitGroup
	wg.Add(1)
	go drain(rec, &wg) // want borrowretain
	go func() {
		done <- rec[0] // want borrowretain
	}()
	wg.Wait()
}

func drain(rec []float32, wg *sync.WaitGroup) {
	_ = rec
	wg.Done()
}

// AliasedRetain launders the record through a local alias before
// storing it; the store is only reachable with the alias intact on one
// path, which is exactly what the dataflow join must catch.
//
//lint:lent rec
func AliasedRetain(a *accum, rec []float32, cond bool) {
	tmp := rec
	if cond {
		tmp = nil
	}
	a.buf = tmp // want borrowretain
}

// Scratch is the blessed pattern: mutate the lent record in place as
// scratch, copy the result out, hand the record straight back.
//
//lint:lent rec
func Scratch(rec []float32) []float32 {
	for i := range rec {
		rec[i] *= 2
	}
	out := make([]float32, len(rec))
	copy(out, rec)
	return out
}

// BadName's directive names a parameter that does not exist.
//
//lint:lent nosuch
func BadName(rec []float32) float32 { // want borrowretain
	return rec[0]
}

// MissingName's directive names nothing at all.
//
//lint:lent
func MissingName(rec []float32) float32 { // want borrowretain
	return rec[0]
}
