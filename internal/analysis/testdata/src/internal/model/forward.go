// Package model seeds hotpathalloc violations in a hot model file:
// forward.go and plan.go are allocation-restricted in their entirety.
package model

import (
	"fixture.test/internal/tensor"
)

// Forward allocates per call instead of drawing from a plan arena.
func Forward(n int) *tensor.Tensor {
	buf := make([]float32, n) // want hotpathalloc
	_ = buf
	return tensor.New(n) // want hotpathalloc
}
