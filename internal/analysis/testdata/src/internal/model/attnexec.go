package model

// attnexec.go is allocation-restricted in its entirety, like forward.go
// and plan.go: the compiled plan's transformer-operator dispatch lives
// here.

import (
	"fixture.test/internal/tensor"
)

// AttnInto allocates a lane strip per call instead of using the
// execution state's pre-sized attention scratch.
func AttnInto(n int) *tensor.Tensor {
	lane := make([]float32, n) // want hotpathalloc
	_ = lane
	return tensor.New(n) // want hotpathalloc
}
