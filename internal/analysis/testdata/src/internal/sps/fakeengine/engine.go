// Package fakeengine stands in for an SPS engine package
// (internal/sps/<engine>) in layering fixtures.
package fakeengine

// Name identifies the fake engine.
func Name() string { return "fakeengine" }
