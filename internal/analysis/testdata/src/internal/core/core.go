// Package core seeds two layering violations: the engine-agnostic
// driver importing a concrete engine, and a third-party dependency.
package core

import (
	"github.com/nope/dep" // want layering

	"fixture.test/internal/sps/fakeengine" // want layering
)

// Run names the engine directly instead of going through a registry.
func Run() string { return fakeengine.Name() + dep.Version }
