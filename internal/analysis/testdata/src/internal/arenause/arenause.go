// Package arenause seeds arenadiscipline violations: use-after-recycle
// (straight-line and path-joined), double recycle, and a buffer leaked on
// an early-return path — plus the clean shapes (ping-pong, deferred
// Reset, ownership transfer) that must stay silent.
package arenause

import (
	"errors"

	"fixture.test/internal/tensor"
)

var errFixture = errors.New("fixture")

// UseAfterRecycle reads a buffer after returning it to the arena.
func UseAfterRecycle(a *tensor.Arena) float32 {
	t := a.Get(4)
	t.Fill(1)
	a.Recycle(t)
	return t.Data()[0] // want arenadiscipline
}

// RecycleOnOnePath recycles on the then-branch only: the use after the
// join may see a recycled buffer, and the unconditional Recycle may be
// the second one.
func RecycleOnOnePath(a *tensor.Arena, cond bool) {
	t := a.Get(8)
	if cond {
		a.Recycle(t)
	}
	t.Fill(0)    // want arenadiscipline
	a.Recycle(t) // want arenadiscipline
}

// LeakOnEarlyReturn recycles on the happy path but forgets the error
// path.
func LeakOnEarlyReturn(a *tensor.Arena, fail bool) error {
	t := a.Get(2)
	t.Fill(3)
	if fail {
		return errFixture // want arenadiscipline
	}
	a.Recycle(t)
	return nil
}

// UseAfterReset reads a buffer invalidated by Reset.
func UseAfterReset(a *tensor.Arena) float32 {
	t := a.Get(4)
	a.Reset()
	return t.Data()[0] // want arenadiscipline
}

// PingPong is the clean layer-by-layer pattern: recycle the dead input,
// move to the fresh output, transfer the final buffer to the caller.
func PingPong(a *tensor.Arena, rounds int) *tensor.Tensor {
	x := a.Get(4)
	for i := 0; i < rounds; i++ {
		y := a.Get(4)
		y.Fill(float32(i))
		a.Recycle(x)
		x = y
	}
	return x
}

// DeferredReset is the Reset-at-end pattern: every buffer is reclaimed on
// every path by the deferred Reset, so nothing here is a leak.
func DeferredReset(a *tensor.Arena, fail bool) error {
	defer a.Reset()
	t := a.Get(4)
	t.Fill(1)
	if fail {
		return errFixture
	}
	u := a.Get(4)
	u.Fill(2)
	return nil
}

type holder struct{ buf *tensor.Tensor }

// StoreTransfers stores the buffer into a struct: ownership moved, the
// early return below is not a leak of a tracked buffer.
func StoreTransfers(a *tensor.Arena, h *holder, done bool) {
	t := a.Get(4)
	h.buf = t
	if done {
		return
	}
	h.buf.Fill(0)
}
