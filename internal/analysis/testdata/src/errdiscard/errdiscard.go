// Package errdiscard seeds errchecklite violations: module-internal
// errors dropped on the floor, next to the allowed shapes.
package errdiscard

import "errors"

// Fail always fails.
func Fail() error { return errors.New("nope") }

// Pair returns a value and an error.
func Pair() (int, error) { return 0, errors.New("nope") }

type closer struct{}

// Close fails like a real resource.
func (closer) Close() error { return errors.New("nope") }

// Discards collects the flagged shapes.
func Discards() {
	Fail()       // want errchecklite
	Pair()       // want errchecklite
	defer Fail() // want errchecklite
	var c closer
	c.Close() // want errchecklite
	//lint:allow errchecklite fixture: best-effort cleanup
	Fail()
}

// Allowed collects the accepted shapes: handled, explicitly discarded,
// and value-only calls.
func Allowed() error {
	if err := Fail(); err != nil {
		return err
	}
	_ = Fail()
	_, _ = Pair()
	noError()
	return nil
}

func noError() {}
