// Command tool exists so a library package can commit the sin of
// importing cmd/... in the layering fixtures.
package main

// Exported is what importscmd reaches for.
const Exported = "tool"

func main() {}
