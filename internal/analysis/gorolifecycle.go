package analysis

import (
	"go/ast"
	"go/types"
)

// NewGoroLifecycle flags fire-and-forget goroutines. Every `go`
// statement in production code must have a join visible at the spawn
// site — the dynamic counterpart is internal/testutil/leakcheck, which
// fails test binaries that exit with stray goroutines. A goroutine
// counts as joined when any of these holds:
//
//   - the enclosing function also calls Add on a sync.WaitGroup (the
//     wg.Add(1); go f() idiom — f is expected to Done);
//   - the spawned function literal's body calls Done or Wait on a
//     sync.WaitGroup;
//   - the literal's body closes a channel or sends on a channel (its
//     termination is observable by the owner);
//
// otherwise the goroutine's lifetime is invisible to its creator: Stop
// can return while it still runs, and under churn (per-run engines,
// per-request handlers) it is a leak. Intentional daemons carry a
// //lint:allow gorolifecycle annotation naming their actual join.
func NewGoroLifecycle() *Analyzer {
	a := &Analyzer{
		Name: "gorolifecycle",
		Doc:  "every go statement needs a visible join (WaitGroup, channel close/send) or an annotation",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.TypesInfo
		pass.eachFile(func(f *ast.File) {
			// Walk maintaining the innermost enclosing function body, so
			// each go statement can be judged against its spawn scope.
			var visit func(n ast.Node, encl ast.Node)
			visit = func(n ast.Node, encl ast.Node) {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						walkChildren(n.Body, n, visit)
					}
					return
				case *ast.FuncLit:
					walkChildren(n.Body, n, visit)
					return
				case *ast.GoStmt:
					if !goroutineJoined(info, n, encl) {
						pass.Report(n.Pos(), "fire-and-forget goroutine: no WaitGroup Add/Done, channel close, or channel send ties its lifetime to the enclosing scope (join it, or annotate //lint:allow gorolifecycle <reason>)")
					}
				}
				walkChildren(n, encl, visit)
			}
			walkChildren(f, nil, visit)
		})
	}
	return a
}

// walkChildren applies visit to the direct children of n with the given
// enclosing function node.
func walkChildren(n ast.Node, encl ast.Node, visit func(ast.Node, ast.Node)) {
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil || child == n {
			return child == n
		}
		visit(child, encl)
		return false
	})
}

// goroutineJoined applies the join heuristics to one go statement.
func goroutineJoined(info *types.Info, g *ast.GoStmt, encl ast.Node) bool {
	if encl != nil && bodyOf(encl) != nil && callsWaitGroup(info, bodyOf(encl), "Add") {
		return true
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			joined = true
		case *ast.CallExpr:
			if ident, ok := n.Fun.(*ast.Ident); ok && ident.Name == "close" {
				joined = true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Done" || sel.Sel.Name == "Wait") &&
				isWaitGroup(info, sel.X) {
				joined = true
			}
		}
		return !joined
	})
	return joined
}

func bodyOf(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// callsWaitGroup reports whether body contains a call to the named
// method on a sync.WaitGroup.
func callsWaitGroup(info *types.Info, body *ast.BlockStmt, method string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		if isWaitGroup(info, sel.X) {
			found = true
		}
		return !found
	})
	return found
}

// isWaitGroup reports whether expr's type is sync.WaitGroup (possibly
// behind a pointer). Without type information it falls back to the
// conventional receiver spelling (an identifier containing "wg" or
// "wait"), so fixtures parse-only still behave sensibly.
func isWaitGroup(info *types.Info, expr ast.Expr) bool {
	if info != nil {
		if tv, ok := info.Types[expr]; ok && tv.Type != nil {
			t := tv.Type
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if ok {
				obj := named.Obj()
				return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
			}
			return false
		}
	}
	ident, ok := expr.(*ast.Ident)
	return ok && ident.Name == "wg"
}
