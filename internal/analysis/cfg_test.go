package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of a single function declaration.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "cfg.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// reach computes the set of blocks reachable from the entry block.
func reach(g *CFG) map[int]bool {
	seen := map[int]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	if len(g.Blocks) > 0 {
		walk(g.Blocks[0])
	}
	return seen
}

func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // exact dump
	}{
		{
			name: "straightline",
			body: "x := 1\ny := x\n_ = y",
			want: "0: assign assign assign -> 1\n1:\n",
		},
		{
			name: "if-no-else",
			body: "if c {\nf()\n}\ng()",
			want: "0: cond -> 1 2\n1: expr -> 2\n2: expr -> 3\n3:\n",
		},
		{
			name: "if-else-return",
			body: "if c {\nreturn\n} else {\ng()\n}\nh()",
			want: "0: cond -> 1 2\n1: return -> 4\n2: expr -> 3\n3: expr -> 4\n4:\n",
		},
		{
			name: "for-full",
			body: "for i := 0; i < n; i++ {\nf(i)\n}\ng()",
			want: "0: assign -> 1\n1: cond -> 2 4\n2: expr -> 5\n3: incdec -> 1\n4: expr -> 3\n5:\n",
		},
		{
			name: "for-break-continue",
			body: "for {\nif a {\nbreak\n}\nif b {\ncontinue\n}\nf()\n}\ng()",
			want: "0: -> 1\n1: -> 3\n2: expr -> 8\n3: cond -> 4 5\n4: break -> 2\n5: cond -> 6 7\n6: continue -> 1\n7: expr -> 1\n8:\n",
		},
		{
			name: "range",
			body: "for _, v := range xs {\nf(v)\n}\ng()",
			want: "0: -> 1\n1: range -> 2 3\n2: expr -> 4\n3: expr -> 1\n4:\n",
		},
		{
			name: "switch-fallthrough-default",
			body: "switch x {\ncase 1:\nf()\nfallthrough\ncase 2:\ng()\ndefault:\nh()\n}\nq()",
			want: "0: cond -> 2 3 4\n1: expr -> 5\n2: cond expr fallthrough -> 3\n3: cond expr -> 1\n4: expr -> 1\n5:\n",
		},
		{
			name: "switch-no-default",
			body: "switch x {\ncase 1:\nf()\n}\ng()",
			want: "0: cond -> 2 1\n1: expr -> 3\n2: cond expr -> 1\n3:\n",
		},
		{
			name: "typeswitch",
			body: "switch v := x.(type) {\ncase int:\nf(v)\ndefault:\ng()\n}",
			want: "0: assign -> 2 3\n1: -> 4\n2: cond expr -> 1\n3: expr -> 1\n4:\n",
		},
		{
			name: "select-with-default",
			body: "select {\ncase v := <-ch:\nf(v)\ncase ch2 <- x:\ng()\ndefault:\nh()\n}\nq()",
			want: "0: select(default) -> 2 3 4\n1: expr -> 5\n2: comm expr -> 1\n3: comm expr -> 1\n4: expr -> 1\n5:\n",
		},
		{
			name: "select-blocking",
			body: "select {\ncase <-ch:\nf()\n}",
			want: "0: select -> 2\n1: -> 3\n2: comm expr -> 1\n3:\n",
		},
		{
			name: "goto-label",
			body: "i := 0\nloop:\ni++\nif i < 3 {\ngoto loop\n}\nf()",
			want: "0: assign -> 1\n1: incdec cond -> 2 3\n2: goto -> 1\n3: expr -> 4\n4:\n",
		},
		{
			name: "labeled-break",
			body: "outer:\nfor {\nfor {\nbreak outer\n}\n}\nf()",
			want: "0: -> 1\n1: -> 2\n2: -> 4\n3: expr -> 8\n4: -> 5\n5: -> 7\n6: -> 2\n7: break -> 3\n8:\n",
		},
		{
			name: "defer-and-go",
			body: "defer f()\ngo g()\nh()",
			want: "0: defer go expr -> 1\n1:\n",
		},
		{
			name: "dead-code-after-return",
			body: "return\nf()",
			want: "0: return -> 2\n1: expr -> 2\n2:\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewCFG(parseBody(t, tc.body))
			got := g.dump()
			if got != tc.want {
				t.Errorf("cfg mismatch\n got:\n%s want:\n%s", got, tc.want)
			}
		})
	}
}

// TestCFGExitReachable: every function that can return reaches Exit, and
// returns always feed Exit directly.
func TestCFGExitReachable(t *testing.T) {
	bodies := []string{
		"f()",
		"if c {\nreturn\n}\nf()",
		"for {\nif c {\nreturn\n}\n}",
		"switch x {\ncase 1:\nreturn\ndefault:\nf()\n}",
	}
	for _, body := range bodies {
		g := NewCFG(parseBody(t, body))
		if !reach(g)[g.Exit.Index] {
			t.Errorf("exit unreachable for body %q\n%s", body, g.dump())
		}
	}
}

// TestCFGInfiniteLoopExit: `for {}` with no break never reaches Exit.
func TestCFGInfiniteLoopExit(t *testing.T) {
	g := NewCFG(parseBody(t, "for {\nf()\n}"))
	if reach(g)[g.Exit.Index] {
		t.Errorf("exit should be unreachable through an infinite loop\n%s", g.dump())
	}
}

// TestForwardReachability: the trivial "reached" lattice marks exactly
// the blocks reachable from entry.
func TestForwardReachability(t *testing.T) {
	g := NewCFG(parseBody(t, "if c {\nreturn\n}\nf()\nreturn\ng()"))
	type state = map[string]bool
	in := Forward(g, Dataflow[state]{
		Entry:  state{"r": true},
		Bottom: func() state { return state{} },
		Clone: func(s state) state {
			c := state{}
			for k, v := range s {
				c[k] = v
			}
			return c
		},
		Join: func(dst, src state) bool {
			changed := false
			for k, v := range src {
				if v && !dst[k] {
					dst[k] = true
					changed = true
				}
			}
			return changed
		},
		Transfer: func(b *Block, s state) state { return s },
	})
	want := reach(g)
	for i, b := range g.Blocks {
		if in[i]["r"] != want[b.Index] {
			t.Errorf("block %d: dataflow reachable=%v, graph reachable=%v\n%s",
				i, in[i]["r"], want[b.Index], g.dump())
		}
	}
}

// TestForwardLoopFixpoint: facts generated inside a loop propagate to the
// loop head and beyond without livelock.
func TestForwardLoopFixpoint(t *testing.T) {
	g := NewCFG(parseBody(t, "for i := 0; i < n; i++ {\nx := f()\n_ = x\n}\ng()"))
	type state = map[string]bool
	gen := func(b *Block) bool {
		for _, n := range b.Nodes {
			if a, ok := n.(*ast.AssignStmt); ok && len(a.Lhs) == 1 {
				if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
					return true
				}
			}
		}
		return false
	}
	in := Forward(g, Dataflow[state]{
		Entry:  state{},
		Bottom: func() state { return state{} },
		Clone: func(s state) state {
			c := state{}
			for k, v := range s {
				c[k] = v
			}
			return c
		},
		Join: func(dst, src state) bool {
			changed := false
			for k, v := range src {
				if v && !dst[k] {
					dst[k] = true
					changed = true
				}
			}
			return changed
		},
		Transfer: func(b *Block, s state) state {
			if gen(b) {
				s["x"] = true
			}
			return s
		},
	})
	// The loop head (block with the condition) must see the fact from
	// the back edge, and so must Exit.
	if !in[g.Exit.Index]["x"] {
		t.Errorf("fact generated in loop did not reach exit\n%s", g.dump())
	}
	headSaw := false
	for i, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(ast.Expr); ok && in[i]["x"] {
				headSaw = true
			}
		}
		_ = b
	}
	if !headSaw {
		t.Errorf("no conditioned block saw the loop fact\n%s", g.dump())
	}
}
