package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"

	"crayfish/internal/analysis/metricdoc"
)

// ContractDoc is the module-relative path of the metrics contract that
// metricnames checks registrations against.
const ContractDoc = "docs/OBSERVABILITY.md"

// NewMetricNames enforces the telemetry contract in both directions:
// every Registry.Counter/Gauge/Histogram registration must use a name
// (string constant, or constant prefix + dynamic suffix) documented in
// docs/OBSERVABILITY.md with the matching kind, and every documented
// metric must be registered somewhere in the tree. Drift either way is
// an error — dashboards are built on the documented names, and dead doc
// rows teach readers metrics that do not exist.
func NewMetricNames() *Analyzer {
	a := &Analyzer{
		Name: "metricnames",
		Doc:  "telemetry registrations and docs/OBSERVABILITY.md must agree in both directions",
	}
	var (
		contract *metricdoc.Contract
		loadErr  error
		loaded   bool
		// registered tracks which documented families the code actually
		// creates, keyed by documented name.
		registered = make(map[string]bool)
	)
	load := func(mod *Module) {
		if loaded {
			return
		}
		loaded = true
		contract, loadErr = metricdoc.ParseFile(filepath.Join(mod.Dir, filepath.FromSlash(ContractDoc)))
	}

	a.Run = func(pass *Pass) {
		load(pass.Module)
		if loadErr != nil {
			return // reported once in Finish
		}
		info := pass.Pkg.TypesInfo
		pass.eachFile(func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				kind, ok := registryCallKind(info, call)
				if !ok {
					return true
				}
				arg := call.Args[0]
				if name, ok := constantString(info, arg); ok {
					m := contract.Match(name)
					switch {
					case m == nil:
						pass.Report(arg.Pos(), "%s metric %q is not documented in %s", kind, name, ContractDoc)
					case m.Kind != kind:
						pass.Report(arg.Pos(), "metric %q registered as %s but documented as %s (%s:%d)", name, kind, m.Kind, ContractDoc, m.Line)
					default:
						registered[m.Name] = true
					}
					return true
				}
				if prefix, ok := constantPrefix(info, arg); ok {
					m := contract.MatchPrefix(prefix)
					switch {
					case m == nil:
						pass.Report(arg.Pos(), "dynamic %s metric with prefix %q has no wildcard row (`%s<suffix>`) in %s", kind, prefix, prefix, ContractDoc)
					case m.Kind != kind:
						pass.Report(arg.Pos(), "metric family %q registered as %s but documented as %s (%s:%d)", m.Name, kind, m.Kind, ContractDoc, m.Line)
					default:
						registered[m.Name] = true
					}
					return true
				}
				pass.Report(arg.Pos(), "%s metric name must be a string constant or constant prefix + dynamic suffix, so the contract stays statically checkable", kind)
				return true
			})
		})
	}

	a.Finish = func(pass *Pass) {
		if loadErr != nil {
			pass.reportAt(token.Position{Filename: ContractDoc, Line: 1},
				"cannot load metrics contract: %v", loadErr)
			return
		}
		for _, m := range contract.Metrics {
			if !registered[m.Name] {
				pass.reportAt(token.Position{Filename: contract.Path, Line: m.Line},
					"metric %q is documented but never registered in the tree", m.Name)
			}
		}
	}
	return a
}

// registryCallKind reports whether call is a telemetry registration —
// a Counter/Gauge/Histogram method on a telemetry.Registry — and which
// metric kind it creates.
func registryCallKind(info *types.Info, call *ast.CallExpr) (metricdoc.Kind, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	var kind metricdoc.Kind
	switch sel.Sel.Name {
	case "Counter":
		kind = metricdoc.Counter
	case "Gauge":
		kind = metricdoc.Gauge
	case "Histogram":
		kind = metricdoc.Histogram
	default:
		return "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return "", false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil || obj.Pkg().Name() != "telemetry" {
		return "", false
	}
	return kind, true
}

// constantString evaluates expr as a compile-time string constant
// (literal, concatenation of literals, or named constant).
func constantString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// constantPrefix handles the dynamic-name idiom `"stage.family." + x`:
// a binary + whose left operand is a string constant. Deeper left spines
// ("a" + "b" + x) fold naturally because the checker constant-folds the
// left subtree.
func constantPrefix(info *types.Info, expr ast.Expr) (string, bool) {
	bin, ok := ast.Unparen(expr).(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD {
		return "", false
	}
	return constantString(info, bin.X)
}
