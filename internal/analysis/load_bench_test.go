package analysis_test

import (
	"testing"

	"crayfish/internal/analysis"
)

// BenchmarkLintModule pins the full-module lint wall-clock: load + parse
// + parallel type-check + the whole default suite over the real module.
// The acceptance bar for loader changes is that this stays no worse than
// the serial loader despite the CFG-based analyzers (run with
// `go test ./internal/analysis -bench LintModule -benchtime 3x`).
func BenchmarkLintModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mod, err := analysis.LoadModule("../..")
		if err != nil {
			b.Fatal(err)
		}
		res := analysis.Run(mod, analysis.DefaultAnalyzers())
		if len(res.Diagnostics) != 0 {
			b.Fatalf("lint of the real module should be clean, got %d diagnostics (first: %v)",
				len(res.Diagnostics), res.Diagnostics[0])
		}
	}
}

// TestParallelLoadMatchesSerialView checks the wave-parallel loader
// produces a complete, consistent module: every package type-checked,
// cross-package type identity intact (the arena type seen from a
// dependent package is the tensor package's own), and no type errors
// outside the fixtures that seed them. Under -race this doubles as the
// loader's data-race exercise.
func TestParallelLoadMatchesSerialView(t *testing.T) {
	mod, err := analysis.LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Packages) < 15 {
		t.Fatalf("real module loaded only %d packages", len(mod.Packages))
	}
	tensorPkg := mod.Lookup("crayfish/internal/tensor")
	modelPkg := mod.Lookup("crayfish/internal/model")
	if tensorPkg == nil || modelPkg == nil {
		t.Fatal("tensor or model package missing from the load")
	}
	for _, pkg := range mod.Packages {
		if pkg.Types == nil {
			t.Errorf("package %s has no type information", pkg.Path)
		}
		if len(pkg.TypeErrors) != 0 {
			t.Errorf("package %s has type errors: %v", pkg.Path, pkg.TypeErrors[0])
		}
	}
	// Cross-package identity: model's view of tensor.Arena must be the
	// very object tensor declares, or analyzer type tests would misfire.
	arena := tensorPkg.Types.Scope().Lookup("Arena")
	if arena == nil {
		t.Fatal("tensor.Arena not in the tensor package scope")
	}
	seen := false
	for _, imp := range modelPkg.Types.Imports() {
		if imp.Path() == "crayfish/internal/tensor" {
			seen = imp.Scope().Lookup("Arena") == arena
		}
	}
	if !seen {
		t.Error("model's imported view of tensor.Arena is not identical to tensor's own (shared importer broken)")
	}
}
