package analysis

import (
	"go/ast"
	"go/types"
)

// NewErrcheckLite flags call statements that silently discard an error
// returned by a module-internal function or method (expression
// statements and defers; `_ = f()` is an explicit, visible discard and
// is allowed). The check is scoped to module-internal callees on
// purpose: those signatures are ours, so an ignored error there is
// either a bug or a missing annotation — while fmt.Println-style stdlib
// noise stays out.
func NewErrcheckLite() *Analyzer {
	a := &Analyzer{
		Name: "errchecklite",
		Doc:  "errors returned by module-internal functions must not be silently discarded",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.TypesInfo
		pass.eachFile(func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch n := n.(type) {
				case *ast.ExprStmt:
					call, _ = n.X.(*ast.CallExpr)
				case *ast.DeferStmt:
					call = n.Call
				}
				if call == nil {
					return true
				}
				if !returnsError(info, call) {
					return true
				}
				callee := calleeObject(info, call)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				if pass.Module.Lookup(callee.Pkg().Path()) == nil {
					return true // not module-internal
				}
				pass.Report(call.Pos(), "discarded error from %s.%s (handle it, or write `_ = ...` to discard explicitly)", callee.Pkg().Name(), callee.Name())
				return true
			})
		})
	}
	return a
}

// returnsError reports whether the call's result contains an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// calleeObject resolves the called function or method object, or nil for
// indirect calls (function values, conversions).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun]; ok {
			if _, isFunc := obj.(*types.Func); isFunc {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel]; ok {
			if _, isFunc := obj.(*types.Func); isFunc {
				return obj
			}
		}
	}
	return nil
}
