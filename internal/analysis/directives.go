package analysis

import (
	"go/token"
	"strings"
)

// directive is one parsed //lint:allow comment.
type directive struct {
	analyzer string
	reason   string
	pos      token.Position
	// bad marks a directive that does not follow the grammar (missing
	// analyzer name or reason); bad directives suppress nothing and are
	// themselves reported.
	bad string
}

const directivePrefix = "//lint:allow"

// collectDirectives indexes every //lint:allow comment in the package by
// the line it suppresses. Grammar:
//
//	//lint:allow <analyzer> <reason...>
//
// A directive trailing a statement covers that statement's line; a
// directive on its own line covers the next line. The reason is free
// text and mandatory.
func (p *Package) collectDirectives(fset *token.FileSet) {
	p.allow = make(map[string][]directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				d := directive{pos: pos}
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. //lint:allowance — not ours
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.bad = "missing analyzer name and reason"
				case len(fields) == 1:
					d.analyzer = fields[0]
					d.bad = "missing reason (grammar: //lint:allow <analyzer> <reason>)"
				default:
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				// The directive covers its own line and, when it stands
				// alone, the line below. Indexing both is harmless for
				// trailing directives: code never occupies the line
				// after a trailing comment's statement *and* expects
				// suppression from it.
				p.allow[lineKey(pos.Filename, pos.Line)] = append(p.allow[lineKey(pos.Filename, pos.Line)], d)
				p.allow[lineKey(pos.Filename, pos.Line+1)] = append(p.allow[lineKey(pos.Filename, pos.Line+1)], d)
			}
		}
	}
}

func lineKey(file string, line int) string {
	var b strings.Builder
	b.WriteString(file)
	b.WriteByte(':')
	// Lines fit in a few digits; avoid fmt on this warm path.
	var buf [12]byte
	i := len(buf)
	n := line
	if n == 0 {
		i--
		buf[i] = '0'
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	b.Write(buf[i:])
	return b.String()
}

// allows reports whether a well-formed directive for the analyzer covers
// the position.
func (p *Package) allows(analyzer string, pos token.Position) bool {
	for _, d := range p.allow[lineKey(pos.Filename, pos.Line)] {
		if d.bad == "" && d.analyzer == analyzer {
			return true
		}
	}
	return false
}

// reportBadDirectives surfaces malformed //lint:allow comments, which
// would otherwise rot silently while suppressing nothing.
func reportBadDirectives(mod *Module, pkg *Package, out *[]Diagnostic) {
	seen := make(map[string]bool)
	for _, ds := range pkg.allow {
		for _, d := range ds {
			if d.bad == "" {
				continue
			}
			key := lineKey(d.pos.Filename, d.pos.Line)
			if seen[key] {
				continue
			}
			seen[key] = true
			*out = append(*out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "lintdirective",
				Message:  d.bad,
			})
		}
	}
}
