package analysis

import (
	"go/token"
	"strings"
)

// directive is one parsed lint:allow comment. The same *directive is
// indexed under every line it covers, so suppression anywhere marks the
// one shared instance used — the stale check's source of truth.
type directive struct {
	analyzer string
	reason   string
	pos      token.Position
	// bad marks a directive that does not follow the grammar (missing
	// analyzer name or reason); bad directives suppress nothing and are
	// themselves reported.
	bad string
	// used records that the directive suppressed at least one finding
	// this run; a well-formed directive that stays unused is stale.
	used bool
}

const (
	linePrefix  = "//lint:allow"
	blockPrefix = "/*lint:allow"
)

// cutDirective strips the lint:allow marker off a comment's text,
// handling both line and block forms. The boundary character after the
// marker must be whitespace (or nothing): //lint:allowance is not ours.
func cutDirective(text string) (rest string, block, ok bool) {
	if r, found := strings.CutPrefix(text, linePrefix); found {
		rest, ok = r, true
	} else if r, found := strings.CutPrefix(text, blockPrefix); found {
		rest, block, ok = strings.TrimSuffix(r, "*/"), true, true
	}
	if !ok || (rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") && !strings.HasPrefix(rest, "\n")) {
		return "", false, false
	}
	return rest, block, true
}

// collectDirectives indexes every lint:allow comment in the package by
// the lines it covers. Grammar:
//
//	//lint:allow <analyzer> <reason...>
//	/*lint:allow <analyzer> <reason...>*/
//
// A directive trailing a statement covers that statement's line; a
// directive on its own line covers the next line — and only the next:
// a blank line or a declaration between directive and finding breaks
// the association. Several block directives may share one line. The
// reason is free text and mandatory.
func (p *Package) collectDirectives(fset *token.FileSet) {
	p.allow = make(map[string][]*directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, block, ok := cutDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &directive{pos: pos}
				fields := strings.Fields(rest)
				switch {
				case block && strings.Contains(rest, "\n"):
					d.bad = "block directive must fit on one line (the lines it would cover are inside the comment)"
				case len(fields) == 0:
					d.bad = "missing analyzer name and reason"
				case len(fields) == 1:
					d.analyzer = fields[0]
					d.bad = "missing reason (grammar: //lint:allow <analyzer> <reason>)"
				default:
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				p.directives = append(p.directives, d)
				// The directive covers its own line and, when it stands
				// alone, the line below. Indexing both is harmless for
				// trailing directives: code never occupies the line
				// after a trailing comment's statement *and* expects
				// suppression from it.
				p.allow[lineKey(pos.Filename, pos.Line)] = append(p.allow[lineKey(pos.Filename, pos.Line)], d)
				p.allow[lineKey(pos.Filename, pos.Line+1)] = append(p.allow[lineKey(pos.Filename, pos.Line+1)], d)
			}
		}
	}
}

func lineKey(file string, line int) string {
	var b strings.Builder
	b.WriteString(file)
	b.WriteByte(':')
	// Lines fit in a few digits; avoid fmt on this warm path.
	var buf [12]byte
	i := len(buf)
	n := line
	if n == 0 {
		i--
		buf[i] = '0'
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	b.Write(buf[i:])
	return b.String()
}

// allows reports whether a well-formed directive for the analyzer covers
// the position, marking every matching directive used — a finding can be
// covered twice (trailing + line-above), and neither copy is stale.
func (p *Package) allows(analyzer string, pos token.Position) bool {
	ok := false
	for _, d := range p.allow[lineKey(pos.Filename, pos.Line)] {
		if d.bad == "" && d.analyzer == analyzer {
			d.used = true
			ok = true
		}
	}
	return ok
}

// reportBadDirectives surfaces malformed lint:allow comments, which
// would otherwise rot silently while suppressing nothing.
func reportBadDirectives(mod *Module, pkg *Package, out *[]Diagnostic) {
	for _, d := range pkg.directives {
		if d.bad == "" {
			continue
		}
		*out = append(*out, Diagnostic{
			Pos:      d.pos,
			Analyzer: "lintdirective",
			Message:  d.bad,
		})
	}
}

// reportStaleDirectives surfaces well-formed directives that suppressed
// nothing over a full run of the suite. Directives naming an analyzer
// outside the active suite are skipped: a partial run (-only) proves
// nothing about them.
func reportStaleDirectives(pkg *Package, suite map[string]bool, out *[]Diagnostic) {
	for _, d := range pkg.directives {
		if d.bad != "" || d.used || !suite[d.analyzer] {
			continue
		}
		*out = append(*out, Diagnostic{
			Pos:      d.pos,
			Analyzer: "lintdirective",
			Message:  "directive suppresses nothing: no " + d.analyzer + " finding on this line or the one below (stale — remove it, or move it next to the finding)",
		})
	}
}
