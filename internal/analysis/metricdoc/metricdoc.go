// Package metricdoc parses the metrics contract out of
// docs/OBSERVABILITY.md. It is the single source of truth for the
// documented metric names: the metricnames static analyzer checks the
// code against it in both directions, and the root telemetry_test.go
// contract test checks the runtime snapshot against it — so the doc↔code
// consistency logic exists in exactly one place.
package metricdoc

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
)

// Kind is a metric's documented type.
type Kind string

// The three metric kinds the telemetry registry offers.
const (
	Counter   Kind = "counter"
	Gauge     Kind = "gauge"
	Histogram Kind = "histogram"
)

// Metric is one documented metric family.
type Metric struct {
	// Name is the documented dot-path. A `<placeholder>` segment (e.g.
	// broker.backlog.<topic>) marks a dynamic family registered with a
	// literal prefix plus a runtime suffix.
	Name string
	Kind Kind
	// Line is the 1-based line in the contract document.
	Line int
}

// Wildcard reports whether the name contains a dynamic placeholder.
func (m Metric) Wildcard() bool { return strings.Contains(m.Name, "<") }

// Prefix returns the literal part of a wildcard name up to the
// placeholder ("broker.backlog." for broker.backlog.<topic>); for exact
// names it returns the full name.
func (m Metric) Prefix() string {
	if i := strings.IndexByte(m.Name, '<'); i >= 0 {
		return m.Name[:i]
	}
	return m.Name
}

// Matches reports whether a concrete runtime metric name belongs to this
// family: exact equality, or for wildcards a non-empty suffix after the
// literal prefix.
func (m Metric) Matches(name string) bool {
	if !m.Wildcard() {
		return m.Name == name
	}
	p := m.Prefix()
	return strings.HasPrefix(name, p) && len(name) > len(p)
}

// Contract is the parsed metrics contract.
type Contract struct {
	// Path is where the contract was read from (for error messages).
	Path    string
	Metrics []Metric
}

// row matches a contract table row: | `name` | kind | ... — the name in
// backticks, the kind in the second column.
var row = regexp.MustCompile("^\\|\\s*`([a-z0-9_.<>-]+)`\\s*\\|\\s*(counter|gauge|histogram)\\s*\\|")

// Parse reads a contract document. Every markdown table row whose first
// cell is a backticked metric name and whose second cell is a metric
// kind is part of the contract; everything else is prose.
func Parse(r io.Reader, path string) (*Contract, error) {
	c := &Contract{Path: path}
	seen := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		m := row.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		if prev, dup := seen[name]; dup {
			return nil, fmt.Errorf("%s:%d: metric %q already documented at line %d", path, line, name, prev)
		}
		seen[name] = line
		c.Metrics = append(c.Metrics, Metric{Name: name, Kind: Kind(m[2]), Line: line})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(c.Metrics) == 0 {
		return nil, fmt.Errorf("%s: no metric contract rows found", path)
	}
	return c, nil
}

// ParseFile reads the contract from a file.
func ParseFile(path string) (*Contract, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f, path)
}

// Match returns the documented family a concrete runtime name belongs
// to, or nil if the name is undocumented.
func (c *Contract) Match(name string) *Metric {
	for i := range c.Metrics {
		if c.Metrics[i].Matches(name) {
			return &c.Metrics[i]
		}
	}
	return nil
}

// MatchPrefix returns the wildcard family registered with exactly the
// given literal prefix ("broker.backlog." → broker.backlog.<topic>), or
// nil.
func (c *Contract) MatchPrefix(prefix string) *Metric {
	for i := range c.Metrics {
		if c.Metrics[i].Wildcard() && c.Metrics[i].Prefix() == prefix {
			return &c.Metrics[i]
		}
	}
	return nil
}

// Names returns the documented names of one kind (wildcards included,
// with their placeholder spelling).
func (c *Contract) Names(kind Kind) []string {
	var out []string
	for _, m := range c.Metrics {
		if m.Kind == kind {
			out = append(out, m.Name)
		}
	}
	return out
}
