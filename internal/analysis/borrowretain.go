package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lentPrefix marks a parameter as lent in a function's doc comment:
//
//	//lint:lent <param> [<param>...]
//
// A lent parameter (typically a buffer or record slice) is owned by the
// caller for reuse after the call returns: the function may read it and
// use it as scratch, but must not retain it.
const lentPrefix = "//lint:lent"

// borrowState maps a local variable to the lent parameter it (may)
// alias.
type borrowState = map[types.Object]string

// NewBorrowRetain verifies //lint:lent annotations with alias dataflow
// over the CFG layer: no alias of a lent parameter may escape the call —
// not through a store into a struct field, slice/map element, pointer
// target, or package variable; not through a channel send; and not by
// being captured by (or passed to) a goroutine, which outlives the
// borrow. Returning the value and passing it to ordinary calls are
// treated as further borrows (interprocedural retention is out of
// scope). The annotation documents the contract and this analyzer keeps
// the documentation honest.
func NewBorrowRetain() *Analyzer {
	a := &Analyzer{
		Name: "borrowretain",
		Doc:  "parameters annotated //lint:lent must not escape: no field/package-var store, no channel send, no goroutine capture",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.TypesInfo
		if info == nil {
			return
		}
		pass.eachFile(func(f *ast.File) {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				runBorrowFunc(pass, fd)
			}
		})
	}
	return a
}

// lentDirectives parses the //lint:lent lines of a doc comment,
// returning the named parameters with the directive position of each.
func lentDirectives(doc *ast.CommentGroup) map[string]token.Pos {
	if doc == nil {
		return nil
	}
	var out map[string]token.Pos
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, lentPrefix)
		if !ok {
			continue
		}
		if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
			continue // e.g. //lint:lenticular — not ours
		}
		if out == nil {
			out = make(map[string]token.Pos)
		}
		fields := strings.FieldsFunc(rest, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ','
		})
		if len(fields) == 0 {
			out[""] = c.Pos() // grammar error: no parameter named
			continue
		}
		for _, name := range fields {
			out[name] = c.Pos()
		}
	}
	return out
}

func runBorrowFunc(pass *Pass, fd *ast.FuncDecl) {
	named := lentDirectives(fd.Doc)
	if len(named) == 0 {
		return
	}
	info := pass.Pkg.TypesInfo

	// Resolve the named parameters to their objects.
	params := make(map[string]types.Object)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, id := range field.Names {
				if _, want := named[id.Name]; want {
					if obj := info.Defs[id]; obj != nil {
						params[id.Name] = obj
					}
				}
			}
		}
	}
	for name := range named {
		if name == "" {
			pass.Report(fd.Name.Pos(), "lint:lent names no parameter (grammar: //lint:lent <param> [<param>...])")
		} else if params[name] == nil {
			pass.Report(fd.Name.Pos(), "lint:lent names %s, which is not a parameter of %s", name, fd.Name.Name)
		}
	}
	if len(params) == 0 {
		return
	}

	bf := &borrowFunc{
		pass:     pass,
		info:     info,
		fn:       fd.Name.Name,
		reported: make(map[token.Pos]bool),
	}
	entry := borrowState{}
	for name, obj := range params {
		entry[obj] = name
	}

	g := NewCFG(fd.Body)
	d := Dataflow[borrowState]{
		Entry:  entry,
		Bottom: func() borrowState { return borrowState{} },
		Clone: func(s borrowState) borrowState {
			c := make(borrowState, len(s))
			for k, v := range s {
				c[k] = v
			}
			return c
		},
		Join: func(dst, src borrowState) bool {
			changed := false
			for k, v := range src {
				if _, ok := dst[k]; !ok {
					dst[k] = v
					changed = true
				}
			}
			return changed
		},
		Transfer: func(b *Block, s borrowState) borrowState {
			for _, n := range b.Nodes {
				bf.node(n, s, false)
			}
			return s
		},
	}
	in := Forward(g, d)
	for i, b := range g.Blocks {
		s := d.Clone(in[i])
		for _, n := range b.Nodes {
			bf.node(n, s, true)
		}
	}
}

type borrowFunc struct {
	pass     *Pass
	info     *types.Info
	fn       string
	reported map[token.Pos]bool
}

// node applies one flat CFG node: alias propagation plus escape checks.
func (bf *borrowFunc) node(n ast.Node, s borrowState, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		bf.assign(n, s, report)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if i < len(vs.Values) {
						if name := bf.aliasOf(vs.Values[i], s); name != "" {
							if obj := bf.info.Defs[id]; obj != nil {
								s[obj] = name
							}
							continue
						}
					}
					if obj := bf.info.Defs[id]; obj != nil {
						delete(s, obj)
					}
				}
			}
		}
	case *ast.SendStmt:
		if name := bf.aliasOf(n.Value, s); name != "" && report {
			bf.reportOnce(n.Value.Pos(), "lent parameter %s of %s escapes: sent on a channel, so the receiver retains it after the call returns", name, bf.fn)
		}
	case *ast.GoStmt:
		bf.goEscape(n, s, report)
	case *ast.ReturnStmt:
		// Returning a lent value hands it straight back to its owner.
	case RangeHead:
		for _, lhs := range []ast.Expr{n.Stmt.Key, n.Stmt.Value} {
			if lhs == nil {
				continue
			}
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := useObj(bf.info, id); obj != nil {
					delete(s, obj)
				}
			}
		}
	case CommOp:
		bf.node(n.Stmt, s, report)
	case *ast.ExprStmt, *ast.DeferStmt, *ast.IncDecStmt,
		SelectHead, *ast.BranchStmt:
		// Plain calls (including deferred ones) are further borrows.
	}
}

// assign propagates aliases through ident bindings and reports stores
// through any non-ident left-hand side (field, element, deref) or into a
// package-level variable.
func (bf *borrowFunc) assign(n *ast.AssignStmt, s borrowState, report bool) {
	// Parallel assignments: pair lhs[i] with rhs[i] when arities match.
	paired := len(n.Lhs) == len(n.Rhs)
	for i, lhs := range n.Lhs {
		var rhsName string
		if paired {
			rhsName = bf.aliasOf(n.Rhs[i], s)
		} else if len(n.Rhs) == 1 {
			rhsName = bf.aliasOf(n.Rhs[0], s)
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := useObj(bf.info, l)
			if obj == nil || l.Name == "_" {
				continue
			}
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil &&
				v.Parent() == v.Pkg().Scope() {
				// Package-level variable: the store outlives the call.
				if rhsName != "" && report {
					bf.reportOnce(lhs.Pos(), "lent parameter %s of %s escapes: stored in package variable %s", rhsName, bf.fn, l.Name)
				}
				continue
			}
			if rhsName != "" {
				s[obj] = rhsName
			} else {
				delete(s, obj)
			}
		default:
			if rhsName != "" && report {
				bf.reportOnce(lhs.Pos(), "lent parameter %s of %s escapes: stored into %s, which outlives the call", rhsName, bf.fn, exprDesc(lhs))
			}
		}
	}
}

// goEscape reports lent values handed to a goroutine — as arguments or
// as closure captures — which may still hold them after the call
// returns.
func (bf *borrowFunc) goEscape(n *ast.GoStmt, s borrowState, report bool) {
	if !report {
		return
	}
	for _, arg := range n.Call.Args {
		if name := bf.aliasOf(arg, s); name != "" {
			bf.reportOnce(arg.Pos(), "lent parameter %s of %s escapes: passed to a goroutine that outlives the call", name, bf.fn)
		}
	}
	if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(c ast.Node) bool {
			id, ok := c.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := useObj(bf.info, id); obj != nil {
				if name, tracked := s[obj]; tracked {
					bf.reportOnce(id.Pos(), "lent parameter %s of %s escapes: captured by a goroutine closure", name, bf.fn)
				}
			}
			return true
		})
	}
}

// aliasOf resolves an expression to the lent parameter it aliases:
// identifiers in the state, and slice expressions over them (a subslice
// shares the backing array).
func (bf *borrowFunc) aliasOf(e ast.Expr, s borrowState) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := useObj(bf.info, e); obj != nil {
			return s[obj]
		}
	case *ast.SliceExpr:
		return bf.aliasOf(e.X, s)
	}
	return ""
}

func (bf *borrowFunc) reportOnce(pos token.Pos, format string, args ...any) {
	if bf.reported[pos] {
		return
	}
	bf.reported[pos] = true
	bf.pass.Report(pos, format, args...)
}

// exprDesc renders an lvalue for a message, falling back to its shape.
func exprDesc(e ast.Expr) string {
	if t := exprText(e); t != "" {
		return t
	}
	switch ast.Unparen(e).(type) {
	case *ast.IndexExpr:
		return "a slice or map element"
	case *ast.StarExpr:
		return "a pointer target"
	}
	return "a longer-lived location"
}
