package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// dfutil.go: shared AST/type helpers for the CFG-based analyzers
// (arenadiscipline, borrowretain, lockdiscipline).

// funcBodies yields every function-like body of a file — FuncDecl bodies
// and FuncLit bodies — each of which gets its own CFG. fn receives the
// declaring node (a *ast.FuncDecl or *ast.FuncLit) and the body.
func funcBodies(f *ast.File, fn func(decl ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n, n.Body)
			}
		case *ast.FuncLit:
			fn(n, n.Body)
		}
		return true
	})
}

// inspectShallow walks n but does not descend into FuncLit bodies: a
// closure's statements execute when the closure runs, not where it is
// written, so they belong to the closure's own CFG.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		return fn(c)
	})
}

// useObj resolves an identifier's object through Uses then Defs.
func useObj(info *types.Info, id *ast.Ident) types.Object {
	if info == nil {
		return nil
	}
	if obj, ok := info.Uses[id]; ok {
		return obj
	}
	return info.Defs[id]
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isModuleTypeNamed reports whether t (possibly behind pointers) is a
// named type with the given name declared in a package whose path is
// pkgSuffix or ends in "/"+pkgSuffix — how analyzers recognize project
// types both in the real module and in fixture modules.
func isModuleTypeNamed(t types.Type, pkgSuffix, name string) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix)
}

// pkgPathHasSuffix reports whether a package path matches a
// module-relative suffix ("internal/grpcish") exactly or as a path tail.
func pkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// calleeFunc resolves the *types.Func a call invokes, or nil for builtin
// and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := useObj(info, fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := useObj(info, fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// exprText renders a plain ident/selector chain ("s.arena", "b.mu") for
// messages and same-instance comparisons; other shapes render as "".
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprText(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.UnaryExpr:
		return exprText(e.X)
	}
	return ""
}
