package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Arena buffer lifecycle states (a bitset: a value can be live on one
// path and recycled on another after a join).
const (
	arenaLive uint8 = 1 << iota // obtained from Get, not yet recycled
	arenaRec                    // returned via Recycle (or invalidated by Reset)
)

// arenaState maps a local variable (its types.Object) holding an
// Arena.Get result to its lifecycle bits.
type arenaState = map[types.Object]uint8

// NewArenaDiscipline enforces the tensor.Arena ownership contract
// (docs/PERFORMANCE.md) with path-sensitive dataflow over the CFG layer:
//
//   - a buffer must not be used after Recycle on any path reaching the
//     use (including "recycled on one branch, used after the join");
//   - a buffer must not be recycled twice;
//   - a function that recycles a buffer on some path must recycle it (or
//     transfer ownership) on every path that returns — an early return
//     that skips the Recycle leaks the buffer out of the free lists.
//
// Ownership transfer is conservative and syntactic: returning the
// buffer, storing it into a field/element/package var, sending it on a
// channel, capturing it in a closure, or passing it to any function
// outside the tensor package (tensor kernels and Tensor methods only
// borrow) all end tracking. Functions using the Reset-at-end pattern
// (buffers stay lent until an Arena.Reset, possibly deferred or in the
// caller) are exempt from the leak check by construction: it only fires
// for buffers the function explicitly recycles somewhere.
func NewArenaDiscipline() *Analyzer {
	a := &Analyzer{
		Name: "arenadiscipline",
		Doc:  "tensor.Arena buffers: no use after Recycle, no double Recycle, no path-dependent leaks of explicitly recycled buffers",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.TypesInfo
		if info == nil {
			return
		}
		pass.eachFile(func(f *ast.File) {
			funcBodies(f, func(decl ast.Node, body *ast.BlockStmt) {
				runArenaFunc(pass, body)
			})
		})
	}
	return a
}

// arenaFunc is one function's analysis context.
type arenaFunc struct {
	pass *Pass
	info *types.Info
	// recycledSomewhere holds objects passed to Recycle anywhere in the
	// body — the leak check's scope.
	recycledSomewhere map[types.Object]bool
	// deferredCleanup: the body defers an Arena Reset/Recycle, so lent
	// buffers are reclaimed on every return path by construction.
	deferredCleanup bool
	// reported dedups (pos, message-kind) pairs.
	reported map[token.Pos]bool
}

func runArenaFunc(pass *Pass, body *ast.BlockStmt) {
	af := &arenaFunc{
		pass:              pass,
		info:              pass.Pkg.TypesInfo,
		recycledSomewhere: make(map[types.Object]bool),
		reported:          make(map[token.Pos]bool),
	}

	// Pre-scan: does this function Get at all? Which objects does it
	// Recycle? Any deferred cleanup?
	usesArena := false
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch arenaMethodOf(af.info, n) {
			case "Get":
				usesArena = true
			case "Recycle":
				if len(n.Args) == 1 {
					if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
						if obj := useObj(af.info, id); obj != nil {
							af.recycledSomewhere[obj] = true
						}
					}
				}
			}
		case *ast.DeferStmt:
			switch arenaMethodOf(af.info, n.Call) {
			case "Reset", "Recycle":
				af.deferredCleanup = true
			}
		}
		return true
	})
	if !usesArena {
		return
	}

	g := NewCFG(body)
	d := Dataflow[arenaState]{
		Entry:  arenaState{},
		Bottom: func() arenaState { return arenaState{} },
		Clone: func(s arenaState) arenaState {
			c := make(arenaState, len(s))
			for k, v := range s {
				c[k] = v
			}
			return c
		},
		Join: func(dst, src arenaState) bool {
			changed := false
			for k, v := range src {
				if dst[k]|v != dst[k] {
					dst[k] |= v
					changed = true
				}
			}
			return changed
		},
		Transfer: func(b *Block, s arenaState) arenaState {
			for _, n := range b.Nodes {
				af.node(n, s, false)
			}
			return s
		},
	}
	in := Forward(g, d)
	for i, b := range g.Blocks {
		s := d.Clone(in[i])
		for _, n := range b.Nodes {
			af.node(n, s, true)
		}
		// Paths that fall off the end of a void function also "return".
		if last := lastNode(b); b != g.Exit && succOf(b, g.Exit) {
			if _, isRet := last.(*ast.ReturnStmt); !isRet {
				af.leakCheck(s, body.Rbrace, true)
			}
		}
	}
}

func lastNode(b *Block) ast.Node {
	if len(b.Nodes) == 0 {
		return nil
	}
	return b.Nodes[len(b.Nodes)-1]
}

func succOf(b *Block, target *Block) bool {
	for _, s := range b.Succs {
		if s == target {
			return true
		}
	}
	return false
}

// node applies one flat CFG node to the state; when report is set it also
// emits diagnostics (the second, post-fixpoint pass).
func (af *arenaFunc) node(n ast.Node, s arenaState, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			af.expr(rhs, s, report)
		}
		af.assign(n, s, report)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			af.expr(res, s, report)
			// Returning the buffer transfers ownership to the caller.
			if obj := af.trackedIdent(res, s); obj != nil {
				delete(s, obj)
			}
		}
		if report {
			af.leakCheck(s, n.Pos(), false)
		}
	case *ast.SendStmt:
		af.expr(n.Chan, s, report)
		af.expr(n.Value, s, report)
		if obj := af.trackedIdent(n.Value, s); obj != nil {
			delete(s, obj) // escaped through the channel
		}
	case *ast.DeferStmt:
		// Deferred calls run at exit; argument *evaluation* happens here.
		for _, arg := range n.Call.Args {
			af.expr(arg, s, report)
		}
		// A deferred Recycle/Reset covers every return (deferredCleanup);
		// other deferred calls taking the buffer transfer ownership.
		if arenaMethodOf(af.info, n.Call) == "" {
			for _, arg := range n.Call.Args {
				if obj := af.trackedIdent(arg, s); obj != nil {
					delete(s, obj)
				}
			}
		}
	case *ast.GoStmt:
		af.expr(n.Call, s, report)
	case *ast.ExprStmt:
		af.expr(n.X, s, report)
	case *ast.IncDecStmt:
		af.expr(n.X, s, report)
	case RangeHead:
		af.expr(n.Stmt.X, s, report)
		for _, lhs := range []ast.Expr{n.Stmt.Key, n.Stmt.Value} {
			if lhs == nil {
				continue
			}
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := useObj(af.info, id); obj != nil {
					delete(s, obj) // fresh value each iteration
				}
			}
		}
	case CommOp:
		switch c := n.Stmt.(type) {
		case *ast.SendStmt:
			af.node(c, s, report)
		case *ast.AssignStmt:
			af.node(c, s, report)
		case *ast.ExprStmt:
			af.expr(c.X, s, report)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					af.expr(v, s, report)
				}
				if len(vs.Values) == 1 && len(vs.Names) == 1 {
					if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok &&
						arenaMethodOf(af.info, call) == "Get" {
						if obj := af.info.Defs[vs.Names[0]]; obj != nil {
							s[obj] = arenaLive
						}
					}
				}
			}
		}
	case SelectHead, *ast.BranchStmt:
		// No arena semantics.
	case ast.Expr:
		af.expr(n, s, report)
	}
}

// assign applies an assignment's left-hand effects after its right-hand
// uses were processed.
func (af *arenaFunc) assign(n *ast.AssignStmt, s arenaState, report bool) {
	// Single-value forms can bind a Get result or create an alias.
	var getCall bool
	var aliasOf types.Object
	if len(n.Rhs) == 1 && len(n.Lhs) == 1 {
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			getCall = arenaMethodOf(af.info, call) == "Get"
		}
		aliasOf = af.trackedIdent(n.Rhs[0], s)
	}
	for _, lhs := range n.Lhs {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := useObj(af.info, l)
			if obj == nil || l.Name == "_" {
				continue
			}
			switch {
			case getCall:
				s[obj] = arenaLive
			case aliasOf != nil:
				s[obj] = s[aliasOf] // alias shares the fact (approximate)
			default:
				delete(s, obj) // strong update: holds something else now
			}
		default:
			// Store into a field/element/deref: every tracked buffer on
			// the right escapes.
			for _, rhs := range n.Rhs {
				if obj := af.trackedIdent(rhs, s); obj != nil {
					delete(s, obj)
				}
			}
		}
	}
}

// expr walks one expression (not descending into closures), reporting
// uses of recycled buffers and applying call semantics.
func (af *arenaFunc) expr(e ast.Expr, s arenaState, report bool) {
	if e == nil {
		return
	}
	inspectShallow(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			af.call(n, s, report)
			return false // call handled its own arguments
		case *ast.FuncLit:
			// Captured buffers' ownership moves to the closure.
			af.captureEscapes(n, s)
			return false
		case *ast.Ident:
			af.useCheck(n, s, report)
		}
		return true
	})
}

// call applies one call's semantics: arena methods mutate the lattice,
// tensor-package callees borrow, everything else takes ownership.
func (af *arenaFunc) call(call *ast.CallExpr, s arenaState, report bool) {
	// Walk the function expression (selectors can hold buffer uses, e.g.
	// t.Data()(...) shapes) and arguments for recycled-use checks first.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		af.expr(sel.X, s, report)
	}
	method := arenaMethodOf(af.info, call)
	for _, arg := range call.Args {
		if method == "Recycle" {
			break // the Recycle argument is handled below, not a "use"
		}
		af.expr(arg, s, report)
	}

	switch method {
	case "Recycle":
		if len(call.Args) != 1 {
			return
		}
		obj := af.trackedIdent(call.Args[0], s)
		if obj == nil {
			return
		}
		if s[obj]&arenaRec != 0 && report {
			af.reportOnce(call.Pos(), "buffer %s may already be recycled on a path reaching this Recycle (double recycle corrupts the arena free lists)", identName(call.Args[0]))
		}
		s[obj] = arenaRec
	case "Reset":
		// Every outstanding buffer of (any) arena is reclaimed; further
		// use is a bug, further leaks are impossible.
		for obj := range s {
			s[obj] = arenaRec
		}
	case "Get", "Wrap":
		// Binding is handled at the assignment; a dropped result is the
		// caller's own loss.
	default:
		// Non-arena call: tensor-package callees (kernels, Tensor
		// methods) borrow; any other callee takes ownership.
		if calleeBorrowsTensors(af.info, call) {
			return
		}
		for _, arg := range call.Args {
			if obj := af.trackedIdent(arg, s); obj != nil {
				delete(s, obj)
			}
		}
	}
}

// useCheck reports a read of a buffer that may already be recycled.
func (af *arenaFunc) useCheck(id *ast.Ident, s arenaState, report bool) {
	if !report {
		return
	}
	obj := useObj(af.info, id)
	if obj == nil {
		return
	}
	if bits, ok := s[obj]; ok && bits&arenaRec != 0 {
		af.reportOnce(id.Pos(), "buffer %s may be recycled on a path reaching this use (Recycle/Reset ends the lend; docs/PERFORMANCE.md)", id.Name)
	}
}

// captureEscapes ends tracking for buffers referenced inside a closure.
func (af *arenaFunc) captureEscapes(lit *ast.FuncLit, s arenaState) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := useObj(af.info, id); obj != nil {
				delete(s, obj)
			}
		}
		return true
	})
}

// leakCheck fires at returns (and end-of-body falls) for buffers that are
// live here but explicitly recycled on some other path.
func (af *arenaFunc) leakCheck(s arenaState, pos token.Pos, endOfBody bool) {
	if af.deferredCleanup {
		return
	}
	for obj, bits := range s {
		if bits&arenaLive != 0 && bits&arenaRec == 0 && af.recycledSomewhere[obj] {
			where := "this return"
			if endOfBody {
				where = "the end of the function"
			}
			af.reportOnce(pos, "buffer %s is recycled on another path but still live at %s: recycle it or transfer ownership on every path", obj.Name(), where)
		}
	}
}

func (af *arenaFunc) reportOnce(pos token.Pos, format string, args ...any) {
	if af.reported[pos] {
		return
	}
	af.reported[pos] = true
	af.pass.Report(pos, format, args...)
}

// trackedIdent resolves e to a tracked buffer's object, or nil.
func (af *arenaFunc) trackedIdent(e ast.Expr, s arenaState) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := useObj(af.info, id)
	if obj == nil {
		return nil
	}
	if _, tracked := s[obj]; !tracked {
		return nil
	}
	return obj
}

func identName(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}

// arenaMethodOf returns the method name when call invokes
// tensor.Arena.Get/Wrap/Recycle/Reset, else "".
func arenaMethodOf(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Get", "Wrap", "Recycle", "Reset":
	default:
		return ""
	}
	if info == nil {
		return ""
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return ""
	}
	if !isModuleTypeNamed(tv.Type, "internal/tensor", "Arena") {
		return ""
	}
	return sel.Sel.Name
}

// calleeBorrowsTensors reports whether a call's callee only borrows its
// tensor arguments: functions and methods of the tensor package itself
// (kernels write through, Tensor methods read).
func calleeBorrowsTensors(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return pkgPathHasSuffix(fn.Pkg().Path(), "internal/tensor")
}
