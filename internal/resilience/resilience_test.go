package resilience

import (
	"errors"
	"testing"
	"time"
)

func TestMarkRetryable(t *testing.T) {
	base := errors.New("boom")
	if IsRetryable(base) {
		t.Fatal("unmarked error reported retryable")
	}
	m := MarkRetryable(base)
	if !IsRetryable(m) {
		t.Fatal("marked error not retryable")
	}
	if !errors.Is(m, base) {
		t.Fatal("marking broke the Is chain")
	}
	if MarkRetryable(nil) != nil {
		t.Fatal("marking nil should stay nil")
	}
	wrapped := errors.New("outer: " + m.Error())
	if IsRetryable(wrapped) {
		t.Fatal("string concat must not inherit the mark")
	}
	if !IsRetryable(MarkRetryable(MarkRetryable(base))) {
		t.Fatal("double marking lost the flag")
	}
}

func TestRetryStopsOnNonRetryable(t *testing.T) {
	fatal := errors.New("fatal")
	calls := 0
	r := &Retry{Attempts: 5, Sleep: func(time.Duration) {}}
	err := r.Do(func() error { calls++; return fatal })
	if !errors.Is(err, fatal) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Fatalf("non-retryable error retried %d times", calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	r := &Retry{Attempts: 3, Sleep: func(time.Duration) {}}
	err := r.Do(func() error { calls++; return MarkRetryable(errors.New("flaky")) })
	if err == nil {
		t.Fatal("expected error after exhaustion")
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetryEventualSuccess(t *testing.T) {
	calls := 0
	var delays []time.Duration
	r := &Retry{
		Attempts:  5,
		BaseDelay: 10 * time.Millisecond,
		Sleep:     func(d time.Duration) { delays = append(delays, d) },
	}
	err := r.Do(func() error {
		calls++
		if calls < 3 {
			return MarkRetryable(errors.New("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}
	// Second backoff must be roughly double the first (within jitter).
	if delays[1] < delays[0] {
		t.Fatalf("backoff not growing: %v then %v", delays[0], delays[1])
	}
}

func TestRetryBackoffDeterministicAcrossSeeds(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var delays []time.Duration
		r := &Retry{Attempts: 4, Seed: seed, Sleep: func(d time.Duration) { delays = append(delays, d) }}
		_ = r.Do(func() error { return MarkRetryable(errors.New("flaky")) })
		return delays
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRetryBackoffCapped(t *testing.T) {
	r := &Retry{BaseDelay: 100 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Jitter: 0.0001}
	d := r.backoff(10)
	if d > 300*time.Millisecond {
		t.Fatalf("backoff %v exceeded cap", d)
	}
}

func TestRetryMaxElapsed(t *testing.T) {
	var now time.Time
	calls := 0
	r := &Retry{
		MaxElapsed: 50 * time.Millisecond,
		BaseDelay:  time.Millisecond,
		Clock:      func() time.Time { return now },
		Sleep:      func(d time.Duration) { now = now.Add(d) },
	}
	err := r.Do(func() error {
		calls++
		now = now.Add(20 * time.Millisecond)
		return MarkRetryable(errors.New("flaky"))
	})
	if err == nil {
		t.Fatal("expected failure")
	}
	if calls < 2 || calls > 5 {
		t.Fatalf("calls = %d, want a handful bounded by elapsed time", calls)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	var now time.Time
	var transitions []string
	b := &Breaker{
		FailureThreshold: 3,
		Cooldown:         100 * time.Millisecond,
		Clock:            func() time.Time { return now },
		OnChange: func(from, to State) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	}
	fail := func() {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker shed a call: %v", err)
		}
		b.Failure()
	}
	fail()
	fail()
	if b.State() != Closed {
		t.Fatalf("opened before threshold: %v", b.State())
	}
	fail()
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	// Shed while open, before cooldown.
	if err := b.Allow(); err == nil {
		t.Fatal("open breaker admitted a call")
	} else if !IsRetryable(err) || !errors.Is(err, ErrOpen) {
		t.Fatalf("shed error not typed/retryable: %v", err)
	}
	// After cooldown: one probe admitted, a second concurrent call shed.
	now = now.Add(150 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if err := b.Allow(); err == nil {
		t.Fatal("second probe admitted while first in flight")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after probe success", b.State())
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	var now time.Time
	b := &Breaker{FailureThreshold: 1, Cooldown: 10 * time.Millisecond, Clock: func() time.Time { return now }}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Failure()
	now = now.Add(20 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v, want open after probe failure", b.State())
	}
}

func TestBreakerOnShed(t *testing.T) {
	var now time.Time
	sheds := 0
	b := &Breaker{FailureThreshold: 1, Clock: func() time.Time { return now }, OnShed: func() { sheds++ }}
	_ = b.Allow()
	b.Failure()
	for i := 0; i < 3; i++ {
		_ = b.Allow()
	}
	if sheds != 3 {
		t.Fatalf("sheds = %d, want 3", sheds)
	}
}

func TestRunComposesRetryAndBreaker(t *testing.T) {
	// A breaker that opens after 2 failures plus a retry whose backoff
	// outlasts the cooldown: the composed call should shed during the
	// cooldown, then probe, then succeed once the fault clears.
	var now time.Time
	clock := func() time.Time { return now }
	b := &Breaker{FailureThreshold: 2, Cooldown: 30 * time.Millisecond, Clock: clock}
	r := &Retry{
		MaxElapsed: time.Second,
		BaseDelay:  20 * time.Millisecond,
		MaxDelay:   20 * time.Millisecond,
		Clock:      clock,
		Sleep:      func(d time.Duration) { now = now.Add(d) },
	}
	calls := 0
	err := Run(r, b, func() error {
		calls++
		if now.Before(time.Time{}.Add(50 * time.Millisecond)) {
			return MarkRetryable(errors.New("daemon down"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("composed call failed: %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("breaker = %v, want closed", b.State())
	}
	if calls < 2 {
		t.Fatalf("calls = %d, want the fault exercised", calls)
	}
}

func TestRunNilComponents(t *testing.T) {
	calls := 0
	if err := Run(nil, nil, func() error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	fatal := errors.New("fatal")
	if err := Run(nil, nil, func() error { return fatal }); !errors.Is(err, fatal) {
		t.Fatalf("err = %v", err)
	}
}
