// Package resilience provides the client-side fault-handling primitives
// the Crayfish pipeline leans on wherever a remote call can fail:
// exponential backoff with jitter (Retry), a three-state circuit breaker
// (Breaker), and a typed "retryable" error marker so transports can tell
// callers which failures are worth another attempt.
//
// The package is a base layer (stdlib-only, see docs/STATIC_ANALYSIS.md):
// it never imports other crayfish packages, so both the transports
// (internal/grpcish, internal/broker) and the serving clients can depend
// on it without cycles.
//
// Determinism contract: Retry's jitter comes from a seeded math/rand
// source, and both Retry and Breaker accept injected Clock/Sleep hooks,
// so a fault-injection run (internal/faults) replays byte-identically.
package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// markedErr wraps an error to flag it as retryable. It preserves the
// wrapped error for errors.Is/As chains.
type markedErr struct{ err error }

func (m *markedErr) Error() string { return m.err.Error() }
func (m *markedErr) Unwrap() error { return m.err }

// MarkRetryable flags err as transient: a Retry wrapping the operation
// will attempt it again. Marking nil returns nil.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &markedErr{err: err}
}

// IsRetryable reports whether err (or anything it wraps) was flagged
// with MarkRetryable.
func IsRetryable(err error) bool {
	var m *markedErr
	return errors.As(err, &m)
}

// ErrOpen is returned (wrapped retryable) when a Breaker sheds a call
// because the circuit is open.
var ErrOpen = errors.New("resilience: circuit open")

// State is a circuit breaker's position.
type State int32

// Breaker states: Closed passes calls through, Open sheds them, HalfOpen
// lets a single probe through after the cooldown.
const (
	Closed State = iota
	HalfOpen
	Open
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Breaker is a three-state circuit breaker. The zero value is usable
// (defaults fill in on first use); all methods are safe for concurrent
// use.
//
// Closed → Open after FailureThreshold consecutive failures; Open →
// HalfOpen after Cooldown elapses (one probe call passes); HalfOpen →
// Closed on probe success, back to Open on probe failure.
type Breaker struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// circuit (default 5).
	FailureThreshold int
	// Cooldown is how long the circuit stays open before a probe is
	// allowed (default 100ms).
	Cooldown time.Duration
	// Clock supplies the current time (default time.Now); injected by
	// the fault layer for deterministic replay.
	Clock func() time.Time
	// OnChange, if set, observes every state transition. Called outside
	// the breaker's lock.
	OnChange func(from, to State)
	// OnShed, if set, observes every shed (rejected) call. Called
	// outside the breaker's lock.
	OnShed func()

	mu       sync.Mutex
	state    State
	failures int
	openedAt time.Time
	probing  bool
}

func (b *Breaker) now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.FailureThreshold <= 0 {
		return 5
	}
	return b.FailureThreshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 100 * time.Millisecond
	}
	return b.Cooldown
}

// State returns the breaker's current position. A nil breaker is always
// Closed.
func (b *Breaker) State() State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a call may proceed. It returns nil to admit the
// call, or a retryable error wrapping ErrOpen when the call is shed.
// Every admitted call must be followed by exactly one Success or
// Failure. A nil breaker admits everything.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	switch b.state {
	case Closed:
		b.mu.Unlock()
		return nil
	case Open:
		if b.now().Sub(b.openedAt) >= b.cooldown() {
			from := b.state
			b.state = HalfOpen
			b.probing = true
			b.mu.Unlock()
			b.change(from, HalfOpen)
			return nil
		}
	case HalfOpen:
		if !b.probing {
			b.probing = true
			b.mu.Unlock()
			return nil
		}
	}
	b.mu.Unlock()
	if b.OnShed != nil {
		b.OnShed()
	}
	return MarkRetryable(fmt.Errorf("%w (retry after %v)", ErrOpen, b.cooldown()))
}

// Success records a successful call admitted by Allow.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	from := b.state
	b.failures = 0
	b.probing = false
	if b.state == HalfOpen {
		b.state = Closed
	}
	to := b.state
	b.mu.Unlock()
	if from != to {
		b.change(from, to)
	}
}

// Failure records a failed call admitted by Allow.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	from := b.state
	b.probing = false
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.threshold() {
			b.state = Open
			b.openedAt = b.now()
		}
	case HalfOpen:
		b.state = Open
		b.openedAt = b.now()
	case Open:
		// A failure landing while already open (late probe) refreshes
		// the cooldown window.
		b.openedAt = b.now()
	}
	to := b.state
	b.mu.Unlock()
	if from != to {
		b.change(from, to)
	}
}

func (b *Breaker) change(from, to State) {
	if b.OnChange != nil {
		b.OnChange(from, to)
	}
}

// Retry retries an operation with capped exponential backoff and
// deterministic jitter. The zero value is usable (defaults fill in);
// safe for concurrent use.
type Retry struct {
	// Attempts is the total attempt budget including the first call
	// (default 4). Ignored when MaxElapsed is set.
	Attempts int
	// BaseDelay is the first backoff (default 10ms); each retry doubles
	// it up to MaxDelay (default 1s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter is the fraction of each delay randomised around its centre
	// (default 0.2, i.e. ±10%).
	Jitter float64
	// Seed seeds the jitter PRNG (default 1) so two runs with the same
	// seed back off identically.
	Seed int64
	// MaxElapsed, when positive, bounds the retry loop by wall time
	// instead of attempt count.
	MaxElapsed time.Duration
	// Sleep and Clock are injectable for tests and the fault layer
	// (defaults time.Sleep / time.Now).
	Sleep func(time.Duration)
	Clock func() time.Time
	// OnAttempt, if set, observes every retry (attempt numbers start at
	// 1 for the first *re*try) with the error that caused it.
	OnAttempt func(attempt int, err error)

	mu  sync.Mutex
	rng *rand.Rand
}

func (r *Retry) attempts() int {
	if r.Attempts <= 0 {
		return 4
	}
	return r.Attempts
}

func (r *Retry) baseDelay() time.Duration {
	if r.BaseDelay <= 0 {
		return 10 * time.Millisecond
	}
	return r.BaseDelay
}

func (r *Retry) maxDelay() time.Duration {
	if r.MaxDelay <= 0 {
		return time.Second
	}
	return r.MaxDelay
}

func (r *Retry) jitter() float64 {
	if r.Jitter <= 0 {
		return 0.2
	}
	return r.Jitter
}

func (r *Retry) now() time.Time {
	if r.Clock != nil {
		return r.Clock()
	}
	return time.Now()
}

func (r *Retry) sleep(d time.Duration) {
	if r.Sleep != nil {
		r.Sleep(d)
		return
	}
	time.Sleep(d)
}

// backoff returns the delay before retry number attempt (1-based),
// exponential from BaseDelay, capped at MaxDelay, jittered.
func (r *Retry) backoff(attempt int) time.Duration {
	d := r.baseDelay()
	max := r.maxDelay()
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	j := r.jitter()
	r.mu.Lock()
	if r.rng == nil {
		seed := r.Seed
		if seed == 0 {
			seed = 1
		}
		r.rng = rand.New(rand.NewSource(seed))
	}
	f := r.rng.Float64()
	r.mu.Unlock()
	// Scale into [1-j/2, 1+j/2): jitter spreads around the nominal delay.
	scaled := float64(d) * (1 - j/2 + j*f)
	return time.Duration(scaled)
}

// Do runs op, retrying retryable errors (IsRetryable) with backoff until
// the attempt or elapsed budget is spent. Non-retryable errors return
// immediately. A nil Retry runs op exactly once.
func (r *Retry) Do(op func() error) error {
	if r == nil {
		return op()
	}
	start := r.now()
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || !IsRetryable(err) {
			return err
		}
		if r.MaxElapsed > 0 {
			if r.now().Sub(start) >= r.MaxElapsed {
				return err
			}
		} else if attempt >= r.attempts() {
			return err
		}
		if r.OnAttempt != nil {
			r.OnAttempt(attempt, err)
		}
		r.sleep(r.backoff(attempt))
	}
}

// Run composes the breaker around op and the retry loop around both:
// each attempt first asks the breaker for admission (a shed counts as a
// retryable failure of that attempt, so a retry can ride out the
// cooldown), then reports the outcome back. Either component may be nil.
func Run(r *Retry, b *Breaker, op func() error) error {
	guarded := func() error {
		if err := b.Allow(); err != nil {
			return err
		}
		err := op()
		if err != nil {
			b.Failure()
			return err
		}
		b.Success()
		return nil
	}
	if r == nil {
		return guarded()
	}
	return r.Do(guarded)
}
