// Package batching implements the dynamic micro-batcher behind the
// scoring operator's batch-dimension lever (§4, Figures 6–9 of the
// paper): concurrent per-record transform invocations — arriving from
// any number of source partitions and operator instances — are
// coalesced into one multi-record scorer call, then demultiplexed back
// to per-record results that are byte-identical to the unbatched path.
//
// A batch is cut by whichever trigger fires first:
//
//   - size: the pending batch reaches the current target size, and the
//     request that completed it flushes synchronously (leader flush);
//   - linger: the batch's oldest request has waited Policy.Linger, and
//     the batch ships partially filled so latency stays bounded at low
//     rates.
//
// With Policy.SLO set, an AIMD controller tunes the target size per
// engine×serving combination: while the observed p95 request latency
// (enqueue → scored) stays at or under the SLO the target grows by one
// per observation window (additive increase); a breach halves it
// (multiplicative decrease). Without an SLO the target is fixed at
// Policy.MaxBatch.
//
// Time is virtual-clock-disciplined like the broker: every wall-clock
// read and linger wait goes through an injectable Clock, so tests drive
// the triggers deterministically and the crayfishlint clockdiscipline
// analyzer covers this package.
//
// Concurrency contract: Do is safe for concurrent use from any number
// of goroutines (that concurrency is the batching opportunity). Close
// flushes the open batch and joins every linger watcher; no Do calls
// may start after Close.
package batching

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"crayfish/internal/telemetry"
)

// BatchFunc scores several record values in one invocation. Outputs are
// positional: out[i] is the scored form of values[i], and implementations
// must return exactly len(values) outputs on success. An error fails the
// whole invocation; the batcher then isolates failures by re-running
// each record through the single-record fallback.
type BatchFunc func(values [][]byte) ([][]byte, error)

// SingleFunc scores one record value — the unbatched fallback used to
// isolate per-record failures when a whole-batch invocation errors.
type SingleFunc func(value []byte) ([]byte, error)

// ErrClosed is returned by Do after Close.
var ErrClosed = errors.New("batching: batcher closed")

// Policy configures the dynamic batcher.
type Policy struct {
	// MaxBatch caps records per scorer invocation (the paper's bsz
	// sweep upper bound for this operator). Zero means 16.
	MaxBatch int
	// MinBatch floors the adaptive target. Zero means 1.
	MinBatch int
	// Linger bounds how long the oldest pending record waits before a
	// partial batch ships. Zero means 2ms. It must be positive: with no
	// deadline a lone record under the size target would wait forever.
	Linger time.Duration
	// SLO, when positive, enables the AIMD controller against this p95
	// request-latency target (enqueue → scored result). Zero fixes the
	// target at MaxBatch.
	SLO time.Duration
	// Window is the number of completed requests per controller
	// decision. Zero means 64.
	Window int
}

// WithDefaults fills zero fields with the documented defaults.
func (p Policy) WithDefaults() Policy {
	if p.MaxBatch <= 0 {
		p.MaxBatch = 16
	}
	if p.MinBatch <= 0 {
		p.MinBatch = 1
	}
	if p.MinBatch > p.MaxBatch {
		p.MinBatch = p.MaxBatch
	}
	if p.Linger <= 0 {
		p.Linger = 2 * time.Millisecond
	}
	if p.Window <= 0 {
		p.Window = 64
	}
	return p
}

// Clock abstracts time for the batcher so tests (and deterministic
// experiments) inject a virtual clock instead of the wall clock.
type Clock struct {
	// Now reads the current time (request enqueue/complete stamps).
	Now func() time.Time
	// After returns a channel that receives after d elapses (the
	// linger deadline).
	After func(d time.Duration) <-chan time.Time
}

// RealClock is the wall-clock default used outside tests.
func RealClock() Clock {
	return Clock{
		Now:   time.Now,   //lint:allow clockdiscipline documented default; tests inject a virtual clock
		After: time.After, //lint:allow clockdiscipline documented default linger timer; tests inject a virtual clock
	}
}

// Config assembles a Batcher.
type Config struct {
	Policy Policy
	// Batch is the multi-record scoring path (required).
	Batch BatchFunc
	// Single, when set, isolates per-record failures after a batch
	// error; records whose fallback succeeds are not dropped. Nil
	// propagates the batch error to every coalesced record.
	Single SingleFunc
	// Metrics publishes sps.batch.* telemetry (see
	// docs/OBSERVABILITY.md); nil disables it at near-zero cost.
	Metrics *telemetry.Registry
	// Clock defaults to RealClock.
	Clock Clock
}

// Metric names, documented in docs/OBSERVABILITY.md (SPS stage).
const (
	metricBatchSize   = "sps.batch.size"
	metricLingerFlush = "sps.batch.linger_flush"
	metricSizeFlush   = "sps.batch.size_flush"
	metricTarget      = "sps.batch.target"
)

// request is one coalesced Do call.
type request struct {
	value []byte
	out   []byte
	err   error
	done  chan struct{}
	start time.Time
}

// pending is the open batch being assembled. cut is closed when the
// batch is taken for flushing so its linger watcher stands down.
type pending struct {
	reqs []*request
	cut  chan struct{}
}

// Batcher coalesces concurrent Do calls into BatchFunc invocations.
type Batcher struct {
	policy  Policy
	batch   BatchFunc
	single  SingleFunc
	clock   Clock
	sizeH   *telemetry.Histogram
	lingerC *telemetry.Counter
	sizeC   *telemetry.Counter
	targetG *telemetry.Gauge

	mu     sync.Mutex
	cur    *pending
	target int
	closed bool

	stop     chan struct{} // closed by Close; wakes idle linger watchers
	watchers sync.WaitGroup
	closing  sync.Once

	// AIMD controller state: a window of completed-request latencies.
	ctlMu  sync.Mutex
	window []int64
}

// New builds a batcher. The policy is defaulted via WithDefaults; the
// adaptive target starts at MinBatch (slow start) when an SLO is set,
// at MaxBatch otherwise.
func New(cfg Config) (*Batcher, error) {
	if cfg.Batch == nil {
		return nil, errors.New("batching: config needs a Batch function")
	}
	p := cfg.Policy.WithDefaults()
	clock := cfg.Clock
	if clock.Now == nil || clock.After == nil {
		clock = RealClock()
	}
	b := &Batcher{
		policy:  p,
		batch:   cfg.Batch,
		single:  cfg.Single,
		clock:   clock,
		sizeH:   cfg.Metrics.Histogram(metricBatchSize),
		lingerC: cfg.Metrics.Counter(metricLingerFlush),
		sizeC:   cfg.Metrics.Counter(metricSizeFlush),
		targetG: cfg.Metrics.Gauge(metricTarget),
		stop:    make(chan struct{}),
	}
	if p.SLO > 0 {
		b.target = p.MinBatch
		b.window = make([]int64, 0, p.Window)
	} else {
		b.target = p.MaxBatch
	}
	b.targetG.Set(int64(b.target))
	return b, nil
}

// Target reports the current batch-size target (fixed at MaxBatch
// without an SLO; AIMD-tuned with one).
func (b *Batcher) Target() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.target
}

// Do submits one record value and blocks until its scored result is
// available. The caller that completes a batch flushes it on its own
// goroutine (leader flush), so several batches can be in flight at
// once; everyone else parks on their request's done channel. value is
// held only until Do returns: the flush that scores it completes
// before the request's done channel closes.
//
//lint:lent value
func (b *Batcher) Do(value []byte) ([]byte, error) {
	r := &request{value: value, done: make(chan struct{}), start: b.clock.Now()}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	if b.cur == nil {
		b.cur = &pending{cut: make(chan struct{})}
		b.watchers.Add(1)
		go b.lingerWatch(b.cur)
	}
	cur := b.cur
	cur.reqs = append(cur.reqs, r)
	var take *pending
	if len(cur.reqs) >= b.target {
		take = b.takeLocked()
	}
	b.mu.Unlock()
	if take != nil {
		b.sizeC.Inc()
		b.flush(take)
	}
	<-r.done
	return r.out, r.err
}

// takeLocked detaches the open batch for flushing. Callers hold b.mu.
func (b *Batcher) takeLocked() *pending {
	take := b.cur
	b.cur = nil
	close(take.cut)
	return take
}

// lingerWatch enforces the linger deadline for one batch: if the batch
// is still open when the deadline passes, it ships partially filled.
func (b *Batcher) lingerWatch(p *pending) {
	defer b.watchers.Done()
	select {
	case <-b.clock.After(b.policy.Linger):
	case <-p.cut:
		return // cut by size trigger or Close; they flush it
	case <-b.stop:
		return // Close drains the open batch itself
	}
	b.mu.Lock()
	var take *pending
	if b.cur == p {
		take = b.takeLocked()
	}
	b.mu.Unlock()
	if take != nil {
		b.lingerC.Inc()
		b.flush(take)
	}
}

// flush runs the batch function over the coalesced values and hands
// each request its result. A batch-level failure (error or output
// count mismatch) falls back to scoring each record alone, so only the
// records that actually fail surface errors — partial-batch faults
// drop just their own records.
func (b *Batcher) flush(p *pending) {
	values := make([][]byte, len(p.reqs))
	for i, r := range p.reqs {
		values[i] = r.value
	}
	b.sizeH.Record(int64(len(values)))
	outs, err := b.batch(values)
	if err == nil && len(outs) != len(values) {
		err = fmt.Errorf("batching: batch transform returned %d outputs for %d inputs", len(outs), len(values))
	}
	if err != nil {
		for _, r := range p.reqs {
			if b.single != nil {
				r.out, r.err = b.single(r.value)
			} else {
				r.err = err
			}
		}
	} else {
		for i, r := range p.reqs {
			r.out = outs[i]
		}
	}
	if b.policy.SLO > 0 {
		b.observe(p.reqs)
	}
	for _, r := range p.reqs {
		close(r.done)
	}
}

// observe feeds completed-request latencies to the AIMD controller.
// Every full window it compares the window's p95 against the SLO:
// under (or at) the target grows the batch size by one, a breach
// halves it, both clamped to [MinBatch, MaxBatch].
func (b *Batcher) observe(reqs []*request) {
	end := b.clock.Now()
	b.ctlMu.Lock()
	for _, r := range reqs {
		b.window = append(b.window, end.Sub(r.start).Nanoseconds())
	}
	if len(b.window) < b.policy.Window {
		b.ctlMu.Unlock()
		return
	}
	w := append([]int64(nil), b.window...)
	b.window = b.window[:0]
	b.ctlMu.Unlock()

	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	p95 := w[(len(w)*95)/100]

	b.mu.Lock()
	if time.Duration(p95) <= b.policy.SLO {
		if b.target < b.policy.MaxBatch {
			b.target++
		}
	} else {
		b.target /= 2
		if b.target < b.policy.MinBatch {
			b.target = b.policy.MinBatch
		}
	}
	t := b.target
	b.mu.Unlock()
	b.targetG.Set(int64(t))
}

// Close flushes the open batch, rejects further Do calls, and joins
// every linger watcher. It is idempotent and safe to call concurrently
// with in-flight Do calls (they complete normally).
func (b *Batcher) Close() {
	b.closing.Do(func() {
		b.mu.Lock()
		b.closed = true
		var take *pending
		if b.cur != nil {
			take = b.takeLocked()
		}
		b.mu.Unlock()
		close(b.stop)
		if take != nil {
			b.lingerC.Inc() // a drain is a deadline flush, not a full batch
			b.flush(take)
		}
	})
	b.watchers.Wait()
}
