package batching

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crayfish/internal/telemetry"
)

// fakeClock is a hand-cranked virtual clock: Now reads a settable
// instant and After hands every watcher the same manually-fired
// channel, so tests drive the linger trigger deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
	ch  chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(0, 0), ch: make(chan time.Time)}
}

func (f *fakeClock) Clock() Clock {
	return Clock{
		Now: func() time.Time {
			f.mu.Lock()
			defer f.mu.Unlock()
			return f.now
		},
		After: func(time.Duration) <-chan time.Time { return f.ch },
	}
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// fireLinger wakes one linger watcher, as if its deadline passed.
func (f *fakeClock) fireLinger() { f.ch <- time.Time{} }

// echoBatch is the reference batch transform: every value gains a
// "!scored" suffix, positionally.
func echoBatch(values [][]byte) ([][]byte, error) {
	outs := make([][]byte, len(values))
	for i, v := range values {
		outs[i] = append(append([]byte(nil), v...), []byte("!scored")...)
	}
	return outs, nil
}

func echoSingle(value []byte) ([]byte, error) {
	return append(append([]byte(nil), value...), []byte("!scored")...), nil
}

// pendingLen reads the open batch's size (test-only).
func (b *Batcher) pendingLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cur == nil {
		return 0
	}
	return len(b.cur.reqs)
}

func TestSizeTriggerCoalescesAndDemuxes(t *testing.T) {
	fc := newFakeClock()
	reg := telemetry.New()
	var calls atomic.Int64
	var maxSeen atomic.Int64
	b, err := New(Config{
		Policy: Policy{MaxBatch: 4, Linger: time.Hour},
		Batch: func(values [][]byte) ([][]byte, error) {
			calls.Add(1)
			if n := int64(len(values)); n > maxSeen.Load() {
				maxSeen.Store(n)
			}
			return echoBatch(values)
		},
		Metrics: reg,
		Clock:   fc.Clock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 8 // two full batches of 4
	var wg sync.WaitGroup
	results := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = b.Do([]byte(fmt.Sprintf("r%d", i)))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("record %d: %v", i, errs[i])
		}
		want := []byte(fmt.Sprintf("r%d!scored", i))
		if !bytes.Equal(results[i], want) {
			t.Fatalf("record %d demuxed wrong: %q != %q", i, results[i], want)
		}
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("batch invocations = %d, want 2", got)
	}
	if got := maxSeen.Load(); got != 4 {
		t.Fatalf("max batch size seen = %d, want 4", got)
	}
	if got := reg.Counter(metricSizeFlush).Value(); got != 2 {
		t.Fatalf("%s = %d, want 2", metricSizeFlush, got)
	}
	if got := reg.Counter(metricLingerFlush).Value(); got != 0 {
		t.Fatalf("%s = %d, want 0", metricLingerFlush, got)
	}
	if got := reg.Histogram(metricBatchSize).Count(); got != 2 {
		t.Fatalf("%s count = %d, want 2", metricBatchSize, got)
	}
}

func TestLingerTriggerShipsPartialBatch(t *testing.T) {
	fc := newFakeClock()
	reg := telemetry.New()
	b, err := New(Config{
		Policy:  Policy{MaxBatch: 16, Linger: time.Millisecond},
		Batch:   echoBatch,
		Metrics: reg,
		Clock:   fc.Clock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	results := make([][]byte, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = b.Do([]byte(fmt.Sprintf("r%d", i)))
		}(i)
	}
	// Wait until both records are coalesced, then fire the deadline.
	for b.pendingLen() != 2 {
		time.Sleep(50 * time.Microsecond)
	}
	fc.fireLinger()
	wg.Wait()
	for i := 0; i < 2; i++ {
		want := []byte(fmt.Sprintf("r%d!scored", i))
		if !bytes.Equal(results[i], want) {
			t.Fatalf("record %d: %q != %q", i, results[i], want)
		}
	}
	if got := reg.Counter(metricLingerFlush).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", metricLingerFlush, got)
	}
	if got := reg.Counter(metricSizeFlush).Value(); got != 0 {
		t.Fatalf("%s = %d, want 0", metricSizeFlush, got)
	}
}

func TestPartialBatchErrorDropsOnlyFailingRecords(t *testing.T) {
	fc := newFakeClock()
	wantErr := errors.New("record poisoned")
	b, err := New(Config{
		Policy: Policy{MaxBatch: 4, Linger: time.Hour},
		Batch: func(values [][]byte) ([][]byte, error) {
			return nil, errors.New("whole batch failed")
		},
		Single: func(value []byte) ([]byte, error) {
			if bytes.Equal(value, []byte("poison")) {
				return nil, wantErr
			}
			return echoSingle(value)
		},
		Clock: fc.Clock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	inputs := [][]byte{[]byte("a"), []byte("poison"), []byte("b"), []byte("c")}
	var wg sync.WaitGroup
	results := make([][]byte, len(inputs))
	errs := make([]error, len(inputs))
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = b.Do(inputs[i])
		}(i)
	}
	wg.Wait()
	for i := range inputs {
		if i == 1 {
			if !errors.Is(errs[i], wantErr) {
				t.Fatalf("poisoned record error = %v, want %v", errs[i], wantErr)
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("healthy record %d failed: %v", i, errs[i])
		}
		want := append(append([]byte(nil), inputs[i]...), []byte("!scored")...)
		if !bytes.Equal(results[i], want) {
			t.Fatalf("record %d: %q != %q", i, results[i], want)
		}
	}
}

func TestOutputCountMismatchTriggersFallback(t *testing.T) {
	fc := newFakeClock()
	var singles atomic.Int64
	b, err := New(Config{
		Policy: Policy{MaxBatch: 2, Linger: time.Hour},
		Batch: func(values [][]byte) ([][]byte, error) {
			return values[:1], nil // one output short
		},
		Single: func(value []byte) ([]byte, error) {
			singles.Add(1)
			return echoSingle(value)
		},
		Clock: fc.Clock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := b.Do([]byte{byte(i)})
			if err != nil || !bytes.HasSuffix(out, []byte("!scored")) {
				t.Errorf("record %d: %q, %v", i, out, err)
			}
		}(i)
	}
	wg.Wait()
	if got := singles.Load(); got != 2 {
		t.Fatalf("fallback singles = %d, want 2", got)
	}
}

func TestBatchErrorWithoutFallbackPropagates(t *testing.T) {
	fc := newFakeClock()
	wantErr := errors.New("scorer down")
	b, err := New(Config{
		Policy: Policy{MaxBatch: 1, Linger: time.Hour},
		Batch:  func([][]byte) ([][]byte, error) { return nil, wantErr },
		Clock:  fc.Clock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Do([]byte("x")); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestAIMDGrowsUnderSLOAndHalvesOnBreach(t *testing.T) {
	fc := newFakeClock()
	reg := telemetry.New()
	b, err := New(Config{
		Policy:  Policy{MaxBatch: 8, MinBatch: 1, Linger: time.Hour, SLO: time.Millisecond, Window: 4},
		Batch:   echoBatch,
		Metrics: reg,
		Clock:   fc.Clock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := b.Target(); got != 1 {
		t.Fatalf("adaptive target starts at %d, want MinBatch 1", got)
	}

	window := func(age time.Duration) []*request {
		reqs := make([]*request, 4)
		for i := range reqs {
			reqs[i] = &request{start: fc.Clock().Now().Add(-age)}
		}
		return reqs
	}
	// Additive increase: four under-SLO windows, one step each.
	for i := 0; i < 4; i++ {
		b.observe(window(0))
	}
	if got := b.Target(); got != 5 {
		t.Fatalf("target after 4 good windows = %d, want 5", got)
	}
	if got := reg.Gauge(metricTarget).Value(); got != 5 {
		t.Fatalf("%s gauge = %d, want 5", metricTarget, got)
	}
	// Multiplicative decrease on breach.
	b.observe(window(10 * time.Millisecond))
	if got := b.Target(); got != 2 {
		t.Fatalf("target after breach = %d, want 2 (halved from 5, floored at 2)", got)
	}
	// Clamp at MaxBatch.
	for i := 0; i < 20; i++ {
		b.observe(window(0))
	}
	if got := b.Target(); got != 8 {
		t.Fatalf("target clamps at %d, want MaxBatch 8", got)
	}
	// Halving never goes below MinBatch.
	for i := 0; i < 10; i++ {
		b.observe(window(10 * time.Millisecond))
	}
	if got := b.Target(); got != 1 {
		t.Fatalf("target floors at %d, want MinBatch 1", got)
	}
}

func TestCloseFlushesOpenBatchAndRejectsNewWork(t *testing.T) {
	fc := newFakeClock()
	b, err := New(Config{
		Policy: Policy{MaxBatch: 16, Linger: time.Hour},
		Batch:  echoBatch,
		Clock:  fc.Clock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var out []byte
	var doErr error
	go func() {
		defer close(done)
		out, doErr = b.Do([]byte("straggler"))
	}()
	for b.pendingLen() != 1 {
		time.Sleep(50 * time.Microsecond)
	}
	b.Close()
	<-done
	if doErr != nil || !bytes.Equal(out, []byte("straggler!scored")) {
		t.Fatalf("drained record: %q, %v", out, doErr)
	}
	if _, err := b.Do([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after Close = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.WithDefaults()
	if p.MaxBatch != 16 || p.MinBatch != 1 || p.Linger != 2*time.Millisecond || p.Window != 64 {
		t.Fatalf("defaults: %+v", p)
	}
	q := Policy{MaxBatch: 4, MinBatch: 9}.WithDefaults()
	if q.MinBatch != 4 {
		t.Fatalf("MinBatch not clamped to MaxBatch: %+v", q)
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a config without a Batch function")
	}
}

// TestConcurrentStress hammers a real-clock batcher from many
// goroutines; under -race this is the package's concurrency proof.
func TestConcurrentStress(t *testing.T) {
	reg := telemetry.New()
	b, err := New(Config{
		Policy:  Policy{MaxBatch: 8, Linger: 100 * time.Microsecond, SLO: 50 * time.Millisecond, Window: 16},
		Batch:   echoBatch,
		Single:  echoSingle,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				in := []byte(fmt.Sprintf("w%d-%d", w, i))
				out, err := b.Do(in)
				if err != nil {
					t.Errorf("w%d-%d: %v", w, i, err)
					return
				}
				want := append(append([]byte(nil), in...), []byte("!scored")...)
				if !bytes.Equal(out, want) {
					t.Errorf("w%d-%d demuxed wrong: %q", w, i, out)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.Close()
	total := reg.Counter(metricSizeFlush).Value() + reg.Counter(metricLingerFlush).Value()
	if total == 0 {
		t.Fatal("no flushes recorded")
	}
	if got := reg.Histogram(metricBatchSize).Sum(); got != workers*perWorker {
		t.Fatalf("batch size histogram sum = %d, want %d records", got, workers*perWorker)
	}
}
