package loadgen

import (
	"strings"
	"testing"
	"time"
)

// synthetic builds a latency population with known percentiles: n
// samples climbing linearly from lo to hi.
func synthetic(n int, lo, hi time.Duration) []time.Duration {
	s := make([]time.Duration, n)
	for i := range s {
		s[i] = lo + time.Duration(int64(hi-lo)*int64(i)/int64(n-1))
	}
	return s
}

// TestSummarizePercentiles pins the percentile extraction on a known
// distribution: 100 samples from 1ms to 100ms.
func TestSummarizePercentiles(t *testing.T) {
	o := Summarize(synthetic(100, time.Millisecond, 100*time.Millisecond), 500)
	if o.P50 != 51*time.Millisecond || o.P90 != 91*time.Millisecond ||
		o.P95 != 96*time.Millisecond || o.P99 != 100*time.Millisecond {
		t.Fatalf("percentiles: %+v", o)
	}
	if o.Throughput != 500 {
		t.Fatalf("throughput %v", o.Throughput)
	}
	if empty := Summarize(nil, 10); empty.P99 != 0 || empty.Throughput != 10 {
		t.Fatalf("empty summary: %+v", empty)
	}
}

// TestScenarioVerdicts validates each scenario's constraint logic
// against synthetic distributions with known outcomes.
func TestScenarioVerdicts(t *testing.T) {
	// 100 samples, 1..100ms: p90 = 91ms, p99 = 100ms.
	o := Summarize(synthetic(100, time.Millisecond, 100*time.Millisecond), 800)
	cases := []struct {
		name     string
		sc       Scenario
		pass     bool
		metric   float64
		bound    float64
		unit     string
		constrnt string
	}{
		{
			name: "single-stream pass (p90 91ms <= 95ms)",
			sc:   Scenario{Kind: SingleStream, LatencyBound: 95 * time.Millisecond},
			pass: true, metric: 91, bound: 95, unit: "ms", constrnt: "p90 <= 95ms",
		},
		{
			name: "single-stream fail (p90 91ms > 90ms)",
			sc:   Scenario{Kind: SingleStream, LatencyBound: 90 * time.Millisecond},
			pass: false, metric: 91, bound: 90, unit: "ms", constrnt: "p90 <= 90ms",
		},
		{
			name: "multi-stream books p99",
			sc:   Scenario{Kind: MultiStream, LatencyBound: 99 * time.Millisecond, Streams: 4},
			pass: false, metric: 100, bound: 99, unit: "ms", constrnt: "p99 <= 99ms",
		},
		{
			name: "server pass at p99",
			sc:   Scenario{Kind: Server, TargetRate: 500, LatencyBound: 100 * time.Millisecond},
			pass: true, metric: 100, bound: 100, unit: "ms", constrnt: "p99 <= 100ms",
		},
		{
			name: "server explicit p50",
			sc:   Scenario{Kind: Server, TargetRate: 500, LatencyBound: 50 * time.Millisecond, Percentile: 0.5},
			pass: false, metric: 51, bound: 50, unit: "ms", constrnt: "p50 <= 50ms",
		},
		{
			name: "offline pass (800 >= 750)",
			sc:   Scenario{Kind: Offline, MinThroughput: 750},
			pass: true, metric: 800, bound: 750, unit: "events/s", constrnt: "throughput >= 750 events/s",
		},
		{
			name: "offline fail (800 < 900)",
			sc:   Scenario{Kind: Offline, MinThroughput: 900},
			pass: false, metric: 800, bound: 900, unit: "events/s", constrnt: "throughput >= 900 events/s",
		},
		{
			name: "offline unconstrained booking",
			sc:   Scenario{Kind: Offline},
			pass: true, metric: 800, bound: 0, unit: "events/s", constrnt: "throughput booked",
		},
	}
	for _, c := range cases {
		v := c.sc.Judge(o)
		if v.Pass != c.pass || v.Metric != c.metric || v.Bound != c.bound ||
			v.Unit != c.unit || v.Constraint != c.constrnt {
			t.Errorf("%s: got %+v", c.name, v)
		}
		if v.Scenario != c.sc.Kind {
			t.Errorf("%s: verdict names scenario %q", c.name, v.Scenario)
		}
	}
}

// TestVerdictString: the rendered verdict carries status and constraint.
func TestVerdictString(t *testing.T) {
	sc := Scenario{Kind: Server, TargetRate: 100, LatencyBound: 10 * time.Millisecond}
	v := sc.Judge(Observed{P99: 5 * time.Millisecond})
	s := v.String()
	if !strings.HasPrefix(s, "PASS") || !strings.Contains(s, "p99 <= 10ms") {
		t.Fatalf("verdict string %q", s)
	}
	v = sc.Judge(Observed{P99: 15 * time.Millisecond})
	if !strings.HasPrefix(v.String(), "FAIL") {
		t.Fatalf("verdict string %q", v.String())
	}
}

// TestScenarioNormalize pins the per-kind defaults.
func TestScenarioNormalize(t *testing.T) {
	if n := (Scenario{Kind: SingleStream}).Normalize(); n.Percentile != 0.90 || n.Streams != 1 {
		t.Fatalf("single-stream defaults: %+v", n)
	}
	if n := (Scenario{Kind: MultiStream}).Normalize(); n.Percentile != 0.99 || n.Streams != 4 {
		t.Fatalf("multi-stream defaults: %+v", n)
	}
	if n := (Scenario{Kind: Server}).Normalize(); n.Percentile != 0.99 {
		t.Fatalf("server defaults: %+v", n)
	}
	if n := (Scenario{Kind: MultiStream, Streams: 8, Percentile: 0.95}).Normalize(); n.Streams != 8 || n.Percentile != 0.95 {
		t.Fatalf("explicit values overridden: %+v", n)
	}
}

// TestScenarioValidate covers the malformed-scenario surface.
func TestScenarioValidate(t *testing.T) {
	bad := []Scenario{
		{},
		{Kind: "turbo"},
		{Kind: SingleStream},
		{Kind: MultiStream},
		{Kind: Server, LatencyBound: time.Second},
		{Kind: Server, TargetRate: 100},
		{Kind: Offline, MinThroughput: -1},
		{Kind: Server, TargetRate: 100, LatencyBound: time.Second, Percentile: 0.87},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d (%+v): invalid scenario validated", i, sc)
		}
	}
	good := []Scenario{
		{Kind: SingleStream, LatencyBound: time.Second},
		{Kind: MultiStream, LatencyBound: time.Second, Streams: 2},
		{Kind: Server, TargetRate: 100, LatencyBound: time.Second},
		{Kind: Offline},
		{Kind: Offline, MinThroughput: 50},
	}
	for i, sc := range good {
		if err := sc.Validate(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

// TestScenarioPolicy: server offers Poisson at the target rate with the
// scenario's seed; everything else saturates (closed-loop scenarios are
// gated by the runner, offline is unpaced by definition).
func TestScenarioPolicy(t *testing.T) {
	p := Scenario{Kind: Server, TargetRate: 400, Seed: 11}.Policy()
	if p.Process != ProcessPoisson || p.Rate != 400 || p.Seed != 11 {
		t.Fatalf("server policy: %+v", p)
	}
	for _, k := range []Kind{SingleStream, MultiStream, Offline} {
		if p := (Scenario{Kind: k}).Policy(); p.Process != ProcessSaturate {
			t.Fatalf("%s policy: %+v", k, p)
		}
	}
}
