package loadgen

import (
	"bytes"
	"testing"
	"time"
)

// scheduleBytes renders the canonical conformance form of a policy.
func scheduleBytes(t *testing.T, p Policy, n int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, p, n); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestScheduleDeterminism is the byte-identity contract: the same policy
// (including seed) always renders the identical schedule, and the seed
// actually matters for the stochastic processes.
func TestScheduleDeterminism(t *testing.T) {
	policies := map[string]Policy{
		"constant": Constant(250),
		"poisson":  Poisson(1000, 42),
		"trace":    Trace([]time.Duration{0, time.Millisecond, 5 * time.Millisecond}),
		"phased": Phased(7,
			Phase{Duration: 10 * time.Millisecond, Rate: 1000},
			Phase{Duration: 20 * time.Millisecond, Rate: 100, Process: ProcessPoisson},
		),
	}
	for name, p := range policies {
		a := scheduleBytes(t, p, 512)
		b := scheduleBytes(t, p, 512)
		if a != b {
			t.Errorf("%s: same policy rendered two different schedules", name)
		}
		if a == "" {
			t.Errorf("%s: empty schedule", name)
		}
	}
	if scheduleBytes(t, Poisson(1000, 42), 64) == scheduleBytes(t, Poisson(1000, 43), 64) {
		t.Error("poisson: different seeds produced identical schedules")
	}
	if scheduleBytes(t, Saturate(), 8) != "saturate\n" {
		t.Error("saturate: canonical form changed")
	}
}

// TestScheduleGolden pins exact offsets so an accidental change to the
// generation algorithm (which would silently invalidate every recorded
// experiment) fails loudly. The Poisson draws are stable because Go's
// math/rand sequences are covered by the Go 1 compatibility promise.
func TestScheduleGolden(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		want string
	}{
		{
			name: "constant-250",
			p:    Constant(250),
			want: "0 0 250\n1 4000000 250\n2 8000000 250\n3 12000000 250\n",
		},
		{
			name: "poisson-1000-seed42",
			p:    Poisson(1000, 42),
			want: "0 495738 1000\n1 626285 1000\n2 779518 1000\n3 1117964 1000\n",
		},
		{
			name: "trace",
			p:    Trace([]time.Duration{0, time.Millisecond}),
			want: "0 0 0\n1 1000000 0\n",
		},
	}
	for _, c := range cases {
		if got := scheduleBytes(t, c.p, 4); got != c.want {
			t.Errorf("%s:\n got %q\nwant %q", c.name, got, c.want)
		}
	}
}

// TestTraceExhaustion: a replayed trace ends production, it does not wrap.
func TestTraceExhaustion(t *testing.T) {
	s, err := Trace([]time.Duration{0, time.Millisecond}).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, ok := s.Next(); !ok {
			t.Fatalf("trace ended after %d of 2 arrivals", i)
		}
	}
	if _, _, ok := s.Next(); ok {
		t.Fatal("trace did not end after its last arrival")
	}
}

// TestPhasedCycle checks the phase cycle: rates follow the phase the
// cursor sits in, and the cycle repeats after its total duration.
func TestPhasedCycle(t *testing.T) {
	p := Phased(0,
		Phase{Duration: 10 * time.Millisecond, Rate: 1000},
		Phase{Duration: 10 * time.Millisecond, Rate: 100},
	)
	s, err := p.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	var fast, slow int
	for i := 0; i < 30; i++ {
		off, rate, ok := s.Next()
		if !ok {
			t.Fatal("phased schedule ended")
		}
		inFast := (off % (20 * time.Millisecond)) < 10*time.Millisecond
		switch {
		case inFast && rate == 1000:
			fast++
		case !inFast && rate == 100:
			slow++
		default:
			t.Fatalf("arrival %d at %v reported rate %v", i, off, rate)
		}
	}
	// 10ms at 1000/s = 10 arrivals, then 10ms at 100/s = 1 arrival, and
	// the cycle repeats: both phases must have fired, fast dominating.
	if fast == 0 || slow == 0 || fast <= slow {
		t.Fatalf("phase mix wrong: %d fast, %d slow", fast, slow)
	}
}

// TestPolicyValidate covers the malformed-policy surface.
func TestPolicyValidate(t *testing.T) {
	bad := []Policy{
		{},
		{Process: "warp"},
		Constant(0),
		Poisson(-1, 1),
		Trace(nil),
		Trace([]time.Duration{time.Millisecond, 0}),
		Trace([]time.Duration{-time.Millisecond}),
		Phased(1),
		Phased(1, Phase{Duration: 0, Rate: 10}),
		Phased(1, Phase{Duration: time.Second, Rate: 0}),
		Phased(1, Phase{Duration: time.Second, Rate: 10, Process: ProcessTrace}),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v): invalid policy validated", i, p)
		}
	}
	good := []Policy{
		Constant(10), Poisson(10, 0), Saturate(),
		Trace([]time.Duration{0, 0, time.Millisecond}),
		Phased(0, Phase{Duration: time.Second, Rate: 1, Process: ProcessPoisson}),
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

// vclock is a manually advanced virtual clock; After advances the clock
// to the deadline immediately, so paced waits are instant in tests.
type vclock struct {
	now time.Time
}

func (v *vclock) clock() Clock {
	return Clock{
		Now: func() time.Time { return v.now },
		After: func(d time.Duration) <-chan time.Time {
			v.now = v.now.Add(d)
			ch := make(chan time.Time, 1)
			ch <- v.now
			return ch
		},
	}
}

// TestPacerPacing: the pacer asks for exactly the schedule's inter-
// arrival wait on a virtual clock, and reports zero lag when on time.
func TestPacerPacing(t *testing.T) {
	s, err := Constant(1000).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	vc := &vclock{now: time.Unix(0, 0)}
	p := NewPacer(s, vc.clock())
	p.Start()
	for i := 0; i < 5; i++ {
		wait, lag, rate, ok := p.Tick()
		if !ok || rate != 1000 {
			t.Fatalf("tick %d: ok=%v rate=%v", i, ok, rate)
		}
		if lag != 0 {
			t.Fatalf("tick %d: on-time pacer reported lag %v", i, lag)
		}
		wantWait := time.Duration(0)
		if i > 0 {
			wantWait = time.Millisecond
		}
		if wait != wantWait {
			t.Fatalf("tick %d: wait %v, want %v", i, wait, wantWait)
		}
		if wait > 0 && !p.Sleep(wait, nil) {
			t.Fatalf("tick %d: sleep interrupted", i)
		}
	}
}

// TestPacerDebtCap: a stalled producer owes at most MaxScheduleDebt of
// catch-up; the excess shifts the rest of the schedule forward.
func TestPacerDebtCap(t *testing.T) {
	s, err := Constant(1000).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	vc := &vclock{now: time.Unix(0, 0)}
	p := NewPacer(s, vc.clock())
	p.Start()
	p.Tick() // consume arrival 0 at offset 0
	vc.now = vc.now.Add(3 * time.Second)
	_, lag, _, _ := p.Tick() // arrival 1 was due at 1ms: ~3s late
	if lag != MaxScheduleDebt {
		t.Fatalf("lag %v, want capped at %v", lag, MaxScheduleDebt)
	}
	// The excess was forgiven: arrival 2 (scheduled 2ms) shifted forward
	// by ~3s-1ms-1s, so its remaining lag is just under the cap.
	_, lag, _, _ = p.Tick()
	if lag >= MaxScheduleDebt || lag <= 0 {
		t.Fatalf("post-forgiveness lag %v, want within (0, %v)", lag, MaxScheduleDebt)
	}
}

// TestPacerSaturate: a saturating schedule never waits and never lags.
func TestPacerSaturate(t *testing.T) {
	s, err := Saturate().Schedule()
	if err != nil {
		t.Fatal(err)
	}
	vc := &vclock{now: time.Unix(0, 0)}
	p := NewPacer(s, vc.clock())
	p.Start()
	for i := 0; i < 3; i++ {
		wait, lag, _, ok := p.Tick()
		if !ok || wait != 0 || lag != 0 {
			t.Fatalf("saturating tick %d: wait=%v lag=%v ok=%v", i, wait, lag, ok)
		}
	}
}

// TestPacerSleepStop: a closed stop channel interrupts the paced sleep.
func TestPacerSleepStop(t *testing.T) {
	s, err := Constant(1).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	blocked := Clock{
		Now:   func() time.Time { return time.Unix(0, 0) },
		After: func(d time.Duration) <-chan time.Time { return make(chan time.Time) },
	}
	p := NewPacer(s, blocked)
	stop := make(chan struct{})
	close(stop)
	if p.Sleep(time.Hour, stop) {
		t.Fatal("sleep survived a closed stop channel")
	}
}
