package loadgen

import (
	"fmt"
	"sort"
	"time"
)

// Kind names an MLPerf-style load scenario.
type Kind string

// The four MLPerf Inference scenarios, adapted to the streaming harness
// (docs/SCENARIOS.md has the full contract).
const (
	// SingleStream issues one query at a time — the next arrival waits
	// for the previous completion (issue-on-completion) — and books the
	// p90 latency against the bound.
	SingleStream Kind = "single-stream"
	// MultiStream keeps a fixed number of outstanding queries and books
	// the p99 latency against the bound.
	MultiStream Kind = "multi-stream"
	// Server offers Poisson arrivals at the target rate and books the
	// p99 latency against the bound; this is the scenario the capacity
	// sweep steps to find the knee.
	Server Kind = "server"
	// Offline issues everything with no pacing and books throughput
	// against the floor.
	Offline Kind = "offline"
)

// Scenario is a first-class scenario value: an arrival discipline plus
// the constraint its run is judged against.
type Scenario struct {
	// Kind selects the scenario.
	Kind Kind
	// TargetRate is the offered Poisson rate in events/s (server only).
	TargetRate float64
	// Seed drives the scenario's arrival randomness (server Poisson
	// schedule). Equal seeds yield byte-identical schedules.
	Seed int64
	// LatencyBound is the latency constraint (latency scenarios).
	LatencyBound time.Duration
	// Percentile is the booked latency percentile. Zero defaults per
	// kind: 0.90 for single-stream, 0.99 for multi-stream and server.
	// Only 0.5, 0.9, 0.95 and 0.99 are measured.
	Percentile float64
	// MinThroughput is the offline throughput floor in events/s; zero
	// books the measured throughput with an unconditional pass.
	MinThroughput float64
	// Streams is the multi-stream outstanding-query count (default 4).
	Streams int
}

// Normalize fills kind-specific defaults without mutating the receiver.
func (sc Scenario) Normalize() Scenario {
	switch sc.Kind {
	case SingleStream:
		if sc.Percentile == 0 {
			sc.Percentile = 0.90
		}
		sc.Streams = 1
	case MultiStream:
		if sc.Percentile == 0 {
			sc.Percentile = 0.99
		}
		if sc.Streams <= 0 {
			sc.Streams = 4
		}
	case Server:
		if sc.Percentile == 0 {
			sc.Percentile = 0.99
		}
	}
	return sc
}

// Validate checks the scenario is well formed.
func (sc Scenario) Validate() error {
	sc = sc.Normalize()
	switch sc.Kind {
	case SingleStream, MultiStream:
		if sc.LatencyBound <= 0 {
			return fmt.Errorf("loadgen: %s scenario needs a positive latency bound", sc.Kind)
		}
	case Server:
		if sc.TargetRate <= 0 {
			return fmt.Errorf("loadgen: server scenario needs a positive target rate")
		}
		if sc.LatencyBound <= 0 {
			return fmt.Errorf("loadgen: server scenario needs a positive latency bound")
		}
	case Offline:
		if sc.MinThroughput < 0 {
			return fmt.Errorf("loadgen: offline throughput floor must be non-negative")
		}
	case "":
		return fmt.Errorf("loadgen: scenario needs a kind")
	default:
		return fmt.Errorf("loadgen: unknown scenario kind %q", sc.Kind)
	}
	switch sc.Percentile {
	case 0, 0.5, 0.9, 0.95, 0.99:
	default:
		return fmt.Errorf("loadgen: percentile %v not measured (use 0.5, 0.9, 0.95 or 0.99)", sc.Percentile)
	}
	return nil
}

// Policy derives the scenario's arrival policy. Single- and multi-stream
// are closed-loop: arrivals are gated on completions, so their policy is
// saturation and the runner enforces the outstanding-query window.
func (sc Scenario) Policy() Policy {
	sc = sc.Normalize()
	switch sc.Kind {
	case Server:
		return Poisson(sc.TargetRate, sc.Seed)
	default:
		return Saturate()
	}
}

// Observed is the latency/throughput summary a scenario is judged on.
type Observed struct {
	P50, P90, P95, P99 time.Duration
	// Throughput is the measured rate in events/s.
	Throughput float64
}

// Summarize computes an Observed from raw latency samples and a
// measured throughput; the sample order does not matter.
func Summarize(samples []time.Duration, throughput float64) Observed {
	if len(samples) == 0 {
		return Observed{Throughput: throughput}
	}
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) time.Duration {
		idx := int(q * float64(len(s)))
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	return Observed{
		P50:        at(0.50),
		P90:        at(0.90),
		P95:        at(0.95),
		P99:        at(0.99),
		Throughput: throughput,
	}
}

// percentile picks the booked percentile out of an Observed.
func (o Observed) percentile(q float64) time.Duration {
	switch q {
	case 0.5:
		return o.P50
	case 0.9:
		return o.P90
	case 0.95:
		return o.P95
	default:
		return o.P99
	}
}

// Verdict is a scenario's structured pass/fail outcome: the constraint,
// the measured metric and the bound it was compared against.
type Verdict struct {
	// Scenario is the judged scenario kind.
	Scenario Kind
	// Pass reports whether the constraint held.
	Pass bool
	// Constraint restates the rule in words, e.g. "p99 <= 100ms".
	Constraint string
	// Metric is the measured value (ms for latency scenarios, events/s
	// for offline).
	Metric float64
	// Bound is the constraint's threshold in the same unit; 0 for an
	// unconstrained offline booking.
	Bound float64
	// Unit names the metric's unit ("ms" or "events/s").
	Unit string
}

// String renders the verdict for experiment tables.
func (v Verdict) String() string {
	status := "PASS"
	if !v.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("%s (%s: %.2f %s)", status, v.Constraint, v.Metric, v.Unit)
}

// Judge applies the scenario's constraint to an observed summary.
func (sc Scenario) Judge(o Observed) Verdict {
	sc = sc.Normalize()
	if sc.Kind == Offline {
		v := Verdict{
			Scenario: Offline,
			Metric:   o.Throughput,
			Bound:    sc.MinThroughput,
			Unit:     "events/s",
		}
		if sc.MinThroughput > 0 {
			v.Constraint = fmt.Sprintf("throughput >= %g events/s", sc.MinThroughput)
			v.Pass = o.Throughput >= sc.MinThroughput
		} else {
			v.Constraint = "throughput booked"
			v.Pass = true
		}
		return v
	}
	measured := o.percentile(sc.Percentile)
	boundMs := float64(sc.LatencyBound) / float64(time.Millisecond)
	return Verdict{
		Scenario:   sc.Kind,
		Pass:       measured <= sc.LatencyBound,
		Constraint: fmt.Sprintf("p%g <= %gms", sc.Percentile*100, boundMs),
		Metric:     float64(measured) / float64(time.Millisecond),
		Bound:      boundMs,
		Unit:       "ms",
	}
}
