// Package loadgen is the experiment harness's load generator: it turns a
// declarative arrival-process policy into a deterministic arrival
// schedule and paces a producer against it, in the spirit of the MLPerf
// Inference LoadGen (see PAPERS.md). The paper evaluates every
// engine × serving-tool pair under a single open-loop arrival process;
// real inference serving is judged against distinct load shapes with
// distinct pass/fail constraints, and this package supplies both halves:
// arrival processes (constant, Poisson, trace replay, phased diurnal or
// burst composition, saturation) and the four MLPerf-style scenarios
// with their constraint validators (scenario.go).
//
// Determinism contract (docs/SCENARIOS.md): a Policy is a pure
// description — the same policy (including its seed) always yields a
// byte-identical schedule, pinned by WriteSchedule and the conformance
// suite. All randomness flows from Policy.Seed through one seeded
// generator; no wall-clock value ever influences an arrival offset.
//
// Time discipline: schedules are pure offsets, so only the Pacer touches
// the clock — and it does so exclusively through an injectable Clock,
// like the broker and the micro-batcher, so pacing tests run on a
// virtual clock and the crayfishlint clockdiscipline analyzer covers
// this package.
package loadgen

import (
	"fmt"
	"io"
	"math/rand"
	"time"
)

// ProcessKind names an arrival process.
type ProcessKind string

// Arrival processes.
const (
	// ProcessConstant paces arrivals at a fixed rate: arrival k lands at
	// offset k/Rate. This is the paper's open-loop generator.
	ProcessConstant ProcessKind = "constant"
	// ProcessPoisson draws exponentially distributed inter-arrival gaps
	// at the target rate from the seeded generator — the MLPerf server
	// scenario's arrival process.
	ProcessPoisson ProcessKind = "poisson"
	// ProcessTrace replays an explicit list of arrival offsets once;
	// production ends when the trace is exhausted.
	ProcessTrace ProcessKind = "trace"
	// ProcessPhased cycles through a list of phases (duration + rate +
	// per-phase process), composing diurnal patterns and the legacy
	// periodic-burst generator.
	ProcessPhased ProcessKind = "phased"
	// ProcessSaturate emits with no pacing at all: the producer issues
	// as fast as it can — the paper's saturation probes and the MLPerf
	// offline scenario.
	ProcessSaturate ProcessKind = "saturate"
)

// Phase is one segment of a phased (diurnal/burst) composition.
type Phase struct {
	// Duration is the phase's length within the repeating cycle.
	Duration time.Duration
	// Rate is the phase's target rate in events/s.
	Rate float64
	// Process is the phase-local arrival process: ProcessConstant
	// (default) or ProcessPoisson.
	Process ProcessKind
}

// Policy declaratively describes an arrival process. It is pure data:
// two equal policies always generate byte-identical schedules.
type Policy struct {
	// Process selects the arrival process.
	Process ProcessKind
	// Rate is the target rate in events/s (constant, poisson).
	Rate float64
	// Seed drives every random draw the policy makes (poisson, phased
	// poisson segments). Equal seeds yield byte-identical schedules.
	Seed int64
	// Trace is the explicit arrival-offset list for ProcessTrace;
	// offsets are since run start and must be non-decreasing.
	Trace []time.Duration
	// Phases is the repeating cycle for ProcessPhased.
	Phases []Phase
}

// Constant builds an open-loop constant-rate policy.
func Constant(rate float64) Policy {
	return Policy{Process: ProcessConstant, Rate: rate}
}

// Poisson builds a Poisson-arrival policy at the target rate.
func Poisson(rate float64, seed int64) Policy {
	return Policy{Process: ProcessPoisson, Rate: rate, Seed: seed}
}

// Trace builds a trace-replay policy over explicit arrival offsets.
func Trace(offsets []time.Duration) Policy {
	return Policy{Process: ProcessTrace, Trace: offsets}
}

// Phased builds a repeating phase-cycle policy (diurnal/burst shapes).
func Phased(seed int64, phases ...Phase) Policy {
	return Policy{Process: ProcessPhased, Seed: seed, Phases: phases}
}

// Saturate builds the unpaced saturation policy.
func Saturate() Policy {
	return Policy{Process: ProcessSaturate}
}

// Validate checks the policy is well formed.
func (p Policy) Validate() error {
	switch p.Process {
	case ProcessConstant, ProcessPoisson:
		if p.Rate <= 0 {
			return fmt.Errorf("loadgen: %s policy needs a positive rate, got %v", p.Process, p.Rate)
		}
	case ProcessTrace:
		if len(p.Trace) == 0 {
			return fmt.Errorf("loadgen: trace policy needs at least one arrival offset")
		}
		for i := 1; i < len(p.Trace); i++ {
			if p.Trace[i] < p.Trace[i-1] {
				return fmt.Errorf("loadgen: trace offsets must be non-decreasing (offset %d: %v < %v)", i, p.Trace[i], p.Trace[i-1])
			}
		}
		if p.Trace[0] < 0 {
			return fmt.Errorf("loadgen: trace offsets must be non-negative, got %v", p.Trace[0])
		}
	case ProcessPhased:
		if len(p.Phases) == 0 {
			return fmt.Errorf("loadgen: phased policy needs at least one phase")
		}
		for i, ph := range p.Phases {
			if ph.Duration <= 0 {
				return fmt.Errorf("loadgen: phase %d needs a positive duration, got %v", i, ph.Duration)
			}
			if ph.Rate <= 0 {
				return fmt.Errorf("loadgen: phase %d needs a positive rate, got %v", i, ph.Rate)
			}
			switch ph.Process {
			case "", ProcessConstant, ProcessPoisson:
			default:
				return fmt.Errorf("loadgen: phase %d process must be constant or poisson, got %q", i, ph.Process)
			}
		}
	case ProcessSaturate:
	case "":
		return fmt.Errorf("loadgen: policy needs a process kind")
	default:
		return fmt.Errorf("loadgen: unknown process kind %q", p.Process)
	}
	return nil
}

// Schedule is a deterministic arrival schedule: an iterator over event
// offsets since run start. It is generated lazily so unbounded processes
// (constant, Poisson, phased) cost nothing up front; every offset is a
// pure function of the policy and the arrival index.
type Schedule struct {
	p   Policy
	rng *rand.Rand
	t   time.Duration // cursor: offset of the next arrival to hand out
	idx int           // arrivals handed out so far (trace index)
}

// Schedule instantiates the policy's arrival schedule.
func (p Policy) Schedule() (*Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Schedule{p: p, rng: rand.New(rand.NewSource(p.Seed))}, nil
}

// Saturating reports whether the schedule carries no pacing at all.
func (s *Schedule) Saturating() bool {
	return s.p.Process == ProcessSaturate
}

// Next returns the next arrival's offset since run start, the
// instantaneous target rate at that arrival (0 for trace replay and
// saturation, which have no rate parameter), and whether an arrival
// exists — false only when a replayed trace is exhausted.
func (s *Schedule) Next() (offset time.Duration, rate float64, ok bool) {
	switch s.p.Process {
	case ProcessSaturate:
		return 0, 0, true
	case ProcessConstant:
		// Arrival k at k/rate: the first event fires immediately, like
		// the legacy open-loop generator.
		offset = s.t
		s.t += time.Duration(float64(time.Second) / s.p.Rate)
		return offset, s.p.Rate, true
	case ProcessPoisson:
		s.t += time.Duration(s.rng.ExpFloat64() * float64(time.Second) / s.p.Rate)
		return s.t, s.p.Rate, true
	case ProcessTrace:
		if s.idx >= len(s.p.Trace) {
			return 0, 0, false
		}
		offset = s.p.Trace[s.idx]
		s.idx++
		return offset, 0, true
	case ProcessPhased:
		ph := s.phaseAt(s.t)
		offset = s.t
		gap := time.Duration(float64(time.Second) / ph.Rate)
		if ph.Process == ProcessPoisson {
			gap = time.Duration(s.rng.ExpFloat64() * float64(time.Second) / ph.Rate)
			// Poisson phases place the arrival after the gap, like the
			// pure Poisson process.
			s.t += gap
			return s.t, ph.Rate, true
		}
		s.t += gap
		return offset, ph.Rate, true
	}
	return 0, 0, false
}

// phaseAt resolves the phase containing an offset; the cycle repeats.
func (s *Schedule) phaseAt(off time.Duration) Phase {
	var cycle time.Duration
	for _, ph := range s.p.Phases {
		cycle += ph.Duration
	}
	pos := off % cycle
	for _, ph := range s.p.Phases {
		if pos < ph.Duration {
			return ph
		}
		pos -= ph.Duration
	}
	return s.p.Phases[len(s.p.Phases)-1]
}

// WriteSchedule writes the first n arrivals of the policy's schedule in
// the canonical conformance format — one "index offset_ns rate" line per
// arrival. This is the byte-identity surface: equal policies (same seed)
// must produce equal bytes, pinned by the loadgen conformance suite and
// the core load-policy alias regression test. Unbounded processes emit
// exactly n lines; a shorter trace ends early.
func WriteSchedule(w io.Writer, p Policy, n int) error {
	s, err := p.Schedule()
	if err != nil {
		return err
	}
	if s.Saturating() {
		_, err := fmt.Fprintf(w, "saturate\n")
		return err
	}
	for i := 0; i < n; i++ {
		off, rate, ok := s.Next()
		if !ok {
			break
		}
		if _, err := fmt.Fprintf(w, "%d %d %g\n", i, off.Nanoseconds(), rate); err != nil {
			return err
		}
	}
	return nil
}

// Clock abstracts time for the Pacer so tests (and deterministic
// experiments) inject a virtual clock instead of the wall clock.
type Clock struct {
	// Now reads the current time.
	Now func() time.Time
	// After returns a channel that receives after d elapses (the wait
	// until the next scheduled arrival).
	After func(d time.Duration) <-chan time.Time
}

// RealClock is the wall-clock default used outside tests.
func RealClock() Clock {
	return Clock{
		Now:   time.Now,   //lint:allow clockdiscipline documented default; tests inject a virtual clock
		After: time.After, //lint:allow clockdiscipline documented default arrival timer; tests inject a virtual clock
	}
}

// MaxScheduleDebt caps how far a lagging producer may trail its schedule
// before the remainder is forgiven: after an overload stall the producer
// catches up at most this much, and the rest of the schedule shifts
// forward, so a pathological stall does not turn into an unbounded
// flood. This is the open-loop catch-up rule the legacy generator used.
const MaxScheduleDebt = time.Second

// Pacer paces a producer against a schedule on a (virtual or real)
// clock. It is single-goroutine: one producer loop owns it.
type Pacer struct {
	s     *Schedule
	c     Clock
	start time.Time
	shift time.Duration
}

// NewPacer builds a pacer over the schedule. A zero Clock defaults to
// the wall clock.
func NewPacer(s *Schedule, c Clock) *Pacer {
	if c.Now == nil || c.After == nil {
		c = RealClock()
	}
	return &Pacer{s: s, c: c}
}

// Start stamps the schedule's origin and returns it; offsets are paced
// relative to this instant.
func (p *Pacer) Start() time.Time {
	p.start = p.c.Now()
	return p.start
}

// Tick advances to the next scheduled arrival. wait is how long the
// caller must sleep before the arrival is due (0 when it is already
// due), lag is how far the caller trails the schedule (0 when on time,
// capped at MaxScheduleDebt — the excess shifts the remaining schedule),
// rate is the instantaneous target rate, and ok is false only when a
// replayed trace is exhausted. Saturating schedules always return
// immediately with no wait and no lag.
func (p *Pacer) Tick() (wait, lag time.Duration, rate float64, ok bool) {
	if p.s.Saturating() {
		return 0, 0, 0, true
	}
	off, rate, ok := p.s.Next()
	if !ok {
		return 0, 0, 0, false
	}
	due := p.start.Add(off + p.shift)
	now := p.c.Now()
	if wait := due.Sub(now); wait > 0 {
		return wait, 0, rate, true
	}
	lag = now.Sub(due)
	if lag > MaxScheduleDebt {
		p.shift += lag - MaxScheduleDebt
		lag = MaxScheduleDebt
	}
	return 0, lag, rate, true
}

// Sleep waits d on the pacer's clock, returning false if stop closed
// first.
func (p *Pacer) Sleep(d time.Duration, stop <-chan struct{}) bool {
	select {
	case <-stop:
		return false
	case <-p.c.After(d):
		return true
	}
}
