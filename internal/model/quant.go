package model

import (
	"fmt"
	"math"

	"crayfish/internal/tensor"
)

// Post-training static quantization (docs/QUANTIZATION.md): Calibrate
// runs representative float32 inputs through the reference forward
// pass and records the activation range seen at the input of every
// weighted layer; QuantizePlan then compiles a Plan whose Dense, Conv,
// and ProjSkip ops run the packed int8 kernels — symmetric per-channel
// weights, asymmetric per-tensor activations, int32 accumulation, and
// a dequantize back to float32 at each op boundary so the surrounding
// float ops (ReLU, pooling, residual adds, softmax) are untouched.

// UnsupportedQuantKindError reports a layer kind outside the int8
// quantizer's coverage. The transformer kinds (attention, layer norm,
// GELU) stay float32 deliberately: their kernels are softmax- and
// normalisation-shaped, where int8's integer dot products buy nothing,
// so both Calibrate and QuantizePlan reject them upfront instead of
// silently skipping them.
type UnsupportedQuantKindError struct {
	Model string
	Layer string
	Kind  LayerKind
}

func (e *UnsupportedQuantKindError) Error() string {
	return fmt.Sprintf("model %q layer %q: int8 quantization does not support layer kind %q (transformer kernels run float32)", e.Model, e.Layer, e.Kind)
}

// checkQuantKinds scans for layer kinds the quantizer does not cover,
// loudly and before any work happens.
func (m *Model) checkQuantKinds() error {
	for _, l := range m.Layers {
		switch l.Kind {
		case KindAttention, KindLayerNorm, KindGELU:
			return &UnsupportedQuantKindError{Model: m.Name, Layer: l.Name, Kind: l.Kind}
		}
	}
	return nil
}

// LayerStats is the calibrated activation range at one layer's input.
// ChanMin/ChanMax record the per-channel envelope (diagnostics and
// future per-channel activation schemes); Min/Max is the per-tensor
// envelope the quantizer uses.
type LayerStats struct {
	Layer    int
	Name     string
	Min, Max float32
	ChanMin  []float32
	ChanMax  []float32
}

// Calibration is the output of a calibration pass, one entry per
// weighted layer in walk order.
type Calibration struct {
	Model string
	Stats []LayerStats
}

func (c *Calibration) find(layer int) *LayerStats {
	for i := range c.Stats {
		if c.Stats[i].Layer == layer {
			return &c.Stats[i]
		}
	}
	return nil
}

// observeStats scans one activation tensor and records its range:
// per-channel for NCHW (axis 1) and per-feature for dense [n, k]
// batches, plus the per-tensor envelope.
func observeStats(layer int, name string, x *tensor.Tensor) LayerStats {
	st := LayerStats{Layer: layer, Name: name}
	var ch, inner, outer int
	switch x.Rank() {
	case 2:
		ch, inner, outer = x.Dim(1), 1, x.Dim(0)
	case 4:
		ch, inner, outer = x.Dim(1), x.Dim(2)*x.Dim(3), x.Dim(0)
	default:
		ch, inner, outer = 1, x.Len(), 1
	}
	st.ChanMin = make([]float32, ch)
	st.ChanMax = make([]float32, ch)
	for c := range st.ChanMin {
		st.ChanMin[c] = float32(math.Inf(1))
		st.ChanMax[c] = float32(math.Inf(-1))
	}
	d := x.Data()
	if x.Rank() == 2 {
		// Dense batches interleave channels per row.
		for o := 0; o < outer; o++ {
			row := d[o*ch : (o+1)*ch]
			for c, v := range row {
				if v < st.ChanMin[c] {
					st.ChanMin[c] = v
				}
				if v > st.ChanMax[c] {
					st.ChanMax[c] = v
				}
			}
		}
	} else {
		for o := 0; o < outer; o++ {
			for c := 0; c < ch; c++ {
				seg := d[(o*ch+c)*inner : (o*ch+c+1)*inner]
				for _, v := range seg {
					if v < st.ChanMin[c] {
						st.ChanMin[c] = v
					}
					if v > st.ChanMax[c] {
						st.ChanMax[c] = v
					}
				}
			}
		}
	}
	st.Min, st.Max = st.ChanMin[0], st.ChanMax[0]
	for c := 1; c < ch; c++ {
		if st.ChanMin[c] < st.Min {
			st.Min = st.ChanMin[c]
		}
		if st.ChanMax[c] > st.Max {
			st.Max = st.ChanMax[c]
		}
	}
	return st
}

// Calibrate runs a batch of n representative inputs through the
// reference forward pass and records the activation range at the input
// of every Dense, Conv, and ProjSkip layer (for ProjSkip, the range of
// the saved skip activation it projects). The inputs are copied, so
// the caller's buffer is not mutated.
func (m *Model) Calibrate(inputs []float32, n int) (*Calibration, error) {
	if err := m.checkQuantKinds(); err != nil {
		return nil, err
	}
	x, err := m.BatchInput(append([]float32(nil), inputs...), n)
	if err != nil {
		return nil, fmt.Errorf("model %q: calibrating: %w", m.Name, err)
	}
	cal := &Calibration{Model: m.Name}
	var skips []*tensor.Tensor
	for i, l := range m.Layers {
		switch l.Kind {
		case KindDense, KindConv:
			cal.Stats = append(cal.Stats, observeStats(i, l.Name, x))
		case KindProjSkip:
			if len(skips) == 0 {
				return nil, fmt.Errorf("model %q layer %d (%s): projskip with empty skip stack", m.Name, i, l.Name)
			}
			cal.Stats = append(cal.Stats, observeStats(i, l.Name, skips[len(skips)-1]))
		}
		x, skips, err = applyLayer(l, x, skips, execOpts{})
		if err != nil {
			return nil, fmt.Errorf("model %q layer %d (%s): calibrating: %w", m.Name, i, l.Name, err)
		}
	}
	if len(cal.Stats) == 0 {
		return nil, fmt.Errorf("model %q: no quantizable layers to calibrate", m.Name)
	}
	return cal, nil
}

// PlanAgreement scores a compiled plan against m's reference float32
// forward pass on the same inputs and returns the fraction of points
// whose argmax predictions match — the accuracy-drift metric of the
// int8 contract (docs/QUANTIZATION.md). Both passes get their own copy
// of the inputs.
func PlanAgreement(m *Model, p *Plan, inputs []float32, n int) (float64, error) {
	refIn, err := m.BatchInput(append([]float32(nil), inputs...), n)
	if err != nil {
		return 0, err
	}
	want, err := m.Forward(refIn)
	if err != nil {
		return 0, err
	}
	got := make([]float32, n*p.OutputLen())
	if err := p.Forward(append([]float32(nil), inputs...), n, got); err != nil {
		return 0, err
	}
	cols := p.OutputLen()
	matches := 0
	for i := 0; i < n; i++ {
		row := got[i*cols : (i+1)*cols]
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		if bi == argmaxRow(want, i) {
			matches++
		}
	}
	return float64(matches) / float64(n), nil
}

// qOp is the compiled int8 state of one quantized op: RHS-packed
// per-channel weights, the bias folded into accumulator units (layer
// bias plus the activation zero-point correction), per-channel
// dequantization multipliers, and the fixed activation parameters from
// calibration.
type qOp struct {
	w       *tensor.QTensor
	qbias   []int32
	mult    []float32
	inScale float32
	inZP    int32

	k, n    int // GEMM reduction depth and output channels
	kh, kw  int // conv window (0 for dense)
	patches int // conv output positions per image
	lhsLen  int // packed patch-matrix words per image
}

// qBiasBound keeps the folded bias far from the int32 accumulator
// limits: the raw dot product is bounded by MaxQMatMulK·127·128 ≈
// 2²⁹, so a ±2³⁰ bias can never overflow the sum.
const qBiasBound = 1 << 30

// quantizeOp builds the int8 state for one weighted op.
func quantizeOp(op *planOp, st *LayerStats) (*qOp, error) {
	l := op.l
	scale, zp := tensor.AffineParams(st.Min, st.Max)
	q := &qOp{inScale: scale, inZP: zp}
	switch op.kind {
	case KindDense:
		q.w = tensor.QuantizeDenseWeights(l.W)
		q.k, q.n = l.W.Dim(0), l.W.Dim(1)
	default: // KindConv, KindProjSkip
		q.w = tensor.QuantizeConvWeights(l.W)
		q.kh, q.kw = l.W.Dim(2), l.W.Dim(3)
		q.k, q.n = q.w.Dim(0), q.w.Dim(1)
		c, h, w := op.inDims[0], op.inDims[1], op.inDims[2]
		if c*q.kh*q.kw != q.k {
			return nil, fmt.Errorf("conv geometry drift: %d channels x %dx%d vs packed depth %d", c, q.kh, q.kw, q.k)
		}
		oh := (h+2*l.Pad-q.kh)/l.Stride + 1
		ow := (w+2*l.Pad-q.kw)/l.Stride + 1
		q.patches = oh * ow
		q.lhsLen = q.patches * ((q.k + 1) / 2)
	}
	if q.k > tensor.MaxQMatMulK {
		return nil, fmt.Errorf("reduction depth %d exceeds the int8 GEMM bound %d", q.k, tensor.MaxQMatMulK)
	}
	ws := q.w.Scales()
	cs := q.w.ColSums()
	q.mult = make([]float32, q.n)
	q.qbias = make([]int32, q.n)
	for j := 0; j < q.n; j++ {
		mlt := scale * ws[j]
		q.mult[j] = mlt
		qb := -float64(zp) * float64(cs[j])
		if l.B != nil {
			qb += math.Round(float64(l.B.Data()[j]) / float64(mlt))
		}
		if qb > qBiasBound {
			qb = qBiasBound
		} else if qb < -qBiasBound {
			qb = -qBiasBound
		}
		q.qbias[j] = int32(qb)
	}
	return q, nil
}

// QuantizePlan compiles an int8 execution plan from a calibration.
// Batch norms must be folded first (FoldBatchNorm) — the quantized
// conv output is already in float32, so a trailing unfolded batch norm
// would double-count nothing but wastes the fold, and an interleaved
// one breaks the calibrated ranges; rejecting is simpler and matches
// how int8 deployments ship. Winograd hints are ignored: quantized
// convolutions always lower to the packed im2col GEMM.
func (m *Model) QuantizePlan(hints ExecHints, cal *Calibration) (*Plan, error) {
	if err := m.checkQuantKinds(); err != nil {
		return nil, err
	}
	if cal == nil || len(cal.Stats) == 0 {
		return nil, fmt.Errorf("model %q: QuantizePlan needs a calibration (run Calibrate)", m.Name)
	}
	for i, l := range m.Layers {
		if l.Kind == KindBatchNorm || (l.Kind == KindProjSkip && l.Gamma != nil) {
			return nil, fmt.Errorf("model %q layer %d (%s): quantization requires folded batch norms (model.FoldBatchNorm)", m.Name, i, l.Name)
		}
	}
	hints.FastConv = false
	p, err := m.Compile(hints)
	if err != nil {
		return nil, err
	}
	for i := range p.ops {
		op := &p.ops[i]
		switch op.kind {
		case KindDense, KindConv, KindProjSkip:
		default:
			continue
		}
		st := cal.find(i)
		if st == nil {
			return nil, fmt.Errorf("model %q layer %d (%s): no calibration stats (calibration from model %q?)", m.Name, i, op.l.Name, cal.Model)
		}
		q, err := quantizeOp(op, st)
		if err != nil {
			return nil, fmt.Errorf("model %q layer %d (%s): %w", m.Name, i, op.l.Name, err)
		}
		op.q = q
	}
	// Every conv now runs the int8 path; the float im2col scratch
	// would never be touched.
	p.colLen = 0
	p.quantized = true
	return p, nil
}
