package model

import (
	"math/rand"
	"testing"

	"crayfish/internal/tensor"
)

func benchResNetSmall(seed int64) *Model {
	cfg := BenchResNetConfig(seed)
	cfg.InputSize = 32
	cfg.Blocks = [4]int{1, 1, 1, 1}
	return NewResNet(cfg)
}

func randIn(m *Model, n int, seed int64) *tensor.Tensor {
	r := rand.New(rand.NewSource(seed))
	data := make([]float32, n*m.InputLen())
	for i := range data {
		data[i] = r.Float32()
	}
	in, err := m.BatchInput(data, n)
	if err != nil {
		panic(err)
	}
	return in
}

func TestFoldBatchNormPreservesOutputs(t *testing.T) {
	m := benchResNetSmall(3)
	folded := FoldBatchNorm(m)
	if err := folded.Validate(); err != nil {
		t.Fatal(err)
	}
	want, err := m.Forward(randIn(m, 2, 7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := folded.Forward(randIn(folded, 2, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !want.AllClose(got, 1e-3) {
		t.Fatal("folded model scores differently")
	}
}

func TestFoldBatchNormRemovesBNLayers(t *testing.T) {
	m := benchResNetSmall(3)
	folded := FoldBatchNorm(m)
	for _, l := range folded.Layers {
		if l.Kind == KindBatchNorm {
			t.Fatalf("batchnorm layer %s survived folding", l.Name)
		}
		if l.Kind == KindProjSkip && l.Gamma != nil {
			t.Fatalf("projskip %s kept its BN parameters", l.Name)
		}
	}
	if len(folded.Layers) >= len(m.Layers) {
		t.Fatalf("folded model has %d layers, original %d", len(folded.Layers), len(m.Layers))
	}
}

func TestFoldBatchNormIdempotentOnDenseModels(t *testing.T) {
	m := NewFFNN(1)
	folded := FoldBatchNorm(m)
	if len(folded.Layers) != len(m.Layers) {
		t.Fatal("dense model changed by BN folding")
	}
	want, err := m.Forward(randIn(m, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := folded.Forward(randIn(folded, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !want.AllClose(got, 0) {
		t.Fatal("dense fold changed outputs")
	}
}

func TestFastConvHintMatchesReference(t *testing.T) {
	m := benchResNetSmall(5)
	ref, err := m.Forward(randIn(m, 1, 9))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.ForwardWith(randIn(m, 1, 9), ExecHints{FastConv: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.AllClose(fast, 1e-3) {
		t.Fatal("FastConv output differs from reference")
	}
	// Combined hints.
	both, err := m.ForwardWith(randIn(m, 1, 9), ExecHints{FastConv: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.AllClose(both, 1e-3) {
		t.Fatal("FastConv+Workers output differs from reference")
	}
}

func TestFastConvIsFasterOnResNet(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing-sensitive")
	}
	m := NewResNet(BenchResNetConfig(1))
	in := randIn(m, 1, 3)
	// Warm both paths (builds the Winograd caches).
	if _, err := m.Forward(randIn(m, 1, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ForwardWith(randIn(m, 1, 3), ExecHints{FastConv: true}); err != nil {
		t.Fatal(err)
	}
	// Best-of-N to suppress scheduling noise on small machines.
	slow, fast := int64(1<<62), int64(1<<62)
	for round := 0; round < 3; round++ {
		if d := timeForward(t, m, in, ExecHints{}); d < slow {
			slow = d
		}
		if d := timeForward(t, m, in, ExecHints{FastConv: true}); d < fast {
			fast = d
		}
	}
	if fast >= slow {
		t.Errorf("FastConv (%v) not faster than direct (%v)", fast, slow)
	}
}

func timeForward(t *testing.T, m *Model, in *tensor.Tensor, h ExecHints) int64 {
	t.Helper()
	const iters = 4
	start := nowNanos()
	for i := 0; i < iters; i++ {
		if _, err := m.ForwardWith(in.Clone(), h); err != nil {
			t.Fatal(err)
		}
	}
	return (nowNanos() - start) / iters
}

func TestAgreement(t *testing.T) {
	a := NewFFNN(1)
	same := NewFFNN(1)
	other := NewFFNN(42)
	inputs := make([]float32, 16*784)
	for i := range inputs {
		inputs[i] = float32(i%13) * 0.05
	}
	full, err := Agreement(a, same, inputs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if full != 1 {
		t.Fatalf("identical models agree %.2f", full)
	}
	diff, err := Agreement(a, other, inputs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if diff == 1 {
		t.Log("differently-seeded models agree fully on this probe; unusual but possible")
	}
	if _, err := Agreement(a, NewFFNNSized(1, 8, []int{4}, 2), inputs, 16); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, err := Agreement(a, same, inputs[:10], 16); err == nil {
		t.Fatal("short batch accepted")
	}
}
