package model

import "time"

// nowNanos is a test helper for coarse relative-cost measurements.
func nowNanos() int64 { return time.Now().UnixNano() }
