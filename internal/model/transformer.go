package model

import (
	"fmt"
	"math/rand"

	"crayfish/internal/tensor"
)

// TransformerConfig controls the transformer encoder builder.
type TransformerConfig struct {
	Seed int64
	// SeqLen is S, the token rows per data point.
	SeqLen int
	// ModelDim is D, the embedding width; must be divisible by Heads.
	ModelDim int
	// Heads is the attention head count.
	Heads int
	// FFNDim is the hidden width of the position-wise feed-forward nets.
	FFNDim int
	// Blocks is the encoder block count.
	Blocks int
	// Classes is the classifier output width.
	Classes int
}

// DefaultTransformerConfig returns the benchmark transformer: a 2-block
// post-LN encoder over 32 tokens of width 64 with 4 heads and a 128-wide
// feed-forward net, classifying into 10 classes (~120K parameters) —
// small enough that a pure-Go forward pass stays in the sub-millisecond
// regime the streaming benchmarks need, while exercising every
// transformer operator class.
func DefaultTransformerConfig(seed int64) TransformerConfig {
	return TransformerConfig{Seed: seed, SeqLen: 32, ModelDim: 64, Heads: 4, FFNDim: 128, Blocks: 2, Classes: 10}
}

// initLN returns layer-norm tensors: unit gamma, small random beta so
// the op is numerically non-trivial.
func initLN(r *rand.Rand, d int) (gamma, beta *tensor.Tensor) {
	gamma, beta = tensor.New(d), tensor.New(d)
	for i := 0; i < d; i++ {
		gamma.Data()[i] = 1
		beta.Data()[i] = float32(r.NormFloat64() * 0.01)
	}
	return
}

// NewTransformer builds a post-LN transformer encoder classifier: per
// block, a fused QKV dense projection (x·Wqkv packs q|k|v per token
// row), multi-head self-attention, an output projection, residual add +
// layer norm, then a GELU feed-forward net with its own residual add +
// layer norm; a flatten → dense → softmax classifier head follows the
// last block. Input shape is [SeqLen, ModelDim] per data point (token
// embeddings arrive precomputed, as in the MLPerf-style inference
// setting where the tokenizer lives upstream of the model).
func NewTransformer(cfg TransformerConfig) *Model {
	r := rand.New(rand.NewSource(cfg.Seed))
	name := "transformer"
	def := DefaultTransformerConfig(cfg.Seed)
	if cfg != def {
		name = fmt.Sprintf("transformer-s%d-d%d-h%d-f%d-b%d-c%d",
			cfg.SeqLen, cfg.ModelDim, cfg.Heads, cfg.FFNDim, cfg.Blocks, cfg.Classes)
	}
	d, f := cfg.ModelDim, cfg.FFNDim
	m := &Model{
		Name:       name,
		InputShape: []int{cfg.SeqLen, d},
		OutputSize: cfg.Classes,
	}
	for b := 0; b < cfg.Blocks; b++ {
		prefix := fmt.Sprintf("block%d", b)
		qkvW, qkvB := initDense(r, d, 3*d)
		projW, projB := initDense(r, d, d)
		g1, b1 := initLN(r, d)
		ff1W, ff1B := initDense(r, d, f)
		ff2W, ff2B := initDense(r, f, d)
		g2, b2 := initLN(r, d)
		m.Layers = append(m.Layers,
			&Layer{Kind: KindSaveSkip, Name: prefix + ".attn.skip"},
			&Layer{Kind: KindDense, Name: prefix + ".attn.qkv", W: qkvW, B: qkvB},
			&Layer{Kind: KindAttention, Name: prefix + ".attn", Heads: cfg.Heads},
			&Layer{Kind: KindDense, Name: prefix + ".attn.proj", W: projW, B: projB},
			&Layer{Kind: KindResidual, Name: prefix + ".attn.add"},
			&Layer{Kind: KindLayerNorm, Name: prefix + ".attn.norm", Gamma: g1, Beta: b1, Eps: 1e-5},
			&Layer{Kind: KindSaveSkip, Name: prefix + ".ffn.skip"},
			&Layer{Kind: KindDense, Name: prefix + ".ffn.up", W: ff1W, B: ff1B},
			&Layer{Kind: KindGELU, Name: prefix + ".ffn.gelu"},
			&Layer{Kind: KindDense, Name: prefix + ".ffn.down", W: ff2W, B: ff2B},
			&Layer{Kind: KindResidual, Name: prefix + ".ffn.add"},
			&Layer{Kind: KindLayerNorm, Name: prefix + ".ffn.norm", Gamma: g2, Beta: b2, Eps: 1e-5})
	}
	m.Layers = append(m.Layers, &Layer{Kind: KindFlatten, Name: "flatten"})
	w, bias := initDense(r, cfg.SeqLen*d, cfg.Classes)
	m.Layers = append(m.Layers,
		&Layer{Kind: KindDense, Name: "logits", W: w, B: bias},
		&Layer{Kind: KindSoftmax, Name: "probs"})
	return m
}
