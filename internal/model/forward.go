package model

import (
	"fmt"

	"crayfish/internal/tensor"
)

// ExecHints tunes how a forward pass executes. The zero value is the
// sequential reference path; accelerator devices request data-parallel
// kernels (Workers > 1) and fast convolution algorithms (FastConv), both
// producing identical outputs within float tolerance.
type ExecHints struct {
	// Workers fans conv/matmul kernels out across goroutines when > 1.
	Workers int
	// FastConv selects the fast library kernels, as accelerator
	// libraries do: the Winograd F(2×2,3×3) kernel for eligible
	// convolutions (3×3, stride 1) and the fused transformer kernels
	// (flash-style tiled attention, one-pass residual + layer norm,
	// tanh GELU).
	FastConv bool
}

// execOpts is the internal alias for ExecHints.
type execOpts = ExecHints

// Forward runs the reference (unfused, sequential) forward pass over a
// batch. For dense models the input has shape [n, features]; for
// convolutional models [n, c, h, w]. It returns the [n, classes] output.
//
// This is the oracle implementation: every serving runtime must produce
// outputs that match Forward bit-for-bit or within float tolerance.
func (m *Model) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return m.forward(in, execOpts{})
}

// ForwardParallel is Forward with conv/matmul kernels fanned out across
// workers.
func (m *Model) ForwardParallel(in *tensor.Tensor, workers int) (*tensor.Tensor, error) {
	return m.forward(in, execOpts{Workers: workers})
}

// ForwardWith runs the forward pass with explicit execution hints; it is
// the entry point device-aware runtimes use.
func (m *Model) ForwardWith(in *tensor.Tensor, hints ExecHints) (*tensor.Tensor, error) {
	return m.forward(in, hints)
}

func (m *Model) forward(in *tensor.Tensor, opts execOpts) (*tensor.Tensor, error) {
	x := in
	var skips []*tensor.Tensor
	var err error
	for i := 0; i < len(m.Layers); i++ {
		l := m.Layers[i]
		// The fast-kernel path folds a residual add into the layer norm
		// that follows it (one read/write pass instead of two),
		// mirroring the plan's compile-time peephole so planned and
		// unplanned passes stay bit-identical per hint set.
		if opts.FastConv && l.Kind == KindResidual && i+1 < len(m.Layers) && m.Layers[i+1].Kind == KindLayerNorm {
			x, skips, err = fusedResidualNorm(x, skips, m.Layers[i+1])
			if err != nil {
				return nil, fmt.Errorf("model %q layer %d (%s): %w", m.Name, i, l.Name, err)
			}
			i++
			continue
		}
		x, skips, err = applyLayer(l, x, skips, opts)
		if err != nil {
			return nil, fmt.Errorf("model %q layer %d (%s): %w", m.Name, i, l.Name, err)
		}
	}
	if len(skips) != 0 {
		return nil, fmt.Errorf("model %q: %d unconsumed skip connections", m.Name, len(skips))
	}
	return x, nil
}

// applyLayer executes one layer, returning the new activation and skip
// stack.
func applyLayer(l *Layer, x *tensor.Tensor, skips []*tensor.Tensor, opts execOpts) (*tensor.Tensor, []*tensor.Tensor, error) {
	switch l.Kind {
	case KindDense:
		// Rank-3 transformer activations [n, S, D] run the same GEMM
		// over a flattened [n*S, D] view and fold back afterwards.
		xm := x
		if x.Rank() == 3 {
			v, err := x.Reshape(x.Dim(0)*x.Dim(1), x.Dim(2))
			if err != nil {
				return nil, skips, err
			}
			xm = v
		}
		var y *tensor.Tensor
		var err error
		if opts.Workers > 1 {
			y, err = tensor.MatMulParallel(xm, l.W, opts.Workers)
		} else {
			y, err = tensor.MatMul(xm, l.W)
		}
		if err != nil {
			return nil, skips, err
		}
		if _, err := tensor.AddBias(y, l.B); err != nil {
			return nil, skips, err
		}
		if x.Rank() == 3 {
			if y, err = y.Reshape(x.Dim(0), x.Dim(1), l.W.Dim(1)); err != nil {
				return nil, skips, err
			}
		}
		return y, skips, nil

	case KindReLU:
		return tensor.ReLU(x), skips, nil

	case KindSoftmax:
		y, err := tensor.Softmax(x)
		return y, skips, err

	case KindConv:
		y, err := convOp(x, l, opts)
		return y, skips, err

	case KindBatchNorm:
		y, err := tensor.BatchNorm(x, l.Gamma, l.Beta, l.Mean, l.Variance, l.Eps)
		return y, skips, err

	case KindMaxPool:
		y, err := tensor.MaxPool2D(x, l.PoolSize, l.Stride, l.Pad)
		return y, skips, err

	case KindGlobalAvg:
		y, err := tensor.GlobalAvgPool2D(x)
		return y, skips, err

	case KindFlatten:
		y, err := x.Reshape(x.Dim(0), -1)
		return y, skips, err

	case KindSaveSkip:
		return x, append(skips, x), nil

	case KindProjSkip:
		if len(skips) == 0 {
			return nil, skips, fmt.Errorf("projskip with empty skip stack")
		}
		skip := skips[len(skips)-1]
		y, err := convOp(skip, l, opts)
		if err != nil {
			return nil, skips, err
		}
		if l.Gamma != nil {
			if _, err := tensor.BatchNorm(y, l.Gamma, l.Beta, l.Mean, l.Variance, l.Eps); err != nil {
				return nil, skips, err
			}
		}
		skips[len(skips)-1] = y
		return x, skips, nil

	case KindResidual:
		if len(skips) == 0 {
			return nil, skips, fmt.Errorf("residual with empty skip stack")
		}
		skip := skips[len(skips)-1]
		skips = skips[:len(skips)-1]
		y, err := tensor.AddInPlace(x, skip)
		return y, skips, err

	case KindAttention:
		y, err := attnOp(x, l, opts)
		return y, skips, err

	case KindLayerNorm:
		if err := lnShapeCheck(x, l); err != nil {
			return nil, skips, err
		}
		if opts.FastConv {
			tensor.LayerNormResidualInto(x, x, nil, l.Gamma, l.Beta, l.Eps)
		} else {
			tensor.LayerNormReferenceInto(x, x, nil, l.Gamma, l.Beta, l.Eps)
		}
		return x, skips, nil

	case KindGELU:
		if opts.FastConv {
			return tensor.GELU(x), skips, nil
		}
		return tensor.GELUReference(x), skips, nil

	default:
		return nil, skips, fmt.Errorf("unknown layer kind %q", l.Kind)
	}
}

func convOp(x *tensor.Tensor, l *Layer, opts execOpts) (*tensor.Tensor, error) {
	var y *tensor.Tensor
	var err error
	switch {
	case opts.FastConv && l.Stride == 1 && l.W.Dim(2) == 3 && l.W.Dim(3) == 3:
		y, err = l.winogradApply(x)
	case opts.FastConv && opts.Workers > 1:
		y, err = tensor.Conv2DParallel(x, l.W, l.Stride, l.Pad, opts.Workers)
	case opts.FastConv:
		y, err = tensor.Conv2D(x, l.W, l.Stride, l.Pad)
	default:
		// The CPU device runs the single-thread reference kernel,
		// matching the paper's one-thread CPU inference setting.
		y, err = tensor.Conv2DReference(x, l.W, l.Stride, l.Pad)
	}
	if err != nil {
		return nil, err
	}
	if l.B != nil {
		if _, err := tensor.AddChannelBias(y, l.B); err != nil {
			return nil, err
		}
	}
	return y, nil
}

// attnOp mirrors convOp's device split for attention: accelerator
// profiles run the fused flash-style kernel, the CPU device the
// unfused reference (materialised S×S scores, textbook P×V).
func attnOp(x *tensor.Tensor, l *Layer, opts execOpts) (*tensor.Tensor, error) {
	if opts.FastConv {
		return tensor.Attention(x, l.Heads)
	}
	return tensor.AttentionReference(x, l.Heads)
}

// fusedResidualNorm pops the skip stack and runs the fused
// residual-add + layer norm kernel in place of the two separate ops.
func fusedResidualNorm(x *tensor.Tensor, skips []*tensor.Tensor, ln *Layer) (*tensor.Tensor, []*tensor.Tensor, error) {
	if len(skips) == 0 {
		return nil, skips, fmt.Errorf("residual with empty skip stack")
	}
	skip := skips[len(skips)-1]
	skips = skips[:len(skips)-1]
	if err := lnShapeCheck(x, ln); err != nil {
		return nil, skips, err
	}
	if !x.SameShape(skip) {
		return nil, skips, fmt.Errorf("residual shape mismatch %v + %v", x.Shape(), skip.Shape())
	}
	tensor.LayerNormResidualInto(x, x, skip, ln.Gamma, ln.Beta, ln.Eps)
	return x, skips, nil
}

// lnShapeCheck validates a layer-norm activation before the panicking
// hot kernel runs.
func lnShapeCheck(x *tensor.Tensor, l *Layer) error {
	if x.Rank() < 1 || x.Dim(x.Rank()-1) != l.Gamma.Len() {
		return fmt.Errorf("layernorm width %d against activation %v", l.Gamma.Len(), x.Shape())
	}
	return nil
}

// winogradConv returns the layer's cached Winograd transform, building
// it on first use (the weight transform amortises across calls, as in
// real inference runtimes). Plans call it at compile time so planned
// and unplanned passes share the exact same transformed weights.
func (l *Layer) winogradConv() (*tensor.WinogradConv, error) {
	var err error
	l.winoOnce.Do(func() {
		l.winograd, err = tensor.NewWinogradConv(l.W)
	})
	if err != nil {
		return nil, err
	}
	if l.winograd == nil {
		return nil, fmt.Errorf("winograd transform unavailable for layer %s", l.Name)
	}
	return l.winograd, nil
}

// winogradApply runs the layer's cached Winograd transform.
func (l *Layer) winogradApply(x *tensor.Tensor) (*tensor.Tensor, error) {
	w, err := l.winogradConv()
	if err != nil {
		return nil, err
	}
	return w.Apply(x, l.Pad)
}

// BatchInput reshapes a flat batch of data points into the tensor shape the
// model expects: [n, features] for dense models, [n, c, h, w] for
// convolutional ones. The data slice must hold n×InputLen values.
func (m *Model) BatchInput(data []float32, n int) (*tensor.Tensor, error) {
	if n <= 0 {
		return nil, fmt.Errorf("model %q: non-positive batch size %d", m.Name, n)
	}
	want := n * m.InputLen()
	if len(data) != want {
		return nil, fmt.Errorf("model %q: batch of %d points needs %d values, got %d", m.Name, n, want, len(data))
	}
	shape := append([]int{n}, m.InputShape...)
	return tensor.FromSlice(data, shape...)
}
