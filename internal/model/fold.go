package model

import (
	"math"

	"crayfish/internal/tensor"
)

// FoldBatchNorm returns a copy of m with every inference-mode batch norm
// folded into the convolution that feeds it:
//
//	y = gamma · (conv(x, W) + b − mean) / sqrt(var + eps) + beta
//	  = conv(x, W·s) + (b·s + shift),  s = gamma/sqrt(var+eps)
//
// This is the constant-folding pass optimised serving stacks apply at
// model-load time: it removes one full activation pass per conv layer
// while producing identical outputs within float tolerance. Layers
// without a foldable producer are kept as-is.
func FoldBatchNorm(m *Model) *Model {
	out := &Model{
		Name:       m.Name + "+bnfold",
		InputShape: append([]int(nil), m.InputShape...),
		OutputSize: m.OutputSize,
	}
	for i := 0; i < len(m.Layers); i++ {
		l := m.Layers[i]
		switch l.Kind {
		case KindConv:
			// Fold a directly following batch norm.
			if i+1 < len(m.Layers) && m.Layers[i+1].Kind == KindBatchNorm {
				bn := m.Layers[i+1]
				out.Layers = append(out.Layers, foldConv(l, bn.Gamma, bn.Beta, bn.Mean, bn.Variance, bn.Eps))
				i++ // consume the BN layer
				continue
			}
			out.Layers = append(out.Layers, shallowCopy(l))
		case KindProjSkip:
			if l.Gamma != nil {
				folded := foldConv(l, l.Gamma, l.Beta, l.Mean, l.Variance, l.Eps)
				folded.Kind = KindProjSkip
				folded.Gamma, folded.Beta, folded.Mean, folded.Variance = nil, nil, nil, nil
				out.Layers = append(out.Layers, folded)
				continue
			}
			out.Layers = append(out.Layers, shallowCopy(l))
		default:
			out.Layers = append(out.Layers, shallowCopy(l))
		}
	}
	return out
}

// foldConv builds a conv layer with the BN parameters folded into fresh
// weight and bias tensors.
func foldConv(l *Layer, gamma, beta, mean, variance *tensor.Tensor, eps float32) *Layer {
	oc := l.W.Dim(0)
	per := l.W.Len() / oc
	w := l.W.Clone()
	b := tensor.New(oc)
	if l.B != nil {
		copy(b.Data(), l.B.Data())
	}
	for ch := 0; ch < oc; ch++ {
		s := gamma.Data()[ch] / float32(math.Sqrt(float64(variance.Data()[ch]+eps)))
		seg := w.Data()[ch*per : (ch+1)*per]
		for i := range seg {
			seg[i] *= s
		}
		b.Data()[ch] = b.Data()[ch]*s + beta.Data()[ch] - mean.Data()[ch]*s
	}
	return &Layer{
		Kind: KindConv, Name: l.Name + "+bn",
		W: w, B: b, Stride: l.Stride, Pad: l.Pad,
	}
}

// shallowCopy duplicates a layer's metadata while sharing its tensors,
// resetting lazily-built kernel caches.
func shallowCopy(l *Layer) *Layer {
	return &Layer{
		Kind: l.Kind, Name: l.Name,
		W: l.W, B: l.B,
		Stride: l.Stride, Pad: l.Pad, PoolSize: l.PoolSize,
		Gamma: l.Gamma, Beta: l.Beta, Mean: l.Mean, Variance: l.Variance,
		Eps: l.Eps,
	}
}
