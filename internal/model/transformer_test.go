package model

import (
	"errors"
	"math"
	"testing"
)

// TestTransformerShape pins the transformer builder's geometry: the
// default config validates, names itself "transformer", takes [S, D]
// token embeddings, and emits a class distribution.
func TestTransformerShape(t *testing.T) {
	m := NewTransformer(DefaultTransformerConfig(1))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Name != "transformer" {
		t.Fatalf("default config named %q", m.Name)
	}
	cfg := DefaultTransformerConfig(1)
	if m.InputLen() != cfg.SeqLen*cfg.ModelDim || m.OutputSize != cfg.Classes {
		t.Fatalf("geometry in=%d out=%d", m.InputLen(), m.OutputSize)
	}
	small := planTestTransformer()
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	if small.Name == "transformer" {
		t.Fatal("non-default config took the default name")
	}
}

// TestTransformerFusedVsReference is the model-level tolerance
// contract: the fused kernel path (FastConv — tiled attention, one-pass
// residual+layernorm, tanh GELU) must agree with the unfused reference
// path (materialised scores, multi-pass layer norm, erf GELU) within
// 1e-3 on the output distribution, and must rank the same top class.
// Bit-identity of Plan.Forward against ForwardWith per hint set is
// pinned separately in TestPlanMatchesForward.
func TestTransformerFusedVsReference(t *testing.T) {
	m := planTestTransformer()
	const n = 3
	in := randInput(m, n, 2)
	refIn, err := m.BatchInput(append([]float32(nil), in...), n)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.ForwardWith(refIn, ExecHints{})
	if err != nil {
		t.Fatal(err)
	}
	fusedIn, err := m.BatchInput(append([]float32(nil), in...), n)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := m.ForwardWith(fusedIn, ExecHints{FastConv: true})
	if err != nil {
		t.Fatal(err)
	}
	rd, fd := ref.Data(), fused.Data()
	var maxDiff float64
	for i := range rd {
		if d := math.Abs(float64(rd[i]) - float64(fd[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3 {
		t.Errorf("fused vs reference max diff %g > 1e-3", maxDiff)
	}
	for r := 0; r < n; r++ {
		row := func(d []float32) int {
			best := 0
			for c := 1; c < m.OutputSize; c++ {
				if d[r*m.OutputSize+c] > d[r*m.OutputSize+best] {
					best = c
				}
			}
			return best
		}
		if row(rd) != row(fd) {
			t.Errorf("row %d: fused and reference argmax disagree", r)
		}
	}
}

// TestTransformerBatchInvariance pins batch invariance of the compiled
// plan: a batch-4 Forward must be bitwise identical to four batch-1
// Forwards — every per-row kernel (attention lanes, layer-norm rows,
// dense rows) handles each point independently in the same order.
func TestTransformerBatchInvariance(t *testing.T) {
	m := planTestTransformer()
	plan, err := m.Compile(ExecHints{FastConv: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	const n = 4
	in := randInput(m, n, 9)
	batched := make([]float32, n*plan.OutputLen())
	if err := plan.Forward(append([]float32(nil), in...), n, batched); err != nil {
		t.Fatal(err)
	}
	one := make([]float32, plan.OutputLen())
	for r := 0; r < n; r++ {
		single := append([]float32(nil), in[r*m.InputLen():(r+1)*m.InputLen()]...)
		if err := plan.Forward(single, 1, one); err != nil {
			t.Fatal(err)
		}
		for c, v := range one {
			if got := batched[r*plan.OutputLen()+c]; got != v {
				t.Fatalf("row %d col %d: batch-4 %v != batch-1 %v", r, c, got, v)
			}
		}
	}
}

// TestQuantRejectsTransformerKinds pins the typed rejection: both
// Calibrate and QuantizePlan refuse transformer layer kinds upfront
// with an UnsupportedQuantKindError naming the model, layer, and kind —
// message pinned exactly so downstream tooling can rely on it.
func TestQuantRejectsTransformerKinds(t *testing.T) {
	m := NewTransformer(DefaultTransformerConfig(1))
	const wantMsg = `model "transformer" layer "block0.attn": int8 quantization does not support layer kind "attention" (transformer kernels run float32)`

	in := randInput(m, 1, 1)
	_, err := m.Calibrate(in, 1)
	if err == nil {
		t.Fatal("Calibrate accepted a transformer")
	}
	var uerr *UnsupportedQuantKindError
	if !errors.As(err, &uerr) {
		t.Fatalf("Calibrate error %T, want *UnsupportedQuantKindError", err)
	}
	if uerr.Kind != KindAttention || uerr.Layer != "block0.attn" {
		t.Fatalf("Calibrate error fields %+v", uerr)
	}
	if err.Error() != wantMsg {
		t.Fatalf("Calibrate message\n got: %s\nwant: %s", err.Error(), wantMsg)
	}

	_, err = m.QuantizePlan(ExecHints{}, nil)
	if err == nil {
		t.Fatal("QuantizePlan accepted a transformer")
	}
	if !errors.As(err, &uerr) {
		t.Fatalf("QuantizePlan error %T, want *UnsupportedQuantKindError", err)
	}
	if err.Error() != wantMsg {
		t.Fatalf("QuantizePlan message\n got: %s\nwant: %s", err.Error(), wantMsg)
	}
}
