package model

import (
	"fmt"
	"sync"
	"sync/atomic"

	"crayfish/internal/tensor"
)

// Plan is a compiled forward pass: the layer walk is resolved once —
// kernel selection per ExecHints, every intermediate shape, im2col and
// Winograd scratch sizes — so the steady-state Forward allocates
// nothing. Execution ping-pongs arena buffers per layer (a layer's
// input is recycled as soon as its output exists, unless a skip
// connection still references it) and each concurrent caller gets its
// own execution state, so Workers > 1 paths never share scratch.
//
// Outputs are bit-identical to the uncompiled Model.ForwardWith under
// the same hints: the plan runs the same kernel loop bodies in the same
// order, only the buffer lifetimes differ.
type Plan struct {
	m     *Model
	hints ExecHints
	ops   []planOp
	pool  *tensor.WorkPool // resident matmul fan-out workers, nil when Workers <= 1

	colLen  int // per-image im2col scratch, max over conv ops
	attnLen int // attention kernel scratch, max over attention ops
	nWino   int
	outLen  int // per-point output length

	quantized bool // ops carry int8 kernels (QuantizePlan)
	unfused   bool // keep op-by-op buffer lifetimes (CompileUnfused)

	arenaHits, arenaMisses atomic.Uint64

	mu    sync.Mutex
	slots atomic.Pointer[[]*stateSlot]
}

// convMode is the kernel a conv-like op runs, fixed at compile time.
type convMode int

const (
	convReference convMode = iota // single-thread textbook GEMM (CPU device)
	convBlocked                   // cache-blocked GEMM
	convPooled                    // blocked GEMM fanned over the work pool
	convWinograd                  // F(2×2,3×3) fast kernel
)

type planOp struct {
	kind LayerKind
	l    *Layer

	mode         convMode
	wino         *tensor.WinogradConv
	winoIdx      int // index into execState.winos, -1 if none
	winoH, winoW int // layer input spatial dims, for scratch sizing
	colLen       int

	dims   []int // per-point output dims (batch dim excluded); nil for in-place ops
	inDims []int // per-point input dims for conv-like ops (quantization needs the geometry)

	attnLen int    // attention scratch floats this op needs
	lnFuse  *Layer // layer norm folded into this residual add (FastConv peephole)
	fused   bool   // this op was consumed by the preceding op's fusion

	q *qOp // int8 kernel state, nil on float plans (see quant.go)
}

// stateSlot holds the execution states for one batch size. The pinned
// pointer is the steady-state fast path — unlike a sync.Pool it is
// never emptied by the GC, so single-threaded callers observe zero
// allocations; concurrent overflow spills to the pool.
type stateSlot struct {
	n      int
	pinned atomic.Pointer[execState]
	pool   sync.Pool
}

// execState is one caller's working memory: an arena, the fan-out join
// point, im2col and Winograd scratch, the skip stack, and the fully
// concrete (batch-size-specific) shape of every op's output.
type execState struct {
	arena   tensor.Arena
	wg      sync.WaitGroup
	col     []float32
	attn    []float32
	winos   []*tensor.WinoScratch
	skips   []*tensor.Tensor
	shapes  [][]int
	inShape []int
}

// Compile resolves the model against the execution hints. The returned
// plan is safe for concurrent use; Close releases its worker pool.
func (m *Model) Compile(hints ExecHints) (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{m: m, hints: hints}
	cur := append([]int(nil), m.InputShape...)
	var skips [][]int
	for i, l := range m.Layers {
		op := planOp{kind: l.Kind, l: l, winoIdx: -1}
		fail := func(format string, args ...any) (*Plan, error) {
			return nil, fmt.Errorf("model %q layer %d (%s): %s", m.Name, i, l.Name, fmt.Sprintf(format, args...))
		}
		switch l.Kind {
		case KindDense:
			// Rank-3 transformer activations run the same GEMM over a
			// flattened [n*S, D] view at exec time.
			if len(cur) != 1 && len(cur) != 2 {
				return fail("dense input must be rank 2 or 3, got per-point dims %v", cur)
			}
			if l.W.Dim(0) != cur[len(cur)-1] {
				return fail("dense weight %v against input width %d", l.W.Shape(), cur[len(cur)-1])
			}
			if len(cur) == 2 {
				cur = []int{cur[0], l.W.Dim(1)}
			} else {
				cur = []int{l.W.Dim(1)}
			}
			op.dims = cur
		case KindReLU, KindGELU:
			// in place, any shape
		case KindSoftmax:
			if len(cur) != 1 && len(cur) != 2 {
				return fail("softmax input must be rank 2 or 3, got per-point dims %v", cur)
			}
		case KindConv:
			out, err := p.compileConv(&op, l, cur)
			if err != nil {
				return fail("%v", err)
			}
			cur = out
			op.dims = cur
		case KindBatchNorm:
			if len(cur) != 3 || cur[0] != l.Gamma.Len() {
				return fail("batchnorm over per-point dims %v with %d channels", cur, l.Gamma.Len())
			}
		case KindMaxPool:
			if len(cur) != 3 {
				return fail("maxpool input must be NCHW, got per-point dims %v", cur)
			}
			oh := (cur[1]+2*l.Pad-l.PoolSize)/l.Stride + 1
			ow := (cur[2]+2*l.Pad-l.PoolSize)/l.Stride + 1
			if oh <= 0 || ow <= 0 {
				return fail("maxpool output would be empty for input %v", cur)
			}
			cur = []int{cur[0], oh, ow}
			op.dims = cur
		case KindGlobalAvg:
			if len(cur) != 3 {
				return fail("globalavg input must be NCHW, got per-point dims %v", cur)
			}
			cur = []int{cur[0]}
			op.dims = cur
		case KindFlatten:
			n := 1
			for _, d := range cur {
				n *= d
			}
			cur = []int{n}
			op.dims = cur
		case KindSaveSkip:
			skips = append(skips, cur)
		case KindProjSkip:
			if len(skips) == 0 {
				return fail("projskip with empty skip stack")
			}
			out, err := p.compileConv(&op, l, skips[len(skips)-1])
			if err != nil {
				return fail("%v", err)
			}
			skips[len(skips)-1] = out
			op.dims = out
		case KindResidual:
			if len(skips) == 0 {
				return fail("residual with empty skip stack")
			}
			if !sameDims(cur, skips[len(skips)-1]) {
				return fail("residual dims %v vs skip %v", cur, skips[len(skips)-1])
			}
			skips = skips[:len(skips)-1]
			// The fast-kernel peephole: fold a directly-following
			// layer norm into this residual add (the reference
			// forward applies the same fusion under FastConv, keeping
			// planned and unplanned passes bit-identical).
			if hints.FastConv && i+1 < len(m.Layers) && m.Layers[i+1].Kind == KindLayerNorm {
				op.lnFuse = m.Layers[i+1]
			}
		case KindAttention:
			out, err := p.compileAttention(&op, l, cur)
			if err != nil {
				return fail("%v", err)
			}
			cur = out
			op.dims = cur
		case KindLayerNorm:
			if len(cur) == 0 || cur[len(cur)-1] != l.Gamma.Len() {
				return fail("layernorm width %d against per-point dims %v", l.Gamma.Len(), cur)
			}
			if hints.FastConv && i > 0 && m.Layers[i-1].Kind == KindResidual {
				op.fused = true // consumed by the residual's peephole
			}
		default:
			return fail("unknown layer kind %q", l.Kind)
		}
		if op.colLen > p.colLen {
			p.colLen = op.colLen
		}
		if op.attnLen > p.attnLen {
			p.attnLen = op.attnLen
		}
		p.ops = append(p.ops, op)
	}
	if len(skips) != 0 {
		return nil, fmt.Errorf("model %q: %d unconsumed skip connections", m.Name, len(skips))
	}
	p.outLen = 1
	for _, d := range cur {
		p.outLen *= d
	}
	if hints.Workers > 1 {
		p.pool = tensor.NewWorkPool(hints.Workers - 1)
	}
	empty := make([]*stateSlot, 0)
	p.slots.Store(&empty)
	return p, nil
}

// compileConv resolves one conv-like op: kernel choice, output dims,
// scratch sizes. in is the per-point input dims.
func (p *Plan) compileConv(op *planOp, l *Layer, in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("conv input must be NCHW, got per-point dims %v", in)
	}
	c, h, w := in[0], in[1], in[2]
	op.inDims = append([]int(nil), in...)
	oc, ic, kh, kw := l.W.Dim(0), l.W.Dim(1), l.W.Dim(2), l.W.Dim(3)
	if ic != c {
		return nil, fmt.Errorf("conv channel mismatch: input %d, kernel %d", c, ic)
	}
	oh := (h+2*l.Pad-kh)/l.Stride + 1
	ow := (w+2*l.Pad-kw)/l.Stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("conv output would be empty for input %v kernel %v", in, l.W.Shape())
	}
	switch {
	case p.hints.FastConv && l.Stride == 1 && kh == 3 && kw == 3:
		wc, err := l.winogradConv()
		if err != nil {
			return nil, err
		}
		op.mode = convWinograd
		op.wino = wc
		op.winoIdx = p.nWino
		op.winoH, op.winoW = h, w
		p.nWino++
	case p.hints.FastConv && p.hints.Workers > 1:
		op.mode = convPooled
		op.colLen = c * kh * kw * oh * ow
	case p.hints.FastConv:
		op.mode = convBlocked
		op.colLen = c * kh * kw * oh * ow
	default:
		op.mode = convReference
		op.colLen = c * kh * kw * oh * ow
	}
	return []int{oc, oh, ow}, nil
}

func sameDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, d := range a {
		if b[i] != d {
			return false
		}
	}
	return true
}

// CompileUnfused compiles a plan that keeps the unfused op-by-op
// buffer lifetimes: every operator output stays live until the pass
// ends instead of being recycled into its successor. This models
// runtimes that execute the stored graph node by node without a fusion
// pass (the savedmodel embedded runtime) while still drawing buffers
// from the arena, so the steady state stays allocation-free. Outputs
// are bit-identical to Compile's — only lifetimes differ.
func (m *Model) CompileUnfused(hints ExecHints) (*Plan, error) {
	p, err := m.Compile(hints)
	if err != nil {
		return nil, err
	}
	p.unfused = true
	return p, nil
}

// Hints returns the execution hints the plan was compiled with.
func (p *Plan) Hints() ExecHints { return p.hints }

// Quantized reports whether the plan executes int8 kernels
// (QuantizePlan). Serving runtimes use it to model int8-sized device
// transfers.
func (p *Plan) Quantized() bool { return p.quantized }

// OutputLen returns the per-point output length.
func (p *Plan) OutputLen() int { return p.outLen }

// ArenaStats aggregates arena hits and misses across all execution
// states the plan has created. Safe to call concurrently with Forward.
func (p *Plan) ArenaStats() (hits, misses uint64) {
	return p.arenaHits.Load(), p.arenaMisses.Load()
}

// Close releases the plan's resident worker pool. No Forward calls may
// be in flight or issued afterwards.
func (p *Plan) Close() {
	if p.pool != nil {
		p.pool.Close()
		p.pool = nil
	}
}

// slot returns the stateSlot for batch size n, creating it on first
// use. The slots slice is copy-on-write so the lookup is a lock-free
// linear scan (plans see a handful of batch sizes).
func (p *Plan) slot(n int) *stateSlot {
	for _, s := range *p.slots.Load() {
		if s.n == n {
			return s
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	old := *p.slots.Load()
	for _, s := range old {
		if s.n == n {
			return s
		}
	}
	s := &stateSlot{n: n}
	next := make([]*stateSlot, len(old)+1)
	copy(next, old)
	next[len(old)] = s
	p.slots.Store(&next)
	return s
}

func (p *Plan) acquire(slot *stateSlot) *execState {
	if s := slot.pinned.Swap(nil); s != nil {
		return s
	}
	if s, _ := slot.pool.Get().(*execState); s != nil {
		return s
	}
	return p.newState(slot.n)
}

func (slot *stateSlot) release(s *execState) {
	if slot.pinned.CompareAndSwap(nil, s) {
		return
	}
	slot.pool.Put(s)
}

// newState builds one caller's working memory for batch size n. This is
// the cold path: everything made here is reused for the state's
// lifetime.
func (p *Plan) newState(n int) *execState {
	s := &execState{
		col:    make([]float32, p.colLen),  //lint:allow hotpathalloc state construction is the cold path; the scratch is reused for the state's lifetime
		attn:   make([]float32, p.attnLen), //lint:allow hotpathalloc state construction is the cold path; the scratch is reused for the state's lifetime
		winos:  make([]*tensor.WinoScratch, p.nWino),
		shapes: make([][]int, len(p.ops)),
	}
	s.arena.CountInto(&p.arenaHits, &p.arenaMisses)
	for i := range p.ops {
		op := &p.ops[i]
		if op.dims != nil {
			s.shapes[i] = append([]int{n}, op.dims...)
		}
		if op.winoIdx >= 0 {
			s.winos[op.winoIdx] = op.wino.NewScratch(op.winoH, op.winoW, op.l.Pad)
		}
	}
	s.inShape = append([]int{n}, p.m.InputShape...)
	return s
}

// Forward scores a batch of n points. in (length n×InputLen) may be
// used as scratch during the call, per the serving buffer-ownership
// contract; the result is written to out (length ≥ n×OutputLen). After
// warmup — one call per (batch size, goroutine) — the pass performs no
// heap allocations.
//
//lint:lent in
func (p *Plan) Forward(in []float32, n int, out []float32) error {
	if n <= 0 {
		return fmt.Errorf("model %q plan: non-positive batch size %d", p.m.Name, n)
	}
	if len(in) != n*p.m.InputLen() {
		return fmt.Errorf("model %q plan: batch of %d points needs %d values, got %d", p.m.Name, n, n*p.m.InputLen(), len(in))
	}
	if len(out) < n*p.outLen {
		return fmt.Errorf("model %q plan: output needs %d values, got %d", p.m.Name, n*p.outLen, len(out))
	}
	slot := p.slot(n)
	s := p.acquire(slot)
	err := p.exec(s, in, out)
	s.skips = s.skips[:0]
	s.arena.Reset()
	slot.release(s)
	return err
}

func (p *Plan) exec(s *execState, in, out []float32) error {
	x := s.arena.Wrap(in, s.inShape...)
	for i := range p.ops {
		op := &p.ops[i]
		l := op.l
		if op.q != nil {
			y, err := p.qApply(s, i, op, x)
			if err != nil {
				return err
			}
			x = y
			continue
		}
		switch op.kind {
		case KindDense:
			y := s.arena.Get(s.shapes[i]...)
			xm, ym := x, y
			if x.Rank() == 3 {
				// Flattened [n*S, D] views over the same buffers; Wrap
				// headers are arena-reused so this stays allocation-free.
				xm = s.arena.Wrap(x.Data(), x.Dim(0)*x.Dim(1), x.Dim(2))
				ym = s.arena.Wrap(y.Data(), y.Dim(0)*y.Dim(1), y.Dim(2))
			}
			if p.hints.Workers > 1 {
				tensor.MatMulParallelInto(ym, xm, l.W, p.hints.Workers, p.pool, &s.wg)
			} else {
				tensor.MatMulInto(ym, xm, l.W)
			}
			tensor.AddBiasInto(ym, ym, l.B)
			p.retire(s, x)
			x = y
		case KindReLU:
			tensor.ReLU(x)
		case KindSoftmax:
			tensor.SoftmaxInto(x, x)
		case KindConv:
			y := s.arena.Get(s.shapes[i]...)
			if err := p.convInto(s, op, y, x); err != nil {
				return err
			}
			p.retire(s, x)
			x = y
		case KindBatchNorm:
			if _, err := tensor.BatchNorm(x, l.Gamma, l.Beta, l.Mean, l.Variance, l.Eps); err != nil {
				return err
			}
		case KindMaxPool:
			y := s.arena.Get(s.shapes[i]...)
			tensor.MaxPool2DInto(y, x, l.PoolSize, l.Stride, l.Pad)
			p.retire(s, x)
			x = y
		case KindGlobalAvg:
			y := s.arena.Get(s.shapes[i]...)
			tensor.GlobalAvgPool2DInto(y, x)
			p.retire(s, x)
			x = y
		case KindFlatten:
			// A view, as in the reference pass: the underlying buffer
			// stays lent until Reset, so it cannot be recycled out
			// from under the view.
			x = s.arena.Wrap(x.Data(), s.shapes[i]...)
		case KindSaveSkip:
			s.skips = append(s.skips, x)
		case KindProjSkip:
			skip := s.skips[len(s.skips)-1]
			y := s.arena.Get(s.shapes[i]...)
			if err := p.convInto(s, op, y, skip); err != nil {
				return err
			}
			if l.Gamma != nil {
				if _, err := tensor.BatchNorm(y, l.Gamma, l.Beta, l.Mean, l.Variance, l.Eps); err != nil {
					return err
				}
			}
			s.skips[len(s.skips)-1] = y
			if skip != x {
				p.retire(s, skip)
			}
		case KindResidual:
			skip := s.skips[len(s.skips)-1]
			s.skips = s.skips[:len(s.skips)-1]
			if ln := op.lnFuse; ln != nil {
				tensor.LayerNormResidualInto(x, x, skip, ln.Gamma, ln.Beta, ln.Eps)
			} else if _, err := tensor.AddInPlace(x, skip); err != nil {
				return err
			}
			if skip != x {
				p.retire(s, skip)
			}
		case KindAttention:
			y := s.arena.Get(s.shapes[i]...)
			p.attnInto(s, op, y, x)
			p.retire(s, x)
			x = y
		case KindLayerNorm:
			if !op.fused {
				p.lnInto(op, x)
			}
		case KindGELU:
			p.geluInto(x)
		}
	}
	copy(out, x.Data())
	return nil
}

// qApply runs one quantized op (docs/QUANTIZATION.md): quantize the
// float32 activation into arena-pooled int8 scratch, run the packed
// int8 kernel into int32 accumulators, fold in the precomputed bias,
// and dequantize back to float32 at the op boundary. Every scratch
// buffer is recycled before returning, so steady state stays
// allocation-free. Returns the new activation (unchanged for
// ProjSkip, which rewrites the skip stack instead).
func (p *Plan) qApply(s *execState, i int, op *planOp, x *tensor.Tensor) (*tensor.Tensor, error) {
	q := op.q
	switch op.kind {
	case KindDense:
		rows := x.Dim(0)
		qx := s.arena.GetQ(rows, q.k)
		tensor.QuantizeLHSInto(qx, x.Data(), q.inScale, q.inZP)
		acc := s.arena.GetAcc(rows * q.n)
		tensor.QMatMulInto(acc, qx, q.w)
		tensor.QAddBiasInto(acc, q.qbias, rows, q.n)
		y := s.arena.Get(s.shapes[i]...)
		tensor.DequantizeAccInto(y.Data(), acc, q.mult, rows, q.n)
		s.arena.RecycleAcc(acc)
		s.arena.RecycleQ(qx)
		p.retire(s, x)
		return y, nil
	case KindConv, KindProjSkip:
		src := x
		if op.kind == KindProjSkip {
			src = s.skips[len(s.skips)-1]
		}
		n := src.Dim(0)
		qin := s.arena.GetQ(src.Shape()...)
		tensor.QuantizeInto(qin, src.Data(), q.inScale, q.inZP)
		lhs := s.arena.GetU64(q.lhsLen)
		rsum := s.arena.GetAcc(q.patches)
		acc := s.arena.GetAcc(n * q.patches * q.n)
		tensor.QConv2DInto(acc, qin, q.w, q.kh, q.kw, op.l.Stride, op.l.Pad, lhs, rsum)
		tensor.QAddBiasInto(acc, q.qbias, n*q.patches, q.n)
		y := s.arena.Get(s.shapes[i]...)
		tensor.DequantizeAccTInto(y.Data(), acc, q.mult, n, q.patches, q.n)
		s.arena.RecycleAcc(acc)
		s.arena.RecycleAcc(rsum)
		s.arena.RecycleU64(lhs)
		s.arena.RecycleQ(qin)
		if op.kind == KindProjSkip {
			s.skips[len(s.skips)-1] = y
			if src != x {
				p.retire(s, src)
			}
			return x, nil
		}
		p.retire(s, x)
		return y, nil
	}
	return nil, fmt.Errorf("model %q: quantized op on unsupported layer kind %q", p.m.Name, op.kind)
}

// retire recycles a dead activation unless the plan keeps unfused
// op-by-op lifetimes, in which case outputs stay live until Reset.
func (p *Plan) retire(s *execState, t *tensor.Tensor) {
	if p.unfused {
		return
	}
	s.retire(t)
}

// retire recycles a dead activation unless a skip connection still
// references it. Wrap headers (the input, flatten views) are ignored by
// the arena.
func (s *execState) retire(t *tensor.Tensor) {
	for _, sk := range s.skips {
		if sk == t {
			return
		}
	}
	s.arena.Recycle(t)
}

func (p *Plan) convInto(s *execState, op *planOp, dst, src *tensor.Tensor) error {
	switch op.mode {
	case convWinograd:
		op.wino.ApplyInto(dst, src, op.l.Pad, s.winos[op.winoIdx])
	case convPooled:
		tensor.Conv2DPoolInto(dst, src, op.l.W, op.l.Stride, op.l.Pad, s.col, p.hints.Workers, p.pool, &s.wg)
	case convBlocked:
		tensor.Conv2DInto(dst, src, op.l.W, op.l.Stride, op.l.Pad, s.col)
	default:
		tensor.Conv2DReferenceInto(dst, src, op.l.W, op.l.Stride, op.l.Pad, s.col)
	}
	if op.l.B != nil {
		if _, err := tensor.AddChannelBias(dst, op.l.B); err != nil {
			return err
		}
	}
	return nil
}

// MutatesInput reports whether a forward pass may write to the input
// buffer it is handed: true when an in-place operator (ReLU, softmax,
// batch norm, residual add) touches the activation before any
// allocating operator has replaced it. Serving runtimes use it to
// document — not work around — the Scorer buffer-ownership contract:
// scorers own their input for the duration of the call either way.
func (m *Model) MutatesInput() bool {
	for _, l := range m.Layers {
		switch l.Kind {
		case KindDense, KindConv, KindMaxPool, KindGlobalAvg, KindAttention:
			return false
		case KindReLU, KindSoftmax, KindBatchNorm, KindResidual, KindLayerNorm, KindGELU:
			return true
		}
	}
	return false
}
