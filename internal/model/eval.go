package model

import (
	"fmt"

	"crayfish/internal/tensor"
)

// Agreement scores two models on the same inputs and returns the fraction
// of data points whose argmax predictions match. It is the semantic check
// behind format conversion (a converted model must agree 100% with its
// source) and a cheap proxy when comparing candidate models against a
// reference during tuning (§2.2.2).
func Agreement(a, b *Model, inputs []float32, n int) (float64, error) {
	if a.InputLen() != b.InputLen() || a.OutputSize != b.OutputSize {
		return 0, fmt.Errorf("model: agreement requires matching shapes (%d→%d vs %d→%d)",
			a.InputLen(), a.OutputSize, b.InputLen(), b.OutputSize)
	}
	if n <= 0 || len(inputs) != n*a.InputLen() {
		return 0, fmt.Errorf("model: agreement batch of %d points wants %d values, got %d", n, n*a.InputLen(), len(inputs))
	}
	mk := func(m *Model) (*tensor.Tensor, error) {
		return m.BatchInput(append([]float32(nil), inputs...), n)
	}
	ain, err := mk(a)
	if err != nil {
		return 0, err
	}
	aout, err := a.Forward(ain)
	if err != nil {
		return 0, err
	}
	bin, err := mk(b)
	if err != nil {
		return 0, err
	}
	bout, err := b.Forward(bin)
	if err != nil {
		return 0, err
	}
	matches := 0
	for i := 0; i < n; i++ {
		if argmaxRow(aout, i) == argmaxRow(bout, i) {
			matches++
		}
	}
	return float64(matches) / float64(n), nil
}

// argmaxRow returns the argmax of row i of a rank-2 tensor.
func argmaxRow(t *tensor.Tensor, i int) int {
	cols := t.Dim(1)
	row := t.Data()[i*cols : (i+1)*cols]
	best, bi := row[0], 0
	for j, v := range row[1:] {
		if v > best {
			best, bi = v, j+1
		}
	}
	return bi
}
