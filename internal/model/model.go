// Package model builds and executes the neural networks evaluated by the
// paper: the FFNN Fashion-MNIST classifier (28K parameters) and the
// ResNet bottleneck architecture (full-width ResNet50 has 23M+ parameters).
//
// A model is a linear graph of layers. Weights are initialised
// deterministically (He initialisation from a seeded PRNG) so that every
// serving runtime in the repository scores identical models, mirroring how
// the paper distributes one pre-trained model in several storage formats.
package model

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"crayfish/internal/tensor"
)

// LayerKind identifies the operator a layer applies.
type LayerKind string

// Layer kinds understood by the execution engines and storage formats.
const (
	KindDense     LayerKind = "dense"     // x·W + b
	KindReLU      LayerKind = "relu"      // max(0, x)
	KindSoftmax   LayerKind = "softmax"   // row-wise softmax
	KindConv      LayerKind = "conv"      // 2-D convolution, NCHW
	KindBatchNorm LayerKind = "batchnorm" // inference-mode batch norm
	KindMaxPool   LayerKind = "maxpool"   // k×k max pooling
	KindGlobalAvg LayerKind = "globalavg" // global average pool -> rank 2
	KindFlatten   LayerKind = "flatten"   // collapse to [n, features]
	KindResidual  LayerKind = "residual"  // add a saved skip connection
	KindSaveSkip  LayerKind = "saveskip"  // remember activation for residual
	KindProjSkip  LayerKind = "projskip"  // 1×1 conv + BN on the saved skip
	KindAttention LayerKind = "attention" // multi-head self-attention over packed q|k|v rows
	KindLayerNorm LayerKind = "layernorm" // per-row layer norm over the last dim
	KindGELU      LayerKind = "gelu"      // Gaussian error linear unit
)

// Layer is one operator in a model graph. Only the fields relevant to its
// Kind are populated.
type Layer struct {
	Kind LayerKind
	Name string

	// Dense: W is [in, out]; B is [out].
	// Conv / ProjSkip: W is OIHW; B is [out channels].
	W *tensor.Tensor
	B *tensor.Tensor

	// Conv parameters.
	Stride int
	Pad    int
	// MaxPool parameters (Stride/Pad shared with conv fields).
	PoolSize int
	// Attention parameter: query/key/value head count. The packed q|k|v
	// projection itself folds into the preceding dense layer.
	Heads int

	// BatchNorm parameters (also used by ProjSkip's BN); LayerNorm uses
	// Gamma/Beta/Eps only.
	Gamma, Beta, Mean, Variance *tensor.Tensor
	Eps                         float32

	// winograd caches the fast-kernel weight transform, built lazily on
	// the first FastConv execution.
	winograd *tensor.WinogradConv
	winoOnce sync.Once
}

// Model is an immutable linear graph of layers plus metadata.
type Model struct {
	Name       string
	InputShape []int // per data point, without the batch dimension
	OutputSize int
	Layers     []*Layer
}

// ParamCount returns the total number of learnable parameters.
func (m *Model) ParamCount() int {
	n := 0
	for _, l := range m.Layers {
		for _, t := range []*tensor.Tensor{l.W, l.B, l.Gamma, l.Beta, l.Mean, l.Variance} {
			if t != nil {
				n += t.Len()
			}
		}
	}
	return n
}

// InputLen returns the flattened per-point input length.
func (m *Model) InputLen() int {
	n := 1
	for _, d := range m.InputShape {
		n *= d
	}
	return n
}

// Validate checks structural invariants: every layer has the tensors its
// kind requires, and residual layers are preceded by a matching save-skip.
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("model %q: no layers", m.Name)
	}
	if m.InputLen() == 0 {
		return fmt.Errorf("model %q: empty input shape %v", m.Name, m.InputShape)
	}
	skipDepth := 0
	for i, l := range m.Layers {
		switch l.Kind {
		case KindDense:
			if l.W == nil || l.B == nil || l.W.Rank() != 2 || l.B.Rank() != 1 {
				return fmt.Errorf("model %q layer %d (%s): malformed dense tensors", m.Name, i, l.Name)
			}
			if l.W.Dim(1) != l.B.Dim(0) {
				return fmt.Errorf("model %q layer %d (%s): dense W/B mismatch", m.Name, i, l.Name)
			}
		case KindConv, KindProjSkip:
			if l.W == nil || l.W.Rank() != 4 {
				return fmt.Errorf("model %q layer %d (%s): malformed conv kernel", m.Name, i, l.Name)
			}
			if l.Stride <= 0 {
				return fmt.Errorf("model %q layer %d (%s): non-positive stride", m.Name, i, l.Name)
			}
		case KindBatchNorm:
			if l.Gamma == nil || l.Beta == nil || l.Mean == nil || l.Variance == nil {
				return fmt.Errorf("model %q layer %d (%s): malformed batchnorm", m.Name, i, l.Name)
			}
		case KindMaxPool:
			if l.PoolSize <= 0 || l.Stride <= 0 {
				return fmt.Errorf("model %q layer %d (%s): malformed maxpool", m.Name, i, l.Name)
			}
		case KindAttention:
			if l.Heads <= 0 {
				return fmt.Errorf("model %q layer %d (%s): attention needs a positive head count", m.Name, i, l.Name)
			}
		case KindLayerNorm:
			if l.Gamma == nil || l.Beta == nil || l.Gamma.Rank() != 1 || l.Beta.Rank() != 1 || l.Gamma.Len() != l.Beta.Len() {
				return fmt.Errorf("model %q layer %d (%s): malformed layernorm", m.Name, i, l.Name)
			}
		case KindReLU, KindSoftmax, KindGlobalAvg, KindFlatten, KindGELU:
			// No parameters.
		case KindSaveSkip:
			skipDepth++
		case KindResidual:
			if skipDepth == 0 {
				return fmt.Errorf("model %q layer %d (%s): residual without saved skip", m.Name, i, l.Name)
			}
			skipDepth--
		default:
			return fmt.Errorf("model %q layer %d: unknown kind %q", m.Name, i, l.Kind)
		}
		if l.Kind == KindProjSkip {
			// Either a full BN parameter set or none at all (the
			// BN was folded into the projection weights).
			present := 0
			for _, t := range []*tensor.Tensor{l.Gamma, l.Beta, l.Mean, l.Variance} {
				if t != nil {
					present++
				}
			}
			if present != 0 && present != 4 {
				return fmt.Errorf("model %q layer %d (%s): projskip has partial batchnorm tensors", m.Name, i, l.Name)
			}
		}
	}
	if skipDepth != 0 {
		return fmt.Errorf("model %q: %d unconsumed skip connections", m.Name, skipDepth)
	}
	return nil
}

// initDense fills W with He-initialised weights and B with zeros.
func initDense(r *rand.Rand, in, out int) (*tensor.Tensor, *tensor.Tensor) {
	w := tensor.New(in, out)
	std := math.Sqrt(2 / float64(in))
	for i := range w.Data() {
		w.Data()[i] = float32(r.NormFloat64() * std)
	}
	return w, tensor.New(out)
}

// initConv fills an OIHW kernel with He-initialised weights.
func initConv(r *rand.Rand, oc, ic, kh, kw int) *tensor.Tensor {
	w := tensor.New(oc, ic, kh, kw)
	std := math.Sqrt(2 / float64(ic*kh*kw))
	for i := range w.Data() {
		w.Data()[i] = float32(r.NormFloat64() * std)
	}
	return w
}

// initBN returns inference-mode batch norm tensors: unit gamma/variance,
// small random mean/beta so the op is numerically non-trivial.
func initBN(r *rand.Rand, c int) (gamma, beta, mean, variance *tensor.Tensor) {
	gamma, beta, mean, variance = tensor.New(c), tensor.New(c), tensor.New(c), tensor.New(c)
	for i := 0; i < c; i++ {
		gamma.Data()[i] = 1
		beta.Data()[i] = float32(r.NormFloat64() * 0.01)
		mean.Data()[i] = float32(r.NormFloat64() * 0.01)
		variance.Data()[i] = 1
	}
	return
}

// NewFFNN builds the paper's FFNN: a fully-connected Fashion-MNIST
// classifier with a 28×28 input, three hidden ReLU layers of 32 neurons,
// and a 10-way softmax output (~28K parameters).
func NewFFNN(seed int64) *Model {
	return NewFFNNSized(seed, 28*28, []int{32, 32, 32}, 10)
}

// NewFFNNSized builds a fully-connected classifier with arbitrary input
// size, hidden widths, and class count. It is used by the model-tuning
// example to sweep the latency–accuracy trade-off (§2.2.2).
func NewFFNNSized(seed int64, in int, hidden []int, classes int) *Model {
	r := rand.New(rand.NewSource(seed))
	m := &Model{
		Name:       fmt.Sprintf("ffnn-%d-%v-%d", in, hidden, classes),
		InputShape: []int{in},
		OutputSize: classes,
	}
	if in == 28*28 && len(hidden) == 3 && hidden[0] == 32 && hidden[1] == 32 && hidden[2] == 32 && classes == 10 {
		m.Name = "ffnn"
	}
	prev := in
	for i, h := range hidden {
		w, b := initDense(r, prev, h)
		m.Layers = append(m.Layers,
			&Layer{Kind: KindDense, Name: fmt.Sprintf("dense%d", i), W: w, B: b},
			&Layer{Kind: KindReLU, Name: fmt.Sprintf("relu%d", i)})
		prev = h
	}
	w, b := initDense(r, prev, classes)
	m.Layers = append(m.Layers,
		&Layer{Kind: KindDense, Name: "logits", W: w, B: b},
		&Layer{Kind: KindSoftmax, Name: "probs"})
	return m
}

// ResNetConfig controls the ResNet builder.
type ResNetConfig struct {
	Seed int64
	// WidthMult scales every channel count. 1.0 reproduces ResNet50's
	// 23M+ parameters; the benchmark default uses a reduced width so a
	// pure-Go forward pass stays in the paper's hundreds-of-ms regime.
	WidthMult float64
	// InputSize is the square input edge (224 in the paper).
	InputSize int
	// Blocks per stage; ResNet50 uses {3, 4, 6, 3}.
	Blocks [4]int
	// Classes is the output width (1000 in the paper).
	Classes int
}

// DefaultResNetConfig returns the full ResNet50 configuration.
func DefaultResNetConfig(seed int64) ResNetConfig {
	return ResNetConfig{Seed: seed, WidthMult: 1, InputSize: 224, Blocks: [4]int{3, 4, 6, 3}, Classes: 1000}
}

// BenchResNetConfig returns the reduced-width ResNet used by the benchmark
// harness: the same depth and topology, a width multiplier of 1/8, and a
// 64×64 input. See DESIGN.md §1 for why this substitution preserves the
// experiments' shape.
func BenchResNetConfig(seed int64) ResNetConfig {
	return ResNetConfig{Seed: seed, WidthMult: 0.125, InputSize: 64, Blocks: [4]int{3, 4, 6, 3}, Classes: 1000}
}

// NewResNet50 builds the full-width 224×224×3 ResNet50 (~23M parameters).
func NewResNet50(seed int64) *Model {
	return NewResNet(DefaultResNetConfig(seed))
}

// NewResNet builds a bottleneck ResNet per cfg. The topology follows the
// ResNet50 paper: 7×7 stem, max pool, four stages of bottleneck blocks with
// strided downsampling, global average pooling and a softmax classifier.
func NewResNet(cfg ResNetConfig) *Model {
	r := rand.New(rand.NewSource(cfg.Seed))
	scale := func(c int) int {
		s := int(math.Round(float64(c) * cfg.WidthMult))
		if s < 4 {
			s = 4
		}
		return s
	}
	name := "resnet50"
	if cfg.WidthMult != 1 || cfg.InputSize != 224 {
		name = fmt.Sprintf("resnet50-w%g-i%d", cfg.WidthMult, cfg.InputSize)
	}
	m := &Model{
		Name:       name,
		InputShape: []int{3, cfg.InputSize, cfg.InputSize},
		OutputSize: cfg.Classes,
	}
	stem := scale(64)
	m.addConvBNReLU(r, "stem", 3, stem, 7, 2, 3)
	m.Layers = append(m.Layers, &Layer{Kind: KindMaxPool, Name: "stem.pool", PoolSize: 3, Stride: 2, Pad: 1})

	in := stem
	stageWidth := []int{scale(64), scale(128), scale(256), scale(512)}
	for stage := 0; stage < 4; stage++ {
		width := stageWidth[stage]
		outc := width * 4
		for blk := 0; blk < cfg.Blocks[stage]; blk++ {
			stride := 1
			if blk == 0 && stage > 0 {
				stride = 2
			}
			prefix := fmt.Sprintf("stage%d.block%d", stage, blk)
			project := blk == 0 // channel count (and possibly stride) changes
			m.addBottleneck(r, prefix, in, width, outc, stride, project)
			in = outc
		}
	}
	m.Layers = append(m.Layers, &Layer{Kind: KindGlobalAvg, Name: "avgpool"})
	w, b := initDense(r, in, cfg.Classes)
	m.Layers = append(m.Layers,
		&Layer{Kind: KindDense, Name: "fc", W: w, B: b},
		&Layer{Kind: KindSoftmax, Name: "probs"})
	return m
}

func (m *Model) addConvBNReLU(r *rand.Rand, prefix string, in, out, k, stride, pad int) {
	gamma, beta, mean, variance := initBN(r, out)
	m.Layers = append(m.Layers,
		&Layer{Kind: KindConv, Name: prefix + ".conv", W: initConv(r, out, in, k, k), B: tensor.New(out), Stride: stride, Pad: pad},
		&Layer{Kind: KindBatchNorm, Name: prefix + ".bn", Gamma: gamma, Beta: beta, Mean: mean, Variance: variance, Eps: 1e-5},
		&Layer{Kind: KindReLU, Name: prefix + ".relu"})
}

// addBottleneck appends a ResNet bottleneck block: 1×1 reduce, 3×3, 1×1
// expand, plus an identity or projection shortcut.
func (m *Model) addBottleneck(r *rand.Rand, prefix string, in, width, out, stride int, project bool) {
	m.Layers = append(m.Layers, &Layer{Kind: KindSaveSkip, Name: prefix + ".skip"})
	m.addConvBNReLU(r, prefix+".a", in, width, 1, 1, 0)
	m.addConvBNReLU(r, prefix+".b", width, width, 3, stride, 1)
	gamma, beta, mean, variance := initBN(r, out)
	m.Layers = append(m.Layers,
		&Layer{Kind: KindConv, Name: prefix + ".c.conv", W: initConv(r, out, width, 1, 1), B: tensor.New(out), Stride: 1, Pad: 0},
		&Layer{Kind: KindBatchNorm, Name: prefix + ".c.bn", Gamma: gamma, Beta: beta, Mean: mean, Variance: variance, Eps: 1e-5})
	if project {
		pg, pb, pm, pv := initBN(r, out)
		m.Layers = append(m.Layers, &Layer{
			Kind: KindProjSkip, Name: prefix + ".proj",
			W: initConv(r, out, in, 1, 1), B: tensor.New(out), Stride: stride, Pad: 0,
			Gamma: pg, Beta: pb, Mean: pm, Variance: pv, Eps: 1e-5,
		})
	}
	m.Layers = append(m.Layers,
		&Layer{Kind: KindResidual, Name: prefix + ".add"},
		&Layer{Kind: KindReLU, Name: prefix + ".out"})
}
