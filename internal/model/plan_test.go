package model

import (
	"fmt"
	"testing"

	"crayfish/internal/tensor"
)

// planTestResNet is a small-but-complete ResNet: every op kind the plan
// compiles (conv, batchnorm, maxpool, globalavg, save/proj-skip,
// residual, dense, softmax) at a size that keeps -race runs fast.
func planTestResNet() *Model {
	return NewResNet(ResNetConfig{Seed: 7, WidthMult: 0.125, InputSize: 32, Blocks: [4]int{1, 1, 1, 1}, Classes: 10})
}

// planTestTransformer is a small-but-complete transformer: fused QKV
// dense, attention, residual+layernorm, and GELU at a size that keeps
// -race runs fast.
func planTestTransformer() *Model {
	return NewTransformer(TransformerConfig{Seed: 7, SeqLen: 8, ModelDim: 16, Heads: 4, FFNDim: 32, Blocks: 2, Classes: 10})
}

func randInput(m *Model, n int, seed float32) []float32 {
	in := make([]float32, n*m.InputLen())
	v := seed
	for i := range in {
		v = v*1664525 + 1013904223 // LCG keeps it deterministic and cheap
		in[i] = float32(int32(v)%97) / 97
	}
	return in
}

// TestPlanMatchesForward asserts the compiled plan is bit-identical to
// the uncompiled reference pass under every hint combination, for all
// three model families and several batch sizes.
func TestPlanMatchesForward(t *testing.T) {
	models := []*Model{NewFFNN(3), planTestResNet(), planTestTransformer()}
	hintSets := []ExecHints{
		{},
		{Workers: 4},
		{FastConv: true},
		{FastConv: true, Workers: 4},
	}
	for _, m := range models {
		for _, hints := range hintSets {
			name := fmt.Sprintf("%s/workers=%d/fast=%v", m.Name, hints.Workers, hints.FastConv)
			t.Run(name, func(t *testing.T) {
				plan, err := m.Compile(hints)
				if err != nil {
					t.Fatal(err)
				}
				defer plan.Close()
				for _, n := range []int{1, 3, 8} {
					in := randInput(m, n, float32(n))
					// The reference pass may mutate its input in place;
					// feed both passes their own copy.
					refIn, err := m.BatchInput(append([]float32(nil), in...), n)
					if err != nil {
						t.Fatal(err)
					}
					want, err := m.ForwardWith(refIn, hints)
					if err != nil {
						t.Fatal(err)
					}
					got := make([]float32, n*plan.OutputLen())
					if err := plan.Forward(in, n, got); err != nil {
						t.Fatal(err)
					}
					if plan.OutputLen() != m.OutputSize {
						t.Fatalf("plan output len %d, model %d", plan.OutputLen(), m.OutputSize)
					}
					for i, w := range want.Data() {
						if got[i] != w { // bit-identical, not approximately equal
							t.Fatalf("n=%d output[%d]: plan %v != reference %v", n, i, got[i], w)
						}
					}
				}
			})
		}
	}
}

// TestPlanCompileErrors checks the compiler rejects malformed graphs
// instead of deferring to runtime panics.
func TestPlanCompileErrors(t *testing.T) {
	m := NewFFNN(1)
	bad := &Model{
		Name:       "bad",
		InputShape: []int{4},
		OutputSize: 2,
		Layers: []*Layer{
			{Kind: KindResidual, Name: "r"},
		},
	}
	if _, err := bad.Compile(ExecHints{}); err == nil {
		t.Fatal("residual without skip compiled")
	}
	mismatch := &Model{
		Name:       "mismatch",
		InputShape: []int{4},
		OutputSize: 2,
		Layers:     []*Layer{{Kind: KindDense, Name: "d", W: tensor.New(5, 2), B: tensor.New(2)}},
	}
	if _, err := mismatch.Compile(ExecHints{}); err == nil {
		t.Fatal("dense width mismatch compiled")
	}
	if _, err := m.Compile(ExecHints{}); err != nil {
		t.Fatalf("valid model failed to compile: %v", err)
	}
}

// TestPlanForwardAllocs is the allocation regression gate: after one
// warmup call per batch size, Plan.Forward performs zero heap
// allocations — for FFNN, ResNet, and the transformer, batch 1 and 64,
// single- and multi-worker. Run under -race the assertion stays, but
// the race runtime itself allocates, so the exact-zero check is
// skipped.
func TestPlanForwardAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc regression needs full-size batches")
	}
	models := []*Model{NewFFNN(3), planTestResNet(), planTestTransformer()}
	hintSets := []ExecHints{
		{},
		{FastConv: true, Workers: 4},
	}
	for _, m := range models {
		for _, hints := range hintSets {
			plan, err := m.Compile(hints)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{1, 64} {
				name := fmt.Sprintf("%s/workers=%d/n=%d", m.Name, hints.Workers, n)
				in := randInput(m, n, float32(n))
				out := make([]float32, n*plan.OutputLen())
				// Warmup: builds the state, fills the arena.
				if err := plan.Forward(in, n, out); err != nil {
					t.Fatal(err)
				}
				allocs := testing.AllocsPerRun(3, func() {
					if err := plan.Forward(in, n, out); err != nil {
						t.Fatal(err)
					}
				})
				if raceEnabled {
					continue // race runtime allocates shadow memory
				}
				if allocs != 0 {
					t.Errorf("%s: %v allocs/op in steady state, want 0", name, allocs)
				}
			}
			hits, misses := plan.ArenaStats()
			if hits == 0 || misses == 0 {
				t.Errorf("%s: arena stats hits=%d misses=%d, want both > 0 after warmup+steady state", m.Name, hits, misses)
			}
			plan.Close()
		}
	}
}

// TestPlanConcurrent exercises plan sharing across goroutines: each
// caller gets its own execution state, results stay bit-identical.
func TestPlanConcurrent(t *testing.T) {
	m := planTestResNet()
	plan, err := m.Compile(ExecHints{FastConv: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	const n = 2
	in := randInput(m, n, 5)
	refIn, err := m.BatchInput(append([]float32(nil), in...), n)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.ForwardWith(refIn, ExecHints{FastConv: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		go func() {
			out := make([]float32, n*plan.OutputLen())
			for iter := 0; iter < 20; iter++ {
				buf := append([]float32(nil), in...) // the plan may scratch its input
				if err := plan.Forward(buf, n, out); err != nil {
					errs <- err
					return
				}
				for i, w := range want.Data() {
					if out[i] != w {
						errs <- fmt.Errorf("iter %d output[%d]: %v != %v", iter, i, out[i], w)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < callers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkPlanForwardFFNN(b *testing.B) {
	benchPlan(b, NewFFNN(3), ExecHints{}, 16)
}

func BenchmarkPlanForwardResNet(b *testing.B) {
	benchPlan(b, planTestResNet(), ExecHints{FastConv: true}, 2)
}

// BenchmarkPlanForwardTransformer books transformer_ns_op in
// BENCH_inference.json (see scripts/bench.sh): the default-config
// transformer through its compiled plan on the fused kernel path.
func BenchmarkPlanForwardTransformer(b *testing.B) {
	benchPlan(b, NewTransformer(DefaultTransformerConfig(1)), ExecHints{FastConv: true}, 1)
}

// BenchmarkUnplannedForwardResNet is the allocating baseline the plan
// is measured against (see scripts/bench.sh).
func BenchmarkUnplannedForwardResNet(b *testing.B) {
	m := planTestResNet()
	n := 2
	in := randInput(m, n, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, err := m.BatchInput(append([]float32(nil), in...), n)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.ForwardWith(x, ExecHints{FastConv: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPlan(b *testing.B, m *Model, hints ExecHints, n int) {
	plan, err := m.Compile(hints)
	if err != nil {
		b.Fatal(err)
	}
	defer plan.Close()
	in := randInput(m, n, 1)
	out := make([]float32, n*plan.OutputLen())
	if err := plan.Forward(in, n, out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.Forward(in, n, out); err != nil {
			b.Fatal(err)
		}
	}
}
