package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"crayfish/internal/tensor"
)

func TestFFNNStructure(t *testing.T) {
	m := NewFFNN(1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Name != "ffnn" {
		t.Fatalf("Name = %q", m.Name)
	}
	if m.InputLen() != 784 || m.OutputSize != 10 {
		t.Fatalf("input %d output %d", m.InputLen(), m.OutputSize)
	}
	// 784*32+32 + 32*32+32 + 32*32+32 + 32*10+10 = 27,562 ≈ paper's 28K.
	if got := m.ParamCount(); got != 27562 {
		t.Fatalf("ParamCount = %d, want 27562", got)
	}
}

func TestFFNNDeterministicInit(t *testing.T) {
	a, b := NewFFNN(5), NewFFNN(5)
	if a.Layers[0].W.Data()[0] != b.Layers[0].W.Data()[0] {
		t.Fatal("same seed produced different weights")
	}
	c := NewFFNN(6)
	if a.Layers[0].W.Data()[0] == c.Layers[0].W.Data()[0] {
		t.Fatal("different seeds produced identical first weight")
	}
}

func TestFFNNForwardShapesAndDistribution(t *testing.T) {
	m := NewFFNN(1)
	r := rand.New(rand.NewSource(2))
	data := make([]float32, 3*784)
	for i := range data {
		data[i] = r.Float32()
	}
	in, err := m.BatchInput(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 3 || out.Dim(1) != 10 {
		t.Fatalf("output shape %v", out.Shape())
	}
	for i := 0; i < 3; i++ {
		var s float64
		for j := 0; j < 10; j++ {
			s += float64(out.At(i, j))
		}
		if math.Abs(s-1) > 1e-4 {
			t.Fatalf("row %d probability sum %v", i, s)
		}
	}
}

func TestBatchInputErrors(t *testing.T) {
	m := NewFFNN(1)
	if _, err := m.BatchInput(make([]float32, 10), 1); err == nil {
		t.Fatal("short batch did not error")
	}
	if _, err := m.BatchInput(nil, 0); err == nil {
		t.Fatal("zero batch did not error")
	}
}

func TestFFNNSizedSweep(t *testing.T) {
	for _, hidden := range [][]int{{8}, {64, 64}, {16, 16, 16, 16}} {
		m := NewFFNNSized(1, 100, hidden, 5)
		if err := m.Validate(); err != nil {
			t.Fatalf("hidden %v: %v", hidden, err)
		}
		in, err := m.BatchInput(make([]float32, 100), 1)
		if err != nil {
			t.Fatal(err)
		}
		out, err := m.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		if out.Dim(1) != 5 {
			t.Fatalf("hidden %v: output %v", hidden, out.Shape())
		}
	}
}

func TestResNetBenchStructure(t *testing.T) {
	m := NewResNet(BenchResNetConfig(1))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.OutputSize != 1000 {
		t.Fatalf("OutputSize = %d", m.OutputSize)
	}
	if len(m.InputShape) != 3 || m.InputShape[0] != 3 {
		t.Fatalf("InputShape = %v", m.InputShape)
	}
	// 3+4+6+3 = 16 bottleneck blocks -> 16 residual layers.
	res := 0
	for _, l := range m.Layers {
		if l.Kind == KindResidual {
			res++
		}
	}
	if res != 16 {
		t.Fatalf("residual blocks = %d, want 16", res)
	}
}

func TestResNet50ParamCount(t *testing.T) {
	m := NewResNet50(1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper reports 23M parameters for ResNet50; ours (with BN
	// statistics counted) should land in the 23M–28M window.
	n := m.ParamCount()
	if n < 23_000_000 || n > 28_000_000 {
		t.Fatalf("ResNet50 ParamCount = %d, want ≈23M", n)
	}
}

func TestResNetForward(t *testing.T) {
	cfg := BenchResNetConfig(1)
	cfg.InputSize = 32 // keep the test fast
	m := NewResNet(cfg)
	in, err := m.BatchInput(make([]float32, 3*32*32), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Data() {
		in.Data()[i] = float32(i%7) * 0.1
	}
	out, err := m.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 1 || out.Dim(1) != 1000 {
		t.Fatalf("output shape %v", out.Shape())
	}
	var s float64
	for _, v := range out.Data() {
		if math.IsNaN(float64(v)) {
			t.Fatal("NaN in resnet output")
		}
		s += float64(v)
	}
	if math.Abs(s-1) > 1e-3 {
		t.Fatalf("probabilities sum to %v", s)
	}
}

func TestForwardParallelMatchesSequential(t *testing.T) {
	cfg := BenchResNetConfig(3)
	cfg.InputSize = 32
	m := NewResNet(cfg)
	mk := func() *tensor.Tensor {
		in, err := m.BatchInput(make([]float32, 2*3*32*32), 2)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(9))
		for i := range in.Data() {
			in.Data()[i] = r.Float32()
		}
		return in
	}
	// Layers mutate activations in place, so each run gets a fresh input.
	seq, err := m.Forward(mk())
	if err != nil {
		t.Fatal(err)
	}
	par, err := m.ForwardParallel(mk(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.AllClose(par, 1e-3) {
		t.Fatal("parallel forward differs from sequential")
	}
}

func TestForwardDeterministicProperty(t *testing.T) {
	m := NewFFNN(4)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		data := make([]float32, 784)
		for i := range data {
			data[i] = r.Float32()
		}
		mk := func() *tensor.Tensor {
			in, err := m.BatchInput(append([]float32(nil), data...), 1)
			if err != nil {
				return nil
			}
			return in
		}
		a, err := m.Forward(mk())
		if err != nil {
			return false
		}
		b, err := m.Forward(mk())
		if err != nil {
			return false
		}
		return a.AllClose(b, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesMalformedModels(t *testing.T) {
	cases := []struct {
		name string
		m    *Model
	}{
		{"empty", &Model{Name: "x", InputShape: []int{4}}},
		{"empty input", &Model{Name: "x", InputShape: []int{0}, Layers: []*Layer{{Kind: KindReLU}}}},
		{"dense missing W", &Model{Name: "x", InputShape: []int{4}, Layers: []*Layer{{Kind: KindDense}}}},
		{"dense W/B mismatch", &Model{Name: "x", InputShape: []int{4}, Layers: []*Layer{{Kind: KindDense, W: tensor.New(4, 2), B: tensor.New(3)}}}},
		{"conv bad stride", &Model{Name: "x", InputShape: []int{1, 4, 4}, Layers: []*Layer{{Kind: KindConv, W: tensor.New(1, 1, 3, 3)}}}},
		{"bn missing tensors", &Model{Name: "x", InputShape: []int{1, 4, 4}, Layers: []*Layer{{Kind: KindBatchNorm}}}},
		{"pool bad size", &Model{Name: "x", InputShape: []int{1, 4, 4}, Layers: []*Layer{{Kind: KindMaxPool}}}},
		{"residual no skip", &Model{Name: "x", InputShape: []int{4}, Layers: []*Layer{{Kind: KindResidual}}}},
		{"dangling skip", &Model{Name: "x", InputShape: []int{4}, Layers: []*Layer{{Kind: KindSaveSkip}}}},
		{"unknown kind", &Model{Name: "x", InputShape: []int{4}, Layers: []*Layer{{Kind: "bogus"}}}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted malformed model", tc.name)
		}
	}
}

func TestForwardErrorsOnBadActivationShapes(t *testing.T) {
	m := &Model{Name: "bad", InputShape: []int{4}, OutputSize: 2, Layers: []*Layer{
		{Kind: KindDense, Name: "d", W: tensor.New(5, 2), B: tensor.New(2)}, // wants 5 inputs
	}}
	in := tensor.New(1, 4)
	if _, err := m.Forward(in); err == nil {
		t.Fatal("shape-mismatched forward did not error")
	}
}

func TestWidthMultScalesParams(t *testing.T) {
	small := NewResNet(ResNetConfig{Seed: 1, WidthMult: 0.125, InputSize: 64, Blocks: [4]int{1, 1, 1, 1}, Classes: 10})
	big := NewResNet(ResNetConfig{Seed: 1, WidthMult: 0.25, InputSize: 64, Blocks: [4]int{1, 1, 1, 1}, Classes: 10})
	if small.ParamCount() >= big.ParamCount() {
		t.Fatalf("width 0.125 (%d params) not smaller than width 0.25 (%d)", small.ParamCount(), big.ParamCount())
	}
}

func BenchmarkFFNNForwardBatch1(b *testing.B) {
	m := NewFFNN(1)
	in, err := m.BatchInput(make([]float32, 784), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forward(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResNetBenchForward(b *testing.B) {
	m := NewResNet(BenchResNetConfig(1))
	in, err := m.BatchInput(make([]float32, 3*64*64), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forward(in); err != nil {
			b.Fatal(err)
		}
	}
}
