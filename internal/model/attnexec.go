package model

// Compiled-plan dispatch for the transformer operators (attention,
// layer norm, GELU). Like forward.go and plan.go this whole file is on
// the hotpathalloc analyzer's hot list: every kernel writes into arena
// buffers or the execution state's pre-sized attention scratch.

import (
	"fmt"

	"crayfish/internal/tensor"
)

// compileAttention resolves one attention op: head geometry and the
// scratch floats the chosen kernel needs. in is the per-point input
// dims ([S, 3D] for a packed q|k|v activation).
func (p *Plan) compileAttention(op *planOp, l *Layer, in []int) ([]int, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("attention input must be rank 3 [n, seq, 3*dim], got per-point dims %v", in)
	}
	s, w := in[0], in[1]
	if w == 0 || w%3 != 0 {
		return nil, fmt.Errorf("attention input width %d not divisible by 3 (rows pack q|k|v)", w)
	}
	d := w / 3
	if l.Heads <= 0 || d%l.Heads != 0 {
		return nil, fmt.Errorf("attention with %d heads over model dim %d", l.Heads, d)
	}
	if p.hints.FastConv {
		workers := p.hints.Workers
		if workers < 1 {
			workers = 1
		}
		op.attnLen = tensor.AttentionScratchLen(d, l.Heads, workers)
	} else {
		op.attnLen = tensor.AttentionReferenceScratchLen(s)
	}
	return []int{s, d}, nil
}

// attnInto runs one compiled attention op into dst: the fused tiled
// kernel under FastConv (fanned over the work pool when Workers > 1),
// the unfused reference otherwise. Scratch comes from the execution
// state's pre-sized attention buffer.
func (p *Plan) attnInto(s *execState, op *planOp, dst, src *tensor.Tensor) {
	if !p.hints.FastConv {
		tensor.AttentionReferenceInto(dst, src, op.l.Heads, s.attn)
		return
	}
	if p.hints.Workers > 1 {
		tensor.AttentionPoolInto(dst, src, op.l.Heads, s.attn, p.hints.Workers, p.pool, &s.wg)
		return
	}
	tensor.AttentionInto(dst, src, op.l.Heads, s.attn)
}

// lnInto runs one standalone layer-norm op in place (residual-fused
// layer norms are executed by their residual op instead).
func (p *Plan) lnInto(op *planOp, x *tensor.Tensor) {
	l := op.l
	if p.hints.FastConv {
		tensor.LayerNormResidualInto(x, x, nil, l.Gamma, l.Beta, l.Eps)
		return
	}
	tensor.LayerNormReferenceInto(x, x, nil, l.Gamma, l.Beta, l.Eps)
}

// geluInto runs one GELU op in place: the fused tanh approximation
// under FastConv, the exact-erf reference otherwise.
func (p *Plan) geluInto(x *tensor.Tensor) {
	if p.hints.FastConv {
		tensor.GELUInto(x, x)
		return
	}
	tensor.GELUReferenceInto(x, x)
}
