package model

import (
	"fmt"
	"testing"
)

// The accuracy-drift contract (docs/QUANTIZATION.md): int8 top-1
// agreement vs the float32 reference on the seeded eval set must stay
// within these bounds. The measured agreement on the pinned seeds is
// higher (1.00 for the FFNN, ≥0.98 for the ResNet); the bounds leave
// slack for FMA/rounding differences across platforms, not for scheme
// regressions.
const (
	int8Top1AgreementFFNN   = 0.98
	int8Top1AgreementResNet = 0.95
)

// calibratedFFNN builds the quantized-plan fixture: NewFFNN(3)
// calibrated on 64 seeded points.
func calibratedFFNN(t testing.TB) (*Model, *Plan) {
	t.Helper()
	m := NewFFNN(3)
	cal, err := m.Calibrate(randInput(m, 64, 9), 64)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := m.QuantizePlan(ExecHints{}, cal)
	if err != nil {
		t.Fatal(err)
	}
	return m, plan
}

// calibratedResNet quantizes the BN-folded test ResNet; the returned
// model is the original (the float32 reference the contract compares
// against).
func calibratedResNet(t testing.TB) (*Model, *Plan) {
	t.Helper()
	m := planTestResNet()
	folded := FoldBatchNorm(m)
	cal, err := folded.Calibrate(randInput(m, 16, 9), 16)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := folded.QuantizePlan(ExecHints{}, cal)
	if err != nil {
		t.Fatal(err)
	}
	return m, plan
}

func TestCalibrateRecordsRanges(t *testing.T) {
	m := NewFFNN(3)
	cal, err := m.Calibrate(randInput(m, 8, 3), 8)
	if err != nil {
		t.Fatal(err)
	}
	var denseLayers []int
	for i, l := range m.Layers {
		if l.Kind == KindDense {
			denseLayers = append(denseLayers, i)
		}
	}
	if len(cal.Stats) != len(denseLayers) {
		t.Fatalf("stats for %d layers, want %d", len(cal.Stats), len(denseLayers))
	}
	for si, st := range cal.Stats {
		if st.Layer != denseLayers[si] {
			t.Fatalf("stats[%d] at layer %d, want %d", si, st.Layer, denseLayers[si])
		}
		if st.Min > st.Max {
			t.Fatalf("layer %d: min %g > max %g", st.Layer, st.Min, st.Max)
		}
		wantCh := m.Layers[st.Layer].W.Dim(0)
		if len(st.ChanMin) != wantCh || len(st.ChanMax) != wantCh {
			t.Fatalf("layer %d: %d channel ranges, want %d", st.Layer, len(st.ChanMin), wantCh)
		}
		for c := range st.ChanMin {
			if st.ChanMin[c] < st.Min || st.ChanMax[c] > st.Max {
				t.Fatalf("layer %d channel %d range [%g,%g] escapes envelope [%g,%g]",
					st.Layer, c, st.ChanMin[c], st.ChanMax[c], st.Min, st.Max)
			}
		}
	}
	if _, err := m.Calibrate([]float32{1, 2, 3}, 1); err == nil {
		t.Fatal("short calibration batch accepted")
	}
}

func TestQuantizePlanRejectsUnfoldedBatchNorm(t *testing.T) {
	m := planTestResNet()
	cal, err := FoldBatchNorm(m).Calibrate(randInput(m, 4, 1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.QuantizePlan(ExecHints{}, cal); err == nil {
		t.Fatal("unfolded batch norms quantized")
	}
	plan, err := FoldBatchNorm(m).QuantizePlan(ExecHints{}, cal)
	if err != nil {
		t.Fatalf("folded model rejected: %v", err)
	}
	plan.Close()
}

func TestQuantizePlanRejectsBadCalibration(t *testing.T) {
	m := NewFFNN(3)
	if _, err := m.QuantizePlan(ExecHints{}, nil); err == nil {
		t.Fatal("nil calibration accepted")
	}
	if _, err := m.QuantizePlan(ExecHints{}, &Calibration{Model: "empty"}); err == nil {
		t.Fatal("empty calibration accepted")
	}
	cal, err := m.Calibrate(randInput(m, 8, 3), 8)
	if err != nil {
		t.Fatal(err)
	}
	cal.Stats = cal.Stats[:1] // later dense layers now uncovered
	if _, err := m.QuantizePlan(ExecHints{}, cal); err == nil {
		t.Fatal("partial calibration accepted")
	}
}

// TestQPlanAgreementContract is the accuracy-drift contract: top-1
// agreement between the int8 plan and the float32 reference on the
// seeded eval set stays within the pinned bound.
func TestQPlanAgreementContract(t *testing.T) {
	cases := []struct {
		name  string
		ref   *Model
		plan  *Plan
		n     int
		bound float64
	}{}
	fm, fp := calibratedFFNN(t)
	cases = append(cases, struct {
		name  string
		ref   *Model
		plan  *Plan
		n     int
		bound float64
	}{"ffnn", fm, fp, 256, int8Top1AgreementFFNN})
	rm, rp := calibratedResNet(t)
	cases = append(cases, struct {
		name  string
		ref   *Model
		plan  *Plan
		n     int
		bound float64
	}{"resnet", rm, rp, 64, int8Top1AgreementResNet})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer tc.plan.Close()
			agree, err := PlanAgreement(tc.ref, tc.plan, randInput(tc.ref, tc.n, 11), tc.n)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s int8 top-1 agreement: %.4f (bound %.2f)", tc.name, agree, tc.bound)
			if agree < tc.bound {
				t.Fatalf("int8 top-1 agreement %.4f below the contract bound %.2f", agree, tc.bound)
			}
		})
	}
}

// TestQPlanForwardAllocs extends the allocation regression gate to the
// quantized path: after warmup, the int8 forward pass — quantize,
// packed GEMM, bias, dequantize, plus all arena traffic — performs
// zero heap allocations.
func TestQPlanForwardAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc regression needs full-size batches")
	}
	fixtures := []struct {
		name string
		mk   func(testing.TB) (*Model, *Plan)
		ns   []int
	}{
		{"ffnn", calibratedFFNN, []int{1, 16}},
		{"resnet", calibratedResNet, []int{1, 2}},
	}
	for _, fx := range fixtures {
		m, plan := fx.mk(t)
		for _, n := range fx.ns {
			in := randInput(m, n, float32(n))
			out := make([]float32, n*plan.OutputLen())
			if err := plan.Forward(in, n, out); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(3, func() {
				if err := plan.Forward(in, n, out); err != nil {
					t.Fatal(err)
				}
			})
			if raceEnabled {
				continue
			}
			if allocs != 0 {
				t.Errorf("%s/n=%d: %v allocs/op in steady state, want 0", fx.name, n, allocs)
			}
		}
		hits, misses := plan.ArenaStats()
		if hits == 0 || misses == 0 {
			t.Errorf("%s: arena stats hits=%d misses=%d, want both > 0", fx.name, hits, misses)
		}
		plan.Close()
	}
}

// TestQPlanBatchInvariance: activation parameters are fixed at
// calibration time, so quantized scoring is row-independent — a batch
// of 8 must be bit-identical to 8 single-point calls.
func TestQPlanBatchInvariance(t *testing.T) {
	m, plan := calibratedFFNN(t)
	defer plan.Close()
	const n = 8
	in := randInput(m, n, 4)
	batch := make([]float32, n*plan.OutputLen())
	if err := plan.Forward(append([]float32(nil), in...), n, batch); err != nil {
		t.Fatal(err)
	}
	k := m.InputLen()
	single := make([]float32, plan.OutputLen())
	for i := 0; i < n; i++ {
		if err := plan.Forward(append([]float32(nil), in[i*k:(i+1)*k]...), 1, single); err != nil {
			t.Fatal(err)
		}
		for j, v := range single {
			if batch[i*plan.OutputLen()+j] != v {
				t.Fatalf("row %d output %d: batch %v != single %v", i, j, batch[i*plan.OutputLen()+j], v)
			}
		}
	}
}

// TestQPlanConcurrent exercises quantized-plan sharing across
// goroutines: per-state arenas keep the int8 scratch isolated and
// outputs bit-identical.
func TestQPlanConcurrent(t *testing.T) {
	m, plan := calibratedFFNN(t)
	defer plan.Close()
	const n = 4
	in := randInput(m, n, 5)
	want := make([]float32, n*plan.OutputLen())
	if err := plan.Forward(append([]float32(nil), in...), n, want); err != nil {
		t.Fatal(err)
	}
	const callers = 8
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		go func() {
			out := make([]float32, n*plan.OutputLen())
			for iter := 0; iter < 20; iter++ {
				buf := append([]float32(nil), in...)
				if err := plan.Forward(buf, n, out); err != nil {
					errs <- err
					return
				}
				for i, w := range want {
					if out[i] != w {
						errs <- fmt.Errorf("iter %d output[%d]: %v != %v", iter, i, out[i], w)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < callers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkQPlanForwardFFNN(b *testing.B) {
	m, plan := calibratedFFNN(b)
	defer plan.Close()
	benchQPlan(b, m, plan, 16)
}

func BenchmarkQPlanForwardResNet(b *testing.B) {
	m, plan := calibratedResNet(b)
	defer plan.Close()
	benchQPlan(b, m, plan, 2)
}

func benchQPlan(b *testing.B, m *Model, plan *Plan, n int) {
	in := randInput(m, n, 1)
	out := make([]float32, n*plan.OutputLen())
	if err := plan.Forward(in, n, out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.Forward(in, n, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQPlanAgreement times the quantized pass over the contract
// eval set and reports the measured top-1 drift as the top1_delta
// metric, which bench.sh books into BENCH_inference.json as
// int8_top1_delta.
func BenchmarkQPlanAgreement(b *testing.B) {
	m, plan := calibratedFFNN(b)
	defer plan.Close()
	const n = 256
	eval := randInput(m, n, 11)
	agree, err := PlanAgreement(m, plan, eval, n)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float32, n*plan.OutputLen())
	buf := make([]float32, len(eval))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, eval)
		if err := plan.Forward(buf, n, out); err != nil {
			b.Fatal(err)
		}
	}
	// After the loop: ResetTimer clears user-reported metrics.
	b.ReportMetric(1-agree, "top1_delta")
}
