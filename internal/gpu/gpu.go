// Package gpu models the hardware accelerator used by the paper's RQ2
// experiments (NVIDIA T4). A Device decides how a runtime executes its
// kernels and what data-movement cost it pays:
//
//   - The CPU device runs kernels sequentially with no transfer cost.
//   - The GPU device runs kernels data-parallel across host cores (real
//     speedup from real work) and charges an explicit host↔device transfer
//     cost per inference call: bytes divided by PCIe-like bandwidth plus a
//     fixed kernel-launch latency. The transfer pacing is the one place in
//     this repository where time is modelled rather than computed; see
//     DESIGN.md §5.
package gpu

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// Device abstracts the execution hardware available to a serving runtime.
type Device interface {
	// Name identifies the device ("cpu", "gpu").
	Name() string
	// Workers is the kernel-level parallelism the device offers; 1 means
	// sequential execution.
	Workers() int
	// FastKernels reports whether the device's kernel library uses
	// fast algorithms — Winograd convolution and the fused transformer
	// kernels (flash-style attention, fused residual + layer norm) —
	// as accelerator libraries like cuDNN do. Workers additionally fans
	// attention (head × query-row) lanes out alongside GEMM row ranges.
	FastKernels() bool
	// Transfer accounts for moving n bytes between host and device.
	// It blocks for the modelled duration on accelerator devices and is
	// free on the CPU.
	Transfer(n int)
}

// ExecProfile is the execution shape a device feeds a runtime's
// compiled plan: kernel-level parallelism and whether the device's
// kernel library provides fast convolution algorithms. Runtimes
// translate it into the model layer's execution hints at plan-compile
// time, so a plan is fixed per (model, device) pair.
type ExecProfile struct {
	Workers     int
	FastKernels bool
	// Int8 requests the quantized inference path: the runtime compiles
	// an int8 plan (model.QuantizePlan) and pays int8-sized transfers.
	Int8 bool
}

// ProfileOf extracts a device's execution profile (nil = CPU).
func ProfileOf(d Device) ExecProfile {
	if d == nil {
		d = CPU()
	}
	return ExecProfile{Workers: d.Workers(), FastKernels: d.FastKernels(), Int8: SupportsInt8(d)}
}

// WithInt8 wraps a device so its profile requests int8 execution, the
// way TensorRT-style deployments opt a model into the quantized engine
// on the same hardware. nil wraps the CPU.
func WithInt8(d Device) Device {
	if d == nil {
		d = CPU()
	}
	return int8Device{d}
}

// SupportsInt8 reports whether the device was wrapped by WithInt8.
func SupportsInt8(d Device) bool {
	_, ok := d.(int8Device)
	return ok
}

type int8Device struct {
	Device
}

func (d int8Device) Name() string { return d.Device.Name() + "+int8" }

// CPU returns the host processor device.
func CPU() Device { return cpuDevice{} }

type cpuDevice struct{}

func (cpuDevice) Name() string      { return "cpu" }
func (cpuDevice) Workers() int      { return 1 }
func (cpuDevice) FastKernels() bool { return false }
func (cpuDevice) Transfer(int)      {}

// Config tunes the simulated accelerator.
type Config struct {
	// Workers is the data-parallel kernel width. 0 means all host cores.
	Workers int
	// BandwidthBytesPerSec models the host↔device interconnect.
	// 0 means 12 GB/s (PCIe 3.0 x16 effective, the T4's link).
	BandwidthBytesPerSec float64
	// LaunchLatency is the fixed per-call kernel launch + driver cost.
	// 0 means 30 µs.
	LaunchLatency time.Duration
}

// NewGPU returns an accelerator device.
func NewGPU(cfg Config) Device {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.BandwidthBytesPerSec <= 0 {
		cfg.BandwidthBytesPerSec = 12e9
	}
	if cfg.LaunchLatency <= 0 {
		cfg.LaunchLatency = 30 * time.Microsecond
	}
	return &gpuDevice{cfg: cfg}
}

type gpuDevice struct {
	cfg Config
}

func (g *gpuDevice) Name() string { return "gpu" }

func (g *gpuDevice) Workers() int { return g.cfg.Workers }

func (g *gpuDevice) FastKernels() bool { return true }

func (g *gpuDevice) Transfer(n int) {
	if n <= 0 {
		return
	}
	d := g.cfg.LaunchLatency + time.Duration(float64(n)/g.cfg.BandwidthBytesPerSec*float64(time.Second))
	//lint:allow clockdiscipline the modelled PCIe transfer delay itself
	time.Sleep(d)
}

// ByName resolves "cpu" or "gpu" (with defaults) for configuration
// files; a "+int8" suffix opts into the quantized execution profile
// ("gpu+int8").
func ByName(name string) (Device, error) {
	base, quantized := name, false
	if n, ok := strings.CutSuffix(name, "+int8"); ok {
		base, quantized = n, true
	}
	var d Device
	switch base {
	case "", "cpu":
		d = CPU()
	case "gpu":
		d = NewGPU(Config{})
	default:
		return nil, fmt.Errorf("gpu: unknown device %q", name)
	}
	if quantized {
		d = WithInt8(d)
	}
	return d, nil
}
