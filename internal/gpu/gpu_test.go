package gpu

import (
	"testing"
	"time"
)

func TestCPUDevice(t *testing.T) {
	d := CPU()
	if d.Name() != "cpu" || d.Workers() != 1 {
		t.Fatalf("cpu device = %s/%d", d.Name(), d.Workers())
	}
	start := time.Now()
	d.Transfer(1 << 30)
	if time.Since(start) > time.Millisecond {
		t.Fatal("cpu Transfer should be free")
	}
}

func TestGPUDefaults(t *testing.T) {
	d := NewGPU(Config{})
	if d.Name() != "gpu" {
		t.Fatalf("name = %s", d.Name())
	}
	if d.Workers() < 1 {
		t.Fatalf("workers = %d", d.Workers())
	}
}

func TestGPUTransferScalesWithBytes(t *testing.T) {
	d := NewGPU(Config{Workers: 2, BandwidthBytesPerSec: 1e9, LaunchLatency: time.Microsecond})
	start := time.Now()
	d.Transfer(10_000_000) // 10 MB at 1 GB/s ≈ 10 ms
	small := time.Since(start)
	if small < 8*time.Millisecond {
		t.Fatalf("10MB transfer took %v, want ≈10ms", small)
	}
	start = time.Now()
	d.Transfer(0)
	if time.Since(start) > time.Millisecond {
		t.Fatal("zero-byte transfer should be free")
	}
}

func TestGPULaunchLatencyFloor(t *testing.T) {
	d := NewGPU(Config{Workers: 1, BandwidthBytesPerSec: 1e12, LaunchLatency: 5 * time.Millisecond})
	start := time.Now()
	d.Transfer(1)
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("launch latency not applied")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", "cpu", "gpu"} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
	}
	if _, err := ByName("tpu"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestInt8Wrapping(t *testing.T) {
	d := WithInt8(nil)
	if !SupportsInt8(d) || SupportsInt8(CPU()) {
		t.Fatal("SupportsInt8 does not track WithInt8")
	}
	if d.Name() != "cpu+int8" {
		t.Fatalf("name = %s", d.Name())
	}
	p := ProfileOf(d)
	if !p.Int8 || p.Workers != 1 || p.FastKernels {
		t.Fatalf("profile = %+v", p)
	}
	for name, want := range map[string]string{"cpu+int8": "cpu+int8", "+int8": "cpu+int8", "gpu+int8": "gpu+int8"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if !SupportsInt8(d) || d.Name() != want {
			t.Fatalf("%q resolved to %s, int8=%v", name, d.Name(), SupportsInt8(d))
		}
	}
	if _, err := ByName("tpu+int8"); err == nil {
		t.Fatal("unknown int8 base device accepted")
	}
}
