package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWinogradMatchesDirectProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func(hRaw, wRaw, icRaw, ocRaw, padRaw uint8) bool {
		h := int(hRaw)%12 + 3
		w := int(wRaw)%12 + 3
		ic := int(icRaw)%4 + 1
		oc := int(ocRaw)%5 + 1
		pad := int(padRaw) % 2
		in := randTensor(r, 1, ic, h, w)
		k := randTensor(r, oc, ic, 3, 3)
		direct, err := Conv2D(in, k, 1, pad)
		if err != nil {
			return pad == 0 && (h < 3 || w < 3)
		}
		fast, err := Conv2DWinograd(in, k, pad)
		if err != nil {
			return false
		}
		return direct.AllClose(fast, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWinogradBatchAndOddSizes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	// Odd output sizes exercise the tile-trim path; batch > 1 exercises
	// per-image loops.
	in := randTensor(r, 3, 2, 7, 9)
	k := randTensor(r, 4, 2, 3, 3)
	direct, err := Conv2D(in, k, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Conv2DWinograd(in, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !direct.AllClose(fast, 1e-3) {
		t.Fatal("Winograd differs from direct conv on odd sizes")
	}
}

func TestWinogradRejectsBadShapes(t *testing.T) {
	if _, err := NewWinogradConv(New(2, 2, 5, 5)); err == nil {
		t.Fatal("5×5 kernel accepted")
	}
	if _, err := NewWinogradConv(New(4)); err == nil {
		t.Fatal("rank-1 kernel accepted")
	}
	w, err := NewWinogradConv(New(2, 3, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Apply(New(1, 2, 8, 8), 1); err == nil {
		t.Fatal("channel mismatch accepted")
	}
	if _, err := w.Apply(New(4), 1); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, err := w.Apply(New(1, 3, 1, 1), 0); err == nil {
		t.Fatal("empty output accepted")
	}
}

func TestWinogradReusableAcrossCalls(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	k := randTensor(r, 2, 2, 3, 3)
	w, err := NewWinogradConv(k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		in := randTensor(r, 1, 2, 6, 6)
		direct, err := Conv2D(in, k, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := w.Apply(in, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !direct.AllClose(fast, 1e-3) {
			t.Fatalf("call %d differs", i)
		}
	}
}

func BenchmarkConvDirectVsWinograd(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	in := randTensor(r, 1, 16, 32, 32)
	k := randTensor(r, 16, 16, 3, 3)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Conv2D(in, k, 1, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	w, err := NewWinogradConv(k)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("winograd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := w.Apply(in, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
