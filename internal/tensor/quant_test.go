package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// randQ fills a QTensor with deterministic pseudo-random int8 values.
func randQ(r *rand.Rand, shape ...int) *QTensor {
	q := NewQ(shape...)
	for i := range q.data {
		q.data[i] = int8(r.Intn(256) - 128)
	}
	return q
}

// qMatMulOracle is the trivially-correct int32 reference the packed
// GEMM must match exactly.
func qMatMulOracle(a, b *QTensor) []int32 {
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	acc := make([]int32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for p := 0; p < k; p++ {
				s += int32(a.data[i*k+p]) * int32(b.data[p*n+j])
			}
			acc[i*n+j] = s
		}
	}
	return acc
}

func TestQMatMulMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {5, 7, 9}, {8, 8, 8}, {16, 16, 16},
		{7, 13, 5}, {128, 128, 128}, {33, 100, 17}, {1, 784, 32},
		{64, 27, 16}, {3, 255, 4}, {12, 129, 31},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randQ(r, m, k)
		b := randQ(r, k, n)
		PackLHS(a)
		PackRHS(b)
		acc := make([]int32, m*n)
		QMatMulInto(acc, a, b)
		want := qMatMulOracle(a, b)
		for i := range want {
			if acc[i] != want[i] {
				t.Fatalf("shape %v: acc[%d] = %d, want %d", sh, i, acc[i], want[i])
			}
		}
	}
}

// TestQMatMulExtremes drives the SWAR accumulation at the corners of
// the int8 range and a model-zoo-deep reduction, where lane carries
// and the signed correction would first go wrong.
func TestQMatMulExtremes(t *testing.T) {
	const m, k, n = 2, 4608, 8
	for _, tc := range []struct {
		name string
		av   int8
		bv   int8
	}{
		{"minxmax", -128, 127},
		{"maxxmax", 127, 127},
		{"minxmin", -128, -128},
	} {
		a := NewQ(m, k)
		b := NewQ(k, n)
		for i := range a.data {
			a.data[i] = tc.av
		}
		for i := range b.data {
			b.data[i] = tc.bv
		}
		PackLHS(a)
		PackRHS(b)
		acc := make([]int32, m*n)
		QMatMulInto(acc, a, b)
		want := int32(k) * int32(tc.av) * int32(tc.bv)
		for i, got := range acc {
			if got != want {
				t.Fatalf("%s: acc[%d] = %d, want %d", tc.name, i, got, want)
			}
		}
	}
}

func TestQMatMulRejectsDeepReductions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QMatMulInto beyond MaxQMatMulK did not panic")
		}
	}()
	QMatMulInto(make([]int32, 1), NewQ(1, MaxQMatMulK+2), NewQ(MaxQMatMulK+2, 1))
}

// qConvOracle computes a quantized convolution the slow way: walk every
// receptive-field tap, substituting the zero point outside the image.
// Weights use the transposed [c·kh·kw, oc] layout of
// QuantizeConvWeights; output is patch-major like QConv2DInto's.
func qConvOracle(in, w *QTensor, kh, kw, stride, pad int) []int32 {
	n, c, h, wd := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	kt, oc := w.shape[0], w.shape[1]
	oh := (h+2*pad-kh)/stride + 1
	ow := (wd+2*pad-kw)/stride + 1
	zp := in.zps[0]
	acc := make([]int32, n*oh*ow*oc)
	for img := 0; img < n; img++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				patch := oy*ow + ox
				for j := 0; j < oc; j++ {
					var s int32
					for ch := 0; ch < c; ch++ {
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								iy := oy*stride - pad + ky
								ix := ox*stride - pad + kx
								v := zp
								if iy >= 0 && iy < h && ix >= 0 && ix < wd {
									v = int32(in.data[((img*c+ch)*h+iy)*wd+ix])
								}
								p := (ch*kh+ky)*kw + kx
								s += v * int32(w.data[p*oc+j])
							}
						}
					}
					acc[(img*oh*ow+patch)*oc+j] = s
				}
			}
		}
	}
	_ = kt
	return acc
}

func TestQConv2DMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cases := []struct {
		n, c, h, w, oc, kh, kw, stride, pad int
	}{
		{1, 1, 5, 5, 1, 3, 3, 1, 1},
		{2, 3, 8, 8, 4, 3, 3, 1, 1},
		{1, 2, 9, 7, 5, 3, 3, 2, 1},
		{2, 4, 6, 6, 3, 1, 1, 1, 0},
		{1, 3, 11, 11, 2, 5, 5, 2, 2},
	}
	for _, tc := range cases {
		in := randQ(r, tc.n, tc.c, tc.h, tc.w)
		in.SetParams(0.05, int32(r.Intn(64)-32))
		w := randQ(r, tc.c*tc.kh*tc.kw, tc.oc)
		PackRHS(w)
		oh := (tc.h+2*tc.pad-tc.kh)/tc.stride + 1
		ow := (tc.w+2*tc.pad-tc.kw)/tc.stride + 1
		patches := oh * ow
		kt := tc.c * tc.kh * tc.kw
		lhs := make([]uint64, patches*kwords(kt))
		rsum := make([]int32, patches)
		acc := make([]int32, tc.n*patches*tc.oc)
		QConv2DInto(acc, in, w, tc.kh, tc.kw, tc.stride, tc.pad, lhs, rsum)
		want := qConvOracle(in, w, tc.kh, tc.kw, tc.stride, tc.pad)
		for i := range want {
			if acc[i] != want[i] {
				t.Fatalf("case %+v: acc[%d] = %d, want %d", tc, i, acc[i], want[i])
			}
		}
	}
}

// TestQuantRoundTrip pins the quantize→dequantize error bound: any
// value inside the calibrated range reconstructs within scale/2.
func TestQuantRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ranges := [][2]float32{{-1, 1}, {0, 5}, {-3, 0.5}, {2, 7}, {-0.01, 0.02}}
	for _, rg := range ranges {
		lo, hi := rg[0], rg[1]
		scale, zp := AffineParams(lo, hi)
		src := make([]float32, 256)
		for i := range src {
			src[i] = lo + r.Float32()*(hi-lo)
		}
		q := NewQ(len(src))
		QuantizeInto(q, src, scale, zp)
		back := make([]float32, len(src))
		DequantizeInto(back, q)
		tol := scale/2 + scale*1e-3
		for i, v := range src {
			if diff := float64(v - back[i]); math.Abs(diff) > float64(tol) {
				t.Fatalf("range %v: round-trip error %g at %g exceeds scale/2 = %g", rg, diff, v, scale/2)
			}
		}
	}
}

// TestQuantZeroIsExact checks the padding invariant: the real value 0
// quantizes to the zero point and dequantizes to exactly 0, for ranges
// that include, exclude, or touch zero.
func TestQuantZeroIsExact(t *testing.T) {
	for _, rg := range [][2]float32{{-1, 1}, {0.5, 3}, {-4, -0.25}, {0, 2}} {
		scale, zp := AffineParams(rg[0], rg[1])
		src := []float32{0}
		q := NewQ(1)
		QuantizeInto(q, src, scale, zp)
		if got := q.Data()[0]; int32(got) != zp {
			t.Fatalf("range %v: quantized 0 = %d, want zero point %d", rg, got, zp)
		}
		back := make([]float32, 1)
		DequantizeInto(back, q)
		if back[0] != 0 {
			t.Fatalf("range %v: dequantized zero point = %g, want exactly 0", rg, back[0])
		}
	}
}

// TestQuantSaturation pins behaviour at and beyond the int8 extremes:
// out-of-range values clamp to -128/127 and reconstruct to the range
// edges rather than wrapping.
func TestQuantSaturation(t *testing.T) {
	scale, zp := AffineParams(-1, 1)
	src := []float32{-100, 100, float32(math.Inf(-1)), float32(math.Inf(1)), -1, 1}
	q := NewQ(len(src))
	QuantizeInto(q, src, scale, zp)
	d := q.Data()
	for i, want := range []int8{-128, 127, -128, 127} {
		if d[i] != want {
			t.Fatalf("saturating %g: got %d, want %d", src[i], d[i], want)
		}
	}
	back := make([]float32, len(src))
	DequantizeInto(back, q)
	lo := float32(int32(-128)-zp) * scale
	hi := float32(int32(127)-zp) * scale
	if back[0] != lo || back[1] != hi {
		t.Fatalf("saturated round-trip = (%g, %g), want range edges (%g, %g)", back[0], back[1], lo, hi)
	}
	// In-range endpoints stay within the usual bound.
	if math.Abs(float64(back[4]+1)) > float64(scale) || math.Abs(float64(back[5]-1)) > float64(scale) {
		t.Fatalf("endpoints round-tripped to (%g, %g)", back[4], back[5])
	}
}

// TestQuantPerChannelVsPerTensor is the satellite property test: on a
// weight matrix whose columns are constant but wildly different in
// magnitude, per-channel scales reconstruct every column almost
// exactly while a single per-tensor scale collapses the small ones.
func TestQuantPerChannelVsPerTensor(t *testing.T) {
	consts := []float32{0.01, -0.1, 1, 10}
	const k = 16
	w := New(k, len(consts))
	for p := 0; p < k; p++ {
		for j, c := range consts {
			w.Data()[p*len(consts)+j] = c
		}
	}
	q := QuantizeDenseWeights(w)
	if q.Axis() != 1 || len(q.Scales()) != len(consts) {
		t.Fatalf("per-channel axis/scales = %d/%d", q.Axis(), len(q.Scales()))
	}
	back := make([]float32, q.Len())
	DequantizeInto(back, q)

	// Per-tensor baseline: one symmetric scale over the whole matrix.
	var maxAbs float32
	for _, v := range w.Data() {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	gs := SymmetricScale(maxAbs)
	qt := NewQ(k, len(consts))
	QuantizeInto(qt, w.Data(), gs, 0)
	backT := make([]float32, qt.Len())
	DequantizeInto(backT, qt)

	for j, c := range consts {
		perChan := math.Abs(float64(back[j] - c))
		perTensor := math.Abs(float64(backT[j] - c))
		if rel := perChan / math.Abs(float64(c)); rel > 1e-5 {
			t.Fatalf("per-channel column %d (const %g): relative error %g", j, c, rel)
		}
		if perChan > perTensor+1e-12 {
			t.Fatalf("column %d: per-channel error %g worse than per-tensor %g", j, perChan, perTensor)
		}
	}
	// The smallest-magnitude column must actually be collapsed by the
	// shared scale (it rounds to zero), or the property is vacuous.
	if backT[0] != 0 {
		t.Fatalf("per-tensor small column survived as %g, expected collapse to 0", backT[0])
	}
}

// TestQuantKernelsMatchOracleAndDontAllocate is the quantized analogue
// of TestIntoKernelsMatchAndDontAllocate: every hot quantized kernel
// is checked for correctness and steady-state allocation-freedom.
func TestQuantKernelsMatchOracleAndDontAllocate(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	const m, k, n = 6, 50, 10
	src := make([]float32, m*k)
	for i := range src {
		src[i] = float32(r.NormFloat64())
	}
	scale, zp := AffineParams(-3, 3)

	a := NewQ(m, k)
	PackLHS(a) // size the packed buffers
	assertZeroAllocs(t, "QuantizeLHSInto", func() { QuantizeLHSInto(a, src, scale, zp) })

	// The fused quantize+pack must agree with quantize-then-pack.
	a2 := NewQ(m, k)
	QuantizeInto(a2, src, scale, zp)
	PackLHS(a2)
	for i := range a.data {
		if a.data[i] != a2.data[i] {
			t.Fatalf("fused quantize data[%d] = %d, want %d", i, a.data[i], a2.data[i])
		}
	}
	for i := range a.lhs {
		if a.lhs[i] != a2.lhs[i] || a.rsum[i/kwords(k)] != a2.rsum[i/kwords(k)] {
			t.Fatal("fused quantize packed form differs from PackLHS")
		}
	}

	b := randQ(r, k, n)
	PackRHS(b)
	acc := make([]int32, m*n)
	assertZeroAllocs(t, "QMatMulInto", func() { QMatMulInto(acc, a, b) })
	want := qMatMulOracle(a, b)
	for i := range want {
		if acc[i] != want[i] {
			t.Fatalf("QMatMulInto acc[%d] = %d, want %d", i, acc[i], want[i])
		}
	}

	bias := make([]int32, n)
	for j := range bias {
		bias[j] = int32(r.Intn(2000) - 1000)
	}
	assertZeroAllocs(t, "QAddBiasInto", func() {
		copy(acc, want)
		QAddBiasInto(acc, bias, m, n)
	})
	for i := range acc {
		if acc[i] != want[i]+bias[i%n] {
			t.Fatalf("QAddBiasInto acc[%d] = %d", i, acc[i])
		}
	}

	mult := make([]float32, n)
	for j := range mult {
		mult[j] = 0.001 * float32(j+1)
	}
	out := make([]float32, m*n)
	assertZeroAllocs(t, "DequantizeAccInto", func() { DequantizeAccInto(out, acc, mult, m, n) })
	for i := range out {
		if out[i] != float32(acc[i])*mult[i%n] {
			t.Fatalf("DequantizeAccInto out[%d] = %g", i, out[i])
		}
	}

	outT := make([]float32, m*n)
	assertZeroAllocs(t, "DequantizeAccTInto", func() { DequantizeAccTInto(outT, acc, mult, 1, m, n) })
	for p := 0; p < m; p++ {
		for c := 0; c < n; c++ {
			if outT[c*m+p] != float32(acc[p*n+c])*mult[c] {
				t.Fatalf("DequantizeAccTInto [%d,%d] = %g", c, p, outT[c*m+p])
			}
		}
	}

	rq := NewQ(m, n)
	assertZeroAllocs(t, "RequantizeInto", func() { RequantizeInto(rq, acc, mult, 0.1, 3, m, n) })

	back := make([]float32, m*k)
	assertZeroAllocs(t, "DequantizeInto", func() { DequantizeInto(back, a) })

	// Quantized convolution with caller scratch.
	in := randQ(r, 2, 3, 8, 8)
	in.SetParams(0.04, 7)
	cw := randQ(r, 3*3*3, 4)
	PackRHS(cw)
	const patches = 8 * 8
	lhs := make([]uint64, patches*kwords(27))
	rsum := make([]int32, patches)
	cacc := make([]int32, 2*patches*4)
	assertZeroAllocs(t, "QConv2DInto", func() { QConv2DInto(cacc, in, cw, 3, 3, 1, 1, lhs, rsum) })
	cwant := qConvOracle(in, cw, 3, 3, 1, 1)
	for i := range cwant {
		if cacc[i] != cwant[i] {
			t.Fatalf("QConv2DInto acc[%d] = %d, want %d", i, cacc[i], cwant[i])
		}
	}
}

// TestQuantArena checks the quantized free lists: explicit recycle
// returns the same buffers, packed capacities survive reuse, and the
// steady state allocates nothing.
func TestQuantArena(t *testing.T) {
	var a Arena
	q := a.GetQ(4, 6)
	if q.Rank() != 2 || q.Len() != 24 {
		t.Fatalf("GetQ shape = %v", q.Shape())
	}
	if len(q.lhs) < 4*kwords(6) || len(q.rsum) < 4 {
		t.Fatalf("GetQ rank-2 missing packed buffers: lhs %d rsum %d", len(q.lhs), len(q.rsum))
	}
	a.RecycleQ(q)
	if got := a.GetQ(4, 6); got != q {
		t.Fatal("RecycleQ did not return the tensor to the free list")
	}
	a.RecycleQ(q)
	// Same class, different shape: buffer reused, shape rewritten.
	q2 := a.GetQ(5, 5)
	if q2 != q || q2.Dim(0) != 5 || q2.Len() != 25 {
		t.Fatalf("class reuse: got %p shape %v (want %p)", q2, q2.Shape(), q)
	}
	a.RecycleQ(q2)

	acc := a.GetAcc(100)
	if len(acc) != 100 {
		t.Fatalf("GetAcc len = %d", len(acc))
	}
	a.RecycleAcc(acc)
	if got := a.GetAcc(70); &got[0] != &acc[0] {
		t.Fatal("RecycleAcc did not recycle the buffer")
	}

	u := a.GetU64(33)
	if len(u) != 33 {
		t.Fatalf("GetU64 len = %d", len(u))
	}
	a.RecycleU64(u)
	if got := a.GetU64(40); &got[0] != &u[0] {
		t.Fatal("RecycleU64 did not recycle the buffer")
	}

	hBefore, _ := a.Stats()
	assertZeroAllocs(t, "quantized arena cycle", func() {
		qq := a.GetQ(4, 6)
		ac := a.GetAcc(64)
		uu := a.GetU64(16)
		a.RecycleU64(uu)
		a.RecycleAcc(ac)
		a.RecycleQ(qq)
	})
	hAfter, _ := a.Stats()
	if hAfter <= hBefore {
		t.Fatalf("quantized cycle recorded no arena hits (%d -> %d)", hBefore, hAfter)
	}

	// Foreign buffers are dropped, not pooled.
	a.RecycleAcc(make([]int32, 100)[:70])
	a.RecycleU64(make([]uint64, 33))
	a.RecycleQ(nil)
}

func TestAffineParamsDegenerate(t *testing.T) {
	if s, zp := AffineParams(0, 0); s != 1 || zp != 0 {
		t.Fatalf("degenerate range: scale %g zp %d", s, zp)
	}
	if s := SymmetricScale(0); s != 1 {
		t.Fatalf("all-zero channel scale = %g", s)
	}
	// Inverted single-point range still includes zero after widening.
	s, zp := AffineParams(2, 2)
	if s <= 0 {
		t.Fatalf("positive point range: scale %g zp %d", s, zp)
	}
}

// BenchmarkQMatMul is the acceptance benchmark: the packed int8 GEMM
// at BenchmarkMatMulBlocked128's 128x128x128 shape (operands packed
// once, as plans do for weights). bench.sh books the throughput ratio
// as int8_speedup_ratio.
func BenchmarkQMatMul(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randQ(r, 128, 128)
	w := randQ(r, 128, 128)
	PackLHS(a)
	PackRHS(w)
	acc := make([]int32, 128*128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QMatMulInto(acc, a, w)
	}
}
