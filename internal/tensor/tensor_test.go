package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Len() != 6 {
		t.Fatalf("Len = %d, want 6", x.Len())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if x.Rank() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("shape = %v, want [2 3]", x.Shape())
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromSlice(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5, 6}
	x, err := FromSlice(data, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if x.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", x.At(1, 2))
	}
	if _, err := FromSlice(data, 2, 2); err == nil {
		t.Fatal("FromSlice with wrong shape did not error")
	}
	if _, err := FromSlice(data, -2, -3); err == nil {
		t.Fatal("FromSlice with negative shape did not error")
	}
}

func TestAtSet(t *testing.T) {
	x := New(2, 2, 2)
	x.Set(7, 1, 0, 1)
	if got := x.At(1, 0, 1); got != 7 {
		t.Fatalf("At = %v, want 7", got)
	}
	// Row-major: index [1,0,1] = 1*4 + 0*2 + 1 = 5.
	if x.Data()[5] != 7 {
		t.Fatalf("backing slice element 5 = %v, want 7", x.Data()[5])
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	x.At(2, 0)
}

func TestReshape(t *testing.T) {
	x := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y, err := x.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(2, 1) != 6 {
		t.Fatalf("reshaped At(2,1) = %v, want 6", y.At(2, 1))
	}
	// Shared storage.
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("reshape did not share storage")
	}
	if _, err := x.Reshape(4, 2); err == nil {
		t.Fatal("invalid reshape did not error")
	}
}

func TestReshapeInferred(t *testing.T) {
	x := New(4, 6)
	y, err := x.Reshape(2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(1) != 12 {
		t.Fatalf("inferred dim = %d, want 12", y.Dim(1))
	}
	if _, err := x.Reshape(-1, -1); err == nil {
		t.Fatal("double inference did not error")
	}
	if _, err := x.Reshape(-1, 5); err == nil {
		t.Fatal("non-divisible inference did not error")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := MustFromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone shares storage")
	}
	if !x.SameShape(y) {
		t.Fatal("Clone changed shape")
	}
}

func TestArgMax(t *testing.T) {
	x := MustFromSlice([]float32{0.1, 0.9, 0.3}, 3)
	if got := x.ArgMax(); got != 1 {
		t.Fatalf("ArgMax = %d, want 1", got)
	}
	empty := New(0)
	if got := empty.ArgMax(); got != -1 {
		t.Fatalf("ArgMax(empty) = %d, want -1", got)
	}
	ties := MustFromSlice([]float32{2, 2}, 2)
	if got := ties.ArgMax(); got != 0 {
		t.Fatalf("ArgMax(ties) = %d, want 0", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromSlice([]float32{19, 22, 43, 50}, 2, 2)
	if !c.AllClose(want, 1e-6) {
		t.Fatalf("MatMul = %v, want %v", c.Data(), want.Data())
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a := New(2, 3)
	b := New(4, 2)
	if _, err := MatMul(a, b); err == nil {
		t.Fatal("mismatched MatMul did not error")
	}
	if _, err := MatMul(New(2), b); err == nil {
		t.Fatal("rank-1 MatMul did not error")
	}
	if _, err := MatMulNaive(a, b); err == nil {
		t.Fatal("mismatched MatMulNaive did not error")
	}
	if _, err := MatMulParallel(a, b, 2); err == nil {
		t.Fatal("mismatched MatMulParallel did not error")
	}
	if _, err := MatMulParallel(New(3), b, 2); err == nil {
		t.Fatal("rank-1 MatMulParallel did not error")
	}
}

// randTensor builds a deterministic pseudo-random tensor for differential
// tests.
func randTensor(r *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data() {
		t.Data()[i] = float32(r.NormFloat64())
	}
	return t
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(mi, ki, ni uint8) bool {
		m, k, n := int(mi)%17+1, int(ki)%90+1, int(ni)%17+1
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		fast, err := MatMul(a, b)
		if err != nil {
			return false
		}
		slow, err := MatMulNaive(a, b)
		if err != nil {
			return false
		}
		return fast.AllClose(slow, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulParallelMatchesSequentialProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(mi, ki, ni, wi uint8) bool {
		m, k, n := int(mi)%33+1, int(ki)%65+1, int(ni)%33+1
		workers := int(wi)%8 + 1
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		seq, err := MatMul(a, b)
		if err != nil {
			return false
		}
		par, err := MatMulParallel(a, b, workers)
		if err != nil {
			return false
		}
		return seq.AllClose(par, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAddBias(t *testing.T) {
	x := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float32{10, 20}, 2)
	if _, err := AddBias(x, b); err != nil {
		t.Fatal(err)
	}
	want := MustFromSlice([]float32{11, 22, 13, 24}, 2, 2)
	if !x.AllClose(want, 0) {
		t.Fatalf("AddBias = %v, want %v", x.Data(), want.Data())
	}
	if _, err := AddBias(x, New(3)); err == nil {
		t.Fatal("mismatched AddBias did not error")
	}
}

func TestAddAndAddInPlace(t *testing.T) {
	a := MustFromSlice([]float32{1, 2}, 2)
	b := MustFromSlice([]float32{3, 4}, 2)
	c, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.At(1) != 6 || a.At(1) != 2 {
		t.Fatal("Add wrong result or mutated operand")
	}
	if _, err := AddInPlace(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0) != 4 {
		t.Fatalf("AddInPlace = %v, want 4", a.At(0))
	}
	if _, err := Add(a, New(3)); err == nil {
		t.Fatal("mismatched Add did not error")
	}
	if _, err := AddInPlace(a, New(3)); err == nil {
		t.Fatal("mismatched AddInPlace did not error")
	}
}

func TestReLU(t *testing.T) {
	x := MustFromSlice([]float32{-1, 0, 2}, 3)
	ReLU(x)
	want := MustFromSlice([]float32{0, 0, 2}, 3)
	if !x.AllClose(want, 0) {
		t.Fatalf("ReLU = %v", x.Data())
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := randTensor(r, 4, 10)
	if _, err := Softmax(x); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		var s float64
		for j := 0; j < 10; j++ {
			v := x.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax value out of [0,1]: %v", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-4 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
	// Rank 1 is a single row since the last-dim generalisation.
	one := MustFromSlice([]float32{1, 2, 3}, 3)
	if _, err := Softmax(one); err != nil {
		t.Fatal(err)
	}
	var s1 float64
	for _, v := range one.Data() {
		s1 += float64(v)
	}
	if math.Abs(s1-1) > 1e-4 {
		t.Fatalf("rank-1 softmax sums to %v", s1)
	}
	if _, err := Softmax(New()); err == nil {
		t.Fatal("rank-0 Softmax did not error")
	}
}

func TestSoftmaxStability(t *testing.T) {
	// Large logits must not overflow to NaN.
	x := MustFromSlice([]float32{1000, 1001, 1002}, 1, 3)
	if _, err := Softmax(x); err != nil {
		t.Fatal(err)
	}
	for _, v := range x.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax produced %v", v)
		}
	}
	if x.ArgMax() != 2 {
		t.Fatalf("softmax argmax = %d, want 2", x.ArgMax())
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1x1 identity kernel must reproduce the input.
	in := MustFromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	k := MustFromSlice([]float32{1}, 1, 1, 1, 1)
	out, err := Conv2D(in, k, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllClose(in, 1e-6) {
		t.Fatalf("identity conv = %v", out.Data())
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 3x3 input, 2x2 sum kernel, stride 1, no pad.
	in := MustFromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	k := MustFromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	out, err := Conv2D(in, k, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromSlice([]float32{12, 16, 24, 28}, 1, 1, 2, 2)
	if !out.AllClose(want, 1e-5) {
		t.Fatalf("conv = %v, want %v", out.Data(), want.Data())
	}
}

func TestConv2DPaddingAndStride(t *testing.T) {
	in := New(1, 1, 4, 4)
	in.Fill(1)
	k := MustFromSlice([]float32{1, 1, 1, 1, 1, 1, 1, 1, 1}, 1, 1, 3, 3)
	out, err := Conv2D(in, k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(2) != 2 || out.Dim(3) != 2 {
		t.Fatalf("output shape = %v, want spatial 2x2", out.Shape())
	}
	// Top-left window covers 2x2 ones (pad zeros elsewhere): sum 4.
	if out.At(0, 0, 0, 0) != 4 {
		t.Fatalf("corner = %v, want 4", out.At(0, 0, 0, 0))
	}
}

func TestConv2DErrors(t *testing.T) {
	in := New(1, 2, 4, 4)
	k := New(1, 3, 3, 3)
	if _, err := Conv2D(in, k, 1, 0); err == nil {
		t.Fatal("channel mismatch did not error")
	}
	if _, err := Conv2D(in, New(1, 2, 3, 3), 0, 0); err == nil {
		t.Fatal("zero stride did not error")
	}
	if _, err := Conv2D(in, New(1, 2, 9, 9), 1, 0); err == nil {
		t.Fatal("oversized kernel did not error")
	}
	if _, err := Conv2D(New(3), k, 1, 0); err == nil {
		t.Fatal("rank mismatch did not error")
	}
}

func TestConv2DReferenceMatchesBlocked(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := func(hRaw, icRaw, ocRaw, strideRaw, padRaw uint8) bool {
		h := int(hRaw)%10 + 4
		ic := int(icRaw)%3 + 1
		oc := int(ocRaw)%4 + 1
		stride := int(strideRaw)%2 + 1
		pad := int(padRaw) % 2
		in := randTensor(r, 1, ic, h, h)
		k := randTensor(r, oc, ic, 3, 3)
		a, err := Conv2D(in, k, stride, pad)
		if err != nil {
			return true // degenerate geometry; both reject
		}
		b, err := Conv2DReference(in, k, stride, pad)
		if err != nil {
			return false
		}
		return a.AllClose(b, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConv2DParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	in := randTensor(r, 2, 3, 9, 9)
	k := randTensor(r, 4, 3, 3, 3)
	seq, err := Conv2D(in, k, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Conv2DParallel(in, k, 1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.AllClose(par, 1e-3) {
		t.Fatal("parallel conv differs from sequential")
	}
}

func TestBatchNorm(t *testing.T) {
	in := MustFromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	gamma := MustFromSlice([]float32{2}, 1)
	beta := MustFromSlice([]float32{1}, 1)
	mean := MustFromSlice([]float32{2.5}, 1)
	variance := MustFromSlice([]float32{1}, 1)
	if _, err := BatchNorm(in, gamma, beta, mean, variance, 0); err != nil {
		t.Fatal(err)
	}
	want := MustFromSlice([]float32{-2, 0, 2, 4}, 1, 1, 2, 2)
	if !in.AllClose(want, 1e-4) {
		t.Fatalf("BatchNorm = %v, want %v", in.Data(), want.Data())
	}
	if _, err := BatchNorm(New(2), gamma, beta, mean, variance, 0); err == nil {
		t.Fatal("rank mismatch did not error")
	}
	if _, err := BatchNorm(New(1, 2, 2, 2), gamma, beta, mean, variance, 0); err == nil {
		t.Fatal("channel mismatch did not error")
	}
}

func TestAddChannelBias(t *testing.T) {
	in := New(1, 2, 1, 2)
	b := MustFromSlice([]float32{1, 10}, 2)
	if _, err := AddChannelBias(in, b); err != nil {
		t.Fatal(err)
	}
	want := MustFromSlice([]float32{1, 1, 10, 10}, 1, 2, 1, 2)
	if !in.AllClose(want, 0) {
		t.Fatalf("AddChannelBias = %v", in.Data())
	}
	if _, err := AddChannelBias(in, New(3)); err == nil {
		t.Fatal("mismatch did not error")
	}
}

func TestMaxPool2D(t *testing.T) {
	in := MustFromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out, err := MaxPool2D(in, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromSlice([]float32{6, 8, 14, 16}, 1, 1, 2, 2)
	if !out.AllClose(want, 0) {
		t.Fatalf("MaxPool = %v, want %v", out.Data(), want.Data())
	}
	if _, err := MaxPool2D(New(2), 2, 2, 0); err == nil {
		t.Fatal("rank mismatch did not error")
	}
	if _, err := MaxPool2D(in, 9, 1, 0); err == nil {
		t.Fatal("oversized pool did not error")
	}
}

func TestGlobalAvgPool2D(t *testing.T) {
	in := MustFromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	out, err := GlobalAvgPool2D(in)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromSlice([]float32{2.5, 25}, 1, 2)
	if !out.AllClose(want, 1e-5) {
		t.Fatalf("GlobalAvgPool = %v, want %v", out.Data(), want.Data())
	}
	if _, err := GlobalAvgPool2D(New(2)); err == nil {
		t.Fatal("rank mismatch did not error")
	}
	if _, err := GlobalAvgPool2D(New(1, 1, 0, 0)); err == nil {
		t.Fatal("empty spatial dims did not error")
	}
}

func TestSumAndFill(t *testing.T) {
	x := New(3)
	x.Fill(2)
	if x.Sum() != 6 {
		t.Fatalf("Sum = %v, want 6", x.Sum())
	}
}

func TestAllCloseShapeMismatch(t *testing.T) {
	if New(2).AllClose(New(3), 1) {
		t.Fatal("AllClose accepted different shapes")
	}
	if New(2).AllClose(New(1, 2), 1) {
		t.Fatal("AllClose accepted different ranks")
	}
}

func TestString(t *testing.T) {
	if got := New(2, 3).String(); got != "Tensor[2 3]" {
		t.Fatalf("String = %q", got)
	}
}

func TestMatMulIntoPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMulInto mismatch did not panic")
		}
	}()
	MatMulInto(New(2, 2), New(2, 3), New(4, 2))
}

func BenchmarkMatMulBlocked128(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randTensor(r, 128, 128)
	x := randTensor(r, 128, 128)
	c := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(c, a, x)
	}
}

func BenchmarkMatMulNaive128(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randTensor(r, 128, 128)
	x := randTensor(r, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMulNaive(a, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConv2D(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	in := randTensor(r, 1, 8, 28, 28)
	k := randTensor(r, 16, 8, 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Conv2D(in, k, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConv2DInto measures the hot path Plans actually run:
// preallocated destination and im2col scratch, zero steady-state
// allocations (BenchmarkConv2D above keeps the allocating wrapper as
// the baseline).
func BenchmarkConv2DInto(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	in := randTensor(r, 1, 8, 28, 28)
	k := randTensor(r, 16, 8, 3, 3)
	oh, ow := Conv2DOutDims(in, k, 1, 1)
	dst := New(1, 16, oh, ow)
	col := make([]float32, Conv2DScratchLen(in, k, 1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DInto(dst, in, k, 1, 1, col)
	}
}
