//go:build race

package tensor

// raceEnabled reports whether the race detector is active; exact-zero
// allocation assertions are skipped under -race because the runtime's
// shadow memory allocates.
const raceEnabled = true
