// Package tensor implements a dense float32 tensor and the numeric kernels
// used by the model substrate: blocked matrix multiplication, im2col
// convolution, activations, pooling and normalisation.
//
// The package is the computational foundation of every serving runtime in
// this repository. Kernels come in a sequential flavour and, where it
// matters, a data-parallel flavour used by the simulated GPU device.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float32 tensor. The zero value is an empty
// scalar-less tensor; use New or FromSlice to construct usable values.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied). It returns an error if the element count does not
// match the shape.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("tensor: negative dimension %d in shape %v", d, shape)
		}
		n *= d
	}
	if len(data) != n {
		return nil, fmt.Errorf("tensor: %d elements cannot fill shape %v (%d)", len(data), shape, n)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}, nil
}

// MustFromSlice is FromSlice but panics on error. Intended for tests and
// literals with statically-known shapes.
func MustFromSlice(data []float32, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns the tensor's dimensions. The caller must not modify it.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the backing slice in row-major order. The caller may read
// and write elements but must not re-slice beyond its length.
func (t *Tensor) Data() []float32 { return t.data }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float32, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of the tensor with a new shape sharing the same
// backing data. It returns an error if the element counts differ. One
// dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	infer := -1
	n := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer != -1 {
				return nil, fmt.Errorf("tensor: multiple inferred dimensions in %v", shape)
			}
			infer = i
		case d < 0:
			return nil, fmt.Errorf("tensor: negative dimension %d in shape %v", d, shape)
		default:
			n *= d
		}
	}
	out := append([]int(nil), shape...)
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			return nil, fmt.Errorf("tensor: cannot infer dimension for %v from %d elements", shape, len(t.data))
		}
		out[infer] = len(t.data) / n
		n *= out[infer]
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("tensor: reshape %v -> %v element mismatch", t.shape, shape)
	}
	return &Tensor{shape: out, data: t.data}, nil
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// ArgMax returns the index of the largest element, or -1 for an empty
// tensor. Ties resolve to the lowest index.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		return -1
	}
	best, bi := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Sum returns the sum of all elements in float64 precision.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// AllClose reports whether every element of t is within tol of the
// corresponding element of o and the shapes match.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if math.Abs(float64(t.data[i])-float64(o.data[i])) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}
