package tensor

import (
	"fmt"
	"math"
	"sync"
)

// Fused transformer kernels (docs/PERFORMANCE.md "Fused transformer
// kernels"): flash-style tiled attention that never materialises the
// S×S score matrix, a one-pass residual-add + layer norm, and the tanh
// GELU. Each fused kernel has an unfused reference twin — materialised
// scores with a textbook P×V product, a multi-pass layer norm, the erf
// GELU — mirroring how Conv2DReference models the paper's deliberately
// unoptimised CPU device while accelerator devices get the fast
// library.
//
// Attention input layout: activations arrive as [n, S, 3D] where every
// token row packs the query, key, and value projections back to back
// (q|k|v), the layout the preceding fused QKV dense layer produces.
// Head h of dh = D/heads lanes reads the contiguous dh-wide slices at
// offsets h*dh, D + h*dh, and 2D + h*dh of each row.

// attnKeyTile is the key-tile edge of the fused attention kernel:
// scores are computed attnKeyTile keys at a time into a per-lane
// scratch strip, folded into the online softmax, and discarded — the
// full S×S matrix never exists.
const attnKeyTile = 64

// attnQBlock is the query-block edge: the fused kernel walks up to
// attnQBlock query rows of one (point, head) through each key tile
// together, so every key and value line loaded from the packed
// activation is reused attnQBlock times. Per-row online-softmax state
// stays independent, so results are bit-identical at any block
// grouping — including the ragged blocks at worker-split boundaries.
const attnQBlock = 4

// attnCheck validates a packed [n, S, 3D] attention input against a
// head count and returns the geometry.
func attnCheck(src *Tensor, heads int) (n, s, d int, err error) {
	if src.Rank() != 3 {
		return 0, 0, 0, fmt.Errorf("tensor: Attention requires rank-3 [n, seq, 3*dim] input, got %v", src.shape)
	}
	n, s = src.shape[0], src.shape[1]
	w := src.shape[2]
	if w == 0 || w%3 != 0 {
		return 0, 0, 0, fmt.Errorf("tensor: Attention input width %d not divisible by 3 (rows pack q|k|v)", w)
	}
	d = w / 3
	if heads <= 0 || d%heads != 0 {
		return 0, 0, 0, fmt.Errorf("tensor: Attention with %d heads over model dim %d", heads, d)
	}
	return n, s, d, nil
}

// AttentionScratchLen returns the scratch length (in float32s) the
// fused attention kernels need for model dim d, the given head count,
// and up to workers concurrent lanes: each lane owns attnQBlock
// dh-float accumulators plus attnQBlock attnKeyTile-float score
// strips. Execution plans size their arena scratch with it at compile
// time.
func AttentionScratchLen(d, heads, workers int) int {
	if workers < 1 {
		workers = 1
	}
	return workers * attnQBlock * (d/heads + attnKeyTile)
}

// AttentionReferenceScratchLen returns the scratch length the unfused
// reference kernel needs for sequence length s: the full S×S score
// matrix of one (point, head) pair.
func AttentionReferenceScratchLen(s int) int { return s * s }

// Attention computes multi-head scaled dot-product self-attention over
// a packed [n, S, 3D] q|k|v input into a new [n, S, D] tensor, using
// the fused tiled kernel.
func Attention(src *Tensor, heads int) (*Tensor, error) {
	n, s, d, err := attnCheck(src, heads)
	if err != nil {
		return nil, err
	}
	dst := New(n, s, d)
	scratch := make([]float32, AttentionScratchLen(d, heads, 1))
	AttentionInto(dst, src, heads, scratch)
	return dst, nil
}

// AttentionReference is Attention with the unfused reference kernel:
// the S×S score matrix of each (point, head) is materialised in full,
// row-softmaxed, then multiplied against V with a textbook
// stride-hostile loop. It is the CPU-device kernel, matching the
// paper's one-thread unoptimised CPU inference setting.
func AttentionReference(src *Tensor, heads int) (*Tensor, error) {
	n, s, d, err := attnCheck(src, heads)
	if err != nil {
		return nil, err
	}
	dst := New(n, s, d)
	scratch := make([]float32, AttentionReferenceScratchLen(s))
	AttentionReferenceInto(dst, src, heads, scratch)
	return dst, nil
}

// AttentionInto computes fused multi-head self-attention into dst,
// which must already have shape [n, S, D] for a [n, S, 3D] src. The
// caller provides scratch of at least AttentionScratchLen(d, heads, 1)
// floats. It allocates nothing and panics on shape or scratch mismatch
// (plan-compile-validated hot kernel).
func AttentionInto(dst, src *Tensor, heads int, scratch []float32) {
	n, s, d := attnMustCheck(dst, src, heads)
	lane := attnQBlock * (d/heads + attnKeyTile)
	if len(scratch) < lane {
		panic(fmt.Sprintf("tensor: AttentionInto scratch %d < %d", len(scratch), lane))
	}
	attentionRows(dst.data, src.data, s, d, heads, 0, n*heads*s, scratch[:lane])
}

// AttentionPoolInto is AttentionInto with the (point, head, query-row)
// lanes fanned out over the resident work pool; chunk 0 runs on the
// calling goroutine and done joins. scratch must hold
// AttentionScratchLen(d, heads, workers) floats — each worker owns a
// disjoint lane strip. Every output row is produced whole by one
// attentionRows call, so results are bit-identical to the sequential
// fused kernel at any worker count.
func AttentionPoolInto(dst, src *Tensor, heads int, scratch []float32, workers int, pool *WorkPool, done *sync.WaitGroup) {
	n, s, d := attnMustCheck(dst, src, heads)
	lane := attnQBlock * (d/heads + attnKeyTile)
	rows := n * heads * s
	if pool != nil && workers > pool.n+1 {
		workers = pool.n + 1
	}
	if workers > rows {
		workers = rows
	}
	if workers < 1 {
		workers = 1
	}
	if len(scratch) < workers*lane {
		panic(fmt.Sprintf("tensor: AttentionPoolInto scratch %d < %d", len(scratch), workers*lane))
	}
	if pool == nil || workers <= 1 || rows < 2 {
		attentionRows(dst.data, src.data, s, d, heads, 0, rows, scratch[:lane])
		return
	}
	base, rem := rows/workers, rows%workers
	head := base
	if rem > 0 {
		head++
	}
	r0 := head
	for w := 1; w < workers; w++ {
		cnt := base
		if w < rem {
			cnt++
		}
		done.Add(1)
		pool.tasks <- mmTask{
			kind: taskAttention, cd: dst.data, ad: src.data,
			i0: r0, i1: r0 + cnt, k: s, n: d, heads: heads,
			scr: scratch[w*lane : (w+1)*lane], done: done,
		}
		r0 += cnt
	}
	attentionRows(dst.data, src.data, s, d, heads, 0, head, scratch[:lane])
	done.Wait()
}

// attnMustCheck is the panicking geometry check shared by the Into
// kernels.
func attnMustCheck(dst, src *Tensor, heads int) (n, s, d int) {
	n, s, d, err := attnCheck(src, heads)
	if err != nil {
		panic(err.Error())
	}
	if dst.Rank() != 3 || dst.shape[0] != n || dst.shape[1] != s || dst.shape[2] != d {
		panic(fmt.Sprintf("tensor: Attention dst shape %v, want [%d %d %d]", dst.shape, n, s, d))
	}
	return n, s, d
}

// attentionRows runs the fused kernel over rows [r0, r1) of the
// flattened (point, head, query-row) space: query rows of one (point,
// head) walk the key stream in blocks of up to attnQBlock, each block
// streaming keys in attnKeyTile-wide tiles while every row maintains
// its own online-softmax state (running max m, running denominator l,
// value accumulator acc), rescaled by exp(mOld-mNew) whenever a tile
// raises that row's max — the classic flash-attention recurrence,
// float32 values with a float64 denominator. Each key and value line
// loaded from the packed activation serves the whole query block. scr
// holds one lane: attnQBlock dh-float accumulators followed by
// attnQBlock attnKeyTile-float score strips.
func attentionRows(dd, sd []float32, s, d, heads, r0, r1 int, scr []float32) {
	dh := d / heads
	w3 := 3 * d
	scale := float32(1 / math.Sqrt(float64(dh)))
	for r := r0; r < r1; {
		p := r / (heads * s)
		rem := r - p*heads*s
		h := rem / s
		i := rem - h*s
		// Block as many consecutive query rows of this (point, head) as
		// remain in the range and the sequence.
		qb := attnQBlock
		if i+qb > s {
			qb = s - i
		}
		if r+qb > r1 {
			qb = r1 - r
		}
		if qb == attnQBlock {
			attentionBlock4(dd, sd, s, d, dh, w3, scale, p, h, i, scr)
		} else {
			for b := 0; b < qb; b++ {
				attentionRow1(dd, sd, s, d, dh, w3, scale, p, h, i+b, scr)
			}
		}
		r += qb
	}
}

// attentionBlock4 walks four query rows of one (point, head) through
// the key stream together: every key line feeds four independent dot
// chains and every value line feeds four FMA streams, so the packed
// activation is read once per block instead of once per row. Per-row
// state (m, l, acc strip, score strip) is scalar-held; each row's
// arithmetic runs in the exact order attentionRow1 uses, so a row
// computes bit-identical output whichever path a worker split lands it
// on.
func attentionBlock4(dd, sd []float32, s, d, dh, w3 int, scale float32, p, h, i int, scr []float32) {
	base := p * s * w3
	o := h * dh
	q0 := sd[base+i*w3+o : base+i*w3+o+dh]
	q1 := sd[base+(i+1)*w3+o : base+(i+1)*w3+o+dh]
	q2 := sd[base+(i+2)*w3+o : base+(i+2)*w3+o+dh]
	q3 := sd[base+(i+3)*w3+o : base+(i+3)*w3+o+dh]
	acc := scr[:4*dh]
	for x := range acc {
		acc[x] = 0
	}
	a0, a1 := acc[:dh], acc[dh:2*dh]
	a2, a3 := acc[2*dh:3*dh], acc[3*dh:4*dh]
	stBase := attnQBlock * dh
	st0 := scr[stBase : stBase+attnKeyTile]
	st1 := scr[stBase+attnKeyTile : stBase+2*attnKeyTile]
	st2 := scr[stBase+2*attnKeyTile : stBase+3*attnKeyTile]
	st3 := scr[stBase+3*attnKeyTile : stBase+4*attnKeyTile]
	ninf := float32(math.Inf(-1))
	m0, m1, m2, m3 := ninf, ninf, ninf, ninf
	var l0, l1, l2, l3 float64
	for j0 := 0; j0 < s; j0 += attnKeyTile {
		j1 := j0 + attnKeyTile
		if j1 > s {
			j1 = s
		}
		// Pass 1: one key load serves four score chains.
		for j := j0; j < j1; j++ {
			ko := base + j*w3 + d + o
			k := sd[ko : ko+dh]
			var s0, s1, s2, s3 float32
			for x, kv := range k {
				s0 += q0[x] * kv
				s1 += q1[x] * kv
				s2 += q2[x] * kv
				s3 += q3[x] * kv
			}
			st0[j-j0] = s0 * scale
			st1[j-j0] = s1 * scale
			st2[j-j0] = s2 * scale
			st3[j-j0] = s3 * scale
		}
		w := j1 - j0
		m0, l0 = rescaleTile(st0[:w], m0, l0, a0)
		m1, l1 = rescaleTile(st1[:w], m1, l1, a1)
		m2, l2 = rescaleTile(st2[:w], m2, l2, a2)
		m3, l3 = rescaleTile(st3[:w], m3, l3, a3)
		// Pass 2: one value load feeds four accumulator streams.
		for j := j0; j < j1; j++ {
			vo := base + j*w3 + 2*d + o
			v := sd[vo : vo+dh]
			e0 := fastExp(st0[j-j0] - m0)
			e1 := fastExp(st1[j-j0] - m1)
			e2 := fastExp(st2[j-j0] - m2)
			e3 := fastExp(st3[j-j0] - m3)
			l0 += float64(e0)
			l1 += float64(e1)
			l2 += float64(e2)
			l3 += float64(e3)
			for x, vv := range v {
				a0[x] += e0 * vv
				a1[x] += e1 * vv
				a2[x] += e2 * vv
				a3[x] += e3 * vv
			}
		}
	}
	writeAttnRow(dd, a0, l0, p, s, d, i, o)
	writeAttnRow(dd, a1, l1, p, s, d, i+1, o)
	writeAttnRow(dd, a2, l2, p, s, d, i+2, o)
	writeAttnRow(dd, a3, l3, p, s, d, i+3, o)
}

// attentionRow1 is the single-row fused kernel, used for the ragged
// blocks at sequence ends and worker-split boundaries. Its per-element
// order matches attentionBlock4 exactly.
func attentionRow1(dd, sd []float32, s, d, dh, w3 int, scale float32, p, h, i int, scr []float32) {
	base := p * s * w3
	o := h * dh
	q := sd[base+i*w3+o : base+i*w3+o+dh]
	acc := scr[:dh]
	for x := range acc {
		acc[x] = 0
	}
	st := scr[attnQBlock*dh : attnQBlock*dh+attnKeyTile]
	m := float32(math.Inf(-1))
	var l float64
	for j0 := 0; j0 < s; j0 += attnKeyTile {
		j1 := j0 + attnKeyTile
		if j1 > s {
			j1 = s
		}
		for j := j0; j < j1; j++ {
			ko := base + j*w3 + d + o
			k := sd[ko : ko+dh]
			var dot float32
			for x, kv := range k {
				dot += q[x] * kv
			}
			st[j-j0] = dot * scale
		}
		m, l = rescaleTile(st[:j1-j0], m, l, acc)
		for j := j0; j < j1; j++ {
			e := fastExp(st[j-j0] - m)
			l += float64(e)
			vo := base + j*w3 + 2*d + o
			axpyUnrolled(acc, sd[vo:vo+dh], e)
		}
	}
	writeAttnRow(dd, acc, l, p, s, d, i, o)
}

// rescaleTile folds one score tile into a row's online-softmax state:
// it takes the tile max and, when the running max rises, rescales the
// accumulator and denominator by exp(mOld-mNew) — from the initial
// -Inf the factor is zero and acc/l are zero. It returns the updated
// max and denominator.
func rescaleTile(st []float32, m float32, l float64, acc []float32) (float32, float64) {
	tm := m
	for _, v := range st {
		if v > tm {
			tm = v
		}
	}
	if tm > m {
		c := fastExp(m - tm)
		for x := range acc {
			acc[x] *= c
		}
		l *= float64(c)
		m = tm
	}
	return m, l
}

// writeAttnRow normalises one row's accumulator by its softmax
// denominator into the [n, S, D] output.
func writeAttnRow(dd, acc []float32, l float64, p, s, d, i, o int) {
	inv := float32(1 / l)
	oo := p*s*d + i*d + o
	out := dd[oo : oo+len(acc)]
	for x, av := range acc {
		out[x] = av * inv
	}
}

// fastExp is the fused kernel's float32 e^x for non-positive arguments
// (online-softmax weights are exp(score-max) with score <= max, and the
// rescale factor is exp(mOld-mNew) with mOld < mNew): Cephes-style
// range reduction x = n*ln2 + r with r in [-ln2/2, ln2/2], a degree-5
// polynomial for e^r, and the 2^n scale reassembled through the float32
// bit layout. Relative error stays under ~2e-7 — three orders inside
// the fused-vs-reference tolerance — at a fraction of math.Exp's
// float64 cost. Inputs below the float32 denormal range flush to 0,
// exactly what a softmax weight that small rounds to anyway.
func fastExp(x float32) float32 {
	const (
		log2e = 1.4426950408889634
		ln2Hi = 0.693359375
		ln2Lo = -2.12194440e-4
	)
	if x < -87.33655 {
		return 0
	}
	t := x * log2e
	// For t <= 0, truncation toward zero of t-0.5 is ceil(t-0.5), which
	// is round-to-nearest — no branch needed on the non-positive domain.
	n := int32(t - 0.5)
	fn := float32(n)
	r := x - fn*ln2Hi - fn*ln2Lo
	z := ((((1.9875691500e-4*r+1.3981999507e-3)*r+8.3334519073e-3)*r+
		4.1665795894e-2)*r+1.6666665459e-1)*r + 5.0000001201e-1
	return math.Float32frombits(uint32(n+127)<<23) * (z*r*r + r + 1)
}

// axpyUnrolled folds one weighted value row into the fused kernel's
// accumulator (a += e*v), 4-wide unrolled with a bounds-hinted reslice:
// the per-lane stores are independent, so unrolling amortises the loop
// overhead the classic one-at-a-time form pays.
func axpyUnrolled(a, v []float32, e float32) {
	a = a[:len(v)]
	x := 0
	for ; x+4 <= len(v); x += 4 {
		a[x] += e * v[x]
		a[x+1] += e * v[x+1]
		a[x+2] += e * v[x+2]
		a[x+3] += e * v[x+3]
	}
	for ; x < len(v); x++ {
		a[x] += e * v[x]
	}
}

// AttentionReferenceInto is the unfused reference kernel: per (point,
// head) it materialises the full S×S score matrix into scratch
// (length at least AttentionReferenceScratchLen(s)), softmaxes every
// row, then runs the textbook P×V product with stride-3D value
// accesses. It allocates nothing and panics on shape or scratch
// mismatch.
func AttentionReferenceInto(dst, src *Tensor, heads int, scratch []float32) {
	n, s, d := attnMustCheck(dst, src, heads)
	if len(scratch) < s*s {
		panic(fmt.Sprintf("tensor: AttentionReferenceInto scratch %d < %d", len(scratch), s*s))
	}
	dh := d / heads
	w3 := 3 * d
	scale := float32(1 / math.Sqrt(float64(dh)))
	sc := scratch[:s*s]
	dd, sd := dst.data, src.data
	for p := 0; p < n; p++ {
		base := p * s * w3
		for h := 0; h < heads; h++ {
			qo, ko, vo := h*dh, d+h*dh, 2*d+h*dh
			// Pass 1: every pairwise scaled dot product.
			for i := 0; i < s; i++ {
				q := sd[base+i*w3+qo : base+i*w3+qo+dh]
				row := sc[i*s : (i+1)*s]
				for j := 0; j < s; j++ {
					k := sd[base+j*w3+ko : base+j*w3+ko+dh]
					var dot float32
					for x, qv := range q {
						dot += qv * k[x]
					}
					row[j] = dot * scale
				}
			}
			// Pass 2: row softmax over the materialised scores.
			softmaxRows(sc, sc, s, s)
			// Pass 3: textbook P×V; the j-innermost loop walks V at
			// stride 3D, the cache-hostile order real unfused
			// runtimes pay.
			for i := 0; i < s; i++ {
				row := sc[i*s : (i+1)*s]
				oo := p*s*d + i*d + h*dh
				out := dd[oo : oo+dh]
				for x := 0; x < dh; x++ {
					var acc float32
					for j, pv := range row {
						acc += pv * sd[base+j*w3+vo+x]
					}
					out[x] = acc
				}
			}
		}
	}
}

// LayerNormResidualInto computes the fused residual-add + layer norm:
// dst = gamma*((x+skip)-mean)/sqrt(var+eps) + beta per row over the
// last dimension, in a single read/write pass (sums and squared sums
// accumulate in float64 while the residual is written). skip may be
// nil (plain layer norm) and dst may alias x. It allocates nothing and
// panics on shape mismatch (plan-compile-validated hot kernel).
func LayerNormResidualInto(dst, x, skip, gamma, beta *Tensor, eps float32) {
	rows, d := lnMustCheck(dst, x, skip, gamma, beta)
	gd, bd := gamma.data, beta.data
	for i := 0; i < rows; i++ {
		xr := x.data[i*d : (i+1)*d]
		dr := dst.data[i*d : (i+1)*d]
		var sum, sumsq float64
		if skip != nil {
			sr := skip.data[i*d : (i+1)*d]
			for j, v := range xr {
				f := v + sr[j]
				dr[j] = f
				sum += float64(f)
				sumsq += float64(f) * float64(f)
			}
		} else {
			for j, v := range xr {
				dr[j] = v
				sum += float64(v)
				sumsq += float64(v) * float64(v)
			}
		}
		mean := sum / float64(d)
		variance := sumsq/float64(d) - mean*mean
		if variance < 0 {
			variance = 0
		}
		inv := float32(1 / math.Sqrt(variance+float64(eps)))
		m32 := float32(mean)
		for j := range dr {
			dr[j] = (dr[j]-m32)*inv*gd[j] + bd[j]
		}
	}
}

// LayerNormReferenceInto is the unfused reference layer norm: the
// residual add, the mean, the (two-pass, centred) variance, and the
// scale/shift each run as their own pass over the row, the op-by-op
// order an unfused graph executor pays. skip may be nil and dst may
// alias x. It allocates nothing and panics on shape mismatch.
func LayerNormReferenceInto(dst, x, skip, gamma, beta *Tensor, eps float32) {
	rows, d := lnMustCheck(dst, x, skip, gamma, beta)
	gd, bd := gamma.data, beta.data
	for i := 0; i < rows; i++ {
		xr := x.data[i*d : (i+1)*d]
		dr := dst.data[i*d : (i+1)*d]
		copy(dr, xr)
		if skip != nil {
			sr := skip.data[i*d : (i+1)*d]
			for j, v := range sr {
				dr[j] += v
			}
		}
		var sum float64
		for _, v := range dr {
			sum += float64(v)
		}
		mean := sum / float64(d)
		var sumsq float64
		for _, v := range dr {
			c := float64(v) - mean
			sumsq += c * c
		}
		inv := float32(1 / math.Sqrt(sumsq/float64(d)+float64(eps)))
		m32 := float32(mean)
		for j := range dr {
			dr[j] = (dr[j]-m32)*inv*gd[j] + bd[j]
		}
	}
}

// lnMustCheck validates layer-norm shapes and returns the row count and
// normalised width.
func lnMustCheck(dst, x, skip, gamma, beta *Tensor) (rows, d int) {
	if gamma.Rank() != 1 || beta.Rank() != 1 || gamma.Len() != beta.Len() || gamma.Len() == 0 {
		panic(fmt.Sprintf("tensor: LayerNorm gamma %v / beta %v malformed", gamma.shape, beta.shape))
	}
	d = gamma.Len()
	if x.Rank() < 1 || x.shape[x.Rank()-1] != d {
		panic(fmt.Sprintf("tensor: LayerNorm width %d against activation %v", d, x.shape))
	}
	if !dst.SameShape(x) {
		panic(fmt.Sprintf("tensor: LayerNorm dst shape %v, want %v", dst.shape, x.shape))
	}
	if skip != nil && !skip.SameShape(x) {
		panic(fmt.Sprintf("tensor: LayerNorm skip shape %v, want %v", skip.shape, x.shape))
	}
	return x.Len() / d, d
}

// GELU approximation constants: sqrt(2/pi) and the cubic coefficient of
// the tanh form used by inference runtimes.
const (
	geluC0 = 0.7978845608028654
	geluC1 = 0.044715
)

// GELUInto computes the fused (tanh-approximation) Gaussian error
// linear unit element-wise: 0.5x(1+tanh(√(2/π)(x+0.044715x³))). dst
// may alias src. It allocates nothing and panics on shape mismatch.
func GELUInto(dst, src *Tensor) {
	if !dst.SameShape(src) {
		panic(fmt.Sprintf("tensor: GELUInto shape mismatch %v -> %v", src.shape, dst.shape))
	}
	for i, v := range src.data {
		u := float64(v)
		dst.data[i] = float32(0.5 * u * (1 + math.Tanh(geluC0*(u+geluC1*u*u*u))))
	}
}

// GELU applies the fused tanh-approximation GELU in place and returns
// the tensor.
func GELU(t *Tensor) *Tensor {
	GELUInto(t, t)
	return t
}

// GELUReferenceInto is the exact-erf GELU, 0.5x(1+erf(x/√2)) — the
// unfused reference the tanh approximation is measured against (the
// two agree within ~1e-3 absolute). dst may alias src.
func GELUReferenceInto(dst, src *Tensor) {
	if !dst.SameShape(src) {
		panic(fmt.Sprintf("tensor: GELUReferenceInto shape mismatch %v -> %v", src.shape, dst.shape))
	}
	for i, v := range src.data {
		u := float64(v)
		dst.data[i] = float32(0.5 * u * (1 + math.Erf(u/math.Sqrt2)))
	}
}

// GELUReference applies the exact-erf GELU in place and returns the
// tensor.
func GELUReference(t *Tensor) *Tensor {
	GELUReferenceInto(t, t)
	return t
}
