package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// arenaClasses bounds the power-of-two size classes an Arena manages:
// class c holds buffers of capacity 1<<c floats. 1<<27 floats (512 MiB)
// is far beyond any layer in the model zoo; larger requests fall back to
// exact, unrecycled allocations.
const arenaClasses = 28

// arenaFreeCap bounds how many recycled tensors an arena pins per size
// class; overflow goes to the shared sync.Pool so burst states still
// return memory to the rest of the process.
const arenaFreeCap = 64

// sharedBufs recycles tensors across arenas, one pool per size class.
// The GC may empty it at any time, so it is only the overflow tier —
// each arena pins its own free lists for the steady state.
var sharedBufs [arenaClasses]sync.Pool

// Arena hands out float32 tensors from size-classed free lists so a
// steady-state forward pass never touches the allocator. It is
// single-owner: one goroutine uses an arena at a time (plans keep one
// per execution state), only the hit/miss counters are safe to read
// concurrently.
//
// The contract: Get returns a tensor whose contents are unspecified
// (kernels with an Into variant fully overwrite their destination);
// every Get-ed tensor stays valid until Reset, which reclaims them all
// at once; Recycle returns one early (the ping-pong pattern). Wrap
// headers view caller-owned data and are recycled separately, so caller
// memory never enters the buffer free lists.
type Arena struct {
	free  [arenaClasses][]*Tensor // recycled, cap(data) == 1<<class
	lent  []*Tensor               // handed out since last Reset (nil = recycled early)
	wraps []*Tensor               // Wrap headers; wraps[:nwrap] are in use
	nwrap int

	// Quantized scratch uses the same size classes but a stricter
	// contract: GetQ/GetAcc/GetU64 buffers are op-local and must be
	// returned with their Recycle* counterpart (Reset does not sweep
	// them), which keeps the quantized path off the lent list entirely.
	freeQ   [arenaClasses][]*QTensor // recycled, cap(data) == 1<<class
	freeAcc [arenaClasses][][]int32  // int32 accumulators, cap == 1<<class
	freeU64 [arenaClasses][][]uint64 // packed-word scratch, cap == 1<<class

	hits, misses       atomic.Uint64
	extHits, extMisses *atomic.Uint64
}

// CountInto redirects the arena's hit/miss counters to shared sinks, so
// a plan can aggregate across the per-state arenas it owns (pooled
// states are not enumerable). Call before first use.
func (a *Arena) CountInto(hits, misses *atomic.Uint64) {
	a.extHits, a.extMisses = hits, misses
}

func (a *Arena) hit() {
	if a.extHits != nil {
		a.extHits.Add(1)
		return
	}
	a.hits.Add(1)
}

func (a *Arena) miss() {
	if a.extMisses != nil {
		a.extMisses.Add(1)
		return
	}
	a.misses.Add(1)
}

// classFor returns the size class whose buffers hold n floats.
func classFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, d := range a {
		if b[i] != d {
			return false
		}
	}
	return true
}

// reshapeTo repoints a recycled tensor at a new shape of n total
// elements without allocating (unless the rank grew, which class reuse
// almost never does).
func (t *Tensor) reshapeTo(shape []int, n int) {
	t.data = t.data[:n]
	if cap(t.shape) >= len(shape) {
		t.shape = t.shape[:len(shape)]
		copy(t.shape, shape)
	} else {
		t.shape = append([]int(nil), shape...)
	}
}

// Get returns a tensor of the given shape with unspecified contents.
// Steady state (every shape seen since the last miss) is allocation-
// free: exact-shape headers are reused whole, and same-class buffers
// are resliced in place.
func (a *Arena) Get(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	c := classFor(n)
	if c >= arenaClasses {
		// Off-scale request: plain allocation, never recycled.
		a.miss()
		t := New(shape...)
		a.lent = append(a.lent, t)
		return t
	}
	fl := a.free[c]
	for i := len(fl) - 1; i >= 0; i-- {
		if shapeEq(fl[i].shape, shape) {
			t := fl[i]
			fl[i] = fl[len(fl)-1]
			a.free[c] = fl[:len(fl)-1]
			a.hit()
			a.lent = append(a.lent, t)
			return t
		}
	}
	if len(fl) > 0 {
		t := fl[len(fl)-1]
		a.free[c] = fl[:len(fl)-1]
		t.reshapeTo(shape, n)
		a.hit()
		a.lent = append(a.lent, t)
		return t
	}
	if t, _ := sharedBufs[c].Get().(*Tensor); t != nil {
		t.reshapeTo(shape, n)
		a.hit()
		a.lent = append(a.lent, t)
		return t
	}
	a.miss()
	t := &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n, 1<<c)}
	a.lent = append(a.lent, t)
	return t
}

// Wrap returns a tensor header viewing caller-owned data. The header is
// arena-recycled (valid until Reset) but the data never is: wrapped
// memory stays the caller's.
func (a *Arena) Wrap(data []float32, shape ...int) *Tensor {
	var t *Tensor
	if a.nwrap < len(a.wraps) {
		t = a.wraps[a.nwrap]
	} else {
		t = &Tensor{}
		a.wraps = append(a.wraps, t)
	}
	a.nwrap++
	t.data = data
	if cap(t.shape) >= len(shape) {
		t.shape = t.shape[:len(shape)]
		copy(t.shape, shape)
	} else {
		t.shape = append([]int(nil), shape...)
	}
	return t
}

// put returns an arena-owned tensor to its class free list, spilling to
// the shared pool when the pinned list is full.
func (a *Arena) put(t *Tensor) {
	c := classFor(cap(t.data))
	if c >= arenaClasses || cap(t.data) != 1<<c {
		return // off-scale or foreign buffer: drop
	}
	if len(a.free[c]) < arenaFreeCap {
		a.free[c] = append(a.free[c], t)
	} else {
		sharedBufs[c].Put(t)
	}
}

// Recycle returns one Get-ed tensor to the free lists before Reset —
// the ping-pong pattern where layer N's input is dead once layer N+1
// is computed. Tensors the arena does not own (Wrap headers, foreign
// tensors) are ignored.
func (a *Arena) Recycle(t *Tensor) {
	for i := len(a.lent) - 1; i >= 0; i-- {
		if a.lent[i] == t {
			a.lent[i] = nil
			a.put(t)
			return
		}
	}
}

// Reset reclaims every outstanding Get-ed tensor and releases all Wrap
// headers' views of caller data. Tensors obtained before Reset must not
// be used afterwards.
func (a *Arena) Reset() {
	for i, t := range a.lent {
		if t != nil {
			a.put(t)
		}
		a.lent[i] = nil
	}
	a.lent = a.lent[:0]
	for i := 0; i < a.nwrap; i++ {
		a.wraps[i].data = nil
	}
	a.nwrap = 0
}

// reshapeQTo repoints a recycled QTensor at a new shape of n total
// elements, reusing the shape header when the rank allows.
func (q *QTensor) reshapeQTo(shape []int, n int) {
	q.data = q.data[:n]
	if cap(q.shape) >= len(shape) {
		q.shape = q.shape[:len(shape)]
		copy(q.shape, shape)
	} else {
		q.shape = append([]int(nil), shape...)
	}
}

// GetQ returns a quantized tensor of the given shape with unspecified
// contents and identity-reset parameters. Rank-2 tensors come with
// packed-LHS buffers sized for QuantizeLHSInto. Steady state is
// allocation-free: recycled tensors keep their data, shape, and packed
// capacities. Unlike Get, the tensor is not swept by Reset — return it
// with RecycleQ when the op completes.
func (a *Arena) GetQ(shape ...int) *QTensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	c := classFor(n)
	if c >= arenaClasses {
		// Off-scale request: plain allocation, never recycled. Built
		// inline (not via NewQ) so the variadic shape slice never
		// escapes on the in-class path below.
		a.miss()
		q := &QTensor{
			shape:  append([]int(nil), shape...),
			data:   make([]int8, n),
			scales: []float32{1},
			zps:    []int32{0},
			axis:   -1,
		}
		if len(shape) == 2 {
			q.ensureLHS(shape[0], shape[1])
		}
		return q
	}
	if fl := a.freeQ[c]; len(fl) > 0 {
		q := fl[len(fl)-1]
		a.freeQ[c] = fl[:len(fl)-1]
		q.reshapeQTo(shape, n)
		if len(shape) == 2 {
			q.ensureLHS(shape[0], shape[1])
		}
		a.hit()
		return q
	}
	a.miss()
	q := &QTensor{
		shape:  append([]int(nil), shape...),
		data:   make([]int8, n, 1<<c),
		scales: []float32{1},
		zps:    []int32{0},
		axis:   -1,
	}
	if len(shape) == 2 {
		q.ensureLHS(shape[0], shape[1])
	}
	return q
}

// RecycleQ returns a GetQ-ed tensor to the quantized free lists.
// Foreign buffers (capacity not a managed class) are dropped.
func (a *Arena) RecycleQ(q *QTensor) {
	if q == nil {
		return
	}
	c := classFor(cap(q.data))
	if c >= arenaClasses || cap(q.data) != 1<<c {
		return
	}
	if len(a.freeQ[c]) < arenaFreeCap {
		a.freeQ[c] = append(a.freeQ[c], q)
	}
}

// GetAcc returns an int32 accumulator of length n with unspecified
// contents. Return it with RecycleAcc; steady state is allocation-free.
func (a *Arena) GetAcc(n int) []int32 {
	c := classFor(n)
	if c >= arenaClasses {
		a.miss()
		return make([]int32, n)
	}
	if fl := a.freeAcc[c]; len(fl) > 0 {
		b := fl[len(fl)-1]
		a.freeAcc[c] = fl[:len(fl)-1]
		a.hit()
		return b[:n]
	}
	a.miss()
	return make([]int32, n, 1<<c)
}

// RecycleAcc returns a GetAcc-ed buffer to the free lists.
func (a *Arena) RecycleAcc(b []int32) {
	if cap(b) == 0 {
		return
	}
	c := classFor(cap(b))
	if c >= arenaClasses || cap(b) != 1<<c {
		return
	}
	if len(a.freeAcc[c]) < arenaFreeCap {
		a.freeAcc[c] = append(a.freeAcc[c], b)
	}
}

// GetU64 returns a packed-word scratch buffer of length n with
// unspecified contents (the fused quantized im2col's destination).
// Return it with RecycleU64; steady state is allocation-free.
func (a *Arena) GetU64(n int) []uint64 {
	c := classFor(n)
	if c >= arenaClasses {
		a.miss()
		return make([]uint64, n)
	}
	if fl := a.freeU64[c]; len(fl) > 0 {
		b := fl[len(fl)-1]
		a.freeU64[c] = fl[:len(fl)-1]
		a.hit()
		return b[:n]
	}
	a.miss()
	return make([]uint64, n, 1<<c)
}

// RecycleU64 returns a GetU64-ed buffer to the free lists.
func (a *Arena) RecycleU64(b []uint64) {
	if cap(b) == 0 {
		return
	}
	c := classFor(cap(b))
	if c >= arenaClasses || cap(b) != 1<<c {
		return
	}
	if len(a.freeU64[c]) < arenaFreeCap {
		a.freeU64[c] = append(a.freeU64[c], b)
	}
}

// Stats reports how many Gets were served from recycled memory (hits)
// versus the allocator (misses). Safe to call concurrently with arena
// use.
func (a *Arena) Stats() (hits, misses uint64) {
	if a.extHits != nil {
		return a.extHits.Load(), a.extMisses.Load()
	}
	return a.hits.Load(), a.misses.Load()
}
