package tensor

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// maxAbsDiff returns the largest element-wise absolute difference.
func maxAbsDiff(a, b *Tensor) float64 {
	var m float64
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		d := math.Abs(float64(ad[i]) - float64(bd[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// TestAttentionKernelsMatchAndDontAllocate checks the fused transformer
// Into kernels against their allocating counterparts (bit-identical),
// the pooled fan-out against the sequential fused kernel (bit-identical
// at every worker count — rows are produced whole per lane), and
// asserts every Into path is allocation-free with caller scratch.
func TestAttentionKernelsMatchAndDontAllocate(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	const n, s, heads = 2, 33, 4
	d := 24
	src := randTensor(r, n, s, 3*d)

	want, err := Attention(src, heads)
	if err != nil {
		t.Fatal(err)
	}
	dst := New(n, s, d)
	scratch := make([]float32, AttentionScratchLen(d, heads, 1))
	assertZeroAllocs(t, "AttentionInto", func() { AttentionInto(dst, src, heads, scratch) })
	if !bitEqual(dst, want) {
		t.Error("AttentionInto differs from Attention")
	}

	pool := NewWorkPool(3)
	defer pool.Close()
	var wg sync.WaitGroup
	pscr := make([]float32, AttentionScratchLen(d, heads, 4))
	for _, workers := range []int{1, 2, 3, 4} {
		dst.Fill(-1)
		AttentionPoolInto(dst, src, heads, pscr, workers, pool, &wg)
		if !bitEqual(dst, want) {
			t.Errorf("workers=%d: pooled attention differs from sequential fused", workers)
		}
	}
	assertZeroAllocs(t, "AttentionPoolInto", func() { AttentionPoolInto(dst, src, heads, pscr, 4, pool, &wg) })

	wantRef, err := AttentionReference(src, heads)
	if err != nil {
		t.Fatal(err)
	}
	rscr := make([]float32, AttentionReferenceScratchLen(s))
	assertZeroAllocs(t, "AttentionReferenceInto", func() { AttentionReferenceInto(dst, src, heads, rscr) })
	if !bitEqual(dst, wantRef) {
		t.Error("AttentionReferenceInto differs from AttentionReference")
	}

	x := randTensor(r, 5, 16)
	skip := randTensor(r, 5, 16)
	gamma := randTensor(r, 16)
	beta := randTensor(r, 16)
	lnDst := New(5, 16)
	assertZeroAllocs(t, "LayerNormResidualInto", func() { LayerNormResidualInto(lnDst, x, skip, gamma, beta, 1e-5) })
	assertZeroAllocs(t, "LayerNormReferenceInto", func() { LayerNormReferenceInto(lnDst, x, skip, gamma, beta, 1e-5) })

	g := randTensor(r, 7, 9)
	gDst := New(7, 9)
	assertZeroAllocs(t, "GELUInto", func() { GELUInto(gDst, g) })
	assertZeroAllocs(t, "GELUReferenceInto", func() { GELUReferenceInto(gDst, g) })
}

// TestAttentionFusedMatchesReference is the fused-vs-unfused property
// test: over random shapes and seeds — including sequences longer than
// the key tile, so the online-softmax rescale path runs — the tiled
// flash-style kernel must agree with the score-materialising reference
// within the pinned tolerance (the two differ only in summation order
// and the exp-rescale of the running state).
func TestAttentionFusedMatchesReference(t *testing.T) {
	const tol = 1e-4
	cases := []struct{ n, s, d, heads int }{
		{1, 1, 4, 1},
		{1, 5, 8, 2},
		{2, 33, 24, 4},  // crosses one key-tile boundary
		{1, 80, 16, 8},  // two boundaries, dh=2 lanes
		{3, 64, 12, 3},  // exactly one full tile
		{2, 130, 32, 4}, // ragged final tile
	}
	for ci, c := range cases {
		r := rand.New(rand.NewSource(int64(100 + ci)))
		src := randTensor(r, c.n, c.s, 3*c.d)
		fused, err := Attention(src, c.heads)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := AttentionReference(src, c.heads)
		if err != nil {
			t.Fatal(err)
		}
		if diff := maxAbsDiff(fused, ref); diff > tol {
			t.Errorf("case %+v: fused vs reference max diff %g > %g", c, diff, tol)
		}
	}

	// Fused one-pass layer norm vs the multi-pass reference: same
	// residual semantics, tolerance pinned at 1e-5 (float64 accumulation
	// in both, only the variance formula differs).
	for seed := int64(0); seed < 3; seed++ {
		r := rand.New(rand.NewSource(200 + seed))
		x := randTensor(r, 4, 32)
		skip := randTensor(r, 4, 32)
		gamma := randTensor(r, 32)
		beta := randTensor(r, 32)
		a, b := New(4, 32), New(4, 32)
		LayerNormResidualInto(a, x, skip, gamma, beta, 1e-5)
		LayerNormReferenceInto(b, x, skip, gamma, beta, 1e-5)
		if diff := maxAbsDiff(a, b); diff > 1e-5 {
			t.Errorf("seed %d: fused vs reference layer norm max diff %g > 1e-5", seed, diff)
		}
		// skip == nil is plain layer norm on both paths.
		LayerNormResidualInto(a, x, nil, gamma, beta, 1e-5)
		LayerNormReferenceInto(b, x, nil, gamma, beta, 1e-5)
		if diff := maxAbsDiff(a, b); diff > 1e-5 {
			t.Errorf("seed %d: nil-skip layer norm max diff %g > 1e-5", seed, diff)
		}
	}

	// Tanh-approximation GELU vs the exact erf form: the approximation
	// error is bounded by ~1e-3 absolute on typical activations.
	r := rand.New(rand.NewSource(300))
	g := randTensor(r, 16, 16)
	ga, gb := New(16, 16), New(16, 16)
	GELUInto(ga, g)
	GELUReferenceInto(gb, g)
	if diff := maxAbsDiff(ga, gb); diff > 5e-3 {
		t.Errorf("tanh vs erf GELU max diff %g > 5e-3", diff)
	}
}

// TestLayerNormGELUKernels pins the aliasing and shape contracts: dst
// may alias x for the layer norms and src for GELU, and malformed
// attention inputs are rejected with errors (allocating API) or panics
// (Into kernels).
func TestLayerNormGELUKernels(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	x := randTensor(r, 3, 8)
	skip := randTensor(r, 3, 8)
	gamma := randTensor(r, 8)
	beta := randTensor(r, 8)

	want := New(3, 8)
	LayerNormResidualInto(want, x, skip, gamma, beta, 1e-5)
	aliased := x.Clone()
	LayerNormResidualInto(aliased, aliased, skip, gamma, beta, 1e-5)
	if !bitEqual(aliased, want) {
		t.Error("aliased LayerNormResidualInto differs from out-of-place")
	}

	g := randTensor(r, 3, 8)
	wantG := New(3, 8)
	GELUInto(wantG, g)
	gAlias := g.Clone()
	if GELU(gAlias) != gAlias {
		t.Error("GELU did not return its argument")
	}
	if !bitEqual(gAlias, wantG) {
		t.Error("in-place GELU differs from GELUInto")
	}
	gRef := g.Clone()
	wantRef := New(3, 8)
	GELUReferenceInto(wantRef, g)
	if GELUReference(gRef) != gRef || !bitEqual(gRef, wantRef) {
		t.Error("in-place GELUReference differs from GELUReferenceInto")
	}

	// Allocating attention API rejects malformed inputs with errors.
	if _, err := Attention(New(4, 6), 2); err == nil {
		t.Error("rank-2 attention input accepted")
	}
	if _, err := Attention(New(1, 4, 7), 1); err == nil {
		t.Error("width not divisible by 3 accepted")
	}
	if _, err := Attention(New(1, 4, 12), 3); err == nil {
		t.Error("heads not dividing model dim accepted")
	}
	if _, err := AttentionReference(New(1, 4, 12), 0); err == nil {
		t.Error("zero heads accepted")
	}

	// Into kernels panic on scratch shortfall (plan-compile-validated).
	defer func() {
		if recover() == nil {
			t.Error("short attention scratch did not panic")
		}
	}()
	AttentionInto(New(1, 4, 4), New(1, 4, 12), 2, make([]float32, 1))
}

// BenchmarkAttentionFusedVsUnfused is the kernel-level speedup contract
// (docs/PERFORMANCE.md, scripts/bench.sh): at the pinned S=256, D=64,
// heads=4 shape the tiled flash-style kernel must run at least 1.5x the
// score-materialising reference, with 0 B/op on the fused path. The
// ns/op ratio is booked as attention_fused_speedup in
// BENCH_inference.json.
func BenchmarkAttentionFusedVsUnfused(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const n, s, d, heads = 1, 256, 64, 4
	src := randTensor(r, n, s, 3*d)
	dst := New(n, s, d)

	b.Run("fused", func(b *testing.B) {
		scratch := make([]float32, AttentionScratchLen(d, heads, 1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			AttentionInto(dst, src, heads, scratch)
		}
	})
	b.Run("unfused", func(b *testing.B) {
		scratch := make([]float32, AttentionReferenceScratchLen(s))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			AttentionReferenceInto(dst, src, heads, scratch)
		}
	})
}
