package tensor

import "sync"

// WorkPool is a small resident worker pool for fanning matrix-multiply
// row ranges and fused-attention lane ranges out across goroutines
// without touching the allocator on the hot path: spawning a goroutine
// (and the closure it captures) per call costs the allocator every
// time, so a compiled plan keeps one pool alive for its lifetime and
// feeds it value-typed tasks over a channel instead.
type WorkPool struct {
	tasks chan mmTask
	wg    sync.WaitGroup
	n     int
}

// taskKind discriminates the work a pool task carries: matmul row
// ranges and fused-attention (point, head, query-row) ranges share the
// same resident workers.
type taskKind uint8

const (
	taskMatMul taskKind = iota
	taskAttention
)

// mmTask is one row range of a C = A×B product (taskMatMul) or one
// flattened lane range of a fused attention pass (taskAttention, where
// k/n carry the sequence length and model dim and scr is the lane's
// private scratch strip). It is sent by value so enqueueing does not
// allocate; done is owned by the caller and kept across calls (e.g.
// inside a plan's execution state).
type mmTask struct {
	kind       taskKind
	cd, ad, bd []float32
	i0, i1     int
	k, n       int
	heads      int
	scr        []float32
	done       *sync.WaitGroup
}

// NewWorkPool starts n resident workers (minimum 1). Close must be
// called to release them.
func NewWorkPool(n int) *WorkPool {
	if n < 1 {
		n = 1
	}
	p := &WorkPool{tasks: make(chan mmTask, n), n: n}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Workers reports the number of resident workers.
func (p *WorkPool) Workers() int { return p.n }

func (p *WorkPool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		switch t.kind {
		case taskAttention:
			// Every output row is produced whole inside its lane, so
			// chunking never changes bits.
			attentionRows(t.cd, t.ad, t.k, t.n, t.heads, t.i0, t.i1, t.scr)
		default:
			// Each worker zeroes its own disjoint row range before
			// accumulating, so results are bit-identical to the
			// sequential kernel for any chunking.
			rows := t.cd[t.i0*t.n : t.i1*t.n]
			for i := range rows {
				rows[i] = 0
			}
			matMulRange(t.cd, t.ad, t.bd, t.i0, t.i1, t.k, t.n)
		}
		t.done.Done()
	}
}

// Close stops the workers and waits for them to exit. No MatMul work
// may be in flight or issued afterwards.
func (p *WorkPool) Close() {
	close(p.tasks)
	p.wg.Wait()
}

// poolMatMul computes C = A×B over the pool: chunks 1..workers-1 are
// enqueued, chunk 0 runs on the calling goroutine, done joins. The
// even ±1-row split matches parallelMatMul, and because each row is
// produced whole by one matMulRange call, results are bit-identical to
// the sequential kernel at any worker count.
func poolMatMul(cd, ad, bd []float32, m, k, n, workers int, pool *WorkPool, done *sync.WaitGroup) {
	if pool != nil && workers > pool.n+1 {
		workers = pool.n + 1
	}
	if workers > m {
		workers = m
	}
	if pool == nil || workers <= 1 || m < 2 {
		for i := range cd {
			cd[i] = 0
		}
		matMulRange(cd, ad, bd, 0, m, k, n)
		return
	}
	base, rem := m/workers, m%workers
	head := base
	if rem > 0 {
		head++
	}
	i0 := head
	for w := 1; w < workers; w++ {
		rows := base
		if w < rem {
			rows++
		}
		done.Add(1)
		pool.tasks <- mmTask{cd: cd, ad: ad, bd: bd, i0: i0, i1: i0 + rows, k: k, n: n, done: done}
		i0 += rows
	}
	own := cd[:head*n]
	for i := range own {
		own[i] = 0
	}
	matMulRange(cd, ad, bd, 0, head, k, n)
	done.Wait()
}
