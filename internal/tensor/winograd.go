package tensor

import (
	"fmt"
	"sync"
)

// Winograd F(2×2, 3×3) convolution: the fast-kernel path the simulated GPU
// device uses for 3×3 stride-1 convolutions. The algorithm computes each
// 2×2 output tile with 16 multiplies instead of direct convolution's 36 —
// a real 2.25× reduction in multiply work, the same trick cuDNN's Winograd
// kernels use. Transform matrices:
//
//	Bᵀ = ⎡1  0 -1  0⎤   G = ⎡ 1    0    0 ⎤   Aᵀ = ⎡1 1  1  0⎤
//	     ⎢0  1  1  0⎥       ⎢ ½    ½    ½ ⎥        ⎣0 1 -1 -1⎦
//	     ⎢0 -1  1  0⎥       ⎢ ½   -½    ½ ⎥
//	     ⎣0  1  0 -1⎦       ⎣ 0    0    1 ⎦

// WinogradConv is a 3×3 stride-1 convolution with pre-transformed weights.
// Transforming the kernel once at construction amortises the weight
// transform across calls, as inference runtimes do when loading a model.
// Scratch buffers are pooled across calls; a WinogradConv is safe for
// concurrent use.
type WinogradConv struct {
	oc, ic int
	// u holds the transformed kernels: 16 matrices of shape oc×ic,
	// one per position of the 4×4 Winograd domain.
	u [16][]float32

	scratch sync.Pool // *WinoScratch
}

// WinoScratch holds the V and M Winograd-domain buffers for one Apply
// call at a given tile count. Execution plans pre-size one per conv
// layer so the steady-state path never touches the allocator; Apply
// without caller scratch falls back to an internal pool.
type WinoScratch struct {
	tiles int
	v     []float32
	m     []float32
}

// NewScratch sizes a scratch for stride-1 inputs of the given
// height/width at the given padding. The returned scratch is tied to
// this convolution's channel counts.
func (w *WinogradConv) NewScratch(h, wd, pad int) *WinoScratch {
	oh := h + 2*pad - 2
	ow := wd + 2*pad - 2
	tiles := ((oh + 1) / 2) * ((ow + 1) / 2)
	return &WinoScratch{
		tiles: tiles,
		v:     make([]float32, 16*w.ic*tiles),
		m:     make([]float32, 16*w.oc*tiles),
	}
}

// NewWinogradConv pre-transforms an OIHW kernel. The kernel must be 3×3.
func NewWinogradConv(kernel *Tensor) (*WinogradConv, error) {
	if kernel.Rank() != 4 || kernel.Dim(2) != 3 || kernel.Dim(3) != 3 {
		return nil, fmt.Errorf("tensor: Winograd requires a 3×3 OIHW kernel, got %v", kernel.Shape())
	}
	oc, ic := kernel.Dim(0), kernel.Dim(1)
	w := &WinogradConv{oc: oc, ic: ic}
	for xi := range w.u {
		w.u[xi] = make([]float32, oc*ic)
	}
	kd := kernel.Data()
	var g [9]float32
	var u [16]float32
	for o := 0; o < oc; o++ {
		for i := 0; i < ic; i++ {
			copy(g[:], kd[(o*ic+i)*9:(o*ic+i)*9+9])
			transformKernel(&g, &u)
			for xi := 0; xi < 16; xi++ {
				w.u[xi][o*ic+i] = u[xi]
			}
		}
	}
	return w, nil
}

// transformKernel computes U = G g Gᵀ for one 3×3 filter.
func transformKernel(g *[9]float32, u *[16]float32) {
	// t = G g (4×3)
	var t [12]float32
	for c := 0; c < 3; c++ {
		g0, g1, g2 := g[c], g[3+c], g[6+c]
		t[c] = g0
		t[3+c] = 0.5 * (g0 + g1 + g2)
		t[6+c] = 0.5 * (g0 - g1 + g2)
		t[9+c] = g2
	}
	// u = t Gᵀ (4×4)
	for r := 0; r < 4; r++ {
		t0, t1, t2 := t[3*r], t[3*r+1], t[3*r+2]
		u[4*r] = t0
		u[4*r+1] = 0.5 * (t0 + t1 + t2)
		u[4*r+2] = 0.5 * (t0 - t1 + t2)
		u[4*r+3] = t2
	}
}

// transformInput computes V = Bᵀ d B for one 4×4 input tile, in place.
func transformInput(d *[16]float32) {
	// t = Bᵀ d
	var t [16]float32
	for c := 0; c < 4; c++ {
		d0, d1, d2, d3 := d[c], d[4+c], d[8+c], d[12+c]
		t[c] = d0 - d2
		t[4+c] = d1 + d2
		t[8+c] = d2 - d1
		t[12+c] = d1 - d3
	}
	// d = t B
	for r := 0; r < 4; r++ {
		t0, t1, t2, t3 := t[4*r], t[4*r+1], t[4*r+2], t[4*r+3]
		d[4*r] = t0 - t2
		d[4*r+1] = t1 + t2
		d[4*r+2] = t2 - t1
		d[4*r+3] = t1 - t3
	}
}

// inverseTransform computes Y = Aᵀ m A for one 4×4 Winograd-domain tile,
// producing the 2×2 output tile.
func inverseTransform(m *[16]float32, y *[4]float32) {
	// t = Aᵀ m (2×4)
	var t [8]float32
	for c := 0; c < 4; c++ {
		m0, m1, m2, m3 := m[c], m[4+c], m[8+c], m[12+c]
		t[c] = m0 + m1 + m2
		t[4+c] = m1 - m2 - m3
	}
	// y = t A (2×2)
	for r := 0; r < 2; r++ {
		t0, t1, t2, t3 := t[4*r], t[4*r+1], t[4*r+2], t[4*r+3]
		y[2*r] = t0 + t1 + t2
		y[2*r+1] = t1 - t2 - t3
	}
}

// Apply convolves an NCHW input with the pre-transformed kernel at
// stride 1 with the given padding.
func (w *WinogradConv) Apply(in *Tensor, pad int) (*Tensor, error) {
	if in.Rank() != 4 {
		return nil, fmt.Errorf("tensor: Winograd requires NCHW input, got %v", in.Shape())
	}
	n, c, h, wd := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	if c != w.ic {
		return nil, fmt.Errorf("tensor: Winograd channel mismatch: input %d, kernel %d", c, w.ic)
	}
	oh := h + 2*pad - 2
	ow := wd + 2*pad - 2
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("tensor: Winograd output would be empty for input %v", in.Shape())
	}
	tiles := ((oh + 1) / 2) * ((ow + 1) / 2)

	out := New(n, w.oc, oh, ow)
	// Scratch: V (16 × ic × tiles) and M (16 × oc × tiles), pooled
	// across calls.
	sc, _ := w.scratch.Get().(*WinoScratch)
	if sc == nil || sc.tiles != tiles {
		sc = &WinoScratch{
			tiles: tiles,
			v:     make([]float32, 16*w.ic*tiles),
			m:     make([]float32, 16*w.oc*tiles),
		}
	}
	defer w.scratch.Put(sc)
	w.ApplyInto(out, in, pad, sc)
	return out, nil
}

// ApplyInto convolves an NCHW input into an already-shaped dst using
// caller-owned scratch (see NewScratch). It allocates nothing and
// panics on shape or scratch mismatch (plan-compile-validated hot
// kernel).
func (w *WinogradConv) ApplyInto(dst, in *Tensor, pad int, sc *WinoScratch) {
	n, c, h, wd := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	if c != w.ic {
		panic(fmt.Sprintf("tensor: Winograd channel mismatch: input %d, kernel %d", c, w.ic))
	}
	oh := h + 2*pad - 2
	ow := wd + 2*pad - 2
	th := (oh + 1) / 2
	tw := (ow + 1) / 2
	tiles := th * tw
	if sc.tiles != tiles || len(sc.v) < 16*w.ic*tiles || len(sc.m) < 16*w.oc*tiles {
		panic(fmt.Sprintf("tensor: Winograd scratch sized for %d tiles, need %d", sc.tiles, tiles))
	}
	if dst.shape[0] != n || dst.shape[1] != w.oc || dst.shape[2] != oh || dst.shape[3] != ow {
		panic(fmt.Sprintf("tensor: Winograd dst shape %v, want [%d %d %d %d]", dst.shape, n, w.oc, oh, ow))
	}
	out := dst
	v, mbuf := sc.v, sc.m

	for img := 0; img < n; img++ {
		imgData := in.data[img*c*h*wd:]
		// Input transform.
		var d [16]float32
		for ch := 0; ch < c; ch++ {
			chData := imgData[ch*h*wd : (ch+1)*h*wd]
			ti := 0
			for ty := 0; ty < th; ty++ {
				iy0 := 2*ty - pad
				interiorRows := iy0 >= 0 && iy0+4 <= h
				for tx := 0; tx < tw; tx++ {
					ix0 := 2*tx - pad
					if interiorRows && ix0 >= 0 && ix0+4 <= wd {
						// Interior tile: contiguous row loads,
						// no bounds checks.
						base := iy0*wd + ix0
						r0 := chData[base : base+4 : base+4]
						r1 := chData[base+wd : base+wd+4 : base+wd+4]
						r2 := chData[base+2*wd : base+2*wd+4 : base+2*wd+4]
						r3 := chData[base+3*wd : base+3*wd+4 : base+3*wd+4]
						d[0], d[1], d[2], d[3] = r0[0], r0[1], r0[2], r0[3]
						d[4], d[5], d[6], d[7] = r1[0], r1[1], r1[2], r1[3]
						d[8], d[9], d[10], d[11] = r2[0], r2[1], r2[2], r2[3]
						d[12], d[13], d[14], d[15] = r3[0], r3[1], r3[2], r3[3]
					} else {
						for r := 0; r < 4; r++ {
							iy := iy0 + r
							if iy < 0 || iy >= h {
								d[4*r], d[4*r+1], d[4*r+2], d[4*r+3] = 0, 0, 0, 0
								continue
							}
							row := chData[iy*wd:]
							for cc := 0; cc < 4; cc++ {
								ix := ix0 + cc
								if ix < 0 || ix >= wd {
									d[4*r+cc] = 0
								} else {
									d[4*r+cc] = row[ix]
								}
							}
						}
					}
					transformInput(&d)
					base := ch*tiles + ti
					stride := w.ic * tiles
					for xi := 0; xi < 16; xi++ {
						v[xi*stride+base] = d[xi]
					}
					ti++
				}
			}
		}
		// Batched element-wise stage: 16 GEMMs of oc×ic by ic×tiles.
		for xi := 0; xi < 16; xi++ {
			mslice := mbuf[xi*w.oc*tiles : (xi+1)*w.oc*tiles]
			for i := range mslice {
				mslice[i] = 0
			}
			matMulRange(mslice, w.u[xi], v[xi*w.ic*tiles:(xi+1)*w.ic*tiles], 0, w.oc, w.ic, tiles)
		}
		// Inverse transform into the output.
		var m [16]float32
		var y [4]float32
		for oc := 0; oc < w.oc; oc++ {
			dst := out.data[(img*w.oc+oc)*oh*ow:]
			ti := 0
			for ty := 0; ty < th; ty++ {
				for tx := 0; tx < tw; tx++ {
					for xi := 0; xi < 16; xi++ {
						m[xi] = mbuf[(xi*w.oc+oc)*tiles+ti]
					}
					inverseTransform(&m, &y)
					oy, ox := 2*ty, 2*tx
					dst[oy*ow+ox] = y[0]
					if ox+1 < ow {
						dst[oy*ow+ox+1] = y[1]
					}
					if oy+1 < oh {
						dst[(oy+1)*ow+ox] = y[2]
						if ox+1 < ow {
							dst[(oy+1)*ow+ox+1] = y[3]
						}
					}
					ti++
				}
			}
		}
	}
}

// Conv2DWinograd is a convenience wrapper constructing the transform and
// applying it once; runtimes keep a WinogradConv per layer instead.
func Conv2DWinograd(in, kernel *Tensor, pad int) (*Tensor, error) {
	w, err := NewWinogradConv(kernel)
	if err != nil {
		return nil, err
	}
	return w.Apply(in, pad)
}
