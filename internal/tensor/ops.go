package tensor

import (
	"fmt"
	"math"
)

// matMulBlock is the cache-blocking tile edge used by MatMul.
const matMulBlock = 64

// MatMul computes C = A × B for 2-D tensors A (m×k) and B (k×n) into a new
// m×n tensor using i-k-j loop ordering with cache blocking.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMul requires rank-2 operands, got %v × %v", a.shape, b.shape)
	}
	if a.shape[1] != b.shape[0] {
		return nil, fmt.Errorf("tensor: MatMul shape mismatch %v × %v", a.shape, b.shape)
	}
	c := New(a.shape[0], b.shape[1])
	MatMulInto(c, a, b)
	return c, nil
}

// MatMulInto computes dst = A × B, reusing dst's storage. dst must already
// have shape m×n. It panics on shape mismatch; it is the hot inner kernel
// and callers are expected to have validated shapes.
func MatMulInto(dst, a, b *Tensor) {
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch %v × %v -> %v", a.shape, b.shape, dst.shape))
	}
	ad, bd, cd := a.data, b.data, dst.data
	for i := range cd {
		cd[i] = 0
	}
	matMulRange(cd, ad, bd, 0, m, k, n)
}

// matMulRange computes rows [i0,i1) of C += A×B with blocking over k and j.
func matMulRange(cd, ad, bd []float32, i0, i1, k, n int) {
	for kk := 0; kk < k; kk += matMulBlock {
		kmax := kk + matMulBlock
		if kmax > k {
			kmax = k
		}
		for i := i0; i < i1; i++ {
			arow := ad[i*k : (i+1)*k]
			crow := cd[i*n : (i+1)*n]
			for p := kk; p < kmax; p++ {
				// No zero-skip: kernel cost must be data-
				// independent so benchmark timings do not vary
				// with activation sparsity.
				av := arow[p]
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// MatMulNaive is a textbook triple loop used as the baseline for the
// blocked-matmul ablation bench and as a differential-testing oracle.
func MatMulNaive(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 || a.shape[1] != b.shape[0] {
		return nil, fmt.Errorf("tensor: MatMulNaive shape mismatch %v × %v", a.shape, b.shape)
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.data[i*k+p] * b.data[p*n+j]
			}
			c.data[i*n+j] = s
		}
	}
	return c, nil
}

// AddBias adds a length-n bias vector to every row of an m×n tensor in
// place and returns the tensor.
func AddBias(t, bias *Tensor) (*Tensor, error) {
	if t.Rank() != 2 || bias.Rank() != 1 || bias.shape[0] != t.shape[1] {
		return nil, fmt.Errorf("tensor: AddBias shape mismatch %v + %v", t.shape, bias.shape)
	}
	AddBiasInto(t, t, bias)
	return t, nil
}

// AddBiasInto computes dst = t + bias broadcast over rows. dst may alias
// t. Like MatMulInto it panics on shape mismatch: it is a hot kernel and
// callers (execution plans) validate shapes at compile time.
func AddBiasInto(dst, t, bias *Tensor) {
	if dst.shape[0] != t.shape[0] || dst.shape[1] != t.shape[1] || bias.shape[0] != t.shape[1] {
		panic(fmt.Sprintf("tensor: AddBiasInto shape mismatch %v + %v -> %v", t.shape, bias.shape, dst.shape))
	}
	n := t.shape[1]
	for i := 0; i < t.shape[0]; i++ {
		src := t.data[i*n : (i+1)*n]
		row := dst.data[i*n : (i+1)*n]
		for j := range row {
			row[j] = src[j] + bias.data[j]
		}
	}
}

// Add computes element-wise a + b into a new tensor.
func Add(a, b *Tensor) (*Tensor, error) {
	if !a.SameShape(b) {
		return nil, fmt.Errorf("tensor: Add shape mismatch %v + %v", a.shape, b.shape)
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out, nil
}

// AddInPlace computes a += b and returns a.
func AddInPlace(a, b *Tensor) (*Tensor, error) {
	if !a.SameShape(b) {
		return nil, fmt.Errorf("tensor: AddInPlace shape mismatch %v + %v", a.shape, b.shape)
	}
	for i, v := range b.data {
		a.data[i] += v
	}
	return a, nil
}

// ReLU applies max(0, x) in place and returns the tensor.
func ReLU(t *Tensor) *Tensor {
	for i, v := range t.data {
		if v < 0 {
			t.data[i] = 0
		}
	}
	return t
}

// Softmax applies a numerically-stable softmax over the last dimension
// in place and returns it: every leading dimension indexes an
// independent row (rank-2 classifier logits, rank-3 attention score
// tiles alike).
func Softmax(t *Tensor) (*Tensor, error) {
	if t.Rank() < 1 {
		return nil, fmt.Errorf("tensor: Softmax requires rank >= 1, got %v", t.shape)
	}
	SoftmaxInto(t, t)
	return t, nil
}

// SoftmaxInto computes the numerically-stable softmax of src over its
// last dimension into dst; every leading dimension indexes an
// independent row. dst may alias src (the in-place hot path). It
// panics on shape mismatch.
func SoftmaxInto(dst, src *Tensor) {
	if !dst.SameShape(src) {
		panic(fmt.Sprintf("tensor: SoftmaxInto shape mismatch %v -> %v", src.shape, dst.shape))
	}
	if src.Rank() < 1 {
		panic(fmt.Sprintf("tensor: SoftmaxInto requires rank >= 1, got %v", src.shape))
	}
	n := src.shape[src.Rank()-1]
	if n == 0 {
		return
	}
	softmaxRows(dst.data, src.data, len(src.data)/n, n)
}

// softmaxRows is the shared softmax row loop (SoftmaxInto and the
// reference attention kernel): max-subtract, exponentiate with a
// float64 running sum, normalise.
func softmaxRows(dst, src []float32, rows, n int) {
	for i := 0; i < rows; i++ {
		in := src[i*n : (i+1)*n]
		row := dst[i*n : (i+1)*n]
		max := float32(math.Inf(-1))
		for _, v := range in {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range in {
			e := float32(math.Exp(float64(v - max)))
			row[j] = e
			sum += float64(e)
		}
		inv := float32(1 / sum)
		for j := range row {
			row[j] *= inv
		}
	}
}

// BatchNorm applies per-channel inference-mode batch normalisation to an
// NCHW tensor in place: y = gamma*(x-mean)/sqrt(var+eps) + beta.
func BatchNorm(t, gamma, beta, mean, variance *Tensor, eps float32) (*Tensor, error) {
	if t.Rank() != 4 {
		return nil, fmt.Errorf("tensor: BatchNorm requires NCHW rank 4, got %v", t.shape)
	}
	c := t.shape[1]
	if gamma.Len() != c || beta.Len() != c || mean.Len() != c || variance.Len() != c {
		return nil, fmt.Errorf("tensor: BatchNorm channel mismatch: %d channels", c)
	}
	hw := t.shape[2] * t.shape[3]
	for n := 0; n < t.shape[0]; n++ {
		for ch := 0; ch < c; ch++ {
			scale := gamma.data[ch] / float32(math.Sqrt(float64(variance.data[ch]+eps)))
			shift := beta.data[ch] - mean.data[ch]*scale
			base := (n*c + ch) * hw
			seg := t.data[base : base+hw]
			for i := range seg {
				seg[i] = seg[i]*scale + shift
			}
		}
	}
	return t, nil
}

// Conv2D performs a 2-D convolution on an NCHW input with an OIHW kernel
// using im2col + the cache-blocked MatMul. Output spatial size is the
// usual (H + 2*pad - kh)/stride + 1.
func Conv2D(in, kernel *Tensor, stride, pad int) (*Tensor, error) {
	return conv2D(in, kernel, stride, pad, nil)
}

// Conv2DReference is the single-thread reference convolution: im2col plus
// a textbook i-j-p GEMM with no cache blocking. It is the CPU-device
// kernel, mirroring the paper's deliberately unoptimised CPU inference
// configuration (§4.3 pins inter- and intra-operator parallelism to one
// thread); accelerator devices use the optimised kernel library instead
// (blocked GEMM, Winograd, folded batch norms).
func Conv2DReference(in, kernel *Tensor, stride, pad int) (*Tensor, error) {
	return conv2D(in, kernel, stride, pad, referenceMatMul)
}

// Conv2DParallel is Conv2D with the matmul row range fanned out over the
// given number of workers; it is used by the GPU device.
func Conv2DParallel(in, kernel *Tensor, stride, pad, workers int) (*Tensor, error) {
	return conv2D(in, kernel, stride, pad, func(cd, ad, bd []float32, m, k, n int) {
		parallelMatMul(cd, ad, bd, m, k, n, workers)
	})
}

type matMulFn func(cd, ad, bd []float32, m, k, n int)

func conv2D(in, kernel *Tensor, stride, pad int, mm matMulFn) (*Tensor, error) {
	if err := conv2DCheck(in, kernel, stride, pad); err != nil {
		return nil, err
	}
	oh, ow := Conv2DOutDims(in, kernel, stride, pad)
	col := make([]float32, Conv2DScratchLen(in, kernel, stride, pad))
	out := New(in.shape[0], kernel.shape[0], oh, ow)
	conv2DInto(out, in, kernel, stride, pad, col, mm)
	return out, nil
}

// conv2DCheck validates an NCHW input / OIHW kernel pair for conv2D.
func conv2DCheck(in, kernel *Tensor, stride, pad int) error {
	if in.Rank() != 4 || kernel.Rank() != 4 {
		return fmt.Errorf("tensor: Conv2D requires NCHW input and OIHW kernel, got %v, %v", in.shape, kernel.shape)
	}
	if kernel.shape[1] != in.shape[1] {
		return fmt.Errorf("tensor: Conv2D channel mismatch: input %d, kernel %d", in.shape[1], kernel.shape[1])
	}
	if stride <= 0 {
		return fmt.Errorf("tensor: Conv2D stride must be positive, got %d", stride)
	}
	oh, ow := Conv2DOutDims(in, kernel, stride, pad)
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("tensor: Conv2D output would be empty for input %v kernel %v", in.shape, kernel.shape)
	}
	return nil
}

// Conv2DOutDims returns the output spatial dimensions of a convolution:
// (H + 2*pad - kh)/stride + 1 by the analogous width.
func Conv2DOutDims(in, kernel *Tensor, stride, pad int) (oh, ow int) {
	oh = (in.shape[2]+2*pad-kernel.shape[2])/stride + 1
	ow = (in.shape[3]+2*pad-kernel.shape[3])/stride + 1
	return oh, ow
}

// Conv2DScratchLen returns the im2col scratch length (in float32s) that
// Conv2DInto and friends need for the given convolution: the
// (c*kh*kw) × (oh*ow) patch matrix of one image. Execution plans size
// their arena scratch with it at compile time.
func Conv2DScratchLen(in, kernel *Tensor, stride, pad int) int {
	oh, ow := Conv2DOutDims(in, kernel, stride, pad)
	return in.shape[1] * kernel.shape[2] * kernel.shape[3] * oh * ow
}

// Conv2DInto computes the cache-blocked im2col convolution into dst,
// using the caller-provided im2col scratch buffer col (length at least
// Conv2DScratchLen). It allocates nothing: dst must already have shape
// [n, oc, oh, ow]. Like MatMulInto it panics on shape or scratch
// mismatch — callers validate at plan-compile time.
func Conv2DInto(dst, in, kernel *Tensor, stride, pad int, col []float32) {
	conv2DInto(dst, in, kernel, stride, pad, col, nil)
}

// Conv2DReferenceInto is Conv2DInto with the single-thread reference GEMM
// (the CPU device's deliberately unoptimised kernel, see Conv2DReference).
func Conv2DReferenceInto(dst, in, kernel *Tensor, stride, pad int, col []float32) {
	conv2DInto(dst, in, kernel, stride, pad, col, referenceMatMul)
}

// referenceMatMul is the textbook i-j-p GEMM used by Conv2DReference.
func referenceMatMul(cd, ad, bd []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			var s float32
			for p, av := range arow {
				s += av * bd[p*n+j]
			}
			cd[i*n+j] = s
		}
	}
}

// conv2DInto is the shared allocation-free convolution core. mm == nil
// selects the cache-blocked GEMM.
func conv2DInto(dst, in, kernel *Tensor, stride, pad int, col []float32, mm matMulFn) {
	n, c, h, w := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	oc, _, kh, kw := kernel.shape[0], kernel.shape[1], kernel.shape[2], kernel.shape[3]
	oh, ow := Conv2DOutDims(in, kernel, stride, pad)
	colRows := c * kh * kw
	colCols := oh * ow
	if len(col) < colRows*colCols {
		panic(fmt.Sprintf("tensor: Conv2DInto scratch %d < %d", len(col), colRows*colCols))
	}
	if dst.shape[0] != n || dst.shape[1] != oc || dst.shape[2] != oh || dst.shape[3] != ow {
		panic(fmt.Sprintf("tensor: Conv2DInto dst shape %v, want [%d %d %d %d]", dst.shape, n, oc, oh, ow))
	}
	col = col[:colRows*colCols]
	kmat := kernel.data // oc × (ic*kh*kw), already contiguous in OIHW.

	for img := 0; img < n; img++ {
		im2col(in.data[img*c*h*w:(img+1)*c*h*w], col, c, h, w, kh, kw, oh, ow, stride, pad)
		out := dst.data[img*oc*colCols : (img+1)*oc*colCols]
		if mm != nil {
			mm(out, kmat, col, oc, colRows, colCols)
		} else {
			for i := range out {
				out[i] = 0
			}
			matMulRange(out, kmat, col, 0, oc, colRows, colCols)
		}
	}
}

// im2col expands one CHW image into the (c*kh*kw) × (oh*ow) patch matrix.
func im2col(img, col []float32, c, h, w, kh, kw, oh, ow, stride, pad int) {
	idx := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							col[idx] = 0
							idx++
						}
						continue
					}
					rowBase := chBase + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							col[idx] = 0
						} else {
							col[idx] = img[rowBase+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// AddChannelBias adds a per-channel bias to an NCHW tensor in place.
func AddChannelBias(t, bias *Tensor) (*Tensor, error) {
	if t.Rank() != 4 || bias.Rank() != 1 || bias.shape[0] != t.shape[1] {
		return nil, fmt.Errorf("tensor: AddChannelBias shape mismatch %v + %v", t.shape, bias.shape)
	}
	hw := t.shape[2] * t.shape[3]
	c := t.shape[1]
	for n := 0; n < t.shape[0]; n++ {
		for ch := 0; ch < c; ch++ {
			b := bias.data[ch]
			base := (n*c + ch) * hw
			seg := t.data[base : base+hw]
			for i := range seg {
				seg[i] += b
			}
		}
	}
	return t, nil
}

// MaxPool2D applies kxk max pooling with the given stride to an NCHW tensor.
func MaxPool2D(in *Tensor, k, stride, pad int) (*Tensor, error) {
	if in.Rank() != 4 {
		return nil, fmt.Errorf("tensor: MaxPool2D requires NCHW, got %v", in.shape)
	}
	n, c, h, w := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	oh := (h+2*pad-k)/stride + 1
	ow := (w+2*pad-k)/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("tensor: MaxPool2D output would be empty for input %v k=%d", in.shape, k)
	}
	out := New(n, c, oh, ow)
	MaxPool2DInto(out, in, k, stride, pad)
	return out, nil
}

// MaxPool2DInto applies kxk max pooling into dst, which must already have
// the pooled NCHW shape. It allocates nothing and panics on shape
// mismatch (plan-compile-validated hot kernel).
func MaxPool2DInto(dst, in *Tensor, k, stride, pad int) {
	n, c, h, w := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	oh := (h+2*pad-k)/stride + 1
	ow := (w+2*pad-k)/stride + 1
	if dst.shape[0] != n || dst.shape[1] != c || dst.shape[2] != oh || dst.shape[3] != ow {
		panic(fmt.Sprintf("tensor: MaxPool2DInto dst shape %v, want [%d %d %d %d]", dst.shape, n, c, oh, ow))
	}
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			src := in.data[(img*c+ch)*h*w:]
			out := dst.data[(img*c+ch)*oh*ow:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					for ky := 0; ky < k; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							if v := src[iy*w+ix]; v > best {
								best = v
							}
						}
					}
					out[oy*ow+ox] = best
				}
			}
		}
	}
}

// GlobalAvgPool2D averages each channel of an NCHW tensor to 1×1, returning
// an n×c rank-2 tensor.
func GlobalAvgPool2D(in *Tensor) (*Tensor, error) {
	if in.Rank() != 4 {
		return nil, fmt.Errorf("tensor: GlobalAvgPool2D requires NCHW, got %v", in.shape)
	}
	n, c := in.shape[0], in.shape[1]
	hw := in.shape[2] * in.shape[3]
	if hw == 0 {
		return nil, fmt.Errorf("tensor: GlobalAvgPool2D over empty spatial dims %v", in.shape)
	}
	out := New(n, c)
	GlobalAvgPool2DInto(out, in)
	return out, nil
}

// GlobalAvgPool2DInto averages each channel of an NCHW tensor into dst,
// an already-shaped n×c rank-2 tensor. It allocates nothing and panics
// on shape mismatch (plan-compile-validated hot kernel).
func GlobalAvgPool2DInto(dst, in *Tensor) {
	n, c := in.shape[0], in.shape[1]
	hw := in.shape[2] * in.shape[3]
	if dst.shape[0] != n || dst.shape[1] != c {
		panic(fmt.Sprintf("tensor: GlobalAvgPool2DInto dst shape %v, want [%d %d]", dst.shape, n, c))
	}
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			seg := in.data[(img*c+ch)*hw : (img*c+ch+1)*hw]
			var s float64
			for _, v := range seg {
				s += float64(v)
			}
			dst.data[img*c+ch] = float32(s / float64(hw))
		}
	}
}
