package tensor

import "fmt"

// Quantized int8 inference kernels (docs/QUANTIZATION.md).
//
// The scheme is post-training static quantization: weights are symmetric
// per-channel int8 (zero point 0, one scale per output channel),
// activations are asymmetric per-tensor int8 (one scale + zero point
// covering the calibrated range, widened so the real value 0 is exactly
// representable — padding then quantizes to the zero point). Matrix
// products accumulate in int32 and dequantize with precomputed
// per-channel multipliers, so the float work per output element is one
// multiply.
//
// The int8 GEMM does not use byte-wise multiply-accumulate (Go has no
// vector intrinsics and a scalar int8 loop loses to the float32 blocked
// kernel). Instead it packs two k-steps per uint64 lane and uses one
// 64-bit integer multiply as a 2-way multiply-accumulate — see the
// layout notes on PackLHS/PackRHS and the derivation on MaxQMatMulK.

// MaxQMatMulK bounds the reduction depth of the packed int8 GEMM.
// Three constraints from the SWAR accumulation, with unsigned operands
// u ≤ 255 so each pair product is ≤ 255·255 = 65025:
//
//   - the low 32 bits of the uint64 accumulator collect ⌈k/2⌉ cross
//     products that must never carry into bit 32: k/2 · 65025 < 2³²
//   - the middle lane collects the true unsigned dot product, which
//     must stay below 2³² for exact extraction: k · 65025 < 2³²
//   - the signed result after zero-point correction must fit int32
//
// k ≤ 32768 satisfies all three with ~2× headroom and covers every
// layer in the model zoo (the deepest reduction is 4608 = 512·3·3).
const MaxQMatMulK = 32768

// QTensor is an int8 tensor with its quantization parameters and,
// optionally, the packed forms the int8 GEMM consumes. scales/zps hold
// one entry for per-tensor quantization (axis < 0) or one per channel
// along axis. The packed forms are role-specific: PackLHS prepares the
// tensor as a GEMM left operand (rows), PackRHS as a right operand
// (column panels); either may be absent.
type QTensor struct {
	shape  []int
	data   []int8
	scales []float32
	zps    []int32
	axis   int

	lhs  []uint64 // k-pair packed rows: lo lane = even k-step, hi = odd
	rsum []int32  // per row: 128 · Σ unsigned(data)
	rhs  []uint64 // k-pair packed 4-column panels, pair-REVERSED lanes
	csum []int32  // per column: Σ signed(data)
}

// NewQ returns a zero-valued QTensor of the given shape with identity
// quantization parameters (scale 1, zero point 0, per-tensor).
func NewQ(shape ...int) *QTensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: NewQ with non-positive dim %v", shape))
		}
		n *= d
	}
	return &QTensor{
		shape:  append([]int(nil), shape...),
		data:   make([]int8, n),
		scales: []float32{1},
		zps:    []int32{0},
		axis:   -1,
	}
}

// Shape returns the dimensions. Callers must not mutate it.
func (q *QTensor) Shape() []int { return q.shape }

// Rank returns the number of dimensions.
func (q *QTensor) Rank() int { return len(q.shape) }

// Dim returns the size of dimension i.
func (q *QTensor) Dim(i int) int { return q.shape[i] }

// Len returns the number of elements.
func (q *QTensor) Len() int { return len(q.data) }

// Data returns the int8 storage in row-major order.
func (q *QTensor) Data() []int8 { return q.data }

// Scales returns the quantization scales: one entry per-tensor, or one
// per channel along Axis.
func (q *QTensor) Scales() []float32 { return q.scales }

// ZeroPoints returns the zero points matching Scales (symmetric
// per-channel weights always carry zero).
func (q *QTensor) ZeroPoints() []int32 { return q.zps }

// Axis returns the quantized axis, or -1 for per-tensor parameters.
func (q *QTensor) Axis() int { return q.axis }

// ColSums returns the per-column signed sums built by PackRHS (needed
// to fold the activation zero point into the bias).
func (q *QTensor) ColSums() []int32 { return q.csum }

// SetParams installs per-tensor quantization parameters.
func (q *QTensor) SetParams(scale float32, zp int32) {
	q.scales = q.scales[:0]
	q.scales = append(q.scales, scale)
	q.zps = q.zps[:0]
	q.zps = append(q.zps, zp)
	q.axis = -1
}

// kwords returns how many uint64 pair-words hold a k-deep row.
func kwords(k int) int { return (k + 1) / 2 }

// ensureLHS sizes the packed-LHS buffers for an [m,k] tensor. Reslices
// in place when capacity allows, so it only allocates the first time
// (arena-pooled QTensors keep their capacity across recycling).
func (q *QTensor) ensureLHS(m, k int) {
	need := m * kwords(k)
	if cap(q.lhs) >= need {
		q.lhs = q.lhs[:need]
	} else {
		q.lhs = make([]uint64, need)
	}
	if cap(q.rsum) >= m {
		q.rsum = q.rsum[:m]
	} else {
		q.rsum = make([]int32, m)
	}
}

// AffineParams derives per-tensor asymmetric int8 parameters covering
// [min, max]. The range is widened to include 0 so the real value 0
// maps exactly onto the zero point (convolution padding depends on
// this). A degenerate range yields identity parameters.
func AffineParams(min, max float32) (scale float32, zp int32) {
	if min > 0 {
		min = 0
	}
	if max < 0 {
		max = 0
	}
	if max == min {
		return 1, 0
	}
	scale = (max - min) / 255
	z := -128 - min/scale
	if z >= 0 {
		z += 0.5
	} else {
		z -= 0.5
	}
	zp = int32(z)
	if zp > 127 {
		zp = 127
	} else if zp < -128 {
		zp = -128
	}
	return scale, zp
}

// SymmetricScale derives a symmetric int8 scale for values in
// [-maxAbs, maxAbs] (zero point 0). An all-zero channel gets scale 1
// so dequantization stays well-defined.
func SymmetricScale(maxAbs float32) float32 {
	if maxAbs <= 0 {
		return 1
	}
	return maxAbs / 127
}

// quantizeVal maps one float to int8: divide by scale (inv = 1/scale),
// round half away from zero, shift by the zero point, saturate.
func quantizeVal(v, inv float32, zp int32) int8 {
	f := v * inv
	if f >= 0 {
		f += 0.5
	} else {
		f -= 0.5
	}
	// Pre-saturate in float space: Go's float→int conversion is
	// implementation-defined out of range, and ±512 already saturates
	// for every zero point. The negated comparison routes NaN (which
	// calibration can't produce) to the low clamp deterministically.
	if f > 512 {
		f = 512
	} else if !(f >= -512) {
		f = -512
	}
	qv := int32(f) + zp
	if qv > 127 {
		qv = 127
	} else if qv < -128 {
		qv = -128
	}
	return int8(qv)
}

// QuantizeInto quantizes src into q's data with the given per-tensor
// parameters, without building packed forms (convolution inputs are
// packed per image by the fused im2col instead).
func QuantizeInto(q *QTensor, src []float32, scale float32, zp int32) {
	if len(src) != len(q.data) {
		panic(fmt.Sprintf("tensor: QuantizeInto src len %d vs tensor len %d", len(src), len(q.data)))
	}
	q.SetParams(scale, zp)
	inv := 1 / scale
	for i, v := range src {
		q.data[i] = quantizeVal(v, inv, zp)
	}
}

// QuantizeLHSInto quantizes a row-major [m,k] float32 batch into q and
// builds the packed-LHS form in the same pass: each pair of adjacent
// k-steps becomes one uint64 word (low lane = even step, high lane =
// odd step) of the sign-flipped unsigned values u = uint8(q)^0x80, and
// rsum collects 128·Σu per row for the epilogue correction. q must be
// [m,k] with LHS buffers sized (arena GetQ does both).
func QuantizeLHSInto(q *QTensor, src []float32, scale float32, zp int32) {
	if q.Rank() != 2 {
		panic(fmt.Sprintf("tensor: QuantizeLHSInto needs a rank-2 tensor, got %v", q.shape))
	}
	m, k := q.shape[0], q.shape[1]
	if len(src) != m*k {
		panic(fmt.Sprintf("tensor: QuantizeLHSInto src len %d vs %dx%d", len(src), m, k))
	}
	kw := kwords(k)
	if len(q.lhs) < m*kw || len(q.rsum) < m {
		panic("tensor: QuantizeLHSInto packed buffers not sized (PackLHS or arena GetQ first)")
	}
	q.SetParams(scale, zp)
	inv := 1 / scale
	for i := 0; i < m; i++ {
		row := src[i*k : i*k+k]
		drow := q.data[i*k : i*k+k]
		lrow := q.lhs[i*kw : i*kw+kw]
		var r int32
		p := 0
		for ; p+2 <= k; p += 2 {
			q0 := quantizeVal(row[p], inv, zp)
			q1 := quantizeVal(row[p+1], inv, zp)
			drow[p], drow[p+1] = q0, q1
			u0 := uint64(uint8(q0) ^ 0x80)
			u1 := uint64(uint8(q1) ^ 0x80)
			r += int32(u0) + int32(u1)
			lrow[p>>1] = u0 | u1<<32
		}
		if p < k {
			q0 := quantizeVal(row[p], inv, zp)
			drow[p] = q0
			u0 := uint64(uint8(q0) ^ 0x80)
			r += int32(u0)
			lrow[p>>1] = u0
		}
		q.rsum[i] = 128 * r
	}
}

// PackLHS builds the packed-LHS form from q's existing int8 data (see
// QuantizeLHSInto for the layout). Cold path: grows the buffers.
func PackLHS(q *QTensor) {
	if q.Rank() != 2 {
		panic(fmt.Sprintf("tensor: PackLHS needs a rank-2 tensor, got %v", q.shape))
	}
	m, k := q.shape[0], q.shape[1]
	kw := kwords(k)
	q.ensureLHS(m, k)
	for i := 0; i < m; i++ {
		drow := q.data[i*k : i*k+k]
		lrow := q.lhs[i*kw : i*kw+kw]
		var r int32
		p := 0
		for ; p+2 <= k; p += 2 {
			u0 := uint64(uint8(drow[p]) ^ 0x80)
			u1 := uint64(uint8(drow[p+1]) ^ 0x80)
			r += int32(u0) + int32(u1)
			lrow[p>>1] = u0 | u1<<32
		}
		if p < k {
			u0 := uint64(uint8(drow[p]) ^ 0x80)
			r += int32(u0)
			lrow[p>>1] = u0
		}
		q.rsum[i] = 128 * r
	}
}

// PackRHS builds the packed-RHS form from q's int8 data, viewed as a
// [k,n] matrix: columns are grouped into panels of 4, and within a
// panel each k-pair becomes one uint64 word with the lanes REVERSED
// relative to the LHS (low lane = odd k-step, high = even), so that a
// single 64-bit multiply of an LHS word by an RHS word accumulates
// both pair products into bits 32..63. Also collects per-column signed
// sums for the zero-point correction. Cold path: called once per
// weight matrix at plan-compile time.
func PackRHS(q *QTensor) {
	if q.Rank() != 2 {
		panic(fmt.Sprintf("tensor: PackRHS needs a rank-2 tensor, got %v", q.shape))
	}
	k, n := q.shape[0], q.shape[1]
	kw := kwords(k)
	np := (n + 3) / 4
	need := np * kw * 4
	if cap(q.rhs) >= need {
		q.rhs = q.rhs[:need]
	} else {
		q.rhs = make([]uint64, need)
	}
	if cap(q.csum) >= n {
		q.csum = q.csum[:n]
	} else {
		q.csum = make([]int32, n)
	}
	for j := 0; j < n; j++ {
		var c int32
		for p := 0; p < k; p++ {
			c += int32(q.data[p*n+j])
		}
		q.csum[j] = c
	}
	for jp := 0; jp < np; jp++ {
		for w := 0; w < kw; w++ {
			for jj := 0; jj < 4; jj++ {
				j := jp*4 + jj
				var hi, lo uint64
				if j < n {
					hi = uint64(uint8(q.data[(2*w)*n+j]) ^ 0x80)
					if 2*w+1 < k {
						lo = uint64(uint8(q.data[(2*w+1)*n+j]) ^ 0x80)
					}
				}
				q.rhs[(jp*kw+w)*4+jj] = hi<<32 | lo
			}
		}
	}
}

// QMatMulInto computes acc = a·b over the packed int8 forms, leaving
// the raw int32 accumulators (zero-point-corrected signed dot
// products) in acc, row-major [m,n]. a must be LHS-packed [m,k] and b
// RHS-packed [k,n]; add bias with QAddBiasInto and map to float32 with
// DequantizeAccInto.
func QMatMulInto(acc []int32, a, b *QTensor) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: QMatMulInto needs rank-2 operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: QMatMulInto inner dims %d vs %d", k, b.shape[0]))
	}
	n := b.shape[1]
	if k > MaxQMatMulK {
		panic(fmt.Sprintf("tensor: QMatMulInto k=%d exceeds MaxQMatMulK=%d", k, MaxQMatMulK))
	}
	kw := kwords(k)
	if len(a.lhs) < m*kw || len(a.rsum) < m {
		panic("tensor: QMatMulInto left operand not LHS-packed")
	}
	if len(b.rhs) < (n+3)/4*kw*4 || len(b.csum) < n {
		panic("tensor: QMatMulInto right operand not RHS-packed")
	}
	if len(acc) < m*n {
		panic(fmt.Sprintf("tensor: QMatMulInto acc len %d < %d", len(acc), m*n))
	}
	qMatMulPacked(acc, a.lhs, a.rsum, b.rhs, b.csum, m, k, n)
}

// qMatMulPacked is the packed int8 GEMM core. Each uint64 multiply of
// an LHS pair-word by a pair-reversed RHS word lands the sum of both
// pair products in bits 32..63; accumulating the words keeps the
// running unsigned dot product there (MaxQMatMulK guarantees the low
// lane never carries in). Four column accumulators per row with a 4-way
// k-unroll keep everything in registers, and the single three-index
// subslice per unrolled block eliminates the inner bounds checks.
func qMatMulPacked(acc []int32, ap []uint64, rsum []int32, panels []uint64, csum []int32, m, k, n int) {
	kw := kwords(k)
	np := (n + 3) / 4
	for jp := 0; jp < np; jp++ {
		pp := panels[jp*kw*4 : (jp+1)*kw*4 : (jp+1)*kw*4]
		j := jp * 4
		for i := 0; i < m; i++ {
			a0 := ap[i*kw : (i+1)*kw : (i+1)*kw]
			var p0, p1, p2, p3 uint64
			w := 0
			for ; w+4 <= kw; w += 4 {
				x0 := a0[w]
				x1 := a0[w+1]
				x2 := a0[w+2]
				x3 := a0[w+3]
				bi := 4 * w
				b := pp[bi : bi+16 : bi+16]
				p0 += x0*b[0] + x1*b[4] + x2*b[8] + x3*b[12]
				p1 += x0*b[1] + x1*b[5] + x2*b[9] + x3*b[13]
				p2 += x0*b[2] + x1*b[6] + x2*b[10] + x3*b[14]
				p3 += x0*b[3] + x1*b[7] + x2*b[11] + x3*b[15]
			}
			for ; w < kw; w++ {
				x0 := a0[w]
				bi := 4 * w
				b := pp[bi : bi+4 : bi+4]
				p0 += x0 * b[0]
				p1 += x0 * b[1]
				p2 += x0 * b[2]
				p3 += x0 * b[3]
			}
			store4q(acc[i*n:], j, n, p0, p1, p2, p3, rsum[i], csum)
		}
	}
}

// store4q extracts the middle lanes of four column accumulators and
// applies the unsigned→signed correction: with u = q+128 on both
// sides, Σ qa·qb = Σ ua·ub − 128·Σua − 128·Σub − 128²·k, and the last
// two terms fold into csum (which is Σ qb = Σ ub − 128k). Panel-tail
// columns past n are computed but never stored.
func store4q(acc []int32, j, n int, w0, w1, w2, w3 uint64, rc int32, csum []int32) {
	if j >= n {
		return
	}
	acc[j] = int32(uint32(w0>>32)) - rc - 128*csum[j]
	if j+1 < n {
		acc[j+1] = int32(uint32(w1>>32)) - rc - 128*csum[j+1]
	}
	if j+2 < n {
		acc[j+2] = int32(uint32(w2>>32)) - rc - 128*csum[j+2]
	}
	if j+3 < n {
		acc[j+3] = int32(uint32(w3>>32)) - rc - 128*csum[j+3]
	}
}

// QAddBiasInto adds a precomputed int32 bias vector to every row of a
// row-major [rows, cols] accumulator block. The bias folds both the
// real layer bias (in accumulator units) and the activation zero-point
// correction −zp·Σw per column (model.QuantizePlan builds it).
func QAddBiasInto(acc []int32, bias []int32, rows, cols int) {
	if len(bias) < cols || len(acc) < rows*cols {
		panic(fmt.Sprintf("tensor: QAddBiasInto acc %d bias %d for %dx%d", len(acc), len(bias), rows, cols))
	}
	for i := 0; i < rows; i++ {
		row := acc[i*cols : i*cols+cols]
		for j, b := range bias[:cols] {
			row[j] += b
		}
	}
}

// DequantizeAccInto maps int32 accumulators to float32 with one
// per-column multiplier (inputScale · weightScale[col]), row-major
// [rows, cols].
func DequantizeAccInto(dst []float32, acc []int32, mult []float32, rows, cols int) {
	if len(dst) < rows*cols || len(acc) < rows*cols || len(mult) < cols {
		panic(fmt.Sprintf("tensor: DequantizeAccInto dst %d acc %d mult %d for %dx%d", len(dst), len(acc), len(mult), rows, cols))
	}
	for i := 0; i < rows; i++ {
		d := dst[i*cols : i*cols+cols]
		a := acc[i*cols : i*cols+cols]
		for j := range d {
			d[j] = float32(a[j]) * mult[j]
		}
	}
}

// DequantizeAccTInto maps the im2col GEMM's patch-major accumulators
// [nImg][patches, oc] to channel-major NCHW float32 output
// [nImg, oc, patches], applying the per-channel multipliers.
func DequantizeAccTInto(dst []float32, acc []int32, mult []float32, nImg, patches, oc int) {
	if len(dst) < nImg*patches*oc || len(acc) < nImg*patches*oc || len(mult) < oc {
		panic(fmt.Sprintf("tensor: DequantizeAccTInto dst %d acc %d mult %d for %dx%dx%d", len(dst), len(acc), len(mult), nImg, patches, oc))
	}
	for img := 0; img < nImg; img++ {
		a := acc[img*patches*oc : (img+1)*patches*oc]
		d := dst[img*patches*oc : (img+1)*patches*oc]
		for c := 0; c < oc; c++ {
			mc := mult[c]
			out := d[c*patches : c*patches+patches]
			for p := range out {
				out[p] = float32(a[p*oc+c]) * mc
			}
		}
	}
}

// RequantizeInto maps int32 accumulators back to int8 with per-column
// multipliers and a destination zero point: q = round(acc·mult) + zp,
// saturated. The planned forward pass dequantizes to float32 at op
// boundaries instead; this exists for fully-int pipelines and the
// property-test suite.
func RequantizeInto(q *QTensor, acc []int32, mult []float32, scale float32, zp int32, rows, cols int) {
	if len(q.data) < rows*cols || len(acc) < rows*cols || len(mult) < cols {
		panic(fmt.Sprintf("tensor: RequantizeInto dst %d acc %d mult %d for %dx%d", len(q.data), len(acc), len(mult), rows, cols))
	}
	q.SetParams(scale, zp)
	for i := 0; i < rows; i++ {
		d := q.data[i*cols : i*cols+cols]
		a := acc[i*cols : i*cols+cols]
		for j := range d {
			f := float32(a[j]) * mult[j]
			if f >= 0 {
				f += 0.5
			} else {
				f -= 0.5
			}
			v := int32(f) + zp
			if v > 127 {
				v = 127
			} else if v < -128 {
				v = -128
			}
			d[j] = int8(v)
		}
	}
}

// DequantizeInto expands a QTensor back to float32:
// v = (q − zp) · scale, with per-channel parameters along Axis when
// set.
func DequantizeInto(dst []float32, q *QTensor) {
	if len(dst) < len(q.data) {
		panic(fmt.Sprintf("tensor: DequantizeInto dst len %d < %d", len(dst), len(q.data)))
	}
	if q.axis < 0 {
		s, zp := q.scales[0], q.zps[0]
		for i, v := range q.data {
			dst[i] = float32(int32(v)-zp) * s
		}
		return
	}
	inner := 1
	for _, d := range q.shape[q.axis+1:] {
		inner *= d
	}
	ch := q.shape[q.axis]
	for i, v := range q.data {
		c := (i / inner) % ch
		dst[i] = float32(int32(v)-q.zps[c]) * q.scales[c]
	}
}

// im2colQ lowers one quantized image [c,h,w] directly into the
// packed-LHS form of the patch matrix [oh·ow, c·kh·kw]: each output
// position's receptive field becomes one packed row (k-pairs of
// unsigned values, out-of-bounds taps filled with the zero point,
// which dequantizes to 0) and rsum collects the row corrections. This
// fuses quantized im2col and LHS packing into a single pass so the
// int8 patch matrix never materializes.
func im2colQ(lhs []uint64, rsum []int32, img []int8, zp int8, c, h, w, kh, kw, oh, ow, stride, pad int) {
	kt := c * kh * kw
	kwrd := kwords(kt)
	uzp := uint64(uint8(zp) ^ 0x80)
	patch := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := lhs[patch*kwrd : patch*kwrd+kwrd]
			iy0 := oy*stride - pad
			ix0 := ox*stride - pad
			var r int32
			var word uint64
			p := 0
			for ch := 0; ch < c; ch++ {
				plane := img[ch*h*w : (ch+1)*h*w]
				for ky := 0; ky < kh; ky++ {
					iy := iy0 + ky
					for kx := 0; kx < kw; kx++ {
						u := uzp
						if iy >= 0 && iy < h {
							ix := ix0 + kx
							if ix >= 0 && ix < w {
								u = uint64(uint8(plane[iy*w+ix]) ^ 0x80)
							}
						}
						r += int32(u)
						if p&1 == 0 {
							word = u
						} else {
							row[p>>1] = word | u<<32
						}
						p++
					}
				}
			}
			if p&1 == 1 {
				row[p>>1] = word
			}
			rsum[patch] = 128 * r
			patch++
		}
	}
}

// QConv2DInto runs a quantized 2D convolution as im2col + packed int8
// GEMM. in is NCHW [n,c,h,w] with per-tensor parameters; weights must
// come from QuantizeConvWeights (RHS-packed [c·kh·kw, oc]); kh/kw are
// the original kernel window (the packed layout erases them). Raw
// int32 accumulators land patch-major in acc as [n][oh·ow, oc] — add
// bias with QAddBiasInto over n·oh·ow rows and transpose out with
// DequantizeAccTInto. lhs and rsum are caller scratch for one image's
// packed patch matrix (lens oh·ow·⌈k/2⌉ and oh·ow; arena GetU64 /
// GetAcc).
func QConv2DInto(acc []int32, in, weights *QTensor, kh, kw, stride, pad int, lhs []uint64, rsum []int32) {
	if in.Rank() != 4 || weights.Rank() != 2 {
		panic(fmt.Sprintf("tensor: QConv2DInto needs NCHW input and packed [k,oc] weights, got %v x %v", in.shape, weights.shape))
	}
	n, c, h, w := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	kt, oc := weights.shape[0], weights.shape[1]
	if kt != c*kh*kw {
		panic(fmt.Sprintf("tensor: QConv2DInto weight depth %d vs %d channels x %dx%d window", kt, c, kh, kw))
	}
	if kt > MaxQMatMulK {
		panic(fmt.Sprintf("tensor: QConv2DInto k=%d exceeds MaxQMatMulK=%d", kt, MaxQMatMulK))
	}
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	patches := oh * ow
	kwrd := kwords(kt)
	if len(lhs) < patches*kwrd || len(rsum) < patches {
		panic(fmt.Sprintf("tensor: QConv2DInto scratch lhs %d rsum %d for %d patches x %d words", len(lhs), len(rsum), patches, kwrd))
	}
	if len(acc) < n*patches*oc {
		panic(fmt.Sprintf("tensor: QConv2DInto acc len %d < %d", len(acc), n*patches*oc))
	}
	if len(weights.rhs) < (oc+3)/4*kwrd*4 || len(weights.csum) < oc {
		panic("tensor: QConv2DInto weights not RHS-packed (QuantizeConvWeights)")
	}
	zp := int8(in.zps[0])
	for img := 0; img < n; img++ {
		im2colQ(lhs, rsum, in.data[img*c*h*w:(img+1)*c*h*w], zp, c, h, w, kh, kw, oh, ow, stride, pad)
		qMatMulPacked(acc[img*patches*oc:], lhs, rsum, weights.rhs, weights.csum, patches, kt, oc)
	}
}

// QuantizeDenseWeights quantizes a [k,n] float32 weight matrix with
// symmetric per-column scales (each column is one output feature) and
// builds the RHS-packed form. Cold path: runs once at plan compile.
func QuantizeDenseWeights(w *Tensor) *QTensor {
	if w.Rank() != 2 {
		panic(fmt.Sprintf("tensor: QuantizeDenseWeights needs [k,n], got %v", w.Shape()))
	}
	k, n := w.Dim(0), w.Dim(1)
	wd := w.Data()
	q := NewQ(k, n)
	q.scales = make([]float32, n)
	q.zps = make([]int32, n)
	q.axis = 1
	for j := 0; j < n; j++ {
		var maxAbs float32
		for p := 0; p < k; p++ {
			v := wd[p*n+j]
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		s := SymmetricScale(maxAbs)
		q.scales[j] = s
		inv := 1 / s
		for p := 0; p < k; p++ {
			q.data[p*n+j] = quantizeVal(wd[p*n+j], inv, 0)
		}
	}
	PackRHS(q)
	return q
}

// QuantizeConvWeights quantizes an [oc,ic,kh,kw] float32 convolution
// kernel with symmetric per-output-channel scales, laid out transposed
// as [ic·kh·kw, oc] to match im2colQ's patch rows, and builds the
// RHS-packed form. Cold path: runs once at plan compile.
func QuantizeConvWeights(w *Tensor) *QTensor {
	if w.Rank() != 4 {
		panic(fmt.Sprintf("tensor: QuantizeConvWeights needs [oc,ic,kh,kw], got %v", w.Shape()))
	}
	oc, ic, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	kt := ic * kh * kw
	wd := w.Data()
	q := NewQ(kt, oc)
	q.scales = make([]float32, oc)
	q.zps = make([]int32, oc)
	q.axis = 1
	for j := 0; j < oc; j++ {
		var maxAbs float32
		for p := 0; p < kt; p++ {
			v := wd[j*kt+p]
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		s := SymmetricScale(maxAbs)
		q.scales[j] = s
		inv := 1 / s
		for p := 0; p < kt; p++ {
			q.data[p*oc+j] = quantizeVal(wd[j*kt+p], inv, 0)
		}
	}
	PackRHS(q)
	return q
}
