package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

// assertZeroAllocs runs f under AllocsPerRun and fails unless the
// steady state is allocation-free. Under -race the exact-zero check is
// skipped (the race runtime allocates shadow memory) but f still runs.
func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	allocs := testing.AllocsPerRun(5, f)
	if raceEnabled {
		return
	}
	if allocs != 0 {
		t.Errorf("%s: %v allocs/op in steady state, want 0", name, allocs)
	}
}

// TestIntoKernelsMatchAndDontAllocate checks every Into-variant kernel
// against its allocating counterpart (bit-identical) and asserts the
// Into path is allocation-free.
func TestIntoKernelsMatchAndDontAllocate(t *testing.T) {
	r := rand.New(rand.NewSource(99))

	a := randTensor(r, 7, 13)
	b := randTensor(r, 13, 9)
	want, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dst := New(7, 9)
	assertZeroAllocs(t, "MatMulInto", func() { MatMulInto(dst, a, b) })
	if !bitEqual(dst, want) {
		t.Error("MatMulInto differs from MatMul")
	}

	bias := randTensor(r, 9)
	wantBias := want.Clone()
	if _, err := AddBias(wantBias, bias); err != nil {
		t.Fatal(err)
	}
	assertZeroAllocs(t, "AddBiasInto", func() { AddBiasInto(dst, dst, bias) })
	// dst has accumulated bias repeatedly; redo once cleanly for the value check.
	MatMulInto(dst, a, b)
	AddBiasInto(dst, dst, bias)
	if !bitEqual(dst, wantBias) {
		t.Error("AddBiasInto differs from AddBias")
	}

	sm := randTensor(r, 5, 11)
	wantSm := sm.Clone()
	if _, err := Softmax(wantSm); err != nil {
		t.Fatal(err)
	}
	dstSm := New(5, 11)
	assertZeroAllocs(t, "SoftmaxInto", func() { SoftmaxInto(dstSm, sm) })
	if !bitEqual(dstSm, wantSm) {
		t.Error("SoftmaxInto differs from Softmax")
	}

	in := randTensor(r, 2, 3, 12, 12)
	kern := randTensor(r, 4, 3, 3, 3)
	wantConv, err := Conv2D(in, kern, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	col := make([]float32, Conv2DScratchLen(in, kern, 2, 1))
	oh, ow := Conv2DOutDims(in, kern, 2, 1)
	dstConv := New(2, 4, oh, ow)
	assertZeroAllocs(t, "Conv2DInto", func() { Conv2DInto(dstConv, in, kern, 2, 1, col) })
	if !bitEqual(dstConv, wantConv) {
		t.Error("Conv2DInto differs from Conv2D")
	}

	wantRef, err := Conv2DReference(in, kern, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertZeroAllocs(t, "Conv2DReferenceInto", func() { Conv2DReferenceInto(dstConv, in, kern, 2, 1, col) })
	if !bitEqual(dstConv, wantRef) {
		t.Error("Conv2DReferenceInto differs from Conv2DReference")
	}

	wantPool, err := MaxPool2D(in, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	dstPool := New(wantPool.Shape()...)
	assertZeroAllocs(t, "MaxPool2DInto", func() { MaxPool2DInto(dstPool, in, 3, 2, 1) })
	if !bitEqual(dstPool, wantPool) {
		t.Error("MaxPool2DInto differs from MaxPool2D")
	}

	wantAvg, err := GlobalAvgPool2D(in)
	if err != nil {
		t.Fatal(err)
	}
	dstAvg := New(wantAvg.Shape()...)
	assertZeroAllocs(t, "GlobalAvgPool2DInto", func() { GlobalAvgPool2DInto(dstAvg, in) })
	if !bitEqual(dstAvg, wantAvg) {
		t.Error("GlobalAvgPool2DInto differs from GlobalAvgPool2D")
	}
}

// TestWinogradApplyInto checks the fast-kernel Into path against Apply
// and asserts it is allocation-free with caller scratch.
func TestWinogradApplyInto(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	in := randTensor(r, 2, 3, 10, 10)
	kern := randTensor(r, 4, 3, 3, 3)
	wc, err := NewWinogradConv(kern)
	if err != nil {
		t.Fatal(err)
	}
	want, err := wc.Apply(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := wc.NewScratch(10, 10, 1)
	dst := New(want.Shape()...)
	assertZeroAllocs(t, "WinogradConv.ApplyInto", func() { wc.ApplyInto(dst, in, 1, sc) })
	if !bitEqual(dst, want) {
		t.Error("ApplyInto differs from Apply")
	}
}

// TestMatMulParallelInto checks the pooled fan-out kernel: bit-identical
// to the sequential kernel at several worker counts, and allocation-free
// once the pool and join point exist.
func TestMatMulParallelInto(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	a := randTensor(r, 33, 19)
	b := randTensor(r, 19, 23)
	want, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewWorkPool(3)
	defer pool.Close()
	var wg sync.WaitGroup
	dst := New(33, 23)
	for _, workers := range []int{1, 2, 4, 7} {
		dst.Fill(-1)
		MatMulParallelInto(dst, a, b, workers, pool, &wg)
		if !bitEqual(dst, want) {
			t.Errorf("workers=%d: pooled result differs from MatMul", workers)
		}
	}
	assertZeroAllocs(t, "MatMulParallelInto", func() { MatMulParallelInto(dst, a, b, 4, pool, &wg) })

	// The pooled conv path shares the fan-out.
	in := randTensor(r, 1, 3, 9, 9)
	kern := randTensor(r, 5, 3, 3, 3)
	wantConv, err := Conv2DParallel(in, kern, 1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	col := make([]float32, Conv2DScratchLen(in, kern, 1, 1))
	dstConv := New(wantConv.Shape()...)
	assertZeroAllocs(t, "Conv2DPoolInto", func() { Conv2DPoolInto(dstConv, in, kern, 1, 1, col, 4, pool, &wg) })
	if !bitEqual(dstConv, wantConv) {
		t.Error("Conv2DPoolInto differs from Conv2DParallel")
	}
}

// TestParallelMatMulEvenSplit pins the satellite fix: with the even ±1
// split, MatMulParallel stays correct when the row count is not a
// multiple of the worker count — including the shapes where ceil
// chunking used to idle trailing workers (e.g. 10 rows / 4 workers ->
// chunks 3,3,3,1; now 3,3,2,2).
func TestParallelMatMulEvenSplit(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, m := range []int{1, 2, 3, 5, 10, 16, 17} {
		a := randTensor(r, m, 6)
		b := randTensor(r, 6, 4)
		want, err := MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 4, 8, m + 3} {
			got, err := MatMulParallel(a, b, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !bitEqual(got, want) {
				t.Errorf("m=%d workers=%d: parallel result differs", m, workers)
			}
		}
	}
}

// TestArena exercises the arena contract: exact-shape reuse, same-class
// reslicing, early Recycle, Wrap isolation, and the hit/miss counters.
func TestArena(t *testing.T) {
	var a Arena

	t1 := a.Get(4, 8)
	if got := t1.Shape(); got[0] != 4 || got[1] != 8 {
		t.Fatalf("Get shape %v", got)
	}
	if h, m := a.Stats(); h != 0 || m != 1 {
		t.Fatalf("after first Get: hits=%d misses=%d", h, m)
	}
	a.Reset()

	// Exact-shape reuse: same header and data come back.
	t2 := a.Get(4, 8)
	if t2 != t1 {
		t.Error("exact-shape Get did not reuse the recycled tensor")
	}
	if h, _ := a.Stats(); h != 1 {
		t.Errorf("exact-shape reuse not counted as hit")
	}
	a.Reset()

	// Same class, different shape: data buffer is reused in place.
	t3 := a.Get(2, 16)
	if h, m := a.Stats(); h != 2 || m != 1 {
		t.Errorf("class reuse: hits=%d misses=%d, want 2 and 1", h, m)
	}
	if t3.Len() != 32 {
		t.Errorf("resliced tensor length %d", t3.Len())
	}

	// Early recycle feeds the next Get without new allocation.
	a.Recycle(t3)
	t4 := a.Get(2, 16)
	if t4 != t3 {
		t.Error("Recycle did not return the buffer to the free list")
	}
	a.Reset()

	// Wrap headers view caller data and never enter the buffer lists.
	data := []float32{1, 2, 3, 4, 5, 6}
	w := a.Wrap(data, 2, 3)
	if &w.Data()[0] != &data[0] {
		t.Error("Wrap copied instead of viewing")
	}
	a.Recycle(w) // must be ignored: not arena-owned
	got := a.Get(2, 3)
	if len(got.Data()) == len(data) && &got.Data()[0] == &data[0] {
		t.Error("caller-owned data leaked into the arena free lists")
	}
	a.Reset()
	if w.Data() != nil {
		t.Error("Reset did not release the Wrap header's view")
	}

	// Steady state: a fixed Get pattern allocates nothing.
	a.Reset()
	shape1, shape2 := []int{3, 5}, []int{4, 4, 2}
	warm := func() {
		x := a.Get(shape1...)
		y := a.Get(shape2...)
		_ = a.Wrap(data, 2, 3)
		a.Recycle(x)
		_ = a.Get(shape1...)
		_ = y
		a.Reset()
	}
	warm()
	assertZeroAllocs(t, "Arena steady state", warm)
}

// TestWorkPoolLifecycle checks Close joins the resident workers.
func TestWorkPoolLifecycle(t *testing.T) {
	pool := NewWorkPool(2)
	if pool.Workers() != 2 {
		t.Fatalf("Workers() = %d", pool.Workers())
	}
	r := rand.New(rand.NewSource(2))
	a := randTensor(r, 8, 8)
	b := randTensor(r, 8, 8)
	dst := New(8, 8)
	var wg sync.WaitGroup
	MatMulParallelInto(dst, a, b, 3, pool, &wg)
	pool.Close() // must not hang or leak; leakcheck in the root suite watches goroutines
}

func bitEqual(a, b *Tensor) bool {
	if !a.SameShape(b) {
		return false
	}
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if ad[i] != bd[i] {
			return false
		}
	}
	return true
}
