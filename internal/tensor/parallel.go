package tensor

import (
	"fmt"
	"sync"
)

// parallelMatMul computes C = A×B splitting the row range of C across
// workers. cd must be zeroed-or-overwritable; it is reset here.
func parallelMatMul(cd, ad, bd []float32, m, k, n, workers int) {
	for i := range cd {
		cd[i] = 0
	}
	if workers <= 1 || m < 2 {
		matMulRange(cd, ad, bd, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		i0 := w * chunk
		i1 := i0 + chunk
		if i1 > m {
			i1 = m
		}
		if i0 >= i1 {
			break
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			matMulRange(cd, ad, bd, i0, i1, k, n)
		}(i0, i1)
	}
	wg.Wait()
}

// MatMulParallel computes C = A × B splitting rows of A across the given
// number of workers. It is the kernel used by the GPU device for dense
// layers.
func MatMulParallel(a, b *Tensor, workers int) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMulParallel requires rank-2 operands, got %v × %v", a.shape, b.shape)
	}
	if a.shape[1] != b.shape[0] {
		return nil, fmt.Errorf("tensor: MatMulParallel shape mismatch %v × %v", a.shape, b.shape)
	}
	c := New(a.shape[0], b.shape[1])
	parallelMatMul(c.data, a.data, b.data, a.shape[0], a.shape[1], b.shape[1], workers)
	return c, nil
}
