package tensor

import (
	"fmt"
	"sync"
)

// parallelMatMul computes C = A×B splitting the row range of C across
// workers. cd must be zeroed-or-overwritable; it is reset here.
func parallelMatMul(cd, ad, bd []float32, m, k, n, workers int) {
	for i := range cd {
		cd[i] = 0
	}
	if workers <= 1 || m < 2 {
		matMulRange(cd, ad, bd, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	// Split the m rows so every worker gets within ±1 row of the others:
	// ceil-chunking ((m+workers-1)/workers) can hand the first workers
	// oversized chunks and leave trailing workers with nothing, wasting
	// the fork/join cost on idle goroutines.
	base, rem := m/workers, m%workers
	var wg sync.WaitGroup
	i0 := 0
	for w := 0; w < workers; w++ {
		rows := base
		if w < rem {
			rows++
		}
		i1 := i0 + rows
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			matMulRange(cd, ad, bd, i0, i1, k, n)
		}(i0, i1)
		i0 = i1
	}
	wg.Wait()
}

// MatMulParallel computes C = A × B splitting rows of A across the given
// number of workers. It is the kernel used by the GPU device for dense
// layers.
func MatMulParallel(a, b *Tensor, workers int) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMulParallel requires rank-2 operands, got %v × %v", a.shape, b.shape)
	}
	if a.shape[1] != b.shape[0] {
		return nil, fmt.Errorf("tensor: MatMulParallel shape mismatch %v × %v", a.shape, b.shape)
	}
	c := New(a.shape[0], b.shape[1])
	parallelMatMul(c.data, a.data, b.data, a.shape[0], a.shape[1], b.shape[1], workers)
	return c, nil
}

// MatMulParallelInto computes dst = a × b into an already-shaped dst
// without allocating: row ranges are fanned out to the pool's resident
// workers while the caller computes the first chunk itself. done must
// be an idle caller-owned WaitGroup (keep one per execution state so
// the hot path never allocates); it is idle again on return. A nil
// pool or workers <= 1 runs everything on the calling goroutine. Row
// partitioning keeps the result bit-identical to MatMul and
// MatMulParallel at any worker count. Panics on shape mismatch
// (plan-compile-validated hot kernel).
func MatMulParallelInto(dst, a, b *Tensor, workers int, pool *WorkPool, done *sync.WaitGroup) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulParallelInto requires rank-2 operands, got %v × %v -> %v", a.shape, b.shape, dst.shape))
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	if a.shape[1] != b.shape[0] || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulParallelInto shape mismatch %v × %v -> %v", a.shape, b.shape, dst.shape))
	}
	poolMatMul(dst.data, a.data, b.data, m, k, n, workers, pool, done)
}

// Conv2DPoolInto is Conv2DInto with the per-image GEMM fanned out over
// the pool's resident workers — the allocation-free analogue of
// Conv2DParallel. done follows the MatMulParallelInto contract.
func Conv2DPoolInto(dst, in, kernel *Tensor, stride, pad int, col []float32, workers int, pool *WorkPool, done *sync.WaitGroup) {
	conv2DInto(dst, in, kernel, stride, pad, col, func(cd, ad, bd []float32, m, k, n int) {
		poolMatMul(cd, ad, bd, m, k, n, workers, pool, done)
	})
}
