// Package window provides event-time window aggregation — the streaming
// capability the paper counts among stream processors' native strengths
// over serving frameworks (§1: "online data transformations, aggregation,
// and windowing"). It implements tumbling and sliding windows with
// watermark-driven emission and bounded lateness, the dataflow-model
// semantics the paper's engines share (§1 cites the Dataflow model).
package window

import (
	"fmt"
	"sort"
	"time"
)

// Result is one closed window's aggregate.
type Result[A any] struct {
	// Start and End delimit the window [Start, End).
	Start, End time.Time
	// Value is the final accumulator.
	Value A
	// Count is how many events the window absorbed.
	Count int
}

// Tumbling aggregates events into fixed, non-overlapping event-time
// windows. Events are assigned by their event timestamp; windows close
// when the watermark passes their end plus the allowed lateness. The
// zero value is not usable; construct with NewTumbling.
type Tumbling[T, A any] struct {
	size      time.Duration
	lateness  time.Duration
	newAcc    func() A
	fold      func(acc A, v T) A
	windows   map[int64]*state[A]
	watermark time.Time
	hasWM     bool
	late      int
}

type state[A any] struct {
	acc   A
	count int
}

// NewTumbling creates a tumbling-window aggregator. size is the window
// width; lateness is how long past a window's end events are still
// accepted (0 = none); newAcc builds an empty accumulator and fold adds
// one event to it.
func NewTumbling[T, A any](size, lateness time.Duration, newAcc func() A, fold func(acc A, v T) A) (*Tumbling[T, A], error) {
	if size <= 0 {
		return nil, fmt.Errorf("window: size must be positive, got %v", size)
	}
	if lateness < 0 {
		return nil, fmt.Errorf("window: lateness must be non-negative, got %v", lateness)
	}
	if newAcc == nil || fold == nil {
		return nil, fmt.Errorf("window: newAcc and fold are required")
	}
	return &Tumbling[T, A]{
		size:     size,
		lateness: lateness,
		newAcc:   newAcc,
		fold:     fold,
		windows:  make(map[int64]*state[A]),
	}, nil
}

// bucket returns the window index containing ts.
func (w *Tumbling[T, A]) bucket(ts time.Time) int64 {
	b := ts.UnixNano() / int64(w.size)
	if ts.UnixNano() < 0 && ts.UnixNano()%int64(w.size) != 0 {
		b-- // floor division for pre-epoch timestamps
	}
	return b
}

// Add assigns one event to its window. Events whose window already closed
// (watermark beyond end+lateness) are counted as dropped-late and return
// false.
func (w *Tumbling[T, A]) Add(ts time.Time, v T) bool {
	b := w.bucket(ts)
	if w.hasWM {
		end := time.Unix(0, (b+1)*int64(w.size))
		if !w.watermark.Before(end.Add(w.lateness)) {
			w.late++
			return false
		}
	}
	st, ok := w.windows[b]
	if !ok {
		st = &state[A]{acc: w.newAcc()}
		w.windows[b] = st
	}
	st.acc = w.fold(st.acc, v)
	st.count++
	return true
}

// Watermark advances event time and returns the windows it closes, in
// start order. A window closes when watermark ≥ end + lateness.
// Watermarks never move backwards; a regressing call is ignored.
func (w *Tumbling[T, A]) Watermark(ts time.Time) []Result[A] {
	if w.hasWM && !ts.After(w.watermark) {
		return nil
	}
	w.watermark = ts
	w.hasWM = true
	var out []Result[A]
	for b, st := range w.windows {
		end := time.Unix(0, (b+1)*int64(w.size))
		if !ts.Before(end.Add(w.lateness)) {
			out = append(out, Result[A]{
				Start: time.Unix(0, b*int64(w.size)),
				End:   end,
				Value: st.acc,
				Count: st.count,
			})
			delete(w.windows, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Flush closes every open window regardless of the watermark (end of
// stream).
func (w *Tumbling[T, A]) Flush() []Result[A] {
	var out []Result[A]
	for b, st := range w.windows {
		out = append(out, Result[A]{
			Start: time.Unix(0, b*int64(w.size)),
			End:   time.Unix(0, (b+1)*int64(w.size)),
			Value: st.acc,
			Count: st.count,
		})
		delete(w.windows, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// DroppedLate reports how many events arrived after their window closed.
func (w *Tumbling[T, A]) DroppedLate() int { return w.late }

// Open reports how many windows are currently buffering events.
func (w *Tumbling[T, A]) Open() int { return len(w.windows) }

// Sliding aggregates events into overlapping windows of the given size
// emitted every slide. It is implemented as size/slide tumbling panes per
// event: each event joins every window covering its timestamp.
type Sliding[T, A any] struct {
	size, slide time.Duration
	newAcc      func() A
	fold        func(acc A, v T) A
	panes       map[int64]*state[A]
	watermark   time.Time
	hasWM       bool
	late        int
}

// NewSliding creates a sliding-window aggregator. size must be a multiple
// of slide.
func NewSliding[T, A any](size, slide time.Duration, newAcc func() A, fold func(acc A, v T) A) (*Sliding[T, A], error) {
	if size <= 0 || slide <= 0 {
		return nil, fmt.Errorf("window: size and slide must be positive")
	}
	if size%slide != 0 {
		return nil, fmt.Errorf("window: size %v must be a multiple of slide %v", size, slide)
	}
	if newAcc == nil || fold == nil {
		return nil, fmt.Errorf("window: newAcc and fold are required")
	}
	return &Sliding[T, A]{
		size: size, slide: slide,
		newAcc: newAcc, fold: fold,
		panes: make(map[int64]*state[A]),
	}, nil
}

// Add assigns one event to every sliding window covering its timestamp.
func (s *Sliding[T, A]) Add(ts time.Time, v T) bool {
	// Window starts are multiples of slide; the event belongs to windows
	// starting in (ts-size, ts].
	first := ts.UnixNano() / int64(s.slide)
	if ts.UnixNano() < 0 && ts.UnixNano()%int64(s.slide) != 0 {
		first--
	}
	n := int(s.size / s.slide)
	accepted := false
	for i := 0; i < n; i++ {
		start := (first - int64(i)) * int64(s.slide)
		end := time.Unix(0, start+int64(s.size))
		if s.hasWM && !s.watermark.Before(end) {
			continue // this pane already closed
		}
		st, ok := s.panes[start]
		if !ok {
			st = &state[A]{acc: s.newAcc()}
			s.panes[start] = st
		}
		st.acc = s.fold(st.acc, v)
		st.count++
		accepted = true
	}
	if !accepted {
		s.late++
	}
	return accepted
}

// Watermark advances event time, emitting every sliding window whose end
// passed, in start order.
func (s *Sliding[T, A]) Watermark(ts time.Time) []Result[A] {
	if s.hasWM && !ts.After(s.watermark) {
		return nil
	}
	s.watermark = ts
	s.hasWM = true
	var out []Result[A]
	for start, st := range s.panes {
		end := time.Unix(0, start+int64(s.size))
		if !ts.Before(end) {
			out = append(out, Result[A]{Start: time.Unix(0, start), End: end, Value: st.acc, Count: st.count})
			delete(s.panes, start)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// DroppedLate reports events that joined no window.
func (s *Sliding[T, A]) DroppedLate() int { return s.late }
