package window

import (
	"testing"
	"testing/quick"
	"time"
)

func sumWindow(t *testing.T, size, lateness time.Duration) *Tumbling[int, int] {
	t.Helper()
	w, err := NewTumbling(size, lateness, func() int { return 0 }, func(acc, v int) int { return acc + v })
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func at(sec int64) time.Time { return time.Unix(sec, 0) }

func TestTumblingBasic(t *testing.T) {
	w := sumWindow(t, time.Second, 0)
	w.Add(at(0), 1)
	w.Add(at(0).Add(500*time.Millisecond), 2)
	w.Add(at(1), 10)
	if w.Open() != 2 {
		t.Fatalf("open windows %d", w.Open())
	}
	out := w.Watermark(at(1))
	if len(out) != 1 || out[0].Value != 3 || out[0].Count != 2 {
		t.Fatalf("first close %+v", out)
	}
	if !out[0].Start.Equal(at(0)) || !out[0].End.Equal(at(1)) {
		t.Fatalf("bounds %v-%v", out[0].Start, out[0].End)
	}
	out = w.Watermark(at(2))
	if len(out) != 1 || out[0].Value != 10 {
		t.Fatalf("second close %+v", out)
	}
}

func TestTumblingLateness(t *testing.T) {
	w := sumWindow(t, time.Second, 500*time.Millisecond)
	w.Add(at(0), 1)
	// Watermark at window end: lateness keeps it open.
	if out := w.Watermark(at(1)); len(out) != 0 {
		t.Fatalf("window closed before lateness expired: %+v", out)
	}
	// A late event inside the lateness horizon still lands.
	if !w.Add(at(0).Add(900*time.Millisecond), 5) {
		t.Fatal("in-horizon late event dropped")
	}
	out := w.Watermark(at(1).Add(500 * time.Millisecond))
	if len(out) != 1 || out[0].Value != 6 {
		t.Fatalf("close with late event: %+v", out)
	}
	// Beyond the horizon the event is dropped-late.
	if w.Add(at(0), 7) {
		t.Fatal("too-late event accepted")
	}
	if w.DroppedLate() != 1 {
		t.Fatalf("dropped %d", w.DroppedLate())
	}
}

func TestTumblingWatermarkMonotone(t *testing.T) {
	w := sumWindow(t, time.Second, 0)
	w.Add(at(0), 1)
	if out := w.Watermark(at(5)); len(out) != 1 {
		t.Fatalf("close %+v", out)
	}
	// A regressing watermark is ignored.
	w.Add(at(10), 2)
	if out := w.Watermark(at(3)); out != nil {
		t.Fatalf("regressed watermark emitted %+v", out)
	}
	if out := w.Watermark(at(11)); len(out) != 1 || out[0].Value != 2 {
		t.Fatalf("after regression %+v", out)
	}
}

func TestTumblingFlush(t *testing.T) {
	w := sumWindow(t, time.Second, 0)
	w.Add(at(0), 1)
	w.Add(at(3), 2)
	out := w.Flush()
	if len(out) != 2 || out[0].Value != 1 || out[1].Value != 2 {
		t.Fatalf("flush %+v", out)
	}
	if w.Open() != 0 {
		t.Fatal("flush left windows open")
	}
}

func TestTumblingValidation(t *testing.T) {
	if _, err := NewTumbling[int, int](0, 0, func() int { return 0 }, func(a, v int) int { return a }); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewTumbling[int, int](time.Second, -1, func() int { return 0 }, func(a, v int) int { return a }); err == nil {
		t.Fatal("negative lateness accepted")
	}
	if _, err := NewTumbling[int, int](time.Second, 0, nil, nil); err == nil {
		t.Fatal("nil funcs accepted")
	}
}

func TestTumblingPreEpoch(t *testing.T) {
	w := sumWindow(t, time.Second, 0)
	w.Add(time.Unix(-1, 500_000_000), 4) // bucket [-1s, 0)
	out := w.Watermark(at(0))
	if len(out) != 1 || out[0].Value != 4 {
		t.Fatalf("pre-epoch close %+v", out)
	}
	if !out[0].Start.Equal(time.Unix(-1, 0)) {
		t.Fatalf("pre-epoch start %v", out[0].Start)
	}
}

func TestTumblingCountConservationProperty(t *testing.T) {
	// Every accepted event appears in exactly one window; totals add up.
	f := func(offsets []uint16) bool {
		w, err := NewTumbling(time.Second, 0, func() int { return 0 }, func(acc, v int) int { return acc + v })
		if err != nil {
			return false
		}
		accepted := 0
		for _, off := range offsets {
			ts := time.Unix(0, int64(off)*int64(10*time.Millisecond))
			if w.Add(ts, 1) {
				accepted++
			}
		}
		total := 0
		for _, r := range w.Flush() {
			if r.Count != r.Value { // fold adds 1 per event
				return false
			}
			total += r.Count
		}
		return total == accepted && accepted == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSlidingCoversOverlap(t *testing.T) {
	s, err := NewSliding(2*time.Second, time.Second, func() int { return 0 }, func(acc, v int) int { return acc + v })
	if err != nil {
		t.Fatal(err)
	}
	// An event at t=1.5s belongs to windows [0,2) and [1,3).
	s.Add(at(1).Add(500*time.Millisecond), 7)
	out := s.Watermark(at(2))
	if len(out) != 1 || out[0].Value != 7 || !out[0].Start.Equal(at(0)) {
		t.Fatalf("first window %+v", out)
	}
	out = s.Watermark(at(3))
	if len(out) != 1 || out[0].Value != 7 || !out[0].Start.Equal(at(1)) {
		t.Fatalf("second window %+v", out)
	}
}

func TestSlidingLateDrop(t *testing.T) {
	s, err := NewSliding(2*time.Second, time.Second, func() int { return 0 }, func(acc, v int) int { return acc + v })
	if err != nil {
		t.Fatal(err)
	}
	s.Watermark(at(10))
	if s.Add(at(1), 1) {
		t.Fatal("event behind the watermark accepted")
	}
	if s.DroppedLate() != 1 {
		t.Fatalf("dropped %d", s.DroppedLate())
	}
}

func TestSlidingValidation(t *testing.T) {
	mk := func(size, slide time.Duration) error {
		_, err := NewSliding(size, slide, func() int { return 0 }, func(a, v int) int { return a })
		return err
	}
	if mk(0, time.Second) == nil {
		t.Fatal("zero size accepted")
	}
	if mk(3*time.Second, 2*time.Second) == nil {
		t.Fatal("non-multiple slide accepted")
	}
	if _, err := NewSliding[int, int](time.Second, time.Second, nil, nil); err == nil {
		t.Fatal("nil funcs accepted")
	}
}

func TestSlidingEqualsTumblingWhenSlideEqualsSize(t *testing.T) {
	s, err := NewSliding(time.Second, time.Second, func() int { return 0 }, func(acc, v int) int { return acc + v })
	if err != nil {
		t.Fatal(err)
	}
	w := sumWindow(t, time.Second, 0)
	for i := 0; i < 30; i++ {
		ts := time.Unix(0, int64(i)*int64(250*time.Millisecond))
		s.Add(ts, i)
		w.Add(ts, i)
	}
	so := s.Watermark(at(100))
	wo := w.Watermark(at(100))
	if len(so) != len(wo) {
		t.Fatalf("window counts differ: %d vs %d", len(so), len(wo))
	}
	for i := range so {
		if so[i].Value != wo[i].Value || !so[i].Start.Equal(wo[i].Start) {
			t.Fatalf("window %d differs: %+v vs %+v", i, so[i], wo[i])
		}
	}
}
