package broker

import (
	"errors"
	"fmt"
	"sort"
)

// Cluster-mode errors. ErrNotLeader and ErrNodeDown are routing signals:
// the partition-aware client refreshes its metadata and re-routes, so
// both travel wrapped retryable (resilience.IsRetryable). ErrFencedEpoch
// is the fencing verdict a stale leader or follower receives when its
// leader epoch no longer matches; the controller's next view push
// resolves it, so it too is retryable from the replication loop's point
// of view. ErrAckTimeout means replication did not confirm an append
// within the ack window — the record may or may not be stored, exactly
// Kafka's acks=all timeout, and the producer's retry (at-least-once,
// deduplicated downstream) rides it out.
var (
	ErrNotLeader   = errors.New("broker: not leader for partition")
	ErrNodeDown    = errors.New("broker: node down")
	ErrFencedEpoch = errors.New("broker: fenced leader epoch")
	ErrAckTimeout  = errors.New("broker: replication ack timeout")
	ErrNoLeader    = errors.New("broker: partition has no live leader")
)

// NotLeaderError reports where a misrouted partition request should have
// gone. It matches errors.Is(err, ErrNotLeader); Leader is -1 when the
// partition is currently leaderless (every replica dead).
type NotLeaderError struct {
	TP     TopicPartition
	Leader int
	Epoch  int
}

// Error implements error.
func (e *NotLeaderError) Error() string {
	return fmt.Sprintf("broker: not leader for %s/%d (leader node %d, epoch %d)", e.TP.Topic, e.TP.Partition, e.Leader, e.Epoch)
}

// Is matches the sentinel so callers can errors.Is(err, ErrNotLeader)
// without knowing the concrete type.
func (e *NotLeaderError) Is(target error) bool { return target == ErrNotLeader }

// PartitionState is one partition's replication state inside a
// ClusterView: who leads at which epoch, which nodes hold replicas, and
// which of them are in sync (eligible for election; their log ends gate
// the high-watermark).
type PartitionState struct {
	Leader   int   `json:"leader"` // -1 when offline
	Epoch    int   `json:"epoch"`
	Replicas []int `json:"replicas"`
	ISR      []int `json:"isr"`
}

// ClusterView is the controller's metadata: cluster membership and
// per-partition leadership. Nodes and clients hold private copies;
// Version orders pushes so a stale view never overwrites a newer one.
type ClusterView struct {
	Version    int                         `json:"version"`
	Members    []int                       `json:"members"` // alive node ids, sorted
	Partitions map[string][]PartitionState `json:"partitions"`
}

// Clone deep-copies the view so holders can mutate their copy freely.
func (v ClusterView) Clone() ClusterView {
	out := ClusterView{Version: v.Version, Members: append([]int(nil), v.Members...)}
	if v.Partitions != nil {
		out.Partitions = make(map[string][]PartitionState, len(v.Partitions))
		for t, states := range v.Partitions {
			cp := make([]PartitionState, len(states))
			for i, s := range states {
				cp[i] = PartitionState{
					Leader:   s.Leader,
					Epoch:    s.Epoch,
					Replicas: append([]int(nil), s.Replicas...),
					ISR:      append([]int(nil), s.ISR...),
				}
			}
			out.Partitions[t] = cp
		}
	}
	return out
}

// State returns the partition's replication state, or false when the
// view does not cover it.
func (v ClusterView) State(tp TopicPartition) (PartitionState, bool) {
	states, ok := v.Partitions[tp.Topic]
	if !ok || tp.Partition < 0 || tp.Partition >= len(states) {
		return PartitionState{}, false
	}
	return states[tp.Partition], true
}

// Leader returns the partition's current leader node id, or an error
// when the view does not cover the partition or it is offline.
func (v ClusterView) Leader(tp TopicPartition) (int, error) {
	s, ok := v.State(tp)
	if !ok {
		return 0, fmt.Errorf("%w: %s/%d", ErrUnknownPartition, tp.Topic, tp.Partition)
	}
	if s.Leader < 0 {
		return 0, fmt.Errorf("%w: %s/%d", ErrNoLeader, tp.Topic, tp.Partition)
	}
	return s.Leader, nil
}

// ReplicaFetchRequest is a follower's catch-up read: Offset is the
// follower's log end (it holds everything below), so the leader both
// serves the next records and learns the follower's replication
// progress from the same message — the Kafka fetch-derived ISR model.
type ReplicaFetchRequest struct {
	Topic     string `json:"topic"`
	Partition int    `json:"partition"`
	Offset    int64  `json:"offset"`
	Max       int    `json:"max"`
	From      int    `json:"from"`  // follower node id
	Epoch     int    `json:"epoch"` // follower's leader epoch for the partition
}

// ReplicaFetchResponse carries the records plus the leader's current
// high-watermark and epoch, which is how followers learn both.
type ReplicaFetchResponse struct {
	Records []Record
	HW      int64
	Epoch   int
}

// ClusterPeer is the node-to-node surface: the controller pings peers,
// pushes views, and queries raw log ends for elections; followers pull
// replica fetches from leaders. A *Node implements it in process; a
// *RemoteClient implements it over the wire for brokerd clusters.
type ClusterPeer interface {
	Ping() error
	PushView(v ClusterView) error
	ReplicaFetch(req ReplicaFetchRequest) (ReplicaFetchResponse, error)
	// LogEnd is the node's raw local log end for a partition (not the
	// consumer-visible high-watermark) — the controller's election key.
	LogEnd(tp TopicPartition) (int64, error)
	// AdmitFollower asks the partition leader (at the given epoch) to
	// re-admit a caught-up follower into its in-sync derivation. The
	// leader answers true only when the follower's replica fetches
	// cover the high-watermark; the controller then adds it to the
	// view's ISR. False (no error) means "not yet" — retry next sweep.
	AdmitFollower(tp TopicPartition, follower, epoch int) (bool, error)
}

// ClusterTransport is the client-facing surface of one cluster node:
// the ordinary Transport plus metadata discovery.
type ClusterTransport interface {
	Transport
	ClusterView() (ClusterView, error)
}

// tpKey renders a TopicPartition for metric-name suffixes
// (broker.cluster.leader.<topic>-<partition>).
func tpKey(tp TopicPartition) string {
	return fmt.Sprintf("%s-%d", tp.Topic, tp.Partition)
}

// containsInt reports membership in a small id slice.
func containsInt(ids []int, id int) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// removeInt returns ids without id, preserving order.
func removeInt(ids []int, id int) []int {
	out := make([]int, 0, len(ids))
	for _, v := range ids {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// insertSorted adds id to a sorted id slice if absent.
func insertSorted(ids []int, id int) []int {
	if containsInt(ids, id) {
		return ids
	}
	ids = append(ids, id)
	sort.Ints(ids)
	return ids
}

// placement computes the replica set for partition p in an n-node
// cluster at replication factor r: nodes p, p+1, … p+r−1 (mod n), the
// first being the preferred leader — Kafka's round-robin assignment.
func placement(p, n, r int) []int {
	if r > n {
		r = n
	}
	out := make([]int, r)
	for i := 0; i < r; i++ {
		out[i] = (p + i) % n
	}
	return out
}
