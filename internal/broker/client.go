package broker

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Transport is the client-facing broker API. A *Broker satisfies it
// directly (in-process transport); RemoteClient satisfies it over TCP.
// Stream processors and the Crayfish driver are written against this
// interface so experiments can switch transports without code changes.
type Transport interface {
	CreateTopic(name string, partitions int) error
	DeleteTopic(name string) error
	Partitions(topic string) (int, error)
	Produce(topic string, partition int, recs []Record) (int64, error)
	Fetch(topic string, partition int, offset int64, max int) ([]Record, error)
	FetchMulti(topic string, reqs []FetchRequest, maxTotal int) ([]Record, error)
	EndOffset(topic string, partition int) (int64, error)
	JoinGroup(group string, topics []string) (Assignment, error)
	LeaveGroup(group, memberID string) error
	FetchAssignment(group, memberID string, generation int) (Assignment, error)
	CommitOffset(group string, tp TopicPartition, offset int64) error
	CommittedOffset(group string, tp TopicPartition) (int64, error)
}

var _ Transport = (*Broker)(nil)

// AppendNotifier is the optional transport extension for blocking reads:
// AppendSignal returns a channel closed on the topic's next append. The
// in-process *Broker implements it; remote transports do not, and
// blocking consumers fall back to timed re-polling.
type AppendNotifier interface {
	AppendSignal(topic string) (<-chan struct{}, error)
}

var _ AppendNotifier = (*Broker)(nil)

// MultiFetcherInto is the optional transport extension for
// allocation-free polling: FetchMultiInto appends the fetched records
// into the caller's reusable buffer instead of allocating a response
// slice per call. The in-process *Broker implements it; remote
// transports do not, and consumers fall back to the allocating
// FetchMulti.
type MultiFetcherInto interface {
	FetchMultiInto(topic string, reqs []FetchRequest, maxTotal int, out []Record) ([]Record, error)
}

var _ MultiFetcherInto = (*Broker)(nil)

// Producer writes records to a topic, spreading keyless records
// round-robin across partitions and hashing keyed records.
type Producer struct {
	t     Transport
	topic string

	mu    sync.Mutex
	parts int
	next  int
}

// NewProducer creates a producer bound to one topic.
func NewProducer(t Transport, topic string) (*Producer, error) {
	n, err := t.Partitions(topic)
	if err != nil {
		return nil, err
	}
	return &Producer{t: t, topic: topic, parts: n}, nil
}

// Send appends one record, stamping it with the current time as its
// CreateTime, and returns the partition and offset it landed at.
func (p *Producer) Send(key, value []byte) (int, int64, error) {
	//lint:allow clockdiscipline client-side CreateTime stamp, not on the measured path
	return p.SendAt(key, value, time.Now())
}

// SendAt is Send with an explicit CreateTime; the Crayfish producer uses
// it to record the measurement start timestamp (§3.3 step 1).
func (p *Producer) SendAt(key, value []byte, ts time.Time) (int, int64, error) {
	part := p.pickPartition(key)
	off, err := p.t.Produce(p.topic, part, []Record{{Key: key, Value: value, Timestamp: ts}})
	if err != nil {
		return 0, 0, err
	}
	return part, off, nil
}

// SendBatch appends several records in a single broker call to the next
// round-robin partition, the way Kafka producers batch sends
// (batch.size/linger.ms). It returns the partition and base offset.
func (p *Producer) SendBatch(recs []Record) (int, int64, error) {
	if len(recs) == 0 {
		return 0, 0, nil
	}
	part := p.pickPartition(nil)
	off, err := p.t.Produce(p.topic, part, recs)
	return part, off, err
}

// SendToPartition appends a record to an explicit partition.
func (p *Producer) SendToPartition(partition int, key, value []byte, ts time.Time) (int64, error) {
	return p.t.Produce(p.topic, partition, []Record{{Key: key, Value: value, Timestamp: ts}})
}

// NextPartition advances the round-robin cursor and returns the partition
// a keyless record would target. Batching producers use it to pick the
// partition for a multi-record append.
func (p *Producer) NextPartition() int {
	return p.pickPartition(nil)
}

func (p *Producer) pickPartition(key []byte) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(key) > 0 {
		h := fnv.New32a()
		h.Write(key)
		return int(h.Sum32() % uint32(p.parts))
	}
	part := p.next
	p.next = (p.next + 1) % p.parts
	return part
}

// Consumer reads records from assigned partitions. It operates in either
// assigned mode (explicit partitions, like Kafka's assign()) or group mode
// (dynamic assignment with rebalancing, like subscribe()).
type Consumer struct {
	t     Transport
	topic string

	group      string
	memberID   string
	generation int

	mu        sync.Mutex
	assigned  []TopicPartition
	positions map[TopicPartition]int64
	rr        int
	closed    bool

	// reqs and recs are Poll's reusable request and response buffers
	// (guarded by mu like the rest of the poll state), so the
	// steady-state fetch path stops reallocating per call.
	reqs []FetchRequest
	recs []Record
}

// NewAssignedConsumer creates a consumer reading the given partitions of a
// topic starting at offset 0.
func NewAssignedConsumer(t Transport, topic string, partitions ...int) (*Consumer, error) {
	n, err := t.Partitions(topic)
	if err != nil {
		return nil, err
	}
	c := &Consumer{t: t, topic: topic, positions: make(map[TopicPartition]int64)}
	if len(partitions) == 0 {
		for i := 0; i < n; i++ {
			partitions = append(partitions, i)
		}
	}
	for _, p := range partitions {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("%w: %s/%d", ErrUnknownPartition, topic, p)
		}
		c.assigned = append(c.assigned, TopicPartition{Topic: topic, Partition: p})
	}
	return c, nil
}

// NewGroupConsumer creates a consumer that joins a consumer group and
// receives a dynamic partition assignment, resuming from committed
// offsets.
func NewGroupConsumer(t Transport, group, topic string) (*Consumer, error) {
	a, err := t.JoinGroup(group, []string{topic})
	if err != nil {
		return nil, err
	}
	c := &Consumer{
		t: t, topic: topic, group: group,
		memberID: a.MemberID, generation: a.Generation,
		positions: make(map[TopicPartition]int64),
	}
	if err := c.adopt(a); err != nil {
		return nil, err
	}
	return c, nil
}

// adopt installs a new assignment, seeding positions from committed
// offsets.
func (c *Consumer) adopt(a Assignment) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.generation = a.Generation
	c.assigned = a.Partitions
	for _, tp := range a.Partitions {
		if _, ok := c.positions[tp]; ok {
			continue
		}
		off, err := c.t.CommittedOffset(c.group, tp)
		if err != nil {
			return err
		}
		c.positions[tp] = off
	}
	return nil
}

// Assignment returns the partitions this consumer currently owns.
func (c *Consumer) Assignment() []TopicPartition {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TopicPartition(nil), c.assigned...)
}

// SeekToEnd moves every assigned partition's position to the log end so
// Poll only returns records produced afterwards.
func (c *Consumer) SeekToEnd() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, tp := range c.assigned {
		end, err := c.t.EndOffset(tp.Topic, tp.Partition)
		if err != nil {
			return err
		}
		c.positions[tp] = end
	}
	return nil
}

// Seek moves one partition's position.
func (c *Consumer) Seek(tp TopicPartition, offset int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.positions[tp] = offset
}

// Positions returns a copy of the consumer's current positions for its
// assigned partitions (the next offset each will read).
func (c *Consumer) Positions() map[TopicPartition]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[TopicPartition]int64, len(c.assigned))
	for _, tp := range c.assigned {
		out[tp] = c.positions[tp]
	}
	return out
}

// Poll returns up to max records in a single multi-partition fetch
// request, rotating the partition order round-robin for fairness and
// advancing positions past returned records. It returns an empty slice
// when nothing new is available (pull model: the caller decides whether to
// spin, sleep, or proceed). In group mode a broker-side rebalance is
// handled transparently by adopting the new assignment.
//
// Buffer ownership: the returned slice is the consumer's reusable
// response buffer — it stays valid only until the next Poll/PollWait
// call, so consume (or copy out) its records before polling again. The
// records' Key/Value byte slices alias the broker's immutable log and
// remain valid past the next poll.
func (c *Consumer) Poll(max int) ([]Record, error) {
	if max <= 0 {
		max = 1
	}
	if c.group != "" {
		a, err := c.t.FetchAssignment(c.group, c.memberID, c.generation)
		if errors.Is(err, ErrRebalance) {
			if err := c.adopt(a); err != nil {
				return nil, err
			}
		} else if err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if len(c.assigned) == 0 {
		return nil, nil
	}
	c.reqs = c.reqs[:0]
	for i := range c.assigned {
		tp := c.assigned[(c.rr+i)%len(c.assigned)]
		c.reqs = append(c.reqs, FetchRequest{Partition: tp.Partition, Offset: c.positions[tp]})
	}
	c.rr++
	var out []Record
	var err error
	if mf, ok := c.t.(MultiFetcherInto); ok {
		out, err = mf.FetchMultiInto(c.topic, c.reqs, max, c.recs[:0])
	} else {
		out, err = c.t.FetchMulti(c.topic, c.reqs, max)
	}
	if err != nil {
		return nil, err
	}
	c.recs = out[:0]
	for _, rec := range out {
		tp := TopicPartition{Topic: c.topic, Partition: rec.Partition}
		if rec.Offset+1 > c.positions[tp] {
			c.positions[tp] = rec.Offset + 1
		}
	}
	return out, nil
}

// PollWait is Poll, but blocks until records arrive, the timeout
// elapses (returning an empty slice), or an error occurs. On an
// in-process transport it parks on the topic's append signal, so idle
// consumers cost nothing; on remote transports it degrades to a timed
// re-poll loop.
func (c *Consumer) PollWait(max int, timeout time.Duration) ([]Record, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	notifier, _ := c.t.(AppendNotifier)
	for {
		// Capture the signal before polling: an append that races the
		// poll closes this channel, so the wait below wakes instead of
		// missing it.
		var signal <-chan struct{}
		if notifier != nil {
			ch, err := notifier.AppendSignal(c.topic)
			if err != nil {
				return nil, err
			}
			signal = ch
		}
		recs, err := c.Poll(max)
		if err != nil || len(recs) > 0 {
			return recs, err
		}
		if signal != nil {
			select {
			case <-signal:
			case <-deadline.C:
				return nil, nil
			}
			continue
		}
		retry := time.NewTimer(time.Millisecond)
		select {
		case <-retry.C:
		case <-deadline.C:
			retry.Stop()
			return nil, nil
		}
	}
}

// Commit persists current positions as the group's committed offsets.
// It is a no-op for assigned-mode consumers.
func (c *Consumer) Commit() error {
	if c.group == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, tp := range c.assigned {
		if err := c.t.CommitOffset(c.group, tp, c.positions[tp]); err != nil {
			return err
		}
	}
	return nil
}

// Close leaves the consumer group (if any) and marks the consumer unusable.
func (c *Consumer) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	if c.group != "" {
		return c.t.LeaveGroup(c.group, c.memberID)
	}
	return nil
}
