package broker

import (
	"fmt"
	"time"

	"crayfish/internal/faults"
	"crayfish/internal/resilience"
)

// ClusterConfig configures an in-process replicated cluster.
type ClusterConfig struct {
	// Nodes is the broker count N (node ids 0..N-1; node 0 is the
	// controller and consumer-group coordinator seat).
	Nodes int
	// ReplicationFactor is replicas per partition (clamped to Nodes).
	ReplicationFactor int
	// Broker is the per-node log configuration (clock, metrics, network
	// model, fault injector for produce-boundary message faults — each
	// fires once, on the partition leader). RetentionRecords must be 0.
	Broker Config
	// AckTimeout bounds a produce's wait for replication (default 5s).
	AckTimeout time.Duration
	// HeartbeatEvery is the controller's liveness sweep interval
	// (default 1ms).
	HeartbeatEvery time.Duration
	// ReplicaPoll is the follower fetch loop's idle interval (default
	// 1ms).
	ReplicaPoll time.Duration
}

// Cluster is an in-process replicated broker cluster: N nodes with
// per-partition leadership at replication factor R, a deterministic
// controller on node 0, and named crash/restart hooks for the fault
// injector's broker-crash / broker-restart timed events.
type Cluster struct {
	cfg   ClusterConfig
	nodes []*Node
	ctrl  *Controller
}

// NewCluster builds and starts the cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("broker: cluster needs at least one node")
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 1
	}
	if cfg.ReplicationFactor > cfg.Nodes {
		cfg.ReplicationFactor = cfg.Nodes
	}
	nodes := make([]*Node, cfg.Nodes)
	for i := range nodes {
		n, err := NewNode(NodeConfig{
			ID:          i,
			Broker:      cfg.Broker,
			AckTimeout:  cfg.AckTimeout,
			ReplicaPoll: cfg.ReplicaPoll,
		})
		if err != nil {
			return nil, err
		}
		nodes[i] = n
	}
	peers := make(map[int]ClusterPeer, cfg.Nodes)
	for i, n := range nodes {
		peers[i] = n
	}
	for _, n := range nodes {
		for id, p := range peers {
			if id != n.id {
				n.SetPeer(id, p)
			}
		}
	}
	ctrl, err := NewController(ControllerConfig{
		Peers:             peers,
		ReplicationFactor: cfg.ReplicationFactor,
		HeartbeatEvery:    cfg.HeartbeatEvery,
		Coordinator:       nodes[0].Broker(),
		Metrics:           cfg.Broker.Metrics,
	})
	if err != nil {
		return nil, err
	}
	nodes[0].AttachController(ctrl)
	ctrl.Start()
	return &Cluster{cfg: cfg, nodes: nodes, ctrl: ctrl}, nil
}

// CreateTopic places and creates a replicated topic cluster-wide.
func (c *Cluster) CreateTopic(name string, partitions int) error {
	return c.ctrl.CreateTopic(name, partitions)
}

// DeleteTopic removes a topic cluster-wide.
func (c *Cluster) DeleteTopic(name string) error {
	return c.ctrl.DeleteTopic(name)
}

// Client returns a partition-aware Transport over the cluster. retry
// nil uses the failover-sized default policy.
func (c *Cluster) Client(retry *resilience.Retry) (*ClusterClient, error) {
	links := make([]ClusterTransport, len(c.nodes))
	for i, n := range c.nodes {
		links[i] = n
	}
	return NewClusterClient(links, retry)
}

// Node returns the node with the given id.
func (c *Cluster) Node(id int) (*Node, error) {
	if id < 0 || id >= len(c.nodes) {
		return nil, fmt.Errorf("broker: no node %d in a %d-node cluster", id, len(c.nodes))
	}
	return c.nodes[id], nil
}

// NodeByName resolves a fault-plan target like "node-1".
func (c *Cluster) NodeByName(name string) (*Node, error) {
	for _, n := range c.nodes {
		if n.name == name {
			return n, nil
		}
	}
	return nil, fmt.Errorf("broker: unknown cluster node %q", name)
}

// Crash kills the named node (fault-plan target form, "node-<id>").
func (c *Cluster) Crash(name string) error {
	n, err := c.NodeByName(name)
	if err != nil {
		return err
	}
	n.Crash()
	return nil
}

// Restart revives the named node.
func (c *Cluster) Restart(name string) error {
	n, err := c.NodeByName(name)
	if err != nil {
		return err
	}
	n.Restart()
	return nil
}

// View returns the controller's current authoritative metadata.
func (c *Cluster) View() ClusterView { return c.ctrl.View() }

// Controller exposes the control plane (tests drive Tick directly for
// step-determinism).
func (c *Cluster) Controller() *Controller { return c.ctrl }

// Bind registers the cluster as the handler for the injector's
// broker-crash / broker-restart timed events, keyed by node name: a
// FaultPlan event with Target "node-1" kills that node at its planned
// offset, deterministically. Unknown targets are ignored (the plan
// validated the shape; a name mismatch books as a no-op, not a panic
// mid-experiment).
func (c *Cluster) Bind(inj *faults.Injector) {
	inj.Handle(faults.BrokerCrash, func(e faults.Event) { _ = c.Crash(e.Target) })
	inj.Handle(faults.BrokerRestart, func(e faults.Event) { _ = c.Restart(e.Target) })
}

// Close shuts down the controller and every node.
func (c *Cluster) Close() {
	c.ctrl.Close()
	for _, n := range c.nodes {
		n.Close()
	}
}
