package broker

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"crayfish/internal/resilience"
)

// wire protocol: each frame is a uint32 big-endian length followed by a
// JSON document. Requests and responses alternate synchronously per
// connection; clients open multiple connections for parallelism.

// maxFrameSize bounds a single wire frame (a 50 MB record plus base64 and
// envelope overhead).
const maxFrameSize = 96 << 20

// wireRequest is the client -> server frame. From/Epoch/View serve the
// cluster ops (replica_fetch, push_view); single-broker traffic leaves
// them zero.
type wireRequest struct {
	Op         string          `json:"op"`
	Topic      string          `json:"topic,omitempty"`
	Partition  int             `json:"partition,omitempty"`
	Partitions int             `json:"partitions,omitempty"`
	Offset     int64           `json:"offset,omitempty"`
	Max        int             `json:"max,omitempty"`
	Group      string          `json:"group,omitempty"`
	Member     string          `json:"member,omitempty"`
	Generation int             `json:"generation,omitempty"`
	Topics     []string        `json:"topics,omitempty"`
	Records    []wireRecord    `json:"records,omitempty"`
	TP         *TopicPartition `json:"tp,omitempty"`
	Fetches    []FetchRequest  `json:"fetches,omitempty"`
	From       int             `json:"from,omitempty"`
	Epoch      int             `json:"epoch,omitempty"`
	View       *ClusterView    `json:"view,omitempty"`
}

// wireNotLeader carries a NotLeaderError's re-route hint across the
// wire so the cluster client can reconstruct the typed error.
type wireNotLeader struct {
	Topic     string `json:"topic"`
	Partition int    `json:"partition"`
	Leader    int    `json:"leader"`
	Epoch     int    `json:"epoch"`
}

// wireResponse is the server -> client frame. Retryable preserves the
// resilience marking across the wire the way Rebalance preserves
// ErrRebalance; NotLeader/View/HW/Epoch serve the cluster ops.
type wireResponse struct {
	Err        string         `json:"err,omitempty"`
	Rebalance  bool           `json:"rebalance,omitempty"`
	Retryable  bool           `json:"retryable,omitempty"`
	NotLeader  *wireNotLeader `json:"not_leader,omitempty"`
	Offset     int64          `json:"offset,omitempty"`
	Count      int            `json:"count,omitempty"`
	Records    []wireRecord   `json:"records,omitempty"`
	Assignment *Assignment    `json:"assignment,omitempty"`
	View       *ClusterView   `json:"view,omitempty"`
	HW         int64          `json:"hw,omitempty"`
	Epoch      int            `json:"epoch,omitempty"`
	Admitted   bool           `json:"admitted,omitempty"`
}

// wireRecord is the JSON form of a Record; []byte fields use JSON's
// standard base64 encoding.
type wireRecord struct {
	Key        []byte    `json:"key,omitempty"`
	Value      []byte    `json:"value"`
	Timestamp  time.Time `json:"ts"`
	AppendTime time.Time `json:"append_ts"`
	Partition  int       `json:"partition"`
	Offset     int64     `json:"offset"`
}

func toWire(recs []Record) []wireRecord {
	out := make([]wireRecord, len(recs))
	for i, r := range recs {
		out[i] = wireRecord{Key: r.Key, Value: r.Value, Timestamp: r.Timestamp, AppendTime: r.AppendTime, Partition: r.Partition, Offset: r.Offset}
	}
	return out
}

func fromWire(recs []wireRecord) []Record {
	out := make([]Record, len(recs))
	for i, r := range recs {
		out[i] = Record{Key: r.Key, Value: r.Value, Timestamp: r.Timestamp, AppendTime: r.AppendTime, Partition: r.Partition, Offset: r.Offset}
	}
	return out
}

func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return fmt.Errorf("broker: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// requestHandler maps one wire request to its response; the Server is
// generic over it so the same listener/framing serves a standalone
// Broker or a cluster Node.
type requestHandler interface {
	serve(req *wireRequest) *wireResponse
}

// Server exposes a request handler over TCP.
type Server struct {
	h  requestHandler
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a TCP server for the broker on addr (e.g. "127.0.0.1:0")
// and returns once the listener is bound.
func Serve(b *Broker, addr string) (*Server, error) {
	return serveHandler(brokerHandler{b: b}, addr)
}

// ServeNode starts a TCP server for a cluster node: the standard
// Transport ops gated by the node's leadership/high-watermark rules,
// plus the cluster ops (ping, metadata, push_view, log_end,
// replica_fetch, admit_follower).
func ServeNode(n *Node, addr string) (*Server, error) {
	return serveHandler(nodeHandler{n: n}, addr)
}

func serveHandler(h requestHandler, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{h: h, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		var req wireRequest
		if err := readFrame(br, &req); err != nil {
			return
		}
		resp := s.h.serve(&req)
		if err := writeFrame(bw, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// failResp encodes an error into a response, preserving the typed
// verdicts clients reconstruct: rebalance, retryability, and the
// NotLeader re-route hint.
func failResp(resp *wireResponse, err error) *wireResponse {
	resp.Err = err.Error()
	resp.Rebalance = errors.Is(err, ErrRebalance)
	resp.Retryable = resilience.IsRetryable(err)
	var nl *NotLeaderError
	if errors.As(err, &nl) {
		resp.NotLeader = &wireNotLeader{Topic: nl.TP.Topic, Partition: nl.TP.Partition, Leader: nl.Leader, Epoch: nl.Epoch}
	}
	return resp
}

// dispatchTransport serves the standard Transport ops against t — the
// shared core of the standalone-broker and cluster-node handlers.
func dispatchTransport(t Transport, req *wireRequest) *wireResponse {
	resp := &wireResponse{}
	fail := func(err error) *wireResponse { return failResp(resp, err) }
	switch req.Op {
	case "create_topic":
		if err := t.CreateTopic(req.Topic, req.Partitions); err != nil {
			return fail(err)
		}
	case "delete_topic":
		if err := t.DeleteTopic(req.Topic); err != nil {
			return fail(err)
		}
	case "partitions":
		n, err := t.Partitions(req.Topic)
		if err != nil {
			return fail(err)
		}
		resp.Count = n
	case "produce":
		off, err := t.Produce(req.Topic, req.Partition, fromWire(req.Records))
		if err != nil {
			return fail(err)
		}
		resp.Offset = off
	case "fetch":
		recs, err := t.Fetch(req.Topic, req.Partition, req.Offset, req.Max)
		if err != nil {
			return fail(err)
		}
		resp.Records = toWire(recs)
	case "fetch_multi":
		recs, err := t.FetchMulti(req.Topic, req.Fetches, req.Max)
		if err != nil {
			return fail(err)
		}
		resp.Records = toWire(recs)
	case "end_offset":
		off, err := t.EndOffset(req.Topic, req.Partition)
		if err != nil {
			return fail(err)
		}
		resp.Offset = off
	case "join_group":
		a, err := t.JoinGroup(req.Group, req.Topics)
		if err != nil {
			return fail(err)
		}
		resp.Assignment = &a
	case "leave_group":
		if err := t.LeaveGroup(req.Group, req.Member); err != nil {
			return fail(err)
		}
	case "fetch_assignment":
		a, err := t.FetchAssignment(req.Group, req.Member, req.Generation)
		resp.Assignment = &a
		if err != nil {
			return fail(err)
		}
	case "commit_offset":
		if req.TP == nil {
			return fail(fmt.Errorf("broker: commit_offset missing tp"))
		}
		if err := t.CommitOffset(req.Group, *req.TP, req.Offset); err != nil {
			return fail(err)
		}
	case "committed_offset":
		if req.TP == nil {
			return fail(fmt.Errorf("broker: committed_offset missing tp"))
		}
		off, err := t.CommittedOffset(req.Group, *req.TP)
		if err != nil {
			return fail(err)
		}
		resp.Offset = off
	default:
		return fail(fmt.Errorf("broker: unknown op %q", req.Op))
	}
	return resp
}

// brokerHandler serves a standalone Broker.
type brokerHandler struct{ b *Broker }

func (h brokerHandler) serve(req *wireRequest) *wireResponse {
	return dispatchTransport(h.b, req)
}

// nodeHandler serves a cluster Node: the cluster ops plus the standard
// Transport ops routed through the node's leadership gates.
type nodeHandler struct{ n *Node }

func (h nodeHandler) serve(req *wireRequest) *wireResponse {
	resp := &wireResponse{}
	fail := func(err error) *wireResponse { return failResp(resp, err) }
	switch req.Op {
	case "ping":
		if err := h.n.Ping(); err != nil {
			return fail(err)
		}
	case "metadata":
		v, err := h.n.ClusterView()
		if err != nil {
			return fail(err)
		}
		resp.View = &v
	case "push_view":
		if req.View == nil {
			return fail(fmt.Errorf("broker: push_view missing view"))
		}
		if err := h.n.PushView(*req.View); err != nil {
			return fail(err)
		}
	case "log_end":
		off, err := h.n.LogEnd(TopicPartition{Topic: req.Topic, Partition: req.Partition})
		if err != nil {
			return fail(err)
		}
		resp.Offset = off
	case "admit_follower":
		ok, err := h.n.AdmitFollower(TopicPartition{Topic: req.Topic, Partition: req.Partition}, req.From, req.Epoch)
		if err != nil {
			return fail(err)
		}
		resp.Admitted = ok
	case "replica_fetch":
		r, err := h.n.ReplicaFetch(ReplicaFetchRequest{
			Topic:     req.Topic,
			Partition: req.Partition,
			Offset:    req.Offset,
			Max:       req.Max,
			From:      req.From,
			Epoch:     req.Epoch,
		})
		if err != nil {
			return fail(err)
		}
		resp.Records = toWire(r.Records)
		resp.HW = r.HW
		resp.Epoch = r.Epoch
	default:
		return dispatchTransport(h.n, req)
	}
	return resp
}
