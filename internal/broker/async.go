package broker

import (
	"fmt"
	"sync"
	"time"
)

// AsyncProducer batches record sends through a dedicated sender goroutine,
// the way Kafka's producer client does: callers enqueue records and the
// sender ships whatever has accumulated in one broker call. At low rates
// every record ships immediately (the queue is empty, so the batch is 1 —
// linger.ms = 0 semantics); at saturation the in-flight send naturally
// accumulates a batch behind it, amortising the network round trip.
type AsyncProducer struct {
	p     *Producer
	queue chan Record

	mu     sync.Mutex
	err    error
	closed bool

	flushMu sync.Mutex // serialises Flush against the sender
	pending sync.WaitGroup
	done    chan struct{}
}

// maxSendBatch caps one batched broker call.
const maxSendBatch = 128

// NewAsyncProducer creates a batching producer for one topic. queueDepth
// bounds buffered records (backpressure point); zero means 256.
func NewAsyncProducer(t Transport, topic string, queueDepth int) (*AsyncProducer, error) {
	p, err := NewProducer(t, topic)
	if err != nil {
		return nil, err
	}
	if queueDepth <= 0 {
		queueDepth = 256
	}
	ap := &AsyncProducer{
		p:     p,
		queue: make(chan Record, queueDepth),
		done:  make(chan struct{}),
	}
	//lint:allow gorolifecycle sender is joined via the done channel in Close
	go ap.sender()
	return ap, nil
}

// Send enqueues one record value, blocking when the queue is full
// (producer-side backpressure). It returns any asynchronous send error
// observed so far.
func (ap *AsyncProducer) Send(value []byte) error {
	//lint:allow clockdiscipline client-side CreateTime stamp, not on the measured path
	return ap.SendRecord(Record{Value: value, Timestamp: time.Now()})
}

// SendRecord enqueues a record with explicit metadata.
func (ap *AsyncProducer) SendRecord(rec Record) error {
	ap.mu.Lock()
	if ap.closed {
		ap.mu.Unlock()
		return ErrClosed
	}
	err := ap.err
	ap.pending.Add(1)
	ap.mu.Unlock()
	if err != nil {
		ap.pending.Done()
		return err
	}
	ap.queue <- rec
	return nil
}

// Flush blocks until every record enqueued before the call has been
// shipped to the broker.
func (ap *AsyncProducer) Flush() error {
	ap.pending.Wait()
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return ap.err
}

// Close flushes and stops the sender. Further sends fail with ErrClosed.
func (ap *AsyncProducer) Close() error {
	ap.mu.Lock()
	if ap.closed {
		ap.mu.Unlock()
		return nil
	}
	ap.closed = true
	ap.mu.Unlock()
	ap.pending.Wait()
	close(ap.queue)
	<-ap.done
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return ap.err
}

// sender is the background sending loop: take one record, opportunistically
// drain more, ship them as one batch.
func (ap *AsyncProducer) sender() {
	defer close(ap.done)
	batch := make([]Record, 0, maxSendBatch)
	for rec := range ap.queue {
		batch = append(batch[:0], rec)
	drain:
		for len(batch) < maxSendBatch {
			select {
			case more, ok := <-ap.queue:
				if !ok {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		if _, _, err := ap.p.SendBatch(batch); err != nil {
			ap.mu.Lock()
			if ap.err == nil {
				ap.err = fmt.Errorf("broker: async producer: %w", err)
			}
			ap.mu.Unlock()
		}
		for range batch {
			ap.pending.Done()
		}
	}
}
