package broker

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"crayfish/internal/faults"
	"crayfish/internal/netsim"
	"crayfish/internal/telemetry"
)

// Errors returned by broker operations.
var (
	ErrTopicExists      = errors.New("broker: topic already exists")
	ErrUnknownTopic     = errors.New("broker: unknown topic")
	ErrUnknownPartition = errors.New("broker: unknown partition")
	ErrMessageTooLarge  = errors.New("broker: message exceeds max request size")
	ErrOffsetOutOfRange = errors.New("broker: offset out of range")
	ErrRebalance        = errors.New("broker: consumer group rebalanced; rejoin required")
	ErrUnknownMember    = errors.New("broker: unknown group member")
	ErrClosed           = errors.New("broker: closed")
)

// Config tunes a Broker.
type Config struct {
	// MaxRequestSize bounds a single record's value size. The paper
	// raises Kafka's limit to 50 MB for large-batch latency experiments
	// (§4.3); the same default applies here.
	MaxRequestSize int
	// Network injects a modelled LAN hop (latency + payload transfer
	// time) into every produce and fetch, imitating the separate-VM
	// deployment of §4.2. The zero profile keeps the broker in-process
	// fast; experiments opt into netsim.LAN.
	Network netsim.Profile
	// Clock supplies LogAppendTime stamps; nil means time.Now. Tests
	// inject a fake clock to make timestamp assertions deterministic.
	Clock func() time.Time
	// RetentionRecords caps each partition's log length, like Kafka's
	// retention.bytes: once a partition exceeds the cap, its oldest
	// records are truncated and the log start offset advances. Zero
	// keeps everything (the experiments' default — runs are short and
	// discard the broker wholesale).
	RetentionRecords int
	// Metrics publishes live broker telemetry (append/fetch counts and
	// per-topic backlog gauges; see docs/OBSERVABILITY.md) into the
	// given registry. Nil disables instrumentation at near-zero cost.
	Metrics *telemetry.Registry
	// Faults applies a deterministic fault plan at the produce boundary:
	// per-record drop / duplicate / delay verdicts keyed by topic
	// sequence numbers (see internal/faults and docs/FAULTS.md). Nil
	// disables injection. Delivery stays at-least-once: duplicated
	// records surface downstream and are deduplicated by the consumer's
	// seen-set, dropped records are accounted by the injector.
	Faults *faults.Injector
}

// DefaultConfig mirrors the paper's broker settings.
func DefaultConfig() Config {
	return Config{MaxRequestSize: 50 << 20}
}

// Broker is an in-process message broker instance.
type Broker struct {
	cfg Config

	// Metric handles, resolved once at construction (nil when telemetry
	// is disabled; recording through nil handles is a no-op).
	mAppendRecords *telemetry.Counter
	mAppendBytes   *telemetry.Counter
	mFetchRecords  *telemetry.Counter
	mFetchBytes    *telemetry.Counter

	mu     sync.RWMutex
	topics map[string]*topic
	groups map[string]*group
	closed bool
}

// New creates a broker with the given configuration.
func New(cfg Config) *Broker {
	if cfg.MaxRequestSize <= 0 {
		cfg.MaxRequestSize = DefaultConfig().MaxRequestSize
	}
	if cfg.Clock == nil {
		//lint:allow clockdiscipline documented default; measurements inject a fake clock
		cfg.Clock = time.Now
	}
	return &Broker{
		cfg:            cfg,
		mAppendRecords: cfg.Metrics.Counter("broker.append.records"),
		mAppendBytes:   cfg.Metrics.Counter("broker.append.bytes"),
		mFetchRecords:  cfg.Metrics.Counter("broker.fetch.records"),
		mFetchBytes:    cfg.Metrics.Counter("broker.fetch.bytes"),
		topics:         make(map[string]*topic),
		groups:         make(map[string]*group),
	}
}

// CreateTopic registers a topic with the given number of partitions.
func (b *Broker) CreateTopic(name string, partitions int) error {
	if partitions <= 0 {
		return fmt.Errorf("broker: topic %q needs at least one partition", name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if _, ok := b.topics[name]; ok {
		return fmt.Errorf("%w: %q", ErrTopicExists, name)
	}
	t := newTopic(name, partitions, b.cfg.RetentionRecords)
	t.backlog = b.cfg.Metrics.Gauge("broker.backlog." + name)
	b.topics[name] = t
	return nil
}

// DeleteTopic removes a topic, its logs, and any consumer-group offsets
// referencing it (so a recreated topic starts clean).
func (b *Broker) DeleteTopic(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.topics[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	delete(b.topics, name)
	for _, g := range b.groups {
		for tp := range g.committed {
			if tp.Topic == name {
				delete(g.committed, tp)
			}
		}
		delete(g.topics, name)
	}
	return nil
}

// Topics lists topic names in sorted order.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Partitions returns the partition count of a topic.
func (b *Broker) Partitions(name string) (int, error) {
	t, err := b.topic(name)
	if err != nil {
		return 0, err
	}
	return len(t.parts), nil
}

// Close marks the broker closed. Outstanding clients receive ErrClosed.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
}

func (b *Broker) topic(name string) (*topic, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, ErrClosed
	}
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	return t, nil
}

// Produce appends records to a topic partition, stamping each with the
// broker's LogAppendTime. It returns the assigned base offset.
func (b *Broker) Produce(topicName string, partition int, recs []Record) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	for i := range recs {
		if len(recs[i].Value) > b.cfg.MaxRequestSize {
			return 0, fmt.Errorf("%w: %d > %d bytes", ErrMessageTooLarge, len(recs[i].Value), b.cfg.MaxRequestSize)
		}
	}
	if partition < 0 || partition >= len(t.parts) {
		return 0, fmt.Errorf("%w: %s/%d", ErrUnknownPartition, topicName, partition)
	}
	if b.cfg.Network.Enabled() {
		bytes := 0
		for i := range recs {
			bytes += len(recs[i].Value) + len(recs[i].Key)
		}
		b.cfg.Network.Apply(bytes)
	}
	if b.cfg.Faults != nil {
		recs = b.applyFaults(topicName, recs)
	}
	base := t.parts[partition].append(recs, b.cfg.Clock)
	b.countAppend(t, recs)
	t.appended()
	return base, nil
}

// applyFaults asks the injector for a verdict per record: drops are
// removed before the log append, duplicates appended twice, delays
// served inline (the produce call is the network hop being faulted,
// mirroring netsim.Profile.Apply).
func (b *Broker) applyFaults(topicName string, recs []Record) []Record {
	out := make([]Record, 0, len(recs))
	var hold time.Duration
	for i := range recs {
		v := b.cfg.Faults.Message(topicName)
		if v.Drop {
			continue
		}
		hold += v.Delay
		out = append(out, recs[i])
		if v.Duplicate {
			out = append(out, recs[i])
		}
	}
	if hold > 0 {
		time.Sleep(hold) //lint:allow clockdiscipline modelled fault delay, applied like netsim.Profile.Apply
	}
	return out
}

// replicate appends already-stamped records from a partition leader,
// preserving their offsets and append times verbatim so replicas stay
// byte-identical to the leader's log. It bypasses the produce-boundary
// fault/network hooks — those fired once on the leader; replication is
// internal traffic — and skips the client-traffic counters.
func (b *Broker) replicate(topicName string, partition int, recs []Record) error {
	t, err := b.topic(topicName)
	if err != nil {
		return err
	}
	if partition < 0 || partition >= len(t.parts) {
		return fmt.Errorf("%w: %s/%d", ErrUnknownPartition, topicName, partition)
	}
	if err := t.parts[partition].replicate(recs); err != nil {
		return err
	}
	t.appended()
	return nil
}

// replicaRead serves a follower catch-up fetch from the raw log: no
// high-watermark clamp (followers replicate past it), no network model,
// and no consumer-traffic counters.
func (b *Broker) replicaRead(topicName string, partition int, offset int64, max int) ([]Record, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	if partition < 0 || partition >= len(t.parts) {
		return nil, fmt.Errorf("%w: %s/%d", ErrUnknownPartition, topicName, partition)
	}
	return t.parts[partition].fetch(offset, max)
}

// truncateTo discards records at and above offset `to` — the demotion
// path for a deposed leader, which drops its unacked tail before
// re-fetching from the new leader.
func (b *Broker) truncateTo(topicName string, partition int, to int64) error {
	t, err := b.topic(topicName)
	if err != nil {
		return err
	}
	if partition < 0 || partition >= len(t.parts) {
		return fmt.Errorf("%w: %s/%d", ErrUnknownPartition, topicName, partition)
	}
	t.parts[partition].truncate(to)
	return nil
}

// RebalanceGroups bumps every consumer group's generation, forcing all
// members through a rebalance round trip. The cluster controller calls
// it on the coordinator seat when broker membership changes, mirroring
// Kafka's rebalance-on-cluster-change.
func (b *Broker) RebalanceGroups() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, g := range b.groups {
		_ = b.rebalanceLocked(g)
	}
}

// AppendSignal returns a channel that is closed the next time records are
// appended to any partition of the topic. Callers must capture the
// channel, check for data, and only then block on it: the capture-then-
// check order guarantees an append racing the check re-arms the wait
// instead of being lost. This lets in-process consumers block for new
// records instead of busy-polling (see Consumer.PollWait).
func (b *Broker) AppendSignal(topicName string) (<-chan struct{}, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	return t.appendSignal(), nil
}

// countAppend and countFetch publish live log-traffic telemetry; both
// are no-ops when the broker was built without a metrics registry.
func (b *Broker) countAppend(t *topic, recs []Record) {
	if b.mAppendRecords == nil {
		return
	}
	bytes := 0
	for i := range recs {
		bytes += len(recs[i].Value) + len(recs[i].Key)
	}
	b.mAppendRecords.Add(int64(len(recs)))
	b.mAppendBytes.Add(int64(bytes))
	t.backlog.Add(int64(len(recs)))
}

func (b *Broker) countFetch(t *topic, recs []Record) {
	if b.mFetchRecords == nil || len(recs) == 0 {
		return
	}
	bytes := 0
	for i := range recs {
		bytes += len(recs[i].Value) + len(recs[i].Key)
	}
	b.mFetchRecords.Add(int64(len(recs)))
	b.mFetchBytes.Add(int64(bytes))
	t.backlog.Add(-int64(len(recs)))
}

// Fetch reads up to maxRecords from a topic partition starting at offset.
// It never blocks: an empty slice means the consumer caught up.
func (b *Broker) Fetch(topicName string, partition int, offset int64, maxRecords int) ([]Record, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	if partition < 0 || partition >= len(t.parts) {
		return nil, fmt.Errorf("%w: %s/%d", ErrUnknownPartition, topicName, partition)
	}
	recs, err := t.parts[partition].fetch(offset, maxRecords)
	if err == nil {
		if b.cfg.Network.Enabled() {
			bytes := 0
			for i := range recs {
				bytes += len(recs[i].Value) + len(recs[i].Key)
			}
			b.cfg.Network.Apply(bytes)
		}
		b.countFetch(t, recs)
	}
	return recs, err
}

// FetchRequest names one partition position inside a multi-partition
// fetch.
type FetchRequest struct {
	Partition int   `json:"partition"`
	Offset    int64 `json:"offset"`
}

// FetchMulti reads from several partitions of a topic in one broker round
// trip, up to maxTotal records overall — the shape of a real Kafka fetch
// request, which is what lets consumers amortise network latency across
// partitions. Requests are served in order; the network cost is charged
// once for the whole response.
func (b *Broker) FetchMulti(topicName string, reqs []FetchRequest, maxTotal int) ([]Record, error) {
	return b.FetchMultiInto(topicName, reqs, maxTotal, nil)
}

// FetchMultiInto is FetchMulti appending into out, reusing its capacity
// — the allocation-free poll path steady-state consumers ride (see
// docs/PERFORMANCE.md). The appended Record structs copy out of the
// log, so they stay valid regardless of what the caller later does with
// the buffer; their Key/Value byte slices alias the immutable stored
// records, exactly as FetchMulti's do.
func (b *Broker) FetchMultiInto(topicName string, reqs []FetchRequest, maxTotal int, out []Record) ([]Record, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	if maxTotal <= 0 {
		maxTotal = 1
	}
	base := len(out)
	for _, req := range reqs {
		if req.Partition < 0 || req.Partition >= len(t.parts) {
			return nil, fmt.Errorf("%w: %s/%d", ErrUnknownPartition, topicName, req.Partition)
		}
		if len(out)-base >= maxTotal {
			break
		}
		out, err = t.parts[req.Partition].fetchInto(req.Offset, maxTotal-(len(out)-base), out)
		if err != nil {
			return nil, err
		}
	}
	fetched := out[base:]
	if b.cfg.Network.Enabled() {
		bytes := 0
		for i := range fetched {
			bytes += len(fetched[i].Value) + len(fetched[i].Key)
		}
		b.cfg.Network.Apply(bytes)
	}
	b.countFetch(t, fetched)
	return out, nil
}

// EndOffset returns the next offset to be assigned in a partition (i.e.
// the current log end).
func (b *Broker) EndOffset(topicName string, partition int) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if partition < 0 || partition >= len(t.parts) {
		return 0, fmt.Errorf("%w: %s/%d", ErrUnknownPartition, topicName, partition)
	}
	return t.parts[partition].end(), nil
}

// StartOffset returns the earliest retained offset in a partition; it is
// greater than zero once retention has truncated the log head.
func (b *Broker) StartOffset(topicName string, partition int) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if partition < 0 || partition >= len(t.parts) {
		return 0, fmt.Errorf("%w: %s/%d", ErrUnknownPartition, topicName, partition)
	}
	return t.parts[partition].startOffset(), nil
}

// topic is a named set of partitions. backlog tracks appended-minus-
// fetched records as a live queue-depth proxy: exact while each record
// is fetched once (the Crayfish pipeline reads every topic through a
// single consuming side), an overestimate under re-reads.
type topic struct {
	name    string
	parts   []*partition
	backlog *telemetry.Gauge

	notifyMu sync.Mutex
	notify   chan struct{}
}

func newTopic(name string, n, retention int) *topic {
	t := &topic{name: name, parts: make([]*partition, n), notify: make(chan struct{})}
	for i := range t.parts {
		t.parts[i] = &partition{id: i, retention: retention}
	}
	return t
}

// appended wakes every waiter blocked on the topic's append signal by
// closing the current signal channel and arming a fresh one.
func (t *topic) appended() {
	t.notifyMu.Lock()
	close(t.notify)
	t.notify = make(chan struct{})
	t.notifyMu.Unlock()
}

// appendSignal returns the channel the next append will close.
func (t *topic) appendSignal() <-chan struct{} {
	t.notifyMu.Lock()
	defer t.notifyMu.Unlock()
	return t.notify
}

// partition is an append-only record log. start is the log start offset:
// it advances when retention truncates the head, as Kafka's does.
type partition struct {
	id        int
	retention int

	mu    sync.RWMutex
	start int64
	recs  []Record
}

// append stamps and stores records, returning the base offset, and
// enforces the retention cap.
func (p *partition) append(recs []Record, clock func() time.Time) int64 {
	now := clock()
	p.mu.Lock()
	defer p.mu.Unlock()
	base := p.start + int64(len(p.recs))
	for i, r := range recs {
		r.Partition = p.id
		r.Offset = base + int64(i)
		r.AppendTime = now
		p.recs = append(p.recs, r)
	}
	if p.retention > 0 && len(p.recs) > p.retention {
		drop := len(p.recs) - p.retention
		p.start += int64(drop)
		// Copy the tail into a fresh slice so the truncated head's
		// backing memory is released.
		tail := make([]Record, p.retention)
		copy(tail, p.recs[drop:])
		p.recs = tail
	}
	return base
}

// fetch copies up to max records starting at offset. An offset below the
// log start (truncated by retention) resets to the earliest retained
// record, Kafka's auto.offset.reset=earliest behaviour.
func (p *partition) fetch(offset int64, max int) ([]Record, error) {
	return p.fetchInto(offset, max, nil)
}

// fetchInto is fetch appending into out, so multi-partition pollers
// reuse one response buffer across calls instead of allocating per
// partition per poll.
func (p *partition) fetchInto(offset int64, max int, out []Record) ([]Record, error) {
	if max <= 0 {
		max = 1
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	end := p.start + int64(len(p.recs))
	if offset < 0 || offset > end {
		return nil, fmt.Errorf("%w: offset %d, log range [%d, %d]", ErrOffsetOutOfRange, offset, p.start, end)
	}
	if offset < p.start {
		offset = p.start
	}
	if offset == end {
		return out, nil
	}
	lo := offset - p.start
	hi := lo + int64(max)
	if hi > int64(len(p.recs)) {
		hi = int64(len(p.recs))
	}
	return append(out, p.recs[lo:hi]...), nil
}

// replicate appends leader-stamped records verbatim. Records the
// replica already holds are skipped (replica fetches can overlap after
// a retried round trip); a gap past the local end is an error — the
// follower must re-fetch from its end.
func (p *partition) replicate(recs []Record) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	end := p.start + int64(len(p.recs))
	for _, r := range recs {
		if r.Offset < end {
			continue
		}
		if r.Offset > end {
			return fmt.Errorf("%w: replica append at %d past log end %d", ErrOffsetOutOfRange, r.Offset, end)
		}
		p.recs = append(p.recs, r)
		end++
	}
	return nil
}

// truncate discards records at and above offset `to`.
func (p *partition) truncate(to int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if to < p.start {
		to = p.start
	}
	keep := to - p.start
	if keep < int64(len(p.recs)) {
		p.recs = p.recs[:keep]
	}
}

func (p *partition) end() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.start + int64(len(p.recs))
}

// startOffset returns the earliest retained offset.
func (p *partition) startOffset() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.start
}
