package broker

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"crayfish/internal/resilience"
)

// ClusterClient is the partition-aware Transport over a broker cluster:
// it discovers per-partition leadership from cluster metadata, routes
// every produce/fetch to the partition leader, and rides failovers out
// — a NotLeader verdict, a dead node, or an ack timeout triggers a
// metadata refresh and a retried, re-routed call under the client's
// resilience policy. Group operations route to the coordinator seat
// (node 0). Safe for concurrent use.
type ClusterClient struct {
	links []ClusterTransport
	retry *resilience.Retry

	mu   sync.RWMutex
	view ClusterView
}

// NewClusterClient builds a client over one link per node, indexed by
// node id (links[0] must be the coordinator/controller seat). retry
// nil gets a failover-sized default: tight backoff, wall-clock bounded
// generously past leader-election latency.
func NewClusterClient(links []ClusterTransport, retry *resilience.Retry) (*ClusterClient, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("broker: cluster client needs at least one node link")
	}
	if retry == nil {
		retry = &resilience.Retry{
			BaseDelay:  500 * time.Microsecond,
			MaxDelay:   10 * time.Millisecond,
			MaxElapsed: 5 * time.Second,
		}
	}
	return &ClusterClient{links: links, retry: retry}, nil
}

// refreshView re-reads cluster metadata, preferring the coordinator
// but falling back to any live node.
func (c *ClusterClient) refreshView() error {
	var lastErr error
	for _, link := range c.links {
		v, err := link.ClusterView()
		if err != nil {
			lastErr = err
			continue
		}
		c.mu.Lock()
		if v.Version > c.view.Version {
			c.view = v
		}
		c.mu.Unlock()
		return nil
	}
	return fmt.Errorf("broker: no node answered a metadata request: %w", lastErr)
}

// leaderFor resolves the partition's leader from the cached view,
// refreshing once when the view does not cover the partition yet.
func (c *ClusterClient) leaderFor(tp TopicPartition) (int, error) {
	c.mu.RLock()
	leader, err := c.view.Leader(tp)
	c.mu.RUnlock()
	if err == nil {
		return leader, nil
	}
	if rerr := c.refreshView(); rerr != nil {
		return 0, resilience.MarkRetryable(rerr)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	leader, err = c.view.Leader(tp)
	if err != nil {
		// Offline or unknown: retryable — a restarting replica may
		// revive the partition within the retry budget.
		return 0, resilience.MarkRetryable(err)
	}
	return leader, nil
}

// leaderForRetry resolves a partition leader under the client's retry
// policy — for resolution happening outside an onLeader loop (request
// grouping), where a transient metadata miss must not escape unretried.
func (c *ClusterClient) leaderForRetry(tp TopicPartition) (int, error) {
	var leader int
	err := resilience.Run(c.retry, nil, func() error {
		var lerr error
		leader, lerr = c.leaderFor(tp)
		return lerr
	})
	return leader, err
}

// onLeader runs fn against the partition leader's link, refreshing
// metadata and re-routing on every retryable routing failure.
func (c *ClusterClient) onLeader(tp TopicPartition, fn func(link ClusterTransport) error) error {
	return resilience.Run(c.retry, nil, func() error {
		leader, err := c.leaderFor(tp)
		if err != nil {
			return err
		}
		if leader < 0 || leader >= len(c.links) {
			return resilience.MarkRetryable(fmt.Errorf("broker: leader %d of %s/%d has no link", leader, tp.Topic, tp.Partition))
		}
		err = fn(c.links[leader])
		if err != nil && resilience.IsRetryable(err) {
			// NotLeader, node down, fenced, ack timeout: the routing
			// table moved under us — refresh before the retry.
			_ = c.refreshView()
		}
		return err
	})
}

// onCoordinator runs fn against the coordinator seat, retrying
// transport-level failures only; broker-level verdicts (including
// ErrRebalance, which carries a valid assignment) pass through.
func (c *ClusterClient) onCoordinator(fn func(link ClusterTransport) error) error {
	var inner error
	err := resilience.Run(c.retry, nil, func() error {
		inner = fn(c.links[0])
		if inner != nil && resilience.IsRetryable(inner) {
			return inner
		}
		return nil
	})
	if err != nil {
		return err
	}
	return inner
}

// CreateTopic implements Transport via the controller seat.
func (c *ClusterClient) CreateTopic(name string, partitions int) error {
	return c.onCoordinator(func(l ClusterTransport) error { return l.CreateTopic(name, partitions) })
}

// DeleteTopic implements Transport via the controller seat.
func (c *ClusterClient) DeleteTopic(name string) error {
	return c.onCoordinator(func(l ClusterTransport) error { return l.DeleteTopic(name) })
}

// Partitions implements Transport from cluster metadata.
func (c *ClusterClient) Partitions(topic string) (int, error) {
	c.mu.RLock()
	states, ok := c.view.Partitions[topic]
	c.mu.RUnlock()
	if ok {
		return len(states), nil
	}
	if err := c.refreshView(); err != nil {
		return 0, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	states, ok = c.view.Partitions[topic]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTopic, topic)
	}
	return len(states), nil
}

// Produce implements Transport: routed to the partition leader, acked
// by the cluster's high-watermark. A produce retried across a leader
// crash may append twice (at-least-once); the output consumer's
// seen-set deduplicates, as with the remote transport.
func (c *ClusterClient) Produce(topic string, partition int, recs []Record) (int64, error) {
	var off int64
	err := c.onLeader(TopicPartition{Topic: topic, Partition: partition}, func(l ClusterTransport) error {
		var perr error
		off, perr = l.Produce(topic, partition, recs)
		return perr
	})
	return off, err
}

// Fetch implements Transport, routed to the partition leader.
func (c *ClusterClient) Fetch(topic string, partition int, offset int64, max int) ([]Record, error) {
	var recs []Record
	err := c.onLeader(TopicPartition{Topic: topic, Partition: partition}, func(l ClusterTransport) error {
		var ferr error
		recs, ferr = l.Fetch(topic, partition, offset, max)
		return ferr
	})
	return recs, err
}

// FetchMulti implements Transport by splitting the request set across
// partition leaders — one round trip per distinct leader, preserving
// per-partition record order.
func (c *ClusterClient) FetchMulti(topic string, reqs []FetchRequest, maxTotal int) ([]Record, error) {
	if maxTotal <= 0 {
		maxTotal = 1
	}
	byLeader := make(map[int][]FetchRequest)
	for _, req := range reqs {
		leader, err := c.leaderForRetry(TopicPartition{Topic: topic, Partition: req.Partition})
		if err != nil {
			return nil, err
		}
		byLeader[leader] = append(byLeader[leader], req)
	}
	leaders := make([]int, 0, len(byLeader))
	for id := range byLeader {
		leaders = append(leaders, id)
	}
	sort.Ints(leaders)
	var out []Record
	for _, id := range leaders {
		budget := maxTotal - len(out)
		if budget <= 0 {
			break
		}
		sub := byLeader[id]
		var recs []Record
		// Route through onLeader keyed by the first sub-request so a
		// leadership move mid-call re-resolves and retries this group.
		tp := TopicPartition{Topic: topic, Partition: sub[0].Partition}
		err := c.onLeader(tp, func(l ClusterTransport) error {
			var ferr error
			recs, ferr = l.FetchMulti(topic, sub, budget)
			return ferr
		})
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

// EndOffset implements Transport: the leader's high-watermark, the
// consumer-visible log end.
func (c *ClusterClient) EndOffset(topic string, partition int) (int64, error) {
	var off int64
	err := c.onLeader(TopicPartition{Topic: topic, Partition: partition}, func(l ClusterTransport) error {
		var oerr error
		off, oerr = l.EndOffset(topic, partition)
		return oerr
	})
	return off, err
}

// JoinGroup implements Transport via the coordinator seat.
func (c *ClusterClient) JoinGroup(group string, topics []string) (Assignment, error) {
	var a Assignment
	err := c.onCoordinator(func(l ClusterTransport) error {
		var jerr error
		a, jerr = l.JoinGroup(group, topics)
		return jerr
	})
	return a, err
}

// LeaveGroup implements Transport via the coordinator seat.
func (c *ClusterClient) LeaveGroup(group, memberID string) error {
	return c.onCoordinator(func(l ClusterTransport) error { return l.LeaveGroup(group, memberID) })
}

// FetchAssignment implements Transport via the coordinator seat. An
// ErrRebalance verdict passes through with its assignment so group
// consumers adopt it, exactly as on a single broker.
func (c *ClusterClient) FetchAssignment(group, memberID string, generation int) (Assignment, error) {
	var a Assignment
	err := c.onCoordinator(func(l ClusterTransport) error {
		var ferr error
		a, ferr = l.FetchAssignment(group, memberID, generation)
		return ferr
	})
	return a, err
}

// CommitOffset implements Transport via the coordinator seat.
func (c *ClusterClient) CommitOffset(group string, tp TopicPartition, offset int64) error {
	return c.onCoordinator(func(l ClusterTransport) error { return l.CommitOffset(group, tp, offset) })
}

// CommittedOffset implements Transport via the coordinator seat.
func (c *ClusterClient) CommittedOffset(group string, tp TopicPartition) (int64, error) {
	var off int64
	err := c.onCoordinator(func(l ClusterTransport) error {
		var oerr error
		off, oerr = l.CommittedOffset(group, tp)
		return oerr
	})
	return off, err
}

var _ Transport = (*ClusterClient)(nil)
