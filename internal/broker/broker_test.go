package broker

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestBroker(t *testing.T) *Broker {
	t.Helper()
	b := New(DefaultConfig())
	if err := b.CreateTopic("in", 4); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCreateTopicValidation(t *testing.T) {
	b := New(Config{})
	if err := b.CreateTopic("t", 0); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("t", 2); !errors.Is(err, ErrTopicExists) {
		t.Fatalf("duplicate topic: %v", err)
	}
	n, err := b.Partitions("t")
	if err != nil || n != 2 {
		t.Fatalf("Partitions = %d, %v", n, err)
	}
	if _, err := b.Partitions("missing"); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("missing topic: %v", err)
	}
}

func TestDeleteTopic(t *testing.T) {
	b := newTestBroker(t)
	if err := b.DeleteTopic("in"); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteTopic("in"); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("double delete: %v", err)
	}
	if got := b.Topics(); len(got) != 0 {
		t.Fatalf("Topics = %v", got)
	}
}

func TestTopicsSorted(t *testing.T) {
	b := New(Config{})
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := b.CreateTopic(n, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := b.Topics()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Topics = %v", got)
		}
	}
}

func TestProduceFetchRoundTrip(t *testing.T) {
	b := newTestBroker(t)
	ts := time.Unix(100, 0)
	off, err := b.Produce("in", 1, []Record{{Value: []byte("a"), Timestamp: ts}, {Value: []byte("b"), Timestamp: ts}})
	if err != nil {
		t.Fatal(err)
	}
	if off != 0 {
		t.Fatalf("base offset = %d", off)
	}
	recs, err := b.Fetch("in", 1, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0].Value) != "a" || string(recs[1].Value) != "b" {
		t.Fatalf("fetched %v", recs)
	}
	if recs[0].Offset != 0 || recs[1].Offset != 1 || recs[0].Partition != 1 {
		t.Fatalf("offsets/partition wrong: %+v", recs)
	}
	if !recs[0].Timestamp.Equal(ts) {
		t.Fatal("CreateTime not preserved")
	}
	if recs[0].AppendTime.IsZero() {
		t.Fatal("AppendTime not stamped")
	}
}

func TestLogAppendTimeUsesBrokerClock(t *testing.T) {
	fake := time.Unix(42, 0)
	b := New(Config{Clock: func() time.Time { return fake }})
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Produce("t", 0, []Record{{Value: []byte("x"), Timestamp: time.Unix(1, 0)}}); err != nil {
		t.Fatal(err)
	}
	recs, err := b.Fetch("t", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !recs[0].AppendTime.Equal(fake) {
		t.Fatalf("AppendTime = %v, want broker clock %v", recs[0].AppendTime, fake)
	}
}

func TestFetchBounds(t *testing.T) {
	b := newTestBroker(t)
	if _, err := b.Produce("in", 0, []Record{{Value: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	if recs, err := b.Fetch("in", 0, 1, 5); err != nil || len(recs) != 0 {
		t.Fatalf("fetch at log end: %v, %v", recs, err)
	}
	if _, err := b.Fetch("in", 0, 2, 5); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("past-end fetch: %v", err)
	}
	if _, err := b.Fetch("in", 0, -1, 5); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("negative fetch: %v", err)
	}
	if _, err := b.Fetch("in", 9, 0, 5); !errors.Is(err, ErrUnknownPartition) {
		t.Fatalf("bad partition: %v", err)
	}
	if _, err := b.Fetch("nope", 0, 0, 5); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("bad topic: %v", err)
	}
}

func TestMaxRequestSize(t *testing.T) {
	b := New(Config{MaxRequestSize: 8})
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Produce("t", 0, []Record{{Value: make([]byte, 9)}}); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("oversized produce: %v", err)
	}
	if _, err := b.Produce("t", 0, []Record{{Value: make([]byte, 8)}}); err != nil {
		t.Fatalf("max-size produce: %v", err)
	}
}

func TestEndOffset(t *testing.T) {
	b := newTestBroker(t)
	off, err := b.EndOffset("in", 2)
	if err != nil || off != 0 {
		t.Fatalf("empty EndOffset = %d, %v", off, err)
	}
	if _, err := b.Produce("in", 2, []Record{{Value: []byte("a")}, {Value: []byte("b")}}); err != nil {
		t.Fatal(err)
	}
	off, err = b.EndOffset("in", 2)
	if err != nil || off != 2 {
		t.Fatalf("EndOffset = %d, %v", off, err)
	}
	if _, err := b.EndOffset("in", 99); !errors.Is(err, ErrUnknownPartition) {
		t.Fatalf("bad partition: %v", err)
	}
}

func TestClosedBrokerRejectsOps(t *testing.T) {
	b := newTestBroker(t)
	b.Close()
	if _, err := b.Produce("in", 0, []Record{{Value: []byte("x")}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("produce after close: %v", err)
	}
	if err := b.CreateTopic("t2", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
}

func TestOffsetsMonotonicProperty(t *testing.T) {
	// Whatever interleaving of producers runs, fetching the whole log
	// must observe contiguous offsets starting at zero with
	// non-decreasing append times.
	f := func(batchSizes []uint8) bool {
		b := New(Config{})
		if err := b.CreateTopic("t", 1); err != nil {
			return false
		}
		var wg sync.WaitGroup
		total := 0
		for _, bs := range batchSizes {
			n := int(bs)%5 + 1
			total += n
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				recs := make([]Record, n)
				for i := range recs {
					recs[i] = Record{Value: []byte{byte(i)}}
				}
				if _, err := b.Produce("t", 0, recs); err != nil {
					panic(err)
				}
			}(n)
		}
		wg.Wait()
		recs, err := b.Fetch("t", 0, 0, total+1)
		if err != nil || len(recs) != total {
			return false
		}
		for i, r := range recs {
			if r.Offset != int64(i) {
				return false
			}
			if i > 0 && r.AppendTime.Before(recs[i-1].AppendTime) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestProducerRoundRobin(t *testing.T) {
	b := newTestBroker(t)
	p, err := NewProducer(b, "in")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for i := 0; i < 8; i++ {
		part, _, err := p.Send(nil, []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		seen[part]++
	}
	for part := 0; part < 4; part++ {
		if seen[part] != 2 {
			t.Fatalf("partition %d got %d records, want 2 (map %v)", part, seen[part], seen)
		}
	}
}

func TestProducerKeyHashingSticky(t *testing.T) {
	b := newTestBroker(t)
	p, err := NewProducer(b, "in")
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := p.Send([]byte("user-1"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		part, _, err := p.Send([]byte("user-1"), []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		if part != first {
			t.Fatalf("key moved partitions: %d then %d", first, part)
		}
	}
}

func TestProducerUnknownTopic(t *testing.T) {
	b := newTestBroker(t)
	if _, err := NewProducer(b, "missing"); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("NewProducer: %v", err)
	}
}

func TestAssignedConsumerPollsAllPartitions(t *testing.T) {
	b := newTestBroker(t)
	p, err := NewProducer(b, "in")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, _, err := p.Send(nil, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewAssignedConsumer(b, "in")
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for i := 0; i < 20 && got < 12; i++ {
		recs, err := c.Poll(5)
		if err != nil {
			t.Fatal(err)
		}
		got += len(recs)
	}
	if got != 12 {
		t.Fatalf("consumed %d records, want 12", got)
	}
	// Caught up: next poll is empty.
	recs, err := c.Poll(5)
	if err != nil || len(recs) != 0 {
		t.Fatalf("poll after catch-up: %v, %v", recs, err)
	}
}

func TestAssignedConsumerExplicitPartitions(t *testing.T) {
	b := newTestBroker(t)
	if _, err := b.Produce("in", 0, []Record{{Value: []byte("p0")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Produce("in", 3, []Record{{Value: []byte("p3")}}); err != nil {
		t.Fatal(err)
	}
	c, err := NewAssignedConsumer(b, "in", 3)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.Poll(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Value) != "p3" {
		t.Fatalf("poll = %v", recs)
	}
	if _, err := NewAssignedConsumer(b, "in", 11); !errors.Is(err, ErrUnknownPartition) {
		t.Fatalf("bad partition: %v", err)
	}
}

func TestConsumerSeekToEnd(t *testing.T) {
	b := newTestBroker(t)
	if _, err := b.Produce("in", 0, []Record{{Value: []byte("old")}}); err != nil {
		t.Fatal(err)
	}
	c, err := NewAssignedConsumer(b, "in")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SeekToEnd(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Produce("in", 0, []Record{{Value: []byte("new")}}); err != nil {
		t.Fatal(err)
	}
	var got []Record
	for i := 0; i < 8 && len(got) == 0; i++ {
		recs, err := c.Poll(10)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, recs...)
	}
	if len(got) != 1 || string(got[0].Value) != "new" {
		t.Fatalf("poll after SeekToEnd = %v", got)
	}
}

func TestConsumerClosedPoll(t *testing.T) {
	b := newTestBroker(t)
	c, err := NewAssignedConsumer(b, "in")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := c.Poll(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("poll after close: %v", err)
	}
}
