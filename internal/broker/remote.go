package broker

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"crayfish/internal/resilience"
	"crayfish/internal/telemetry"
)

// ErrUnavailable types every transport-level failure of the remote
// client — dial failure, connection reset, torn frame, deadline — as
// distinct from an error the broker itself returned. ErrUnavailable
// errors are marked retryable (resilience.IsRetryable).
var ErrUnavailable = errors.New("broker: unavailable")

// DefaultCallTimeout bounds one remote round trip when WithCallTimeout
// is not given.
const DefaultCallTimeout = 30 * time.Second

// RemoteClient is a Transport speaking the TCP wire protocol to a broker
// Server. It maintains a small pool of connections; each request checks a
// connection out for its synchronous round trip, so independent goroutines
// proceed in parallel. Transport faults surface as typed, retryable
// ErrUnavailable errors; DialOptions add a retry policy and a circuit
// breaker on top. Note that retrying a Produce after a torn response may
// re-append records the broker already logged — delivery is
// at-least-once, and the output consumer's seen-set deduplicates.
type RemoteClient struct {
	addr    string
	timeout time.Duration
	retry   *resilience.Retry
	breaker *resilience.Breaker

	mu     sync.Mutex
	idle   []*remoteConn
	closed bool
}

type remoteConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// DialOption configures a RemoteClient.
type DialOption func(*RemoteClient)

// WithCallTimeout sets the per-round-trip deadline (default
// DefaultCallTimeout); d ≤ 0 disables deadlines entirely.
func WithCallTimeout(d time.Duration) DialOption {
	return func(rc *RemoteClient) { rc.timeout = d }
}

// WithRetry retries transport failures (ErrUnavailable) with the given
// policy; errors returned by the broker itself are never retried.
func WithRetry(r *resilience.Retry) DialOption {
	return func(rc *RemoteClient) { rc.retry = r }
}

// WithBreaker guards every round trip with the circuit breaker: failed
// trips count toward opening it, shed calls fail fast with a retryable
// resilience.ErrOpen.
func WithBreaker(b *resilience.Breaker) DialOption {
	return func(rc *RemoteClient) { rc.breaker = b }
}

// WithMetrics publishes the client's resilience counters (retries, shed
// calls, breaker state; see docs/OBSERVABILITY.md) into reg by chaining
// observers onto the client's Retry and Breaker. Options compose in
// order, so pass WithMetrics after WithRetry / WithBreaker.
func WithMetrics(reg *telemetry.Registry) DialOption {
	return func(rc *RemoteClient) {
		if reg == nil {
			return
		}
		if rc.retry != nil {
			retries := reg.Counter("resilience.retries.broker")
			prev := rc.retry.OnAttempt
			rc.retry.OnAttempt = func(attempt int, err error) {
				retries.Inc()
				if prev != nil {
					prev(attempt, err)
				}
			}
		}
		if rc.breaker != nil {
			shed := reg.Counter("resilience.shed.broker")
			state := reg.Gauge("resilience.breaker.state.broker")
			prevShed := rc.breaker.OnShed
			rc.breaker.OnShed = func() {
				shed.Inc()
				if prevShed != nil {
					prevShed()
				}
			}
			prevChange := rc.breaker.OnChange
			rc.breaker.OnChange = func(from, to resilience.State) {
				state.Set(int64(to))
				if prevChange != nil {
					prevChange(from, to)
				}
			}
		}
	}
}

// Dial connects to a broker server.
func Dial(addr string, opts ...DialOption) (*RemoteClient, error) {
	rc := &RemoteClient{addr: addr, timeout: DefaultCallTimeout}
	for _, o := range opts {
		o(rc)
	}
	// Validate connectivity eagerly so misconfiguration fails fast.
	conn, err := rc.checkout()
	if err != nil {
		return nil, err
	}
	rc.checkin(conn)
	return rc, nil
}

// Close tears down pooled connections.
func (rc *RemoteClient) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.closed = true
	for _, c := range rc.idle {
		c.c.Close()
	}
	rc.idle = nil
	return nil
}

func (rc *RemoteClient) checkout() (*remoteConn, error) {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(rc.idle); n > 0 {
		c := rc.idle[n-1]
		rc.idle = rc.idle[:n-1]
		rc.mu.Unlock()
		return c, nil
	}
	rc.mu.Unlock()
	// Bound the dial by the call timeout: a blackholed peer must fail
	// fast, not hang the caller (the controller probes liveness through
	// this path) on the kernel's connect timeout. Timeout ≤ 0 means
	// unbounded, matching WithCallTimeout's deadline contract.
	dialTimeout := rc.timeout
	if dialTimeout < 0 {
		dialTimeout = 0
	}
	conn, err := net.DialTimeout("tcp", rc.addr, dialTimeout)
	if err != nil {
		return nil, resilience.MarkRetryable(fmt.Errorf("broker: dial %s: %w: %w", rc.addr, ErrUnavailable, err))
	}
	return &remoteConn{
		c:  conn,
		br: bufio.NewReaderSize(conn, 64<<10),
		bw: bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// flushIdle drops every pooled connection: after one transport failure
// the rest of the pool points at the same dead broker (e.g. across a
// restart), so the next call must redial rather than inherit a corpse.
func (rc *RemoteClient) flushIdle() {
	rc.mu.Lock()
	idle := rc.idle
	rc.idle = nil
	rc.mu.Unlock()
	for _, c := range idle {
		c.c.Close()
	}
}

func (rc *RemoteClient) checkin(c *remoteConn) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed || len(rc.idle) >= 64 {
		c.c.Close()
		return
	}
	rc.idle = append(rc.idle, c)
}

// call performs one synchronous request/response round trip under the
// client's resilience policy. Transport faults (typed ErrUnavailable,
// retryable) are retried and count toward the breaker; errors the
// broker itself returned prove it is up, so they do neither.
func (rc *RemoteClient) call(req *wireRequest) (*wireResponse, error) {
	var resp *wireResponse
	err := resilience.Run(rc.retry, rc.breaker, func() error {
		r, terr := rc.callOnce(req)
		if terr != nil {
			return terr
		}
		resp = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return resp, decodeWireError(resp)
	}
	return resp, nil
}

// decodeWireError reconstructs the typed error a broker or cluster node
// encoded into resp: ErrRebalance and NotLeaderError keep their errors.Is
// / errors.As identity, and Retryable restores the resilience marking so
// cluster clients re-route across the wire exactly as in-process.
func decodeWireError(resp *wireResponse) error {
	var err error
	switch {
	case resp.Rebalance:
		err = ErrRebalance
	case resp.NotLeader != nil:
		err = &NotLeaderError{
			TP:     TopicPartition{Topic: resp.NotLeader.Topic, Partition: resp.NotLeader.Partition},
			Leader: resp.NotLeader.Leader,
			Epoch:  resp.NotLeader.Epoch,
		}
	default:
		err = errors.New(resp.Err)
	}
	if resp.Retryable {
		err = resilience.MarkRetryable(err)
	}
	return err
}

// callOnce is one wire round trip; every failure is a transport fault.
func (rc *RemoteClient) callOnce(req *wireRequest) (*wireResponse, error) {
	conn, err := rc.checkout()
	if err != nil {
		return nil, err
	}
	if rc.timeout > 0 {
		//lint:allow clockdiscipline socket I/O deadlines are wall-clock by net.Conn contract, not measurement timestamps
		conn.c.SetDeadline(time.Now().Add(rc.timeout))
	}
	if err := writeFrame(conn.bw, req); err != nil {
		conn.c.Close()
		rc.flushIdle()
		return nil, resilience.MarkRetryable(fmt.Errorf("broker: write: %w: %w", ErrUnavailable, err))
	}
	if err := conn.bw.Flush(); err != nil {
		conn.c.Close()
		rc.flushIdle()
		return nil, resilience.MarkRetryable(fmt.Errorf("broker: write: %w: %w", ErrUnavailable, err))
	}
	var resp wireResponse
	if err := readFrame(conn.br, &resp); err != nil {
		conn.c.Close()
		rc.flushIdle()
		return nil, resilience.MarkRetryable(fmt.Errorf("broker: read: %w: %w", ErrUnavailable, err))
	}
	if rc.timeout > 0 {
		conn.c.SetDeadline(time.Time{})
	}
	rc.checkin(conn)
	return &resp, nil
}

// CreateTopic implements Transport.
func (rc *RemoteClient) CreateTopic(name string, partitions int) error {
	_, err := rc.call(&wireRequest{Op: "create_topic", Topic: name, Partitions: partitions})
	return err
}

// DeleteTopic implements Transport.
func (rc *RemoteClient) DeleteTopic(name string) error {
	_, err := rc.call(&wireRequest{Op: "delete_topic", Topic: name})
	return err
}

// Partitions implements Transport.
func (rc *RemoteClient) Partitions(topic string) (int, error) {
	resp, err := rc.call(&wireRequest{Op: "partitions", Topic: topic})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// Produce implements Transport.
func (rc *RemoteClient) Produce(topic string, partition int, recs []Record) (int64, error) {
	resp, err := rc.call(&wireRequest{Op: "produce", Topic: topic, Partition: partition, Records: toWire(recs)})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// Fetch implements Transport.
func (rc *RemoteClient) Fetch(topic string, partition int, offset int64, max int) ([]Record, error) {
	resp, err := rc.call(&wireRequest{Op: "fetch", Topic: topic, Partition: partition, Offset: offset, Max: max})
	if err != nil {
		return nil, err
	}
	return fromWire(resp.Records), nil
}

// FetchMulti implements Transport.
func (rc *RemoteClient) FetchMulti(topic string, reqs []FetchRequest, maxTotal int) ([]Record, error) {
	resp, err := rc.call(&wireRequest{Op: "fetch_multi", Topic: topic, Fetches: reqs, Max: maxTotal})
	if err != nil {
		return nil, err
	}
	return fromWire(resp.Records), nil
}

// EndOffset implements Transport.
func (rc *RemoteClient) EndOffset(topic string, partition int) (int64, error) {
	resp, err := rc.call(&wireRequest{Op: "end_offset", Topic: topic, Partition: partition})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// JoinGroup implements Transport.
func (rc *RemoteClient) JoinGroup(group string, topics []string) (Assignment, error) {
	resp, err := rc.call(&wireRequest{Op: "join_group", Group: group, Topics: topics})
	if err != nil {
		return Assignment{}, err
	}
	return *resp.Assignment, nil
}

// LeaveGroup implements Transport.
func (rc *RemoteClient) LeaveGroup(group, memberID string) error {
	_, err := rc.call(&wireRequest{Op: "leave_group", Group: group, Member: memberID})
	return err
}

// FetchAssignment implements Transport.
func (rc *RemoteClient) FetchAssignment(group, memberID string, generation int) (Assignment, error) {
	resp, err := rc.call(&wireRequest{Op: "fetch_assignment", Group: group, Member: memberID, Generation: generation})
	if resp != nil && resp.Assignment != nil {
		return *resp.Assignment, err
	}
	return Assignment{}, err
}

// CommitOffset implements Transport.
func (rc *RemoteClient) CommitOffset(group string, tp TopicPartition, offset int64) error {
	_, err := rc.call(&wireRequest{Op: "commit_offset", Group: group, TP: &tp, Offset: offset})
	return err
}

// CommittedOffset implements Transport.
func (rc *RemoteClient) CommittedOffset(group string, tp TopicPartition) (int64, error) {
	resp, err := rc.call(&wireRequest{Op: "committed_offset", Group: group, TP: &tp})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// Ping implements ClusterPeer: a liveness probe against a cluster node.
func (rc *RemoteClient) Ping() error {
	_, err := rc.call(&wireRequest{Op: "ping"})
	return err
}

// PushView implements ClusterPeer: the controller installs metadata on
// a remote node.
func (rc *RemoteClient) PushView(v ClusterView) error {
	_, err := rc.call(&wireRequest{Op: "push_view", View: &v})
	return err
}

// ReplicaFetch implements ClusterPeer: a follower pulls records from
// the remote leader.
func (rc *RemoteClient) ReplicaFetch(req ReplicaFetchRequest) (ReplicaFetchResponse, error) {
	resp, err := rc.call(&wireRequest{
		Op:        "replica_fetch",
		Topic:     req.Topic,
		Partition: req.Partition,
		Offset:    req.Offset,
		Max:       req.Max,
		From:      req.From,
		Epoch:     req.Epoch,
	})
	if err != nil {
		return ReplicaFetchResponse{}, err
	}
	return ReplicaFetchResponse{Records: fromWire(resp.Records), HW: resp.HW, Epoch: resp.Epoch}, nil
}

// AdmitFollower implements ClusterPeer: the controller asks a remote
// leader to confirm a follower's catch-up before expanding the ISR.
func (rc *RemoteClient) AdmitFollower(tp TopicPartition, follower, epoch int) (bool, error) {
	resp, err := rc.call(&wireRequest{Op: "admit_follower", Topic: tp.Topic, Partition: tp.Partition, From: follower, Epoch: epoch})
	if err != nil {
		return false, err
	}
	return resp.Admitted, nil
}

// LogEnd implements ClusterPeer: the raw local log end (not the
// high-watermark) the controller compares during election.
func (rc *RemoteClient) LogEnd(tp TopicPartition) (int64, error) {
	resp, err := rc.call(&wireRequest{Op: "log_end", Topic: tp.Topic, Partition: tp.Partition})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// ClusterView implements ClusterTransport: cluster metadata discovery.
func (rc *RemoteClient) ClusterView() (ClusterView, error) {
	resp, err := rc.call(&wireRequest{Op: "metadata"})
	if err != nil {
		return ClusterView{}, err
	}
	if resp.View == nil {
		return ClusterView{}, fmt.Errorf("broker: metadata response missing view")
	}
	return *resp.View, nil
}

var (
	_ Transport        = (*RemoteClient)(nil)
	_ ClusterPeer      = (*RemoteClient)(nil)
	_ ClusterTransport = (*RemoteClient)(nil)
)
