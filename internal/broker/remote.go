package broker

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
)

// RemoteClient is a Transport speaking the TCP wire protocol to a broker
// Server. It maintains a small pool of connections; each request checks a
// connection out for its synchronous round trip, so independent goroutines
// proceed in parallel.
type RemoteClient struct {
	addr string

	mu     sync.Mutex
	idle   []*remoteConn
	closed bool
}

type remoteConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// Dial connects to a broker server.
func Dial(addr string) (*RemoteClient, error) {
	rc := &RemoteClient{addr: addr}
	// Validate connectivity eagerly so misconfiguration fails fast.
	conn, err := rc.checkout()
	if err != nil {
		return nil, err
	}
	rc.checkin(conn)
	return rc, nil
}

// Close tears down pooled connections.
func (rc *RemoteClient) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.closed = true
	for _, c := range rc.idle {
		c.c.Close()
	}
	rc.idle = nil
	return nil
}

func (rc *RemoteClient) checkout() (*remoteConn, error) {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(rc.idle); n > 0 {
		c := rc.idle[n-1]
		rc.idle = rc.idle[:n-1]
		rc.mu.Unlock()
		return c, nil
	}
	rc.mu.Unlock()
	conn, err := net.Dial("tcp", rc.addr)
	if err != nil {
		return nil, fmt.Errorf("broker: dial %s: %w", rc.addr, err)
	}
	return &remoteConn{
		c:  conn,
		br: bufio.NewReaderSize(conn, 64<<10),
		bw: bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

func (rc *RemoteClient) checkin(c *remoteConn) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed || len(rc.idle) >= 64 {
		c.c.Close()
		return
	}
	rc.idle = append(rc.idle, c)
}

// call performs one synchronous request/response round trip.
func (rc *RemoteClient) call(req *wireRequest) (*wireResponse, error) {
	conn, err := rc.checkout()
	if err != nil {
		return nil, err
	}
	if err := writeFrame(conn.bw, req); err != nil {
		conn.c.Close()
		return nil, err
	}
	if err := conn.bw.Flush(); err != nil {
		conn.c.Close()
		return nil, err
	}
	var resp wireResponse
	if err := readFrame(conn.br, &resp); err != nil {
		conn.c.Close()
		return nil, err
	}
	rc.checkin(conn)
	if resp.Err != "" {
		if resp.Rebalance {
			return &resp, ErrRebalance
		}
		return &resp, errors.New(resp.Err)
	}
	return &resp, nil
}

// CreateTopic implements Transport.
func (rc *RemoteClient) CreateTopic(name string, partitions int) error {
	_, err := rc.call(&wireRequest{Op: "create_topic", Topic: name, Partitions: partitions})
	return err
}

// DeleteTopic implements Transport.
func (rc *RemoteClient) DeleteTopic(name string) error {
	_, err := rc.call(&wireRequest{Op: "delete_topic", Topic: name})
	return err
}

// Partitions implements Transport.
func (rc *RemoteClient) Partitions(topic string) (int, error) {
	resp, err := rc.call(&wireRequest{Op: "partitions", Topic: topic})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// Produce implements Transport.
func (rc *RemoteClient) Produce(topic string, partition int, recs []Record) (int64, error) {
	resp, err := rc.call(&wireRequest{Op: "produce", Topic: topic, Partition: partition, Records: toWire(recs)})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// Fetch implements Transport.
func (rc *RemoteClient) Fetch(topic string, partition int, offset int64, max int) ([]Record, error) {
	resp, err := rc.call(&wireRequest{Op: "fetch", Topic: topic, Partition: partition, Offset: offset, Max: max})
	if err != nil {
		return nil, err
	}
	return fromWire(resp.Records), nil
}

// FetchMulti implements Transport.
func (rc *RemoteClient) FetchMulti(topic string, reqs []FetchRequest, maxTotal int) ([]Record, error) {
	resp, err := rc.call(&wireRequest{Op: "fetch_multi", Topic: topic, Fetches: reqs, Max: maxTotal})
	if err != nil {
		return nil, err
	}
	return fromWire(resp.Records), nil
}

// EndOffset implements Transport.
func (rc *RemoteClient) EndOffset(topic string, partition int) (int64, error) {
	resp, err := rc.call(&wireRequest{Op: "end_offset", Topic: topic, Partition: partition})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// JoinGroup implements Transport.
func (rc *RemoteClient) JoinGroup(group string, topics []string) (Assignment, error) {
	resp, err := rc.call(&wireRequest{Op: "join_group", Group: group, Topics: topics})
	if err != nil {
		return Assignment{}, err
	}
	return *resp.Assignment, nil
}

// LeaveGroup implements Transport.
func (rc *RemoteClient) LeaveGroup(group, memberID string) error {
	_, err := rc.call(&wireRequest{Op: "leave_group", Group: group, Member: memberID})
	return err
}

// FetchAssignment implements Transport.
func (rc *RemoteClient) FetchAssignment(group, memberID string, generation int) (Assignment, error) {
	resp, err := rc.call(&wireRequest{Op: "fetch_assignment", Group: group, Member: memberID, Generation: generation})
	if resp != nil && resp.Assignment != nil {
		return *resp.Assignment, err
	}
	return Assignment{}, err
}

// CommitOffset implements Transport.
func (rc *RemoteClient) CommitOffset(group string, tp TopicPartition, offset int64) error {
	_, err := rc.call(&wireRequest{Op: "commit_offset", Group: group, TP: &tp, Offset: offset})
	return err
}

// CommittedOffset implements Transport.
func (rc *RemoteClient) CommittedOffset(group string, tp TopicPartition) (int64, error) {
	resp, err := rc.call(&wireRequest{Op: "committed_offset", Group: group, TP: &tp})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

var _ Transport = (*RemoteClient)(nil)
