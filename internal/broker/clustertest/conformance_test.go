package clustertest

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"crayfish/internal/broker"
	"crayfish/internal/faults"
	"crayfish/internal/resilience"
)

// wireCluster is a 3-node cluster whose every link — controller pings,
// view pushes, replica fetches, client traffic — crosses real TCP.
type wireCluster struct {
	nodes   []*broker.Node
	servers []*broker.Server
	ctrl    *broker.Controller
	closers []func()
}

func (w *wireCluster) close() {
	w.ctrl.Close()
	for _, n := range w.nodes {
		n.Close()
	}
	for _, s := range w.servers {
		s.Close()
	}
	for _, c := range w.closers {
		c()
	}
}

// dialPeer opens an inter-node link with no retry policy: pings must
// fail fast so the controller sees a death, and replica fetchers ride
// errors out with their own idle poll — transport errors surface
// directly.
func dialPeer(t *testing.T, addr string) *broker.RemoteClient {
	t.Helper()
	rc, err := broker.Dial(addr, broker.WithCallTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

// newWireCluster stands up N served nodes wired to each other through
// RemoteClients, with the controller (heartbeat disabled; tests call
// Tick) also reaching every node over the wire.
func newWireCluster(t *testing.T, n, rf int) *wireCluster {
	t.Helper()
	w := &wireCluster{}
	for id := 0; id < n; id++ {
		node, err := broker.NewNode(broker.NodeConfig{
			ID:          id,
			AckTimeout:  2 * time.Second,
			ReplicaPoll: 200 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := broker.ServeNode(node, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		w.nodes = append(w.nodes, node)
		w.servers = append(w.servers, srv)
	}
	peers := make(map[int]broker.ClusterPeer, n)
	for id, srv := range w.servers {
		rc := dialPeer(t, srv.Addr())
		w.closers = append(w.closers, func() { rc.Close() })
		peers[id] = rc
	}
	for id, node := range w.nodes {
		for pid, p := range peers {
			if pid != id {
				node.SetPeer(pid, p)
			}
		}
	}
	ctrl, err := broker.NewController(broker.ControllerConfig{
		Peers:             peers,
		ReplicationFactor: rf,
		HeartbeatEvery:    time.Hour, // tests drive Tick directly
		Coordinator:       w.nodes[0].Broker(),
	})
	if err != nil {
		t.Fatal(err)
	}
	w.ctrl = ctrl
	ctrl.Start()
	t.Cleanup(w.close)
	return w
}

// client dials every node (optionally through per-node proxies) and
// builds the partition-aware cluster client over the wire links.
func (w *wireCluster) client(t *testing.T, addrs []string) *broker.ClusterClient {
	t.Helper()
	links := make([]broker.ClusterTransport, len(addrs))
	for i, addr := range addrs {
		rc, err := broker.Dial(addr, broker.WithCallTimeout(2*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		w.closers = append(w.closers, func() { rc.Close() })
		links[i] = rc
	}
	cl, err := broker.NewClusterClient(links, &resilience.Retry{
		BaseDelay:  500 * time.Microsecond,
		MaxDelay:   5 * time.Millisecond,
		MaxElapsed: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func (w *wireCluster) addrs() []string {
	out := make([]string, len(w.servers))
	for i, s := range w.servers {
		out[i] = s.Addr()
	}
	return out
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func fetchValues(t *testing.T, cl *broker.ClusterClient, topic string, partition int) map[string]bool {
	t.Helper()
	got := make(map[string]bool)
	var off int64
	for {
		recs, err := cl.Fetch(topic, partition, off, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			return got
		}
		for _, r := range recs {
			got[string(r.Value)] = true
			off = r.Offset + 1
		}
	}
}

// TestClusterConformanceTCPFailover reruns the leader-kill durability
// contract with every hop on real TCP: replica fetches, view pushes,
// controller pings, and client produces all cross the wire, the leader
// dies mid-stream, and zero acked records may be lost.
func TestClusterConformanceTCPFailover(t *testing.T) {
	w := newWireCluster(t, 3, 3)
	if err := w.ctrl.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	cl := w.client(t, w.addrs())

	// Partition 1 leads on node 1 (round-robin placement) — killing it
	// moves data-plane leadership without touching the coordinator seat.
	const total = 40
	acked := make(map[string]bool, total)
	var ackedN atomic.Int64
	done := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			v := fmt.Sprintf("rec-%03d", i)
			if _, err := cl.Produce("t", 1, []broker.Record{{Value: []byte(v)}}); err != nil {
				done <- fmt.Errorf("produce %d: %w", i, err)
				return
			}
			acked[v] = true // producer goroutine only; read after <-done
			ackedN.Add(1)
		}
		done <- nil
	}()
	waitUntil(t, 2*time.Second, func() bool { return ackedN.Load() >= 8 }, "8 acks before the kill")
	w.nodes[1].Crash()
	w.ctrl.Tick()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st, _ := w.ctrl.View().State(broker.TopicPartition{Topic: "t", Partition: 1})
	if st.Leader == 1 || st.Leader < 0 || st.Epoch < 2 {
		t.Fatalf("failover did not complete: %+v", st)
	}
	var got map[string]bool
	waitUntil(t, 2*time.Second, func() bool {
		got = fetchValues(t, cl, "t", 1)
		for v := range acked {
			if !got[v] {
				return false
			}
		}
		return true
	}, "all acked records visible after TCP failover")

	// Bring the deposed leader back: re-admission runs over the wire
	// (admit_follower frames to the new leader) and must land only after
	// the returner's replica fetches cover the high-watermark.
	w.nodes[1].Restart()
	waitUntil(t, 2*time.Second, func() bool {
		w.ctrl.Tick()
		st, _ := w.ctrl.View().State(broker.TopicPartition{Topic: "t", Partition: 1})
		return contains(st.ISR, 1)
	}, "returner re-admitted to ISR over the wire")
	lead, err := w.nodes[st.Leader].LogEnd(broker.TopicPartition{Topic: "t", Partition: 1})
	if err != nil {
		t.Fatal(err)
	}
	if end, err := w.nodes[1].LogEnd(broker.TopicPartition{Topic: "t", Partition: 1}); err != nil || end != lead {
		t.Fatalf("re-admitted replica log end = (%d, %v), want leader's %d", end, err, lead)
	}
}

// contains reports membership in a small id slice.
func contains(ids []int, id int) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// TestClusterConformanceTornFrames points the client's link to the
// partition leader through a torn-frame proxy and severs responses
// mid-stream, repeatedly: the client must surface each tear as a typed
// retryable fault, retry, and lose nothing it acked. Duplicates are
// allowed (at-least-once); loss is not.
func TestClusterConformanceTornFrames(t *testing.T) {
	w := newWireCluster(t, 3, 3)
	if err := w.ctrl.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	// Partition 0 leads on node 0: proxy that link only.
	proxy, err := faults.NewProxy(w.servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	w.closers = append(w.closers, func() { proxy.Close() })
	addrs := w.addrs()
	addrs[0] = proxy.Addr()
	cl := w.client(t, addrs)

	acked := make(map[string]bool)
	for i := 0; i < 30; i++ {
		if i%5 == 2 {
			// Tear the next response a few bytes in: the produce may or
			// may not have committed — exactly the ambiguity the retry
			// path must resolve toward at-least-once.
			proxy.TearAfter(3)
		}
		v := fmt.Sprintf("torn-%03d", i)
		if _, err := cl.Produce("t", 0, []broker.Record{{Value: []byte(v)}}); err != nil {
			t.Fatalf("produce %d across torn frames: %v", i, err)
		}
		acked[v] = true
	}
	got := fetchValues(t, cl, "t", 0)
	for v := range acked {
		if !got[v] {
			t.Fatalf("acked record %q lost to a torn frame", v)
		}
	}
}

// TestClusterConformanceNotLeaderOverWire pins the error-typing
// contract of the wire protocol: a misrouted produce must come back as
// a NotLeaderError that still satisfies errors.Is/As and stays
// retryable after a JSON round trip — that is what lets the cluster
// client re-route instead of failing.
func TestClusterConformanceNotLeaderOverWire(t *testing.T) {
	w := newWireCluster(t, 3, 3)
	if err := w.ctrl.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	// Dial node 1 directly — a follower for partition 0 — bypassing the
	// cluster client's routing.
	rc := dialPeer(t, w.servers[1].Addr())
	defer rc.Close()
	_, perr := rc.Produce("t", 0, []broker.Record{{Value: []byte("misrouted")}})
	if perr == nil {
		t.Fatal("follower accepted a produce")
	}
	var nl *broker.NotLeaderError
	if !errors.As(perr, &nl) || !errors.Is(perr, broker.ErrNotLeader) {
		t.Fatalf("wire error lost its type: %v", perr)
	}
	if nl.Leader != 0 {
		t.Fatalf("re-route hint = %d, want 0", nl.Leader)
	}
	if !resilience.IsRetryable(perr) {
		t.Fatal("NotLeader must stay retryable across the wire")
	}
}

// TestClusterConformanceGroupOverWire checks consumer-group handover
// across a broker death with every call on TCP: committed offsets
// survive the generation bump and no offset is consumed twice.
func TestClusterConformanceGroupOverWire(t *testing.T) {
	w := newWireCluster(t, 3, 3)
	if err := w.ctrl.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	cl := w.client(t, w.addrs())
	for p := 0; p < 2; p++ {
		for i := 0; i < 10; i++ {
			if _, err := cl.Produce("t", p, []broker.Record{{Value: []byte(fmt.Sprintf("p%d-%02d", p, i))}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	cons, err := broker.NewGroupConsumer(cl, "g", "t")
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	seen := make(map[string]int)
	drain := func() {
		t.Helper()
		for polls := 0; polls < 100; polls++ {
			recs, err := cons.Poll(8)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) == 0 {
				return
			}
			for _, r := range recs {
				seen[fmt.Sprintf("%d/%d", r.Partition, r.Offset)]++
			}
			if err := cons.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	drain()
	w.nodes[2].Crash()
	w.ctrl.Tick()
	for p := 0; p < 2; p++ {
		if _, err := cl.Produce("t", p, []broker.Record{{Value: []byte(fmt.Sprintf("p%d-late", p))}}); err != nil {
			t.Fatal(err)
		}
	}
	drain()
	if len(seen) != 22 {
		t.Fatalf("consumed %d offsets, want 22", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("offset %s consumed %d times across the rebalance", k, n)
		}
	}
}

// TestClusterFaultLogReplay proves the failover chaos machinery is
// replayable: the same fault plan bound to two fresh clusters produces
// byte-identical fault logs and the same node-liveness trajectory.
func TestClusterFaultLogReplay(t *testing.T) {
	plan := faults.Plan{
		Seed: 7,
		Events: []faults.Event{
			{At: 2 * time.Millisecond, Kind: faults.BrokerCrash, Target: "node-1", Duration: 10 * time.Millisecond},
		},
	}
	run := func() string {
		c, err := broker.NewCluster(broker.ClusterConfig{
			Nodes:             3,
			ReplicationFactor: 3,
			HeartbeatEvery:    time.Hour,
			ReplicaPoll:       200 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		inj, err := faults.New(plan)
		if err != nil {
			t.Fatal(err)
		}
		c.Bind(inj)
		inj.Start()
		n1, err := c.Node(1)
		if err != nil {
			t.Fatal(err)
		}
		waitUntil(t, 2*time.Second, func() bool { return n1.Ping() != nil }, "planned crash to land")
		waitUntil(t, 2*time.Second, func() bool { return n1.Ping() == nil }, "planned restart to land")
		inj.Stop()
		return faults.FormatLog(inj.Log())
	}
	first := run()
	second := run()
	if first != second {
		t.Fatalf("fault logs differ across identical runs:\n--- first\n%s\n--- second\n%s", first, second)
	}
	if first == "" {
		t.Fatal("empty fault log")
	}
}
