// Package clustertest holds the wire-level cluster conformance suite:
// the replication and failover contracts of internal/broker re-proven
// over real TCP links (ServeNode + RemoteClient peers) with transport
// chaos from faults.NewProxy layered on top. The in-process tests in
// internal/broker pin the protocol logic; this package pins that the
// same guarantees survive serialization, connection pools, and torn
// frames. leakcheck proves every node, server, proxy, and client joins
// its goroutines on the way out.
package clustertest

import (
	"testing"

	"crayfish/internal/testutil/leakcheck"
)

func TestMain(m *testing.M) { leakcheck.Main(m) }
