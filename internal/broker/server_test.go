package broker

import (
	"errors"
	"sync"
	"testing"
	"time"

	"crayfish/internal/netsim"
)

// startServer runs a broker TCP server for the test's lifetime.
func startServer(t *testing.T) (*Broker, *RemoteClient) {
	t.Helper()
	b := New(DefaultConfig())
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	rc, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	return b, rc
}

func TestRemoteProduceFetch(t *testing.T) {
	_, rc := startServer(t)
	if err := rc.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	n, err := rc.Partitions("t")
	if err != nil || n != 2 {
		t.Fatalf("Partitions = %d, %v", n, err)
	}
	ts := time.Now().Add(-time.Minute).Truncate(time.Millisecond)
	off, err := rc.Produce("t", 1, []Record{{Key: []byte("k"), Value: []byte("hello"), Timestamp: ts}})
	if err != nil || off != 0 {
		t.Fatalf("Produce = %d, %v", off, err)
	}
	recs, err := rc.Fetch("t", 1, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Value) != "hello" || string(recs[0].Key) != "k" {
		t.Fatalf("Fetch = %+v", recs)
	}
	if !recs[0].Timestamp.Equal(ts) {
		t.Fatalf("CreateTime lost over the wire: %v != %v", recs[0].Timestamp, ts)
	}
	if recs[0].AppendTime.IsZero() {
		t.Fatal("AppendTime lost over the wire")
	}
	end, err := rc.EndOffset("t", 1)
	if err != nil || end != 1 {
		t.Fatalf("EndOffset = %d, %v", end, err)
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	_, rc := startServer(t)
	if _, err := rc.Fetch("missing", 0, 0, 1); err == nil {
		t.Fatal("fetch from missing topic succeeded")
	}
	if err := rc.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if err := rc.CreateTopic("t", 1); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if _, err := rc.Fetch("t", 0, 99, 1); err == nil {
		t.Fatal("out-of-range fetch succeeded")
	}
}

func TestRemoteGroupLifecycle(t *testing.T) {
	_, rc := startServer(t)
	if err := rc.CreateTopic("t", 4); err != nil {
		t.Fatal(err)
	}
	a1, err := rc.JoinGroup("g", []string{"t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Partitions) != 4 {
		t.Fatalf("assignment %v", a1.Partitions)
	}
	a2, err := rc.JoinGroup("g", []string{"t"})
	if err != nil {
		t.Fatal(err)
	}
	// Stale generation surfaces as ErrRebalance with the new assignment.
	na1, err := rc.FetchAssignment("g", a1.MemberID, a1.Generation)
	if !errors.Is(err, ErrRebalance) {
		t.Fatalf("stale fetch: %v", err)
	}
	if len(na1.Partitions)+len(a2.Partitions) != 4 {
		t.Fatalf("split %v + %v", na1.Partitions, a2.Partitions)
	}
	tp := TopicPartition{Topic: "t", Partition: 0}
	if err := rc.CommitOffset("g", tp, 3); err != nil {
		t.Fatal(err)
	}
	off, err := rc.CommittedOffset("g", tp)
	if err != nil || off != 3 {
		t.Fatalf("committed = %d, %v", off, err)
	}
	if err := rc.LeaveGroup("g", a2.MemberID); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteConcurrentClients(t *testing.T) {
	_, rc := startServer(t)
	if err := rc.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := rc.Produce("t", 0, []Record{{Value: []byte("v")}}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	end, err := rc.EndOffset("t", 0)
	if err != nil || end != workers*per {
		t.Fatalf("EndOffset = %d, %v; want %d", end, err, workers*per)
	}
}

func TestRemoteClientThroughProducerConsumer(t *testing.T) {
	// The high-level Producer/Consumer must work unchanged over TCP.
	_, rc := startServer(t)
	if err := rc.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	p, err := NewProducer(rc, "t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, _, err := p.Send(nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewGroupConsumer(rc, "g", "t")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := 0
	for i := 0; i < 12 && got < 6; i++ {
		recs, err := c.Poll(4)
		if err != nil {
			t.Fatal(err)
		}
		got += len(recs)
	}
	if got != 6 {
		t.Fatalf("consumed %d, want 6", got)
	}
}

func TestClosedRemoteClient(t *testing.T) {
	_, rc := startServer(t)
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Partitions("t"); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close: %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("Dial to closed port succeeded")
	}
}

func TestInjectedLatencyDelays(t *testing.T) {
	b := New(Config{Network: netsim.Profile{Latency: 5 * time.Millisecond}})
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := b.Produce("t", 0, []Record{{Value: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Fetch("t", 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("injected latency not applied: %v", elapsed)
	}
}
