// Package broker implements the publish-subscribe message broker Crayfish
// uses to decouple the input producer, the system under test, and the
// output consumer (§3.5 "Message Brokers"). It is a Kafka analogue:
// partitioned append-only topic logs, producer/consumer clients, consumer
// groups with rebalancing, committed offsets, and broker-side append
// timestamps (Kafka's LogAppendTime), served either in-process or over TCP.
package broker

import "time"

// Record is one message in a partition log.
type Record struct {
	// Key routes the record to a partition when non-empty.
	Key []byte
	// Value is the payload.
	Value []byte
	// Timestamp is the producer-side creation time (CreateTime).
	Timestamp time.Time
	// AppendTime is the broker-side log append time (LogAppendTime).
	// Crayfish uses it as the end-to-end measurement end point (§3.3).
	AppendTime time.Time
	// Partition and Offset locate the record once appended.
	Partition int
	Offset    int64
}
