package broker

import (
	"fmt"
	"sort"
)

// TopicPartition names one partition of one topic.
type TopicPartition struct {
	Topic     string
	Partition int
}

// Assignment is the set of partitions a group member owns, with the
// group generation it was computed at.
type Assignment struct {
	MemberID   string
	Generation int
	Partitions []TopicPartition
}

// group coordinates a consumer group: membership, generation counting and
// range partition assignment, mirroring Kafka's group coordinator.
type group struct {
	name       string
	generation int
	nextMember int
	members    []string        // sorted member ids
	topics     map[string]bool // union of subscriptions
	assignment map[string][]TopicPartition
	committed  map[TopicPartition]int64
}

func (b *Broker) group(name string) *group {
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.groups[name]
	if !ok {
		g = &group{
			name:       name,
			topics:     make(map[string]bool),
			assignment: make(map[string][]TopicPartition),
			committed:  make(map[TopicPartition]int64),
		}
		b.groups[name] = g
	}
	return g
}

// JoinGroup adds a member subscribing to the given topics and returns its
// assignment. Every join bumps the group generation, invalidating
// assignments held by other members until they rejoin (they observe
// ErrRebalance from FetchAssignment).
func (b *Broker) JoinGroup(groupName string, topics []string) (Assignment, error) {
	for _, t := range topics {
		if _, err := b.Partitions(t); err != nil {
			return Assignment{}, err
		}
	}
	g := b.group(groupName)
	b.mu.Lock()
	defer b.mu.Unlock()
	member := fmt.Sprintf("%s-member-%d", groupName, g.nextMember)
	g.nextMember++
	g.members = append(g.members, member)
	sort.Strings(g.members)
	for _, t := range topics {
		g.topics[t] = true
	}
	if err := b.rebalanceLocked(g); err != nil {
		return Assignment{}, err
	}
	return Assignment{MemberID: member, Generation: g.generation, Partitions: g.assignment[member]}, nil
}

// LeaveGroup removes a member and triggers a rebalance.
func (b *Broker) LeaveGroup(groupName, memberID string) error {
	g := b.group(groupName)
	b.mu.Lock()
	defer b.mu.Unlock()
	idx := -1
	for i, m := range g.members {
		if m == memberID {
			idx = i
			break
		}
	}
	if idx == -1 {
		return fmt.Errorf("%w: %s in group %s", ErrUnknownMember, memberID, groupName)
	}
	g.members = append(g.members[:idx], g.members[idx+1:]...)
	return b.rebalanceLocked(g)
}

// FetchAssignment returns the member's current assignment. If the group
// generation moved past the member's, it returns ErrRebalance and the
// member must adopt the new assignment it receives.
func (b *Broker) FetchAssignment(groupName, memberID string, generation int) (Assignment, error) {
	g := b.group(groupName)
	b.mu.RLock()
	defer b.mu.RUnlock()
	parts, ok := g.assignment[memberID]
	if !ok {
		return Assignment{}, fmt.Errorf("%w: %s in group %s", ErrUnknownMember, memberID, groupName)
	}
	a := Assignment{MemberID: memberID, Generation: g.generation, Partitions: parts}
	if generation != g.generation {
		return a, ErrRebalance
	}
	return a, nil
}

// CommitOffset records the next offset a group will consume from a
// partition.
func (b *Broker) CommitOffset(groupName string, tp TopicPartition, offset int64) error {
	if offset < 0 {
		return fmt.Errorf("broker: negative commit offset %d", offset)
	}
	g := b.group(groupName)
	b.mu.Lock()
	defer b.mu.Unlock()
	g.committed[tp] = offset
	return nil
}

// CommittedOffset returns the committed offset for a partition, or 0 when
// the group never committed.
func (b *Broker) CommittedOffset(groupName string, tp TopicPartition) (int64, error) {
	g := b.group(groupName)
	b.mu.RLock()
	defer b.mu.RUnlock()
	return g.committed[tp], nil
}

// rebalanceLocked recomputes the range assignment. Caller holds b.mu.
func (b *Broker) rebalanceLocked(g *group) error {
	g.generation++
	g.assignment = make(map[string][]TopicPartition, len(g.members))
	for _, m := range g.members {
		g.assignment[m] = nil
	}
	if len(g.members) == 0 {
		return nil
	}
	topics := make([]string, 0, len(g.topics))
	for t := range g.topics {
		topics = append(topics, t)
	}
	sort.Strings(topics)
	for _, t := range topics {
		tp, ok := b.topics[t]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownTopic, t)
		}
		n := len(tp.parts)
		per := n / len(g.members)
		extra := n % len(g.members)
		p := 0
		for i, m := range g.members {
			take := per
			if i < extra {
				take++
			}
			for j := 0; j < take; j++ {
				g.assignment[m] = append(g.assignment[m], TopicPartition{Topic: t, Partition: p})
				p++
			}
		}
	}
	return nil
}
