package broker

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestJoinGroupAssignsAllPartitionsOnce(t *testing.T) {
	b := newTestBroker(t)
	a1, err := b.JoinGroup("g", []string{"in"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Partitions) != 4 {
		t.Fatalf("single member got %v", a1.Partitions)
	}
	a2, err := b.JoinGroup("g", []string{"in"})
	if err != nil {
		t.Fatal(err)
	}
	if a2.Generation <= a1.Generation {
		t.Fatalf("generation did not advance: %d then %d", a1.Generation, a2.Generation)
	}
	// First member must observe the rebalance and its halved assignment.
	na1, err := b.FetchAssignment("g", a1.MemberID, a1.Generation)
	if !errors.Is(err, ErrRebalance) {
		t.Fatalf("stale generation fetch: %v", err)
	}
	if len(na1.Partitions)+len(a2.Partitions) != 4 {
		t.Fatalf("partitions not fully assigned: %v + %v", na1.Partitions, a2.Partitions)
	}
	seen := map[TopicPartition]bool{}
	for _, tp := range append(append([]TopicPartition{}, na1.Partitions...), a2.Partitions...) {
		if seen[tp] {
			t.Fatalf("partition %v assigned twice", tp)
		}
		seen[tp] = true
	}
}

func TestJoinGroupUnknownTopic(t *testing.T) {
	b := newTestBroker(t)
	if _, err := b.JoinGroup("g", []string{"missing"}); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("join with unknown topic: %v", err)
	}
}

func TestLeaveGroupRebalances(t *testing.T) {
	b := newTestBroker(t)
	a1, err := b.JoinGroup("g", []string{"in"})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := b.JoinGroup("g", []string{"in"})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LeaveGroup("g", a1.MemberID); err != nil {
		t.Fatal(err)
	}
	na2, err := b.FetchAssignment("g", a2.MemberID, a2.Generation)
	if !errors.Is(err, ErrRebalance) {
		t.Fatalf("fetch after leave: %v", err)
	}
	if len(na2.Partitions) != 4 {
		t.Fatalf("survivor owns %v, want all 4", na2.Partitions)
	}
	if err := b.LeaveGroup("g", a1.MemberID); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("double leave: %v", err)
	}
}

func TestCommitAndFetchOffsets(t *testing.T) {
	b := newTestBroker(t)
	tp := TopicPartition{Topic: "in", Partition: 1}
	off, err := b.CommittedOffset("g", tp)
	if err != nil || off != 0 {
		t.Fatalf("initial committed = %d, %v", off, err)
	}
	if err := b.CommitOffset("g", tp, 7); err != nil {
		t.Fatal(err)
	}
	off, err = b.CommittedOffset("g", tp)
	if err != nil || off != 7 {
		t.Fatalf("committed = %d, %v", off, err)
	}
	if err := b.CommitOffset("g", tp, -1); err == nil {
		t.Fatal("negative commit accepted")
	}
}

func TestGroupAssignmentPartitionProperty(t *testing.T) {
	// For any member count, the range assignment covers every partition
	// exactly once and spreads sizes within one of each other.
	f := func(membersRaw, partsRaw uint8) bool {
		members := int(membersRaw)%6 + 1
		parts := int(partsRaw)%12 + 1
		b := New(Config{})
		if err := b.CreateTopic("t", parts); err != nil {
			return false
		}
		var last Assignment
		for i := 0; i < members; i++ {
			a, err := b.JoinGroup("g", []string{"t"})
			if err != nil {
				return false
			}
			last = a
		}
		seen := map[int]bool{}
		sizes := []int{}
		g := b.group("g")
		b.mu.RLock()
		defer b.mu.RUnlock()
		if g.generation != last.Generation {
			return false
		}
		for _, ps := range g.assignment {
			sizes = append(sizes, len(ps))
			for _, tp := range ps {
				if seen[tp.Partition] {
					return false
				}
				seen[tp.Partition] = true
			}
		}
		if len(seen) != parts {
			return false
		}
		min, max := parts, 0
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupConsumerEndToEnd(t *testing.T) {
	b := newTestBroker(t)
	p, err := NewProducer(b, "in")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := p.Send(nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c1, err := NewGroupConsumer(b, "g", "in")
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for i := 0; i < 10 && got < 8; i++ {
		recs, err := c1.Poll(4)
		if err != nil {
			t.Fatal(err)
		}
		got += len(recs)
	}
	if got != 8 {
		t.Fatalf("consumed %d, want 8", got)
	}
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}

	// A second member joining splits the assignment; c1 adapts on poll.
	c2, err := NewGroupConsumer(b, "g", "in")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Poll(1); err != nil {
		t.Fatalf("poll across rebalance: %v", err)
	}
	if len(c1.Assignment())+len(c2.Assignment()) != 4 {
		t.Fatalf("assignments %v + %v", c1.Assignment(), c2.Assignment())
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupConsumerResumesFromCommitted(t *testing.T) {
	b := New(Config{})
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Produce("t", 0, []Record{{Value: []byte("a")}, {Value: []byte("b")}}); err != nil {
		t.Fatal(err)
	}
	c1, err := NewGroupConsumer(b, "g", "t")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c1.Poll(1)
	if err != nil || len(recs) != 1 {
		t.Fatalf("first poll: %v, %v", recs, err)
	}
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh member resumes after the committed record.
	c2, err := NewGroupConsumer(b, "g", "t")
	if err != nil {
		t.Fatal(err)
	}
	recs, err = c2.Poll(5)
	if err != nil || len(recs) != 1 || string(recs[0].Value) != "b" {
		t.Fatalf("resumed poll = %v, %v", recs, err)
	}
}
