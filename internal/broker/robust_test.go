package broker

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"crayfish/internal/faults"
	"crayfish/internal/resilience"
)

// TestServerSurvivesGarbageBytes throws random byte streams at the broker
// TCP server: the server must drop the connection without crashing, and
// keep serving well-formed clients afterwards.
func TestServerSurvivesGarbageBytes(t *testing.T) {
	b := New(DefaultConfig())
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, r.Intn(512)+1)
		r.Read(junk)
		conn.Write(junk)
		conn.Close()
	}
	// An oversized frame header must be rejected, not allocated.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<31)
	conn.Write(hdr[:])
	conn.Close()

	// A valid frame with JSON junk inside must produce an error reply,
	// not a crash.
	conn, err = net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"op":"no-such-op"}`)
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	conn.Write(hdr[:])
	conn.Write(body)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	reply := make([]byte, 4)
	if _, err := conn.Read(reply); err != nil {
		t.Fatalf("server did not reply to unknown op: %v", err)
	}
	conn.Close()

	// The broker still serves a real client.
	rc, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if err := rc.CreateTopic("post-garbage", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Produce("post-garbage", 0, []Record{{Value: []byte("ok")}}); err != nil {
		t.Fatal(err)
	}
}

// TestFetchMultiBounds exercises FetchMulti's validation paths.
func TestFetchMultiBounds(t *testing.T) {
	b := New(DefaultConfig())
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Produce("t", 0, []Record{{Value: []byte("a")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Produce("t", 1, []Record{{Value: []byte("b")}}); err != nil {
		t.Fatal(err)
	}
	recs, err := b.FetchMulti("t", []FetchRequest{{Partition: 0}, {Partition: 1}}, 10)
	if err != nil || len(recs) != 2 {
		t.Fatalf("FetchMulti = %v, %v", recs, err)
	}
	// maxTotal caps across partitions.
	recs, err = b.FetchMulti("t", []FetchRequest{{Partition: 0}, {Partition: 1}}, 1)
	if err != nil || len(recs) != 1 {
		t.Fatalf("capped FetchMulti = %v, %v", recs, err)
	}
	if _, err := b.FetchMulti("t", []FetchRequest{{Partition: 9}}, 1); err == nil {
		t.Fatal("bad partition accepted")
	}
	if _, err := b.FetchMulti("missing", nil, 1); err == nil {
		t.Fatal("bad topic accepted")
	}
	if _, err := b.FetchMulti("t", []FetchRequest{{Partition: 0, Offset: 99}}, 1); err == nil {
		t.Fatal("out-of-range offset accepted")
	}
	// Empty request list is a legal no-op.
	recs, err = b.FetchMulti("t", nil, 5)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty FetchMulti = %v, %v", recs, err)
	}
}

// TestAsyncProducerLifecycle covers batching, flush, and close semantics.
func TestAsyncProducerLifecycle(t *testing.T) {
	b := New(DefaultConfig())
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	ap, err := NewAsyncProducer(b, "t", 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := ap.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ap.Flush(); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for p := 0; p < 2; p++ {
		end, err := b.EndOffset("t", p)
		if err != nil {
			t.Fatal(err)
		}
		total += end
	}
	if total != 50 {
		t.Fatalf("flushed %d of 50 records", total)
	}
	if err := ap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ap.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := ap.Send([]byte("late")); err == nil {
		t.Fatal("send after close accepted")
	}
}

func TestAsyncProducerSurfacesBrokerErrors(t *testing.T) {
	b := New(Config{MaxRequestSize: 4})
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	ap, err := NewAsyncProducer(b, "t", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.Send(make([]byte, 64)); err != nil {
		t.Fatal(err) // enqueue succeeds; failure is asynchronous
	}
	if err := ap.Flush(); err == nil {
		t.Fatal("oversized record error not surfaced on flush")
	}
	if err := ap.Close(); err == nil {
		t.Fatal("oversized record error not surfaced on close")
	}
}

func TestAsyncProducerUnknownTopic(t *testing.T) {
	b := New(DefaultConfig())
	if _, err := NewAsyncProducer(b, "missing", 4); err == nil {
		t.Fatal("unknown topic accepted")
	}
}

func TestRetentionTruncatesHead(t *testing.T) {
	b := New(Config{RetentionRecords: 5})
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := b.Produce("t", 0, []Record{{Value: []byte{byte(i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	start, err := b.StartOffset("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	end, err := b.EndOffset("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if start != 7 || end != 12 {
		t.Fatalf("log range [%d,%d], want [7,12]", start, end)
	}
	// Offsets survive truncation: the retained records keep theirs.
	recs, err := b.Fetch("t", 0, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[0].Offset != 7 || recs[0].Value[0] != 7 {
		t.Fatalf("retained records %+v", recs)
	}
	// A stale consumer position resets to earliest, Kafka-style.
	recs, err = b.Fetch("t", 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Offset != 7 {
		t.Fatalf("auto-reset fetch %+v", recs)
	}
	// Past-end fetches still error.
	if _, err := b.Fetch("t", 0, 13, 1); err == nil {
		t.Fatal("past-end fetch accepted")
	}
}

func TestRetentionUnboundedByDefault(t *testing.T) {
	b := New(DefaultConfig())
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := b.Produce("t", 0, []Record{{Value: []byte{1}}}); err != nil {
			t.Fatal(err)
		}
	}
	start, err := b.StartOffset("t", 0)
	if err != nil || start != 0 {
		t.Fatalf("start = %d, %v", start, err)
	}
}

// TestClientReconnectsAfterBrokerRestart kills the broker's TCP server
// under a retry-enabled client and brings it back on the same address:
// the in-flight call must ride the restart out through the typed
// retryable dial/transport errors.
func TestClientReconnectsAfterBrokerRestart(t *testing.T) {
	b := New(DefaultConfig())
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	rc, err := Dial(addr, WithRetry(&resilience.Retry{
		Attempts:  40,
		BaseDelay: 5 * time.Millisecond,
		MaxDelay:  25 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.Produce("t", 0, []Record{{Value: []byte("before")}}); err != nil {
		t.Fatal(err)
	}

	// Restart: close the server, bring it back on the same address a
	// beat later. The broker state (topics, logs) survives — only the
	// transport goes away, as in a rolling broker restart.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	restarted := make(chan *Server, 1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		srv2, err := Serve(b, addr)
		if err != nil {
			t.Error(err)
			restarted <- nil
			return
		}
		restarted <- srv2
	}()
	if _, err := rc.Produce("t", 0, []Record{{Value: []byte("after")}}); err != nil {
		t.Fatalf("produce across the restart: %v", err)
	}
	srv2 := <-restarted
	if srv2 == nil {
		t.FailNow()
	}
	defer srv2.Close()
	end, err := b.EndOffset("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if end != 2 {
		t.Fatalf("log holds %d records, want 2 (no loss, no duplicate)", end)
	}
}

// TestTornFrameSurfacesTypedRetryableError reads a response through a
// fault proxy that severs the stream mid-frame: the client must surface
// a typed retryable ErrUnavailable (a partial read is a transport
// fault), and a retry-enabled client must recover on a fresh
// connection.
func TestTornFrameSurfacesTypedRetryableError(t *testing.T) {
	b := New(DefaultConfig())
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy, err := faults.NewProxy(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Bare client: the torn frame must surface typed, not as a decode
	// error or a hang.
	rc, err := Dial(proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	proxy.TearAfter(2) // two bytes of the response length prefix, then cut
	_, err = rc.Produce("t", 0, []Record{{Value: []byte("torn")}})
	if err == nil {
		t.Fatal("torn mid-frame response returned success")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("torn frame error = %v, want ErrUnavailable", err)
	}
	if !resilience.IsRetryable(err) {
		t.Fatalf("torn frame error not marked retryable: %v", err)
	}
	_ = rc.Close()

	// Retry-enabled client: same fault, but the second attempt runs on a
	// fresh connection and succeeds.
	rc2, err := Dial(proxy.Addr(), WithRetry(&resilience.Retry{
		Attempts:  5,
		BaseDelay: time.Millisecond,
		MaxDelay:  5 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer rc2.Close()
	proxy.TearAfter(2)
	if _, err := rc2.Produce("t", 0, []Record{{Value: []byte("retried")}}); err != nil {
		t.Fatalf("retry across torn frame: %v", err)
	}
}
