package broker

import (
	"fmt"
	"testing"
)

// TestPollSteadyStateAllocs pins the consumer fetch path's steady-state
// allocation profile: once Poll's reusable request and response buffers
// have warmed up, re-reading a topic through the in-process broker
// (which serves FetchMultiInto) must not allocate at all. A regression
// here means someone re-introduced a per-call slice on the hot path.
func TestPollSteadyStateAllocs(t *testing.T) {
	const parts, perPart = 4, 64
	b := New(DefaultConfig())
	if err := b.CreateTopic("t", parts); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < parts; p++ {
		recs := make([]Record, perPart)
		for i := range recs {
			recs[i] = Record{Value: []byte(fmt.Sprintf("p%d-%d", p, i))}
		}
		if _, err := b.Produce("t", p, recs); err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewAssignedConsumer(b, "t")
	if err != nil {
		t.Fatal(err)
	}

	drain := func() int {
		total := 0
		for p := 0; p < parts; p++ {
			c.Seek(TopicPartition{Topic: "t", Partition: p}, 0)
		}
		for {
			recs, err := c.Poll(128)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) == 0 {
				return total
			}
			total += len(recs)
		}
	}

	// Warm the reusable buffers, then measure.
	if got := drain(); got != parts*perPart {
		t.Fatalf("warm drain read %d records, want %d", got, parts*perPart)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if got := drain(); got != parts*perPart {
			t.Fatalf("drain read %d records, want %d", got, parts*perPart)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Poll allocated %.1f times per drain, want 0", allocs)
	}
}
