package broker

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"crayfish/internal/telemetry"
)

// ControllerConfig configures the cluster controller.
type ControllerConfig struct {
	// Peers links the controller to every node, keyed by node id; ids
	// must be 0..len(Peers)-1 (partition placement is modular over the
	// id space).
	Peers map[int]ClusterPeer
	// ReplicationFactor is the replica count per partition (clamped to
	// the node count).
	ReplicationFactor int
	// HeartbeatEvery is the liveness sweep interval (default 1ms for
	// in-process clusters; brokerd uses a longer wire-friendly period).
	HeartbeatEvery time.Duration
	// Coordinator, when set, is the consumer-group coordinator seat
	// (node 0's local broker): every membership change bumps all group
	// generations so consumers rebalance.
	Coordinator *Broker
	// Metrics publishes broker.cluster.* telemetry.
	Metrics *telemetry.Registry
}

// Controller is the cluster's deterministic control plane — the role
// ZooKeeper/KRaft plays for Kafka, reduced to a single seat. It owns
// the authoritative ClusterView: it sweeps node liveness, shrinks and
// re-expands the ISR, elects the longest-log in-sync replica when a
// leader dies (bumping the leader epoch that fences the deposed one),
// and pushes every change to the surviving nodes. All transitions are
// serialized under one mutex, so concurrent failures resolve in a
// single deterministic order.
type Controller struct {
	rf          int
	nNodes      int
	tick        time.Duration
	coordinator *Broker

	mFailovers   *telemetry.Counter
	mLeaderEpoch *telemetry.Gauge
	metrics      *telemetry.Registry

	// tickMu serializes whole liveness sweeps (the ping phase runs
	// outside c.mu so a stalled peer cannot block topic admin or View).
	tickMu sync.Mutex

	mu       sync.Mutex
	peers    map[int]ClusterPeer
	view     ClusterView
	down     map[int]bool
	maxEpoch int
	started  bool
	closed   bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewController builds a controller over the given peer set.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("broker: controller needs at least one peer")
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 1
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Millisecond
	}
	members := make([]int, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		if id < 0 || id >= len(cfg.Peers) {
			return nil, fmt.Errorf("broker: controller peer ids must be 0..%d, got %d", len(cfg.Peers)-1, id)
		}
		members = append(members, id)
	}
	sort.Ints(members)
	c := &Controller{
		rf:           cfg.ReplicationFactor,
		nNodes:       len(cfg.Peers),
		tick:         cfg.HeartbeatEvery,
		coordinator:  cfg.Coordinator,
		mFailovers:   cfg.Metrics.Counter("broker.cluster.failovers"),
		mLeaderEpoch: cfg.Metrics.Gauge("broker.cluster.leader_epoch"),
		metrics:      cfg.Metrics,
		peers:        cfg.Peers,
		down:         make(map[int]bool),
		stop:         make(chan struct{}),
		view: ClusterView{
			Version:    1,
			Members:    members,
			Partitions: make(map[string][]PartitionState),
		},
	}
	return c, nil
}

// Start launches the liveness sweep loop.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.started || c.closed {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	c.wg.Add(1)
	go c.run()
}

// Close stops the sweep loop and waits for it.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.stop)
	c.mu.Unlock()
	c.wg.Wait()
}

func (c *Controller) run() {
	defer c.wg.Done()
	for {
		t := time.NewTimer(c.tick)
		select {
		case <-c.stop:
			t.Stop()
			return
		case <-t.C:
		}
		c.Tick()
	}
}

// View returns a copy of the current authoritative metadata.
func (c *Controller) View() ClusterView {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view.Clone()
}

// CreateTopic places a topic's partitions across the cluster —
// round-robin preferred leaders, the next rf−1 nodes as followers —
// installs the partition states in the view, and pushes it, which makes
// every node materialize its local replica log. Implements the
// controller half of Transport topic admin.
func (c *Controller) CreateTopic(name string, partitions int) error {
	if partitions <= 0 {
		return fmt.Errorf("broker: topic %q needs at least one partition", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, ok := c.view.Partitions[name]; ok {
		return fmt.Errorf("%w: %q", ErrTopicExists, name)
	}
	states := make([]PartitionState, partitions)
	for p := range states {
		replicas := placement(p, c.nNodes, c.rf)
		leader := -1
		var isr []int
		for _, id := range replicas {
			if c.down[id] {
				continue
			}
			isr = insertSorted(isr, id)
			if leader < 0 {
				leader = id
			}
		}
		if len(isr) == 0 {
			// Every replica is down at creation: all logs are equally
			// (and trivially) empty, so the whole replica set is the
			// in-sync set a returning member may revive from.
			for _, id := range replicas {
				isr = insertSorted(isr, id)
			}
		}
		states[p] = PartitionState{Leader: leader, Epoch: 1, Replicas: replicas, ISR: isr}
		c.noteLeaderLocked(TopicPartition{Topic: name, Partition: p}, leader)
	}
	if c.maxEpoch < 1 {
		c.maxEpoch = 1
		c.mLeaderEpoch.Set(1)
	}
	c.view.Partitions[name] = states
	c.view.Version++
	c.pushViewLocked()
	return nil
}

// DeleteTopic removes a topic cluster-wide via a view push.
func (c *Controller) DeleteTopic(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, ok := c.view.Partitions[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	delete(c.view.Partitions, name)
	c.view.Version++
	c.pushViewLocked()
	return nil
}

// Tick runs one liveness sweep: ping every node, apply death and
// return transitions, re-expand the ISR with caught-up followers, and
// push the view when anything changed. The background loop calls it
// periodically; tests call it directly for step-by-step determinism.
// Pings run outside c.mu (a stalled peer must not block topic admin or
// View); transitions apply under it, in ascending node-id order, so
// concurrent failures still resolve deterministically.
func (c *Controller) Tick() {
	c.tickMu.Lock()
	defer c.tickMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	ids := make([]int, 0, len(c.peers))
	for id := range c.peers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	peers := make(map[int]ClusterPeer, len(c.peers))
	for id, p := range c.peers {
		peers[id] = p
	}
	c.mu.Unlock()

	alive := make(map[int]bool, len(ids))
	for _, id := range ids {
		alive[id] = peers[id].Ping() == nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	changed := false
	for _, id := range ids {
		switch {
		case !alive[id] && !c.down[id]:
			c.down[id] = true
			c.handleDeathLocked(id)
			changed = true
		case alive[id] && c.down[id]:
			delete(c.down, id)
			c.handleReturnLocked(id)
			changed = true
		}
	}
	if changed {
		c.view.Version++
		c.pushViewLocked()
		if c.coordinator != nil {
			c.coordinator.RebalanceGroups()
		}
	}
	if c.expandISRLocked() {
		c.view.Version++
		c.pushViewLocked()
	}
}

// handleDeathLocked removes a dead node from membership and every ISR,
// electing a replacement leader for each partition it led. Caller
// holds c.mu.
func (c *Controller) handleDeathLocked(id int) {
	c.view.Members = removeInt(c.view.Members, id)
	topics := make([]string, 0, len(c.view.Partitions))
	for t := range c.view.Partitions {
		topics = append(topics, t)
	}
	sort.Strings(topics)
	for _, topic := range topics {
		states := c.view.Partitions[topic]
		for p := range states {
			st := &states[p]
			if st.Leader == id {
				tp := TopicPartition{Topic: topic, Partition: p}
				winner := c.electLocked(tp, removeInt(st.ISR, id))
				if winner >= 0 {
					st.ISR = removeInt(st.ISR, id)
					st.Leader = winner
				} else {
					// No electable in-sync survivor: the partition goes
					// offline. The ISR is frozen as-is — dead leader
					// included — because it is the last set known to
					// hold the acked prefix, and only its members may
					// revive the partition (no unclean election).
					st.Leader = -1
				}
				st.Epoch++
				if st.Epoch > c.maxEpoch {
					c.maxEpoch = st.Epoch
					c.mLeaderEpoch.Set(int64(c.maxEpoch))
				}
				c.mFailovers.Inc()
				c.noteLeaderLocked(tp, st.Leader)
			} else if st.Leader >= 0 && containsInt(st.ISR, id) {
				// A follower died: shrink the ISR so the leader's
				// high-watermark derivation stops waiting on it. An
				// offline partition's frozen ISR stays untouched.
				st.ISR = removeInt(st.ISR, id)
			}
		}
	}
}

// electLocked picks the new leader from the surviving in-sync set: the
// replica with the longest log, ties to the lowest id. Every ISR
// member stores the full acked prefix (that is what the high-watermark
// certifies), so any choice preserves acks; the longest log also
// preserves the most unacked records and lets every other ISR member
// resume as a clean prefix without truncation. Returns -1 when no
// in-sync replica survives (partition offline until one returns).
// Caller holds c.mu.
func (c *Controller) electLocked(tp TopicPartition, isr []int) int {
	winner, winnerEnd := -1, int64(-1)
	for _, id := range isr { // isr is sorted: ties resolve to lowest id
		if c.down[id] {
			continue
		}
		end, err := c.peers[id].LogEnd(tp)
		if err != nil {
			continue
		}
		if end > winnerEnd {
			winner, winnerEnd = id, end
		}
	}
	return winner
}

// handleReturnLocked re-admits a restarted node into membership — but
// NOT into any ISR: a returner's log may be missing records acked
// while it was down, so it re-enters an ISR only through the leader's
// caught-up confirmation (expandISRLocked). The one exception is an
// offline partition whose frozen last-in-sync set contains the
// returner: that set is the only one known to hold the acked prefix,
// so its member's return revives the partition with a bumped epoch.
// Caller holds c.mu.
func (c *Controller) handleReturnLocked(id int) {
	c.view.Members = insertSorted(c.view.Members, id)
	topics := make([]string, 0, len(c.view.Partitions))
	for t := range c.view.Partitions {
		topics = append(topics, t)
	}
	sort.Strings(topics)
	for _, topic := range topics {
		states := c.view.Partitions[topic]
		for p := range states {
			st := &states[p]
			if st.Leader >= 0 || !containsInt(st.ISR, id) {
				continue
			}
			var live []int
			for _, r := range st.ISR {
				if !c.down[r] {
					live = append(live, r)
				}
			}
			tp := TopicPartition{Topic: topic, Partition: p}
			winner := c.electLocked(tp, live)
			if winner < 0 {
				continue // still offline; a later return retries
			}
			st.ISR = live
			st.Leader = winner
			st.Epoch++
			if st.Epoch > c.maxEpoch {
				c.maxEpoch = st.Epoch
				c.mLeaderEpoch.Set(int64(c.maxEpoch))
			}
			c.mFailovers.Inc()
			c.noteLeaderLocked(tp, st.Leader)
		}
	}
}

// expandISRLocked is the re-admission half of the ISR lifecycle: for
// every live replica outside its partition's ISR, ask the leader to
// admit it. The leader confirms only when the follower's replica
// fetches cover the high-watermark, adding it to its own in-sync
// derivation under the same lock — so the watermark can never advance
// past the new member between the check and this view update. Returns
// true when any ISR grew. Caller holds c.mu.
func (c *Controller) expandISRLocked() bool {
	topics := make([]string, 0, len(c.view.Partitions))
	for t := range c.view.Partitions {
		topics = append(topics, t)
	}
	sort.Strings(topics)
	changed := false
	for _, topic := range topics {
		states := c.view.Partitions[topic]
		for p := range states {
			st := &states[p]
			if st.Leader < 0 || c.down[st.Leader] || len(st.ISR) >= len(st.Replicas) {
				continue
			}
			for _, r := range st.Replicas {
				if r == st.Leader || c.down[r] || containsInt(st.ISR, r) {
					continue
				}
				tp := TopicPartition{Topic: topic, Partition: p}
				ok, err := c.peers[st.Leader].AdmitFollower(tp, r, st.Epoch)
				if err != nil || !ok {
					continue // not caught up yet; next sweep retries
				}
				st.ISR = insertSorted(st.ISR, r)
				changed = true
			}
		}
	}
	return changed
}

// pushViewLocked sends the current view to every live node. A push
// that fails (the node died since its last ping) is dropped; the next
// sweep handles the death. Caller holds c.mu.
func (c *Controller) pushViewLocked() {
	for _, id := range c.view.Members {
		_ = c.peers[id].PushView(c.view.Clone())
	}
}

// noteLeaderLocked publishes one partition's current leader id as a
// broker.cluster.leader.<topic>-<partition> gauge. Caller holds c.mu.
func (c *Controller) noteLeaderLocked(tp TopicPartition, leader int) {
	c.metrics.Gauge("broker.cluster.leader." + tpKey(tp)).Set(int64(leader))
}
