package broker

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"crayfish/internal/telemetry"
)

// ControllerConfig configures the cluster controller.
type ControllerConfig struct {
	// Peers links the controller to every node, keyed by node id; ids
	// must be 0..len(Peers)-1 (partition placement is modular over the
	// id space).
	Peers map[int]ClusterPeer
	// ReplicationFactor is the replica count per partition (clamped to
	// the node count).
	ReplicationFactor int
	// HeartbeatEvery is the liveness sweep interval (default 1ms for
	// in-process clusters; brokerd uses a longer wire-friendly period).
	HeartbeatEvery time.Duration
	// Coordinator, when set, is the consumer-group coordinator seat
	// (node 0's local broker): every membership change bumps all group
	// generations so consumers rebalance.
	Coordinator *Broker
	// Metrics publishes broker.cluster.* telemetry.
	Metrics *telemetry.Registry
}

// Controller is the cluster's deterministic control plane — the role
// ZooKeeper/KRaft plays for Kafka, reduced to a single seat. It owns
// the authoritative ClusterView: it sweeps node liveness, shrinks and
// re-expands the ISR, elects the longest-log in-sync replica when a
// leader dies (bumping the leader epoch that fences the deposed one),
// and pushes every change to the surviving nodes. All transitions are
// serialized under one mutex, so concurrent failures resolve in a
// single deterministic order.
type Controller struct {
	rf          int
	nNodes      int
	tick        time.Duration
	coordinator *Broker

	mFailovers   *telemetry.Counter
	mLeaderEpoch *telemetry.Gauge
	metrics      *telemetry.Registry

	mu       sync.Mutex
	peers    map[int]ClusterPeer
	view     ClusterView
	down     map[int]bool
	maxEpoch int
	started  bool
	closed   bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewController builds a controller over the given peer set.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("broker: controller needs at least one peer")
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 1
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Millisecond
	}
	members := make([]int, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		if id < 0 || id >= len(cfg.Peers) {
			return nil, fmt.Errorf("broker: controller peer ids must be 0..%d, got %d", len(cfg.Peers)-1, id)
		}
		members = append(members, id)
	}
	sort.Ints(members)
	c := &Controller{
		rf:           cfg.ReplicationFactor,
		nNodes:       len(cfg.Peers),
		tick:         cfg.HeartbeatEvery,
		coordinator:  cfg.Coordinator,
		mFailovers:   cfg.Metrics.Counter("broker.cluster.failovers"),
		mLeaderEpoch: cfg.Metrics.Gauge("broker.cluster.leader_epoch"),
		metrics:      cfg.Metrics,
		peers:        cfg.Peers,
		down:         make(map[int]bool),
		stop:         make(chan struct{}),
		view: ClusterView{
			Version:    1,
			Members:    members,
			Partitions: make(map[string][]PartitionState),
		},
	}
	return c, nil
}

// Start launches the liveness sweep loop.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.started || c.closed {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	c.wg.Add(1)
	go c.run()
}

// Close stops the sweep loop and waits for it.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.stop)
	c.mu.Unlock()
	c.wg.Wait()
}

func (c *Controller) run() {
	defer c.wg.Done()
	for {
		t := time.NewTimer(c.tick)
		select {
		case <-c.stop:
			t.Stop()
			return
		case <-t.C:
		}
		c.Tick()
	}
}

// View returns a copy of the current authoritative metadata.
func (c *Controller) View() ClusterView {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view.Clone()
}

// CreateTopic places a topic's partitions across the cluster —
// round-robin preferred leaders, the next rf−1 nodes as followers —
// installs the partition states in the view, and pushes it, which makes
// every node materialize its local replica log. Implements the
// controller half of Transport topic admin.
func (c *Controller) CreateTopic(name string, partitions int) error {
	if partitions <= 0 {
		return fmt.Errorf("broker: topic %q needs at least one partition", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, ok := c.view.Partitions[name]; ok {
		return fmt.Errorf("%w: %q", ErrTopicExists, name)
	}
	states := make([]PartitionState, partitions)
	for p := range states {
		replicas := placement(p, c.nNodes, c.rf)
		leader := -1
		var isr []int
		for _, id := range replicas {
			if c.down[id] {
				continue
			}
			isr = insertSorted(isr, id)
			if leader < 0 {
				leader = id
			}
		}
		states[p] = PartitionState{Leader: leader, Epoch: 1, Replicas: replicas, ISR: isr}
		c.noteLeaderLocked(TopicPartition{Topic: name, Partition: p}, leader)
	}
	if c.maxEpoch < 1 {
		c.maxEpoch = 1
		c.mLeaderEpoch.Set(1)
	}
	c.view.Partitions[name] = states
	c.view.Version++
	c.pushViewLocked()
	return nil
}

// DeleteTopic removes a topic cluster-wide via a view push.
func (c *Controller) DeleteTopic(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, ok := c.view.Partitions[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	delete(c.view.Partitions, name)
	c.view.Version++
	c.pushViewLocked()
	return nil
}

// Tick runs one liveness sweep: ping every node, apply death and
// return transitions, and push the view when anything changed. The
// background loop calls it periodically; tests call it directly for
// step-by-step determinism.
func (c *Controller) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	ids := make([]int, 0, len(c.peers))
	for id := range c.peers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	changed := false
	for _, id := range ids {
		err := c.peers[id].Ping()
		alive := err == nil
		switch {
		case !alive && !c.down[id]:
			c.down[id] = true
			c.handleDeathLocked(id)
			changed = true
		case alive && c.down[id]:
			delete(c.down, id)
			c.handleReturnLocked(id)
			changed = true
		}
	}
	if changed {
		c.view.Version++
		c.pushViewLocked()
		if c.coordinator != nil {
			c.coordinator.RebalanceGroups()
		}
	}
}

// handleDeathLocked removes a dead node from membership and every ISR,
// electing a replacement leader for each partition it led. Caller
// holds c.mu.
func (c *Controller) handleDeathLocked(id int) {
	c.view.Members = removeInt(c.view.Members, id)
	topics := make([]string, 0, len(c.view.Partitions))
	for t := range c.view.Partitions {
		topics = append(topics, t)
	}
	sort.Strings(topics)
	for _, topic := range topics {
		states := c.view.Partitions[topic]
		for p := range states {
			st := &states[p]
			if st.Leader == id {
				st.ISR = removeInt(st.ISR, id)
				st.Leader = c.electLocked(TopicPartition{Topic: topic, Partition: p}, st.ISR)
				st.Epoch++
				if st.Epoch > c.maxEpoch {
					c.maxEpoch = st.Epoch
					c.mLeaderEpoch.Set(int64(c.maxEpoch))
				}
				c.mFailovers.Inc()
				c.noteLeaderLocked(TopicPartition{Topic: topic, Partition: p}, st.Leader)
			} else if containsInt(st.ISR, id) {
				// A follower died: shrink the ISR so the leader's
				// high-watermark derivation stops waiting on it.
				st.ISR = removeInt(st.ISR, id)
			}
		}
	}
}

// electLocked picks the new leader from the surviving in-sync set: the
// replica with the longest log, ties to the lowest id. Every ISR
// member stores the full acked prefix (that is what the high-watermark
// certifies), so any choice preserves acks; the longest log also
// preserves the most unacked records and lets every other ISR member
// resume as a clean prefix without truncation. Returns -1 when no
// in-sync replica survives (partition offline until one returns).
// Caller holds c.mu.
func (c *Controller) electLocked(tp TopicPartition, isr []int) int {
	winner, winnerEnd := -1, int64(-1)
	for _, id := range isr { // isr is sorted: ties resolve to lowest id
		if c.down[id] {
			continue
		}
		end, err := c.peers[id].LogEnd(tp)
		if err != nil {
			continue
		}
		if end > winnerEnd {
			winner, winnerEnd = id, end
		}
	}
	return winner
}

// handleReturnLocked re-admits a restarted node: back into membership,
// back into the ISR of every partition it replicates, and — when it
// revives an offline partition — elected leader. Immediate ISR
// re-entry is the conservative choice: the high-watermark stalls until
// the returner's first replica fetch announces its (crash-surviving)
// log end, so acks can only be over-protected, never lost. Caller
// holds c.mu.
func (c *Controller) handleReturnLocked(id int) {
	c.view.Members = insertSorted(c.view.Members, id)
	topics := make([]string, 0, len(c.view.Partitions))
	for t := range c.view.Partitions {
		topics = append(topics, t)
	}
	sort.Strings(topics)
	for _, topic := range topics {
		states := c.view.Partitions[topic]
		for p := range states {
			st := &states[p]
			if !containsInt(st.Replicas, id) {
				continue
			}
			st.ISR = insertSorted(st.ISR, id)
			if st.Leader < 0 {
				tp := TopicPartition{Topic: topic, Partition: p}
				st.Leader = c.electLocked(tp, st.ISR)
				st.Epoch++
				if st.Epoch > c.maxEpoch {
					c.maxEpoch = st.Epoch
					c.mLeaderEpoch.Set(int64(c.maxEpoch))
				}
				c.mFailovers.Inc()
				c.noteLeaderLocked(tp, st.Leader)
			}
		}
	}
}

// pushViewLocked sends the current view to every live node. A push
// that fails (the node died since its last ping) is dropped; the next
// sweep handles the death. Caller holds c.mu.
func (c *Controller) pushViewLocked() {
	for _, id := range c.view.Members {
		_ = c.peers[id].PushView(c.view.Clone())
	}
}

// noteLeaderLocked publishes one partition's current leader id as a
// broker.cluster.leader.<topic>-<partition> gauge. Caller holds c.mu.
func (c *Controller) noteLeaderLocked(tp TopicPartition, leader int) {
	c.metrics.Gauge("broker.cluster.leader." + tpKey(tp)).Set(int64(leader))
}
