package broker

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"crayfish/internal/resilience"
	"crayfish/internal/telemetry"
)

// NodeConfig configures one cluster broker node.
type NodeConfig struct {
	// ID is the node's cluster-wide identity; its fault-plan target name
	// is "node-<ID>".
	ID int
	// Broker configures the node's local log storage (topics, groups,
	// clock, metrics). RetentionRecords must be zero: replication
	// assumes follower logs can always resume from their own end, which
	// head truncation would break.
	Broker Config
	// Peers links this node to the others, keyed by node id. In-process
	// clusters pass the *Node values directly; brokerd passes
	// RemoteClients.
	Peers map[int]ClusterPeer
	// AckTimeout bounds how long a produce waits for the high-watermark
	// to cover it before failing retryably (default 5s) — Kafka's
	// request.timeout.ms under acks=all.
	AckTimeout time.Duration
	// ReplicaPoll is the follower fetch loop's idle re-poll interval
	// (default 1ms, matching Consumer.PollWait's remote fallback).
	ReplicaPoll time.Duration
	// ReplicaBatch caps records per replica fetch (default 512).
	ReplicaBatch int
}

// fetchTarget identifies whom a follower fetcher is replicating from.
type fetchTarget struct {
	leader int
	epoch  int
}

// fetcher is one running follower catch-up loop.
type fetcher struct {
	stop   chan struct{}
	target fetchTarget
}

// replState is one node's replication belief for one partition: who
// leads at which epoch, the in-sync set, and the high-watermark. The
// leader additionally tracks each follower's log end (learned from
// replica-fetch offsets) to derive the high-watermark. Lock ordering:
// Node.mu → replState.mu → Broker locks; nothing locks upward.
type replState struct {
	mu       sync.Mutex
	leader   int
	epoch    int
	replicas []int
	isr      []int
	isLeader bool
	// hw is the high-watermark: offsets below it are stored on every
	// ISR member, so they are the acked, consumer-visible prefix. It
	// never regresses.
	hw int64
	// hwCh is closed and re-armed each time hw advances (the broker's
	// capture-then-check signal pattern); produce ack waiters park on it.
	hwCh chan struct{}
	// followerEnd is leader-only: node id → log end implied by that
	// follower's latest replica fetch.
	followerEnd map[int]int64
}

func newReplState() *replState {
	return &replState{leader: -1, hwCh: make(chan struct{}), followerEnd: make(map[int]int64)}
}

// advanceHW recomputes the high-watermark from the local log end and
// the ISR followers' known ends, signalling waiters when it moves.
// Caller holds rs.mu; lag may be nil.
func (rs *replState) advanceHW(localEnd int64, selfID int, lag *telemetry.Gauge) {
	m := localEnd
	for _, id := range rs.isr {
		if id == selfID {
			continue
		}
		if e := rs.followerEnd[id]; e < m {
			m = e
		}
	}
	if m > rs.hw {
		rs.hw = m
		close(rs.hwCh)
		rs.hwCh = make(chan struct{})
	}
	lag.Set(localEnd - rs.hw)
}

// Node is one broker instance inside a replicated cluster: a local
// Broker log plus the replication role machinery — leadership gating
// with epoch fencing, high-watermark ack tracking when leading, and
// follower catch-up fetchers when following. Crash/Restart model a
// process kill that preserves the log ("disk survives"), which is what
// lets a restarted node rejoin and catch up.
type Node struct {
	id           int
	name         string
	b            *Broker
	ackTimeout   time.Duration
	replicaPoll  time.Duration
	replicaBatch int
	metrics      *telemetry.Registry
	mReplicaLag  *telemetry.Gauge

	ctrl *Controller // set on the controller node; routes topic admin

	mu       sync.Mutex
	alive    bool
	closed   bool
	crashed  chan struct{} // closed while the node is down
	view     ClusterView
	peers    map[int]ClusterPeer
	parts    map[TopicPartition]*replState
	fetchers map[TopicPartition]*fetcher
	wg       sync.WaitGroup
}

// NewNode builds a cluster node around a fresh local Broker.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Broker.RetentionRecords > 0 {
		return nil, fmt.Errorf("broker: cluster nodes need RetentionRecords=0 (follower catch-up resumes from the log end)")
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.ReplicaPoll <= 0 {
		cfg.ReplicaPoll = time.Millisecond
	}
	if cfg.ReplicaBatch <= 0 {
		cfg.ReplicaBatch = 512
	}
	n := &Node{
		id:           cfg.ID,
		name:         fmt.Sprintf("node-%d", cfg.ID),
		b:            New(cfg.Broker),
		ackTimeout:   cfg.AckTimeout,
		replicaPoll:  cfg.ReplicaPoll,
		replicaBatch: cfg.ReplicaBatch,
		metrics:      cfg.Broker.Metrics,
		mReplicaLag:  cfg.Broker.Metrics.Gauge("broker.cluster.replica_lag"),
		alive:        true,
		crashed:      make(chan struct{}),
		peers:        make(map[int]ClusterPeer, len(cfg.Peers)),
		parts:        make(map[TopicPartition]*replState),
		fetchers:     make(map[TopicPartition]*fetcher),
	}
	for id, p := range cfg.Peers {
		n.peers[id] = p
	}
	return n, nil
}

// ID returns the node's cluster id.
func (n *Node) ID() int { return n.id }

// Name returns the node's fault-plan target name, "node-<id>".
func (n *Node) Name() string { return n.name }

// Broker exposes the node's local log storage (the coordinator seat's
// group state lives here).
func (n *Node) Broker() *Broker { return n.b }

// SetPeer installs or replaces a peer link; brokerd uses it to finish
// wiring once all peer addresses resolve.
func (n *Node) SetPeer(id int, p ClusterPeer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = p
}

// AttachController marks this node as the controller seat so topic
// admin ops route into it. Local clusters and brokerd both call it on
// node 0 right after building the controller.
func (n *Node) AttachController(c *Controller) { n.ctrl = c }

// nodeDown wraps ErrNodeDown retryably with the node's name.
func (n *Node) nodeDown() error {
	return resilience.MarkRetryable(fmt.Errorf("%w: %s", ErrNodeDown, n.name))
}

// gate rejects calls while the node is down or closed.
func (n *Node) gate() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	if !n.alive {
		return n.nodeDown()
	}
	return nil
}

func (n *Node) state(tp TopicPartition) *replState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.parts[tp]
}

func (n *Node) peerLink(id int) ClusterPeer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peers[id]
}

// notLeader builds the retryable re-route error for a misrouted call.
func (rs *replState) notLeader(tp TopicPartition) error {
	return resilience.MarkRetryable(&NotLeaderError{TP: tp, Leader: rs.leader, Epoch: rs.epoch})
}

// Crash takes the node down: clients and peers get retryable
// ErrNodeDown, follower fetchers stop, and produce ack waiters wake
// immediately instead of riding out their timers. The local log and
// group state survive, modelling a process kill over durable storage.
func (n *Node) Crash() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive || n.closed {
		return
	}
	n.alive = false
	close(n.crashed)
	n.stopFetchersLocked()
}

// Restart brings a crashed node back. It resumes with its pre-crash
// view — possibly stale — and starts follower fetchers from it; the
// controller's next push delivers the current view, demoting (and
// truncating) it if leadership moved while it was down.
func (n *Node) Restart() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.alive || n.closed {
		return
	}
	n.alive = true
	n.crashed = make(chan struct{})
	n.reconcileFetchersLocked()
}

// Close shuts the node down permanently and waits for its goroutines.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	if n.alive {
		n.alive = false
		close(n.crashed)
	}
	n.stopFetchersLocked()
	n.mu.Unlock()
	n.wg.Wait()
	n.b.Close()
}

func (n *Node) stopFetchersLocked() {
	for tp, f := range n.fetchers {
		close(f.stop)
		delete(n.fetchers, tp)
	}
}

// Ping implements ClusterPeer: the controller's liveness probe.
func (n *Node) Ping() error { return n.gate() }

// LogEnd implements ClusterPeer: the raw local log end (not the
// high-watermark), which is the controller's election key.
func (n *Node) LogEnd(tp TopicPartition) (int64, error) {
	if err := n.gate(); err != nil {
		return 0, err
	}
	return n.b.EndOffset(tp.Topic, tp.Partition)
}

// ClusterView implements ClusterTransport: the node's current metadata
// copy, for client-side leader discovery.
func (n *Node) ClusterView() (ClusterView, error) {
	if err := n.gate(); err != nil {
		return ClusterView{}, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view.Clone(), nil
}

// PushView implements ClusterPeer: the controller's metadata push.
// The node creates any topics it does not hold yet, adopts the new
// leadership/ISR state per partition, truncates its log to the old
// high-watermark when demoted from leader (discarding only unacked
// records — the acked prefix is identical on every ISR member), and
// reconciles its follower fetchers.
func (n *Node) PushView(v ClusterView) error {
	if err := n.gate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if v.Version <= n.view.Version {
		// Stale push: reject before creating anything, so a delayed old
		// view cannot resurrect a topic a newer view already deleted.
		return nil
	}
	for topic, states := range v.Partitions {
		if _, err := n.b.Partitions(topic); err != nil {
			if cerr := n.b.CreateTopic(topic, len(states)); cerr != nil && !errors.Is(cerr, ErrTopicExists) {
				return cerr
			}
		}
	}
	n.view = v.Clone()
	for topic, states := range v.Partitions {
		for p, st := range states {
			tp := TopicPartition{Topic: topic, Partition: p}
			rs := n.parts[tp]
			if rs == nil {
				rs = newReplState()
				n.parts[tp] = rs
			}
			localEnd, _ := n.b.EndOffset(topic, p)
			rs.mu.Lock()
			oldHW := rs.hw
			epochMoved := st.Epoch > rs.epoch
			if epochMoved {
				rs.epoch = st.Epoch
			}
			rs.leader = st.Leader
			rs.replicas = append([]int(nil), st.Replicas...)
			rs.isr = append([]int(nil), st.ISR...)
			rs.isLeader = st.Leader == n.id
			leadsNow := rs.isLeader
			if rs.isLeader {
				if epochMoved || rs.followerEnd == nil {
					// A fresh leadership term forgets follower progress
					// learned in earlier terms — a returner may have
					// truncated since, so old ends could overstate what
					// it holds and inflate the high-watermark.
					rs.followerEnd = make(map[int]int64)
				}
				// ISR changes move the watermark derivation: recompute
				// so a shrink unblocks waiting produces immediately.
				rs.advanceHW(localEnd, n.id, n.mReplicaLag)
			}
			rs.mu.Unlock()
			// Publish adopted leadership into this node's own registry so
			// every node's /metrics answers "who leads partition p", not
			// just the controller's (followers are what you can still
			// scrape mid-failover).
			n.metrics.Gauge("broker.cluster.leader." + tpKey(tp)).Set(int64(st.Leader))
			if epochMoved && !leadsNow {
				// New term, not leading it: drop everything this node
				// never saw acked so its log rejoins the new leader's as
				// a clean prefix before re-fetching — the old tail may
				// hold records the new leader assigns differently.
				_ = n.b.truncateTo(topic, p, oldHW)
			}
		}
	}
	// Drop state for topics the view no longer carries (cluster-wide
	// topic deletion).
	for tp := range n.parts {
		if _, ok := v.Partitions[tp.Topic]; !ok {
			delete(n.parts, tp)
			_ = n.b.DeleteTopic(tp.Topic)
		}
	}
	n.reconcileFetchersLocked()
	return nil
}

// reconcileFetchersLocked aligns running follower fetch loops with the
// current view: one fetcher per partition this node follows, keyed to
// the leader and epoch it should be fetching from. Caller holds n.mu.
func (n *Node) reconcileFetchersLocked() {
	want := make(map[TopicPartition]fetchTarget)
	for tp, rs := range n.parts {
		rs.mu.Lock()
		if !rs.isLeader && rs.leader >= 0 && rs.leader != n.id && containsInt(rs.replicas, n.id) {
			want[tp] = fetchTarget{leader: rs.leader, epoch: rs.epoch}
		}
		rs.mu.Unlock()
	}
	for tp, f := range n.fetchers {
		if w, ok := want[tp]; !ok || w != f.target {
			close(f.stop)
			delete(n.fetchers, tp)
		}
	}
	if !n.alive {
		return
	}
	for tp, w := range want {
		if _, ok := n.fetchers[tp]; ok {
			continue
		}
		f := &fetcher{stop: make(chan struct{}), target: w}
		n.fetchers[tp] = f
		n.wg.Add(1)
		go n.runFetcher(tp, w, f.stop)
	}
}

// runFetcher is the follower catch-up loop for one partition: fetch
// from the leader at the local log end, append verbatim, adopt the
// leader's high-watermark, and idle-poll when caught up. Errors —
// leader down, fenced epoch — are ridden out with the same idle poll;
// the controller's next view push retargets or stops the loop.
func (n *Node) runFetcher(tp TopicPartition, target fetchTarget, stop chan struct{}) {
	defer n.wg.Done()
	link := n.peerLink(target.leader)
	for {
		select {
		case <-stop:
			return
		default:
		}
		if link == nil {
			if !n.fetchWait(stop) {
				return
			}
			continue
		}
		end, err := n.b.EndOffset(tp.Topic, tp.Partition)
		if err != nil {
			if !n.fetchWait(stop) {
				return
			}
			continue
		}
		resp, err := link.ReplicaFetch(ReplicaFetchRequest{
			Topic:     tp.Topic,
			Partition: tp.Partition,
			Offset:    end,
			Max:       n.replicaBatch,
			From:      n.id,
			Epoch:     target.epoch,
		})
		if err != nil {
			if !n.fetchWait(stop) {
				return
			}
			continue
		}
		if len(resp.Records) > 0 {
			if rs := n.state(tp); rs != nil {
				rs.mu.Lock()
				moved := rs.epoch != target.epoch
				rs.mu.Unlock()
				if moved {
					// The view moved past this fetch target while the
					// batch was in flight: drop it rather than append
					// records from a superseded term.
					return
				}
			}
			if err := n.b.replicate(tp.Topic, tp.Partition, resp.Records); err != nil {
				if !n.fetchWait(stop) {
					return
				}
				continue
			}
		}
		n.adoptLeaderHW(tp, resp.HW)
		if len(resp.Records) == 0 {
			if !n.fetchWait(stop) {
				return
			}
		}
	}
}

// fetchWait parks the fetcher for one idle-poll interval; false means
// the fetcher was stopped.
func (n *Node) fetchWait(stop chan struct{}) bool {
	t := time.NewTimer(n.replicaPoll)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}

// adoptLeaderHW installs the high-watermark a follower learned from a
// replica-fetch response, clamped to its own log end (a follower can
// only vouch for records it stores).
func (n *Node) adoptLeaderHW(tp TopicPartition, hw int64) {
	rs := n.state(tp)
	if rs == nil {
		return
	}
	end, err := n.b.EndOffset(tp.Topic, tp.Partition)
	if err != nil {
		return
	}
	if hw > end {
		hw = end
	}
	rs.mu.Lock()
	if hw > rs.hw {
		rs.hw = hw
		close(rs.hwCh)
		rs.hwCh = make(chan struct{})
	}
	rs.mu.Unlock()
}

// ReplicaFetch implements ClusterPeer: the leader side of follower
// catch-up. The request's offset doubles as the follower's replication
// progress (it holds everything below), which drives the high-watermark
// derivation; the epoch check fences both directions — a stale follower
// is refused, a newer epoch self-demotes this stale leader.
func (n *Node) ReplicaFetch(req ReplicaFetchRequest) (ReplicaFetchResponse, error) {
	if err := n.gate(); err != nil {
		return ReplicaFetchResponse{}, err
	}
	tp := TopicPartition{Topic: req.Topic, Partition: req.Partition}
	rs := n.state(tp)
	if rs == nil {
		return ReplicaFetchResponse{}, fmt.Errorf("%w: %s/%d", ErrUnknownPartition, req.Topic, req.Partition)
	}
	localEnd, err := n.b.EndOffset(req.Topic, req.Partition)
	if err != nil {
		return ReplicaFetchResponse{}, err
	}
	rs.mu.Lock()
	if !rs.isLeader {
		err := rs.notLeader(tp)
		rs.mu.Unlock()
		return ReplicaFetchResponse{}, err
	}
	if req.Epoch < rs.epoch {
		epoch := rs.epoch
		rs.mu.Unlock()
		return ReplicaFetchResponse{}, resilience.MarkRetryable(fmt.Errorf("%w: follower %d at epoch %d, leader at %d", ErrFencedEpoch, req.From, req.Epoch, epoch))
	}
	if req.Epoch > rs.epoch {
		// A follower already speaks a newer epoch: this node's
		// leadership was revoked while it was out of touch. Self-demote;
		// the controller's view push fills in the real leader.
		rs.isLeader = false
		rs.leader = -1
		rs.epoch = req.Epoch
		rs.mu.Unlock()
		return ReplicaFetchResponse{}, resilience.MarkRetryable(fmt.Errorf("%w: leader superseded at epoch %d", ErrFencedEpoch, req.Epoch))
	}
	if req.Offset > rs.followerEnd[req.From] {
		rs.followerEnd[req.From] = req.Offset
	}
	rs.advanceHW(localEnd, n.id, n.mReplicaLag)
	hw, epoch := rs.hw, rs.epoch
	rs.mu.Unlock()
	recs, err := n.b.replicaRead(req.Topic, req.Partition, req.Offset, req.Max)
	if err != nil {
		return ReplicaFetchResponse{}, err
	}
	return ReplicaFetchResponse{Records: recs, HW: hw, Epoch: epoch}, nil
}

// AdmitFollower implements ClusterPeer: the leader-side gate of ISR
// re-admission. The caught-up check and the ISR insert happen under the
// same lock that derives the high-watermark, so the watermark cannot
// advance past the new member between its last fetch and the
// controller's view update — the invariant that every ISR member holds
// the acked prefix survives the expansion. A follower that has not
// fetched this term, or whose fetches stop short of the watermark, is
// refused without error (the controller's next sweep retries).
func (n *Node) AdmitFollower(tp TopicPartition, follower, epoch int) (bool, error) {
	if err := n.gate(); err != nil {
		return false, err
	}
	rs := n.state(tp)
	if rs == nil {
		return false, fmt.Errorf("%w: %s/%d", ErrUnknownPartition, tp.Topic, tp.Partition)
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.isLeader || rs.epoch != epoch || !containsInt(rs.replicas, follower) {
		return false, nil
	}
	if containsInt(rs.isr, follower) {
		// Already in the local derivation (an earlier admission whose
		// view push was lost): confirm so the controller converges.
		return true, nil
	}
	end, fetched := rs.followerEnd[follower]
	if !fetched || end < rs.hw {
		return false, nil
	}
	rs.isr = insertSorted(rs.isr, follower)
	return true, nil
}

// Produce implements Transport with acks=all semantics: the append is
// accepted only on the partition leader and the call blocks until the
// high-watermark covers it — every ISR member stores the records — so
// an acked produce survives any single leader crash. Partitions without
// replication state (topics created directly on the local broker) pass
// straight through.
func (n *Node) Produce(topic string, partition int, recs []Record) (int64, error) {
	if err := n.gate(); err != nil {
		return 0, err
	}
	tp := TopicPartition{Topic: topic, Partition: partition}
	rs := n.state(tp)
	if rs == nil {
		return n.b.Produce(topic, partition, recs)
	}
	// The leadership check and the append stay under one rs.mu hold: a
	// concurrent demotion (PushView flips isLeader under rs.mu, then
	// truncates to the old high-watermark) either lands before the
	// check — rejecting the produce — or after the append — truncating
	// the still-unacked tail — so no record can survive in a follower
	// log at an offset the new leader will assign to different data.
	rs.mu.Lock()
	if !rs.isLeader {
		err := rs.notLeader(tp)
		rs.mu.Unlock()
		return 0, err
	}
	base, err := n.b.Produce(topic, partition, recs)
	if err != nil {
		rs.mu.Unlock()
		return 0, err
	}
	target, err := n.b.EndOffset(topic, partition)
	rs.mu.Unlock()
	if err != nil {
		return 0, err
	}
	n.mu.Lock()
	crashed := n.crashed
	n.mu.Unlock()
	timer := time.NewTimer(n.ackTimeout)
	defer timer.Stop()
	for {
		rs.mu.Lock()
		if rs.isLeader {
			// Covers the ISR=={self} case and re-derives after appends.
			rs.advanceHW(target, n.id, n.mReplicaLag)
		}
		if rs.hw >= target {
			rs.mu.Unlock()
			return base, nil
		}
		if !rs.isLeader {
			err := rs.notLeader(tp)
			rs.mu.Unlock()
			return 0, err
		}
		ch := rs.hwCh
		rs.mu.Unlock()
		select {
		case <-ch:
		case <-crashed:
			return 0, n.nodeDown()
		case <-timer.C:
			return 0, resilience.MarkRetryable(fmt.Errorf("%w: %s/%d waiting for hw %d", ErrAckTimeout, topic, partition, target))
		}
	}
}

// visibleRange returns the high-watermark clamp for a consumer read,
// or an error when this node does not lead the partition.
func (n *Node) visibleRange(tp TopicPartition) (int64, bool, error) {
	rs := n.state(tp)
	if rs == nil {
		return 0, false, nil // unreplicated partition: no clamp
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.isLeader {
		return 0, false, rs.notLeader(tp)
	}
	return rs.hw, true, nil
}

// Fetch implements Transport, serving only below the high-watermark:
// records a leader crash could still lose are invisible to consumers,
// which is what makes failover consumer-transparent.
func (n *Node) Fetch(topic string, partition int, offset int64, max int) ([]Record, error) {
	if err := n.gate(); err != nil {
		return nil, err
	}
	hw, clamped, err := n.visibleRange(TopicPartition{Topic: topic, Partition: partition})
	if err != nil {
		return nil, err
	}
	if clamped {
		if offset >= hw {
			return nil, nil
		}
		if int64(max) > hw-offset {
			max = int(hw - offset)
		}
	}
	return n.b.Fetch(topic, partition, offset, max)
}

// FetchMulti implements Transport with the same high-watermark clamp
// per partition.
func (n *Node) FetchMulti(topic string, reqs []FetchRequest, maxTotal int) ([]Record, error) {
	if err := n.gate(); err != nil {
		return nil, err
	}
	if maxTotal <= 0 {
		maxTotal = 1
	}
	var out []Record
	for _, req := range reqs {
		if len(out) >= maxTotal {
			break
		}
		hw, clamped, err := n.visibleRange(TopicPartition{Topic: topic, Partition: req.Partition})
		if err != nil {
			return nil, err
		}
		budget := maxTotal - len(out)
		if clamped {
			if req.Offset >= hw {
				continue
			}
			if int64(budget) > hw-req.Offset {
				budget = int(hw - req.Offset)
			}
		}
		recs, err := n.b.Fetch(topic, req.Partition, req.Offset, budget)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

// EndOffset implements Transport: for replicated partitions the
// consumer-visible end is the high-watermark, as in Kafka.
func (n *Node) EndOffset(topic string, partition int) (int64, error) {
	if err := n.gate(); err != nil {
		return 0, err
	}
	hw, clamped, err := n.visibleRange(TopicPartition{Topic: topic, Partition: partition})
	if err != nil {
		return 0, err
	}
	if clamped {
		return hw, nil
	}
	return n.b.EndOffset(topic, partition)
}

// CreateTopic implements Transport; topic admin must run through the
// controller node, which owns placement.
func (n *Node) CreateTopic(name string, partitions int) error {
	if err := n.gate(); err != nil {
		return err
	}
	if n.ctrl == nil {
		return fmt.Errorf("broker: %s is not the controller; create topics against the controller node", n.name)
	}
	return n.ctrl.CreateTopic(name, partitions)
}

// DeleteTopic implements Transport via the controller, like CreateTopic.
func (n *Node) DeleteTopic(name string) error {
	if err := n.gate(); err != nil {
		return err
	}
	if n.ctrl == nil {
		return fmt.Errorf("broker: %s is not the controller; delete topics against the controller node", n.name)
	}
	return n.ctrl.DeleteTopic(name)
}

// Partitions implements Transport from the local replica's metadata.
func (n *Node) Partitions(topic string) (int, error) {
	if err := n.gate(); err != nil {
		return 0, err
	}
	return n.b.Partitions(topic)
}

// Group operations delegate to the local broker's coordinator state.
// Clients route them to the coordinator seat (node 0), whose group
// state survives node crashes the same way partition logs do.

// JoinGroup implements Transport.
func (n *Node) JoinGroup(group string, topics []string) (Assignment, error) {
	if err := n.gate(); err != nil {
		return Assignment{}, err
	}
	return n.b.JoinGroup(group, topics)
}

// LeaveGroup implements Transport.
func (n *Node) LeaveGroup(group, memberID string) error {
	if err := n.gate(); err != nil {
		return err
	}
	return n.b.LeaveGroup(group, memberID)
}

// FetchAssignment implements Transport.
func (n *Node) FetchAssignment(group, memberID string, generation int) (Assignment, error) {
	if err := n.gate(); err != nil {
		return Assignment{}, err
	}
	return n.b.FetchAssignment(group, memberID, generation)
}

// CommitOffset implements Transport.
func (n *Node) CommitOffset(group string, tp TopicPartition, offset int64) error {
	if err := n.gate(); err != nil {
		return err
	}
	return n.b.CommitOffset(group, tp, offset)
}

// CommittedOffset implements Transport.
func (n *Node) CommittedOffset(group string, tp TopicPartition) (int64, error) {
	if err := n.gate(); err != nil {
		return 0, err
	}
	return n.b.CommittedOffset(group, tp)
}

var (
	_ Transport        = (*Node)(nil)
	_ ClusterPeer      = (*Node)(nil)
	_ ClusterTransport = (*Node)(nil)
)
